# Empty compiler generated dependencies file for pbc_verify.
# This may be replaced when dependencies are built.
