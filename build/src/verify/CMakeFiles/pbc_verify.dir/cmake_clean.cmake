file(REMOVE_RECURSE
  "CMakeFiles/pbc_verify.dir/crowdwork.cc.o"
  "CMakeFiles/pbc_verify.dir/crowdwork.cc.o.d"
  "CMakeFiles/pbc_verify.dir/tokens.cc.o"
  "CMakeFiles/pbc_verify.dir/tokens.cc.o.d"
  "CMakeFiles/pbc_verify.dir/zkp.cc.o"
  "CMakeFiles/pbc_verify.dir/zkp.cc.o.d"
  "libpbc_verify.a"
  "libpbc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
