file(REMOVE_RECURSE
  "libpbc_verify.a"
)
