file(REMOVE_RECURSE
  "CMakeFiles/pbc_common.dir/bytes.cc.o"
  "CMakeFiles/pbc_common.dir/bytes.cc.o.d"
  "CMakeFiles/pbc_common.dir/rng.cc.o"
  "CMakeFiles/pbc_common.dir/rng.cc.o.d"
  "CMakeFiles/pbc_common.dir/status.cc.o"
  "CMakeFiles/pbc_common.dir/status.cc.o.d"
  "CMakeFiles/pbc_common.dir/thread_pool.cc.o"
  "CMakeFiles/pbc_common.dir/thread_pool.cc.o.d"
  "libpbc_common.a"
  "libpbc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
