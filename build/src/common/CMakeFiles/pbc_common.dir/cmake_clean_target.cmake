file(REMOVE_RECURSE
  "libpbc_common.a"
)
