# Empty compiler generated dependencies file for pbc_common.
# This may be replaced when dependencies are built.
