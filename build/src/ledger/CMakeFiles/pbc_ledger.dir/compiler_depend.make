# Empty compiler generated dependencies file for pbc_ledger.
# This may be replaced when dependencies are built.
