
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ledger/block.cc" "src/ledger/CMakeFiles/pbc_ledger.dir/block.cc.o" "gcc" "src/ledger/CMakeFiles/pbc_ledger.dir/block.cc.o.d"
  "/root/repo/src/ledger/chain.cc" "src/ledger/CMakeFiles/pbc_ledger.dir/chain.cc.o" "gcc" "src/ledger/CMakeFiles/pbc_ledger.dir/chain.cc.o.d"
  "/root/repo/src/ledger/dag_ledger.cc" "src/ledger/CMakeFiles/pbc_ledger.dir/dag_ledger.cc.o" "gcc" "src/ledger/CMakeFiles/pbc_ledger.dir/dag_ledger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pbc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pbc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/pbc_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
