file(REMOVE_RECURSE
  "libpbc_ledger.a"
)
