file(REMOVE_RECURSE
  "CMakeFiles/pbc_ledger.dir/block.cc.o"
  "CMakeFiles/pbc_ledger.dir/block.cc.o.d"
  "CMakeFiles/pbc_ledger.dir/chain.cc.o"
  "CMakeFiles/pbc_ledger.dir/chain.cc.o.d"
  "CMakeFiles/pbc_ledger.dir/dag_ledger.cc.o"
  "CMakeFiles/pbc_ledger.dir/dag_ledger.cc.o.d"
  "libpbc_ledger.a"
  "libpbc_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
