# Empty dependencies file for pbc_sim.
# This may be replaced when dependencies are built.
