file(REMOVE_RECURSE
  "libpbc_sim.a"
)
