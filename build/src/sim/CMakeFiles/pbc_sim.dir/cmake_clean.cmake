file(REMOVE_RECURSE
  "CMakeFiles/pbc_sim.dir/attested_log.cc.o"
  "CMakeFiles/pbc_sim.dir/attested_log.cc.o.d"
  "CMakeFiles/pbc_sim.dir/network.cc.o"
  "CMakeFiles/pbc_sim.dir/network.cc.o.d"
  "CMakeFiles/pbc_sim.dir/simulator.cc.o"
  "CMakeFiles/pbc_sim.dir/simulator.cc.o.d"
  "libpbc_sim.a"
  "libpbc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
