
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shard/common.cc" "src/shard/CMakeFiles/pbc_shard.dir/common.cc.o" "gcc" "src/shard/CMakeFiles/pbc_shard.dir/common.cc.o.d"
  "/root/repo/src/shard/resilientdb.cc" "src/shard/CMakeFiles/pbc_shard.dir/resilientdb.cc.o" "gcc" "src/shard/CMakeFiles/pbc_shard.dir/resilientdb.cc.o.d"
  "/root/repo/src/shard/sharper.cc" "src/shard/CMakeFiles/pbc_shard.dir/sharper.cc.o" "gcc" "src/shard/CMakeFiles/pbc_shard.dir/sharper.cc.o.d"
  "/root/repo/src/shard/two_phase.cc" "src/shard/CMakeFiles/pbc_shard.dir/two_phase.cc.o" "gcc" "src/shard/CMakeFiles/pbc_shard.dir/two_phase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pbc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/pbc_store.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/pbc_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pbc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/pbc_consensus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
