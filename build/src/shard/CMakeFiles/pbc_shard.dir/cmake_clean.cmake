file(REMOVE_RECURSE
  "CMakeFiles/pbc_shard.dir/common.cc.o"
  "CMakeFiles/pbc_shard.dir/common.cc.o.d"
  "CMakeFiles/pbc_shard.dir/resilientdb.cc.o"
  "CMakeFiles/pbc_shard.dir/resilientdb.cc.o.d"
  "CMakeFiles/pbc_shard.dir/sharper.cc.o"
  "CMakeFiles/pbc_shard.dir/sharper.cc.o.d"
  "CMakeFiles/pbc_shard.dir/two_phase.cc.o"
  "CMakeFiles/pbc_shard.dir/two_phase.cc.o.d"
  "libpbc_shard.a"
  "libpbc_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
