# Empty compiler generated dependencies file for pbc_shard.
# This may be replaced when dependencies are built.
