file(REMOVE_RECURSE
  "libpbc_shard.a"
)
