# Empty compiler generated dependencies file for pbc_workload.
# This may be replaced when dependencies are built.
