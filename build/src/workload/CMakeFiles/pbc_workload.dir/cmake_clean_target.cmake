file(REMOVE_RECURSE
  "libpbc_workload.a"
)
