file(REMOVE_RECURSE
  "CMakeFiles/pbc_workload.dir/workload.cc.o"
  "CMakeFiles/pbc_workload.dir/workload.cc.o.d"
  "libpbc_workload.a"
  "libpbc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
