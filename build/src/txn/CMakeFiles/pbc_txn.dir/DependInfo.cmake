
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/dependency_graph.cc" "src/txn/CMakeFiles/pbc_txn.dir/dependency_graph.cc.o" "gcc" "src/txn/CMakeFiles/pbc_txn.dir/dependency_graph.cc.o.d"
  "/root/repo/src/txn/executor.cc" "src/txn/CMakeFiles/pbc_txn.dir/executor.cc.o" "gcc" "src/txn/CMakeFiles/pbc_txn.dir/executor.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/txn/CMakeFiles/pbc_txn.dir/transaction.cc.o" "gcc" "src/txn/CMakeFiles/pbc_txn.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pbc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/pbc_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
