file(REMOVE_RECURSE
  "libpbc_txn.a"
)
