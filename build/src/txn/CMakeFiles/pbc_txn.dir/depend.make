# Empty dependencies file for pbc_txn.
# This may be replaced when dependencies are built.
