file(REMOVE_RECURSE
  "CMakeFiles/pbc_txn.dir/dependency_graph.cc.o"
  "CMakeFiles/pbc_txn.dir/dependency_graph.cc.o.d"
  "CMakeFiles/pbc_txn.dir/executor.cc.o"
  "CMakeFiles/pbc_txn.dir/executor.cc.o.d"
  "CMakeFiles/pbc_txn.dir/transaction.cc.o"
  "CMakeFiles/pbc_txn.dir/transaction.cc.o.d"
  "libpbc_txn.a"
  "libpbc_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
