
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/hotstuff.cc" "src/consensus/CMakeFiles/pbc_consensus.dir/hotstuff.cc.o" "gcc" "src/consensus/CMakeFiles/pbc_consensus.dir/hotstuff.cc.o.d"
  "/root/repo/src/consensus/paxos.cc" "src/consensus/CMakeFiles/pbc_consensus.dir/paxos.cc.o" "gcc" "src/consensus/CMakeFiles/pbc_consensus.dir/paxos.cc.o.d"
  "/root/repo/src/consensus/pbft.cc" "src/consensus/CMakeFiles/pbc_consensus.dir/pbft.cc.o" "gcc" "src/consensus/CMakeFiles/pbc_consensus.dir/pbft.cc.o.d"
  "/root/repo/src/consensus/raft.cc" "src/consensus/CMakeFiles/pbc_consensus.dir/raft.cc.o" "gcc" "src/consensus/CMakeFiles/pbc_consensus.dir/raft.cc.o.d"
  "/root/repo/src/consensus/replica.cc" "src/consensus/CMakeFiles/pbc_consensus.dir/replica.cc.o" "gcc" "src/consensus/CMakeFiles/pbc_consensus.dir/replica.cc.o.d"
  "/root/repo/src/consensus/tendermint.cc" "src/consensus/CMakeFiles/pbc_consensus.dir/tendermint.cc.o" "gcc" "src/consensus/CMakeFiles/pbc_consensus.dir/tendermint.cc.o.d"
  "/root/repo/src/consensus/types.cc" "src/consensus/CMakeFiles/pbc_consensus.dir/types.cc.o" "gcc" "src/consensus/CMakeFiles/pbc_consensus.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pbc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/pbc_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pbc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/pbc_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
