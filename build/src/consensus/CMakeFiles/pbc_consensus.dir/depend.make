# Empty dependencies file for pbc_consensus.
# This may be replaced when dependencies are built.
