file(REMOVE_RECURSE
  "libpbc_consensus.a"
)
