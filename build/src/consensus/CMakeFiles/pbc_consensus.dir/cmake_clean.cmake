file(REMOVE_RECURSE
  "CMakeFiles/pbc_consensus.dir/hotstuff.cc.o"
  "CMakeFiles/pbc_consensus.dir/hotstuff.cc.o.d"
  "CMakeFiles/pbc_consensus.dir/paxos.cc.o"
  "CMakeFiles/pbc_consensus.dir/paxos.cc.o.d"
  "CMakeFiles/pbc_consensus.dir/pbft.cc.o"
  "CMakeFiles/pbc_consensus.dir/pbft.cc.o.d"
  "CMakeFiles/pbc_consensus.dir/raft.cc.o"
  "CMakeFiles/pbc_consensus.dir/raft.cc.o.d"
  "CMakeFiles/pbc_consensus.dir/replica.cc.o"
  "CMakeFiles/pbc_consensus.dir/replica.cc.o.d"
  "CMakeFiles/pbc_consensus.dir/tendermint.cc.o"
  "CMakeFiles/pbc_consensus.dir/tendermint.cc.o.d"
  "CMakeFiles/pbc_consensus.dir/types.cc.o"
  "CMakeFiles/pbc_consensus.dir/types.cc.o.d"
  "libpbc_consensus.a"
  "libpbc_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
