file(REMOVE_RECURSE
  "CMakeFiles/pbc_store.dir/kv_store.cc.o"
  "CMakeFiles/pbc_store.dir/kv_store.cc.o.d"
  "libpbc_store.a"
  "libpbc_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
