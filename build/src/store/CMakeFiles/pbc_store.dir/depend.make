# Empty dependencies file for pbc_store.
# This may be replaced when dependencies are built.
