file(REMOVE_RECURSE
  "libpbc_store.a"
)
