file(REMOVE_RECURSE
  "CMakeFiles/pbc_confidential.dir/atomic_swap.cc.o"
  "CMakeFiles/pbc_confidential.dir/atomic_swap.cc.o.d"
  "CMakeFiles/pbc_confidential.dir/caper.cc.o"
  "CMakeFiles/pbc_confidential.dir/caper.cc.o.d"
  "CMakeFiles/pbc_confidential.dir/channels.cc.o"
  "CMakeFiles/pbc_confidential.dir/channels.cc.o.d"
  "CMakeFiles/pbc_confidential.dir/private_data.cc.o"
  "CMakeFiles/pbc_confidential.dir/private_data.cc.o.d"
  "libpbc_confidential.a"
  "libpbc_confidential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_confidential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
