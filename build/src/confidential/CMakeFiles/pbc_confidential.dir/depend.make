# Empty dependencies file for pbc_confidential.
# This may be replaced when dependencies are built.
