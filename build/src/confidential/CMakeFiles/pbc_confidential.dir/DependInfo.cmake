
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/confidential/atomic_swap.cc" "src/confidential/CMakeFiles/pbc_confidential.dir/atomic_swap.cc.o" "gcc" "src/confidential/CMakeFiles/pbc_confidential.dir/atomic_swap.cc.o.d"
  "/root/repo/src/confidential/caper.cc" "src/confidential/CMakeFiles/pbc_confidential.dir/caper.cc.o" "gcc" "src/confidential/CMakeFiles/pbc_confidential.dir/caper.cc.o.d"
  "/root/repo/src/confidential/channels.cc" "src/confidential/CMakeFiles/pbc_confidential.dir/channels.cc.o" "gcc" "src/confidential/CMakeFiles/pbc_confidential.dir/channels.cc.o.d"
  "/root/repo/src/confidential/private_data.cc" "src/confidential/CMakeFiles/pbc_confidential.dir/private_data.cc.o" "gcc" "src/confidential/CMakeFiles/pbc_confidential.dir/private_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pbc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/pbc_store.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/pbc_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pbc_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
