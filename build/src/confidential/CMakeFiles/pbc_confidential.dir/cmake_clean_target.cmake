file(REMOVE_RECURSE
  "libpbc_confidential.a"
)
