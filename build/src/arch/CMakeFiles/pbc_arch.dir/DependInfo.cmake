
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/architecture.cc" "src/arch/CMakeFiles/pbc_arch.dir/architecture.cc.o" "gcc" "src/arch/CMakeFiles/pbc_arch.dir/architecture.cc.o.d"
  "/root/repo/src/arch/fabricpp.cc" "src/arch/CMakeFiles/pbc_arch.dir/fabricpp.cc.o" "gcc" "src/arch/CMakeFiles/pbc_arch.dir/fabricpp.cc.o.d"
  "/root/repo/src/arch/reorder.cc" "src/arch/CMakeFiles/pbc_arch.dir/reorder.cc.o" "gcc" "src/arch/CMakeFiles/pbc_arch.dir/reorder.cc.o.d"
  "/root/repo/src/arch/xov.cc" "src/arch/CMakeFiles/pbc_arch.dir/xov.cc.o" "gcc" "src/arch/CMakeFiles/pbc_arch.dir/xov.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pbc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/pbc_store.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/pbc_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pbc_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
