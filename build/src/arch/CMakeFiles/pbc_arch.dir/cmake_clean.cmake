file(REMOVE_RECURSE
  "CMakeFiles/pbc_arch.dir/architecture.cc.o"
  "CMakeFiles/pbc_arch.dir/architecture.cc.o.d"
  "CMakeFiles/pbc_arch.dir/fabricpp.cc.o"
  "CMakeFiles/pbc_arch.dir/fabricpp.cc.o.d"
  "CMakeFiles/pbc_arch.dir/reorder.cc.o"
  "CMakeFiles/pbc_arch.dir/reorder.cc.o.d"
  "CMakeFiles/pbc_arch.dir/xov.cc.o"
  "CMakeFiles/pbc_arch.dir/xov.cc.o.d"
  "libpbc_arch.a"
  "libpbc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
