# Empty compiler generated dependencies file for pbc_arch.
# This may be replaced when dependencies are built.
