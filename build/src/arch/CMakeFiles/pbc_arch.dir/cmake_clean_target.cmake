file(REMOVE_RECURSE
  "libpbc_arch.a"
)
