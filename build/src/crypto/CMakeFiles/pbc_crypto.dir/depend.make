# Empty dependencies file for pbc_crypto.
# This may be replaced when dependencies are built.
