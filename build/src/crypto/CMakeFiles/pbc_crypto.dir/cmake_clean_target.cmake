file(REMOVE_RECURSE
  "libpbc_crypto.a"
)
