file(REMOVE_RECURSE
  "CMakeFiles/pbc_crypto.dir/auth.cc.o"
  "CMakeFiles/pbc_crypto.dir/auth.cc.o.d"
  "CMakeFiles/pbc_crypto.dir/group.cc.o"
  "CMakeFiles/pbc_crypto.dir/group.cc.o.d"
  "CMakeFiles/pbc_crypto.dir/merkle.cc.o"
  "CMakeFiles/pbc_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/pbc_crypto.dir/sha256.cc.o"
  "CMakeFiles/pbc_crypto.dir/sha256.cc.o.d"
  "libpbc_crypto.a"
  "libpbc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
