# Empty dependencies file for sharded_database.
# This may be replaced when dependencies are built.
