file(REMOVE_RECURSE
  "CMakeFiles/sharded_database.dir/sharded_database.cpp.o"
  "CMakeFiles/sharded_database.dir/sharded_database.cpp.o.d"
  "sharded_database"
  "sharded_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
