# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/confidential_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/shard_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_test[1]_include.cmake")
include("/root/repo/build/tests/atomic_swap_test[1]_include.cmake")
include("/root/repo/build/tests/shard_fault_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_details_test[1]_include.cmake")
