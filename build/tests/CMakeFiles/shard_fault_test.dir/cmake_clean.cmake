file(REMOVE_RECURSE
  "CMakeFiles/shard_fault_test.dir/shard_fault_test.cpp.o"
  "CMakeFiles/shard_fault_test.dir/shard_fault_test.cpp.o.d"
  "shard_fault_test"
  "shard_fault_test.pdb"
  "shard_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
