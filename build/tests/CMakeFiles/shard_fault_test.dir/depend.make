# Empty dependencies file for shard_fault_test.
# This may be replaced when dependencies are built.
