# Empty compiler generated dependencies file for atomic_swap_test.
# This may be replaced when dependencies are built.
