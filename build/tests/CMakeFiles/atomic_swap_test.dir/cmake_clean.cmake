file(REMOVE_RECURSE
  "CMakeFiles/atomic_swap_test.dir/atomic_swap_test.cpp.o"
  "CMakeFiles/atomic_swap_test.dir/atomic_swap_test.cpp.o.d"
  "atomic_swap_test"
  "atomic_swap_test.pdb"
  "atomic_swap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_swap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
