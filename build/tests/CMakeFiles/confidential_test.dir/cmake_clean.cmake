file(REMOVE_RECURSE
  "CMakeFiles/confidential_test.dir/confidential_test.cpp.o"
  "CMakeFiles/confidential_test.dir/confidential_test.cpp.o.d"
  "confidential_test"
  "confidential_test.pdb"
  "confidential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
