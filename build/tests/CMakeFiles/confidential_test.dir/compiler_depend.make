# Empty compiler generated dependencies file for confidential_test.
# This may be replaced when dependencies are built.
