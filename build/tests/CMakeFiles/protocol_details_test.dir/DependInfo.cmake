
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocol_details_test.cpp" "tests/CMakeFiles/protocol_details_test.dir/protocol_details_test.cpp.o" "gcc" "tests/CMakeFiles/protocol_details_test.dir/protocol_details_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/pbc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pbc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pbc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pbc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/pbc_store.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/pbc_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/pbc_txn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
