file(REMOVE_RECURSE
  "CMakeFiles/protocol_details_test.dir/protocol_details_test.cpp.o"
  "CMakeFiles/protocol_details_test.dir/protocol_details_test.cpp.o.d"
  "protocol_details_test"
  "protocol_details_test.pdb"
  "protocol_details_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
