# Empty compiler generated dependencies file for protocol_details_test.
# This may be replaced when dependencies are built.
