# Empty dependencies file for bench_e5_confidentiality.
# This may be replaced when dependencies are built.
