file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_confidentiality.dir/bench_e5_confidentiality.cpp.o"
  "CMakeFiles/bench_e5_confidentiality.dir/bench_e5_confidentiality.cpp.o.d"
  "bench_e5_confidentiality"
  "bench_e5_confidentiality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_confidentiality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
