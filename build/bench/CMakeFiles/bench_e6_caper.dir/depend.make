# Empty dependencies file for bench_e6_caper.
# This may be replaced when dependencies are built.
