file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_caper.dir/bench_e6_caper.cpp.o"
  "CMakeFiles/bench_e6_caper.dir/bench_e6_caper.cpp.o.d"
  "bench_e6_caper"
  "bench_e6_caper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_caper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
