# Empty compiler generated dependencies file for bench_e9_cross_shard.
# This may be replaced when dependencies are built.
