file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_cross_shard.dir/bench_e9_cross_shard.cpp.o"
  "CMakeFiles/bench_e9_cross_shard.dir/bench_e9_cross_shard.cpp.o.d"
  "bench_e9_cross_shard"
  "bench_e9_cross_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_cross_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
