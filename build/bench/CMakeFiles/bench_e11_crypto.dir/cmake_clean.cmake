file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_crypto.dir/bench_e11_crypto.cpp.o"
  "CMakeFiles/bench_e11_crypto.dir/bench_e11_crypto.cpp.o.d"
  "bench_e11_crypto"
  "bench_e11_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
