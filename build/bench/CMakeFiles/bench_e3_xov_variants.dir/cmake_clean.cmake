file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_xov_variants.dir/bench_e3_xov_variants.cpp.o"
  "CMakeFiles/bench_e3_xov_variants.dir/bench_e3_xov_variants.cpp.o.d"
  "bench_e3_xov_variants"
  "bench_e3_xov_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_xov_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
