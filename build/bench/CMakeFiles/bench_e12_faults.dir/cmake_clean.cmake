file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_faults.dir/bench_e12_faults.cpp.o"
  "CMakeFiles/bench_e12_faults.dir/bench_e12_faults.cpp.o.d"
  "bench_e12_faults"
  "bench_e12_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
