# Empty compiler generated dependencies file for bench_e10_trusted_hw.
# This may be replaced when dependencies are built.
