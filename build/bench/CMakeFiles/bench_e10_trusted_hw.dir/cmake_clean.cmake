file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_trusted_hw.dir/bench_e10_trusted_hw.cpp.o"
  "CMakeFiles/bench_e10_trusted_hw.dir/bench_e10_trusted_hw.cpp.o.d"
  "bench_e10_trusted_hw"
  "bench_e10_trusted_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_trusted_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
