# Empty dependencies file for bench_e7_verifiability.
# This may be replaced when dependencies are built.
