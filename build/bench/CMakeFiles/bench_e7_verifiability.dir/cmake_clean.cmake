file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_verifiability.dir/bench_e7_verifiability.cpp.o"
  "CMakeFiles/bench_e7_verifiability.dir/bench_e7_verifiability.cpp.o.d"
  "bench_e7_verifiability"
  "bench_e7_verifiability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_verifiability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
