# Empty dependencies file for bench_e2_contention.
# This may be replaced when dependencies are built.
