file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_sharding.dir/bench_e8_sharding.cpp.o"
  "CMakeFiles/bench_e8_sharding.dir/bench_e8_sharding.cpp.o.d"
  "bench_e8_sharding"
  "bench_e8_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
