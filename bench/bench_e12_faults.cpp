// E12 — fault tolerance (§2.2): BFT protocols keep committing with f
// Byzantine/crashed replicas; leader failure costs a view change.
//
// Series per protocol: throughput with no faults, with a crashed follower,
// with a crashed leader (measures view-change recovery), and with a
// silent Byzantine replica. Safety under these faults is asserted by the
// property tests; this bench quantifies the performance cost.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "consensus/hotstuff.h"
#include "consensus/pbft.h"
#include "consensus/tendermint.h"
#include "obs/report.h"

namespace {

using namespace pbc;
using bench::LatencyTracker;
using bench::SimWorld;

constexpr uint64_t kSeed = 12;
constexpr int kTxns = 150;
constexpr sim::Time kDeadline = 600'000'000;

enum class Fault { kNone = 0, kCrashFollower, kCrashLeader, kSilentByz };

const char* FaultName(Fault fault) {
  switch (fault) {
    case Fault::kNone:
      return "none";
    case Fault::kCrashFollower:
      return "crash_follower";
    case Fault::kCrashLeader:
      return "crash_leader";
    case Fault::kSilentByz:
      return "silent_byz";
  }
  return "unknown";
}

// One (protocol, fault) cell — simulated-time metrics only, so cells fan
// out on the scheduler.
template <typename ReplicaT>
bench::SeriesRow FaultedCell(const char* label, Fault fault) {
  SimWorld w(kSeed);
  consensus::Cluster<ReplicaT> cluster(&w.net, &w.registry, 4);
  LatencyTracker tracker(&w.simulator);
  // Replica 1 is healthy under every fault below; use it to observe
  // commits for the latency histogram.
  cluster.replica(1)->set_commit_listener(
      [&](sim::NodeId, uint64_t, const consensus::Batch& batch) {
        for (const auto& t : batch.txns) tracker.Committed(t.id);
      });
  std::vector<size_t> skip;
  switch (fault) {
    case Fault::kNone:
      break;
    case Fault::kCrashFollower:
      w.net.Crash(3);
      skip = {3};
      break;
    case Fault::kCrashLeader:
      // Crash the node leading at start for each protocol family:
      // node 0 leads PBFT view 0; HotStuff view 1 is led by node 1;
      // crash both effects by killing node 0 after a short run-in —
      // protocols that don't lead with 0 treat it as a follower crash.
      skip = {0};
      break;
    case Fault::kSilentByz:
      cluster.replica(2)->set_byzantine_mode(
          consensus::ByzantineMode::kSilent);
      skip = {2};
      break;
  }
  w.net.Start();
  for (int i = 0; i < kTxns; ++i) {
    auto t = consensus::MakeKvTxn(i + 1, "k" + std::to_string(i % 13), "v");
    tracker.Submitted(t.id);
    cluster.Submit(t);
  }
  if (fault == Fault::kCrashLeader) {
    w.simulator.Schedule(500, [&w] { w.net.Crash(0); });
  }
  bool ok = w.simulator.RunUntil(
      [&] { return cluster.MinCommitted(skip) >= kTxns; }, kDeadline);
  sim::Time elapsed = w.simulator.now();
  double throughput = ok ? static_cast<double>(kTxns) /
                               (static_cast<double>(elapsed) / 1e6)
                         : 0;
  double view_changes = static_cast<double>(
      w.metrics.CounterValue("consensus.view_changes"));

  bench::SeriesRow row;
  row.name = std::string(label) + "/fault=" + FaultName(fault);
  row.params = obs::Json::Object();
  row.params.Set("fault", FaultName(fault));
  row.params.Set("n", 4);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("sim_elapsed_us", elapsed);
  extra.Set("view_changes", view_changes);
  extra.Set("msgs_dropped", w.net.stats().messages_dropped);
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

template <typename ReplicaT>
void RunFaulted(benchmark::State& state, const char* label) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (int f = 0; f <= static_cast<int>(Fault::kSilentByz); ++f) {
      Fault fault = static_cast<Fault>(f);
      cases.push_back(
          [label, fault] { return FaultedCell<ReplicaT>(label, fault); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = 4;
}

void BM_PBFT(benchmark::State& state) {
  RunFaulted<consensus::PbftReplica>(state, "PBFT");
}
void BM_HotStuff(benchmark::State& state) {
  RunFaulted<consensus::HotStuffReplica>(state, "HotStuff");
}
void BM_Tendermint(benchmark::State& state) {
  RunFaulted<consensus::TendermintReplica>(state, "Tendermint");
}

// Each BM fans its whole fault sweep across the scheduler (series rows
// land in sweep order regardless of completion order).
BENCHMARK(BM_PBFT)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotStuff)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tendermint)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E12Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("txns", kTxns);
  c.Set("n", 4);
  c.Set("deadline_us", kDeadline);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e12_faults", kSeed, E12Config());
