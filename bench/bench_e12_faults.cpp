// E12 — fault tolerance (§2.2): BFT protocols keep committing with f
// Byzantine/crashed replicas; leader failure costs a view change.
//
// Series per protocol: throughput with no faults, with a crashed follower,
// with a crashed leader (measures view-change recovery), and with a
// silent Byzantine replica. Safety under these faults is asserted by the
// property tests; this bench quantifies the performance cost.
#include "bench/bench_util.h"
#include "consensus/hotstuff.h"
#include "consensus/pbft.h"
#include "consensus/tendermint.h"

namespace {

using namespace pbc;
using bench::SimWorld;

constexpr int kTxns = 150;
constexpr sim::Time kDeadline = 600'000'000;

enum class Fault { kNone = 0, kCrashFollower, kCrashLeader, kSilentByz };

template <typename ReplicaT>
void RunFaulted(benchmark::State& state) {
  Fault fault = static_cast<Fault>(state.range(0));
  double throughput = 0, view_changes = 0;
  for (auto _ : state) {
    SimWorld w(12);
    consensus::Cluster<ReplicaT> cluster(&w.net, &w.registry, 4);
    std::vector<size_t> skip;
    switch (fault) {
      case Fault::kNone:
        break;
      case Fault::kCrashFollower:
        w.net.Crash(3);
        skip = {3};
        break;
      case Fault::kCrashLeader:
        // Crash the node leading at start for each protocol family:
        // node 0 leads PBFT view 0; HotStuff view 1 is led by node 1;
        // crash both effects by killing node 0 after a short run-in —
        // protocols that don't lead with 0 treat it as a follower crash.
        skip = {0};
        break;
      case Fault::kSilentByz:
        cluster.replica(2)->set_byzantine_mode(
            consensus::ByzantineMode::kSilent);
        skip = {2};
        break;
    }
    w.net.Start();
    for (int i = 0; i < kTxns; ++i) {
      cluster.Submit(
          consensus::MakeKvTxn(i + 1, "k" + std::to_string(i % 13), "v"));
    }
    if (fault == Fault::kCrashLeader) {
      w.simulator.Schedule(500, [&w] { w.net.Crash(0); });
    }
    bool ok = w.simulator.RunUntil(
        [&] { return cluster.MinCommitted(skip) >= kTxns; }, kDeadline);
    throughput = ok ? static_cast<double>(kTxns) /
                          (static_cast<double>(w.simulator.now()) / 1e6)
                    : 0;
    if constexpr (std::is_same_v<ReplicaT, consensus::PbftReplica>) {
      view_changes = static_cast<double>(cluster.replica(1)->view_changes());
    }
  }
  state.counters["txn_per_simsec"] = throughput;
  state.counters["view_changes"] = view_changes;
}

void BM_PBFT(benchmark::State& state) {
  RunFaulted<consensus::PbftReplica>(state);
}
void BM_HotStuff(benchmark::State& state) {
  RunFaulted<consensus::HotStuffReplica>(state);
}
void BM_Tendermint(benchmark::State& state) {
  RunFaulted<consensus::TendermintReplica>(state);
}

#define SWEEP Arg(0)->Arg(1)->Arg(2)->Arg(3)->Iterations(1)
BENCHMARK(BM_PBFT)->SWEEP->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotStuff)->SWEEP->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tendermint)->SWEEP->Unit(benchmark::kMillisecond);
#undef SWEEP

}  // namespace

BENCHMARK_MAIN();
