// E7 — "zero-knowledge proofs … have considerable overhead … Token-based
// techniques … require a centralized authority … There is, however, no
// need to replicate all transactions on every node resulting in improved
// performance" (§2.3.2 Discussion).
//
// The same FLSA hour-cap enforcement implemented three ways; series =
// wall-clock claims/second. Expected shape: plaintext ≫ tokens ≫ ZKP, by
// orders of magnitude — the structural cost the survey describes (our
// group is toy-sized, so the ZKP column is if anything *under*-costed
// relative to production curves; the ordering still holds).
#include <benchmark/benchmark.h>

#include <functional>
#include <string>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "verify/crowdwork.h"
#include "verify/tokens.h"

namespace {

using namespace pbc;
using namespace pbc::verify;

constexpr uint64_t kSeed = 1;
constexpr uint64_t kCap = 40;

using bench::SampleAndEmit;

// Baseline: a trusted ledger that sees hours in plaintext.
void BM_PlaintextCheck(benchmark::State& state) {
  std::map<uint32_t, uint64_t> totals;
  uint32_t worker = 0;
  for (auto _ : state) {
    uint32_t id = worker++ % 1000;
    uint64_t& total = totals[id];
    if (total + 8 <= kCap) {
      total += 8;
    } else {
      total = 8;  // next period
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["claims_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);

  SampleAndEmit("plaintext_check", 10000, [&](size_t i) {
    uint32_t id = static_cast<uint32_t>(i) % 1000;
    uint64_t& total = totals[id];
    if (total + 8 <= kCap) {
      total += 8;
    } else {
      total = 8;
    }
    benchmark::DoNotOptimize(total);
  });
}

void BM_TokenSpend(benchmark::State& state) {
  crypto::KeyRegistry registry;
  TokenAuthority authority(1, &registry);
  SpendLog log(&registry, 1);
  Rng rng(1);
  std::vector<Token> tokens = authority.Mint(1, 1, 100000, &rng);
  size_t next = 0;
  for (auto _ : state) {
    if (next >= tokens.size()) {
      state.PauseTiming();
      tokens = authority.Mint(1, 2 + next, 100000, &rng);
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(log.Spend(tokens[next++]));
  }
  state.counters["claims_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);

  std::vector<Token> sample_tokens =
      authority.Mint(1, 999'000'000, 2000, &rng);
  SampleAndEmit("token_spend", sample_tokens.size(), [&](size_t i) {
    benchmark::DoNotOptimize(log.Spend(sample_tokens[i]));
  });
}

void BM_TokenMint(benchmark::State& state) {
  crypto::KeyRegistry registry;
  TokenAuthority authority(1, &registry);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(authority.Mint(1, 1, 40, &rng));
  }
  state.counters["mints_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 40),
      benchmark::Counter::kIsRate);

  SampleAndEmit("token_mint40", 200, [&](size_t) {
    benchmark::DoNotOptimize(authority.Mint(1, 1, 40, &rng));
  });
}

void BM_ZkClaimProve(benchmark::State& state) {
  Rng rng(1);
  ZkHourTracker worker(1, kCap, &rng);
  uint64_t claimed = 0;
  for (auto _ : state) {
    if (claimed + 8 > kCap) {
      state.PauseTiming();
      worker = ZkHourTracker(1, kCap, &rng);
      claimed = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(worker.Claim(8, &rng));
    claimed += 8;
  }
  state.counters["claims_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);

  SampleAndEmit("zk_claim_prove", 60, [&](size_t) {
    if (claimed + 8 > kCap) {
      worker = ZkHourTracker(1, kCap, &rng);
      claimed = 0;
    }
    benchmark::DoNotOptimize(worker.Claim(8, &rng));
    claimed += 8;
  });
}

void BM_ZkClaimProveAndVerify(benchmark::State& state) {
  Rng rng(1);
  uint32_t period = 0;
  ZkHourTracker worker(1, kCap, &rng);
  ZkHourVerifier platform(kCap);
  platform.Register(worker.Register(&rng));
  uint64_t claimed = 0;
  for (auto _ : state) {
    if (claimed + 8 > kCap) {
      state.PauseTiming();
      worker = ZkHourTracker(++period * 100000 + 1, kCap, &rng);
      platform.Register(worker.Register(&rng));
      claimed = 0;
      state.ResumeTiming();
    }
    auto claim = worker.Claim(8, &rng);
    benchmark::DoNotOptimize(platform.Accept(claim.ValueOrDie()));
    claimed += 8;
  }
  state.counters["claims_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);

  SampleAndEmit("zk_claim_prove_verify", 60, [&](size_t) {
    if (claimed + 8 > kCap) {
      worker = ZkHourTracker(++period * 100000 + 1, kCap, &rng);
      platform.Register(worker.Register(&rng));
      claimed = 0;
    }
    auto claim = worker.Claim(8, &rng);
    benchmark::DoNotOptimize(platform.Accept(claim.ValueOrDie()));
    claimed += 8;
  });
}

BENCHMARK(BM_PlaintextCheck);
BENCHMARK(BM_TokenSpend);
BENCHMARK(BM_TokenMint);
BENCHMARK(BM_ZkClaimProve)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ZkClaimProveAndVerify)->Unit(benchmark::kMicrosecond);

}  // namespace

namespace {
pbc::obs::Json E7Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("hour_cap", kCap);
  c.Set("claim_hours", 8);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e7_verifiability", kSeed, E7Config());
