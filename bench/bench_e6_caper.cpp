// E6 — Caper: "each enterprise orders and executes its internal
// transactions locally while cross-enterprise transactions … require
// global agreement among all enterprises" (§2.3.1).
//
// Caper over real PBFT orderers (one 4-replica cluster per enterprise +
// one global cluster). Sweep the cross-enterprise fraction; series =
// simulated throughput and global-cluster load. Baseline: the same
// workload where EVERY transaction goes through global consensus
// (single-blockchain deployment). Expected shape: Caper's advantage
// shrinks as the cross fraction grows; at 100% the two coincide.
#include "bench/bench_util.h"
#include "confidential/caper.h"
#include "consensus/pbft.h"
#include "workload/workload.h"

namespace {

using namespace pbc;
using bench::SimWorld;

constexpr uint32_t kEnterprises = 3;
constexpr int kTxns = 150;
constexpr sim::Time kDeadline = 600'000'000;

struct CaperWorld {
  explicit CaperWorld(SimWorld* w) : caper(kEnterprises) {
    for (uint32_t e = 0; e < kEnterprises; ++e) {
      internal.push_back(
          std::make_unique<consensus::Cluster<consensus::PbftReplica>>(
              &w->net, &w->registry, 4, consensus::ClusterConfig{},
              100 * (e + 1)));
      caper.SetInternalOrderer(
          e, [this, e](txn::Transaction t,
                       confidential::CaperSystem::CommitFn commit) {
            pending[t.id] = commit;
            internal[e]->Submit(std::move(t));
          });
      internal[e]->replica(0)->set_commit_listener(
          [this](sim::NodeId, uint64_t, const consensus::Batch& batch) {
            Drain(batch);
          });
    }
    global = std::make_unique<consensus::Cluster<consensus::PbftReplica>>(
        &w->net, &w->registry, 4, consensus::ClusterConfig{}, 1000);
    caper.SetGlobalOrderer([this](txn::Transaction t,
                                  confidential::CaperSystem::CommitFn commit) {
      pending[t.id] = commit;
      global->Submit(std::move(t));
    });
    global->replica(0)->set_commit_listener(
        [this](sim::NodeId, uint64_t, const consensus::Batch& batch) {
          Drain(batch);
        });
  }

  void Drain(const consensus::Batch& batch) {
    for (const auto& t : batch.txns) {
      auto it = pending.find(t.id);
      if (it != pending.end()) {
        it->second(t);
        pending.erase(it);
      }
    }
  }

  confidential::CaperSystem caper;
  std::vector<std::unique_ptr<consensus::Cluster<consensus::PbftReplica>>>
      internal;
  std::unique_ptr<consensus::Cluster<consensus::PbftReplica>> global;
  std::map<txn::TxnId, confidential::CaperSystem::CommitFn> pending;
};

void BM_Caper(benchmark::State& state) {
  double cross_frac = static_cast<double>(state.range(0)) / 100.0;
  double throughput = 0, global_load = 0;
  for (auto _ : state) {
    SimWorld w(5);
    CaperWorld world(&w);
    w.net.Start();
    workload::SupplyChain gen(kEnterprises, cross_frac, 9);
    int internal_sent = 0, cross_sent = 0;
    for (int i = 0; i < kTxns; ++i) {
      auto step = gen.Next();
      if (step.cross) {
        world.caper.SubmitCross(step.txn);
        ++cross_sent;
      } else {
        world.caper.SubmitInternal(step.enterprise, step.txn);
        ++internal_sent;
      }
    }
    bool ok = w.simulator.RunUntil(
        [&] {
          return world.caper.internal_committed() +
                     world.caper.cross_committed() >=
                 static_cast<uint64_t>(kTxns);
        },
        kDeadline);
    throughput = ok ? static_cast<double>(kTxns) /
                          (static_cast<double>(w.simulator.now()) / 1e6)
                    : 0;
    global_load =
        static_cast<double>(world.global->replica(0)->committed_txns());
    state.counters["msgs_per_txn"] =
        static_cast<double>(w.net.stats().messages_sent) / kTxns;
  }
  state.counters["txn_per_simsec"] = throughput;
  state.counters["global_cluster_txns"] = global_load;
}

// Baseline: one blockchain — everything is globally ordered.
void BM_SingleBlockchain(benchmark::State& state) {
  double throughput = 0;
  for (auto _ : state) {
    SimWorld w(5);
    consensus::Cluster<consensus::PbftReplica> global(
        &w.net, &w.registry, 4 * kEnterprises, consensus::ClusterConfig{},
        1000);
    w.net.Start();
    // The same mix, but every transaction goes to the global cluster
    // (namespace checks don't apply in the flat deployment).
    workload::SupplyChain gen(kEnterprises,
                              static_cast<double>(state.range(0)) / 100.0,
                              9);
    for (int i = 0; i < kTxns; ++i) {
      global.Submit(gen.Next().txn);
    }
    bool ok = w.simulator.RunUntil(
        [&] { return global.MinCommitted() >= kTxns; }, kDeadline);
    throughput = ok ? static_cast<double>(kTxns) /
                          (static_cast<double>(w.simulator.now()) / 1e6)
                    : 0;
    state.counters["msgs_per_txn"] =
        static_cast<double>(w.net.stats().messages_sent) / kTxns;
  }
  state.counters["txn_per_simsec"] = throughput;
}

#define SWEEP Arg(0)->Arg(10)->Arg(30)->Arg(50)->Arg(100)->Iterations(1)
BENCHMARK(BM_Caper)->SWEEP->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleBlockchain)->SWEEP->Unit(benchmark::kMillisecond);
#undef SWEEP

}  // namespace

BENCHMARK_MAIN();
