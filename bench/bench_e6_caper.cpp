// E6 — Caper: "each enterprise orders and executes its internal
// transactions locally while cross-enterprise transactions … require
// global agreement among all enterprises" (§2.3.1).
//
// Caper over real PBFT orderers (one 4-replica cluster per enterprise +
// one global cluster). Sweep the cross-enterprise fraction; series =
// simulated throughput and global-cluster load. Baseline: the same
// workload where EVERY transaction goes through global consensus
// (single-blockchain deployment). Expected shape: Caper's advantage
// shrinks as the cross fraction grows; at 100% the two coincide.
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "confidential/caper.h"
#include "consensus/pbft.h"
#include "obs/report.h"
#include "workload/workload.h"

namespace {

using namespace pbc;
using bench::LatencyTracker;
using bench::SimWorld;

constexpr uint64_t kSeed = 5;
constexpr uint32_t kEnterprises = 3;
constexpr int kTxns = 150;
constexpr sim::Time kDeadline = 600'000'000;

struct CaperWorld {
  explicit CaperWorld(SimWorld* w, LatencyTracker* tracker)
      : caper(kEnterprises), tracker_(tracker) {
    for (uint32_t e = 0; e < kEnterprises; ++e) {
      internal.push_back(
          std::make_unique<consensus::Cluster<consensus::PbftReplica>>(
              &w->net, &w->registry, 4, consensus::ClusterConfig{},
              100 * (e + 1)));
      caper.SetInternalOrderer(
          e, [this, e](txn::Transaction t,
                       confidential::CaperSystem::CommitFn commit) {
            pending[t.id] = commit;
            internal[e]->Submit(std::move(t));
          });
      internal[e]->replica(0)->set_commit_listener(
          [this](sim::NodeId, uint64_t, const consensus::Batch& batch) {
            Drain(batch);
          });
    }
    global = std::make_unique<consensus::Cluster<consensus::PbftReplica>>(
        &w->net, &w->registry, 4, consensus::ClusterConfig{}, 1000);
    caper.SetGlobalOrderer([this](txn::Transaction t,
                                  confidential::CaperSystem::CommitFn commit) {
      pending[t.id] = commit;
      global->Submit(std::move(t));
    });
    global->replica(0)->set_commit_listener(
        [this](sim::NodeId, uint64_t, const consensus::Batch& batch) {
          Drain(batch);
        });
  }

  void Drain(const consensus::Batch& batch) {
    for (const auto& t : batch.txns) {
      auto it = pending.find(t.id);
      if (it != pending.end()) {
        it->second(t);
        pending.erase(it);
        if (tracker_ != nullptr) tracker_->Committed(t.id);
      }
    }
  }

  confidential::CaperSystem caper;
  std::vector<std::unique_ptr<consensus::Cluster<consensus::PbftReplica>>>
      internal;
  std::unique_ptr<consensus::Cluster<consensus::PbftReplica>> global;
  std::map<txn::TxnId, confidential::CaperSystem::CommitFn> pending;
  LatencyTracker* tracker_;
};

constexpr int kCrossPercents[] = {0, 10, 30, 50, 100};

// One Caper cell — simulated-time metrics only, so cells fan out on the
// scheduler.
bench::SeriesRow CaperCell(int cross_percent) {
  double cross_frac = static_cast<double>(cross_percent) / 100.0;
  SimWorld w(kSeed);
  LatencyTracker tracker(&w.simulator);
  CaperWorld world(&w, &tracker);
  w.net.Start();
  workload::SupplyChain gen(kEnterprises, cross_frac, 9);
  int internal_sent = 0, cross_sent = 0;
  for (int i = 0; i < kTxns; ++i) {
    auto step = gen.Next();
    tracker.Submitted(step.txn.id);
    if (step.cross) {
      world.caper.SubmitCross(step.txn);
      ++cross_sent;
    } else {
      world.caper.SubmitInternal(step.enterprise, step.txn);
      ++internal_sent;
    }
  }
  bool ok = w.simulator.RunUntil(
      [&] {
        return world.caper.internal_committed() +
                   world.caper.cross_committed() >=
               static_cast<uint64_t>(kTxns);
      },
      kDeadline);
  double throughput = ok ? static_cast<double>(kTxns) /
                               (static_cast<double>(w.simulator.now()) / 1e6)
                         : 0;
  double global_load =
      static_cast<double>(world.global->replica(0)->committed_txns());

  bench::SeriesRow row;
  row.name = "Caper/cross=" + std::to_string(cross_percent);
  row.params = obs::Json::Object();
  row.params.Set("cross_frac", cross_frac);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("internal_sent", internal_sent);
  extra.Set("cross_sent", cross_sent);
  extra.Set("global_cluster_txns", global_load);
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

// Baseline cell: one blockchain — everything is globally ordered.
bench::SeriesRow SingleBlockchainCell(int cross_percent) {
  SimWorld w(kSeed);
  consensus::Cluster<consensus::PbftReplica> global(
      &w.net, &w.registry, 4 * kEnterprises, consensus::ClusterConfig{},
      1000);
  LatencyTracker tracker(&w.simulator);
  global.replica(0)->set_commit_listener(
      [&](sim::NodeId, uint64_t, const consensus::Batch& batch) {
        for (const auto& t : batch.txns) tracker.Committed(t.id);
      });
  w.net.Start();
  // The same mix, but every transaction goes to the global cluster
  // (namespace checks don't apply in the flat deployment).
  workload::SupplyChain gen(kEnterprises,
                            static_cast<double>(cross_percent) / 100.0, 9);
  for (int i = 0; i < kTxns; ++i) {
    auto t = gen.Next().txn;
    tracker.Submitted(t.id);
    global.Submit(std::move(t));
  }
  bool ok = w.simulator.RunUntil(
      [&] { return global.MinCommitted() >= kTxns; }, kDeadline);
  double throughput = ok ? static_cast<double>(kTxns) /
                               (static_cast<double>(w.simulator.now()) / 1e6)
                         : 0;

  bench::SeriesRow row;
  row.name = "SingleBlockchain/cross=" + std::to_string(cross_percent);
  row.params = obs::Json::Object();
  row.params.Set("cross_frac", static_cast<double>(cross_percent) / 100.0);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

void BM_Caper(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (int cross : kCrossPercents) {
      cases.push_back([cross] { return CaperCell(cross); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kCrossPercents));
}

void BM_SingleBlockchain(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (int cross : kCrossPercents) {
      cases.push_back([cross] { return SingleBlockchainCell(cross); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kCrossPercents));
}

// Each BM fans its whole cross-fraction sweep across the scheduler
// (series rows land in sweep order regardless of completion order).
BENCHMARK(BM_Caper)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleBlockchain)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E6Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("enterprises", kEnterprises);
  c.Set("txns", kTxns);
  c.Set("deadline_us", kDeadline);
  c.Set("workload_seed", 9);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e6_caper", kSeed, E6Config());
