// E8 — "Partitioning the data into multiple shards … is a proven approach
// to enhance the scalability"; single-ledger clustering "do[es] not suffer
// from the latency of processing cross-shard transactions … However,
// exchanging messages between all clusters for every single transaction
// still results in high latency" (§1, §2.3.4).
//
// Sweep the shard/cluster count at a fixed 10% cross-shard ratio; series =
// simulated throughput for SharPer (sharded ledger) vs ResilientDB-style
// (single ledger, full replication). Expected shape: SharPer's throughput
// grows ~linearly with shards; the single-ledger design pays a global
// multicast per transaction and flattens out.
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "shard/resilientdb.h"
#include "shard/sharper.h"
#include "workload/workload.h"

namespace {

using namespace pbc;
using bench::LatencyTracker;
using bench::SimWorld;

constexpr uint64_t kSeed = 8;
constexpr int kTxnsPerShard = 40;
constexpr sim::Time kDeadline = 600'000'000;
constexpr uint32_t kShardCounts[] = {1, 2, 4, 8};

// One SharPer cell — simulated-time metrics only, so cells fan out on
// the scheduler.
bench::SeriesRow SharperCell(uint32_t shards) {
  SimWorld w(kSeed);
  shard::SharperSystem sys(&w.net, &w.registry, shards);
  LatencyTracker tracker(&w.simulator);
  size_t done = 0;
  sys.set_listener([&](txn::TxnId id, bool) {
    ++done;
    tracker.Committed(id);
  });
  w.net.Start();
  workload::ShardedTransfers gen(shards, 20, 1000, 0.1, 3);
  size_t total = 0;
  for (auto& d : gen.InitialDeposits()) {
    sys.Submit(std::move(d));
    ++total;
  }
  w.simulator.RunUntil([&] { return done >= total; }, kDeadline);
  sim::Time start = w.simulator.now();
  size_t base = done;
  size_t txns = kTxnsPerShard * shards;
  // Closed-loop burst: measures capacity, not arrival rate.
  for (size_t i = 0; i < txns; ++i) {
    auto t = gen.NextTransfer();
    tracker.Submitted(t.id);
    sys.Submit(std::move(t));
  }
  bool ok =
      w.simulator.RunUntil([&] { return done >= base + txns; }, kDeadline);
  double throughput =
      ok ? static_cast<double>(txns) /
               (static_cast<double>(w.simulator.now() - start) / 1e6)
         : 0;

  shard::ExportShardStats(sys.stats(), &w.metrics);
  bench::SeriesRow row;
  row.name = "SharPer/shards=" + std::to_string(shards);
  row.params = obs::Json::Object();
  row.params.Set("shards", shards);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("abort_rate", sys.stats().AbortRate());
  extra.Set("consensus_rounds",
            w.metrics.CounterValue("shard.consensus_rounds"));
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

// One ResilientDB-style cell (single ledger, full replication).
bench::SeriesRow ResilientDbCell(uint32_t clusters) {
  SimWorld w(kSeed);
  shard::ResilientDbSystem sys(&w.net, &w.registry, clusters);
  LatencyTracker tracker(&w.simulator);
  size_t done = 0;
  sys.set_listener([&](txn::TxnId id, bool) {
    ++done;
    tracker.Committed(id);
  });
  w.net.Start();
  // Same aggregate load, spread across clusters round-robin; the ledger
  // is single, so "cross-shard" has no meaning here.
  workload::ShardedTransfers gen(clusters, 20, 1000, 0.1, 3);
  size_t txns = kTxnsPerShard * clusters;
  sim::Time start = w.simulator.now();
  for (size_t i = 0; i < txns; ++i) {
    auto t = gen.NextTransfer();
    tracker.Submitted(t.id);
    sys.Submit(static_cast<uint32_t>(i % clusters), std::move(t));
  }
  bool ok = w.simulator.RunUntil([&] { return done >= txns; }, kDeadline);
  double throughput =
      ok ? static_cast<double>(txns) /
               (static_cast<double>(w.simulator.now() - start) / 1e6)
         : 0;

  bench::SeriesRow row;
  row.name = "ResilientDB/clusters=" + std::to_string(clusters);
  row.params = obs::Json::Object();
  row.params.Set("clusters", clusters);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("executed", sys.executed());
  extra.Set("consensus_rounds",
            w.metrics.CounterValue("shard.consensus_rounds"));
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

void BM_SharPer(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (uint32_t shards : kShardCounts) {
      cases.push_back([shards] { return SharperCell(shards); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kShardCounts));
}

void BM_ResilientDB(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (uint32_t clusters : kShardCounts) {
      cases.push_back([clusters] { return ResilientDbCell(clusters); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kShardCounts));
}

// Each BM fans its whole shard-count sweep across the scheduler (series
// rows land in sweep order regardless of completion order).
BENCHMARK(BM_SharPer)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResilientDB)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E8Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("txns_per_shard", kTxnsPerShard);
  c.Set("cross_shard_frac", 0.1);
  c.Set("deadline_us", kDeadline);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e8_sharding", kSeed, E8Config());
