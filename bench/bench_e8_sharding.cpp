// E8 — "Partitioning the data into multiple shards … is a proven approach
// to enhance the scalability"; single-ledger clustering "do[es] not suffer
// from the latency of processing cross-shard transactions … However,
// exchanging messages between all clusters for every single transaction
// still results in high latency" (§1, §2.3.4).
//
// Sweep the shard/cluster count at a fixed 10% cross-shard ratio; series =
// simulated throughput for SharPer (sharded ledger) vs ResilientDB-style
// (single ledger, full replication). Expected shape: SharPer's throughput
// grows ~linearly with shards; the single-ledger design pays a global
// multicast per transaction and flattens out.
#include <string>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "shard/resilientdb.h"
#include "shard/sharper.h"
#include "workload/workload.h"

namespace {

using namespace pbc;
using bench::LatencyTracker;
using bench::SimWorld;

constexpr uint64_t kSeed = 8;
constexpr int kTxnsPerShard = 40;
constexpr sim::Time kDeadline = 600'000'000;

void BM_SharPer(benchmark::State& state) {
  uint32_t shards = static_cast<uint32_t>(state.range(0));
  double throughput = 0;
  for (auto _ : state) {
    SimWorld w(kSeed);
    shard::SharperSystem sys(&w.net, &w.registry, shards);
    LatencyTracker tracker(&w.simulator);
    size_t done = 0;
    sys.set_listener([&](txn::TxnId id, bool) {
      ++done;
      tracker.Committed(id);
    });
    w.net.Start();
    workload::ShardedTransfers gen(shards, 20, 1000, 0.1, 3);
    size_t total = 0;
    for (auto& d : gen.InitialDeposits()) {
      sys.Submit(std::move(d));
      ++total;
    }
    w.simulator.RunUntil([&] { return done >= total; }, kDeadline);
    sim::Time start = w.simulator.now();
    size_t base = done;
    size_t txns = kTxnsPerShard * shards;
    // Closed-loop burst: measures capacity, not arrival rate.
    for (size_t i = 0; i < txns; ++i) {
      auto t = gen.NextTransfer();
      tracker.Submitted(t.id);
      sys.Submit(std::move(t));
    }
    bool ok = w.simulator.RunUntil(
        [&] { return done >= base + txns; }, kDeadline);
    throughput =
        ok ? static_cast<double>(txns) /
                 (static_cast<double>(w.simulator.now() - start) / 1e6)
           : 0;

    shard::ExportShardStats(sys.stats(), &w.metrics);
    obs::Json params = obs::Json::Object();
    params.Set("shards", shards);
    obs::Json extra = obs::Json::Object();
    extra.Set("completed", ok);
    extra.Set("abort_rate", sys.stats().AbortRate());
    extra.Set("consensus_rounds",
              w.metrics.CounterValue("shard.consensus_rounds"));
    obs::GlobalBenchReport().AddSeries(
        "SharPer/shards=" + std::to_string(shards), std::move(params),
        obs::BenchReport::StandardMetrics(throughput, tracker.hist(),
                                          w.net.stats().messages_sent,
                                          std::move(extra), &w.metrics));
  }
  state.counters["txn_per_simsec"] = throughput;
}

void BM_ResilientDB(benchmark::State& state) {
  uint32_t clusters = static_cast<uint32_t>(state.range(0));
  double throughput = 0;
  for (auto _ : state) {
    SimWorld w(kSeed);
    shard::ResilientDbSystem sys(&w.net, &w.registry, clusters);
    LatencyTracker tracker(&w.simulator);
    size_t done = 0;
    sys.set_listener([&](txn::TxnId id, bool) {
      ++done;
      tracker.Committed(id);
    });
    w.net.Start();
    // Same aggregate load, spread across clusters round-robin; the ledger
    // is single, so "cross-shard" has no meaning here.
    workload::ShardedTransfers gen(clusters, 20, 1000, 0.1, 3);
    size_t txns = kTxnsPerShard * clusters;
    sim::Time start = w.simulator.now();
    for (size_t i = 0; i < txns; ++i) {
      auto t = gen.NextTransfer();
      tracker.Submitted(t.id);
      sys.Submit(static_cast<uint32_t>(i % clusters), std::move(t));
    }
    bool ok =
        w.simulator.RunUntil([&] { return done >= txns; }, kDeadline);
    throughput =
        ok ? static_cast<double>(txns) /
                 (static_cast<double>(w.simulator.now() - start) / 1e6)
           : 0;

    obs::Json params = obs::Json::Object();
    params.Set("clusters", clusters);
    obs::Json extra = obs::Json::Object();
    extra.Set("completed", ok);
    extra.Set("executed", sys.executed());
    extra.Set("consensus_rounds",
              w.metrics.CounterValue("shard.consensus_rounds"));
    obs::GlobalBenchReport().AddSeries(
        "ResilientDB/clusters=" + std::to_string(clusters),
        std::move(params),
        obs::BenchReport::StandardMetrics(throughput, tracker.hist(),
                                          w.net.stats().messages_sent,
                                          std::move(extra), &w.metrics));
  }
  state.counters["txn_per_simsec"] = throughput;
}

#define SWEEP Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
BENCHMARK(BM_SharPer)->SWEEP->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResilientDB)->SWEEP->Unit(benchmark::kMillisecond);
#undef SWEEP

}  // namespace

namespace {
pbc::obs::Json E8Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("txns_per_shard", kTxnsPerShard);
  c.Set("cross_shard_frac", 0.1);
  c.Set("deadline_us", kDeadline);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e8_sharding", kSeed, E8Config());
