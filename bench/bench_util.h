// Shared helpers for the experiment benches (E1–E12, see DESIGN.md §5).
#ifndef PBC_BENCH_BENCH_UTIL_H_
#define PBC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "bench/bench_harness.h"
#include "consensus/cluster.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbc::bench {

/// A simulated world with a fresh network + registry. A metrics registry
/// and trace log are attached up front, so every instrumented layer
/// (simulator, network, consensus, sharding) records into `metrics` and
/// `trace` when the build has PBC_ENABLE_OBS; without it they stay empty.
struct SimWorld {
  explicit SimWorld(uint64_t seed, sim::Time base_latency_us = 500,
                    sim::Time jitter_us = 200)
      : seed(seed), simulator(seed), net(&simulator) {
    net.SetDefaultLatency({base_latency_us, jitter_us});
    simulator.AttachMetrics(&metrics);
    net.AttachObs(&metrics, &trace);
  }
  uint64_t seed;
  // Declared before simulator/net so they outlive them on destruction.
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  sim::Simulator simulator;
  sim::Network net;
  crypto::KeyRegistry registry;
};

/// Tracks per-transaction submit→commit latency in simulated time,
/// including a histogram for percentile reporting.
class LatencyTracker {
 public:
  explicit LatencyTracker(sim::Simulator* simulator)
      : simulator_(simulator) {}

  void Submitted(txn::TxnId id) { submit_[id] = simulator_->now(); }
  void Committed(txn::TxnId id) {
    auto it = submit_.find(id);
    if (it == submit_.end()) return;
    uint64_t delta = simulator_->now() - it->second;
    total_us_ += delta;
    ++count_;
    hist_.Record(delta);
    submit_.erase(it);
  }

  double MeanUs() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_us_) /
                             static_cast<double>(count_);
  }
  uint64_t count() const { return count_; }
  const obs::Histogram& hist() const { return hist_; }

 private:
  sim::Simulator* simulator_;
  std::map<txn::TxnId, sim::Time> submit_;
  obs::Histogram hist_;
  uint64_t total_us_ = 0;
  uint64_t count_ = 0;
};

/// Times `n` ops in a dedicated pass outside the google-benchmark loop
/// (per-op chrono reads inside the hot loop would skew ns-scale rates)
/// and emits one standard series row. The µs histogram feeds the schema's
/// latency percentiles; the ns histogram in `extra` keeps the precision
/// that sub-µs ops need.
inline void SampleAndEmit(const std::string& name, size_t n,
                          const std::function<void(size_t)>& op,
                          obs::Json extra = obs::Json::Object()) {
  obs::Histogram op_us, op_ns;
  for (size_t i = 0; i < n; ++i) {
    // detlint:allow(wall-clock) measuring real CPU cost of an op is this
    // helper's whole job; timings feed bench JSON, never committed state
    auto t0 = std::chrono::steady_clock::now();
    op(i);
    // detlint:allow(wall-clock) closes the per-op timing interval
    auto t1 = std::chrono::steady_clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    op_ns.Record(ns);
    op_us.Record(ns / 1000);
  }
  double secs = static_cast<double>(op_ns.sum()) / 1e9;
  obs::Json params = obs::Json::Object();
  params.Set("samples", n);
  extra.Set("op_latency_ns", obs::ToJson(op_ns));
  obs::GlobalBenchReport().AddSeries(
      name, std::move(params),
      obs::BenchReport::StandardMetrics(
          secs == 0 ? 0.0 : static_cast<double>(n) / secs, op_us,
          /*messages_sent=*/0, std::move(extra)));
}

}  // namespace pbc::bench

/// Replaces BENCHMARK_MAIN() for the experiment binaries: configures the
/// process-wide BenchReport, runs the registered benchmarks (which add
/// series rows via obs::GlobalBenchReport().AddSeries), then writes
/// BENCH_<bench_name>.json into the working directory.
#define PBC_BENCH_MAIN(bench_name, bench_seed, config_expr)               \
  int main(int argc, char** argv) {                                       \
    ::pbc::obs::GlobalBenchReport().Configure((bench_name), (bench_seed), \
                                              (config_expr));             \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    ::pbc::bench::AttachSchedulerStats();                                 \
    std::string path = ::pbc::obs::GlobalBenchReport().Write();           \
    if (!path.empty()) {                                                  \
      std::fprintf(stderr, "bench report: %s\n", path.c_str());           \
    }                                                                     \
    return 0;                                                             \
  }

#endif  // PBC_BENCH_BENCH_UTIL_H_
