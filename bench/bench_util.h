// Shared helpers for the experiment benches (E1–E12, see DESIGN.md §5).
#ifndef PBC_BENCH_BENCH_UTIL_H_
#define PBC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <map>

#include "consensus/cluster.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbc::bench {

/// A simulated world with a fresh network + registry.
struct SimWorld {
  explicit SimWorld(uint64_t seed, sim::Time base_latency_us = 500,
                    sim::Time jitter_us = 200)
      : simulator(seed), net(&simulator) {
    net.SetDefaultLatency({base_latency_us, jitter_us});
  }
  sim::Simulator simulator;
  sim::Network net;
  crypto::KeyRegistry registry;
};

/// Tracks per-transaction submit→commit latency in simulated time.
class LatencyTracker {
 public:
  explicit LatencyTracker(sim::Simulator* simulator)
      : simulator_(simulator) {}

  void Submitted(txn::TxnId id) { submit_[id] = simulator_->now(); }
  void Committed(txn::TxnId id) {
    auto it = submit_.find(id);
    if (it == submit_.end()) return;
    total_us_ += simulator_->now() - it->second;
    ++count_;
    submit_.erase(it);
  }

  double MeanUs() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_us_) /
                             static_cast<double>(count_);
  }
  uint64_t count() const { return count_; }

 private:
  sim::Simulator* simulator_;
  std::map<txn::TxnId, sim::Time> submit_;
  uint64_t total_us_ = 0;
  uint64_t count_ = 0;
};

}  // namespace pbc::bench

#endif  // PBC_BENCH_BENCH_UTIL_H_
