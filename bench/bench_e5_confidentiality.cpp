// E5 — "view-based techniques are costly in managing views … Cryptographic
// techniques … result in the overhead of maintaining data in the
// blockchain ledger and blockchain state of irrelevant enterprises"
// (§2.3.1 Discussion).
//
// A fixed confidential-workload (pairs of enterprises sharing secrets
// inside a 6-enterprise consortium) implemented three ways:
//   channels    — one extra channel per confidential pair,
//   pdc         — one private data collection per pair on a single channel,
//   single      — everything on one channel (no confidentiality; baseline).
// Series = ledger blocks stored per enterprise (replication/integration
// cost), admin objects (channels/collections to manage), plaintext
// replication factor, and wall-clock cost of the hashing overhead.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <string>

#include "bench/bench_util.h"
#include "confidential/channels.h"
#include "confidential/private_data.h"
#include "obs/report.h"

namespace {

using namespace pbc;
using namespace pbc::confidential;

constexpr uint64_t kSeed = 0;  // deterministic workload, no randomness
constexpr uint32_t kEnterprises = 6;
constexpr int kTxnsPerPair = 50;

// Wall-clock timer helper: records each iteration's duration and adds a
// standard series row at the end of the benchmark.
class E5Series {
 public:
  explicit E5Series(const char* name) : name_(name) {}
  void TimeIteration(const std::function<void()>& body) {
    // detlint:allow(wall-clock) wall-clock bench helper: the iteration
    // duration is the measurement itself, never committed state
    auto t0 = std::chrono::steady_clock::now();
    body();
    // detlint:allow(wall-clock) closes the iteration timing interval
    auto t1 = std::chrono::steady_clock::now();
    run_latency_us_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
  }
  void Emit(uint64_t txns, obs::Json extra) {
    double secs = static_cast<double>(run_latency_us_.sum()) / 1e6;
    extra.Set("run_latency_us", obs::ToJson(run_latency_us_));
    obs::GlobalBenchReport().AddSeries(
        name_, obs::Json::Object(),
        obs::BenchReport::StandardMetrics(
            secs == 0 ? 0.0
                      : static_cast<double>(txns) * run_latency_us_.count() /
                            secs,
            run_latency_us_, /*messages_sent=*/0, std::move(extra)));
  }

 private:
  std::string name_;
  obs::Histogram run_latency_us_;
};

std::vector<std::pair<uint32_t, uint32_t>> Pairs() {
  // Each adjacent pair shares confidential data.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t e = 0; e + 1 < kEnterprises; ++e) pairs.push_back({e, e + 1});
  return pairs;
}

void BM_Channels(benchmark::State& state) {
  uint64_t blocks_per_enterprise = 0, admin_objects = 0;
  E5Series series("channels");
  for (auto _ : state) {
    series.TimeIteration([&] {
      ChannelSystem sys;
      sys.CreateChannel(0, {0, 1, 2, 3, 4, 5});  // the consortium channel
      uint32_t next = 1;
      for (auto [a, b] : Pairs()) sys.CreateChannel(next++, {a, b});
      txn::TxnId id = 1;
      uint32_t ch = 1;
      for (auto [a, b] : Pairs()) {
        for (int i = 0; i < kTxnsPerPair; ++i) {
          txn::Transaction t;
          t.id = id++;
          t.ops.push_back(txn::Op::Write("secret" + std::to_string(i), "v"));
          sys.Submit(ch, a, t);
        }
        ++ch;
      }
      blocks_per_enterprise = sys.LedgerBlocksStoredBy(1);
      admin_objects = sys.num_channels();
    });
  }
  state.counters["ledger_blocks_ent1"] =
      static_cast<double>(blocks_per_enterprise);
  state.counters["admin_objects"] = static_cast<double>(admin_objects);
  state.counters["plaintext_replicas"] = 2;  // only the pair stores data

  obs::Json extra = obs::Json::Object();
  extra.Set("ledger_blocks_ent1", blocks_per_enterprise);
  extra.Set("admin_objects", admin_objects);
  extra.Set("plaintext_replicas", 2);
  series.Emit(Pairs().size() * kTxnsPerPair, std::move(extra));
}

void BM_PrivateDataCollections(benchmark::State& state) {
  uint64_t hash_entries = 0, admin_objects = 0;
  E5Series series("pdc");
  for (auto _ : state) {
    series.TimeIteration([&] {
      PdcChannel channel({0, 1, 2, 3, 4, 5});
      for (auto [a, b] : Pairs()) {
        channel.DefineCollection("c" + std::to_string(a), {a, b});
      }
      admin_objects = Pairs().size();
      uint64_t salt = 0;
      for (auto [a, b] : Pairs()) {
        for (int i = 0; i < kTxnsPerPair; ++i) {
          channel.PutPrivate("c" + std::to_string(a), a,
                             "secret" + std::to_string(i), "v", salt++);
        }
      }
      hash_entries = Pairs().size() * kTxnsPerPair;
    });
  }
  // Every channel member (all 6) stores every hash: the "data in ledgers
  // of irrelevant enterprises" overhead.
  state.counters["onledger_hashes_all_members"] =
      static_cast<double>(hash_entries);
  state.counters["admin_objects"] = static_cast<double>(admin_objects);
  state.counters["plaintext_replicas"] = 2;

  obs::Json extra = obs::Json::Object();
  extra.Set("onledger_hashes_all_members", hash_entries);
  extra.Set("admin_objects", admin_objects);
  extra.Set("plaintext_replicas", 2);
  series.Emit(Pairs().size() * kTxnsPerPair, std::move(extra));
}

void BM_SingleChannelBaseline(benchmark::State& state) {
  uint64_t blocks = 0;
  E5Series series("single_channel");
  for (auto _ : state) {
    series.TimeIteration([&] {
      ChannelSystem sys;
      sys.CreateChannel(0, {0, 1, 2, 3, 4, 5});
      txn::TxnId id = 1;
      for (auto [a, b] : Pairs()) {
        for (int i = 0; i < kTxnsPerPair; ++i) {
          txn::Transaction t;
          t.id = id++;
          t.ops.push_back(txn::Op::Write("secret" + std::to_string(i), "v"));
          sys.Submit(0, a, t);
        }
      }
      blocks = sys.LedgerBlocksStoredBy(1);
    });
  }
  state.counters["ledger_blocks_ent1"] = static_cast<double>(blocks);
  state.counters["admin_objects"] = 1;
  // No confidentiality: all 6 enterprises hold plaintext.
  state.counters["plaintext_replicas"] = 6;

  obs::Json extra = obs::Json::Object();
  extra.Set("ledger_blocks_ent1", blocks);
  extra.Set("admin_objects", 1);
  extra.Set("plaintext_replicas", 6);
  series.Emit(Pairs().size() * kTxnsPerPair, std::move(extra));
}

BENCHMARK(BM_Channels)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrivateDataCollections)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleChannelBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E5Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("enterprises", kEnterprises);
  c.Set("txns_per_pair", kTxnsPerPair);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e5_confidentiality", kSeed, E5Config());
