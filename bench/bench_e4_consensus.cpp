// E4 — consensus protocol comparison (§2.2, §2.3.3): PBFT's all-to-all
// phases vs HotStuff's linear votes vs Raft's CFT simplicity vs
// Tendermint's per-height rounds with rotation.
//
// Sweep cluster size; series = simulated-time throughput, mean commit
// latency, and messages per committed transaction. Expected shape: PBFT
// msgs/txn grows ~n², HotStuff ~n; Raft cheapest (no signatures, leader
// fan-out); Tendermint pays a full round per height.
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "consensus/hotstuff.h"
#include "consensus/paxos.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "consensus/tendermint.h"
#include "obs/report.h"

namespace {

using namespace pbc;
using bench::LatencyTracker;
using bench::SimWorld;

constexpr uint64_t kSeed = 42;
constexpr int kTxns = 200;
constexpr sim::Time kDeadline = 300'000'000;

constexpr size_t kClusterSizes[] = {4, 7, 13, 25};

// One (protocol, n) cell — pure function of its parameters and kSeed
// (all metrics are simulated-time), so cells fan out on the scheduler.
template <typename ReplicaT>
bench::SeriesRow ConsensusCell(const char* label, size_t n) {
  SimWorld w(kSeed);
  consensus::Cluster<ReplicaT> cluster(&w.net, &w.registry, n);
  LatencyTracker tracker(&w.simulator);
  cluster.replica(0)->set_commit_listener(
      [&](sim::NodeId, uint64_t, const consensus::Batch& batch) {
        for (const auto& t : batch.txns) tracker.Committed(t.id);
      });
  w.net.Start();
  for (int i = 0; i < kTxns; ++i) {
    auto t = consensus::MakeKvTxn(i + 1, "k" + std::to_string(i % 17), "v");
    tracker.Submitted(t.id);
    cluster.Submit(t);
  }
  bool ok = w.simulator.RunUntil(
      [&] { return cluster.MinCommitted() >= kTxns; }, kDeadline);
  sim::Time elapsed = w.simulator.now();
  double throughput = ok ? static_cast<double>(kTxns) /
                               (static_cast<double>(elapsed) / 1e6)
                         : 0.0;
  double msgs_per_txn =
      static_cast<double>(w.net.stats().messages_sent) / kTxns;

  bench::SeriesRow row;
  row.name = std::string(label) + "/n=" + std::to_string(n);
  row.params = obs::Json::Object();
  row.params.Set("n", n);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("sim_elapsed_us", elapsed);
  extra.Set("msgs_per_txn", msgs_per_txn);
  extra.Set("view_changes", w.metrics.CounterValue("consensus.view_changes"));
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

template <typename ReplicaT>
void RunConsensus(benchmark::State& state, const char* label) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (size_t n : kClusterSizes) {
      cases.push_back([label, n] { return ConsensusCell<ReplicaT>(label, n); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kClusterSizes));
}

void BM_PBFT(benchmark::State& state) {
  RunConsensus<consensus::PbftReplica>(state, "PBFT");
}
void BM_Raft(benchmark::State& state) {
  RunConsensus<consensus::RaftReplica>(state, "Raft");
}
void BM_HotStuff(benchmark::State& state) {
  RunConsensus<consensus::HotStuffReplica>(state, "HotStuff");
}
void BM_Tendermint(benchmark::State& state) {
  RunConsensus<consensus::TendermintReplica>(state, "Tendermint");
}
void BM_Paxos(benchmark::State& state) {
  RunConsensus<consensus::PaxosReplica>(state, "Paxos");
}

// Each BM fans its whole cluster-size sweep across the scheduler (series
// rows land in sweep order regardless of completion order).
BENCHMARK(BM_PBFT)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Raft)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Paxos)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotStuff)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tendermint)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E4Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("txns", kTxns);
  c.Set("deadline_us", kDeadline);
  c.Set("base_latency_us", 500);
  c.Set("jitter_us", 200);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e4_consensus", kSeed, E4Config());
