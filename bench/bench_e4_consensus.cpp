// E4 — consensus protocol comparison (§2.2, §2.3.3): PBFT's all-to-all
// phases vs HotStuff's linear votes vs Raft's CFT simplicity vs
// Tendermint's per-height rounds with rotation.
//
// Sweep cluster size; series = simulated-time throughput, mean commit
// latency, and messages per committed transaction. Expected shape: PBFT
// msgs/txn grows ~n², HotStuff ~n; Raft cheapest (no signatures, leader
// fan-out); Tendermint pays a full round per height.
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "consensus/hotstuff.h"
#include "consensus/paxos.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "consensus/tendermint.h"
#include "obs/report.h"

namespace {

using namespace pbc;
using bench::LatencyTracker;
using bench::SimWorld;

constexpr uint64_t kSeed = 42;
constexpr int kTxns = 200;
constexpr sim::Time kDeadline = 300'000'000;

constexpr size_t kClusterSizes[] = {4, 7, 13, 25};

// One (protocol, n) cell — pure function of its parameters and kSeed
// (all metrics are simulated-time), so cells fan out on the scheduler.
template <typename ReplicaT>
bench::SeriesRow ConsensusCell(const char* label, size_t n) {
  SimWorld w(kSeed);
  consensus::Cluster<ReplicaT> cluster(&w.net, &w.registry, n);
  LatencyTracker tracker(&w.simulator);
  cluster.replica(0)->set_commit_listener(
      [&](sim::NodeId, uint64_t, const consensus::Batch& batch) {
        for (const auto& t : batch.txns) tracker.Committed(t.id);
      });
  w.net.Start();
  for (int i = 0; i < kTxns; ++i) {
    auto t = consensus::MakeKvTxn(i + 1, "k" + std::to_string(i % 17), "v");
    tracker.Submitted(t.id);
    cluster.Submit(t);
  }
  bool ok = w.simulator.RunUntil(
      [&] { return cluster.MinCommitted() >= kTxns; }, kDeadline);
  sim::Time elapsed = w.simulator.now();
  double throughput = ok ? static_cast<double>(kTxns) /
                               (static_cast<double>(elapsed) / 1e6)
                         : 0.0;
  double msgs_per_txn =
      static_cast<double>(w.net.stats().messages_sent) / kTxns;

  bench::SeriesRow row;
  row.name = std::string(label) + "/n=" + std::to_string(n);
  row.params = obs::Json::Object();
  row.params.Set("n", n);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("sim_elapsed_us", elapsed);
  extra.Set("msgs_per_txn", msgs_per_txn);
  extra.Set("view_changes", w.metrics.CounterValue("consensus.view_changes"));
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

template <typename ReplicaT>
void RunConsensus(benchmark::State& state, const char* label) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (size_t n : kClusterSizes) {
      cases.push_back([label, n] { return ConsensusCell<ReplicaT>(label, n); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kClusterSizes));
}

void BM_PBFT(benchmark::State& state) {
  RunConsensus<consensus::PbftReplica>(state, "PBFT");
}
void BM_Raft(benchmark::State& state) {
  RunConsensus<consensus::RaftReplica>(state, "Raft");
}
void BM_HotStuff(benchmark::State& state) {
  RunConsensus<consensus::HotStuffReplica>(state, "HotStuff");
}
void BM_Tendermint(benchmark::State& state) {
  RunConsensus<consensus::TendermintReplica>(state, "Tendermint");
}
void BM_Paxos(benchmark::State& state) {
  RunConsensus<consensus::PaxosReplica>(state, "Paxos");
}

// Each BM fans its whole cluster-size sweep across the scheduler (series
// rows land in sweep order regardless of completion order).
BENCHMARK(BM_PBFT)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Raft)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Paxos)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HotStuff)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tendermint)->Iterations(1)->Unit(benchmark::kMillisecond);

// --- Block-pipeline sweep: block size × offered load ------------------------
//
// block_max=0 is the per-txn ordering baseline (inline batches capped at
// one txn): every transaction pays a full consensus round. With the
// block pipeline enabled, one round orders a 32-byte hash covering up to
// block_max txns, so simulated-time throughput should scale roughly with
// the block size until the timer cut dominates.
constexpr size_t kBlockMaxes[] = {0, 10, 50, 100, 200};
constexpr int kOfferedLoads[] = {200, 400};

template <typename ReplicaT>
bench::SeriesRow BlockPipelineCell(const char* label, size_t block_max,
                                   int offered) {
  SimWorld w(kSeed);
  consensus::ClusterConfig cfg;
  if (block_max == 0) {
    cfg.batch_size = 1;  // per-txn baseline: one consensus round per txn
  } else {
    cfg.block.enabled = true;
    cfg.block.max_txns = block_max;
    cfg.block.max_delay_us = 5000;
  }
  consensus::Cluster<ReplicaT> cluster(&w.net, &w.registry, 4, cfg);
  LatencyTracker tracker(&w.simulator);
  cluster.replica(0)->set_commit_listener(
      [&](sim::NodeId, uint64_t, const consensus::Batch& batch) {
        for (const auto& t : batch.txns) tracker.Committed(t.id);
      });
  w.net.Start();
  for (int i = 0; i < offered; ++i) {
    auto t = consensus::MakeKvTxn(i + 1, "k" + std::to_string(i % 17), "v");
    tracker.Submitted(t.id);
    cluster.Submit(t);
  }
  bool ok = w.simulator.RunUntil(
      [&] { return cluster.MinCommitted() >= static_cast<uint64_t>(offered); },
      kDeadline);
  sim::Time elapsed = w.simulator.now();
  double throughput = ok ? static_cast<double>(offered) /
                               (static_cast<double>(elapsed) / 1e6)
                         : 0.0;
  uint64_t chain_blocks = cluster.replica(0)->chain().height();

  bench::SeriesRow row;
  row.name = std::string(label) + "/block=" + std::to_string(block_max) +
             "/offered=" + std::to_string(offered);
  row.params = obs::Json::Object();
  row.params.Set("block_max_txns", block_max);
  row.params.Set("offered", offered);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("sim_elapsed_us", elapsed);
  extra.Set("chain_blocks", chain_blocks);
  extra.Set("txns_per_block",
            chain_blocks == 0
                ? 0.0
                : static_cast<double>(offered) / chain_blocks);
  extra.Set("msgs_per_txn",
            static_cast<double>(w.net.stats().messages_sent) / offered);
  row.metrics = obs::BenchReport::StandardMetrics(
      throughput, tracker.hist(), w.net.stats().messages_sent,
      std::move(extra), &w.metrics);
  return row;
}

template <typename ReplicaT>
void RunBlockPipeline(benchmark::State& state, const char* label) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (size_t block_max : kBlockMaxes) {
      for (int offered : kOfferedLoads) {
        cases.push_back([label, block_max, offered] {
          return BlockPipelineCell<ReplicaT>(label, block_max, offered);
        });
      }
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kBlockMaxes) *
                                                std::size(kOfferedLoads));
}

void BM_PBFTBlockPipeline(benchmark::State& state) {
  RunBlockPipeline<consensus::PbftReplica>(state, "PBFT-blocks");
}
void BM_RaftBlockPipeline(benchmark::State& state) {
  RunBlockPipeline<consensus::RaftReplica>(state, "Raft-blocks");
}

BENCHMARK(BM_PBFTBlockPipeline)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RaftBlockPipeline)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E4Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("txns", kTxns);
  c.Set("deadline_us", kDeadline);
  c.Set("base_latency_us", 500);
  c.Set("jitter_us", 200);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e4_consensus", kSeed, E4Config());
