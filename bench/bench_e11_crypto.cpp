// E11 — crypto substrate microbenchmarks supporting the E5/E7 overhead
// claims: hashing, Merkle trees, authenticators, commitments, Σ-protocol
// proofs, range proofs, confidential transfers.
#include <benchmark/benchmark.h>

#include "crypto/auth.h"
#include "crypto/group.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "verify/zkp.h"

namespace {

using namespace pbc;
using namespace pbc::crypto;

void BM_Sha256(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));
}

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes msg(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, msg));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * msg.size()));
}

void BM_MerkleBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Digest("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
  state.counters["leaves_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n),
      benchmark::Counter::kIsRate);
}

void BM_MerkleProveVerify(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Digest("leaf" + std::to_string(i)));
  }
  MerkleTree tree(leaves);
  size_t i = 0;
  for (auto _ : state) {
    auto proof = tree.Prove(i % n).ValueOrDie();
    benchmark::DoNotOptimize(
        MerkleTree::Verify(tree.root(), leaves[i % n], proof));
    ++i;
  }
}

void BM_SignVerify(benchmark::State& state) {
  KeyRegistry registry;
  PrivateKey key = registry.Register(1);
  Bytes msg(256, 0xcd);
  for (auto _ : state) {
    Signature sig = key.Sign(msg);
    benchmark::DoNotOptimize(registry.Verify(msg, sig));
  }
}

void BM_PedersenCommit(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PedersenCommit(Scalar(12345), Scalar::Random(&rng)));
  }
}

void BM_OpeningProve(benchmark::State& state) {
  Rng rng(1);
  Scalar m(7), r = Scalar::Random(&rng);
  auto c = PedersenCommit(m, r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::ProveOpening(c, m, r, &rng));
  }
}

void BM_OpeningVerify(benchmark::State& state) {
  Rng rng(1);
  Scalar m(7), r = Scalar::Random(&rng);
  auto c = PedersenCommit(m, r);
  auto proof = verify::ProveOpening(c, m, r, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::VerifyOpening(c, proof));
  }
}

void BM_RangeProve(benchmark::State& state) {
  uint32_t bits = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  Scalar r = Scalar::Random(&rng);
  auto c = PedersenCommit(Scalar(3), r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::ProveRange(c, 3, r, bits, &rng));
  }
}

void BM_RangeVerify(benchmark::State& state) {
  uint32_t bits = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  Scalar r = Scalar::Random(&rng);
  auto c = PedersenCommit(Scalar(3), r);
  auto proof = verify::ProveRange(c, 3, r, bits, &rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::VerifyRange(c, proof));
  }
}

void BM_TransferVerify(benchmark::State& state) {
  Rng rng(1);
  verify::Note input{100, Scalar::Random(&rng), rng.NextU64()};
  verify::Note pay, change;
  auto t = verify::MakeTransfer(input, 30, 16, &rng, &pay, &change)
               .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::VerifyTransfer(t));
  }
}

BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_MerkleProveVerify)->Arg(256)->Arg(4096);
BENCHMARK(BM_SignVerify);
BENCHMARK(BM_PedersenCommit);
BENCHMARK(BM_OpeningProve);
BENCHMARK(BM_OpeningVerify);
BENCHMARK(BM_RangeProve)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_RangeVerify)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_TransferVerify);

}  // namespace

BENCHMARK_MAIN();
