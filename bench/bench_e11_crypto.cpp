// E11 — crypto substrate microbenchmarks supporting the E5/E7 overhead
// claims: hashing, Merkle trees, authenticators, commitments, Σ-protocol
// proofs, range proofs, confidential transfers.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "crypto/auth.h"
#include "crypto/group.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "obs/report.h"
#include "verify/zkp.h"

namespace {

using namespace pbc;
using namespace pbc::crypto;
using bench::SampleAndEmit;

constexpr uint64_t kSeed = 0;  // fixed inputs; generators use local seeds

void BM_Sha256(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * size));

  SampleAndEmit("sha256/bytes=" + std::to_string(size), 5000,
                [&](size_t) { benchmark::DoNotOptimize(Sha256::Digest(data)); });
}

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes msg(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, msg));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * msg.size()));

  SampleAndEmit("hmac_sha256/bytes=" + std::to_string(msg.size()), 5000,
                [&](size_t) { benchmark::DoNotOptimize(HmacSha256(key, msg)); });
}

void BM_MerkleBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Digest("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
  state.counters["leaves_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n),
      benchmark::Counter::kIsRate);

  SampleAndEmit("merkle_build/leaves=" + std::to_string(n), 200,
                [&](size_t) {
                  MerkleTree tree(leaves);
                  benchmark::DoNotOptimize(tree.root());
                });
}

void BM_MerkleProveVerify(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Hash256> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Digest("leaf" + std::to_string(i)));
  }
  MerkleTree tree(leaves);
  size_t i = 0;
  for (auto _ : state) {
    auto proof = tree.Prove(i % n).ValueOrDie();
    benchmark::DoNotOptimize(
        MerkleTree::Verify(tree.root(), leaves[i % n], proof));
    ++i;
  }

  SampleAndEmit("merkle_prove_verify/leaves=" + std::to_string(n), 2000,
                [&](size_t j) {
                  auto proof = tree.Prove(j % n).ValueOrDie();
                  benchmark::DoNotOptimize(
                      MerkleTree::Verify(tree.root(), leaves[j % n], proof));
                });
}

void BM_SignVerify(benchmark::State& state) {
  KeyRegistry registry;
  PrivateKey key = registry.Register(1);
  Bytes msg(256, 0xcd);
  for (auto _ : state) {
    Signature sig = key.Sign(msg);
    benchmark::DoNotOptimize(registry.Verify(msg, sig));
  }

  SampleAndEmit("sign_verify", 5000, [&](size_t) {
    Signature sig = key.Sign(msg);
    benchmark::DoNotOptimize(registry.Verify(msg, sig));
  });
}

void BM_PedersenCommit(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PedersenCommit(Scalar(12345), Scalar::Random(&rng)));
  }

  SampleAndEmit("pedersen_commit", 2000, [&](size_t) {
    benchmark::DoNotOptimize(
        PedersenCommit(Scalar(12345), Scalar::Random(&rng)));
  });
}

void BM_OpeningProve(benchmark::State& state) {
  Rng rng(1);
  Scalar m(7), r = Scalar::Random(&rng);
  auto c = PedersenCommit(m, r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::ProveOpening(c, m, r, &rng));
  }

  SampleAndEmit("opening_prove", 2000, [&](size_t) {
    benchmark::DoNotOptimize(verify::ProveOpening(c, m, r, &rng));
  });
}

void BM_OpeningVerify(benchmark::State& state) {
  Rng rng(1);
  Scalar m(7), r = Scalar::Random(&rng);
  auto c = PedersenCommit(m, r);
  auto proof = verify::ProveOpening(c, m, r, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::VerifyOpening(c, proof));
  }

  SampleAndEmit("opening_verify", 2000, [&](size_t) {
    benchmark::DoNotOptimize(verify::VerifyOpening(c, proof));
  });
}

void BM_RangeProve(benchmark::State& state) {
  uint32_t bits = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  Scalar r = Scalar::Random(&rng);
  auto c = PedersenCommit(Scalar(3), r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::ProveRange(c, 3, r, bits, &rng));
  }

  SampleAndEmit("range_prove/bits=" + std::to_string(bits), 100,
                [&](size_t) {
                  benchmark::DoNotOptimize(
                      verify::ProveRange(c, 3, r, bits, &rng));
                });
}

void BM_RangeVerify(benchmark::State& state) {
  uint32_t bits = static_cast<uint32_t>(state.range(0));
  Rng rng(1);
  Scalar r = Scalar::Random(&rng);
  auto c = PedersenCommit(Scalar(3), r);
  auto proof = verify::ProveRange(c, 3, r, bits, &rng).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::VerifyRange(c, proof));
  }

  SampleAndEmit("range_verify/bits=" + std::to_string(bits), 100,
                [&](size_t) {
                  benchmark::DoNotOptimize(verify::VerifyRange(c, proof));
                });
}

void BM_TransferVerify(benchmark::State& state) {
  Rng rng(1);
  verify::Note input{100, Scalar::Random(&rng), rng.NextU64()};
  verify::Note pay, change;
  auto t = verify::MakeTransfer(input, 30, 16, &rng, &pay, &change)
               .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::VerifyTransfer(t));
  }

  SampleAndEmit("transfer_verify", 100, [&](size_t) {
    benchmark::DoNotOptimize(verify::VerifyTransfer(t));
  });
}

BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);
BENCHMARK(BM_MerkleBuild)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_MerkleProveVerify)->Arg(256)->Arg(4096);
BENCHMARK(BM_SignVerify);
BENCHMARK(BM_PedersenCommit);
BENCHMARK(BM_OpeningProve);
BENCHMARK(BM_OpeningVerify);
BENCHMARK(BM_RangeProve)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_RangeVerify)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_TransferVerify);

}  // namespace

namespace {
pbc::obs::Json E11Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("note", "crypto substrate microbenchmarks");
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e11_crypto", kSeed, E11Config());
