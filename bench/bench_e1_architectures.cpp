// E1 — "the OX architecture suffers from low performance due to the
// sequential execution of all transactions whereas both OXII and XOV
// architectures are able to execute transactions in parallel" (§2.3.3).
//
// Conflict-free workload with per-transaction contract cost; series =
// wall-clock throughput per architecture × worker-thread count. Expected
// shape: OX flat in threads; OXII/XOV/FastFabric scale with threads.
#include <benchmark/benchmark.h>

#include "arch/architecture.h"
#include "arch/xov.h"
#include "workload/workload.h"

namespace {

using namespace pbc;

constexpr size_t kBlockSize = 128;
constexpr int kBlocks = 8;
constexpr int64_t kComputeRounds = 120;  // contract cost per transaction

workload::ZipfianKv MakeGen() {
  workload::ZipfianKv::Options opt;
  opt.hot_probability = 0.0;  // conflict-free: isolates execution cost
  opt.cold_keys = 1 << 20;
  opt.compute_rounds = kComputeRounds;
  return workload::ZipfianKv(opt, 1);
}

template <typename Arch>
void RunArch(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ThreadPool pool(threads);
    Arch arch(&pool);
    auto gen = MakeGen();
    std::vector<std::vector<txn::Transaction>> blocks;
    for (int b = 0; b < kBlocks; ++b) blocks.push_back(gen.Block(kBlockSize));
    state.ResumeTiming();
    for (const auto& block : blocks) arch.ProcessBlock(block);
    state.PauseTiming();
    state.counters["committed"] =
        static_cast<double>(arch.stats().committed);
    state.ResumeTiming();
  }
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(kBlocks * kBlockSize) * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_OX(benchmark::State& state) { RunArch<arch::OxArchitecture>(state); }
void BM_OXII(benchmark::State& state) {
  RunArch<arch::OxiiArchitecture>(state);
}
void BM_XOV(benchmark::State& state) {
  RunArch<arch::XovArchitecture>(state);
}
void BM_FastFabric(benchmark::State& state) {
  RunArch<arch::FastFabricArchitecture>(state);
}

BENCHMARK(BM_OX)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OXII)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XOV)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FastFabric)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
