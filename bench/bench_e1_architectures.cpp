// E1 — "the OX architecture suffers from low performance due to the
// sequential execution of all transactions whereas both OXII and XOV
// architectures are able to execute transactions in parallel" (§2.3.3).
//
// Conflict-free workload with per-transaction contract cost; series =
// wall-clock throughput per architecture × worker-thread count. Expected
// shape: OX flat in threads; OXII/XOV/FastFabric scale with threads.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "arch/architecture.h"
#include "arch/xov.h"
#include "bench/bench_util.h"
#include "obs/report.h"
#include "workload/workload.h"

namespace {

using namespace pbc;

constexpr uint64_t kSeed = 1;
constexpr size_t kBlockSize = 128;
constexpr int kBlocks = 8;
constexpr int64_t kComputeRounds = 120;  // contract cost per transaction

workload::ZipfianKv MakeGen() {
  workload::ZipfianKv::Options opt;
  opt.hot_probability = 0.0;  // conflict-free: isolates execution cost
  opt.cold_keys = 1 << 20;
  opt.compute_rounds = kComputeRounds;
  return workload::ZipfianKv(opt, 1);
}

template <typename Arch>
void RunArch(benchmark::State& state, const char* label) {
  size_t threads = static_cast<size_t>(state.range(0));
  obs::Histogram block_latency_us;  // wall-clock per ProcessBlock
  obs::MetricsRegistry reg;
  double total_secs = 0;
  uint64_t total_txns = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ThreadPool pool(threads);
    Arch arch(&pool);
    auto gen = MakeGen();
    std::vector<std::vector<txn::Transaction>> blocks;
    for (int b = 0; b < kBlocks; ++b) blocks.push_back(gen.Block(kBlockSize));
    state.ResumeTiming();
    for (const auto& block : blocks) {
      // detlint:allow(wall-clock) real-threaded pipeline bench: block
      // latency is the measurement itself, never committed state
      auto t0 = std::chrono::steady_clock::now();
      arch.ProcessBlock(block);
      // detlint:allow(wall-clock) closes the per-block timing interval
      auto t1 = std::chrono::steady_clock::now();
      block_latency_us.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()));
    }
    state.PauseTiming();
    state.counters["committed"] =
        static_cast<double>(arch.stats().committed);
    total_txns += arch.stats().committed;
    reg.Clear();
    arch.ExportMetrics(&reg);
    state.ResumeTiming();
  }
  total_secs = static_cast<double>(block_latency_us.sum()) / 1e6;
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(kBlocks * kBlockSize) * state.iterations(),
      benchmark::Counter::kIsRate);

  obs::Json params = obs::Json::Object();
  params.Set("threads", threads);
  obs::Json extra = obs::Json::Object();
  extra.Set("block_latency_us", obs::ToJson(block_latency_us));
  obs::GlobalBenchReport().AddSeries(
      std::string(label) + "/threads=" + std::to_string(threads),
      std::move(params),
      obs::BenchReport::StandardMetrics(
          total_secs == 0 ? 0.0 : static_cast<double>(total_txns) / total_secs,
          block_latency_us, /*messages_sent=*/0, std::move(extra), &reg));
}

void BM_OX(benchmark::State& state) {
  RunArch<arch::OxArchitecture>(state, "OX");
}
void BM_OXII(benchmark::State& state) {
  RunArch<arch::OxiiArchitecture>(state, "OXII");
}
void BM_XOV(benchmark::State& state) {
  RunArch<arch::XovArchitecture>(state, "XOV");
}
void BM_FastFabric(benchmark::State& state) {
  RunArch<arch::FastFabricArchitecture>(state, "FastFabric");
}

BENCHMARK(BM_OX)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OXII)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XOV)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FastFabric)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(benchmark::kMillisecond);

// --- Block-size sweep: validation parallelism vs block granularity ----------
//
// Fixed offered load carved into blocks of varying size, validated by
// FastFabric's conflict-graph ParallelValidator on 8 workers. Bigger
// blocks expose wider conflict-graph levels (more independent txns per
// level → more parallelism and more work-stealing); tiny blocks
// degenerate toward serial validation. Mild contention (10% hot keys)
// keeps the conflict graph non-trivial so width/level stats mean
// something.
void BM_FastFabricBlockSize(benchmark::State& state) {
  size_t block_size = static_cast<size_t>(state.range(0));
  constexpr size_t kSweepThreads = 8;
  constexpr size_t kSweepTxns = 2048;  // constant load across cells
  const int blocks = static_cast<int>(kSweepTxns / block_size);
  obs::Histogram block_latency_us;
  obs::MetricsRegistry reg;
  uint64_t total_txns = 0;
  ThreadPool::Stats pool_stats;
  arch::ArchStats arch_stats;
  for (auto _ : state) {
    state.PauseTiming();
    ThreadPool pool(kSweepThreads);
    arch::FastFabricArchitecture arch(&pool);
    workload::ZipfianKv::Options opt;
    opt.hot_probability = 0.1;
    opt.cold_keys = 1 << 20;
    opt.compute_rounds = kComputeRounds;
    workload::ZipfianKv gen(opt, 1);
    std::vector<std::vector<txn::Transaction>> load;
    for (int b = 0; b < blocks; ++b) load.push_back(gen.Block(block_size));
    state.ResumeTiming();
    for (const auto& block : load) {
      // detlint:allow(wall-clock) real-threaded pipeline bench: block
      // latency is the measurement itself, never committed state
      auto t0 = std::chrono::steady_clock::now();
      arch.ProcessBlock(block);
      // detlint:allow(wall-clock) closes the per-block timing interval
      auto t1 = std::chrono::steady_clock::now();
      block_latency_us.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()));
    }
    state.PauseTiming();
    total_txns += arch.stats().committed;
    arch_stats = arch.stats();
    pool_stats = pool.stats();
    reg.Clear();
    arch.ExportMetrics(&reg);
    state.ResumeTiming();
  }
  double total_secs = static_cast<double>(block_latency_us.sum()) / 1e6;
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(kSweepTxns) * state.iterations(),
      benchmark::Counter::kIsRate);

  obs::Json params = obs::Json::Object();
  params.Set("block_size", block_size);
  params.Set("threads", kSweepThreads);
  obs::Json extra = obs::Json::Object();
  extra.Set("block_latency_us", obs::ToJson(block_latency_us));
  extra.Set("blocks", blocks);
  extra.Set("txns_per_block", block_size);
  // Per-block validation-parallelism shape, averaged over the run:
  // conflict edges per block and levels per block; avg level width =
  // txns / levels (wider levels = more concurrent validation).
  extra.Set("conflict_edges_per_block",
            static_cast<double>(arch_stats.dag_edges) / blocks);
  double levels_per_block =
      static_cast<double>(arch_stats.dag_levels) / blocks;
  extra.Set("levels_per_block", levels_per_block);
  extra.Set("avg_level_width",
            levels_per_block == 0
                ? 0.0
                : static_cast<double>(block_size) / levels_per_block);
  extra.Set("pool_jobs_run", pool_stats.jobs_run);
  extra.Set("pool_steals", pool_stats.steals);
  extra.Set("pool_max_queue_depth", pool_stats.max_queue_depth);
  obs::GlobalBenchReport().AddSeries(
      "FastFabric/block_size=" + std::to_string(block_size),
      std::move(params),
      obs::BenchReport::StandardMetrics(
          total_secs == 0 ? 0.0 : static_cast<double>(total_txns) / total_secs,
          block_latency_us, /*messages_sent=*/0, std::move(extra), &reg));
}

BENCHMARK(BM_FastFabricBlockSize)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E1Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("blocks", kBlocks);
  c.Set("block_size", kBlockSize);
  c.Set("compute_rounds", kComputeRounds);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e1_architectures", kSeed, E1Config());
