// E3 — Fabric++ "employs concurrency control techniques … to early abort
// transactions or reorder them"; FabricSharp "presents a reordering
// technique that eliminates unnecessary aborts"; XOX "re-execute[s]
// transactions that are invalidated" (§2.3.3).
//
// High-contention workload, sweep hot-key pool size (smaller pool = more
// conflict cycles). Series = abort fraction per XOV-family member.
// Expected shape: aborts(XOV) ≥ aborts(Fabric++) ≥ aborts(FabricSharp);
// XOX aborts nothing but reports re-executions.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "arch/fabricpp.h"

#include "arch/xov.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "obs/report.h"
#include "workload/workload.h"

namespace {

using namespace pbc;

constexpr uint64_t kSeed = 11;
constexpr size_t kBlockSize = 96;
constexpr int kBlocks = 10;

// Reader/writer mix over a hot-key pool: 45% readers (read a hot key,
// write a private result key — rescued by reordering), 45% blind writers
// of hot keys, 10% read-modify-writes (increment a hot key — these form
// the dependency cycles that force aborts and separate Fabric++'s
// whole-SCC policy from FabricSharp's minimal feedback set).
std::vector<txn::Transaction> MixedBlock(Rng* rng, uint64_t hot_keys,
                                         txn::TxnId* next_id, size_t n) {
  std::vector<txn::Transaction> block;
  for (size_t i = 0; i < n; ++i) {
    txn::Transaction t;
    t.id = (*next_id)++;
    std::string hot = "hot" + std::to_string(rng->NextU64(hot_keys));
    uint64_t kind = rng->NextU64(100);
    if (kind < 45) {
      t.ops.push_back(txn::Op::Read(hot));
      t.ops.push_back(txn::Op::Write("out/" + std::to_string(t.id), "r"));
    } else if (kind < 90) {
      t.ops.push_back(txn::Op::Write(hot, "w"));
    } else {
      t.ops.push_back(txn::Op::Increment(hot, 1));
    }
    block.push_back(std::move(t));
  }
  return block;
}

template <typename Arch>
void RunVariant(benchmark::State& state, const char* label) {
  uint64_t hot_keys = static_cast<uint64_t>(state.range(0));
  uint64_t committed = 0, aborted = 0, reexecuted = 0, reordered = 0;
  obs::Histogram block_latency_us;
  obs::MetricsRegistry reg;
  for (auto _ : state) {
    state.PauseTiming();
    ThreadPool pool(4);
    Arch arch(&pool);
    Rng rng(kSeed);
    txn::TxnId next_id = 1;
    std::vector<std::vector<txn::Transaction>> blocks;
    for (int b = 0; b < kBlocks; ++b) {
      blocks.push_back(MixedBlock(&rng, hot_keys, &next_id, kBlockSize));
    }
    state.ResumeTiming();
    for (const auto& block : blocks) {
      // detlint:allow(wall-clock) real-threaded pipeline bench: block
      // latency is the measurement itself, never committed state
      auto t0 = std::chrono::steady_clock::now();
      arch.ProcessBlock(block);
      // detlint:allow(wall-clock) closes the per-block timing interval
      auto t1 = std::chrono::steady_clock::now();
      block_latency_us.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()));
    }
    state.PauseTiming();
    committed = arch.stats().committed;
    aborted = arch.stats().aborted + arch.stats().early_aborted;
    reexecuted = arch.stats().reexecuted;
    reordered = arch.stats().reordered;
    reg.Clear();
    arch.ExportMetrics(&reg);
    state.ResumeTiming();
  }
  double total = static_cast<double>(kBlocks * kBlockSize);
  state.counters["abort_frac"] = static_cast<double>(aborted) / total;
  state.counters["goodput_frac"] = static_cast<double>(committed) / total;
  state.counters["reexecuted"] = static_cast<double>(reexecuted);
  state.counters["reordered"] = static_cast<double>(reordered);

  double secs = static_cast<double>(block_latency_us.sum()) / 1e6;
  obs::Json params = obs::Json::Object();
  params.Set("hot_keys", hot_keys);
  obs::Json extra = obs::Json::Object();
  extra.Set("abort_frac", static_cast<double>(aborted) / total);
  extra.Set("goodput_frac", static_cast<double>(committed) / total);
  extra.Set("reexecuted", reexecuted);
  extra.Set("reordered", reordered);
  extra.Set("block_latency_us", obs::ToJson(block_latency_us));
  obs::GlobalBenchReport().AddSeries(
      std::string(label) + "/hot_keys=" + std::to_string(hot_keys),
      std::move(params),
      obs::BenchReport::StandardMetrics(
          secs == 0 ? 0.0
                    : static_cast<double>(committed) * state.iterations() /
                          secs,
          block_latency_us, /*messages_sent=*/0, std::move(extra), &reg));
}

void BM_XOV(benchmark::State& state) {
  RunVariant<arch::XovArchitecture>(state, "XOV");
}
void BM_FabricPP(benchmark::State& state) {
  RunVariant<arch::FabricPPArchitecture>(state, "FabricPP");
}
void BM_FabricSharp(benchmark::State& state) {
  RunVariant<arch::FabricSharpArchitecture>(state, "FabricSharp");
}
void BM_XOX(benchmark::State& state) {
  RunVariant<arch::XoxArchitecture>(state, "XOX");
}

#define SWEEP Arg(2)->Arg(4)->Arg(8)->Arg(16)
BENCHMARK(BM_XOV)->SWEEP->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricPP)->SWEEP->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricSharp)->SWEEP->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XOX)->SWEEP->Unit(benchmark::kMillisecond);
#undef SWEEP

}  // namespace

namespace {
pbc::obs::Json E3Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("blocks", kBlocks);
  c.Set("block_size", kBlockSize);
  c.Set("mix", "45r/45w/10rmw over hot-key pool");
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e3_xov_variants", kSeed, E3Config());
