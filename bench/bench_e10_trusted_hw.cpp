// E10 — "To decrease the number of required nodes within each committee,
// AHL employs trusted hardware … Using the trusted hardware, a malicious
// node cannot multicast inconsistent messages" (§2.3.4).
//
// Three series:
//  (1) committee sizing: replicas needed per committee for fault budget f,
//      with (2f+1) and without (3f+1) the attested log, and the resulting
//      node savings for a 16-shard deployment;
//  (2) the software attested-log's unit costs (attest / verify);
//  (3) end-to-end: simulated throughput of a 2-shard deployment at both
//      committee sizes — smaller committees mean fewer messages.
#include <functional>
#include <string>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "shard/two_phase.h"
#include "sim/attested_log.h"
#include "workload/workload.h"

namespace {

using namespace pbc;
using bench::SimWorld;

constexpr uint64_t kSeed = 10;

using bench::SampleAndEmit;

void BM_CommitteeSizing(benchmark::State& state) {
  uint32_t f = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f);
  }
  uint32_t without_tee = 3 * f + 1;
  uint32_t with_tee = 2 * f + 1;
  state.counters["replicas_without_tee"] = without_tee;
  state.counters["replicas_with_tee"] = with_tee;
  state.counters["nodes_saved_16_shards"] =
      16.0 * (without_tee - with_tee);

  obs::Json params = obs::Json::Object();
  params.Set("f", f);
  obs::Json extra = obs::Json::Object();
  extra.Set("replicas_without_tee", without_tee);
  extra.Set("replicas_with_tee", with_tee);
  extra.Set("nodes_saved_16_shards", 16 * (without_tee - with_tee));
  obs::GlobalBenchReport().AddSeries(
      "committee_sizing/f=" + std::to_string(f), std::move(params),
      obs::BenchReport::StandardMetrics(0.0, obs::Histogram{},
                                        /*messages_sent=*/0,
                                        std::move(extra)));
}

void BM_AttestedLogAttest(benchmark::State& state) {
  crypto::KeyRegistry registry;
  sim::AttestedLog log(1, registry.Register(1));
  uint64_t seq = 0;
  auto digest = crypto::Sha256::Digest(std::string("payload"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Attest(seq++, digest));
  }
  state.counters["attest_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);

  SampleAndEmit("attested_log_attest", 2000, [&](size_t) {
    benchmark::DoNotOptimize(log.Attest(seq++, digest));
  });
}

void BM_AttestedLogVerify(benchmark::State& state) {
  crypto::KeyRegistry registry;
  sim::AttestedLog log(1, registry.Register(1));
  auto digest = crypto::Sha256::Digest(std::string("payload"));
  auto att = log.Attest(1, digest).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::AttestedLog::Verify(registry, att));
  }
  state.counters["verify_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);

  SampleAndEmit("attested_log_verify", 2000, [&](size_t) {
    benchmark::DoNotOptimize(sim::AttestedLog::Verify(registry, att));
  });
}

// End-to-end with 4 (=3f+1) vs 3 (=2f+1, attested) replicas per cluster.
void BM_Deployment(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  double throughput = 0, msgs = 0;
  for (auto _ : state) {
    SimWorld w(kSeed);
    shard::TwoPhaseShardSystem sys(
        &w.net, &w.registry, shard::TwoPhaseConfig::Ahl(2, replicas));
    bench::LatencyTracker tracker(&w.simulator);
    size_t done = 0;
    sys.set_listener([&](txn::TxnId id, bool) {
      ++done;
      tracker.Committed(id);
    });
    w.net.Start();
    workload::ShardedTransfers gen(2, 20, 1000, 0.2, 4);
    size_t total = 0;
    for (auto& d : gen.InitialDeposits()) {
      sys.Submit(std::move(d));
      ++total;
    }
    w.simulator.RunUntil([&] { return done >= total; }, 600'000'000);
    w.net.ResetStats();
    sim::Time start = w.simulator.now();
    size_t base = done;
    for (int i = 0; i < 60; ++i) {
      auto t = gen.NextTransfer();
      tracker.Submitted(t.id);
      sys.Submit(std::move(t));
    }
    bool ok = w.simulator.RunUntil([&] { return done >= base + 60; },
                                   600'000'000);
    throughput = ok ? 60.0 / (static_cast<double>(w.simulator.now() - start) /
                              1e6)
                    : 0;
    msgs = static_cast<double>(w.net.stats().messages_sent) / 60.0;

    shard::ExportShardStats(sys.stats(), &w.metrics);
    obs::Json params = obs::Json::Object();
    params.Set("replicas_per_cluster", replicas);
    obs::Json extra = obs::Json::Object();
    extra.Set("completed", ok);
    extra.Set("msgs_per_txn", msgs);
    extra.Set("abort_rate", sys.stats().AbortRate());
    extra.Set("consensus_rounds",
              w.metrics.CounterValue("shard.consensus_rounds"));
    obs::GlobalBenchReport().AddSeries(
        "deployment/replicas=" + std::to_string(replicas),
        std::move(params),
        obs::BenchReport::StandardMetrics(throughput, tracker.hist(),
                                          w.net.stats().messages_sent,
                                          std::move(extra), &w.metrics));
  }
  state.counters["txn_per_simsec"] = throughput;
  state.counters["msgs_per_txn"] = msgs;
}

BENCHMARK(BM_CommitteeSizing)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(8);
BENCHMARK(BM_AttestedLogAttest);
BENCHMARK(BM_AttestedLogVerify);
BENCHMARK(BM_Deployment)->Arg(4)->Arg(3)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E10Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("shards", 2);
  c.Set("cross_shard_frac", 0.2);
  c.Set("burst_txns", 60);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e10_trusted_hw", kSeed, E10Config());
