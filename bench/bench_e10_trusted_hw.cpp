// E10 — "To decrease the number of required nodes within each committee,
// AHL employs trusted hardware … Using the trusted hardware, a malicious
// node cannot multicast inconsistent messages" (§2.3.4).
//
// Three series:
//  (1) committee sizing: replicas needed per committee for fault budget f,
//      with (2f+1) and without (3f+1) the attested log, and the resulting
//      node savings for a 16-shard deployment;
//  (2) the software attested-log's unit costs (attest / verify);
//  (3) end-to-end: simulated throughput of a 2-shard deployment at both
//      committee sizes — smaller committees mean fewer messages.
#include "bench/bench_util.h"
#include "shard/two_phase.h"
#include "sim/attested_log.h"
#include "workload/workload.h"

namespace {

using namespace pbc;
using bench::SimWorld;

void BM_CommitteeSizing(benchmark::State& state) {
  uint32_t f = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f);
  }
  uint32_t without_tee = 3 * f + 1;
  uint32_t with_tee = 2 * f + 1;
  state.counters["replicas_without_tee"] = without_tee;
  state.counters["replicas_with_tee"] = with_tee;
  state.counters["nodes_saved_16_shards"] =
      16.0 * (without_tee - with_tee);
}

void BM_AttestedLogAttest(benchmark::State& state) {
  crypto::KeyRegistry registry;
  sim::AttestedLog log(1, registry.Register(1));
  uint64_t seq = 0;
  auto digest = crypto::Sha256::Digest(std::string("payload"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Attest(seq++, digest));
  }
  state.counters["attest_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_AttestedLogVerify(benchmark::State& state) {
  crypto::KeyRegistry registry;
  sim::AttestedLog log(1, registry.Register(1));
  auto digest = crypto::Sha256::Digest(std::string("payload"));
  auto att = log.Attest(1, digest).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::AttestedLog::Verify(registry, att));
  }
  state.counters["verify_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

// End-to-end with 4 (=3f+1) vs 3 (=2f+1, attested) replicas per cluster.
void BM_Deployment(benchmark::State& state) {
  size_t replicas = static_cast<size_t>(state.range(0));
  double throughput = 0, msgs = 0;
  for (auto _ : state) {
    SimWorld w(10);
    shard::TwoPhaseShardSystem sys(
        &w.net, &w.registry, shard::TwoPhaseConfig::Ahl(2, replicas));
    size_t done = 0;
    sys.set_listener([&](txn::TxnId, bool) { ++done; });
    w.net.Start();
    workload::ShardedTransfers gen(2, 20, 1000, 0.2, 4);
    size_t total = 0;
    for (auto& d : gen.InitialDeposits()) {
      sys.Submit(std::move(d));
      ++total;
    }
    w.simulator.RunUntil([&] { return done >= total; }, 600'000'000);
    w.net.ResetStats();
    sim::Time start = w.simulator.now();
    size_t base = done;
    for (int i = 0; i < 60; ++i) sys.Submit(gen.NextTransfer());
    bool ok = w.simulator.RunUntil([&] { return done >= base + 60; },
                                   600'000'000);
    throughput = ok ? 60.0 / (static_cast<double>(w.simulator.now() - start) /
                              1e6)
                    : 0;
    msgs = static_cast<double>(w.net.stats().messages_sent) / 60.0;
  }
  state.counters["txn_per_simsec"] = throughput;
  state.counters["msgs_per_txn"] = msgs;
}

BENCHMARK(BM_CommitteeSizing)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(8);
BENCHMARK(BM_AttestedLogAttest);
BENCHMARK(BM_AttestedLogVerify);
BENCHMARK(BM_Deployment)->Arg(4)->Arg(3)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
