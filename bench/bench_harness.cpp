#include "bench/bench_harness.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/report.h"

namespace pbc::bench {
namespace {

size_t BenchJobs() {
  // detlint:allow(env-read) PBC_BENCH_JOBS only sizes the worker pool;
  // series rows are merged in input order, so report bytes never change
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once before workers start
  if (const char* env = std::getenv("PBC_BENCH_JOBS")) {
    size_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return ThreadPool::DefaultParallelism();
}

std::unique_ptr<ThreadPool>& PoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& BenchPool() {
  std::unique_ptr<ThreadPool>& slot = PoolSlot();
  if (!slot) {
    ThreadPool::Options options;
    options.num_threads = BenchJobs();
    slot = std::make_unique<ThreadPool>(options);
  }
  return *slot;
}

void FanSeries(std::vector<SeriesCase> cases) {
  std::vector<SeriesRow> rows(cases.size());
  ThreadPool& pool = BenchPool();
  TaskGroup group;
  for (size_t i = 0; i < cases.size(); ++i) {
    pool.Submit(&group, [&rows, &cases, i] { rows[i] = cases[i](); });
  }
  pool.Wait(&group);
  for (SeriesRow& row : rows) {
    obs::GlobalBenchReport().AddSeries(row.name, std::move(row.params),
                                       std::move(row.metrics));
  }
}

void AttachSchedulerStats() {
  std::unique_ptr<ThreadPool>& slot = PoolSlot();
  if (!slot) return;
  ThreadPool::Stats stats = slot->stats();
  obs::Json j = obs::Json::Object();
  j.Set("workers", static_cast<uint64_t>(slot->num_threads()));
  j.Set("jobs_run", stats.jobs_run);
  j.Set("steals", stats.steals);
  j.Set("max_queue_depth", stats.max_queue_depth);
  obs::GlobalBenchReport().SetScheduler(std::move(j));
}

}  // namespace pbc::bench
