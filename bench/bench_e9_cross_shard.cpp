// E9 — "Centralized processing of cross-shard transactions is simpler …
// however, a large number of intra- and cross-cluster communication phases
// is needed. … the decentralized approach … processes transactions in
// less number of phases … [Saguaro] benefits from the hierarchical
// structure … the lowest common ancestor of all involved clusters is
// chosen as the coordinator resulting in lower latency" (§2.3.4).
//
// Sweep the cross-shard fraction; series = mean cross-transaction latency
// and messages/txn for AHL (reference committee), SharPer (flattened), and
// Saguaro (LCA coordinator on a WAN-like tree). Expected shape: SharPer <
// Saguaro < AHL in messages; Saguaro beats AHL on latency because nearby
// fog coordinators replace the far-away committee.
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "shard/sharper.h"
#include "shard/two_phase.h"
#include "workload/workload.h"

namespace {

using namespace pbc;
using bench::LatencyTracker;
using bench::SimWorld;

constexpr uint64_t kSeed = 9;
constexpr uint32_t kShards = 4;
constexpr int kTxns = 80;
constexpr sim::Time kDeadline = 900'000'000;

// WAN flavor for Saguaro/AHL comparison: links to the root/committee
// clusters are slow, fog-level links fast. We model it with a higher
// default latency for node ids of the committee/root cluster.
template <typename System>
void SetupWan(SimWorld* w, System* sys, bool root_is_far,
              sim::NodeId far_base, size_t far_count) {
  if (!root_is_far) return;
  for (sim::NodeId far = far_base; far < far_base + far_count; ++far) {
    for (sim::NodeId other = 0; other < far_base; ++other) {
      // SetLinkLatency installs both directions (WAN RTTs are symmetric).
      w->net.SetLinkLatency(far, other, {5000, 500});
    }
  }
  (void)sys;
}

constexpr int kCrossPercents[] = {0, 10, 30, 50, 100};

// One (system, cross-fraction) cell — simulated-time metrics only, so
// cells fan out on the scheduler.
template <typename MakeSystem>
bench::SeriesRow CrossCell(const char* label, MakeSystem make,
                           int cross_percent) {
  double cross_frac = static_cast<double>(cross_percent) / 100.0;
  SimWorld w(kSeed);
  auto sys = make(&w);
  LatencyTracker tracker(&w.simulator);
  size_t done = 0;
  sys->set_listener([&](txn::TxnId id, bool) {
    tracker.Committed(id);
    ++done;
  });
  w.net.Start();
  workload::ShardedTransfers gen(kShards, 20, 1000, cross_frac, 4);
  size_t total = 0;
  for (auto& d : gen.InitialDeposits()) {
    sys->Submit(std::move(d));
    ++total;
  }
  w.simulator.RunUntil([&] { return done >= total; }, kDeadline);
  w.net.ResetStats();
  size_t base = done;
  // Open-loop arrivals every 5 ms: keeps no-wait 2PL lock conflicts from
  // dominating the latency comparison.
  for (int i = 0; i < kTxns; ++i) {
    w.simulator.Schedule(
        static_cast<sim::Time>(i) * 5000,
        [&sys, &tracker, t = gen.NextTransfer()]() mutable {
          tracker.Submitted(t.id);
          sys->Submit(std::move(t));
        });
  }
  bool ok =
      w.simulator.RunUntil([&] { return done >= base + kTxns; }, kDeadline);
  double msgs = static_cast<double>(w.net.stats().messages_sent) / kTxns;

  shard::ExportShardStats(sys->stats(), &w.metrics);
  bench::SeriesRow row;
  row.name = std::string(label) + "/cross=" + std::to_string(cross_percent);
  row.params = obs::Json::Object();
  row.params.Set("cross_frac", cross_frac);
  row.params.Set("shards", kShards);
  obs::Json extra = obs::Json::Object();
  extra.Set("completed", ok);
  extra.Set("msgs_per_txn", msgs);
  extra.Set("abort_rate", sys->stats().AbortRate());
  extra.Set("consensus_rounds",
            w.metrics.CounterValue("shard.consensus_rounds"));
  row.metrics = obs::BenchReport::StandardMetrics(
      /*throughput_txn_per_s=*/0.0, tracker.hist(),
      w.net.stats().messages_sent, std::move(extra), &w.metrics);
  return row;
}

template <typename MakeSystem>
void RunCross(benchmark::State& state, const char* label, MakeSystem make) {
  for (auto _ : state) {
    std::vector<bench::SeriesCase> cases;
    for (int cross : kCrossPercents) {
      cases.push_back(
          [label, make, cross] { return CrossCell(label, make, cross); });
    }
    bench::FanSeries(std::move(cases));
  }
  state.counters["cells"] = static_cast<double>(std::size(kCrossPercents));
}

void BM_AHL(benchmark::State& state) {
  RunCross(state, "AHL", [](SimWorld* w) {
    auto sys = std::make_unique<shard::TwoPhaseShardSystem>(
        &w->net, &w->registry, shard::TwoPhaseConfig::Ahl(kShards));
    // The reference committee sits "elsewhere": slow links to it.
    SetupWan(w, sys.get(), true, /*far_base=*/kShards * 5, /*far_count=*/5);
    return sys;
  });
}

void BM_SharPer(benchmark::State& state) {
  RunCross(state, "SharPer", [](SimWorld* w) {
    return std::make_unique<shard::SharperSystem>(&w->net, &w->registry,
                                                  kShards);
  });
}

void BM_Saguaro(benchmark::State& state) {
  RunCross(state, "Saguaro", [](SimWorld* w) {
    auto sys = std::make_unique<shard::TwoPhaseShardSystem>(
        &w->net, &w->registry, shard::TwoPhaseConfig::Saguaro(kShards, 2));
    // Only the cloud ROOT (coordinator 0) is far; fog coordinators local.
    SetupWan(w, sys.get(), true, /*far_base=*/kShards * 5, /*far_count=*/5);
    return sys;
  });
}

// Each BM fans its whole cross-fraction sweep across the scheduler
// (series rows land in sweep order regardless of completion order).
BENCHMARK(BM_AHL)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SharPer)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Saguaro)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

namespace {
pbc::obs::Json E9Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("shards", kShards);
  c.Set("txns", kTxns);
  c.Set("deadline_us", kDeadline);
  c.Set("arrival_gap_us", 5000);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e9_cross_shard", kSeed, E9Config());
