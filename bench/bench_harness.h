// Fan-out harness for the *simulated-time* benches: cases whose metrics
// are measured in simulated microseconds (e4 consensus, e6 caper, e8
// sharding, e9 cross-shard, e12 faults) are pure functions of their
// parameters and the fixed seed, so they can run concurrently on the
// work-stealing scheduler without changing a single reported number —
// only the wall-clock time to produce them.
//
// The *wall-clock* benches (e1/e2/e3/e5/e7/e10/e11) must NOT fan out:
// their metrics are real elapsed-time rates, and concurrent cases would
// contend for cores and skew each other's timings. They keep running
// serially through plain google-benchmark.
#ifndef PBC_BENCH_BENCH_HARNESS_H_
#define PBC_BENCH_BENCH_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/json.h"

namespace pbc::bench {

/// One series row, computed off-thread. FanSeries adds rows to the
/// global report on the calling thread, in input order.
struct SeriesRow {
  std::string name;
  obs::Json params;
  obs::Json metrics;
};

using SeriesCase = std::function<SeriesRow()>;

/// The scheduler shared by every fanning bench in the process. Sized by
/// the PBC_BENCH_JOBS env var (1 = serial); default hardware
/// concurrency. Created lazily — purely serial benches never pay for it.
ThreadPool& BenchPool();

/// Runs the cases on BenchPool(), then adds the resulting rows to
/// obs::GlobalBenchReport() in input order on the calling thread: the
/// report is not thread-safe, and input order keeps the series array
/// identical however many workers ran the cases.
void FanSeries(std::vector<SeriesCase> cases);

/// Attaches BenchPool()'s counters to the global report (top-level
/// "scheduler" object). No-op when nothing was fanned, so serial
/// benches' reports are unchanged. Called by PBC_BENCH_MAIN.
void AttachSchedulerStats();

}  // namespace pbc::bench

#endif  // PBC_BENCH_BENCH_HARNESS_H_
