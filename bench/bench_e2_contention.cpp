// E2 — "XOV … in the presence of any contention … has to disregard the
// effects of conflicting transactions which negatively impacts the
// performance of the blockchain"; "OXII supports contentious workloads by
// detecting conflicting transactions during the order phase" (§2.3.3).
//
// Sweep hot-key probability 0 → 0.9; series = effective (committed)
// throughput and abort fraction per architecture. Expected shape: XOV's
// goodput collapses with contention, OXII/OX keep committing everything
// (OXII degrading only to serial speed), XOX pays re-execution instead of
// aborting.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "arch/architecture.h"
#include "arch/xov.h"
#include "bench/bench_util.h"
#include "obs/report.h"
#include "workload/workload.h"

namespace {

using namespace pbc;

constexpr uint64_t kSeed = 7;
constexpr size_t kBlockSize = 128;
constexpr int kBlocks = 8;

template <typename Arch>
void RunContended(benchmark::State& state, const char* label) {
  double hot = static_cast<double>(state.range(0)) / 100.0;
  uint64_t committed = 0, aborted = 0, total = 0;
  obs::Histogram block_latency_us;
  obs::MetricsRegistry reg;
  for (auto _ : state) {
    state.PauseTiming();
    ThreadPool pool(4);
    Arch arch(&pool);
    workload::ZipfianKv::Options opt;
    opt.hot_probability = hot;
    opt.hot_keys = 4;
    opt.compute_rounds = 60;
    workload::ZipfianKv gen(opt, kSeed);
    std::vector<std::vector<txn::Transaction>> blocks;
    for (int b = 0; b < kBlocks; ++b) blocks.push_back(gen.Block(kBlockSize));
    state.ResumeTiming();
    for (const auto& block : blocks) {
      // detlint:allow(wall-clock) real-threaded pipeline bench: block
      // latency is the measurement itself, never committed state
      auto t0 = std::chrono::steady_clock::now();
      arch.ProcessBlock(block);
      // detlint:allow(wall-clock) closes the per-block timing interval
      auto t1 = std::chrono::steady_clock::now();
      block_latency_us.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()));
    }
    state.PauseTiming();
    committed = arch.stats().committed;
    aborted = arch.stats().aborted + arch.stats().early_aborted;
    total = kBlocks * kBlockSize;
    reg.Clear();
    arch.ExportMetrics(&reg);
    state.ResumeTiming();
  }
  state.counters["committed_per_s"] = benchmark::Counter(
      static_cast<double>(committed) * state.iterations(),
      benchmark::Counter::kIsRate);
  state.counters["abort_frac"] =
      static_cast<double>(aborted) / static_cast<double>(total);

  double secs = static_cast<double>(block_latency_us.sum()) / 1e6;
  obs::Json params = obs::Json::Object();
  params.Set("hot_probability", hot);
  obs::Json extra = obs::Json::Object();
  extra.Set("abort_frac",
            static_cast<double>(aborted) / static_cast<double>(total));
  extra.Set("block_latency_us", obs::ToJson(block_latency_us));
  obs::GlobalBenchReport().AddSeries(
      std::string(label) + "/hot=" + std::to_string(state.range(0)),
      std::move(params),
      obs::BenchReport::StandardMetrics(
          secs == 0 ? 0.0
                    : static_cast<double>(committed) * state.iterations() /
                          secs,
          block_latency_us, /*messages_sent=*/0, std::move(extra), &reg));
}

void BM_OX(benchmark::State& state) {
  RunContended<arch::OxArchitecture>(state, "OX");
}
void BM_OXII(benchmark::State& state) {
  RunContended<arch::OxiiArchitecture>(state, "OXII");
}
void BM_XOV(benchmark::State& state) {
  RunContended<arch::XovArchitecture>(state, "XOV");
}
void BM_XOX(benchmark::State& state) {
  RunContended<arch::XoxArchitecture>(state, "XOX");
}

#define SWEEP Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(90)
BENCHMARK(BM_OX)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OXII)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XOV)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XOX)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
#undef SWEEP

}  // namespace

namespace {
pbc::obs::Json E2Config() {
  auto c = pbc::obs::Json::Object();
  c.Set("blocks", kBlocks);
  c.Set("block_size", kBlockSize);
  c.Set("hot_keys", 4);
  c.Set("compute_rounds", 60);
  return c;
}
}  // namespace

PBC_BENCH_MAIN("e2_contention", kSeed, E2Config());
