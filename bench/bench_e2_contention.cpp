// E2 — "XOV … in the presence of any contention … has to disregard the
// effects of conflicting transactions which negatively impacts the
// performance of the blockchain"; "OXII supports contentious workloads by
// detecting conflicting transactions during the order phase" (§2.3.3).
//
// Sweep hot-key probability 0 → 0.9; series = effective (committed)
// throughput and abort fraction per architecture. Expected shape: XOV's
// goodput collapses with contention, OXII/OX keep committing everything
// (OXII degrading only to serial speed), XOX pays re-execution instead of
// aborting.
#include <benchmark/benchmark.h>

#include "arch/architecture.h"
#include "arch/xov.h"
#include "workload/workload.h"

namespace {

using namespace pbc;

constexpr size_t kBlockSize = 128;
constexpr int kBlocks = 8;

template <typename Arch>
void RunContended(benchmark::State& state) {
  double hot = static_cast<double>(state.range(0)) / 100.0;
  uint64_t committed = 0, aborted = 0, total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ThreadPool pool(4);
    Arch arch(&pool);
    workload::ZipfianKv::Options opt;
    opt.hot_probability = hot;
    opt.hot_keys = 4;
    opt.compute_rounds = 60;
    workload::ZipfianKv gen(opt, 7);
    std::vector<std::vector<txn::Transaction>> blocks;
    for (int b = 0; b < kBlocks; ++b) blocks.push_back(gen.Block(kBlockSize));
    state.ResumeTiming();
    for (const auto& block : blocks) arch.ProcessBlock(block);
    state.PauseTiming();
    committed = arch.stats().committed;
    aborted = arch.stats().aborted + arch.stats().early_aborted;
    total = kBlocks * kBlockSize;
    state.ResumeTiming();
  }
  state.counters["committed_per_s"] = benchmark::Counter(
      static_cast<double>(committed) * state.iterations(),
      benchmark::Counter::kIsRate);
  state.counters["abort_frac"] =
      static_cast<double>(aborted) / static_cast<double>(total);
}

void BM_OX(benchmark::State& state) {
  RunContended<arch::OxArchitecture>(state);
}
void BM_OXII(benchmark::State& state) {
  RunContended<arch::OxiiArchitecture>(state);
}
void BM_XOV(benchmark::State& state) {
  RunContended<arch::XovArchitecture>(state);
}
void BM_XOX(benchmark::State& state) {
  RunContended<arch::XoxArchitecture>(state);
}

#define SWEEP Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(90)
BENCHMARK(BM_OX)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OXII)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XOV)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_XOX)->SWEEP->UseRealTime()->Unit(benchmark::kMillisecond);
#undef SWEEP

}  // namespace

BENCHMARK_MAIN();
