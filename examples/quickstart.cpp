// Quickstart: the paper's Figure 1 — a permissioned blockchain of five
// known, identified nodes, each maintaining a copy of the hash-chained
// ledger, agreeing on transaction order with PBFT.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "consensus/cluster.h"
#include "consensus/pbft.h"

using namespace pbc;

int main() {
  std::printf("== pbc quickstart: 5-node permissioned blockchain ==\n\n");

  // A deterministic simulated network; every run reproduces exactly.
  sim::Simulator simulator(/*seed=*/2026);
  sim::Network net(&simulator);
  net.SetDefaultLatency({500, 200});  // 0.5–0.7 ms links

  // The membership service: five registered identities (Figure 1).
  crypto::KeyRegistry registry;
  consensus::Cluster<consensus::PbftReplica> cluster(&net, &registry, 5);
  net.Start();

  // Clients submit transactions; any replica relays to the primary.
  std::printf("submitting 12 transactions...\n");
  for (int i = 0; i < 12; ++i) {
    cluster.Submit(consensus::MakeKvTxn(
        /*id=*/i + 1, "asset/" + std::to_string(i % 4),
        "owner-" + std::to_string(i)));
  }

  // Run the network until every replica committed everything.
  bool done = simulator.RunUntil(
      [&] { return cluster.MinCommitted() >= 12; }, /*until=*/60'000'000);
  simulator.Run(simulator.now() + 2'000'000);  // let stragglers drain
  std::printf("consensus reached: %s (simulated time: %.1f ms)\n\n",
              done ? "yes" : "NO", simulator.now() / 1000.0);

  // Every node now holds an identical hash-chained ledger.
  for (size_t i = 0; i < cluster.size(); ++i) {
    const ledger::Chain& chain = cluster.replica(i)->chain();
    std::printf("node %zu: height=%zu tip=%s committed_txns=%llu audit=%s\n",
                i, chain.height(), chain.TipHash().ToShortHex().c_str(),
                static_cast<unsigned long long>(
                    cluster.replica(i)->committed_txns()),
                chain.Audit().ok() ? "OK" : "CORRUPT");
  }
  std::printf("\nall replicas consistent: %s\n",
              cluster.ChainsConsistent() ? "yes" : "NO");

  // Immutability: any tampering with history is detected by the audit.
  ledger::Chain tampered = cluster.replica(0)->chain();
  tampered.MutableBlockForTest(0)->txns[0].ops[0].value = "stolen";
  std::printf("tamper detection: %s\n",
              tampered.Audit().IsCorruption() ? "caught" : "MISSED");

  // Merkle inclusion proof: prove one transaction is in a block without
  // shipping the block.
  const auto& chain = cluster.replica(0)->chain();
  auto proof = chain.ProveInclusion(0, 0);
  if (proof.ok()) {
    bool included = ledger::Chain::VerifyInclusion(
        chain.at(0).header, chain.at(0).txns[0].Digest(),
        proof.ValueOrDie());
    std::printf("merkle inclusion proof verifies: %s\n",
                included ? "yes" : "NO");
  }
  return done ? 0 : 1;
}
