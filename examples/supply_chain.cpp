// Supply chain management (§2.1.1): a Caper-style multi-enterprise
// deployment where each enterprise keeps its production process
// confidential (internal transactions on a private chain) while
// cross-enterprise hand-offs are globally ordered and visible to everyone
// — conformance with the SLA is checkable by all parties, trade secrets by
// none.
//
// Build & run:  ./build/examples/supply_chain
#include <cstdio>

#include "confidential/caper.h"

using namespace pbc;
using confidential::CaperSystem;

namespace {

txn::Transaction Txn(txn::TxnId id, std::vector<txn::Op> ops) {
  txn::Transaction t;
  t.id = id;
  t.ops = std::move(ops);
  return t;
}

}  // namespace

int main() {
  std::printf("== supply chain on a Caper-style confidential ledger ==\n\n");

  // Three enterprises: 0 = Supplier, 1 = Manufacturer, 2 = Retailer.
  const char* kNames[] = {"Supplier", "Manufacturer", "Retailer"};
  CaperSystem caper(3);
  txn::TxnId id = 1;

  // --- Internal (confidential) process steps --------------------------------
  // The Manufacturer's recipe: visible only inside enterprise 1.
  auto recipe = CaperSystem::PrivateKeyFor(1, "recipe/widget");
  caper.SubmitInternal(1, Txn(id++, {txn::Op::Write(recipe, "alloy=7:3")}));
  caper.SubmitInternal(
      1, Txn(id++, {txn::Op::Increment(
                        CaperSystem::PrivateKeyFor(1, "wip/widgets"), 50)}));
  // The Supplier's internal inventory.
  caper.SubmitInternal(
      0, Txn(id++, {txn::Op::Increment(
                        CaperSystem::PrivateKeyFor(0, "stock/alloy"), 200)}));

  // --- Cross-enterprise SLA steps (public to all) ---------------------------
  caper.SubmitCross(Txn(
      id++, {txn::Op::Increment(CaperSystem::SharedKey("shipped/alloy"), 120),
             txn::Op::Write(CaperSystem::SharedKey("sla/supplier-mfg"),
                            "on-time")}));
  caper.SubmitCross(Txn(
      id++,
      {txn::Op::Increment(CaperSystem::SharedKey("shipped/widgets"), 50)}));

  // A later internal step chains on top of the cross hand-off in the DAG.
  caper.SubmitInternal(
      2, Txn(id++, {txn::Op::Increment(
                        CaperSystem::PrivateKeyFor(2, "shelf/widgets"), 50)}));

  // --- Confidentiality walls -------------------------------------------------
  // The Retailer tries to submit a transaction reading the Manufacturer's
  // recipe: rejected before it ever reaches a ledger.
  Status spy =
      caper.SubmitInternal(2, Txn(id++, {txn::Op::Read(recipe)}));
  std::printf("retailer reading manufacturer's recipe: %s\n\n",
              spy.ToString().c_str());

  // --- What each enterprise actually stores ---------------------------------
  for (uint32_t e = 0; e < 3; ++e) {
    const auto& ent = caper.enterprise(e);
    size_t internal = 0, cross = 0;
    for (const auto& v : ent.view()) (v.cross ? cross : internal)++;
    std::printf("%-13s view: %zu internal + %zu cross vertices, audit=%s\n",
                kNames[e], internal, cross,
                ledger::DagLedger::AuditView(ent.view(), e).ok() ? "OK"
                                                                 : "FAIL");
  }

  std::printf("\nshared state (everyone sees):\n");
  caper.enterprise(0).public_store().ForEachLatest(
      [](const store::Key& k, const store::VersionedValue& v) {
        std::printf("  %-24s = %s\n", k.c_str(), v.value.c_str());
      });

  std::printf("\nManufacturer's private state (only enterprise 1 sees):\n");
  caper.enterprise(1).private_store().ForEachLatest(
      [](const store::Key& k, const store::VersionedValue& v) {
        std::printf("  %-24s = %s\n", k.c_str(), v.value.c_str());
      });

  std::printf("\nglobal DAG: %zu vertices (%zu internal, %zu cross), audit=%s\n",
              caper.global_dag().size(), caper.global_dag().num_internal(),
              caper.global_dag().num_cross(),
              caper.global_dag().Audit().ok() ? "OK" : "FAIL");
  return 0;
}
