// Multi-platform crowdworking (§2.1.3): two platforms jointly enforce the
// FLSA 40-hour weekly cap on a shared worker — shown both ways the survey
// describes: Separ-style anonymous tokens and zero-knowledge range proofs.
//
// Build & run:  ./build/examples/crowdworking
#include <cstdio>

#include "verify/crowdwork.h"
#include "verify/tokens.h"

using namespace pbc;
using namespace pbc::verify;

int main() {
  std::printf("== multi-platform crowdworking: 40-hour FLSA cap ==\n\n");
  constexpr uint64_t kCap = 40;

  // ---------------------------------------------------------------------
  // Mode 1 — token-based (Separ): a trusted authority mints 40 anonymous
  // one-hour tokens per worker per week; the platforms' shared spend log
  // rejects reuse.
  // ---------------------------------------------------------------------
  std::printf("-- token mode (Separ) --\n");
  crypto::KeyRegistry registry;
  TokenAuthority authority(/*id=*/1, &registry);
  SpendLog shared_log(&registry, 1);  // consensus-replicated across platforms
  Rng rng(2026);

  TokenWallet driver;
  driver.Deposit(authority.Mint(/*constraint=*/1, /*week=*/27, kCap, &rng));

  // The driver works 25 h for platform A (earns the healthcare subsidy
  // threshold of Prop 22) and then 15 h for platform B.
  auto work = [&](const char* platform, int hours) {
    int done = 0;
    for (int h = 0; h < hours; ++h) {
      auto token = driver.Take();
      if (!token.ok() || !shared_log.Spend(token.ValueOrDie()).ok()) break;
      ++done;
    }
    std::printf("  platform %s: requested %2d h, accepted %2d h\n", platform,
                hours, done);
    return done;
  };
  int a = work("A", 25);
  int b = work("B", 15);
  std::printf("  total accepted: %d h (cap %llu)\n", a + b,
              static_cast<unsigned long long>(kCap));
  // Hour 41 anywhere:
  auto extra = driver.Take();
  std::printf("  41st hour: %s\n\n", extra.status().ToString().c_str());

  // ---------------------------------------------------------------------
  // Mode 2 — zero-knowledge (Quorum/Zcash-style): the worker's running
  // total lives in a Pedersen commitment; every claim carries a range
  // proof that (cap − total) stays non-negative. Platforms verify without
  // learning the total.
  // ---------------------------------------------------------------------
  std::printf("-- zero-knowledge mode --\n");
  ZkHourTracker worker(/*worker=*/7, kCap, &rng);
  ZkHourVerifier platform_a(kCap), platform_b(kCap);
  auto reg = worker.Register(&rng);
  platform_a.Register(reg);
  platform_b.Register(reg);
  std::printf("  worker registered with a provably-zero commitment\n");

  struct {
    const char* platform;
    uint64_t hours;
  } shifts[] = {{"A", 10}, {"B", 12}, {"A", 15}, {"B", 3}};
  for (const auto& shift : shifts) {
    auto claim = worker.Claim(shift.hours, &rng);
    if (!claim.ok()) {
      std::printf("  %s +%2llu h: worker cannot build proof (%s)\n",
                  shift.platform,
                  static_cast<unsigned long long>(shift.hours),
                  claim.status().ToString().c_str());
      continue;
    }
    Status sa = platform_a.Accept(claim.ValueOrDie());
    Status sb = platform_b.Accept(claim.ValueOrDie());
    std::printf("  %s +%2llu h: platform A: %s, platform B: %s\n",
                shift.platform,
                static_cast<unsigned long long>(shift.hours),
                sa.ToString().c_str(), sb.ToString().c_str());
  }
  std::printf("  worker total: %llu h\n",
              static_cast<unsigned long long>(worker.total()));
  auto over = worker.Claim(5, &rng);  // would be 45 h
  std::printf("  +5 h more: %s\n", over.status().ToString().c_str());

  // A dishonest worker under-reporting hours is caught by the homomorphic
  // accounting check.
  auto claim = worker.Claim(0, &rng);
  if (claim.ok()) {
    auto lie = claim.ValueOrDie();
    lie.hours = 100;  // claims different public hours than committed
    std::printf("  forged claim: %s\n",
                platform_a.Accept(lie).ToString().c_str());
  }
  return 0;
}
