// Large-scale database on an untrusted infrastructure (§2.1.2): a
// SharPer-style sharded permissioned blockchain. Each shard is a 4-replica
// PBFT cluster; intra-shard transfers use only local consensus, and
// cross-shard transfers run the flattened commit among the involved
// clusters. Money is conserved across the whole deployment.
//
// Build & run:  ./build/examples/sharded_database
#include <cstdio>

#include "shard/sharper.h"
#include "workload/workload.h"

using namespace pbc;

int main() {
  std::printf("== sharded blockchain database (SharPer-style) ==\n\n");

  sim::Simulator simulator(7);
  sim::Network net(&simulator);
  net.SetDefaultLatency({500, 200});
  crypto::KeyRegistry registry;

  constexpr uint32_t kShards = 3;
  shard::SharperSystem db(&net, &registry, kShards);

  size_t done = 0, committed = 0;
  db.set_listener([&](txn::TxnId, bool ok) {
    ++done;
    committed += ok ? 1 : 0;
  });
  net.Start();

  // Seed accounts: 8 per shard, 100 coins each.
  workload::ShardedTransfers gen(kShards, 8, 100, /*cross_fraction=*/0.4, 3);
  auto deposits = gen.InitialDeposits();
  size_t total_submitted = deposits.size();
  for (auto& d : deposits) db.Submit(std::move(d));
  simulator.RunUntil([&] { return done >= total_submitted; }, 120'000'000);
  std::printf("seeded %zu accounts across %u shards (total = %lld coins)\n",
              total_submitted, kShards,
              static_cast<long long>(gen.expected_total()));

  // Mixed workload: 60% intra-shard, 40% cross-shard transfers, arriving
  // every 5 ms (clients are spread over time; the no-wait 2PL policy would
  // otherwise abort racing transfers over the same accounts).
  constexpr int kTransfers = 30;
  for (int i = 0; i < kTransfers; ++i) {
    simulator.Schedule(static_cast<sim::Time>(i) * 5000,
                       [&db, t = gen.NextTransfer()]() mutable {
                         db.Submit(std::move(t));
                       });
  }
  total_submitted += kTransfers;
  bool ok = simulator.RunUntil([&] { return done >= total_submitted; },
                               300'000'000);
  simulator.Run(simulator.now() + 30'000'000);  // drain commit markers

  std::printf("processed %d transfers: %s (simulated time %.1f ms)\n",
              kTransfers, ok ? "done" : "TIMEOUT",
              simulator.now() / 1000.0);
  std::printf("  intra-shard committed: %llu, aborted: %llu\n",
              static_cast<unsigned long long>(db.stats().intra_committed),
              static_cast<unsigned long long>(db.stats().intra_aborted));
  std::printf("  cross-shard committed: %llu, aborted: %llu\n",
              static_cast<unsigned long long>(db.stats().cross_committed),
              static_cast<unsigned long long>(db.stats().cross_aborted));

  // Per-shard ledgers are real PBFT chains.
  for (uint32_t s = 0; s < kShards; ++s) {
    auto* cluster = db.shard(s)->consensus();
    std::printf("shard %u: consensus height=%zu, replicas consistent=%s, "
                "keys=%zu\n",
                s, cluster->replica(0)->chain().height(),
                cluster->ChainsConsistent() ? "yes" : "NO",
                db.shard(s)->store()->num_keys());
  }

  long long balance = db.TotalBalance();
  std::printf("\nglobal balance: %lld (expected %lld) — %s\n", balance,
              static_cast<long long>(gen.expected_total()),
              balance == gen.expected_total() ? "money conserved"
                                              : "VIOLATION");
  std::printf("network: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(net.stats().messages_sent),
              static_cast<unsigned long long>(net.stats().bytes_sent));
  return balance == gen.expected_total() && ok ? 0 : 1;
}
