// Chained HotStuff (Yin et al., PODC'19) — the linear-communication BFT
// protocol cited by the survey (§2.3.3) as the modern alternative to PBFT.
//
// Implemented: the chained variant with a rotating leader per view. Votes
// for the view-v proposal flow to the leader of view v+1 (linear message
// complexity, vs PBFT's all-to-all); that leader aggregates n-f votes into
// a quorum certificate and proposes on top of it. Safety uses the two-chain
// locking rule, liveness a timeout pacemaker with NewView messages carrying
// the sender's highest QC. Commit fires on a direct-parent three-chain.
#ifndef PBC_CONSENSUS_HOTSTUFF_H_
#define PBC_CONSENSUS_HOTSTUFF_H_

#include <map>
#include <set>

#include "consensus/replica.h"

namespace pbc::consensus {

/// \brief Quorum certificate: n-f votes for one tree node in one view.
struct QuorumCert {
  uint64_t view = 0;
  crypto::Hash256 node_hash;  ///< Zero = genesis
};

/// \brief One node of the proposal tree.
struct HsTreeNode {
  crypto::Hash256 hash;
  crypto::Hash256 parent;
  uint64_t view = 0;
  uint64_t depth = 0;  ///< genesis = 0; used as the delivery sequence
  Batch batch;
  QuorumCert justify;

  static crypto::Hash256 ComputeHash(const crypto::Hash256& parent,
                                     uint64_t view,
                                     const crypto::Hash256& batch_digest);
};

struct HsProposal : sim::Message {
  HsTreeNode node;
  crypto::Signature sig;
  const char* type() const override { return "hs-proposal"; }
  size_t ByteSize() const override { return 160 + node.batch.WireBytes(); }
};

struct HsVote : sim::Message {
  uint64_t view = 0;
  crypto::Hash256 node_hash;
  crypto::Signature sig;
  const char* type() const override { return "hs-vote"; }
};

struct HsNewView : sim::Message {
  uint64_t view = 0;  ///< the view being entered
  QuorumCert high_qc;
  /// True when the sender entered `view` because its pacemaker timed out
  /// (vs. happy-path advancement on a QC). Only timeout NewViews authorize
  /// the leader's fallback proposal without a fresh QC — otherwise the
  /// fallback races the vote quorum and forks the happy path.
  bool timeout = false;
  crypto::Signature sig;
  const char* type() const override { return "hs-newview"; }
};

/// \brief A chained-HotStuff replica.
class HotStuffReplica : public Replica {
 public:
  HotStuffReplica(sim::NodeId id, sim::Network* net, ClusterConfig config,
                  crypto::PrivateKey key, const crypto::KeyRegistry* registry);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg) override;

  uint64_t view() const { return view_; }
  sim::NodeId LeaderOf(uint64_t view) const {
    return cfg_.replicas[view % cfg_.n()];
  }
  const QuorumCert& high_qc() const { return high_qc_; }
  uint64_t timeouts() const { return timeouts_; }

  ReplicaStatus Status() const override {
    ReplicaStatus status;
    status.commit_index = last_delivered_seq();
    status.view = view_;
    status.is_leader = LeaderOf(view_) == id();
    status.knows_leader = true;
    status.leader_index = static_cast<size_t>(view_ % cfg_.n());
    status.knows_next_leader = true;
    status.next_leader_index = static_cast<size_t>((view_ + 1) % cfg_.n());
    return status;
  }

 private:
  void OnStartPoll();
  void HandleProposal(sim::NodeId from, const HsProposal& m);
  void HandleVote(sim::NodeId from, const HsVote& m);
  void HandleNewView(sim::NodeId from, const HsNewView& m);

  /// Leader path: propose in `view_` extending high_qc_ if this replica
  /// leads the view and has something to flush.
  void MaybePropose();
  /// Called when a QC for `node_hash` in `view` is observed or formed.
  void ProcessQC(const QuorumCert& qc);
  /// Applies the three-chain commit rule triggered by a new QC.
  void TryCommitFrom(const QuorumCert& qc);
  void EnterView(uint64_t view, bool by_timeout = false);
  void ArmViewTimer();
  bool HasPendingWork() const;

  crypto::Hash256 VoteDigest(uint64_t view,
                             const crypto::Hash256& node_hash) const;

  const HsTreeNode* NodeOf(const crypto::Hash256& h) const;
  bool Extends(const crypto::Hash256& descendant,
               const crypto::Hash256& ancestor) const;

  uint64_t view_ = 1;
  QuorumCert high_qc_;    // genesis
  QuorumCert locked_qc_;  // genesis
  uint64_t last_voted_view_ = 0;
  std::map<crypto::Hash256, HsTreeNode> tree_;
  std::map<crypto::Hash256, std::set<sim::NodeId>> votes_;
  std::map<uint64_t, std::map<sim::NodeId, QuorumCert>> new_views_;
  std::map<uint64_t, std::set<sim::NodeId>> timeout_new_views_;
  crypto::Hash256 last_committed_;  ///< deepest committed node
  uint64_t committed_depth_ = 0;
  uint64_t max_tree_depth_ = 0;
  uint64_t timer_epoch_ = 0;
  uint64_t timeouts_ = 0;
  std::set<uint64_t> proposed_views_;
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_HOTSTUFF_H_
