// Multi-Paxos (Lamport, "Paxos Made Simple") — the other CFT ordering
// protocol the survey names for permissioned blockchains (§2.2:
// "asynchronous fault-tolerant protocols, e.g., Paxos or PBFT").
//
// Implemented as classic Multi-Paxos with a stable distinguished proposer:
// Phase 1 (prepare/promise) runs once per leadership term over the whole
// log ("multi" optimization); Phase 2 (accept/accepted) runs per slot.
// Leadership is acquired by whoever times out first with a higher ballot;
// promises carry previously-accepted values so a new leader re-proposes
// them (the safety core of Paxos). Learners are the acceptors themselves:
// a value is chosen when a majority accepts it, and the leader broadcasts
// a commit notice for cheap learning.
//
// Differences from Raft worth teaching: no log-matching invariant —
// every slot is decided independently, so holes are filled with no-ops on
// leader change; ballots play the role of terms.
#ifndef PBC_CONSENSUS_PAXOS_H_
#define PBC_CONSENSUS_PAXOS_H_

#include <map>
#include <set>

#include "consensus/replica.h"

namespace pbc::consensus {

/// Ballot number: (round << 16) | proposer-index, totally ordered.
using Ballot = uint64_t;

struct PaxosPrepare : sim::Message {
  Ballot ballot = 0;
  uint64_t first_slot = 1;  ///< prepare covers [first_slot, ∞)
  const char* type() const override { return "paxos-prepare"; }
};

struct PaxosPromise : sim::Message {
  Ballot ballot = 0;
  /// Previously accepted (ballot, value) per slot ≥ first_slot.
  struct Accepted {
    uint64_t slot;
    Ballot ballot;
    Batch value;
  };
  std::vector<Accepted> accepted;
  uint64_t last_committed = 0;
  const char* type() const override { return "paxos-promise"; }
  size_t ByteSize() const override {
    size_t bytes = 64;
    for (const auto& a : accepted) bytes += 32 + a.value.WireBytes();
    return bytes;
  }
};

struct PaxosAccept : sim::Message {
  Ballot ballot = 0;
  uint64_t slot = 0;
  Batch value;
  const char* type() const override { return "paxos-accept"; }
  size_t ByteSize() const override { return 80 + value.WireBytes(); }
};

struct PaxosAccepted : sim::Message {
  Ballot ballot = 0;
  uint64_t slot = 0;
  const char* type() const override { return "paxos-accepted"; }
};

struct PaxosCommit : sim::Message {
  uint64_t slot = 0;
  Batch value;
  const char* type() const override { return "paxos-commit"; }
  size_t ByteSize() const override { return 72 + value.WireBytes(); }
};

/// \brief A Multi-Paxos replica (proposer + acceptor + learner in one).
class PaxosReplica : public Replica {
 public:
  PaxosReplica(sim::NodeId id, sim::Network* net, ClusterConfig config,
               crypto::PrivateKey key, const crypto::KeyRegistry* registry);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg) override;

  bool IsLeader() const { return leading_; }
  Ballot ballot() const { return my_ballot_; }

  /// Like Raft: only the distinguished proposer self-reports leadership.
  ReplicaStatus Status() const override {
    ReplicaStatus status;
    status.commit_index = last_delivered_seq();
    status.view = my_ballot_ >> 16;  // ballot round; low bits are the index
    status.is_leader = leading_;
    if (leading_) {
      status.knows_leader = true;
      status.leader_index = cfg_.IndexOf(id());
    }
    return status;
  }

 private:
  // Proposer.
  void TryBecomeLeader();
  void HandlePromise(sim::NodeId from, const PaxosPromise& m);
  void ProposePending();
  /// Block mode: re-poll TakeBatch until the cut rules fire.
  void SchedulePendingPropose();
  void HandleAccepted(sim::NodeId from, const PaxosAccepted& m);
  // Acceptor.
  void HandlePrepare(sim::NodeId from, const PaxosPrepare& m);
  void HandleAccept(sim::NodeId from, const PaxosAccept& m);
  // Learner.
  void HandleCommit(sim::NodeId from, const PaxosCommit& m);
  void ArmLivenessTimer();

  Ballot MakeBallot(uint64_t round) const {
    return (round << 16) | cfg_.IndexOf(id());
  }

  // Acceptor state.
  Ballot promised_ = 0;
  struct SlotState {
    Ballot accepted_ballot = 0;
    Batch accepted_value;
    bool has_value = false;
  };
  std::map<uint64_t, SlotState> acceptor_log_;

  // Proposer state.
  bool leading_ = false;
  Ballot my_ballot_ = 0;
  uint64_t round_ = 0;
  std::map<sim::NodeId, PaxosPromise> promises_;
  std::map<uint64_t, std::set<sim::NodeId>> accept_votes_;
  std::map<uint64_t, Batch> proposing_;  ///< in-flight slot → value
  uint64_t next_slot_ = 1;

  // Learner state.
  uint64_t last_learned_ = 0;

  uint64_t timer_epoch_ = 0;
  bool propose_poll_armed_ = false;
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_PAXOS_H_
