// Base class shared by all consensus replicas: transaction pool, in-order
// batch delivery, and the hash-chained ledger each replica maintains.
#ifndef PBC_CONSENSUS_REPLICA_H_
#define PBC_CONSENSUS_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <set>

#include "consensus/types.h"
#include "crypto/auth.h"
#include "ledger/chain.h"

namespace pbc::consensus {

/// \brief Invoked on each replica when a batch commits (in order).
using CommitListener =
    std::function<void(sim::NodeId replica, uint64_t seq, const Batch&)>;

/// \brief Common replica machinery.
///
/// Protocol subclasses implement agreement and call `DeliverCommitted`
/// with (sequence, batch) pairs; this class buffers out-of-order arrivals,
/// appends non-empty batches to the replica's chain in sequence order, and
/// tracks committed transaction ids so re-proposals are deduplicated.
class Replica : public sim::Node {
 public:
  Replica(sim::NodeId id, sim::Network* net, ClusterConfig config,
          crypto::PrivateKey key, const crypto::KeyRegistry* registry);

  /// Adds a client transaction to the local pool (idempotent by txn id).
  virtual void SubmitTransaction(txn::Transaction txn);

  const ledger::Chain& chain() const { return chain_; }
  uint64_t committed_txns() const { return committed_txns_; }
  uint64_t last_delivered_seq() const { return next_deliver_ - 1; }
  size_t pool_size() const { return pool_.size(); }

  void set_commit_listener(CommitListener listener) {
    listener_ = std::move(listener);
  }
  void set_byzantine_mode(ByzantineMode mode) { byzantine_ = mode; }
  ByzantineMode byzantine_mode() const { return byzantine_; }

  const ClusterConfig& config() const { return cfg_; }

 protected:
  /// Hands a decided batch to the delivery pipeline. Sequences start at 1.
  /// Duplicate delivery of the same sequence is ignored (protocols may
  /// decide a sequence more than once during view changes — the decided
  /// value is necessarily identical if the protocol is safe, and tests
  /// assert exactly that via chain comparison).
  void DeliverCommitted(uint64_t seq, Batch batch);

  /// Removes up to batch_size pool transactions and returns them.
  Batch TakeBatch();

  /// Puts a batch's transactions back into the pool (failed proposal).
  void ReturnToPool(const Batch& batch);

  /// Models client-request authenticity: true iff every transaction in
  /// `batch` was at some point submitted to this replica as a client
  /// transaction (clients broadcast to all replicas, so honest proposals
  /// always pass). A transaction fabricated by a Byzantine leader was
  /// never submitted, so honest replicas refuse to endorse the batch —
  /// the stand-in for verifying client signatures on requests.
  bool KnownClientTxns(const Batch& batch) const {
    for (const auto& t : batch.txns) {
      if (seen_ids_.count(t.id) == 0) return false;
    }
    return true;
  }

  /// Signs a protocol digest with this replica's key.
  crypto::Signature Sign(const crypto::Hash256& digest) const {
    return key_.Sign(digest);
  }
  /// Verifies a peer's signature over a digest.
  bool VerifyPeer(const crypto::Hash256& digest,
                  const crypto::Signature& sig) const {
    return registry_->Verify(digest, sig);
  }

  ClusterConfig cfg_;

 private:
  crypto::PrivateKey key_;
  const crypto::KeyRegistry* registry_;

  std::deque<txn::Transaction> pool_;
  std::set<txn::TxnId> pool_ids_;
  std::set<txn::TxnId> committed_ids_;
  std::set<txn::TxnId> seen_ids_;  // everything ever submitted (monotone)

  ledger::Chain chain_;
  // Submit timestamps for commit-latency histograms; populated only when
  // the network has a metrics registry attached (see replica.cc).
  std::map<txn::TxnId, sim::Time> submit_time_us_;
  std::map<uint64_t, Batch> out_of_order_;
  uint64_t next_deliver_ = 1;
  uint64_t committed_txns_ = 0;
  CommitListener listener_;
  ByzantineMode byzantine_ = ByzantineMode::kHonest;
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_REPLICA_H_
