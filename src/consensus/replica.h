// Base class shared by all consensus replicas: transaction pool, in-order
// batch delivery, the hash-chained ledger each replica maintains, and the
// block pipeline (body dissemination + fetch) when block mode is enabled.
#ifndef PBC_CONSENSUS_REPLICA_H_
#define PBC_CONSENSUS_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "block/store.h"
#include "consensus/types.h"
#include "crypto/auth.h"
#include "ledger/chain.h"

namespace pbc::consensus {

/// \brief Invoked on each replica when a batch commits (in order).
using CommitListener =
    std::function<void(sim::NodeId replica, uint64_t seq, const Batch&)>;

/// \brief Uniform leadership/progress snapshot across protocols.
///
/// Read-only introspection for observers (the adaptive adversary in
/// `src/check`, dashboards, tests); never consulted by protocol logic, so
/// reading it cannot change a run. Protocols with rotating leadership
/// (pbft, hotstuff, tendermint) always know the proposer for the view
/// they are in; election-based protocols (raft, paxos) only self-report —
/// a follower does not track who leads, so only the leader itself sets
/// `knows_leader`.
struct ReplicaStatus {
  bool is_leader = false;          ///< this replica believes it leads now
  bool knows_leader = false;       ///< leader_index is meaningful
  size_t leader_index = 0;         ///< leader's index in cfg.replicas
  bool knows_next_leader = false;  ///< next_leader_index is meaningful
  size_t next_leader_index = 0;    ///< proposer after one view/round change
  uint64_t view = 0;               ///< view / round / term / ballot round
  uint64_t commit_index = 0;       ///< last in-order delivered sequence
};

/// \brief Block body dissemination: sent by a proposer alongside its
/// block-ref proposal, and by any replica answering a fetch.
struct BlockBodyMsg : sim::Message {
  ledger::Block body;
  const char* type() const override { return "block-body"; }
  size_t ByteSize() const override { return 80 + body.txns.size() * 64; }
};

/// \brief Pull request for a block body this replica ordered but never
/// received (lost to a crash, partition, or a Byzantine proposer).
struct BlockFetchMsg : sim::Message {
  crypto::Hash256 hash;
  const char* type() const override { return "block-fetch"; }
  size_t ByteSize() const override { return 40; }
};

/// \brief Common replica machinery.
///
/// Protocol subclasses implement agreement and call `DeliverCommitted`
/// with (sequence, batch) pairs; this class buffers out-of-order arrivals,
/// appends non-empty batches to the replica's chain in sequence order, and
/// tracks committed transaction ids so re-proposals are deduplicated.
///
/// Block mode (cfg_.block.enabled): TakeBatch seals pool transactions into
/// a `ledger::Block` under the cut rules, broadcasts the body, and returns
/// a compact block-ref batch for the protocol to order. Delivery resolves
/// refs through the local block store, stalling (and fetching) when a body
/// has not arrived yet. Protocols opt in with two hooks:
///  * OnMessage first line: `if (HandleBlockMessage(from, msg)) return;`
///  * body-dependent handlers (client-authenticity checks): guard with
///    `if (!EnsureBodyOrFetch(from, msg, batch)) return;` — the message is
///    parked and re-dispatched through OnMessage when the body lands.
class Replica : public sim::Node {
 public:
  Replica(sim::NodeId id, sim::Network* net, ClusterConfig config,
          crypto::PrivateKey key, const crypto::KeyRegistry* registry);

  /// Adds a client transaction to the local pool (idempotent by txn id).
  virtual void SubmitTransaction(txn::Transaction txn);

  const ledger::Chain& chain() const { return chain_; }
  uint64_t committed_txns() const { return committed_txns_; }
  uint64_t last_delivered_seq() const { return next_deliver_ - 1; }
  size_t pool_size() const { return pool_.size(); }
  const block::BlockStore& block_store() const { return blocks_; }
  /// Decided sequences buffered ahead of in-order delivery.
  size_t pending_deliveries() const { return out_of_order_.size(); }
  /// True when the next in-order sequence is decided but its block body
  /// has not arrived yet (delivery is stalled on a fetch).
  bool delivery_stalled_on_body() const {
    auto it = out_of_order_.find(next_deliver_);
    return it != out_of_order_.end() && it->second.block_ref &&
           !it->second.empty() && !blocks_.Contains(it->second.block_hash);
  }

  void set_commit_listener(CommitListener listener) {
    listener_ = std::move(listener);
  }
  void set_byzantine_mode(ByzantineMode mode) { byzantine_ = mode; }
  ByzantineMode byzantine_mode() const { return byzantine_; }

  const ClusterConfig& config() const { return cfg_; }

  /// Leadership/progress snapshot (see ReplicaStatus). The base knows
  /// only commit progress; protocol subclasses overlay leadership.
  virtual ReplicaStatus Status() const {
    ReplicaStatus status;
    status.commit_index = last_delivered_seq();
    return status;
  }

 protected:
  /// Hands a decided batch to the delivery pipeline. Sequences start at 1.
  /// Duplicate delivery of the same sequence is ignored (protocols may
  /// decide a sequence more than once during view changes — the decided
  /// value is necessarily identical if the protocol is safe, and tests
  /// assert exactly that via chain comparison). A block-ref batch whose
  /// body has not arrived stalls delivery (of it and every later
  /// sequence) until the fetch completes.
  void DeliverCommitted(uint64_t seq, Batch batch);

  /// Removes up to batch_size pool transactions and returns them. In
  /// block mode (for honest replicas): returns an EMPTY batch until a cut
  /// is due, then seals a block, broadcasts its body, and returns a
  /// block-ref. Byzantine proposers keep using inline batches so the
  /// equivocation fork paths stay byte-level meaningful.
  Batch TakeBatch();

  /// Puts a batch's transactions back into the pool (failed proposal).
  /// Block-refs resolve through the block store.
  void ReturnToPool(const Batch& batch);

  /// Models client-request authenticity: true iff every transaction in
  /// `batch` was at some point submitted to this replica as a client
  /// transaction (clients broadcast to all replicas, so honest proposals
  /// always pass). A transaction fabricated by a Byzantine leader was
  /// never submitted, so honest replicas refuse to endorse the batch —
  /// the stand-in for verifying client signatures on requests. For a
  /// block-ref batch the check runs over the stored body (callers must
  /// EnsureBodyOrFetch first; a missing body fails closed).
  bool KnownClientTxns(const Batch& batch) const;

  /// Dispatches block-body / block-fetch traffic. Protocols call this at
  /// the top of OnMessage; returns true when the message was consumed.
  bool HandleBlockMessage(sim::NodeId from, const sim::MessagePtr& msg);

  /// True when `batch` is inline, empty, or its body is stored locally.
  /// Otherwise parks `msg` keyed by the block hash, broadcasts a fetch,
  /// and returns false; the parked message is re-dispatched through
  /// OnMessage when the body arrives.
  bool EnsureBodyOrFetch(sim::NodeId from, const sim::MessagePtr& msg,
                         const Batch& batch);

  /// Signs a protocol digest with this replica's key.
  crypto::Signature Sign(const crypto::Hash256& digest) const {
    return key_.Sign(digest);
  }
  /// Verifies a peer's signature over a digest.
  bool VerifyPeer(const crypto::Hash256& digest,
                  const crypto::Signature& sig) const {
    return registry_->Verify(digest, sig);
  }

  ClusterConfig cfg_;

 private:
  /// Delivers every consecutive ready sequence; stalls on a missing body.
  void DrainDeliveries();
  /// Body landed: unpark waiting protocol messages, retry delivery.
  void OnBlockBody(const ledger::Block& body);
  /// Broadcasts a fetch for `hash` with a deterministic retry timer.
  void RequestBody(const crypto::Hash256& hash);
  void ErasePoolTxn(txn::TxnId id);

  crypto::PrivateKey key_;
  const crypto::KeyRegistry* registry_;

  std::deque<txn::Transaction> pool_;
  std::set<txn::TxnId> pool_ids_;
  std::set<txn::TxnId> committed_ids_;
  std::set<txn::TxnId> seen_ids_;  // everything ever submitted (monotone)

  ledger::Chain chain_;
  // Submit timestamps for commit-latency histograms; populated only when
  // the network has a metrics registry attached (see replica.cc).
  std::map<txn::TxnId, sim::Time> submit_time_us_;
  std::map<uint64_t, Batch> out_of_order_;
  uint64_t next_deliver_ = 1;
  uint64_t committed_txns_ = 0;
  CommitListener listener_;
  ByzantineMode byzantine_ = ByzantineMode::kHonest;

  // --- Block pipeline state --------------------------------------------
  block::BlockStore blocks_;
  /// Pool arrival times (block mode only) driving the timer-cut rule.
  std::map<txn::TxnId, sim::Time> arrival_us_;
  /// Local count of blocks this replica sealed (header height source).
  uint64_t sealed_blocks_ = 0;
  /// Protocol messages waiting for a body, keyed by block hash.
  std::map<crypto::Hash256, std::vector<std::pair<sim::NodeId, sim::MessagePtr>>>
      parked_;
  /// Last fetch broadcast per missing hash (rate-limits re-requests).
  std::map<crypto::Hash256, sim::Time> fetch_sent_us_;
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_REPLICA_H_
