#include "consensus/pbft.h"

#include <algorithm>

#include "obs/obs.h"

namespace pbc::consensus {

namespace {
// Extra transaction appended by an equivocating primary to fork a batch.
txn::Transaction EvilTxn(uint64_t seq) {
  txn::Transaction t;
  t.id = 0xE01100000000ULL + seq;
  t.ops.push_back(txn::Op::Write("evil", "fork"));
  return t;
}
}  // namespace

PbftReplica::PbftReplica(sim::NodeId id, sim::Network* net,
                         ClusterConfig config, crypto::PrivateKey key,
                         const crypto::KeyRegistry* registry)
    : Replica(id, net, std::move(config), std::move(key), registry) {}

crypto::Hash256 PbftReplica::BindDigest(const char* tag, uint64_t view,
                                        uint64_t seq,
                                        const crypto::Hash256& digest) const {
  crypto::Sha256 h;
  h.Update(std::string(tag));
  h.UpdateU64(view);
  h.UpdateU64(seq);
  h.Update(digest);
  return h.Finalize();
}

void PbftReplica::OnStart() {
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  ArmProgressTimer();
  // Proposal pacing tick.
  ScheduleProposeTick(std::max<sim::Time>(1000, cfg_.timeout_us / 20));
}

void PbftReplica::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  if (HandleBlockMessage(from, msg)) return;
  const char* t = msg->type();
  if (t == std::string("pbft-preprepare")) {
    const auto& pp = static_cast<const PbftPrePrepare&>(*msg);
    // The client-authenticity check below needs the block body; park the
    // pre-prepare until it arrives (it travels beside the proposal).
    if (!EnsureBodyOrFetch(from, msg, pp.batch)) return;
    HandlePrePrepare(from, pp);
  } else if (t == std::string("pbft-prepare")) {
    HandlePrepare(from, static_cast<const PbftPrepare&>(*msg));
  } else if (t == std::string("pbft-commit")) {
    HandleCommit(from, static_cast<const PbftCommit&>(*msg));
  } else if (t == std::string("pbft-checkpoint")) {
    HandleCheckpoint(from, static_cast<const PbftCheckpoint&>(*msg));
  } else if (t == std::string("pbft-viewchange")) {
    HandleViewChange(from, static_cast<const PbftViewChange&>(*msg));
  } else if (t == std::string("pbft-newview")) {
    HandleNewView(from, static_cast<const PbftNewView&>(*msg));
  }
}

void PbftReplica::MaybePropose() {
  if (!IsPrimary() || in_view_change_) return;
  while (pool_size() > 0 &&
         next_seq_ - 1 - last_delivered_seq() < kWindow / 2) {
    Batch batch = TakeBatch();
    if (batch.empty()) break;
    uint64_t seq = next_seq_++;

    if (byzantine_mode() == ByzantineMode::kEquivocate) {
      // Send conflicting pre-prepares to the two halves of the cluster.
      Batch forked = batch;
      forked.txns.push_back(EvilTxn(seq));
      for (size_t i = 0; i < cfg_.n(); ++i) {
        const Batch& b = (i < cfg_.n() / 2) ? batch : forked;
        auto m = std::make_shared<PbftPrePrepare>();
        m->view = view_;
        m->seq = seq;
        m->batch = b;
        m->digest = b.Digest();
        m->sig = Sign(BindDigest("pbft-pp", view_, seq, m->digest));
        Send(cfg_.replicas[i], m);
      }
      continue;
    }

    auto m = std::make_shared<PbftPrePrepare>();
    m->view = view_;
    m->seq = seq;
    m->batch = std::move(batch);
    m->digest = m->batch.Digest();
    m->sig = Sign(BindDigest("pbft-pp", view_, seq, m->digest));
    Slot& slot = log_[seq];
    slot.view = view_;
    slot.has_preprepare = true;
    slot.batch = m->batch;
    slot.digest = m->digest;
    slot.proposed_by_me = true;
    Broadcast(cfg_.replicas, m);
    SendPrepare(seq, m->digest);
  }
}

void PbftReplica::HandlePrePrepare(sim::NodeId from, const PbftPrePrepare& m) {
  if (m.view != view_ || in_view_change_) return;
  if (from != PrimaryOf(m.view)) return;
  if (!InWindow(m.seq)) return;
  if (!VerifyPeer(BindDigest("pbft-pp", m.view, m.seq, m.digest), m.sig) ||
      m.sig.signer != from) {
    return;
  }
  if (m.batch.Digest() != m.digest) return;
  // Client-authenticity check: refuse batches carrying transactions no
  // client ever submitted (a Byzantine primary fabricating entries).
  if (byzantine_mode() == ByzantineMode::kHonest &&
      !KnownClientTxns(m.batch)) {
    return;
  }

  Slot& slot = log_[m.seq];
  if (slot.has_preprepare && slot.view == m.view &&
      slot.digest != m.digest &&
      byzantine_mode() != ByzantineMode::kVoteBoth) {
    return;  // equivocation: refuse the second pre-prepare
  }
  slot.view = m.view;
  slot.has_preprepare = true;
  slot.batch = m.batch;
  slot.digest = m.digest;
  SendPrepare(m.seq, m.digest);
  TryPrepare(m.seq);
}

void PbftReplica::SendPrepare(uint64_t seq, const crypto::Hash256& digest) {
  auto p = std::make_shared<PbftPrepare>();
  p->view = view_;
  p->seq = seq;
  p->digest = digest;
  p->sig = Sign(BindDigest("pbft-p", view_, seq, digest));
  Broadcast(cfg_.replicas, p);
}

void PbftReplica::HandlePrepare(sim::NodeId from, const PbftPrepare& m) {
  if (m.view != view_ || !InWindow(m.seq)) return;
  if (!VerifyPeer(BindDigest("pbft-p", m.view, m.seq, m.digest), m.sig) ||
      m.sig.signer != from) {
    return;
  }
  digest_prepares_[m.seq][m.digest].insert(from);
  TryPrepare(m.seq);
}

void PbftReplica::TryPrepare(uint64_t seq) {
  Slot& slot = log_[seq];
  if (!slot.has_preprepare || slot.prepared) return;
  const auto& votes = digest_prepares_[seq][slot.digest];
  if (votes.size() >= 2 * cfg_.f) {
    slot.prepared = true;
    SendCommit(seq, slot.digest);
    TryCommit(seq);
  }
}

void PbftReplica::SendCommit(uint64_t seq, const crypto::Hash256& digest) {
  auto c = std::make_shared<PbftCommit>();
  c->view = view_;
  c->seq = seq;
  c->digest = digest;
  c->sig = Sign(BindDigest("pbft-c", view_, seq, digest));
  Broadcast(cfg_.replicas, c);
}

void PbftReplica::HandleCommit(sim::NodeId from, const PbftCommit& m) {
  if (!InWindow(m.seq)) return;
  if (!VerifyPeer(BindDigest("pbft-c", m.view, m.seq, m.digest), m.sig) ||
      m.sig.signer != from) {
    return;
  }
  digest_commits_[m.seq][m.digest].insert(from);
  TryCommit(m.seq);
}

void PbftReplica::TryCommit(uint64_t seq) {
  Slot& slot = log_[seq];
  if (!slot.prepared || slot.committed) return;
  const auto& votes = digest_commits_[seq][slot.digest];
  if (votes.size() >= cfg_.BftQuorum()) {
    slot.committed = true;
    DeliverCommitted(seq, slot.batch);
    MaybeCheckpoint(last_delivered_seq());
  }
}

void PbftReplica::MaybeCheckpoint(uint64_t delivered_seq) {
  if (delivered_seq < last_checkpoint_sent_ + cfg_.checkpoint_interval) {
    return;
  }
  last_checkpoint_sent_ = delivered_seq;
  auto cp = std::make_shared<PbftCheckpoint>();
  cp->seq = delivered_seq;
  crypto::Sha256 h;
  h.UpdateU64(delivered_seq);
  h.Update(chain().TipHash());
  cp->state_digest = h.Finalize();
  cp->sig = Sign(BindDigest("pbft-cp", 0, delivered_seq, cp->state_digest));
  Broadcast(cfg_.replicas, cp);
}

void PbftReplica::HandleCheckpoint(sim::NodeId from, const PbftCheckpoint& m) {
  if (!VerifyPeer(BindDigest("pbft-cp", 0, m.seq, m.state_digest), m.sig) ||
      m.sig.signer != from) {
    return;
  }
  auto& votes = checkpoint_votes_[m.seq][m.state_digest];
  votes.insert(from);
  if (votes.size() >= cfg_.BftQuorum() && m.seq > stable_checkpoint_) {
    stable_checkpoint_ = m.seq;
    // Garbage-collect everything at or below the stable checkpoint.
    log_.erase(log_.begin(), log_.lower_bound(stable_checkpoint_ + 1));
    digest_prepares_.erase(
        digest_prepares_.begin(),
        digest_prepares_.lower_bound(stable_checkpoint_ + 1));
    digest_commits_.erase(
        digest_commits_.begin(),
        digest_commits_.lower_bound(stable_checkpoint_ + 1));
    checkpoint_votes_.erase(checkpoint_votes_.begin(),
                            checkpoint_votes_.lower_bound(m.seq));
  }
}

void PbftReplica::ArmProgressTimer() {
  uint64_t epoch = ++timer_epoch_;
  delivered_at_last_tick_ = last_delivered_seq();
  SetTimer(cfg_.timeout_us, [this, epoch] {
    if (epoch != timer_epoch_) return;
    OnProgressTimeout();
  });
}

void PbftReplica::OnProgressTimeout() {
  bool pending_work =
      pool_size() > 0 ||
      std::any_of(log_.begin(), log_.end(), [](const auto& kv) {
        return kv.second.has_preprepare && !kv.second.committed;
      });
  bool progressed = last_delivered_seq() > delivered_at_last_tick_;
  if (!pending_work || progressed) {
    ArmProgressTimer();
    return;
  }
  StartViewChange(in_view_change_ ? target_view_ + 1 : view_ + 1);
  ArmProgressTimer();
}

void PbftReplica::StartViewChange(uint64_t target_view) {
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  // If I was the primary, reclaim my un-committed proposals.
  if (IsPrimary()) {
    for (auto& [seq, slot] : log_) {
      if (slot.proposed_by_me && !slot.committed) ReturnToPool(slot.batch);
    }
  }
  in_view_change_ = true;
  target_view_ = target_view;
  ++view_changes_;
  PBC_OBS_COUNT(network()->metrics(), "consensus.view_changes", 1);
  PBC_OBS_COUNT(network()->metrics(), "pbft.view_changes", 1);
  PBC_OBS_TRACE(network()->trace(), network()->now(),
                obs::TraceKind::kViewChange, id(), id(), "pbft-viewchange",
                target_view);

  auto vc = std::make_shared<PbftViewChange>();
  vc->new_view = target_view;
  vc->last_delivered = last_delivered_seq();
  for (const auto& [seq, slot] : log_) {
    if (slot.prepared && !slot.committed) {
      vc->prepared.push_back({seq, slot.view, slot.digest, slot.batch});
    }
  }
  crypto::Sha256 h;
  h.UpdateU64(target_view);
  h.UpdateU64(vc->last_delivered);
  for (const auto& p : vc->prepared) h.Update(p.digest);
  vc->sig = Sign(BindDigest("pbft-vc", target_view, vc->last_delivered,
                            h.Finalize()));
  Broadcast(cfg_.replicas, vc);
}

void PbftReplica::HandleViewChange(sim::NodeId from, const PbftViewChange& m) {
  crypto::Sha256 h;
  h.UpdateU64(m.new_view);
  h.UpdateU64(m.last_delivered);
  for (const auto& p : m.prepared) h.Update(p.digest);
  if (!VerifyPeer(BindDigest("pbft-vc", m.new_view, m.last_delivered,
                             h.Finalize()),
                  m.sig) ||
      m.sig.signer != from) {
    return;
  }
  if (m.new_view <= view_) return;
  vc_msgs_[m.new_view][from] = m;

  // Join rule: f+1 replicas already moved to a higher view — follow them.
  uint64_t my_target = in_view_change_ ? target_view_ : view_;
  if (m.new_view > my_target &&
      vc_msgs_[m.new_view].size() >= cfg_.f + 1 &&
      vc_msgs_[m.new_view].count(id()) == 0) {
    StartViewChange(m.new_view);
  }

  // New-primary rule.
  if (PrimaryOf(m.new_view) != id()) return;
  if (new_view_sent_.count(m.new_view) > 0) return;
  if (vc_msgs_[m.new_view].size() < cfg_.BftQuorum()) return;

  new_view_sent_.insert(m.new_view);
  auto nv = std::make_shared<PbftNewView>();
  nv->new_view = m.new_view;

  // Gather the highest-view prepared certificate per sequence.
  std::map<uint64_t, PreparedProof> best;
  uint64_t max_seq = last_delivered_seq();
  for (const auto& [sender, vc] : vc_msgs_[m.new_view]) {
    max_seq = std::max(max_seq, vc.last_delivered);
    for (const auto& proof : vc.prepared) {
      max_seq = std::max(max_seq, proof.seq);
      auto it = best.find(proof.seq);
      if (it == best.end() || proof.view > it->second.view) {
        best[proof.seq] = proof;
      }
    }
  }

  for (uint64_t seq = stable_checkpoint_ + 1; seq <= max_seq; ++seq) {
    Batch batch;
    auto bi = best.find(seq);
    if (bi != best.end()) {
      batch = bi->second.batch;
    } else {
      auto li = log_.find(seq);
      if (li != log_.end() && li->second.committed) {
        batch = li->second.batch;  // already decided; re-announce
      }
      // else: a null (empty) batch fills the gap.
    }
    PbftPrePrepare pp;
    pp.view = m.new_view;
    pp.seq = seq;
    pp.batch = std::move(batch);
    pp.digest = pp.batch.Digest();
    pp.sig = Sign(BindDigest("pbft-pp", m.new_view, seq, pp.digest));
    nv->preprepares.push_back(std::move(pp));
  }
  nv->sig = Sign(BindDigest("pbft-nv", m.new_view, nv->preprepares.size(),
                            crypto::Hash256::Zero()));
  next_seq_ = max_seq + 1;
  Broadcast(cfg_.replicas, nv);
}

void PbftReplica::HandleNewView(sim::NodeId from, const PbftNewView& m) {
  if (from != PrimaryOf(m.new_view)) return;
  if (!VerifyPeer(BindDigest("pbft-nv", m.new_view, m.preprepares.size(),
                             crypto::Hash256::Zero()),
                  m.sig) ||
      m.sig.signer != from) {
    return;
  }
  if (m.new_view < view_) return;
  view_ = m.new_view;
  in_view_change_ = false;
  // Reset per-view vote state for re-proposed sequences.
  for (const auto& pp : m.preprepares) {
    if (pp.seq <= last_delivered_seq()) continue;
    Slot& slot = log_[pp.seq];
    if (!slot.committed) {
      slot = Slot{};
    }
    // A re-proposed block-ref whose body we never saw: park a standalone
    // pre-prepare (re-dispatched via OnMessage once the body is fetched).
    auto standalone = std::make_shared<PbftPrePrepare>(pp);
    if (!EnsureBodyOrFetch(from, standalone, pp.batch)) continue;
    HandlePrePrepare(from, pp);
  }
  ArmProgressTimer();
  MaybePropose();
}

void PbftReplica::ScheduleProposeTick(sim::Time tick) {
  SetTimer(tick, [this, tick] {
    if (byzantine_mode() != ByzantineMode::kSilent) MaybePropose();
    ScheduleProposeTick(tick);
  });
}

}  // namespace pbc::consensus
