#include "consensus/paxos.h"

#include <algorithm>

#include "obs/obs.h"

namespace pbc::consensus {

namespace {
constexpr size_t kMaxInFlight = 64;
}

PaxosReplica::PaxosReplica(sim::NodeId id, sim::Network* net,
                           ClusterConfig config, crypto::PrivateKey key,
                           const crypto::KeyRegistry* registry)
    : Replica(id, net, std::move(config), std::move(key), registry) {}

void PaxosReplica::OnStart() { ArmLivenessTimer(); }

void PaxosReplica::ArmLivenessTimer() {
  uint64_t epoch = ++timer_epoch_;
  uint64_t learned_then = last_learned_;
  // Randomized (like Raft's election timeout) so one proposer wins.
  // NextU64 tolerates timeout_us == 0 by returning 0.
  sim::Time t = cfg_.timeout_us +
                network()->simulator()->rng()->NextU64(cfg_.timeout_us);
  SetTimer(t, [this, epoch, learned_then] {
    if (epoch != timer_epoch_) return;
    bool pending = pool_size() > 0 || !proposing_.empty();
    bool progressed = last_learned_ > learned_then;
    if (pending && !progressed && !leading_) {
      TryBecomeLeader();
    } else if (leading_) {
      ProposePending();
    }
    ArmLivenessTimer();
  });
}

void PaxosReplica::TryBecomeLeader() {
  ++round_;
  PBC_OBS_COUNT(network()->metrics(), "consensus.view_changes", 1);
  PBC_OBS_COUNT(network()->metrics(), "paxos.leader_attempts", 1);
  PBC_OBS_TRACE(network()->trace(), network()->now(),
                obs::TraceKind::kViewChange, id(), id(), "paxos-prepare",
                round_);
  // Round must exceed any ballot seen, or our prepare is dead on arrival.
  while (MakeBallot(round_) <= promised_) ++round_;
  my_ballot_ = MakeBallot(round_);
  leading_ = false;
  promises_.clear();
  auto p = std::make_shared<PaxosPrepare>();
  p->ballot = my_ballot_;
  p->first_slot = last_learned_ + 1;
  Broadcast(cfg_.replicas, p);
}

void PaxosReplica::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (HandleBlockMessage(from, msg)) return;
  const char* t = msg->type();
  if (t == std::string("paxos-prepare")) {
    HandlePrepare(from, static_cast<const PaxosPrepare&>(*msg));
  } else if (t == std::string("paxos-promise")) {
    HandlePromise(from, static_cast<const PaxosPromise&>(*msg));
  } else if (t == std::string("paxos-accept")) {
    HandleAccept(from, static_cast<const PaxosAccept&>(*msg));
  } else if (t == std::string("paxos-accepted")) {
    HandleAccepted(from, static_cast<const PaxosAccepted&>(*msg));
  } else if (t == std::string("paxos-commit")) {
    HandleCommit(from, static_cast<const PaxosCommit&>(*msg));
  }
}

void PaxosReplica::HandlePrepare(sim::NodeId from, const PaxosPrepare& m) {
  if (m.ballot <= promised_) return;  // stale proposer; ignore
  promised_ = m.ballot;
  if (leading_ && m.ballot > my_ballot_) leading_ = false;

  auto reply = std::make_shared<PaxosPromise>();
  reply->ballot = m.ballot;
  reply->last_committed = last_learned_;
  for (const auto& [slot, state] : acceptor_log_) {
    if (slot >= m.first_slot && state.has_value) {
      reply->accepted.push_back(
          {slot, state.accepted_ballot, state.accepted_value});
    }
  }
  Send(from, reply);
}

void PaxosReplica::HandlePromise(sim::NodeId from, const PaxosPromise& m) {
  if (m.ballot != my_ballot_) return;  // stale round
  if (leading_) return;                // quorum already reached
  promises_[from] = m;
  if (promises_.size() < cfg_.MajorityQuorum()) return;

  leading_ = true;
  // Adopt the highest-ballot accepted value per slot (the Paxos rule).
  std::map<uint64_t, std::pair<Ballot, Batch>> best;
  uint64_t max_slot = last_learned_;
  for (const auto& [sender, promise] : promises_) {
    for (const auto& acc : promise.accepted) {
      max_slot = std::max(max_slot, acc.slot);
      auto it = best.find(acc.slot);
      if (it == best.end() || acc.ballot > it->second.first) {
        best[acc.slot] = {acc.ballot, acc.value};
      }
    }
  }
  // Re-propose bound values; fill holes with no-ops so delivery advances.
  for (uint64_t slot = last_learned_ + 1; slot <= max_slot; ++slot) {
    auto it = best.find(slot);
    Batch value = it != best.end() ? it->second.second : Batch{};
    proposing_[slot] = value;
    auto a = std::make_shared<PaxosAccept>();
    a->ballot = my_ballot_;
    a->slot = slot;
    a->value = std::move(value);
    Broadcast(cfg_.replicas, a);
  }
  next_slot_ = max_slot + 1;
  ProposePending();
}

void PaxosReplica::SchedulePendingPropose() {
  // Block mode: the pool has txns but no cut is due. Poll faster than the
  // liveness timer so the accept goes out as soon as the cut rules fire.
  if (propose_poll_armed_) return;
  propose_poll_armed_ = true;
  sim::Time poll = std::max<sim::Time>(500, cfg_.block.max_delay_us / 4);
  SetTimer(poll, [this] {
    propose_poll_armed_ = false;
    ProposePending();
  });
}

void PaxosReplica::ProposePending() {
  if (!leading_) return;
  while (pool_size() > 0 && proposing_.size() < kMaxInFlight) {
    Batch batch = TakeBatch();
    if (batch.empty()) {
      if (cfg_.block.enabled) SchedulePendingPropose();
      break;
    }
    uint64_t slot = next_slot_++;
    proposing_[slot] = batch;
    auto a = std::make_shared<PaxosAccept>();
    a->ballot = my_ballot_;
    a->slot = slot;
    a->value = std::move(batch);
    Broadcast(cfg_.replicas, a);
  }
}

void PaxosReplica::HandleAccept(sim::NodeId from, const PaxosAccept& m) {
  if (m.ballot < promised_) return;  // stale leader
  promised_ = m.ballot;
  if (leading_ && m.ballot > my_ballot_) leading_ = false;
  SlotState& s = acceptor_log_[m.slot];
  s.accepted_ballot = m.ballot;
  s.accepted_value = m.value;
  s.has_value = true;
  auto reply = std::make_shared<PaxosAccepted>();
  reply->ballot = m.ballot;
  reply->slot = m.slot;
  Send(from, reply);
}

void PaxosReplica::HandleAccepted(sim::NodeId from, const PaxosAccepted& m) {
  if (!leading_ || m.ballot != my_ballot_) return;
  auto pit = proposing_.find(m.slot);
  if (pit == proposing_.end()) return;  // already chosen
  auto& votes = accept_votes_[m.slot];
  votes.insert(from);
  if (votes.size() < cfg_.MajorityQuorum()) return;

  // Chosen: learn it and tell everyone.
  Batch value = std::move(pit->second);
  proposing_.erase(pit);
  accept_votes_.erase(m.slot);
  auto c = std::make_shared<PaxosCommit>();
  c->slot = m.slot;
  c->value = value;
  Broadcast(cfg_.replicas, c);
  last_learned_ = std::max(last_learned_, m.slot);
  DeliverCommitted(m.slot, std::move(value));
}

void PaxosReplica::HandleCommit(sim::NodeId from, const PaxosCommit& m) {
  (void)from;
  last_learned_ = std::max(last_learned_, m.slot);
  DeliverCommitted(m.slot, m.value);
}

}  // namespace pbc::consensus
