// Raft (Ongaro & Ousterhout, ATC'14) — the crash-fault-tolerant ordering
// protocol used by Hyperledger Fabric's ordering service and by Quorum
// (§2.3.2, §2.3.3 of the survey).
//
// Implemented: randomized-timeout leader election, log replication with
// conflict repair (nextIndex backtracking), the leader-only commit rule for
// current-term entries, and a no-op entry on election win so previous-term
// entries commit promptly. Messages are unsigned: Raft assumes crash (not
// Byzantine) failures, which is exactly the trust model the survey assigns
// it.
#ifndef PBC_CONSENSUS_RAFT_H_
#define PBC_CONSENSUS_RAFT_H_

#include <map>
#include <set>

#include "consensus/replica.h"

namespace pbc::consensus {

struct RaftEntry {
  uint64_t term = 0;
  Batch batch;
};

struct RaftRequestVote : sim::Message {
  uint64_t term = 0;
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
  const char* type() const override { return "raft-reqvote"; }
};

struct RaftVoteReply : sim::Message {
  uint64_t term = 0;
  bool granted = false;
  const char* type() const override { return "raft-votereply"; }
};

struct RaftAppendEntries : sim::Message {
  uint64_t term = 0;
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  std::vector<RaftEntry> entries;
  uint64_t leader_commit = 0;
  const char* type() const override { return "raft-append"; }
  size_t ByteSize() const override {
    size_t bytes = 96;
    for (const auto& e : entries) bytes += 32 + e.batch.WireBytes();
    return bytes;
  }
};

struct RaftAppendReply : sim::Message {
  uint64_t term = 0;
  bool success = false;
  uint64_t match_index = 0;  ///< on success, highest replicated index
  const char* type() const override { return "raft-appendreply"; }
};

/// \brief A Raft replica ordering transaction batches.
class RaftReplica : public Replica {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  RaftReplica(sim::NodeId id, sim::Network* net, ClusterConfig config,
              crypto::PrivateKey key, const crypto::KeyRegistry* registry);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg) override;

  Role role() const { return role_; }
  uint64_t term() const { return term_; }
  bool IsLeader() const { return role_ == Role::kLeader; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t log_size() const { return log_.size(); }

  /// Raft followers do not track the leader's identity (AppendEntries
  /// carries no leader id here), so only the leader itself reports
  /// leadership — an observer aggregates across replicas.
  ReplicaStatus Status() const override {
    ReplicaStatus status;
    status.commit_index = commit_index_;
    status.view = term_;
    status.is_leader = IsLeader();
    if (status.is_leader) {
      status.knows_leader = true;
      status.leader_index = cfg_.IndexOf(id());
    }
    return status;
  }

 private:
  void ResetElectionTimer();
  void OnElectionTimeout();
  void BecomeLeader();
  void StepDown(uint64_t term);
  void HeartbeatTick();
  void SendAppendTo(size_t peer_index);
  void AdvanceCommitIndex();
  void ApplyCommitted();

  void HandleRequestVote(sim::NodeId from, const RaftRequestVote& m);
  void HandleVoteReply(sim::NodeId from, const RaftVoteReply& m);
  void HandleAppendEntries(sim::NodeId from, const RaftAppendEntries& m);
  void HandleAppendReply(sim::NodeId from, const RaftAppendReply& m);

  uint64_t LastLogIndex() const { return log_.size(); }
  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }
  uint64_t TermAt(uint64_t index) const {
    return index == 0 || index > log_.size() ? 0 : log_[index - 1].term;
  }

  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  sim::NodeId voted_for_ = kNoVote;
  std::vector<RaftEntry> log_;  // log_[i] is index i+1
  uint64_t commit_index_ = 0;
  uint64_t applied_index_ = 0;

  std::set<sim::NodeId> votes_;
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;

  uint64_t election_epoch_ = 0;
  uint64_t heartbeat_epoch_ = 0;

  static constexpr sim::NodeId kNoVote = 0xffffffff;
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_RAFT_H_
