// Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI'99) — the
// baseline BFT ordering protocol of the survey (§2.2, §2.3.3).
//
// Implemented: the normal-case three-phase exchange (pre-prepare / prepare /
// commit) with pipelining inside a sequence window, periodic checkpoints
// with log garbage collection, and view changes carrying prepared
// certificates so a new primary re-proposes in-flight batches. Message
// authenticity uses per-replica keys via the registry (see crypto/auth.h).
//
// Byzantine hooks (ByzantineMode on the base class):
//   kSilent      — replica sends nothing,
//   kEquivocate  — as primary, sends conflicting pre-prepares,
//   kVoteBoth    — prepares/commits every digest it sees.
#ifndef PBC_CONSENSUS_PBFT_H_
#define PBC_CONSENSUS_PBFT_H_

#include <map>
#include <set>

#include "consensus/replica.h"

namespace pbc::consensus {

/// \brief A prepared certificate carried in view-change messages.
struct PreparedProof {
  uint64_t seq = 0;
  uint64_t view = 0;
  crypto::Hash256 digest;
  Batch batch;
};

struct PbftPrePrepare : sim::Message {
  uint64_t view = 0;
  uint64_t seq = 0;
  Batch batch;
  crypto::Hash256 digest;
  crypto::Signature sig;
  const char* type() const override { return "pbft-preprepare"; }
  size_t ByteSize() const override { return 96 + batch.WireBytes(); }
};

struct PbftPrepare : sim::Message {
  uint64_t view = 0;
  uint64_t seq = 0;
  crypto::Hash256 digest;
  crypto::Signature sig;
  const char* type() const override { return "pbft-prepare"; }
};

struct PbftCommit : sim::Message {
  uint64_t view = 0;
  uint64_t seq = 0;
  crypto::Hash256 digest;
  crypto::Signature sig;
  const char* type() const override { return "pbft-commit"; }
};

struct PbftCheckpoint : sim::Message {
  uint64_t seq = 0;
  crypto::Hash256 state_digest;
  crypto::Signature sig;
  const char* type() const override { return "pbft-checkpoint"; }
};

struct PbftViewChange : sim::Message {
  uint64_t new_view = 0;
  uint64_t last_delivered = 0;
  std::vector<PreparedProof> prepared;
  crypto::Signature sig;
  const char* type() const override { return "pbft-viewchange"; }
  size_t ByteSize() const override {
    size_t bytes = 96;
    for (const auto& p : prepared) bytes += 64 + p.batch.WireBytes();
    return bytes;
  }
};

struct PbftNewView : sim::Message {
  uint64_t new_view = 0;
  std::vector<PbftPrePrepare> preprepares;
  crypto::Signature sig;
  const char* type() const override { return "pbft-newview"; }
  size_t ByteSize() const override {
    size_t bytes = 96;
    for (const auto& pp : preprepares) bytes += 32 + pp.ByteSize();
    return bytes;
  }
};

/// \brief A PBFT replica.
class PbftReplica : public Replica {
 public:
  PbftReplica(sim::NodeId id, sim::Network* net, ClusterConfig config,
              crypto::PrivateKey key, const crypto::KeyRegistry* registry);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg) override;

  uint64_t view() const { return view_; }
  sim::NodeId PrimaryOf(uint64_t view) const {
    return cfg_.replicas[view % cfg_.n()];
  }
  bool IsPrimary() const { return PrimaryOf(view_) == id(); }
  uint64_t stable_checkpoint() const { return stable_checkpoint_; }
  uint64_t view_changes() const { return view_changes_; }

  ReplicaStatus Status() const override {
    ReplicaStatus status;
    status.commit_index = last_delivered_seq();
    status.view = view_;
    status.is_leader = IsPrimary();
    status.knows_leader = true;
    status.leader_index = static_cast<size_t>(view_ % cfg_.n());
    status.knows_next_leader = true;
    status.next_leader_index = static_cast<size_t>((view_ + 1) % cfg_.n());
    return status;
  }

 private:
  struct Slot {
    uint64_t view = 0;
    bool has_preprepare = false;
    Batch batch;
    crypto::Hash256 digest;
    bool prepared = false;
    bool committed = false;
    bool proposed_by_me = false;
  };

  // Normal case.
  void ScheduleProposeTick(sim::Time tick);
  void MaybePropose();
  void HandlePrePrepare(sim::NodeId from, const PbftPrePrepare& m);
  void HandlePrepare(sim::NodeId from, const PbftPrepare& m);
  void HandleCommit(sim::NodeId from, const PbftCommit& m);
  void TryPrepare(uint64_t seq);
  void TryCommit(uint64_t seq);
  void SendPrepare(uint64_t seq, const crypto::Hash256& digest);
  void SendCommit(uint64_t seq, const crypto::Hash256& digest);

  // Checkpoints.
  void MaybeCheckpoint(uint64_t delivered_seq);
  void HandleCheckpoint(sim::NodeId from, const PbftCheckpoint& m);

  // View change.
  void ArmProgressTimer();
  void OnProgressTimeout();
  void StartViewChange(uint64_t target_view);
  void HandleViewChange(sim::NodeId from, const PbftViewChange& m);
  void HandleNewView(sim::NodeId from, const PbftNewView& m);

  crypto::Hash256 BindDigest(const char* tag, uint64_t view, uint64_t seq,
                             const crypto::Hash256& digest) const;

  bool InWindow(uint64_t seq) const {
    return seq > stable_checkpoint_ && seq <= stable_checkpoint_ + kWindow;
  }

  static constexpr uint64_t kWindow = 256;

  uint64_t view_ = 0;
  uint64_t next_seq_ = 1;  // primary's next assignment
  std::map<uint64_t, Slot> log_;

  // Vote tallies keyed by (seq, digest) so votes arriving before the
  // pre-prepare are not lost and conflicting digests never pool together.
  std::map<uint64_t, std::map<crypto::Hash256, std::set<sim::NodeId>>>
      digest_prepares_;
  std::map<uint64_t, std::map<crypto::Hash256, std::set<sim::NodeId>>>
      digest_commits_;

  // Checkpointing.
  std::map<uint64_t, std::map<crypto::Hash256, std::set<sim::NodeId>>>
      checkpoint_votes_;
  uint64_t stable_checkpoint_ = 0;
  uint64_t last_checkpoint_sent_ = 0;

  // View change.
  bool in_view_change_ = false;
  uint64_t target_view_ = 0;
  std::map<uint64_t, std::map<sim::NodeId, PbftViewChange>> vc_msgs_;
  std::set<uint64_t> new_view_sent_;
  uint64_t view_changes_ = 0;

  // Progress tracking for the timeout.
  uint64_t delivered_at_last_tick_ = 0;
  uint64_t timer_epoch_ = 0;
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_PBFT_H_
