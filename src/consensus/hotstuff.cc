#include "consensus/hotstuff.h"

#include <algorithm>

#include "obs/obs.h"

namespace pbc::consensus {

crypto::Hash256 HsTreeNode::ComputeHash(const crypto::Hash256& parent,
                                        uint64_t view,
                                        const crypto::Hash256& batch_digest) {
  crypto::Sha256 h;
  h.Update(std::string("pbc-hs-node"));
  h.Update(parent);
  h.UpdateU64(view);
  h.Update(batch_digest);
  return h.Finalize();
}

HotStuffReplica::HotStuffReplica(sim::NodeId id, sim::Network* net,
                                 ClusterConfig config, crypto::PrivateKey key,
                                 const crypto::KeyRegistry* registry)
    : Replica(id, net, std::move(config), std::move(key), registry) {
  // Install the genesis node.
  HsTreeNode genesis;
  genesis.hash = crypto::Hash256::Zero();
  genesis.parent = crypto::Hash256::Zero();
  genesis.view = 0;
  genesis.depth = 0;
  tree_[genesis.hash] = genesis;
  last_committed_ = genesis.hash;
}

crypto::Hash256 HotStuffReplica::VoteDigest(
    uint64_t view, const crypto::Hash256& node_hash) const {
  crypto::Sha256 h;
  h.Update(std::string("pbc-hs-vote"));
  h.UpdateU64(view);
  h.Update(node_hash);
  return h.Finalize();
}

const HsTreeNode* HotStuffReplica::NodeOf(const crypto::Hash256& h) const {
  auto it = tree_.find(h);
  return it == tree_.end() ? nullptr : &it->second;
}

bool HotStuffReplica::Extends(const crypto::Hash256& descendant,
                              const crypto::Hash256& ancestor) const {
  crypto::Hash256 cur = descendant;
  for (int hops = 0; hops < 10000; ++hops) {
    if (cur == ancestor) return true;
    const HsTreeNode* n = NodeOf(cur);
    if (n == nullptr || n->depth == 0) return ancestor.IsZero();
    cur = n->parent;
  }
  return false;
}

void HotStuffReplica::OnStart() {
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  ArmViewTimer();
  // Kick the pipeline: everyone announces view 1 to its leader.
  auto nv = std::make_shared<HsNewView>();
  nv->view = view_;
  nv->high_qc = high_qc_;
  nv->sig = Sign(VoteDigest(view_, high_qc_.node_hash));
  Send(LeaderOf(view_), nv);
  // Poll for late-arriving client transactions when idle.
  SetTimer(1000, [this] { OnStartPoll(); });
}

void HotStuffReplica::OnStartPoll() {
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  MaybePropose();
  SetTimer(std::max<sim::Time>(1000, cfg_.timeout_us / 20),
           [this] { OnStartPoll(); });
}

bool HotStuffReplica::HasPendingWork() const {
  // Pending client transactions, or any proposal in the tree that has not
  // yet committed (covers a proposer whose own in-flight proposal drained
  // its pool — without this the pacemaker would never fire for it).
  return pool_size() > 0 || max_tree_depth_ > committed_depth_;
}

void HotStuffReplica::ArmViewTimer() {
  uint64_t epoch = ++timer_epoch_;
  SetTimer(cfg_.timeout_us, [this, epoch] {
    if (epoch != timer_epoch_) return;
    if (!HasPendingWork()) {
      ArmViewTimer();
      return;
    }
    ++timeouts_;
    // Only timeout-driven view advances are "view changes" in the PBFT
    // sense; happy-path pipelining through EnterView is normal progress.
    PBC_OBS_COUNT(network()->metrics(), "consensus.view_changes", 1);
    PBC_OBS_COUNT(network()->metrics(), "hotstuff.view_changes", 1);
    PBC_OBS_TRACE(network()->trace(), network()->now(),
                  obs::TraceKind::kViewChange, id(), id(), "hs-timeout",
                  view_ + 1);
    EnterView(view_ + 1, /*by_timeout=*/true);
  });
}

void HotStuffReplica::EnterView(uint64_t view, bool by_timeout) {
  if (view <= view_) return;
  view_ = view;
  ArmViewTimer();
  auto nv = std::make_shared<HsNewView>();
  nv->view = view_;
  nv->high_qc = high_qc_;
  nv->timeout = by_timeout;
  nv->sig = Sign(VoteDigest(view_, high_qc_.node_hash));
  Send(LeaderOf(view_), nv);
  MaybePropose();
}

void HotStuffReplica::MaybePropose() {
  if (LeaderOf(view_) != id()) return;
  if (proposed_views_.count(view_) > 0) return;
  // Need justification to extend: either a fresh QC for view_-1 (happy
  // path) or n-f *timeout* NewView messages for this view. Happy-path
  // NewViews must not count here: every replica sends one on each view
  // entry, so they would race the vote quorum and make the leader fork
  // the chain with a stale justify roughly every other view.
  bool have_newviews =
      timeout_new_views_[view_].size() >= cfg_.n() - cfg_.f;
  bool have_fresh_qc = high_qc_.view + 1 == view_;
  if (!have_newviews && !have_fresh_qc) return;
  if (!HasPendingWork()) return;

  const HsTreeNode* parent = NodeOf(high_qc_.node_hash);
  if (parent == nullptr) return;

  Batch batch = TakeBatch();
  proposed_views_.insert(view_);

  if (byzantine_mode() == ByzantineMode::kEquivocate) {
    Batch forked = batch;
    txn::Transaction evil;
    evil.id = 0xE0110000000000ULL + view_;
    evil.ops.push_back(txn::Op::Write("evil", "fork"));
    forked.txns.push_back(evil);
    for (size_t i = 0; i < cfg_.n(); ++i) {
      const Batch& b = (i < cfg_.n() / 2) ? batch : forked;
      auto m = std::make_shared<HsProposal>();
      m->node.parent = parent->hash;
      m->node.view = view_;
      m->node.depth = parent->depth + 1;
      m->node.batch = b;
      m->node.justify = high_qc_;
      m->node.hash =
          HsTreeNode::ComputeHash(parent->hash, view_, b.Digest());
      m->sig = Sign(VoteDigest(view_, m->node.hash));
      Send(cfg_.replicas[i], m);
    }
    return;
  }

  auto m = std::make_shared<HsProposal>();
  m->node.parent = parent->hash;
  m->node.view = view_;
  m->node.depth = parent->depth + 1;
  m->node.batch = std::move(batch);
  m->node.justify = high_qc_;
  m->node.hash =
      HsTreeNode::ComputeHash(parent->hash, view_, m->node.batch.Digest());
  m->sig = Sign(VoteDigest(view_, m->node.hash));
  Broadcast(cfg_.replicas, m);
}

void HotStuffReplica::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  if (HandleBlockMessage(from, msg)) return;
  const char* t = msg->type();
  if (t == std::string("hs-proposal")) {
    const auto& proposal = static_cast<const HsProposal&>(*msg);
    // The vote rule checks client authenticity against the block body;
    // park the proposal until the body (broadcast alongside) arrives.
    if (!EnsureBodyOrFetch(from, msg, proposal.node.batch)) return;
    HandleProposal(from, proposal);
  } else if (t == std::string("hs-vote")) {
    HandleVote(from, static_cast<const HsVote&>(*msg));
  } else if (t == std::string("hs-newview")) {
    HandleNewView(from, static_cast<const HsNewView&>(*msg));
  }
}

void HotStuffReplica::HandleProposal(sim::NodeId from, const HsProposal& m) {
  if (from != LeaderOf(m.node.view)) return;
  if (!VerifyPeer(VoteDigest(m.node.view, m.node.hash), m.sig) ||
      m.sig.signer != from) {
    return;
  }
  if (HsTreeNode::ComputeHash(m.node.parent, m.node.view,
                              m.node.batch.Digest()) != m.node.hash) {
    return;
  }
  const HsTreeNode* parent = NodeOf(m.node.parent);
  if (parent == nullptr) return;  // unknown ancestry; drop (no sync layer)
  if (m.node.depth != parent->depth + 1) return;
  if (m.node.justify.node_hash != m.node.parent) return;  // chained form

  tree_[m.node.hash] = m.node;
  max_tree_depth_ = std::max(max_tree_depth_, m.node.depth);
  ProcessQC(m.node.justify);

  // Vote rule: once per view, and only for safe extensions.
  bool safe = Extends(m.node.hash, locked_qc_.node_hash) ||
              m.node.justify.view > locked_qc_.view;
  // Client-authenticity check: never vote for fabricated transactions.
  if (byzantine_mode() == ByzantineMode::kHonest &&
      !KnownClientTxns(m.node.batch)) {
    safe = false;
  }
  if (byzantine_mode() == ByzantineMode::kVoteBoth) safe = true;
  if (m.node.view >= view_ &&
      (m.node.view > last_voted_view_ ||
       byzantine_mode() == ByzantineMode::kVoteBoth) &&
      safe) {
    last_voted_view_ = m.node.view;
    auto vote = std::make_shared<HsVote>();
    vote->view = m.node.view;
    vote->node_hash = m.node.hash;
    vote->sig = Sign(VoteDigest(m.node.view, m.node.hash));
    Send(LeaderOf(m.node.view + 1), vote);
    EnterView(m.node.view + 1);
  }
}

void HotStuffReplica::HandleVote(sim::NodeId from, const HsVote& m) {
  if (!VerifyPeer(VoteDigest(m.view, m.node_hash), m.sig) ||
      m.sig.signer != from) {
    return;
  }
  auto& voters = votes_[m.node_hash];
  voters.insert(from);
  if (voters.size() >= cfg_.n() - cfg_.f) {
    ProcessQC(QuorumCert{m.view, m.node_hash});
    MaybePropose();
  }
}

void HotStuffReplica::HandleNewView(sim::NodeId from, const HsNewView& m) {
  if (!VerifyPeer(VoteDigest(m.view, m.high_qc.node_hash), m.sig) ||
      m.sig.signer != from) {
    return;
  }
  ProcessQC(m.high_qc);
  new_views_[m.view][from] = m.high_qc;
  if (m.timeout) timeout_new_views_[m.view].insert(from);
  if (m.view > view_ &&
      new_views_[m.view].size() >= cfg_.f + 1) {
    EnterView(m.view);  // join a pacemaker round we missed
  }
  MaybePropose();
}

void HotStuffReplica::ProcessQC(const QuorumCert& qc) {
  if (qc.view > high_qc_.view) {
    high_qc_ = qc;
    TryCommitFrom(qc);
    if (qc.view + 1 > view_) EnterView(qc.view + 1);
  }
}

void HotStuffReplica::TryCommitFrom(const QuorumCert& qc) {
  // Three-chain: qc certifies b2; b1 = b2.justify node; b0 = b1.justify
  // node. Direct-parent links b2→b1→b0 commit b0 and its ancestors.
  const HsTreeNode* b2 = NodeOf(qc.node_hash);
  if (b2 == nullptr || b2->depth == 0) return;

  // Locking (two-chain): lock b1. Unlike the decide rule below, locking
  // must NOT require direct-parent links (Yin et al., Algorithm 4): a
  // replica locks whenever it sees a two-chain, even across view gaps.
  // Requiring parent links here leaves replicas under-locked after
  // timeouts, and under-locked replicas vote for sibling branches that
  // can then assemble conflicting decided three-chains.
  const HsTreeNode* b1 = NodeOf(b2->justify.node_hash);
  if (b1 != nullptr && b2->justify.view > locked_qc_.view) {
    locked_qc_ = b2->justify;
  }
  if (b1 == nullptr || b1->depth == 0) return;
  const HsTreeNode* b0 = NodeOf(b1->justify.node_hash);
  if (b0 == nullptr) return;
  // Decide rule: the justify chain b2→b1→b0 must follow direct parent
  // links (the views may have gaps — parent links are what matter).
  if (b2->parent != b1->hash || b1->parent != b0->hash) return;
  if (b0->depth == 0 || b0->depth <= committed_depth_) return;

  // Commit b0 and every uncommitted ancestor, shallowest first.
  std::vector<const HsTreeNode*> to_commit;
  const HsTreeNode* cur = b0;
  while (cur != nullptr && cur->depth > committed_depth_) {
    to_commit.push_back(cur);
    cur = NodeOf(cur->parent);
  }
  for (auto it = to_commit.rbegin(); it != to_commit.rend(); ++it) {
    DeliverCommitted((*it)->depth, (*it)->batch);
  }
  committed_depth_ = b0->depth;
  last_committed_ = b0->hash;
}

}  // namespace pbc::consensus
