#include "consensus/tendermint.h"

#include <algorithm>

#include "obs/obs.h"

namespace pbc::consensus {

TendermintReplica::TendermintReplica(sim::NodeId id, sim::Network* net,
                                     ClusterConfig config,
                                     crypto::PrivateKey key,
                                     const crypto::KeyRegistry* registry)
    : Replica(id, net, std::move(config), std::move(key), registry) {}

crypto::Hash256 TendermintReplica::BindDigest(
    const char* tag, uint64_t height, uint64_t round,
    const crypto::Hash256& digest) const {
  crypto::Sha256 h;
  h.Update(std::string(tag));
  h.UpdateU64(height);
  h.UpdateU64(round);
  h.Update(digest);
  return h.Finalize();
}

size_t TendermintReplica::ProposerIndexFor(uint64_t height,
                                           uint64_t round) const {
  // Stake-proportional rotation: walk a virtual list where validator i
  // appears PowerOf(i) times, indexed by (height + round). Deterministic
  // and identical on every validator; a simplification of Tendermint's
  // proposer-priority accumulator that preserves proportionality.
  uint64_t total = cfg_.TotalPower();
  uint64_t slot = (height + round) % total;
  uint64_t acc = 0;
  for (size_t i = 0; i < cfg_.n(); ++i) {
    acc += cfg_.PowerOf(i);
    if (slot < acc) return i;
  }
  return 0;
}

uint64_t TendermintReplica::PowerOfNode(sim::NodeId node) const {
  size_t idx = cfg_.IndexOf(node);
  return idx < cfg_.n() ? cfg_.PowerOf(idx) : 0;
}

uint64_t TendermintReplica::TallyPower(
    const std::map<crypto::Hash256, std::set<sim::NodeId>>& tally,
    const crypto::Hash256& digest) const {
  auto it = tally.find(digest);
  if (it == tally.end()) return 0;
  uint64_t power = 0;
  for (sim::NodeId v : it->second) power += PowerOfNode(v);
  return power;
}

uint64_t TendermintReplica::TotalTallyPower(
    const std::map<crypto::Hash256, std::set<sim::NodeId>>& tally) const {
  // A validator may appear under several digests only if Byzantine; count
  // each voter once.
  std::set<sim::NodeId> voters;
  for (const auto& [digest, who] : tally) {
    voters.insert(who.begin(), who.end());
  }
  uint64_t power = 0;
  for (sim::NodeId v : voters) power += PowerOfNode(v);
  return power;
}

void TendermintReplica::OnStart() {
  // Validators stay idle until there is work (see Activate()).
}

void TendermintReplica::SubmitTransaction(txn::Transaction txn) {
  Replica::SubmitTransaction(txn);
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  if (!active_ && pool_size() > 0) Activate();
}

void TendermintReplica::Activate() {
  if (active_) return;
  active_ = true;
  StartRound(round_);
}

void TendermintReplica::StartRound(uint64_t round) {
  round_ = round;
  step_ = Step::kPropose;
  if (round > 0) {
    // Rounds past the first are Tendermint's view-change equivalent.
    PBC_OBS_COUNT(network()->metrics(), "consensus.view_changes", 1);
    PBC_OBS_COUNT(network()->metrics(), "tendermint.extra_rounds", 1);
    PBC_OBS_TRACE(network()->trace(), network()->now(),
                  obs::TraceKind::kViewChange, id(), id(), "tm-round", round);
  }
  size_t proposer = ProposerIndexFor(height_, round_);
  if (cfg_.replicas[proposer] == id() &&
      byzantine_mode() != ByzantineMode::kSilent) {
    if (locked_value_.has_value()) {
      BroadcastProposal(*locked_value_);
    } else if (pool_size() > 0) {
      Batch batch = TakeBatch();
      if (!batch.empty()) {
        BroadcastProposal(batch);
      } else {
        // Block mode: no cut is due yet. Poll again within the round so
        // the proposal goes out as soon as the cut rules fire.
        SchedulePendingProposal();
      }
    }
    // An idle proposer with nothing to propose stays silent; peers remain
    // idle too (they only activate on work or traffic), so no churn.
  }
  ArmStepTimeout(Step::kPropose);
}

void TendermintReplica::SchedulePendingProposal() {
  uint64_t h = height_;
  uint64_t r = round_;
  sim::Time poll = std::max<sim::Time>(500, cfg_.block.max_delay_us / 4);
  SetTimer(poll, [this, h, r] {
    if (byzantine_mode() == ByzantineMode::kSilent) return;
    if (h != height_ || r != round_ || step_ != Step::kPropose) return;
    if (cfg_.replicas[ProposerIndexFor(height_, round_)] != id()) return;
    if (locked_value_.has_value() || pool_size() == 0) return;
    Batch batch = TakeBatch();
    if (!batch.empty()) {
      BroadcastProposal(batch);
    } else {
      SchedulePendingProposal();
    }
  });
}

void TendermintReplica::BroadcastProposal(const Batch& batch) {
  if (byzantine_mode() == ByzantineMode::kEquivocate) {
    Batch forked = batch;
    txn::Transaction evil;
    evil.id = 0xE011000000000000ULL + height_ * 1000 + round_;
    evil.ops.push_back(txn::Op::Write("evil", "fork"));
    forked.txns.push_back(evil);
    for (size_t i = 0; i < cfg_.n(); ++i) {
      const Batch& b = (i < cfg_.n() / 2) ? batch : forked;
      auto m = std::make_shared<TmProposal>();
      m->height = height_;
      m->round = round_;
      m->batch = b;
      m->digest = b.Digest();
      m->sig = Sign(BindDigest("tm-prop", height_, round_, m->digest));
      Send(cfg_.replicas[i], m);
    }
    return;
  }
  auto m = std::make_shared<TmProposal>();
  m->height = height_;
  m->round = round_;
  m->batch = batch;
  m->digest = batch.Digest();
  m->sig = Sign(BindDigest("tm-prop", height_, round_, m->digest));
  Broadcast(cfg_.replicas, m);
}

void TendermintReplica::ArmStepTimeout(Step step) {
  uint64_t epoch = ++timer_epoch_;
  uint64_t h = height_;
  uint64_t r = round_;
  // Timeouts grow with round number so lagging validators resynchronize.
  sim::Time t = cfg_.timeout_us * (1 + r);
  SetTimer(t, [this, epoch, h, r, step] {
    if (epoch != timer_epoch_ || h != height_ || r != round_) return;
    if (byzantine_mode() == ByzantineMode::kSilent) return;
    switch (step) {
      case Step::kPropose:
        if (step_ == Step::kPropose) {
          step_ = Step::kPrevote;
          CastVote(/*precommit=*/false, Nil());
          ArmStepTimeout(Step::kPrevote);
        }
        break;
      case Step::kPrevote:
        if (step_ == Step::kPrevote) {
          step_ = Step::kPrecommit;
          CastVote(/*precommit=*/true, Nil());
          ArmStepTimeout(Step::kPrecommit);
        }
        break;
      case Step::kPrecommit:
        StartRound(r + 1);
        break;
    }
  });
}

void TendermintReplica::CastVote(bool precommit,
                                 const crypto::Hash256& digest) {
  auto v = std::make_shared<TmVote>();
  v->precommit = precommit;
  v->height = height_;
  v->round = round_;
  v->digest = digest;
  v->sig = Sign(BindDigest(precommit ? "tm-pc" : "tm-pv", height_, round_,
                           digest));
  Broadcast(cfg_.replicas, v);
}

void TendermintReplica::OnMessage(sim::NodeId from,
                                  const sim::MessagePtr& msg) {
  if (byzantine_mode() == ByzantineMode::kSilent) return;
  if (HandleBlockMessage(from, msg)) return;
  const char* t = msg->type();
  if (t == std::string("tm-proposal")) {
    const auto& proposal = static_cast<const TmProposal&>(*msg);
    // Prevoting checks client authenticity against the block body; park
    // the proposal until the body (broadcast alongside it) arrives.
    if (!EnsureBodyOrFetch(from, msg, proposal.batch)) return;
    HandleProposal(from, proposal);
  } else if (t == std::string("tm-prevote") ||
             t == std::string("tm-precommit")) {
    HandleVote(from, static_cast<const TmVote&>(*msg));
  } else if (t == std::string("tm-decision")) {
    HandleDecision(from, static_cast<const TmDecision&>(*msg));
  }
}

void TendermintReplica::MaybeHelpLaggard(sim::NodeId from,
                                         uint64_t their_height) {
  if (their_height >= height_) return;
  auto it = decisions_.find(their_height);
  if (it == decisions_.end()) return;
  Send(from, std::make_shared<TmDecision>(it->second));
}

void TendermintReplica::HandleDecision(sim::NodeId from,
                                       const TmDecision& m) {
  (void)from;
  if (m.height != height_) return;
  if (m.batch.Digest() != m.digest) return;
  // Verify the certificate: distinct signers whose precommit signatures
  // check out must hold a supermajority of voting power.
  std::set<sim::NodeId> signers;
  for (const auto& sig : m.precommit_sigs) {
    if (VerifyPeer(BindDigest("tm-pc", m.height, m.round, m.digest), sig)) {
      signers.insert(sig.signer);
    }
  }
  uint64_t power = 0;
  for (sim::NodeId s : signers) power += PowerOfNode(s);
  if (!SuperMajority(power)) return;
  proposals_[m.round][m.digest] = m.batch;
  CommitValue(m.round, m.digest);
}

void TendermintReplica::HandleProposal(sim::NodeId from,
                                       const TmProposal& m) {
  if (m.height != height_) {
    MaybeHelpLaggard(from, m.height);
    return;
  }
  if (!VerifyPeer(BindDigest("tm-prop", m.height, m.round, m.digest),
                  m.sig) ||
      m.sig.signer != from) {
    return;
  }
  if (cfg_.replicas[ProposerIndexFor(m.height, m.round)] != from) return;
  if (m.batch.Digest() != m.digest) return;

  Activate();
  if (m.round > round_) {
    // The network moved on; join the newer round.
    StartRound(m.round);
  }
  auto& known = proposals_[m.round];
  if (known.count(m.digest) == 0) known[m.digest] = m.batch;

  if (m.round == round_ && step_ == Step::kPropose) {
    bool acceptable = locked_round_ < 0 ||
                      (locked_value_ && locked_value_->Digest() == m.digest);
    // Client-authenticity check: prevote nil on fabricated transactions.
    if (byzantine_mode() == ByzantineMode::kHonest &&
        !KnownClientTxns(m.batch)) {
      acceptable = false;
    }
    if (byzantine_mode() == ByzantineMode::kVoteBoth) acceptable = true;
    step_ = Step::kPrevote;
    CastVote(/*precommit=*/false,
             acceptable ? m.digest
                        : (locked_value_ ? locked_value_->Digest() : Nil()));
    ArmStepTimeout(Step::kPrevote);
    CheckPrevotes(round_);
  }
}

void TendermintReplica::HandleVote(sim::NodeId from, const TmVote& m) {
  if (m.height != height_) {
    MaybeHelpLaggard(from, m.height);
    return;
  }
  if (!VerifyPeer(BindDigest(m.precommit ? "tm-pc" : "tm-pv", m.height,
                             m.round, m.digest),
                  m.sig) ||
      m.sig.signer != from) {
    return;
  }
  Activate();
  if (m.precommit) {
    precommits_[m.round][m.digest].insert(from);
    precommit_sigs_[m.round][m.digest][from] = m.sig;
    CheckPrecommits(m.round);
  } else {
    prevotes_[m.round][m.digest].insert(from);
    CheckPrevotes(m.round);
  }
}

void TendermintReplica::CheckPrevotes(uint64_t round) {
  if (round != round_) {
    // Round-skip: a supermajority already prevoting in a later round means
    // we are behind.
    if (round > round_ && SuperMajority(TotalTallyPower(prevotes_[round]))) {
      StartRound(round);
    }
    if (round != round_) return;
  }
  // +2/3 for one concrete value → lock and precommit it.
  for (const auto& [digest, who] : prevotes_[round]) {
    if (digest == Nil()) continue;
    if (!SuperMajority(TallyPower(prevotes_[round], digest))) continue;
    if (proposals_[round].count(digest) == 0) continue;  // need the value
    if (step_ == Step::kPrevote || step_ == Step::kPropose) {
      locked_value_ = proposals_[round][digest];
      locked_round_ = static_cast<int64_t>(round);
      step_ = Step::kPrecommit;
      CastVote(/*precommit=*/true, digest);
      ArmStepTimeout(Step::kPrecommit);
    }
    return;
  }
  // +2/3 nil → precommit nil.
  if (step_ == Step::kPrevote &&
      SuperMajority(TallyPower(prevotes_[round], Nil()))) {
    step_ = Step::kPrecommit;
    CastVote(/*precommit=*/true, Nil());
    ArmStepTimeout(Step::kPrecommit);
  }
}

void TendermintReplica::CheckPrecommits(uint64_t round) {
  for (const auto& [digest, who] : precommits_[round]) {
    if (digest == Nil()) continue;
    if (SuperMajority(TallyPower(precommits_[round], digest)) &&
        proposals_[round].count(digest) > 0) {
      CommitValue(round, digest);
      return;
    }
  }
  // +2/3 precommits present but no value decided → next round (after the
  // precommit timeout; handled by the armed timer).
  if (round == round_ && step_ == Step::kPrecommit &&
      SuperMajority(TallyPower(precommits_[round], Nil()))) {
    StartRound(round_ + 1);
  }
}

void TendermintReplica::CommitValue(uint64_t round,
                                    const crypto::Hash256& digest) {
  Batch decided = proposals_[round][digest];
  // Record the decision certificate for catch-up before clearing state.
  TmDecision decision;
  decision.height = height_;
  decision.round = round;
  decision.digest = digest;
  decision.batch = decided;
  for (const auto& [signer, sig] : precommit_sigs_[round][digest]) {
    decision.precommit_sigs.push_back(sig);
  }
  decisions_[height_] = std::move(decision);
  DeliverCommitted(height_, std::move(decided));
  ++height_;
  round_ = 0;
  step_ = Step::kPropose;
  locked_value_.reset();
  locked_round_ = -1;
  proposals_.clear();
  prevotes_.clear();
  precommits_.clear();
  precommit_sigs_.clear();
  ++timer_epoch_;  // cancel stale timers
  active_ = false;
  if (pool_size() > 0) {
    Activate();
  }
}

}  // namespace pbc::consensus
