#include "consensus/types.h"

namespace pbc::consensus {

crypto::Hash256 Batch::Digest() const {
  if (block_ref) return block_hash;
  crypto::Sha256 h;
  h.Update(std::string("pbc-batch"));
  h.UpdateU64(txns.size());
  for (const auto& t : txns) h.Update(t.Digest());
  return h.Finalize();
}

size_t ClusterConfig::IndexOf(sim::NodeId id) const {
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i] == id) return i;
  }
  return replicas.size();
}

uint64_t ClusterConfig::TotalPower() const {
  if (voting_power.empty()) return replicas.size();
  uint64_t total = 0;
  for (uint64_t p : voting_power) total += p;
  return total;
}

uint64_t ClusterConfig::PowerOf(size_t replica_index) const {
  if (voting_power.empty()) return 1;
  return replica_index < voting_power.size() ? voting_power[replica_index] : 0;
}

}  // namespace pbc::consensus
