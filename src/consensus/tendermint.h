// Tendermint (Kwon 2014; Buchman et al.) — the PBFT-derived protocol the
// survey singles out (§2.3.3) for three differences from PBFT: a validator
// subset with bonded stake, per-round leader (proposer) rotation, and
// Proof-of-Stake voting where quorums are fractions of total *voting power*
// rather than of validator count.
//
// Implemented: the round-based state machine (propose → prevote →
// precommit) with value locking, nil votes on timeout, stake-weighted
// quorums (strictly > 2/3 of total power), and deterministic
// power-proportional proposer rotation. One height at a time, as in the
// real system.
#ifndef PBC_CONSENSUS_TENDERMINT_H_
#define PBC_CONSENSUS_TENDERMINT_H_

#include <map>
#include <optional>
#include <set>

#include "consensus/replica.h"

namespace pbc::consensus {

struct TmProposal : sim::Message {
  uint64_t height = 0;
  uint64_t round = 0;
  Batch batch;
  crypto::Hash256 digest;
  crypto::Signature sig;
  const char* type() const override { return "tm-proposal"; }
  size_t ByteSize() const override { return 96 + batch.WireBytes(); }
};

/// Prevote / precommit share a shape; `digest == Zero` encodes nil.
struct TmVote : sim::Message {
  bool precommit = false;
  uint64_t height = 0;
  uint64_t round = 0;
  crypto::Hash256 digest;
  crypto::Signature sig;
  const char* type() const override {
    return precommit ? "tm-precommit" : "tm-prevote";
  }
};

/// \brief Decision certificate for height catch-up: the committed batch
/// plus the +2/3-power precommit signatures proving it. A validator that
/// receives traffic from a peer at an earlier height replies with the
/// decision for that height (Tendermint's block-sync, reduced to its
/// essence). The receiver verifies every signature before committing.
struct TmDecision : sim::Message {
  uint64_t height = 0;
  uint64_t round = 0;
  crypto::Hash256 digest;
  Batch batch;
  std::vector<crypto::Signature> precommit_sigs;
  const char* type() const override { return "tm-decision"; }
  size_t ByteSize() const override {
    return 96 + batch.WireBytes() + precommit_sigs.size() * 40;
  }
};

/// \brief A Tendermint validator.
class TendermintReplica : public Replica {
 public:
  TendermintReplica(sim::NodeId id, sim::Network* net, ClusterConfig config,
                    crypto::PrivateKey key,
                    const crypto::KeyRegistry* registry);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::MessagePtr& msg) override;
  void SubmitTransaction(txn::Transaction txn) override;

  uint64_t height() const { return height_; }
  uint64_t round() const { return round_; }

  /// Deterministic stake-proportional rotation shared by all validators.
  size_t ProposerIndexFor(uint64_t height, uint64_t round) const;

  ReplicaStatus Status() const override {
    ReplicaStatus status;
    status.commit_index = last_delivered_seq();
    status.view = round_;
    status.knows_leader = true;
    status.leader_index = ProposerIndexFor(height_, round_);
    status.is_leader = cfg_.replicas[status.leader_index] == id();
    status.knows_next_leader = true;
    status.next_leader_index = ProposerIndexFor(height_, round_ + 1);
    return status;
  }

 private:
  enum class Step { kPropose, kPrevote, kPrecommit };

  void Activate();
  void StartRound(uint64_t round);
  /// Block mode: the proposer's pool has txns but no cut is due yet;
  /// re-poll TakeBatch within the round until the cut rules fire.
  void SchedulePendingProposal();
  void BroadcastProposal(const Batch& batch);
  void CastVote(bool precommit, const crypto::Hash256& digest);
  void HandleProposal(sim::NodeId from, const TmProposal& m);
  void HandleVote(sim::NodeId from, const TmVote& m);
  void HandleDecision(sim::NodeId from, const TmDecision& m);
  /// Replies with the stored decision when `from` is at an earlier height.
  void MaybeHelpLaggard(sim::NodeId from, uint64_t their_height);
  void CheckPrevotes(uint64_t round);
  void CheckPrecommits(uint64_t round);
  void CommitValue(uint64_t round, const crypto::Hash256& digest);
  void ArmStepTimeout(Step step);

  uint64_t PowerOfNode(sim::NodeId node) const;
  /// Sum of voting power behind `digest` in the given tally.
  uint64_t TallyPower(
      const std::map<crypto::Hash256, std::set<sim::NodeId>>& tally,
      const crypto::Hash256& digest) const;
  uint64_t TotalTallyPower(
      const std::map<crypto::Hash256, std::set<sim::NodeId>>& tally) const;
  bool SuperMajority(uint64_t power) const {
    return power * 3 > cfg_.TotalPower() * 2;
  }

  crypto::Hash256 BindDigest(const char* tag, uint64_t height, uint64_t round,
                             const crypto::Hash256& digest) const;

  uint64_t height_ = 1;
  uint64_t round_ = 0;
  Step step_ = Step::kPropose;
  bool active_ = false;

  std::optional<Batch> locked_value_;
  int64_t locked_round_ = -1;

  // Per-round state for the current height (cleared on commit).
  std::map<uint64_t, std::map<crypto::Hash256, Batch>> proposals_;
  std::map<uint64_t, std::map<crypto::Hash256, std::set<sim::NodeId>>>
      prevotes_;
  std::map<uint64_t, std::map<crypto::Hash256, std::set<sim::NodeId>>>
      precommits_;
  /// Precommit signatures retained to assemble decision certificates.
  std::map<uint64_t,
           std::map<crypto::Hash256,
                    std::map<sim::NodeId, crypto::Signature>>>
      precommit_sigs_;
  /// Committed heights (certificate store for catch-up).
  std::map<uint64_t, TmDecision> decisions_;

  uint64_t timer_epoch_ = 0;
  /// Nil marker.
  static crypto::Hash256 Nil() { return crypto::Hash256::Zero(); }
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_TENDERMINT_H_
