// Shared vocabulary for the consensus protocols (§2.2 of the survey):
// batches, cluster configuration, and quorum arithmetic.
#ifndef PBC_CONSENSUS_TYPES_H_
#define PBC_CONSENSUS_TYPES_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "sim/network.h"
#include "txn/transaction.h"

namespace pbc::consensus {

/// \brief The unit replicas agree on: an ordered batch of transactions.
///
/// Consensus orders batches; the hash-chained `ledger::Block` is constructed
/// deterministically at commit time from the agreed batch sequence, so
/// protocols can pipeline agreement without knowing the previous block hash.
///
/// Two wire forms coexist (DESIGN.md §11):
///  * inline — `txns` carries the payload (the original per-txn path);
///  * block-ref — `block_ref` is set, `txns` stays empty, and the batch
///    names a sealed block by `block_hash`. The body is disseminated
///    beside the protocol and fetched into each replica's block store;
///    consensus itself only moves the 32-byte hash.
struct Batch {
  std::vector<txn::Transaction> txns;

  bool block_ref = false;
  crypto::Hash256 block_hash;   ///< header hash of the referenced block
  uint32_t ref_txn_count = 0;   ///< txns in the referenced block's body

  /// Content digest. For a block-ref batch this IS the block hash — the
  /// compact value the protocol orders.
  crypto::Hash256 Digest() const;

  bool empty() const { return block_ref ? ref_txn_count == 0 : txns.empty(); }
  size_t size() const { return block_ref ? ref_txn_count : txns.size(); }

  /// Bytes this batch contributes to a carrying message: a block-ref is a
  /// hash + count, an inline batch pays per transaction.
  size_t WireBytes() const { return block_ref ? 40 : txns.size() * 64; }
};

/// \brief Block-pipeline batching policy (off by default: inline batches).
struct BlockCutConfig {
  bool enabled = false;
  /// Size cut: seal a block once this many txns are pending.
  size_t max_txns = 100;
  /// Timer cut: seal a partial block once the oldest pending txn has
  /// waited this long (µs, simulated). 0 disables the timer cut.
  sim::Time max_delay_us = 5000;
};

/// \brief Static description of one consensus cluster.
struct ClusterConfig {
  /// Replica node ids, in canonical order (defines primary rotation).
  std::vector<sim::NodeId> replicas;

  /// Max faulty replicas tolerated. BFT protocols need n >= 3f+1
  /// (2f+1 with attested logs); CFT protocols need n >= 2f+1.
  uint32_t f = 1;

  /// Max transactions per proposed batch (inline mode).
  size_t batch_size = 100;

  /// Block pipeline: when enabled, proposers seal pool txns into
  /// hash-chained blocks under these cut rules and consensus orders the
  /// block hashes instead of inline payloads.
  BlockCutConfig block;

  /// Leader/progress timeout before a view/round/term change (µs).
  sim::Time timeout_us = 60000;

  /// PBFT checkpoint interval (sequence numbers).
  uint64_t checkpoint_interval = 64;

  /// Voting power per replica (Tendermint). Empty = equal weights.
  std::vector<uint64_t> voting_power;

  /// TEST-ONLY fault injection: shrinks every quorum by this many votes.
  /// Production configs must leave it 0 — a slack of 1 re-creates the
  /// classic off-by-one quorum bug (accepting 2f votes where 2f+1 are
  /// required), which the src/check invariant sweeps must detect.
  uint32_t quorum_slack_for_test = 0;

  size_t n() const { return replicas.size(); }
  /// Smallest BFT quorum: 2f+1 (minus the test-only slack, floored at 1).
  size_t BftQuorum() const {
    size_t q = 2 * static_cast<size_t>(f) + 1;
    return q > quorum_slack_for_test ? q - quorum_slack_for_test : 1;
  }
  /// Majority quorum for CFT protocols (minus the test-only slack).
  size_t MajorityQuorum() const {
    size_t q = replicas.size() / 2 + 1;
    return q > quorum_slack_for_test ? q - quorum_slack_for_test : 1;
  }
  /// Index of a node in `replicas`, or n() if absent.
  size_t IndexOf(sim::NodeId id) const;
  uint64_t TotalPower() const;
  uint64_t PowerOf(size_t replica_index) const;
};

/// \brief Byzantine behavior injected into a replica (tests + E12).
enum class ByzantineMode {
  kHonest,
  kSilent,      ///< participates in nothing (crash-like but undetectable)
  kEquivocate,  ///< as leader, proposes different batches to different peers
  kVoteBoth,    ///< votes for every proposal it sees, even conflicting ones
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_TYPES_H_
