// Shared vocabulary for the consensus protocols (§2.2 of the survey):
// batches, cluster configuration, and quorum arithmetic.
#ifndef PBC_CONSENSUS_TYPES_H_
#define PBC_CONSENSUS_TYPES_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "sim/network.h"
#include "txn/transaction.h"

namespace pbc::consensus {

/// \brief The unit replicas agree on: an ordered batch of transactions.
///
/// Consensus orders batches; the hash-chained `ledger::Block` is constructed
/// deterministically at commit time from the agreed batch sequence, so
/// protocols can pipeline agreement without knowing the previous block hash.
struct Batch {
  std::vector<txn::Transaction> txns;

  /// Content digest (Merkle-free flat hash; order-sensitive).
  crypto::Hash256 Digest() const;

  bool empty() const { return txns.empty(); }
  size_t size() const { return txns.size(); }
};

/// \brief Static description of one consensus cluster.
struct ClusterConfig {
  /// Replica node ids, in canonical order (defines primary rotation).
  std::vector<sim::NodeId> replicas;

  /// Max faulty replicas tolerated. BFT protocols need n >= 3f+1
  /// (2f+1 with attested logs); CFT protocols need n >= 2f+1.
  uint32_t f = 1;

  /// Max transactions per proposed batch.
  size_t batch_size = 100;

  /// Leader/progress timeout before a view/round/term change (µs).
  sim::Time timeout_us = 60000;

  /// PBFT checkpoint interval (sequence numbers).
  uint64_t checkpoint_interval = 64;

  /// Voting power per replica (Tendermint). Empty = equal weights.
  std::vector<uint64_t> voting_power;

  /// TEST-ONLY fault injection: shrinks every quorum by this many votes.
  /// Production configs must leave it 0 — a slack of 1 re-creates the
  /// classic off-by-one quorum bug (accepting 2f votes where 2f+1 are
  /// required), which the src/check invariant sweeps must detect.
  uint32_t quorum_slack_for_test = 0;

  size_t n() const { return replicas.size(); }
  /// Smallest BFT quorum: 2f+1 (minus the test-only slack, floored at 1).
  size_t BftQuorum() const {
    size_t q = 2 * static_cast<size_t>(f) + 1;
    return q > quorum_slack_for_test ? q - quorum_slack_for_test : 1;
  }
  /// Majority quorum for CFT protocols (minus the test-only slack).
  size_t MajorityQuorum() const {
    size_t q = replicas.size() / 2 + 1;
    return q > quorum_slack_for_test ? q - quorum_slack_for_test : 1;
  }
  /// Index of a node in `replicas`, or n() if absent.
  size_t IndexOf(sim::NodeId id) const;
  uint64_t TotalPower() const;
  uint64_t PowerOf(size_t replica_index) const;
};

/// \brief Byzantine behavior injected into a replica (tests + E12).
enum class ByzantineMode {
  kHonest,
  kSilent,      ///< participates in nothing (crash-like but undetectable)
  kEquivocate,  ///< as leader, proposes different batches to different peers
  kVoteBoth,    ///< votes for every proposal it sees, even conflicting ones
};

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_TYPES_H_
