#include "consensus/replica.h"

#include <algorithm>

#include "block/builder.h"
#include "obs/obs.h"

namespace pbc::consensus {

Replica::Replica(sim::NodeId id, sim::Network* net, ClusterConfig config,
                 crypto::PrivateKey key, const crypto::KeyRegistry* registry)
    : sim::Node(id, net),
      cfg_(std::move(config)),
      key_(std::move(key)),
      registry_(registry) {}

void Replica::SubmitTransaction(txn::Transaction txn) {
  seen_ids_.insert(txn.id);
  if (pool_ids_.count(txn.id) > 0 || committed_ids_.count(txn.id) > 0) return;
#if PBC_OBS_ENABLED
  // Commit-latency bookkeeping, only for metric-attached runs (the map
  // stays empty otherwise and never influences protocol behavior).
  if (network()->metrics() != nullptr) {
    submit_time_us_.emplace(txn.id, network()->now());
  }
#endif
  if (cfg_.block.enabled) arrival_us_.emplace(txn.id, network()->now());
  pool_ids_.insert(txn.id);
  pool_.push_back(std::move(txn));
}

void Replica::ErasePoolTxn(txn::TxnId id) {
  if (pool_ids_.erase(id) == 0) return;
  arrival_us_.erase(id);
  for (auto pit = pool_.begin(); pit != pool_.end(); ++pit) {
    if (pit->id == id) {
      pool_.erase(pit);
      break;
    }
  }
}

Batch Replica::TakeBatch() {
  // Block mode (honest proposers only): seal a block when a cut is due.
  // Byzantine proposers fall through to inline batches, keeping the
  // equivocation forks (which append a fabricated txn) well-formed.
  if (cfg_.block.enabled && byzantine_ == ByzantineMode::kHonest) {
    block::CutRules rules{cfg_.block.max_txns, cfg_.block.max_delay_us};
    sim::Time oldest = 0;
    if (!pool_.empty()) {
      auto it = arrival_us_.find(pool_.front().id);
      oldest = it == arrival_us_.end() ? 0 : it->second;
    }
    if (!rules.CutDue(pool_.size(), oldest, network()->now())) return {};

    std::vector<txn::Transaction> txns;
    size_t take = std::min(pool_.size(), rules.max_txns);
    txns.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      arrival_us_.erase(pool_.front().id);
      pool_ids_.erase(pool_.front().id);
      txns.push_back(std::move(pool_.front()));
      pool_.pop_front();
    }
    ledger::Block body = block::BlockBuilder::Seal(
        sealed_blocks_++, crypto::Hash256::Zero(), std::move(txns),
        network()->now());

    Batch ref;
    ref.block_ref = true;
    ref.block_hash = body.header.Hash();
    ref.ref_txn_count = static_cast<uint32_t>(body.txns.size());

    auto msg = std::make_shared<BlockBodyMsg>();
    msg->body = body;
    for (sim::NodeId peer : cfg_.replicas) {
      if (peer != id()) Send(peer, msg);
    }
    blocks_.Put(std::move(body));
    return ref;
  }

  Batch batch;
  while (!pool_.empty() && batch.txns.size() < cfg_.batch_size) {
    arrival_us_.erase(pool_.front().id);
    batch.txns.push_back(std::move(pool_.front()));
    pool_.pop_front();
    pool_ids_.erase(batch.txns.back().id);
  }
  return batch;
}

void Replica::ReturnToPool(const Batch& batch) {
  // Re-submit preserving dedup rules.
  if (batch.block_ref) {
    const ledger::Block* body = blocks_.Get(batch.block_hash);
    if (body == nullptr) return;  // body lost; peers re-fetch on commit
    for (const auto& t : body->txns) SubmitTransaction(t);
    return;
  }
  for (const auto& t : batch.txns) SubmitTransaction(t);
}

bool Replica::KnownClientTxns(const Batch& batch) const {
  if (batch.block_ref) {
    const ledger::Block* body = blocks_.Get(batch.block_hash);
    if (body == nullptr) return false;  // fail closed without the body
    for (const auto& t : body->txns) {
      if (seen_ids_.count(t.id) == 0) return false;
    }
    return true;
  }
  for (const auto& t : batch.txns) {
    if (seen_ids_.count(t.id) == 0) return false;
  }
  return true;
}

bool Replica::HandleBlockMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (const auto* body = dynamic_cast<const BlockBodyMsg*>(msg.get())) {
    OnBlockBody(body->body);
    return true;
  }
  if (const auto* fetch = dynamic_cast<const BlockFetchMsg*>(msg.get())) {
    const ledger::Block* stored = blocks_.Get(fetch->hash);
    if (stored != nullptr) {
      auto reply = std::make_shared<BlockBodyMsg>();
      reply->body = *stored;
      Send(from, reply);
    }
    return true;
  }
  return false;
}

void Replica::OnBlockBody(const ledger::Block& body) {
  crypto::Hash256 hash = body.header.Hash();
  if (!blocks_.Put(body)) return;  // root mismatch: fabricated body
  fetch_sent_us_.erase(hash);

  // Re-dispatch protocol messages that were waiting for this body. They
  // go back through OnMessage, so every handler guard re-runs.
  auto it = parked_.find(hash);
  if (it != parked_.end()) {
    auto waiting = std::move(it->second);
    parked_.erase(it);
    for (auto& [sender, m] : waiting) OnMessage(sender, m);
  }
  DrainDeliveries();
}

bool Replica::EnsureBodyOrFetch(sim::NodeId from, const sim::MessagePtr& msg,
                                const Batch& batch) {
  if (!batch.block_ref || batch.empty()) return true;
  if (blocks_.Contains(batch.block_hash)) return true;
  parked_[batch.block_hash].push_back({from, msg});
  RequestBody(batch.block_hash);
  return false;
}

void Replica::RequestBody(const crypto::Hash256& hash) {
  if (blocks_.Contains(hash)) return;
  sim::Time retry = std::max<sim::Time>(1000, cfg_.timeout_us / 2);
  sim::Time now = network()->now();
  auto it = fetch_sent_us_.find(hash);
  if (it != fetch_sent_us_.end() && now - it->second < retry) return;
  fetch_sent_us_[hash] = now;

  auto fetch = std::make_shared<BlockFetchMsg>();
  fetch->hash = hash;
  for (sim::NodeId peer : cfg_.replicas) {
    if (peer != id()) Send(peer, fetch);
  }
  // Deterministic retry: keeps the fetch alive across drops/partitions.
  // Any replica that voted for the hash necessarily holds the body, so
  // one surviving quorum member suffices to answer eventually.
  SetTimer(retry, [this, hash] { RequestBody(hash); });
}

void Replica::DeliverCommitted(uint64_t seq, Batch batch) {
  if (seq < next_deliver_ || out_of_order_.count(seq) > 0) return;
  out_of_order_[seq] = std::move(batch);
  DrainDeliveries();
}

void Replica::DrainDeliveries() {
  while (true) {
    auto it = out_of_order_.find(next_deliver_);
    if (it == out_of_order_.end()) break;
    Batch& b = it->second;
    if (b.block_ref && !b.empty()) {
      const ledger::Block* body = blocks_.Get(b.block_hash);
      if (body == nullptr) {
        // Ordered but not yet received: stall this and all later
        // sequences (delivery is in-order) until the fetch completes.
        RequestBody(b.block_hash);
        break;
      }
      b.txns = body->txns;
      b.block_ref = false;
    }
    // Drop transactions that already committed at an earlier sequence:
    // with rotating proposers several leaders may batch the same client
    // transaction (clients submit to all replicas). Every replica filters
    // deterministically against the same committed-id set, so chains stay
    // identical. This mirrors Fabric's txid-based replay check.
    std::vector<txn::Transaction> fresh;
    fresh.reserve(b.txns.size());
    for (auto& t : b.txns) {
      if (committed_ids_.count(t.id) == 0) fresh.push_back(std::move(t));
    }
    b.txns = std::move(fresh);
    for (const auto& t : b.txns) {
      committed_ids_.insert(t.id);
      // A committed txn may still sit in the pool if it was submitted to
      // several replicas; purge lazily.
      ErasePoolTxn(t.id);
    }
    committed_txns_ += b.txns.size();
#if PBC_OBS_ENABLED
    if (network()->metrics() != nullptr) {
      PBC_OBS_COUNT(network()->metrics(), "consensus.committed_txns",
                    b.txns.size());
      for (const auto& t : b.txns) {
        auto sit = submit_time_us_.find(t.id);
        if (sit != submit_time_us_.end()) {
          PBC_OBS_HIST_RECORD(network()->metrics(),
                              "consensus.commit_latency_us",
                              network()->now() - sit->second);
          submit_time_us_.erase(sit);
        }
      }
    }
    if (!b.txns.empty()) {
      PBC_OBS_TRACE(network()->trace(), network()->now(),
                    obs::TraceKind::kCommit, id(), id(), "batch",
                    next_deliver_);
    }
#endif
    if (!b.txns.empty()) {
      ledger::Block block = ledger::Block::Make(
          chain_.height(), chain_.TipHash(), b.txns, /*timestamp_us=*/0);
      pbc::Status s = chain_.Append(std::move(block));
      (void)s;  // Append of a self-built block cannot fail.
    }
    if (listener_) listener_(id(), next_deliver_, b);
    out_of_order_.erase(it);
    ++next_deliver_;
  }
}

}  // namespace pbc::consensus
