#include "consensus/replica.h"

#include "obs/obs.h"

namespace pbc::consensus {

Replica::Replica(sim::NodeId id, sim::Network* net, ClusterConfig config,
                 crypto::PrivateKey key, const crypto::KeyRegistry* registry)
    : sim::Node(id, net),
      cfg_(std::move(config)),
      key_(std::move(key)),
      registry_(registry) {}

void Replica::SubmitTransaction(txn::Transaction txn) {
  seen_ids_.insert(txn.id);
  if (pool_ids_.count(txn.id) > 0 || committed_ids_.count(txn.id) > 0) return;
#if PBC_OBS_ENABLED
  // Commit-latency bookkeeping, only for metric-attached runs (the map
  // stays empty otherwise and never influences protocol behavior).
  if (network()->metrics() != nullptr) {
    submit_time_us_.emplace(txn.id, network()->now());
  }
#endif
  pool_ids_.insert(txn.id);
  pool_.push_back(std::move(txn));
}

Batch Replica::TakeBatch() {
  Batch batch;
  while (!pool_.empty() && batch.txns.size() < cfg_.batch_size) {
    batch.txns.push_back(std::move(pool_.front()));
    pool_.pop_front();
    pool_ids_.erase(batch.txns.back().id);
  }
  return batch;
}

void Replica::ReturnToPool(const Batch& batch) {
  // Re-submit preserving dedup rules.
  for (const auto& t : batch.txns) SubmitTransaction(t);
}

void Replica::DeliverCommitted(uint64_t seq, Batch batch) {
  if (seq < next_deliver_ || out_of_order_.count(seq) > 0) return;
  out_of_order_[seq] = std::move(batch);
  while (true) {
    auto it = out_of_order_.find(next_deliver_);
    if (it == out_of_order_.end()) break;
    Batch& b = it->second;
    // Drop transactions that already committed at an earlier sequence:
    // with rotating proposers several leaders may batch the same client
    // transaction (clients submit to all replicas). Every replica filters
    // deterministically against the same committed-id set, so chains stay
    // identical. This mirrors Fabric's txid-based replay check.
    std::vector<txn::Transaction> fresh;
    fresh.reserve(b.txns.size());
    for (auto& t : b.txns) {
      if (committed_ids_.count(t.id) == 0) fresh.push_back(std::move(t));
    }
    b.txns = std::move(fresh);
    for (const auto& t : b.txns) {
      committed_ids_.insert(t.id);
      // A committed txn may still sit in the pool if it was submitted to
      // several replicas; purge lazily.
      if (pool_ids_.erase(t.id) > 0) {
        for (auto pit = pool_.begin(); pit != pool_.end(); ++pit) {
          if (pit->id == t.id) {
            pool_.erase(pit);
            break;
          }
        }
      }
    }
    committed_txns_ += b.txns.size();
#if PBC_OBS_ENABLED
    if (network()->metrics() != nullptr) {
      PBC_OBS_COUNT(network()->metrics(), "consensus.committed_txns",
                    b.txns.size());
      for (const auto& t : b.txns) {
        auto sit = submit_time_us_.find(t.id);
        if (sit != submit_time_us_.end()) {
          PBC_OBS_HIST_RECORD(network()->metrics(),
                              "consensus.commit_latency_us",
                              network()->now() - sit->second);
          submit_time_us_.erase(sit);
        }
      }
    }
    if (!b.txns.empty()) {
      PBC_OBS_TRACE(network()->trace(), network()->now(),
                    obs::TraceKind::kCommit, id(), id(), "batch",
                    next_deliver_);
    }
#endif
    if (!b.txns.empty()) {
      ledger::Block block = ledger::Block::Make(
          chain_.height(), chain_.TipHash(), b.txns, /*timestamp_us=*/0);
      Status s = chain_.Append(std::move(block));
      (void)s;  // Append of a self-built block cannot fail.
    }
    if (listener_) listener_(id(), next_deliver_, b);
    out_of_order_.erase(it);
    ++next_deliver_;
  }
}

}  // namespace pbc::consensus
