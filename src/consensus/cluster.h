// Convenience harness: builds a cluster of replicas of any protocol over a
// simulated network, with agreement/liveness checks used by tests, the
// sharding layer, and benchmarks.
#ifndef PBC_CONSENSUS_CLUSTER_H_
#define PBC_CONSENSUS_CLUSTER_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "consensus/replica.h"

namespace pbc::consensus {

/// \brief A set of replicas running one consensus instance.
template <typename ReplicaT>
class Cluster {
 public:
  /// Creates `n` replicas with node ids [base_id, base_id + n) registered
  /// in `registry`. `config.replicas`/`f` are filled in here.
  Cluster(sim::Network* net, crypto::KeyRegistry* registry, size_t n,
          ClusterConfig config = {}, sim::NodeId base_id = 0) {
    config.replicas.clear();
    for (size_t i = 0; i < n; ++i) {
      config.replicas.push_back(base_id + static_cast<sim::NodeId>(i));
    }
    if (config.f == 0 || 3 * config.f + 1 > n) {
      config.f = n >= 4 ? static_cast<uint32_t>((n - 1) / 3) : 1;
    }
    for (size_t i = 0; i < n; ++i) {
      sim::NodeId id = config.replicas[i];
      crypto::PrivateKey key = registry->RegisterDeterministic(id, 0xC0FFEE);
      replicas_.push_back(std::make_unique<ReplicaT>(
          id, net, config, std::move(key), registry));
    }
  }

  ReplicaT* replica(size_t i) { return replicas_[i].get(); }
  const ReplicaT* replica(size_t i) const { return replicas_[i].get(); }
  size_t size() const { return replicas_.size(); }

  /// Submits a transaction to every replica (the "client broadcasts"
  /// model: any correct replica can relay to the current leader).
  void Submit(const txn::Transaction& txn) {
    for (auto& r : replicas_) r->SubmitTransaction(txn);
  }

  /// All pairwise chains are prefix-consistent (the core safety check).
  bool ChainsConsistent() const {
    for (size_t i = 0; i < replicas_.size(); ++i) {
      for (size_t j = i + 1; j < replicas_.size(); ++j) {
        if (!replicas_[i]->chain().PrefixConsistentWith(
                replicas_[j]->chain())) {
          return false;
        }
      }
    }
    return true;
  }

  /// Minimum over replicas of committed transaction count; with `skip`,
  /// ignores the given replica indices (e.g. crashed nodes).
  uint64_t MinCommitted(const std::vector<size_t>& skip = {}) const {
    uint64_t min_committed = UINT64_MAX;
    for (size_t i = 0; i < replicas_.size(); ++i) {
      if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
      min_committed = std::min(min_committed, replicas_[i]->committed_txns());
    }
    return min_committed == UINT64_MAX ? 0 : min_committed;
  }

  uint64_t MaxCommitted() const {
    uint64_t max_committed = 0;
    for (auto& r : replicas_) {
      max_committed = std::max(max_committed, r->committed_txns());
    }
    return max_committed;
  }

 private:
  std::vector<std::unique_ptr<ReplicaT>> replicas_;
};

/// \brief Simple transaction factory for consensus tests/benches (the
/// consensus layer never inspects op contents).
inline txn::Transaction MakeKvTxn(txn::TxnId id, const std::string& key,
                                  const std::string& value) {
  txn::Transaction t;
  t.id = id;
  t.ops.push_back(txn::Op::Write(key, value));
  return t;
}

}  // namespace pbc::consensus

#endif  // PBC_CONSENSUS_CLUSTER_H_
