#include "consensus/raft.h"

#include <algorithm>

#include "obs/obs.h"

namespace pbc::consensus {

RaftReplica::RaftReplica(sim::NodeId id, sim::Network* net,
                         ClusterConfig config, crypto::PrivateKey key,
                         const crypto::KeyRegistry* registry)
    : Replica(id, net, std::move(config), std::move(key), registry) {}

void RaftReplica::OnStart() { ResetElectionTimer(); }

void RaftReplica::ResetElectionTimer() {
  uint64_t epoch = ++election_epoch_;
  // Randomized timeout in [T, 2T) — the classic split-vote breaker.
  // NextU64 tolerates timeout_us == 0 (degenerate immediate-timeout
  // configs used in tests) by returning 0.
  sim::Time t = cfg_.timeout_us +
                network()->simulator()->rng()->NextU64(cfg_.timeout_us);
  SetTimer(t, [this, epoch] {
    if (epoch != election_epoch_) return;
    OnElectionTimeout();
  });
}

void RaftReplica::OnElectionTimeout() {
  if (role_ == Role::kLeader) return;
  role_ = Role::kCandidate;
  ++term_;
  PBC_OBS_COUNT(network()->metrics(), "consensus.view_changes", 1);
  PBC_OBS_COUNT(network()->metrics(), "raft.elections", 1);
  PBC_OBS_TRACE(network()->trace(), network()->now(),
                obs::TraceKind::kViewChange, id(), id(), "raft-election",
                term_);
  voted_for_ = id();
  votes_ = {id()};
  auto rv = std::make_shared<RaftRequestVote>();
  rv->term = term_;
  rv->last_log_index = LastLogIndex();
  rv->last_log_term = LastLogTerm();
  for (sim::NodeId peer : cfg_.replicas) {
    if (peer != id()) Send(peer, rv);
  }
  ResetElectionTimer();
}

void RaftReplica::StepDown(uint64_t term) {
  bool was_leader = role_ == Role::kLeader;
  if (term > term_) {
    term_ = term;
    voted_for_ = kNoVote;
  }
  role_ = Role::kFollower;
  votes_.clear();
  if (was_leader) ++heartbeat_epoch_;  // cancel heartbeats
  ResetElectionTimer();
}

void RaftReplica::BecomeLeader() {
  role_ = Role::kLeader;
  next_index_.assign(cfg_.n(), LastLogIndex() + 1);
  match_index_.assign(cfg_.n(), 0);
  match_index_[cfg_.IndexOf(id())] = LastLogIndex();
  ++election_epoch_;  // suppress election timeouts while leading
  // Commit-barrier no-op: lets entries from previous terms commit.
  log_.push_back(RaftEntry{term_, Batch{}});
  match_index_[cfg_.IndexOf(id())] = LastLogIndex();
  HeartbeatTick();
}

void RaftReplica::HeartbeatTick() {
  if (role_ != Role::kLeader) return;
  uint64_t epoch = ++heartbeat_epoch_;

  // Batch pending client transactions into a new log entry.
  if (pool_size() > 0) {
    Batch batch = TakeBatch();
    if (!batch.empty()) {
      log_.push_back(RaftEntry{term_, std::move(batch)});
      match_index_[cfg_.IndexOf(id())] = LastLogIndex();
    }
  }
  for (size_t i = 0; i < cfg_.n(); ++i) {
    if (cfg_.replicas[i] != id()) SendAppendTo(i);
  }
  AdvanceCommitIndex();

  SetTimer(cfg_.timeout_us / 5, [this, epoch] {
    if (epoch != heartbeat_epoch_) return;
    HeartbeatTick();
  });
}

void RaftReplica::SendAppendTo(size_t peer_index) {
  auto ae = std::make_shared<RaftAppendEntries>();
  ae->term = term_;
  uint64_t next = next_index_[peer_index];
  ae->prev_log_index = next - 1;
  ae->prev_log_term = TermAt(next - 1);
  for (uint64_t idx = next; idx <= LastLogIndex(); ++idx) {
    ae->entries.push_back(log_[idx - 1]);
  }
  ae->leader_commit = commit_index_;
  Send(cfg_.replicas[peer_index], ae);
}

void RaftReplica::OnMessage(sim::NodeId from, const sim::MessagePtr& msg) {
  if (HandleBlockMessage(from, msg)) return;
  const char* t = msg->type();
  if (t == std::string("raft-reqvote")) {
    HandleRequestVote(from, static_cast<const RaftRequestVote&>(*msg));
  } else if (t == std::string("raft-votereply")) {
    HandleVoteReply(from, static_cast<const RaftVoteReply&>(*msg));
  } else if (t == std::string("raft-append")) {
    HandleAppendEntries(from, static_cast<const RaftAppendEntries&>(*msg));
  } else if (t == std::string("raft-appendreply")) {
    HandleAppendReply(from, static_cast<const RaftAppendReply&>(*msg));
  }
}

void RaftReplica::HandleRequestVote(sim::NodeId from,
                                    const RaftRequestVote& m) {
  if (m.term > term_) StepDown(m.term);
  auto reply = std::make_shared<RaftVoteReply>();
  reply->term = term_;
  bool log_ok = m.last_log_term > LastLogTerm() ||
                (m.last_log_term == LastLogTerm() &&
                 m.last_log_index >= LastLogIndex());
  if (m.term == term_ && log_ok &&
      (voted_for_ == kNoVote || voted_for_ == from)) {
    voted_for_ = from;
    reply->granted = true;
    ResetElectionTimer();
  }
  Send(from, reply);
}

void RaftReplica::HandleVoteReply(sim::NodeId from, const RaftVoteReply& m) {
  if (m.term > term_) {
    StepDown(m.term);
    return;
  }
  if (role_ != Role::kCandidate || m.term != term_ || !m.granted) return;
  votes_.insert(from);
  if (votes_.size() >= cfg_.MajorityQuorum()) BecomeLeader();
}

void RaftReplica::HandleAppendEntries(sim::NodeId from,
                                      const RaftAppendEntries& m) {
  if (m.term > term_) StepDown(m.term);
  auto reply = std::make_shared<RaftAppendReply>();
  reply->term = term_;
  if (m.term < term_) {
    reply->success = false;
    Send(from, reply);
    return;
  }
  // Valid leader for this term.
  if (role_ != Role::kFollower) StepDown(m.term);
  ResetElectionTimer();

  if (m.prev_log_index > LastLogIndex() ||
      TermAt(m.prev_log_index) != m.prev_log_term) {
    reply->success = false;
    Send(from, reply);
    return;
  }
  // Append / overwrite conflicting suffix.
  uint64_t idx = m.prev_log_index;
  for (const auto& entry : m.entries) {
    ++idx;
    if (idx <= LastLogIndex()) {
      if (TermAt(idx) != entry.term) {
        log_.resize(idx - 1);  // delete conflicting suffix
        log_.push_back(entry);
      }
    } else {
      log_.push_back(entry);
    }
  }
  if (m.leader_commit > commit_index_) {
    commit_index_ = std::min(m.leader_commit, LastLogIndex());
    ApplyCommitted();
  }
  reply->success = true;
  reply->match_index = m.prev_log_index + m.entries.size();
  Send(from, reply);
}

void RaftReplica::HandleAppendReply(sim::NodeId from,
                                    const RaftAppendReply& m) {
  if (m.term > term_) {
    StepDown(m.term);
    return;
  }
  if (role_ != Role::kLeader || m.term != term_) return;
  size_t peer = cfg_.IndexOf(from);
  if (peer >= cfg_.n()) return;
  if (m.success) {
    match_index_[peer] = std::max(match_index_[peer], m.match_index);
    next_index_[peer] = match_index_[peer] + 1;
    AdvanceCommitIndex();
  } else {
    // Conflict: back off and retry immediately.
    if (next_index_[peer] > 1) --next_index_[peer];
    SendAppendTo(peer);
  }
}

void RaftReplica::AdvanceCommitIndex() {
  if (role_ != Role::kLeader) return;
  for (uint64_t n = LastLogIndex(); n > commit_index_; --n) {
    if (TermAt(n) != term_) break;  // only commit current-term entries
    size_t count = 0;
    for (uint64_t mi : match_index_) {
      if (mi >= n) ++count;
    }
    if (count >= cfg_.MajorityQuorum()) {
      commit_index_ = n;
      ApplyCommitted();
      break;
    }
  }
}

void RaftReplica::ApplyCommitted() {
  while (applied_index_ < commit_index_) {
    ++applied_index_;
    DeliverCommitted(applied_index_, log_[applied_index_ - 1].batch);
  }
}

}  // namespace pbc::consensus
