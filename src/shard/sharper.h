// SharPer [11] (§2.3.4): sharded ledger with DECENTRALIZED cross-shard
// processing — no reference committee.
//
// Intra-shard transactions use the shard's own PBFT. A cross-shard
// transaction runs a flattened agreement among exactly the involved
// clusters: every involved cluster orders a prepare step locally (with
// 2PL + guard checks), then the clusters exchange their accept/reject
// directly with each other (all-to-all over the gateways — the flattened
// structure), and each cluster orders its commit/abort locally once it has
// heard from everyone. Compared with AHL this removes the committee's two
// consensus rounds and one message round-trip, and cross-shard
// transactions over disjoint cluster sets proceed fully in parallel — the
// two advantages the survey's discussion attributes to the flattened
// approach.
#ifndef PBC_SHARD_SHARPER_H_
#define PBC_SHARD_SHARPER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "shard/two_phase.h"  // TxnListener, ShardStats

namespace pbc::shard {

class SharperGateway;

/// \brief The SharPer-style sharded blockchain.
class SharperSystem {
 public:
  SharperSystem(sim::Network* net, crypto::KeyRegistry* registry,
                uint32_t num_shards, size_t replicas_per_shard = 4,
                consensus::ClusterConfig cluster_config = {},
                sim::NodeId base_node_id = 0);
  ~SharperSystem();

  void Submit(txn::Transaction txn);
  void set_listener(TxnListener listener) { listener_ = std::move(listener); }

  /// Observation hook for invariant checkers (src/check): fires on EVERY
  /// involved cluster when it orders its local commit/abort of a
  /// cross-shard transaction — unlike `set_listener`, which fires once per
  /// transaction. Never affects protocol behavior.
  void set_shard_outcome_listener(ShardOutcomeListener listener) {
    shard_outcome_listener_ = std::move(listener);
  }

  ShardCluster* shard(uint32_t i) { return shards_[i].get(); }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  const ShardStats& stats() const { return stats_; }
  int64_t TotalBalance() const;

 private:
  friend class SharperGateway;

  struct CrossState {
    txn::Transaction txn;
    std::vector<ShardId> involved;
    std::map<ShardId, bool> acks;  ///< per-cluster accept/reject
    bool prepared_locally = false;
    bool local_ok = false;
    bool done = false;
  };

  /// A cross-shard proposal arrived at shard `s` (from the initiator).
  void OnPropose(ShardId s, const txn::Transaction& txn);
  /// Shard `from` accepted/rejected transaction `id`; delivered to `s`.
  void OnAck(ShardId s, txn::TxnId id, ShardId from, bool ok);
  /// Checks whether shard `s` heard from every involved cluster and, if
  /// so, orders the local commit/abort.
  void MaybeFinish(ShardId s, txn::TxnId id);

  sim::Network* net_;
  uint32_t num_shards_;
  std::vector<std::unique_ptr<ShardCluster>> shards_;
  std::vector<std::unique_ptr<SharperGateway>> gateways_;
  /// Per-shard cross-transaction state (keyed by (shard, txn id)).
  std::vector<std::map<txn::TxnId, CrossState>> cross_;
  ShardStats stats_;
  TxnListener listener_;
  ShardOutcomeListener shard_outcome_listener_;
};

}  // namespace pbc::shard

#endif  // PBC_SHARD_SHARPER_H_
