#include "shard/common.h"

#include "obs/obs.h"

namespace pbc::shard {

ShardId KeyToShard(const store::Key& key, uint32_t num_shards) {
  if (num_shards == 0) return 0;
  // Explicit pin: "s<id>/...".
  if (key.size() > 2 && key[0] == 's') {
    size_t slash = key.find('/');
    if (slash != store::Key::npos && slash > 1) {
      uint32_t id = 0;
      bool numeric = true;
      for (size_t i = 1; i < slash; ++i) {
        if (key[i] < '0' || key[i] > '9') {
          numeric = false;
          break;
        }
        id = id * 10 + (key[i] - '0');
      }
      if (numeric) return id % num_shards;
    }
  }
  return static_cast<ShardId>(crypto::Sha256::Digest(key).ToU64() %
                              num_shards);
}

std::vector<ShardId> ShardsOf(const txn::Transaction& txn,
                              uint32_t num_shards) {
  std::set<ShardId> shards;
  for (const auto& k : txn.DeclaredReads()) {
    shards.insert(KeyToShard(k, num_shards));
  }
  for (const auto& k : txn.DeclaredWrites()) {
    shards.insert(KeyToShard(k, num_shards));
  }
  if (shards.empty()) shards.insert(0);
  return {shards.begin(), shards.end()};
}

txn::Transaction ProjectToShard(const txn::Transaction& txn, ShardId shard,
                                uint32_t num_shards) {
  txn::Transaction local;
  local.id = txn.id;
  local.client = txn.client;
  for (const auto& op : txn.ops) {
    if (op.code == txn::OpCode::kCompute) continue;
    if (op.code == txn::OpCode::kTransferGuarded) {
      // Cross-shard transfers must be pre-decomposed into increments; a
      // same-shard transfer projects whole.
      if (KeyToShard(op.key, num_shards) == shard &&
          KeyToShard(op.key2, num_shards) == shard) {
        local.ops.push_back(op);
      }
      continue;
    }
    if (KeyToShard(op.key, num_shards) == shard) local.ops.push_back(op);
  }
  return local;
}

bool LocalPreconditionsHold(const txn::Transaction& local,
                            const store::KvStore& store) {
  // Track running balances so multiple increments on one key compose.
  std::map<store::Key, int64_t> balance;
  for (const auto& op : local.ops) {
    if (op.code != txn::OpCode::kIncrement) continue;
    auto it = balance.find(op.key);
    if (it == balance.end()) {
      auto v = store.Get(op.key);
      it = balance
               .emplace(op.key,
                        v.ok() ? txn::DecodeInt(v.ValueOrDie().value) : 0)
               .first;
    }
    it->second += op.delta;
    if (op.delta < 0 && it->second < 0) return false;
  }
  return true;
}

ShardCluster::ShardCluster(ShardId id, sim::Network* net,
                           crypto::KeyRegistry* registry,
                           size_t replicas_per_shard,
                           sim::NodeId base_node_id,
                           consensus::ClusterConfig config)
    : id_(id),
      gateway_id_(base_node_id + static_cast<sim::NodeId>(replicas_per_shard)),
      net_(net) {
  cluster_ = std::make_unique<consensus::Cluster<consensus::PbftReplica>>(
      net, registry, replicas_per_shard, config, base_node_id);
  // The gateway observes every replica's commit stream and deduplicates:
  // with up to f crashed replicas, the first surviving replica to commit
  // still drives the cross-shard protocol forward.
  for (size_t i = 0; i < replicas_per_shard; ++i) {
    cluster_->replica(i)->set_commit_listener(
        [this](sim::NodeId, uint64_t, const consensus::Batch& batch) {
          OnClusterCommit(batch);
        });
  }
}

void ShardCluster::OrderAndThen(
    txn::Transaction marker,
    std::function<void(const txn::Transaction&)> then) {
  // Every cross/intra-shard protocol step costs one intra-cluster
  // consensus round; the counter makes that cost visible per run.
  PBC_OBS_COUNT(net_->metrics(), "shard.consensus_rounds", 1);
  pending_[marker.id] = std::move(then);
  cluster_->Submit(marker);
}

void ShardCluster::OnClusterCommit(const consensus::Batch& batch) {
  for (const auto& t : batch.txns) {
    if (!seen_.insert(t.id).second) continue;  // another replica was first
    ++ordered_;
    auto it = pending_.find(t.id);
    if (it != pending_.end()) {
      auto fn = std::move(it->second);
      pending_.erase(it);
      fn(t);
    }
  }
}

void ShardCluster::Apply(const txn::Transaction& txn) {
  auto r = txn::Execute(txn, txn::LatestReader(&store_));
  if (!r.writes.empty()) {
    store_.ApplyBatch(r.writes, store_.last_committed() + 1);
  }
}

}  // namespace pbc::shard
