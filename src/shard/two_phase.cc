#include "shard/two_phase.h"

#include "obs/metrics.h"
#include "obs/obs.h"

namespace pbc::shard {

void ExportShardStats(const ShardStats& stats, obs::MetricsRegistry* m) {
  if (m == nullptr) return;
  m->GetCounter("shard.intra_committed")->Add(stats.intra_committed);
  m->GetCounter("shard.intra_aborted")->Add(stats.intra_aborted);
  m->GetCounter("shard.cross_committed")->Add(stats.cross_committed);
  m->GetCounter("shard.cross_aborted")->Add(stats.cross_aborted);
}

namespace {

struct CsPrepareMsg : sim::Message {
  txn::Transaction txn;
  uint32_t coordinator = 0;
  const char* type() const override { return "2pc-prepare"; }
  size_t ByteSize() const override { return 96 + txn.ops.size() * 48; }
};

struct CsVoteMsg : sim::Message {
  txn::TxnId id = 0;
  ShardId shard = 0;
  bool ok = false;
  const char* type() const override { return "2pc-vote"; }
};

struct CsDecideMsg : sim::Message {
  txn::TxnId id = 0;
  bool commit = false;
  const char* type() const override { return "2pc-decide"; }
};

txn::Transaction Marker(ShardCluster* cluster, const std::string& tag) {
  txn::Transaction m;
  m.id = cluster->NextMarkerId();
  m.ops.push_back(txn::Op::Write("2pc/" + tag, ""));
  return m;
}

}  // namespace

/// Gateway node: receives cross-shard protocol messages and forwards them
/// to the owning system with its role attached.
class TwoPhaseGateway : public sim::Node {
 public:
  enum class Role { kShard, kCoordinator };

  TwoPhaseGateway(sim::NodeId id, sim::Network* net,
                  TwoPhaseShardSystem* system, Role role, uint32_t index)
      : sim::Node(id, net), system_(system), role_(role), index_(index) {}

  void OnMessage(sim::NodeId, const sim::MessagePtr& msg) override {
    const char* t = msg->type();
    if (t == std::string("2pc-prepare") && role_ == Role::kShard) {
      const auto& m = static_cast<const CsPrepareMsg&>(*msg);
      system_->ShardOnPrepare(index_, m.txn, m.coordinator);
    } else if (t == std::string("2pc-vote") && role_ == Role::kCoordinator) {
      const auto& m = static_cast<const CsVoteMsg&>(*msg);
      system_->CoordinatorOnVote(index_, m.id, m.shard, m.ok);
    } else if (t == std::string("2pc-decide") && role_ == Role::kShard) {
      const auto& m = static_cast<const CsDecideMsg&>(*msg);
      system_->ShardOnDecide(index_, m.id, m.commit);
    }
  }

 private:
  TwoPhaseShardSystem* system_;
  Role role_;
  uint32_t index_;
};

TwoPhaseConfig TwoPhaseConfig::Ahl(uint32_t num_shards,
                                   size_t replicas_per_shard) {
  TwoPhaseConfig c;
  c.num_shards = num_shards;
  c.replicas_per_shard = replicas_per_shard;
  c.coordinator_parent = {-1};
  c.shard_coordinator.assign(num_shards, 0);
  return c;
}

TwoPhaseConfig TwoPhaseConfig::Saguaro(uint32_t num_shards, uint32_t fanout,
                                       size_t replicas_per_shard) {
  TwoPhaseConfig c;
  c.num_shards = num_shards;
  c.replicas_per_shard = replicas_per_shard;
  // Coordinator 0 = cloud root; one fog coordinator per `fanout` shards.
  uint32_t fogs = (num_shards + fanout - 1) / fanout;
  c.coordinator_parent.assign(1 + fogs, 0);
  c.coordinator_parent[0] = -1;
  c.shard_coordinator.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    c.shard_coordinator[s] = 1 + s / fanout;
  }
  return c;
}

TwoPhaseShardSystem::TwoPhaseShardSystem(sim::Network* net,
                                         crypto::KeyRegistry* registry,
                                         TwoPhaseConfig config,
                                         sim::NodeId base_node_id)
    : config_(std::move(config)), net_(net) {
  sim::NodeId next = base_node_id;
  size_t stride = config_.replicas_per_shard + 1;
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardCluster>(
        s, net, registry, config_.replicas_per_shard, next,
        config_.cluster));
    gateways_.push_back(std::make_unique<TwoPhaseGateway>(
        shards_.back()->gateway_id(), net, this,
        TwoPhaseGateway::Role::kShard, s));
    next += static_cast<sim::NodeId>(stride);
  }
  for (uint32_t c = 0; c < config_.coordinator_parent.size(); ++c) {
    coordinators_.push_back(std::make_unique<ShardCluster>(
        1000 + c, net, registry, config_.replicas_per_shard, next,
        config_.cluster));
    gateways_.push_back(std::make_unique<TwoPhaseGateway>(
        coordinators_.back()->gateway_id(), net, this,
        TwoPhaseGateway::Role::kCoordinator, c));
    next += static_cast<sim::NodeId>(stride);
  }
}

TwoPhaseShardSystem::~TwoPhaseShardSystem() = default;

uint32_t TwoPhaseShardSystem::LcaCoordinator(
    const std::vector<ShardId>& shards) const {
  const auto& parent = config_.coordinator_parent;
  auto depth = [&](uint32_t c) {
    uint32_t d = 0;
    while (parent[c] >= 0) {
      c = static_cast<uint32_t>(parent[c]);
      ++d;
    }
    return d;
  };
  uint32_t lca = config_.shard_coordinator[shards[0]];
  for (size_t i = 1; i < shards.size(); ++i) {
    uint32_t a = lca;
    uint32_t b = config_.shard_coordinator[shards[i]];
    uint32_t da = depth(a), db = depth(b);
    while (da > db) {
      a = static_cast<uint32_t>(parent[a]);
      --da;
    }
    while (db > da) {
      b = static_cast<uint32_t>(parent[b]);
      --db;
    }
    while (a != b) {
      a = static_cast<uint32_t>(parent[a]);
      b = static_cast<uint32_t>(parent[b]);
    }
    lca = a;
  }
  return lca;
}

void TwoPhaseShardSystem::Submit(txn::Transaction txn) {
  auto involved = ShardsOf(txn, config_.num_shards);
  if (involved.size() == 1) {
    ShardId s = involved[0];
    ShardCluster* shard = shards_[s].get();
    shard->OrderAndThen(txn, [this, s, shard](const txn::Transaction& t) {
      // Respect coordinator-held locks (2PL): a conflicting intra-shard
      // transaction aborts rather than slipping under a prepared txn.
      for (const auto& k : t.DeclaredWrites()) {
        if (shard->locks()->IsLocked(k)) {
          ++stats_.intra_aborted;
          Notify(t.id, false);
          return;
        }
      }
      for (const auto& k : t.DeclaredReads()) {
        if (shard->locks()->IsLocked(k)) {
          ++stats_.intra_aborted;
          Notify(t.id, false);
          return;
        }
      }
      if (!LocalPreconditionsHold(t, *shard->store())) {
        ++stats_.intra_aborted;
        Notify(t.id, false);
        return;
      }
      shard->Apply(t);
      ++stats_.intra_committed;
      Notify(t.id, true);
    });
    return;
  }
  CoordinatorBegin(LcaCoordinator(involved), std::move(txn));
}

void TwoPhaseShardSystem::CoordinatorBegin(uint32_t coord,
                                           txn::Transaction txn) {
  PBC_OBS_COUNT(net_->metrics(), "shard.2pc.begin_rounds", 1);
  CrossTxn state;
  state.involved = ShardsOf(txn, config_.num_shards);
  state.coordinator = coord;
  state.txn = txn;
  txn::TxnId id = txn.id;
  cross_[id] = std::move(state);

  ShardCluster* cc = coordinators_[coord].get();
  cc->OrderAndThen(
      Marker(cc, "begin/" + std::to_string(id)),
      [this, coord, id](const txn::Transaction&) {
        auto it = cross_.find(id);
        if (it == cross_.end()) return;
        ShardCluster* cc = coordinators_[coord].get();
        for (ShardId s : it->second.involved) {
          auto msg = std::make_shared<CsPrepareMsg>();
          msg->txn = it->second.txn;
          msg->coordinator = coord;
          net_->Send(cc->gateway_id(), shards_[s]->gateway_id(),
                     std::move(msg));
        }
      });
}

void TwoPhaseShardSystem::ShardOnPrepare(ShardId s,
                                         const txn::Transaction& txn,
                                         uint32_t coord) {
  PBC_OBS_COUNT(net_->metrics(), "shard.2pc.prepare_rounds", 1);
  shard_pending_[txn.id] = txn;
  ShardCluster* shard = shards_[s].get();
  txn::TxnId id = txn.id;
  shard->OrderAndThen(
      Marker(shard, "prep/" + std::to_string(id) + "/" + std::to_string(s)),
      [this, s, id, coord](const txn::Transaction&) {
        ShardCluster* shard = shards_[s].get();
        auto pit = shard_pending_.find(id);
        if (pit == shard_pending_.end()) return;
        txn::Transaction local =
            ProjectToShard(pit->second, s, config_.num_shards);
        bool ok = true;
        for (const auto& k : local.DeclaredWrites()) {
          if (!shard->locks()->LockExclusive(k, id).ok()) ok = false;
        }
        if (ok) {
          for (const auto& k : local.DeclaredReads()) {
            if (!shard->locks()->LockShared(k, id).ok()) ok = false;
          }
        }
        if (ok) ok = LocalPreconditionsHold(local, *shard->store());
        if (!ok) shard->locks()->UnlockAll(id);

        auto vote = std::make_shared<CsVoteMsg>();
        vote->id = id;
        vote->shard = s;
        vote->ok = ok;
        net_->Send(shard->gateway_id(),
                   coordinators_[coord]->gateway_id(), std::move(vote));
      });
}

void TwoPhaseShardSystem::CoordinatorOnVote(uint32_t coord, txn::TxnId id,
                                            ShardId s, bool ok) {
  auto it = cross_.find(id);
  if (it == cross_.end() || it->second.decided) return;
  CrossTxn& state = it->second;
  state.votes[s] = ok;
  if (state.votes.size() < state.involved.size()) return;

  bool commit = true;
  for (const auto& [shard_id, vote] : state.votes) commit &= vote;
  state.decided = true;
  PBC_OBS_COUNT(net_->metrics(), "shard.2pc.decide_rounds", 1);

  ShardCluster* cc = coordinators_[coord].get();
  cc->OrderAndThen(
      Marker(cc, "decide/" + std::to_string(id)),
      [this, coord, id, commit](const txn::Transaction&) {
        auto it = cross_.find(id);
        if (it == cross_.end()) return;
        ShardCluster* cc = coordinators_[coord].get();
        for (ShardId s : it->second.involved) {
          auto msg = std::make_shared<CsDecideMsg>();
          msg->id = id;
          msg->commit = commit;
          net_->Send(cc->gateway_id(), shards_[s]->gateway_id(),
                     std::move(msg));
        }
        if (commit) {
          ++stats_.cross_committed;
        } else {
          ++stats_.cross_aborted;
        }
        Notify(id, commit);
        cross_.erase(it);
      });
}

void TwoPhaseShardSystem::ShardOnDecide(ShardId s, txn::TxnId id,
                                        bool commit) {
  ShardCluster* shard = shards_[s].get();
  shard->OrderAndThen(
      Marker(shard, "dec/" + std::to_string(id) + "/" + std::to_string(s)),
      [this, s, id, commit](const txn::Transaction&) {
        ShardCluster* shard = shards_[s].get();
        auto pit = shard_pending_.find(id);
        if (commit && pit != shard_pending_.end()) {
          shard->Apply(ProjectToShard(pit->second, s, config_.num_shards));
        }
        shard->locks()->UnlockAll(id);
        if (shard_outcome_listener_) shard_outcome_listener_(s, id, commit);
        // The pending entry is shared across shards of this system object;
        // erase only once every involved shard has decided. Simplest safe
        // rule: leave it; ids are unique and memory is bounded by workload.
      });
}

void TwoPhaseShardSystem::Notify(txn::TxnId id, bool committed) {
  if (listener_) listener_(id, committed);
}

int64_t TwoPhaseShardSystem::TotalBalance() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    shard->store()->ForEachLatest(
        [&](const store::Key&, const store::VersionedValue& v) {
          total += txn::DecodeInt(v.value);
        });
  }
  return total;
}

}  // namespace pbc::shard
