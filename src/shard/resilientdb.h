// ResilientDB-style single-ledger clustering [32] (§2.3.4).
//
// Nodes are partitioned into topology-aware fault-tolerant clusters to
// localize the expensive (all-to-all) consensus traffic, but the ledger is
// NOT sharded: every cluster eventually executes every transaction. Each
// cluster locally orders the transactions submitted to it (PBFT), then its
// gateway multicasts the locally-ordered transaction to all other
// clusters; every cluster merges the per-cluster sequences in a fixed
// deterministic round-robin (round r = slot r of cluster 0, 1, …, k−1) and
// executes the merged order. There are therefore no intra-/cross-shard
// transactions — and no cross-shard commit latency — at the price of
// global replication and per-transaction global multicast, which is the
// trade-off E8 measures against the sharded systems.
//
// Liveness: an idle cluster publishes explicit no-op slots so the merge
// never stalls on a cluster with nothing to say.
#ifndef PBC_SHARD_RESILIENTDB_H_
#define PBC_SHARD_RESILIENTDB_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "shard/two_phase.h"  // TxnListener

namespace pbc::shard {

class RdbGateway;

/// \brief The single-ledger clustered blockchain.
class ResilientDbSystem {
 public:
  ResilientDbSystem(sim::Network* net, crypto::KeyRegistry* registry,
                    uint32_t num_clusters, size_t replicas_per_cluster = 4,
                    consensus::ClusterConfig cluster_config = {},
                    sim::NodeId base_node_id = 0);
  ~ResilientDbSystem();

  /// Submits a transaction to its home cluster (e.g. the client's region).
  void Submit(uint32_t home_cluster, txn::Transaction txn);
  void set_listener(TxnListener listener) { listener_ = std::move(listener); }

  uint32_t num_clusters() const {
    return static_cast<uint32_t>(clusters_.size());
  }
  ShardCluster* cluster(uint32_t i) { return clusters_[i].get(); }

  /// The globally-merged state as executed by cluster `i`. All clusters
  /// converge to identical stores (asserted by tests).
  const store::KvStore& StateOf(uint32_t i) const;

  uint64_t executed() const { return executed_; }

 private:
  friend class RdbGateway;

  struct Slot {
    bool noop = true;
    txn::Transaction txn;
  };

  /// A locally-ordered slot from `cluster` arrived at merge point `at`.
  void OnShare(uint32_t at, uint32_t cluster, uint64_t slot_index,
               const Slot& slot);
  /// Executes merged rounds at cluster `at` while complete.
  void DrainRounds(uint32_t at);
  /// Publishes a no-op for `cluster` if it is the straggler.
  void MaybePublishNoop(uint32_t cluster);

  sim::Network* net_;
  std::vector<std::unique_ptr<ShardCluster>> clusters_;
  std::vector<std::unique_ptr<RdbGateway>> gateways_;

  // Per merge-point: received slots per source cluster.
  struct MergeState {
    std::vector<std::map<uint64_t, Slot>> slots;  // [cluster][index]
    std::vector<uint64_t> next_index;             // per cluster
    uint64_t round = 0;
  };
  std::vector<MergeState> merge_;
  std::vector<uint64_t> local_published_;  // slots each cluster published
  std::map<uint32_t, uint64_t> noops_in_flight_;
  std::vector<store::KvStore> state_;      // merged state per cluster
  uint64_t executed_ = 0;
  TxnListener listener_;
};

}  // namespace pbc::shard

#endif  // PBC_SHARD_RESILIENTDB_H_
