// Coordinator-based cross-shard transaction processing: AHL [25] and
// Saguaro [13] (§2.3.4).
//
// Both process cross-shard transactions with 2PC + 2PL where every
// coordinator/participant "node" is itself a BFT cluster: each protocol
// step (begin, prepare, decide) is ordered by the respective cluster's
// PBFT instance before it takes effect. The two systems differ only in
// *which* cluster coordinates:
//   AHL      — a dedicated reference committee coordinates everything;
//   Saguaro  — coordinator clusters form a tree (edge→fog→cloud); each
//              cross-shard transaction is coordinated by the LOWEST COMMON
//              ANCESTOR of its involved shards, so nearby shards never pay
//              a round-trip to the (distant) root.
//
// AHL's trusted-hardware variant (2f+1 clusters instead of 3f+1) is
// exercised by configuring smaller clusters plus the attested-log shim —
// see bench_e10 and sim/attested_log.h.
#ifndef PBC_SHARD_TWO_PHASE_H_
#define PBC_SHARD_TWO_PHASE_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "shard/common.h"

namespace pbc::obs {
class MetricsRegistry;
}  // namespace pbc::obs

namespace pbc::shard {

/// \brief Outcome callback: (transaction id, committed?).
using TxnListener = std::function<void(txn::TxnId, bool)>;

/// \brief Per-cluster outcome callback for cross-shard transactions:
/// (shard, transaction id, committed?). Fires when THAT cluster orders its
/// local commit/abort — the observation point for the cross-shard
/// atomicity invariant (no cluster may commit while a sibling aborts).
using ShardOutcomeListener = std::function<void(ShardId, txn::TxnId, bool)>;

/// \brief Counters for the sharded systems.
struct ShardStats {
  uint64_t intra_committed = 0;
  uint64_t intra_aborted = 0;  ///< blocked by a cross-shard lock
  uint64_t cross_committed = 0;
  uint64_t cross_aborted = 0;

  uint64_t aborted() const { return intra_aborted + cross_aborted; }
  uint64_t committed() const { return intra_committed + cross_committed; }
  /// Aborted fraction of all finished transactions (0 when none finished).
  double AbortRate() const {
    uint64_t total = committed() + aborted();
    return total == 0 ? 0.0 : static_cast<double>(aborted()) / total;
  }
};

/// \brief Dumps `stats` into `m` as "shard.*" counters (no-op on nullptr).
void ExportShardStats(const ShardStats& stats, obs::MetricsRegistry* m);

/// \brief Configuration: shard clusters + coordinator tree.
struct TwoPhaseConfig {
  uint32_t num_shards = 2;
  size_t replicas_per_shard = 4;
  consensus::ClusterConfig cluster;  ///< applied to every cluster

  /// Coordinator tree: parent[i] of coordinator i (-1 for the root).
  /// AHL: a single coordinator {-1} (the reference committee).
  std::vector<int> coordinator_parent = {-1};
  /// Which coordinator each shard hangs off (AHL: all 0).
  std::vector<uint32_t> shard_coordinator;

  static TwoPhaseConfig Ahl(uint32_t num_shards,
                            size_t replicas_per_shard = 4);
  /// A 3-level Saguaro tree: root(0), one fog node per `fanout` shards,
  /// shards attached to their fog node.
  static TwoPhaseConfig Saguaro(uint32_t num_shards, uint32_t fanout,
                                size_t replicas_per_shard = 4);
};

class TwoPhaseGateway;

/// \brief The coordinator-based sharded blockchain.
class TwoPhaseShardSystem {
 public:
  TwoPhaseShardSystem(sim::Network* net, crypto::KeyRegistry* registry,
                      TwoPhaseConfig config, sim::NodeId base_node_id = 0);
  ~TwoPhaseShardSystem();

  /// Routes a transaction: single-shard → local consensus; multi-shard →
  /// 2PC through the responsible coordinator cluster.
  void Submit(txn::Transaction txn);

  void set_listener(TxnListener listener) { listener_ = std::move(listener); }

  /// Observation hook for invariant checkers (src/check); see
  /// ShardOutcomeListener. Never affects protocol behavior.
  void set_shard_outcome_listener(ShardOutcomeListener listener) {
    shard_outcome_listener_ = std::move(listener);
  }

  ShardCluster* shard(uint32_t i) { return shards_[i].get(); }
  ShardCluster* coordinator(uint32_t i) { return coordinators_[i].get(); }
  uint32_t num_shards() const { return config_.num_shards; }
  const ShardStats& stats() const { return stats_; }

  /// Lowest common ancestor of the coordinators of the given shards.
  uint32_t LcaCoordinator(const std::vector<ShardId>& shards) const;

  /// Total money across all shards (conservation checks in tests).
  int64_t TotalBalance() const;

 private:
  friend class TwoPhaseGateway;

  struct CrossTxn {
    txn::Transaction txn;
    std::vector<ShardId> involved;
    uint32_t coordinator = 0;
    std::map<ShardId, bool> votes;
    bool decided = false;
  };

  // Coordinator-side steps (run on the coordinator's gateway).
  void CoordinatorBegin(uint32_t coord, txn::Transaction txn);
  void CoordinatorOnVote(uint32_t coord, txn::TxnId id, ShardId shard,
                         bool ok);
  // Shard-side steps.
  void ShardOnPrepare(ShardId shard, const txn::Transaction& txn,
                      uint32_t coord);
  void ShardOnDecide(ShardId shard, txn::TxnId id, bool commit);

  void Notify(txn::TxnId id, bool committed);

  TwoPhaseConfig config_;
  sim::Network* net_;
  std::vector<std::unique_ptr<ShardCluster>> shards_;
  std::vector<std::unique_ptr<ShardCluster>> coordinators_;
  std::vector<std::unique_ptr<TwoPhaseGateway>> gateways_;
  std::map<txn::TxnId, CrossTxn> cross_;  // coordinator-side state
  std::map<txn::TxnId, txn::Transaction> shard_pending_;  // shard-side
  ShardStats stats_;
  TxnListener listener_;
  ShardOutcomeListener shard_outcome_listener_;
};

}  // namespace pbc::shard

#endif  // PBC_SHARD_TWO_PHASE_H_
