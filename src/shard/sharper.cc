#include "shard/sharper.h"

namespace pbc::shard {

namespace {

struct SpProposeMsg : sim::Message {
  txn::Transaction txn;
  const char* type() const override { return "sp-propose"; }
  size_t ByteSize() const override { return 96 + txn.ops.size() * 48; }
};

struct SpAckMsg : sim::Message {
  txn::TxnId id = 0;
  ShardId from = 0;
  bool ok = false;
  const char* type() const override { return "sp-ack"; }
};

txn::Transaction Marker(ShardCluster* cluster, const std::string& tag) {
  txn::Transaction m;
  m.id = cluster->NextMarkerId();
  m.ops.push_back(txn::Op::Write("sp/" + tag, ""));
  return m;
}

}  // namespace

class SharperGateway : public sim::Node {
 public:
  SharperGateway(sim::NodeId id, sim::Network* net, SharperSystem* system,
                 ShardId shard)
      : sim::Node(id, net), system_(system), shard_(shard) {}

  void OnMessage(sim::NodeId, const sim::MessagePtr& msg) override {
    const char* t = msg->type();
    if (t == std::string("sp-propose")) {
      const auto& m = static_cast<const SpProposeMsg&>(*msg);
      system_->OnPropose(shard_, m.txn);
    } else if (t == std::string("sp-ack")) {
      const auto& m = static_cast<const SpAckMsg&>(*msg);
      system_->OnAck(shard_, m.id, m.from, m.ok);
    }
  }

 private:
  SharperSystem* system_;
  ShardId shard_;
};

SharperSystem::SharperSystem(sim::Network* net,
                             crypto::KeyRegistry* registry,
                             uint32_t num_shards, size_t replicas_per_shard,
                             consensus::ClusterConfig cluster_config,
                             sim::NodeId base_node_id)
    : net_(net), num_shards_(num_shards), cross_(num_shards) {
  sim::NodeId next = base_node_id;
  for (uint32_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardCluster>(
        s, net, registry, replicas_per_shard, next, cluster_config));
    gateways_.push_back(std::make_unique<SharperGateway>(
        shards_.back()->gateway_id(), net, this, s));
    next += static_cast<sim::NodeId>(replicas_per_shard + 1);
  }
}

SharperSystem::~SharperSystem() = default;

void SharperSystem::Submit(txn::Transaction txn) {
  auto involved = ShardsOf(txn, num_shards_);
  if (involved.size() == 1) {
    ShardId s = involved[0];
    ShardCluster* shard = shards_[s].get();
    shard->OrderAndThen(txn, [this, shard](const txn::Transaction& t) {
      for (const auto& k : t.DeclaredWrites()) {
        if (shard->locks()->IsLocked(k)) {
          ++stats_.intra_aborted;
          if (listener_) listener_(t.id, false);
          return;
        }
      }
      if (!LocalPreconditionsHold(t, *shard->store())) {
        ++stats_.intra_aborted;
        if (listener_) listener_(t.id, false);
        return;
      }
      shard->Apply(t);
      ++stats_.intra_committed;
      if (listener_) listener_(t.id, true);
    });
    return;
  }
  // Flattened cross-shard: the initiator (lowest involved shard) fans the
  // proposal out to every involved cluster, itself included.
  ShardId initiator = involved[0];
  for (ShardId s : involved) {
    auto msg = std::make_shared<SpProposeMsg>();
    msg->txn = txn;
    net_->Send(shards_[initiator]->gateway_id(), shards_[s]->gateway_id(),
               msg);
  }
}

void SharperSystem::OnPropose(ShardId s, const txn::Transaction& txn) {
  auto& state = cross_[s][txn.id];
  if (state.prepared_locally) return;  // duplicate
  state.txn = txn;
  state.involved = ShardsOf(txn, num_shards_);

  ShardCluster* shard = shards_[s].get();
  txn::TxnId id = txn.id;
  shard->OrderAndThen(
      Marker(shard, "prep/" + std::to_string(id) + "/" + std::to_string(s)),
      [this, s, id](const txn::Transaction&) {
        ShardCluster* shard = shards_[s].get();
        auto& state = cross_[s][id];
        state.prepared_locally = true;
        txn::Transaction local =
            ProjectToShard(state.txn, s, num_shards_);
        bool ok = true;
        for (const auto& k : local.DeclaredWrites()) {
          if (!shard->locks()->LockExclusive(k, id).ok()) ok = false;
        }
        if (ok) {
          for (const auto& k : local.DeclaredReads()) {
            if (!shard->locks()->LockShared(k, id).ok()) ok = false;
          }
        }
        if (ok) ok = LocalPreconditionsHold(local, *shard->store());
        if (!ok) shard->locks()->UnlockAll(id);
        state.local_ok = ok;
        // Flattened exchange: tell every involved cluster directly.
        for (ShardId peer : state.involved) {
          auto ack = std::make_shared<SpAckMsg>();
          ack->id = id;
          ack->from = s;
          ack->ok = ok;
          net_->Send(shard->gateway_id(), shards_[peer]->gateway_id(), ack);
        }
      });
}

void SharperSystem::OnAck(ShardId s, txn::TxnId id, ShardId from, bool ok) {
  auto& state = cross_[s][id];
  state.acks[from] = ok;
  MaybeFinish(s, id);
}

void SharperSystem::MaybeFinish(ShardId s, txn::TxnId id) {
  auto& state = cross_[s][id];
  if (state.done || !state.prepared_locally) return;
  if (state.involved.empty()) return;  // acks before the proposal arrived
  for (ShardId peer : state.involved) {
    if (state.acks.count(peer) == 0) return;
  }
  bool commit = true;
  for (const auto& [peer, ok] : state.acks) commit &= ok;
  state.done = true;

  ShardCluster* shard = shards_[s].get();
  bool is_initiator = state.involved[0] == s;
  shard->OrderAndThen(
      Marker(shard, std::string(commit ? "commit/" : "abort/") +
                        std::to_string(id) + "/" + std::to_string(s)),
      [this, s, id, commit, is_initiator](const txn::Transaction&) {
        ShardCluster* shard = shards_[s].get();
        auto& state = cross_[s][id];
        if (commit) {
          shard->Apply(ProjectToShard(state.txn, s, num_shards_));
        }
        shard->locks()->UnlockAll(id);
        if (shard_outcome_listener_) shard_outcome_listener_(s, id, commit);
        if (is_initiator) {
          if (commit) {
            ++stats_.cross_committed;
          } else {
            ++stats_.cross_aborted;
          }
          if (listener_) listener_(id, commit);
        }
      });
}

int64_t SharperSystem::TotalBalance() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    shard->store()->ForEachLatest(
        [&](const store::Key&, const store::VersionedValue& v) {
          total += txn::DecodeInt(v.value);
        });
  }
  return total;
}

}  // namespace pbc::shard
