// Shared sharding infrastructure (§2.3.4).
//
// A `ShardCluster` is one fault-tolerant cluster: a real PBFT instance
// ordering that shard's transactions, a gateway node that speaks the
// cross-shard protocols, the shard's state store, and a 2PL lock table for
// coordinator-based commits. Every protocol step that requires
// cluster-internal agreement (prepare, decide, commit) is submitted as a
// marker transaction into the cluster's PBFT and acted upon only when it
// commits — so cross-shard coordination rides on genuine consensus rather
// than on a trusted single node.
//
// Modeling note: replicas order; the gateway deterministically executes
// the ordered log against the shard store. Since execution is a pure
// function of the log, the gateway's store equals what every replica would
// materialize; gateway state is thus "the cluster's state", not a trusted
// shortcut for agreement (agreement always goes through PBFT).
#ifndef PBC_SHARD_COMMON_H_
#define PBC_SHARD_COMMON_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/cluster.h"
#include "consensus/pbft.h"
#include "store/kv_store.h"
#include "txn/transaction.h"

namespace pbc::shard {

using ShardId = uint32_t;

/// \brief Maps a key to its home shard (hash partitioning). Keys may pin
/// a shard explicitly with the prefix "s<id>/".
ShardId KeyToShard(const store::Key& key, uint32_t num_shards);

/// \brief Shards touched by a transaction, ascending.
std::vector<ShardId> ShardsOf(const txn::Transaction& txn,
                              uint32_t num_shards);

/// \brief The ops of `txn` whose keys live on `shard`.
txn::Transaction ProjectToShard(const txn::Transaction& txn, ShardId shard,
                                uint32_t num_shards);

/// \brief Checks guarded semantics for the local projection: every
/// negative increment must keep its balance non-negative. Used as the 2PC
/// prepare-phase business check.
bool LocalPreconditionsHold(const txn::Transaction& local,
                            const store::KvStore& store);

/// \brief One fault-tolerant cluster with its gateway.
class ShardCluster {
 public:
  /// Creates the cluster: `replicas_per_shard` PBFT replicas with node ids
  /// [base_node_id, …) plus a gateway at base_node_id + replicas_per_shard.
  ShardCluster(ShardId id, sim::Network* net, crypto::KeyRegistry* registry,
               size_t replicas_per_shard, sim::NodeId base_node_id,
               consensus::ClusterConfig config = {});

  ShardId id() const { return id_; }
  sim::NodeId gateway_id() const { return gateway_id_; }

  /// Submits `marker` to the cluster's PBFT; invokes `then` (on the
  /// gateway) once the cluster has committed it.
  void OrderAndThen(txn::Transaction marker,
                    std::function<void(const txn::Transaction&)> then);

  /// Applies a transaction's effects to the shard store (deterministic
  /// execution of the ordered log).
  void Apply(const txn::Transaction& txn);

  store::KvStore* store() { return &store_; }
  const store::KvStore& store() const { return store_; }
  store::LockTable* locks() { return &locks_; }
  consensus::Cluster<consensus::PbftReplica>* consensus() {
    return cluster_.get();
  }

  /// Unique marker-transaction id space for this cluster.
  txn::TxnId NextMarkerId() {
    return (static_cast<txn::TxnId>(id_ + 1) << 40) | next_marker_++;
  }

  uint64_t ordered_txns() const { return ordered_; }

 private:
  void OnClusterCommit(const consensus::Batch& batch);

  ShardId id_;
  sim::NodeId gateway_id_;
  sim::Network* net_;
  std::unique_ptr<consensus::Cluster<consensus::PbftReplica>> cluster_;
  store::KvStore store_;
  store::LockTable locks_;
  std::map<txn::TxnId, std::function<void(const txn::Transaction&)>>
      pending_;
  std::set<txn::TxnId> seen_;
  uint64_t next_marker_ = 1;
  uint64_t ordered_ = 0;
};

}  // namespace pbc::shard

#endif  // PBC_SHARD_COMMON_H_
