#include "shard/resilientdb.h"

namespace pbc::shard {

namespace {

struct RdbShareMsg : sim::Message {
  uint32_t cluster = 0;
  uint64_t index = 0;
  bool noop = true;
  txn::Transaction txn;
  const char* type() const override { return "rdb-share"; }
  size_t ByteSize() const override {
    return noop ? 48 : 96 + txn.ops.size() * 48;
  }
};

}  // namespace

class RdbGateway : public sim::Node {
 public:
  RdbGateway(sim::NodeId id, sim::Network* net, ResilientDbSystem* system,
             uint32_t cluster)
      : sim::Node(id, net), system_(system), cluster_(cluster) {}

  void OnMessage(sim::NodeId, const sim::MessagePtr& msg) override {
    if (msg->type() == std::string("rdb-share")) {
      const auto& m = static_cast<const RdbShareMsg&>(*msg);
      ResilientDbSystem::Slot slot;
      slot.noop = m.noop;
      slot.txn = m.txn;
      system_->OnShare(cluster_, m.cluster, m.index, slot);
    }
  }

 private:
  ResilientDbSystem* system_;
  uint32_t cluster_;
};

ResilientDbSystem::ResilientDbSystem(sim::Network* net,
                                     crypto::KeyRegistry* registry,
                                     uint32_t num_clusters,
                                     size_t replicas_per_cluster,
                                     consensus::ClusterConfig cluster_config,
                                     sim::NodeId base_node_id)
    : net_(net),
      merge_(num_clusters),
      local_published_(num_clusters, 0),
      state_(num_clusters) {
  sim::NodeId next = base_node_id;
  for (uint32_t c = 0; c < num_clusters; ++c) {
    clusters_.push_back(std::make_unique<ShardCluster>(
        c, net, registry, replicas_per_cluster, next, cluster_config));
    gateways_.push_back(std::make_unique<RdbGateway>(
        clusters_.back()->gateway_id(), net, this, c));
    next += static_cast<sim::NodeId>(replicas_per_cluster + 1);
  }
  for (auto& m : merge_) {
    m.slots.resize(num_clusters);
    m.next_index.assign(num_clusters, 0);
  }
}

ResilientDbSystem::~ResilientDbSystem() = default;

void ResilientDbSystem::Submit(uint32_t home, txn::Transaction txn) {
  ShardCluster* cluster = clusters_[home].get();
  cluster->OrderAndThen(txn, [this, home](const txn::Transaction& t) {
    uint64_t index = local_published_[home]++;
    for (uint32_t peer = 0; peer < num_clusters(); ++peer) {
      auto share = std::make_shared<RdbShareMsg>();
      share->cluster = home;
      share->index = index;
      share->noop = false;
      share->txn = t;
      net_->Send(clusters_[home]->gateway_id(),
                 clusters_[peer]->gateway_id(), share);
    }
  });
}

void ResilientDbSystem::OnShare(uint32_t at, uint32_t cluster,
                                uint64_t slot_index, const Slot& slot) {
  merge_[at].slots[cluster][slot_index] = slot;
  DrainRounds(at);
  // Liveness: if my own cluster is the straggler, publish a no-op slot.
  MaybePublishNoop(at);
}

void ResilientDbSystem::DrainRounds(uint32_t at) {
  MergeState& m = merge_[at];
  for (;;) {
    // Round `m.round`: need slot m.round from every cluster.
    for (uint32_t c = 0; c < num_clusters(); ++c) {
      if (m.slots[c].count(m.round) == 0) return;
    }
    for (uint32_t c = 0; c < num_clusters(); ++c) {
      auto it = m.slots[c].find(m.round);
      const Slot& slot = it->second;
      if (!slot.noop) {
        auto r = txn::Execute(slot.txn, txn::LatestReader(&state_[at]));
        if (!r.writes.empty()) {
          state_[at].ApplyBatch(r.writes, state_[at].last_committed() + 1);
        }
        if (at == c) {
          ++executed_;
          if (listener_) listener_(slot.txn.id, true);
        }
      }
      m.slots[c].erase(it);
    }
    ++m.round;
  }
}

void ResilientDbSystem::MaybePublishNoop(uint32_t cluster) {
  // How far ahead is the furthest peer?
  uint64_t max_seen = 0;
  const MergeState& m = merge_[cluster];
  for (uint32_t c = 0; c < num_clusters(); ++c) {
    if (c == cluster) continue;
    if (!m.slots[c].empty()) {
      max_seen = std::max(max_seen, m.slots[c].rbegin()->first + 1);
    }
  }
  while (local_published_[cluster] + noops_in_flight_[cluster] < max_seen) {
    ++noops_in_flight_[cluster];
    ShardCluster* cl = clusters_[cluster].get();
    txn::Transaction noop;
    noop.id = cl->NextMarkerId();
    noop.ops.push_back(txn::Op::Write("rdb/noop", ""));
    cl->OrderAndThen(noop, [this, cluster](const txn::Transaction&) {
      --noops_in_flight_[cluster];
      uint64_t index = local_published_[cluster]++;
      for (uint32_t peer = 0; peer < num_clusters(); ++peer) {
        auto share = std::make_shared<RdbShareMsg>();
        share->cluster = cluster;
        share->index = index;
        share->noop = true;
        net_->Send(clusters_[cluster]->gateway_id(),
                   clusters_[peer]->gateway_id(), share);
      }
    });
  }
}

const store::KvStore& ResilientDbSystem::StateOf(uint32_t i) const {
  return state_[i];
}

}  // namespace pbc::shard
