// Node authentication for the permissioned network.
//
// Substitution note (see DESIGN.md §2): production systems use X.509 / ECDSA
// under a membership service. In a permissioned deployment the signature's
// protocol-level role is sender authentication among *known* identities, so
// we provide the same abstraction — unforgeable-without-key tags verified
// against a registry — built on HMAC-SHA256. Each identity holds a secret
// MAC key; verifiers consult the `KeyRegistry` (standing in for the
// membership service / CA). Byzantine nodes in tests are modeled as holding
// only their own key, so they cannot forge others' messages, exactly the
// guarantee BFT protocols assume.
#ifndef PBC_CRYPTO_AUTH_H_
#define PBC_CRYPTO_AUTH_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/sha256.h"

namespace pbc::crypto {

/// \brief Identity of a participant (node, client, enterprise, authority).
using IdentityId = uint32_t;

/// \brief An authentication tag over a message, bound to a signer identity.
struct Signature {
  IdentityId signer = 0;
  Hash256 tag;

  bool operator==(const Signature& o) const {
    return signer == o.signer && tag == o.tag;
  }
};

/// \brief Secret key material held by one identity.
class PrivateKey {
 public:
  PrivateKey() = default;
  explicit PrivateKey(IdentityId id, Bytes secret)
      : id_(id), secret_(std::move(secret)) {}

  /// Produces an authentication tag over `message`.
  Signature Sign(const Bytes& message) const;
  Signature Sign(const Hash256& digest) const;

  IdentityId id() const { return id_; }
  const Bytes& secret() const { return secret_; }

 private:
  IdentityId id_ = 0;
  Bytes secret_;
};

/// \brief The membership service: maps identities to verification keys.
///
/// In tests and simulations a single registry is shared by all honest nodes;
/// Byzantine nodes receive only their own `PrivateKey`, so any attempt to
/// impersonate another identity fails verification.
class KeyRegistry {
 public:
  /// Creates and registers a fresh identity; returns its private key.
  PrivateKey Register(IdentityId id);

  /// Deterministically derives an identity's key from a seed (used to set
  /// up large simulated networks reproducibly).
  PrivateKey RegisterDeterministic(IdentityId id, uint64_t seed);

  /// Verifies that `sig` is a valid tag by `sig.signer` over `message`.
  bool Verify(const Bytes& message, const Signature& sig) const;
  bool Verify(const Hash256& digest, const Signature& sig) const;

  bool Contains(IdentityId id) const { return keys_.count(id) > 0; }
  size_t size() const { return keys_.size(); }

 private:
  // Ordered: the registry is membership state shared by every honest
  // node; keeping it address-independent means any future enumeration
  // (snapshots, audits, serialization) is deterministic by construction.
  std::map<IdentityId, Bytes> keys_;
  uint64_t counter_ = 0;
};

}  // namespace pbc::crypto

#endif  // PBC_CRYPTO_AUTH_H_
