// A prime-order group for Pedersen commitments and Σ-protocols.
//
// Substitution note (see DESIGN.md §2): production ZKP systems (Quorum,
// Zcash) use elliptic-curve groups with ≥128-bit security. The survey's
// claims concern protocol *structure* and *relative* overhead, so we use the
// order-q subgroup of quadratic residues of Z_p^* for the safe prime
//   p = 2q + 1 = 2305843009213691579  (61 bits),
//   q = 1152921504606845789           (q prime),
// with generators g = 4 and h = 9 (independent squares; log_g h unknown).
// All exponentiations are real modular arithmetic — the code path and
// asymptotics match a production group; only the parameter size is toy,
// and that is documented everywhere the group is exposed.
#ifndef PBC_CRYPTO_GROUP_H_
#define PBC_CRYPTO_GROUP_H_

#include <cstdint>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace pbc::crypto {

/// Group modulus (safe prime) and subgroup order.
inline constexpr uint64_t kGroupP = 2305843009213691579ULL;
inline constexpr uint64_t kGroupQ = 1152921504606845789ULL;  // (p-1)/2
inline constexpr uint64_t kGenG = 4;                         // order q
inline constexpr uint64_t kGenH = 9;                         // order q

/// \brief Arithmetic in the scalar field Z_q.
class Scalar {
 public:
  Scalar() = default;
  explicit Scalar(uint64_t v) : v_(v % kGroupQ) {}

  uint64_t value() const { return v_; }

  Scalar operator+(Scalar o) const;
  Scalar operator-(Scalar o) const;
  Scalar operator*(Scalar o) const;
  Scalar Neg() const;

  bool operator==(Scalar o) const { return v_ == o.v_; }
  bool operator!=(Scalar o) const { return v_ != o.v_; }

  /// Uniform random scalar.
  static Scalar Random(Rng* rng);

  /// Maps a digest into Z_q (Fiat–Shamir challenge derivation).
  static Scalar FromHash(const Hash256& h);

 private:
  uint64_t v_ = 0;
};

/// \brief An element of the order-q subgroup of Z_p^*.
class GroupElement {
 public:
  GroupElement() = default;
  explicit GroupElement(uint64_t v) : v_(v % kGroupP) {}

  uint64_t value() const { return v_; }

  /// Group operation (modular multiplication).
  GroupElement operator*(GroupElement o) const;
  /// Inverse via Fermat: v^(p-2) mod p.
  GroupElement Inverse() const;
  /// Exponentiation by a scalar.
  GroupElement Pow(Scalar e) const;

  bool operator==(GroupElement o) const { return v_ == o.v_; }
  bool operator!=(GroupElement o) const { return v_ != o.v_; }

  static GroupElement G() { return GroupElement(kGenG); }
  static GroupElement H() { return GroupElement(kGenH); }
  static GroupElement Identity() { return GroupElement(1); }

 private:
  uint64_t v_ = 1;
};

/// \brief A Pedersen commitment C = g^m · h^r (perfectly hiding,
/// computationally binding under DL in the subgroup).
struct PedersenCommitment {
  GroupElement c;

  bool operator==(const PedersenCommitment& o) const { return c == o.c; }
};

/// \brief Commits to message scalar `m` with blinding `r`.
PedersenCommitment PedersenCommit(Scalar m, Scalar r);

/// \brief Checks an opening (m, r) against a commitment.
bool PedersenOpen(const PedersenCommitment& commitment, Scalar m, Scalar r);

}  // namespace pbc::crypto

#endif  // PBC_CRYPTO_GROUP_H_
