#include "crypto/auth.h"

namespace pbc::crypto {

namespace {
Bytes DigestToBytes(const Hash256& h) {
  return Bytes(h.bytes.begin(), h.bytes.end());
}
}  // namespace

Signature PrivateKey::Sign(const Bytes& message) const {
  return Signature{id_, HmacSha256(secret_, message)};
}

Signature PrivateKey::Sign(const Hash256& digest) const {
  return Sign(DigestToBytes(digest));
}

PrivateKey KeyRegistry::Register(IdentityId id) {
  return RegisterDeterministic(id, ++counter_ * 0x9e3779b97f4a7c15ULL);
}

PrivateKey KeyRegistry::RegisterDeterministic(IdentityId id, uint64_t seed) {
  Sha256 h;
  h.UpdateU64(seed);
  h.UpdateU64(id);
  h.Update(std::string("pbc-key-derivation"));
  Hash256 secret = h.Finalize();
  Bytes key(secret.bytes.begin(), secret.bytes.end());
  keys_[id] = key;
  return PrivateKey(id, key);
}

bool KeyRegistry::Verify(const Bytes& message, const Signature& sig) const {
  auto it = keys_.find(sig.signer);
  if (it == keys_.end()) return false;
  return HmacSha256(it->second, message) == sig.tag;
}

bool KeyRegistry::Verify(const Hash256& digest, const Signature& sig) const {
  return Verify(DigestToBytes(digest), sig);
}

}  // namespace pbc::crypto
