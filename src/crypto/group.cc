#include "crypto/group.h"

namespace pbc::crypto {

namespace {

inline uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(
      static_cast<unsigned __int128>(a) * b % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

}  // namespace

Scalar Scalar::operator+(Scalar o) const {
  uint64_t s = v_ + o.v_;  // < 2^61 + 2^61 < 2^64: no overflow
  if (s >= kGroupQ) s -= kGroupQ;
  return Scalar(s);
}

Scalar Scalar::operator-(Scalar o) const {
  return *this + o.Neg();
}

Scalar Scalar::operator*(Scalar o) const {
  return Scalar(MulMod(v_, o.v_, kGroupQ));
}

Scalar Scalar::Neg() const {
  return Scalar(v_ == 0 ? 0 : kGroupQ - v_);
}

Scalar Scalar::Random(Rng* rng) { return Scalar(rng->NextU64(kGroupQ)); }

Scalar Scalar::FromHash(const Hash256& h) { return Scalar(h.ToU64()); }

GroupElement GroupElement::operator*(GroupElement o) const {
  return GroupElement(MulMod(v_, o.v_, kGroupP));
}

GroupElement GroupElement::Inverse() const {
  return GroupElement(PowMod(v_, kGroupP - 2, kGroupP));
}

GroupElement GroupElement::Pow(Scalar e) const {
  return GroupElement(PowMod(v_, e.value(), kGroupP));
}

PedersenCommitment PedersenCommit(Scalar m, Scalar r) {
  return PedersenCommitment{GroupElement::G().Pow(m) *
                            GroupElement::H().Pow(r)};
}

bool PedersenOpen(const PedersenCommitment& commitment, Scalar m, Scalar r) {
  return PedersenCommit(m, r) == commitment;
}

}  // namespace pbc::crypto
