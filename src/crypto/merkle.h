// Binary Merkle trees over transaction digests: block headers commit to the
// transaction set, and inclusion proofs let light participants (e.g. private
// data collection members) verify membership without the full block.
#ifndef PBC_CRYPTO_MERKLE_H_
#define PBC_CRYPTO_MERKLE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "crypto/sha256.h"

namespace pbc::crypto {

/// \brief One step of a Merkle inclusion proof.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_is_left = false;
};

/// \brief Inclusion proof for a leaf at a given index.
struct MerkleProof {
  size_t leaf_index = 0;
  std::vector<MerkleStep> path;
};

/// \brief A binary Merkle tree with domain-separated leaf/node hashing.
///
/// Leaves are hashed as H(0x00 || leaf) and interior nodes as
/// H(0x01 || left || right) to prevent second-preimage splices. An odd
/// node at any level is promoted (Bitcoin-style duplication is avoided
/// since it admits mutation attacks).
class MerkleTree {
 public:
  /// Builds a tree over the given leaf digests. Empty input yields a
  /// zero root.
  explicit MerkleTree(const std::vector<Hash256>& leaves);

  const Hash256& root() const { return root_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Produces an inclusion proof for the leaf at `index`.
  Result<MerkleProof> Prove(size_t index) const;

  /// Verifies that `leaf` is included under `root` via `proof`.
  static bool Verify(const Hash256& root, const Hash256& leaf,
                     const MerkleProof& proof);

  /// Hashes a raw leaf payload with leaf domain separation.
  static Hash256 HashLeaf(const Bytes& payload);
  static Hash256 HashLeaf(const Hash256& digest);

 private:
  static Hash256 HashNode(const Hash256& left, const Hash256& right);

  size_t num_leaves_;
  // levels_[0] = leaf digests (domain separated); last level = root.
  std::vector<std::vector<Hash256>> levels_;
  Hash256 root_;
};

}  // namespace pbc::crypto

#endif  // PBC_CRYPTO_MERKLE_H_
