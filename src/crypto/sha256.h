// From-scratch SHA-256 (FIPS 180-4). The framework's content addressing,
// block chaining, Merkle trees, HMAC authenticators, and Fiat–Shamir
// challenges are all built on this single primitive.
#ifndef PBC_CRYPTO_SHA256_H_
#define PBC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace pbc::crypto {

/// \brief A 32-byte SHA-256 digest, usable as a map key.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256& o) const { return bytes == o.bytes; }
  bool operator!=(const Hash256& o) const { return bytes != o.bytes; }
  bool operator<(const Hash256& o) const { return bytes < o.bytes; }

  bool IsZero() const;
  std::string ToHex() const;
  /// First 8 hex chars; convenient for logs.
  std::string ToShortHex() const;
  /// First 8 bytes interpreted little-endian (for cheap bucketing).
  uint64_t ToU64() const;

  static Hash256 Zero() { return Hash256{}; }
};

/// \brief Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(const std::string& data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }
  void Update(const Hash256& h) { Update(h.bytes.data(), h.bytes.size()); }
  void UpdateU64(uint64_t v);

  /// Finalizes and returns the digest. The hasher must not be reused after.
  Hash256 Finalize();

  /// One-shot helpers.
  static Hash256 Digest(const Bytes& data);
  static Hash256 Digest(const std::string& data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buffer_{};
  size_t buffer_len_ = 0;
};

/// \brief HMAC-SHA256 (RFC 2104).
Hash256 HmacSha256(const Bytes& key, const Bytes& message);

struct Hash256Hasher {
  size_t operator()(const Hash256& h) const {
    // Digest bytes are already uniform; fold the first 8.
    size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | h.bytes[i];
    return v;
  }
};

}  // namespace pbc::crypto

#endif  // PBC_CRYPTO_SHA256_H_
