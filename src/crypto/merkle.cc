#include "crypto/merkle.h"

namespace pbc::crypto {

Hash256 MerkleTree::HashLeaf(const Bytes& payload) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(&tag, 1);
  h.Update(payload);
  return h.Finalize();
}

Hash256 MerkleTree::HashLeaf(const Hash256& digest) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(&tag, 1);
  h.Update(digest);
  return h.Finalize();
}

Hash256 MerkleTree::HashNode(const Hash256& left, const Hash256& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(left);
  h.Update(right);
  return h.Finalize();
}

MerkleTree::MerkleTree(const std::vector<Hash256>& leaves)
    : num_leaves_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Hash256::Zero();
    return;
  }
  std::vector<Hash256> level;
  level.reserve(leaves.size());
  for (const auto& l : leaves) level.push_back(HashLeaf(l));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(HashNode(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

Result<MerkleProof> MerkleTree::Prove(size_t index) const {
  if (index >= num_leaves_) {
    return Status::InvalidArgument("merkle proof index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    if (pos % 2 == 0) {
      if (pos + 1 < nodes.size()) {
        proof.path.push_back({nodes[pos + 1], /*sibling_is_left=*/false});
        pos /= 2;
      } else {
        // Promoted node: no sibling at this level; position carries up.
        pos = (nodes.size() + 1) / 2 - 1;
      }
    } else {
      proof.path.push_back({nodes[pos - 1], /*sibling_is_left=*/true});
      pos /= 2;
    }
  }
  return proof;
}

bool MerkleTree::Verify(const Hash256& root, const Hash256& leaf,
                        const MerkleProof& proof) {
  Hash256 acc = HashLeaf(leaf);
  for (const auto& step : proof.path) {
    acc = step.sibling_is_left ? HashNode(step.sibling, acc)
                               : HashNode(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace pbc::crypto
