#include "common/bytes.h"

namespace pbc {

Bytes ToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string ToString(const Bytes& b) { return std::string(b.begin(), b.end()); }

std::string HexEncode(const uint8_t* data, size_t len) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

void Append(Bytes* dst, const Bytes& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void AppendU64(Bytes* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back((v >> (8 * i)) & 0xff);
}

void AppendU32(Bytes* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst->push_back((v >> (8 * i)) & 0xff);
}

void AppendLengthPrefixed(Bytes* dst, const Bytes& src) {
  AppendU32(dst, static_cast<uint32_t>(src.size()));
  Append(dst, src);
}

void AppendLengthPrefixed(Bytes* dst, const std::string& src) {
  AppendU32(dst, static_cast<uint32_t>(src.size()));
  dst->insert(dst->end(), src.begin(), src.end());
}

}  // namespace pbc
