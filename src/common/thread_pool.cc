#include "common/thread_pool.h"

#include <atomic>

namespace pbc {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk work to limit queue churn for large n.
  size_t chunks = std::min(n, workers_.size() * 4);
  size_t per = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace pbc
