#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace pbc {

namespace {

// Which pool (if any) the current thread is a worker of, and its index.
// Lets Submit route to the local deque and Wait(group) switch to helping.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_worker = 0;

}  // namespace

size_t ThreadPool::DefaultParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(Options{num_threads == 0 ? 1 : num_threads, 0}) {}

ThreadPool::ThreadPool(const Options& options)
    : max_queued_(options.max_queued) {
  size_t n = options.num_threads == 0 ? DefaultParallelism()
                                      : options.num_threads;
  states_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    states_.push_back(std::make_unique<WorkerState>());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  cv_done_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SubmitJob(nullptr, nullptr, std::move(task));
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  SubmitJob(group, nullptr, std::move(task));
}

void ThreadPool::Submit(TaskGroup* group, CancellationToken token,
                        std::function<void()> task) {
  SubmitJob(group, token.flag_, std::move(task));
}

void ThreadPool::SubmitJob(TaskGroup* group,
                           std::shared_ptr<std::atomic<bool>> cancel,
                           std::function<void()> fn) {
  const bool on_worker = tl_pool == this;
  if (max_queued_ != 0 && !on_worker) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_relaxed) < max_queued_;
    });
  }
  if (group != nullptr) {
    group->pending_.fetch_add(1, std::memory_order_relaxed);
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  size_t target =
      on_worker ? tl_worker
                : submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
                      states_.size();
  {
    std::lock_guard<std::mutex> lock(states_[target]->mu);
    states_[target]->queue.push_back(
        Job{std::move(fn), group, std::move(cancel)});
  }
  uint64_t depth = queued_.fetch_add(1, std::memory_order_release) + 1;
  uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_queue_depth_.compare_exchange_weak(seen, depth)) {
  }
  {
    // Lock/unlock pairs the notify with a sleeper's predicate check so the
    // queued_ increment cannot slip between its check and its sleep.
    std::lock_guard<std::mutex> lock(mu_);
    cv_task_.notify_one();
  }
}

bool ThreadPool::TryGetJob(size_t self, Job* out) {
  {
    // Owner takes the newest job (LIFO): nested fan-out (e.g. shrink
    // probes submitted from inside a sweep cell) runs depth-first.
    WorkerState& mine = *states_[self];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.queue.empty()) {
      *out = std::move(mine.queue.back());
      mine.queue.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t k = 1; k < states_.size(); ++k) {
    // Thieves take the oldest job (FIFO): coarse outer-level work moves
    // to idle workers, fine nested work stays local.
    WorkerState& victim = *states_[(self + k) % states_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.queue.empty()) {
      *out = std::move(victim.queue.front());
      victim.queue.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      states_[self]->steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::Execute(size_t self, Job* job) {
  if (max_queued_ != 0) {
    // A queue slot freed; a bounded Submit may be blocked on it.
    std::lock_guard<std::mutex> lock(mu_);
    cv_done_.notify_all();
  }
  const bool skip =
      job->cancel != nullptr && job->cancel->load(std::memory_order_acquire);
  if (skip) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else {
    job->fn();
    states_[self]->jobs_run.fetch_add(1, std::memory_order_relaxed);
  }
  FinishJob(*job);
}

void ThreadPool::FinishJob(const Job& job) {
  bool group_done =
      job.group != nullptr &&
      job.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  bool all_done = in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  if (group_done || all_done) {
    std::lock_guard<std::mutex> lock(mu_);
    cv_done_.notify_all();
    // Helping waiters sleep on cv_task_; a group completing is also a
    // wake-worthy event for them.
    cv_task_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  tl_pool = this;
  tl_worker = index;
  for (;;) {
    Job job;
    if (TryGetJob(index, &job)) {
      Execute(index, &job);
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_task_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::Wait(TaskGroup* group) {
  if (tl_pool == this) {
    // Helping wait: run other queued jobs until the group drains, so a
    // job that fans out sub-jobs on its own pool cannot deadlock.
    size_t self = tl_worker;
    while (group->pending_.load(std::memory_order_acquire) > 0) {
      Job job;
      if (TryGetJob(self, &job)) {
        Execute(self, &job);
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this, group] {
        return group->pending_.load(std::memory_order_acquire) == 0 ||
               queued_.load(std::memory_order_acquire) > 0;
      });
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [group] {
    return group->pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk work to limit queue churn for large n; a few chunks per worker
  // keeps stealing effective when chunk costs are uneven.
  size_t chunks = std::min(n, num_threads() * 4);
  size_t per = (n + chunks - 1) / chunks;
  TaskGroup group;
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per;
    size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    Submit(&group, [begin, end, &fn, &err_mu, &first_error] {
      try {
        for (size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  Wait(&group);
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.jobs_per_worker.reserve(states_.size());
  s.steals_per_worker.reserve(states_.size());
  for (const auto& w : states_) {
    uint64_t run = w->jobs_run.load(std::memory_order_relaxed);
    uint64_t stolen = w->steals.load(std::memory_order_relaxed);
    s.jobs_per_worker.push_back(run);
    s.steals_per_worker.push_back(stolen);
    s.jobs_run += run;
    s.steals += stolen;
  }
  return s;
}

}  // namespace pbc
