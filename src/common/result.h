// Arrow-style Result<T>: a value or a Status.
#ifndef PBC_COMMON_RESULT_H_
#define PBC_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace pbc {

/// \brief Holds either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`: functions that can fail return
/// `Result<T>` instead of throwing; callers use `ok()` /
/// `ValueOrDie()` / `status()`, or `PBC_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  /// Alias matching arrow::Result vocabulary.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// The value if present, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// Evaluates `rexpr` (a Result<T>); on failure returns its status, on
/// success binds the value to `lhs`.
#define PBC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr)   \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define PBC_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define PBC_ASSIGN_OR_RETURN_NAME(x, y) PBC_ASSIGN_OR_RETURN_CONCAT(x, y)
#define PBC_ASSIGN_OR_RETURN(lhs, rexpr) \
  PBC_ASSIGN_OR_RETURN_IMPL(             \
      PBC_ASSIGN_OR_RETURN_NAME(_pbc_result_, __LINE__), lhs, rexpr)

}  // namespace pbc

#endif  // PBC_COMMON_RESULT_H_
