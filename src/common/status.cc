#include "common/status.h"

namespace pbc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace pbc
