// Seeded deterministic RNG used everywhere (simulator, workloads, tests).
#ifndef PBC_COMMON_RNG_H_
#define PBC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace pbc {

/// \brief Deterministic random source.
///
/// A run of the simulator is a pure function of (config, seed); all
/// randomness flows through explicitly seeded `Rng` instances so that any
/// failure found by a property test is replayable from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, n). Safe for n == 0: returns 0 without consuming
  /// randomness. (Previously `n - 1` wrapped to UINT64_MAX, which is
  /// undefined-range behavior for uniform_int_distribution; callers that
  /// can legitimately pass 0 include zero timeout configs in raft/paxos,
  /// zero-jitter links, and empty Zipfian/workload domains.)
  uint64_t NextU64(uint64_t n) {
    if (n == 0) return 0;
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  uint64_t NextU64() {
    return std::uniform_int_distribution<uint64_t>()(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Zipfian distribution over [0, n) with skew `theta` (0 = uniform).
///
/// Standard YCSB-style generator; higher theta concentrates mass on low
/// ranks, which workload generators map to "hot" keys.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta);

  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
};

}  // namespace pbc

#endif  // PBC_COMMON_RNG_H_
