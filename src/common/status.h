// Arrow/RocksDB-style Status for error handling without exceptions.
#ifndef PBC_COMMON_STATUS_H_
#define PBC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pbc {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kConflict,          ///< MVCC / lock conflict; transaction must abort.
  kAborted,           ///< Transaction aborted by protocol logic.
  kCorruption,        ///< Ledger or proof integrity check failed.
  kPermissionDenied,  ///< Caller lacks access to a view/collection/channel.
  kUnavailable,       ///< Quorum unreachable / leader unknown.
  kTimedOut,
  kNotImplemented,
  kInternal,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and is the only
/// error-reporting mechanism on protocol hot paths; Byzantine-triggered
/// validation failures are reported as values, never as exceptions.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Conflict(std::string m) {
    return Status(StatusCode::kConflict, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status PermissionDenied(std::string m) {
    return Status(StatusCode::kPermissionDenied, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status NotImplemented(std::string m) {
    return Status(StatusCode::kNotImplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }

  /// Full "Code: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define PBC_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::pbc::Status _s = (expr);           \
    if (!_s.ok()) return _s;             \
  } while (0)

}  // namespace pbc

#endif  // PBC_COMMON_STATUS_H_
