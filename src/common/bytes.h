// Byte-vector utilities shared across crypto, ledger, and protocols.
#ifndef PBC_COMMON_BYTES_H_
#define PBC_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pbc {

using Bytes = std::vector<uint8_t>;

/// \brief Converts a UTF-8 string to bytes.
Bytes ToBytes(const std::string& s);

/// \brief Converts bytes to a std::string (may contain NULs).
std::string ToString(const Bytes& b);

/// \brief Lowercase hex encoding.
std::string HexEncode(const Bytes& b);
std::string HexEncode(const uint8_t* data, size_t len);

/// \brief Appends `src` to `dst`.
void Append(Bytes* dst, const Bytes& src);

/// \brief Appends a 64-bit value little-endian.
void AppendU64(Bytes* dst, uint64_t v);

/// \brief Appends a 32-bit value little-endian.
void AppendU32(Bytes* dst, uint32_t v);

/// \brief Appends a length-prefixed byte string (u32 length).
void AppendLengthPrefixed(Bytes* dst, const Bytes& src);
void AppendLengthPrefixed(Bytes* dst, const std::string& src);

}  // namespace pbc

#endif  // PBC_COMMON_BYTES_H_
