#include "common/rng.h"

#include <cmath>

namespace pbc {

Zipfian::Zipfian(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double Zipfian::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

uint64_t Zipfian::Next(Rng* rng) {
  if (theta_ <= 1e-9) return rng->NextU64(n_);
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace pbc
