// Work-stealing job scheduler used by the parallel execution engines: the
// OXII / XOV validation pipelines, the src/check seed-sweep runner, and the
// bench harness. Protocol logic itself runs single-threaded inside one
// simulator; the pool only ever parallelizes *independent* deterministic
// work items (transactions in a block, whole simulations in a sweep).
//
// Design (DESIGN.md §9):
//  * one deque per worker; owners pop newest-first from the back, idle
//    workers steal oldest-first from the front of a victim's deque
//    (opposite ends, so owner and thief rarely contend, and coarse
//    outer-level jobs migrate while fine nested jobs stay local);
//  * external submissions round-robin across the worker deques; worker
//    submissions go to the submitter's own deque (locality for nested
//    fan-out);
//  * TaskGroup + Wait(group) give a *helping* barrier: a worker that waits
//    on a group executes other queued jobs instead of blocking, which is
//    what makes nested ParallelFor / nested Submit deadlock-free;
//  * CancellationToken gives cooperative cancellation: a job submitted
//    with a token is skipped (and counted) if the token was cancelled
//    before it started; long jobs may also poll the token themselves;
//  * Options::max_queued bounds not-yet-started jobs: Submit from a
//    non-worker thread blocks until the queue drains below the bound
//    (backpressure for producers that enqueue faster than workers drain).
//
// The scheduler never reorders *results* — callers that need deterministic
// output index their jobs and merge in index order (see check/runner.cc).
#ifndef PBC_COMMON_THREAD_POOL_H_
#define PBC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pbc {

/// \brief Shared cancellation flag. Copies observe the same flag; Cancel()
/// is sticky. Jobs submitted with a token are skipped if it is cancelled
/// before they start; running jobs may poll cancelled() cooperatively.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  friend class ThreadPool;
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Counts outstanding jobs for one logical batch, so independent
/// batches can Wait() without a pool-wide barrier. Not copyable; must
/// outlive every job submitted against it.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  size_t pending() const { return pending_.load(std::memory_order_acquire); }

 private:
  friend class ThreadPool;
  std::atomic<size_t> pending_{0};
};

class ThreadPool {
 public:
  struct Options {
    /// Worker threads; 0 = DefaultParallelism().
    size_t num_threads = 0;
    /// Bound on not-yet-started jobs; 0 = unbounded. Only submissions
    /// from non-worker threads block (a worker blocking on its own
    /// pool's backpressure would deadlock).
    size_t max_queued = 0;
  };

  /// Scheduler counters, aggregated and per worker. `steals` counts jobs
  /// a worker took from another worker's deque; `cancelled` counts jobs
  /// skipped because their token was cancelled before they started.
  struct Stats {
    uint64_t jobs_run = 0;
    uint64_t steals = 0;
    uint64_t cancelled = 0;
    uint64_t max_queue_depth = 0;
    std::vector<uint64_t> jobs_per_worker;
    std::vector<uint64_t> steals_per_worker;
  };

  /// Legacy constructor: `num_threads` workers (0 coerces to 1, matching
  /// the original fixed pool), unbounded queue.
  explicit ThreadPool(size_t num_threads);
  explicit ThreadPool(const Options& options);

  /// Drains every queued job, then joins the workers. Jobs queued at
  /// destruction time still run (cancelled ones are skipped as usual).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Exceptions escaping a plain-Submit task terminate
  /// (as with std::thread); use SubmitWithFuture or ParallelFor for
  /// propagation.
  void Submit(std::function<void()> task);

  /// Enqueues a task counted against `group` (may be nullptr) and guarded
  /// by `token`: if the token is cancelled before the task starts, the
  /// task body is skipped but the group still completes.
  void Submit(TaskGroup* group, std::function<void()> task);
  void Submit(TaskGroup* group, CancellationToken token,
              std::function<void()> task);

  /// Enqueues `fn` and returns a future carrying its result or exception.
  template <typename F>
  auto SubmitWithFuture(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> fut = task->get_future();
    Submit([task] { (*task)(); });
    return fut;
  }

  /// Blocks until every job in the pool has finished. Must not be called
  /// from a worker thread (the calling job can never finish while it
  /// waits for itself) — use Wait(group) there.
  void Wait();

  /// Blocks until `group` has no pending jobs. Safe from worker threads:
  /// a waiting worker *helps*, executing other queued jobs until the
  /// group drains, so nested fan-out cannot deadlock.
  void Wait(TaskGroup* group);

  /// Runs `fn(i)` for i in [0, n) across the pool and waits. Nestable:
  /// may be called from inside a pool job. If any invocation throws, the
  /// first exception (by completion order) is rethrown after all chunks
  /// finish.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// Snapshot of the scheduler counters. Callable concurrently with
  /// running jobs (counters are atomics; values are monotonic).
  Stats stats() const;

  /// std::thread::hardware_concurrency(), or 2 when unknown.
  static size_t DefaultParallelism();

 private:
  struct Job {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    std::shared_ptr<std::atomic<bool>> cancel;  // null = not cancellable
  };

  // Cache-line sized so per-worker counters don't false-share.
  struct alignas(64) WorkerState {
    std::mutex mu;
    std::deque<Job> queue;
    std::atomic<uint64_t> jobs_run{0};
    std::atomic<uint64_t> steals{0};
  };

  void SubmitJob(TaskGroup* group, std::shared_ptr<std::atomic<bool>> cancel,
                 std::function<void()> fn);
  bool TryGetJob(size_t self, Job* out);
  void Execute(size_t self, Job* job);
  void FinishJob(const Job& job);
  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable cv_task_;  ///< workers sleep here when idle
  std::condition_variable cv_done_;  ///< Wait()ers and bounded Submit block
  std::atomic<size_t> queued_{0};     ///< enqueued, not yet claimed
  std::atomic<size_t> in_flight_{0};  ///< enqueued or running
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<size_t> submit_cursor_{0};
  size_t max_queued_ = 0;
  bool stop_ = false;
};

}  // namespace pbc

#endif  // PBC_COMMON_THREAD_POOL_H_
