// Fixed-size thread pool used by parallel execution engines (OXII / XOV
// validation pipelines). Protocol logic itself runs single-threaded in the
// simulator; the pool only parallelizes deterministic transaction execution.
#ifndef PBC_COMMON_THREAD_POOL_H_
#define PBC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pbc {

/// \brief A minimal fixed-size worker pool with a Wait() barrier.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace pbc

#endif  // PBC_COMMON_THREAD_POOL_H_
