// The transaction model shared by all architectures.
//
// Transactions are deterministic procedures over the KV store, expressed as
// a short op program. Determinism is what lets OX replicas execute
// sequentially and agree, and the declared access sets are what
// ParBlockchain's orderers use to build dependency graphs without executing.
#ifndef PBC_TXN_TRANSACTION_H_
#define PBC_TXN_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/sha256.h"
#include "store/kv_store.h"

namespace pbc::txn {

using TxnId = uint64_t;
using EnterpriseId = uint32_t;

/// \brief Operation kinds.
enum class OpCode {
  kRead,             ///< read `key`
  kWrite,            ///< blind write `value` to `key`
  kIncrement,        ///< read integer at `key` (default 0), add `delta`
  kTransferGuarded,  ///< move `delta` from `key` to `key2` if funds suffice
  kCompute,          ///< burn `delta` rounds of hashing (models contract cost)
};

/// \brief One operation of a transaction program.
struct Op {
  OpCode code;
  store::Key key;
  store::Key key2;  // kTransferGuarded destination
  store::Value value;
  int64_t delta = 0;

  static Op Read(store::Key k) { return {OpCode::kRead, std::move(k), "", "", 0}; }
  static Op Write(store::Key k, store::Value v) {
    return {OpCode::kWrite, std::move(k), "", std::move(v), 0};
  }
  static Op Increment(store::Key k, int64_t d) {
    return {OpCode::kIncrement, std::move(k), "", "", d};
  }
  static Op Transfer(store::Key from, store::Key to, int64_t amount) {
    return {OpCode::kTransferGuarded, std::move(from), std::move(to), "",
            amount};
  }
  static Op Compute(int64_t rounds) {
    return {OpCode::kCompute, "", "", "", rounds};
  }
};

/// \brief A client transaction.
struct Transaction {
  TxnId id = 0;
  uint32_t client = 0;
  /// Owning enterprise (Caper / ParBlockchain multi-enterprise routing).
  EnterpriseId enterprise = 0;
  /// True when the transaction spans enterprises (Caper cross-enterprise).
  bool cross_enterprise = false;
  std::vector<Op> ops;

  /// Keys this transaction may read / write, derived statically from ops.
  std::vector<store::Key> DeclaredReads() const;
  std::vector<store::Key> DeclaredWrites() const;

  /// Content digest used for ledger inclusion and signatures.
  crypto::Hash256 Digest() const;
};

/// \brief Read interface execution runs against (latest state or snapshot).
using Reader =
    std::function<Result<store::VersionedValue>(const store::Key&)>;

/// \brief Outcome of executing a transaction's program.
struct ExecResult {
  bool ok = true;  ///< false only on internal errors, not business no-ops
  std::vector<store::ReadAccess> reads;   ///< keys + versions observed
  store::WriteBatch writes;               ///< effects to apply
  int64_t compute_rounds = 0;             ///< total kCompute work performed
};

/// \brief Executes `txn` deterministically against `reader`.
///
/// Never mutates state itself; the caller decides when/whether to apply
/// `writes` (immediately in OX, after validation in XOV).
ExecResult Execute(const Transaction& txn, const Reader& reader);

/// \brief Reader over the latest committed state of a store.
Reader LatestReader(const store::KvStore* store);

/// \brief Reader over the state visible at `version`.
Reader SnapshotReader(const store::KvStore* store, store::Version version);

/// \brief Encodes an integer value for the store.
store::Value EncodeInt(int64_t v);
/// \brief Decodes an integer value; 0 for missing/invalid.
int64_t DecodeInt(const store::Value& v);

}  // namespace pbc::txn

#endif  // PBC_TXN_TRANSACTION_H_
