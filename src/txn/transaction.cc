#include "txn/transaction.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <set>

namespace pbc::txn {

namespace {

void CollectAccess(const Transaction& txn, std::set<store::Key>* reads,
                   std::set<store::Key>* writes) {
  for (const auto& op : txn.ops) {
    switch (op.code) {
      case OpCode::kRead:
        reads->insert(op.key);
        break;
      case OpCode::kWrite:
        writes->insert(op.key);
        break;
      case OpCode::kIncrement:
        reads->insert(op.key);
        writes->insert(op.key);
        break;
      case OpCode::kTransferGuarded:
        reads->insert(op.key);
        reads->insert(op.key2);
        writes->insert(op.key);
        writes->insert(op.key2);
        break;
      case OpCode::kCompute:
        break;
    }
  }
}

}  // namespace

std::vector<store::Key> Transaction::DeclaredReads() const {
  std::set<store::Key> reads, writes;
  CollectAccess(*this, &reads, &writes);
  return {reads.begin(), reads.end()};
}

std::vector<store::Key> Transaction::DeclaredWrites() const {
  std::set<store::Key> reads, writes;
  CollectAccess(*this, &reads, &writes);
  return {writes.begin(), writes.end()};
}

crypto::Hash256 Transaction::Digest() const {
  crypto::Sha256 h;
  h.UpdateU64(id);
  h.UpdateU64(client);
  h.UpdateU64(enterprise);
  h.UpdateU64(cross_enterprise ? 1 : 0);
  for (const auto& op : ops) {
    h.UpdateU64(static_cast<uint64_t>(op.code));
    h.Update(op.key);
    h.Update(op.key2);
    h.Update(op.value);
    h.UpdateU64(static_cast<uint64_t>(op.delta));
  }
  return h.Finalize();
}

store::Value EncodeInt(int64_t v) { return std::to_string(v); }

int64_t DecodeInt(const store::Value& v) {
  int64_t out = 0;
  std::from_chars(v.data(), v.data() + v.size(), out);
  return out;
}

ExecResult Execute(const Transaction& txn, const Reader& reader) {
  ExecResult result;
  // Uncommitted effects visible to later ops of the same transaction.
  std::map<store::Key, store::Value> local;
  std::set<store::Key> read_recorded;

  auto read = [&](const store::Key& key) -> store::Value {
    auto local_it = local.find(key);
    if (local_it != local.end()) {
      // Still record the external version on first touch so conflict
      // detection sees the read.
      if (read_recorded.insert(key).second) {
        auto r = reader(key);
        result.reads.push_back(
            {key, r.ok() ? r.ValueOrDie().version : store::kNeverWritten});
      }
      return local_it->second;
    }
    auto r = reader(key);
    if (read_recorded.insert(key).second) {
      result.reads.push_back(
          {key, r.ok() ? r.ValueOrDie().version : store::kNeverWritten});
    }
    return r.ok() ? r.ValueOrDie().value : store::Value{};
  };

  auto write = [&](const store::Key& key, store::Value value) {
    local[key] = value;
    result.writes.Put(key, std::move(value));
  };

  for (const auto& op : txn.ops) {
    switch (op.code) {
      case OpCode::kRead:
        read(op.key);
        break;
      case OpCode::kWrite:
        write(op.key, op.value);
        break;
      case OpCode::kIncrement: {
        int64_t cur = DecodeInt(read(op.key));
        write(op.key, EncodeInt(cur + op.delta));
        break;
      }
      case OpCode::kTransferGuarded: {
        int64_t src = DecodeInt(read(op.key));
        int64_t dst = DecodeInt(read(op.key2));
        if (src >= op.delta) {
          write(op.key, EncodeInt(src - op.delta));
          write(op.key2, EncodeInt(dst + op.delta));
        }
        break;
      }
      case OpCode::kCompute: {
        // Burn real CPU deterministically: repeated hashing models smart
        // contract execution cost so parallel-execution speedups (E1) are
        // measurable in wall-clock terms.
        crypto::Hash256 acc;
        for (int64_t i = 0; i < op.delta; ++i) {
          crypto::Sha256 h;
          h.Update(acc);
          h.UpdateU64(static_cast<uint64_t>(i));
          acc = h.Finalize();
        }
        result.compute_rounds += op.delta;
        // Fold into writes? No — compute is pure; prevent the compiler
        // from eliding it by keeping a data dependence.
        if (acc.bytes[0] == 0xff && acc.bytes[1] == 0xff &&
            acc.bytes[2] == 0xff && acc.bytes[3] == 0xff) {
          result.compute_rounds += 1;  // astronomically unlikely
        }
        break;
      }
    }
  }
  // De-duplicate writes: last-writer-wins per key, preserving first-write
  // order for determinism.
  store::WriteBatch dedup;
  std::map<store::Key, size_t> seen;
  std::vector<store::WriteAccess> ordered;
  for (const auto& w : result.writes.writes()) {
    auto it = seen.find(w.key);
    if (it == seen.end()) {
      seen[w.key] = ordered.size();
      ordered.push_back(w);
    } else {
      ordered[it->second] = w;
    }
  }
  for (auto& w : ordered) dedup.Append(w);
  result.writes = std::move(dedup);
  return result;
}

Reader LatestReader(const store::KvStore* store) {
  return [store](const store::Key& key) { return store->Get(key); };
}

Reader SnapshotReader(const store::KvStore* store, store::Version version) {
  return [store, version](const store::Key& key) {
    return store->GetAt(key, version);
  };
}

}  // namespace pbc::txn
