#include "txn/executor.h"

#include <algorithm>
#include <mutex>

namespace pbc::txn {

BlockExecStats ExecuteSerial(const std::vector<Transaction>& txns,
                             store::KvStore* store) {
  BlockExecStats stats;
  for (const auto& t : txns) {
    ExecResult r = Execute(t, LatestReader(store));
    if (!r.writes.empty()) {
      store->ApplyBatch(r.writes, store->last_committed() + 1);
    }
    ++stats.executed;
  }
  stats.levels = txns.size();
  return stats;
}

BlockExecStats ExecuteDag(const std::vector<Transaction>& txns,
                          const DependencyGraph& graph, ThreadPool* pool,
                          store::KvStore* store) {
  BlockExecStats stats;
  stats.graph_edges = graph.num_edges();
  auto levels = graph.Levels();
  stats.levels = levels.size();

  for (const auto& level : levels) {
    // Execute the whole level in parallel against the current state.
    // Transactions within a level are conflict-free, so their reads cannot
    // observe each other's writes and their write sets are disjoint.
    std::vector<ExecResult> results(level.size());
    const store::KvStore* cstore = store;
    pool->ParallelFor(level.size(), [&](size_t i) {
      results[i] = Execute(txns[level[i]], LatestReader(cstore));
    });
    // Apply effects in block order for a deterministic version history.
    std::vector<size_t> order(level.size());
    for (size_t i = 0; i < level.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return level[a] < level[b]; });
    for (size_t i : order) {
      if (!results[i].writes.empty()) {
        store->ApplyBatch(results[i].writes, store->last_committed() + 1);
      }
      ++stats.executed;
    }
  }
  return stats;
}

}  // namespace pbc::txn
