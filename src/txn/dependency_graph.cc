#include "txn/dependency_graph.h"

#include <map>
#include <set>

namespace pbc::txn {

DependencyGraph DependencyGraph::Build(const std::vector<Transaction>& txns) {
  DependencyGraph g;
  size_t n = txns.size();
  g.adj_.assign(n, {});
  g.in_degree_.assign(n, 0);

  std::vector<std::set<store::Key>> reads(n), writes(n);
  for (size_t i = 0; i < n; ++i) {
    auto r = txns[i].DeclaredReads();
    auto w = txns[i].DeclaredWrites();
    reads[i].insert(r.begin(), r.end());
    writes[i].insert(w.begin(), w.end());
  }

  auto intersects = [](const std::set<store::Key>& a,
                       const std::set<store::Key>& b) {
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
      if (*ia < *ib) {
        ++ia;
      } else if (*ib < *ia) {
        ++ib;
      } else {
        return true;
      }
    }
    return false;
  };

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool conflict = intersects(writes[i], reads[j]) ||
                      intersects(reads[i], writes[j]) ||
                      intersects(writes[i], writes[j]);
      if (conflict) {
        g.adj_[i].push_back(j);
        ++g.in_degree_[j];
        ++g.num_edges_;
      }
    }
  }
  return g;
}

std::vector<std::vector<size_t>> DependencyGraph::Levels() const {
  size_t n = adj_.size();
  std::vector<size_t> level(n, 0);
  // Transactions were added in block order and all edges go forward, so a
  // single forward pass computes longest-path levels.
  size_t max_level = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j : adj_[i]) {
      level[j] = std::max(level[j], level[i] + 1);
      max_level = std::max(max_level, level[j]);
    }
  }
  std::vector<std::vector<size_t>> out(n == 0 ? 0 : max_level + 1);
  for (size_t i = 0; i < n; ++i) out[level[i]].push_back(i);
  return out;
}

size_t DependencyGraph::CriticalPathLength() const {
  auto levels = Levels();
  return levels.size();
}

}  // namespace pbc::txn
