// Block execution engines: the "execute" halves of OX and OXII.
#ifndef PBC_TXN_EXECUTOR_H_
#define PBC_TXN_EXECUTOR_H_

#include <vector>

#include "common/thread_pool.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"

namespace pbc::txn {

/// \brief Per-block execution statistics.
struct BlockExecStats {
  size_t executed = 0;
  size_t levels = 0;      ///< DAG levels (1 for serial execution per txn)
  size_t graph_edges = 0; ///< conflict edges (OXII only)
};

/// \brief Executes every transaction sequentially in block order and applies
/// effects immediately (the OX architecture's execution phase).
///
/// `base_version` is the last committed version; transaction i commits at
/// base_version + i + 1.
BlockExecStats ExecuteSerial(const std::vector<Transaction>& txns,
                             store::KvStore* store);

/// \brief OXII execution: builds/uses a dependency graph and executes each
/// level in parallel on `pool`, applying each level's effects before the
/// next level starts. Conflicting transactions observe each other's writes
/// exactly as in serial order, so the final state equals ExecuteSerial's.
BlockExecStats ExecuteDag(const std::vector<Transaction>& txns,
                          const DependencyGraph& graph, ThreadPool* pool,
                          store::KvStore* store);

}  // namespace pbc::txn

#endif  // PBC_TXN_EXECUTOR_H_
