// Transaction dependency graphs (ParBlockchain's OXII core mechanism).
//
// Given an ordered block of transactions with declared access sets, orderers
// build a DAG whose edges capture conflicts (W→R, R→W, W→W on a shared key,
// directed from the earlier transaction to the later one). Executors then
// run non-conflicting transactions in parallel while the DAG's edges force
// conflicting ones to respect the agreed total order.
#ifndef PBC_TXN_DEPENDENCY_GRAPH_H_
#define PBC_TXN_DEPENDENCY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "txn/transaction.h"

namespace pbc::txn {

/// \brief Conflict DAG over one block's transactions (indices into the
/// block's transaction vector).
class DependencyGraph {
 public:
  /// Builds the graph from declared read/write sets (no execution needed —
  /// exactly what ParBlockchain's orderers do during the order phase).
  static DependencyGraph Build(const std::vector<Transaction>& txns);

  size_t num_txns() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Successors of transaction `i` (transactions that must wait for i).
  const std::vector<size_t>& Successors(size_t i) const { return adj_[i]; }
  /// Number of unmet dependencies of transaction `i`.
  size_t InDegree(size_t i) const { return in_degree_[i]; }

  /// Antichain decomposition: level k holds every transaction whose longest
  /// dependency chain has length k. Transactions within a level are
  /// mutually conflict-free and can execute in parallel.
  std::vector<std::vector<size_t>> Levels() const;

  /// Length of the longest dependency chain (the parallel critical path).
  size_t CriticalPathLength() const;

 private:
  std::vector<std::vector<size_t>> adj_;
  std::vector<size_t> in_degree_;
  size_t num_edges_ = 0;
};

}  // namespace pbc::txn

#endif  // PBC_TXN_DEPENDENCY_GRAPH_H_
