#include "confidential/atomic_swap.h"

namespace pbc::confidential {

void HtlcLedger::Mint(PartyId party, AssetAmount amount) {
  balances_[party] += amount;
}

AssetAmount HtlcLedger::BalanceOf(PartyId party) const {
  auto it = balances_.find(party);
  return it == balances_.end() ? 0 : it->second;
}

Result<uint64_t> HtlcLedger::Lock(PartyId sender, PartyId recipient,
                                  AssetAmount amount,
                                  const crypto::Hash256& hash_lock,
                                  uint64_t timeout) {
  if (amount <= 0) return Status::InvalidArgument("amount must be positive");
  if (BalanceOf(sender) < amount) {
    return Status::InvalidArgument("insufficient funds to lock");
  }
  if (timeout <= now_) {
    return Status::InvalidArgument("timeout must lie in the future");
  }
  balances_[sender] -= amount;
  Htlc contract;
  contract.id = next_id_++;
  contract.sender = sender;
  contract.recipient = recipient;
  contract.amount = amount;
  contract.hash_lock = hash_lock;
  contract.timeout = timeout;
  contracts_[contract.id] = contract;
  return contract.id;
}

Status HtlcLedger::Redeem(uint64_t id, PartyId redeemer,
                          const Bytes& preimage) {
  auto it = contracts_.find(id);
  if (it == contracts_.end()) return Status::NotFound("no such contract");
  Htlc& c = it->second;
  if (c.redeemed || c.refunded) {
    return Status::AlreadyExists("contract already settled");
  }
  if (redeemer != c.recipient) {
    return Status::PermissionDenied("only the recipient may redeem");
  }
  if (now_ >= c.timeout) {
    return Status::TimedOut("redeem window closed");
  }
  if (crypto::Sha256::Digest(preimage) != c.hash_lock) {
    return Status::Corruption("preimage does not match the hash lock");
  }
  c.redeemed = true;
  balances_[c.recipient] += c.amount;
  revealed_[id] = preimage;  // the preimage is now public on this chain
  return Status::OK();
}

Status HtlcLedger::Refund(uint64_t id, PartyId requester) {
  auto it = contracts_.find(id);
  if (it == contracts_.end()) return Status::NotFound("no such contract");
  Htlc& c = it->second;
  if (c.redeemed || c.refunded) {
    return Status::AlreadyExists("contract already settled");
  }
  if (requester != c.sender) {
    return Status::PermissionDenied("only the sender may refund");
  }
  if (now_ < c.timeout) {
    return Status::Unavailable("timeout has not passed yet");
  }
  c.refunded = true;
  balances_[c.sender] += c.amount;
  return Status::OK();
}

const Htlc* HtlcLedger::contract(uint64_t id) const {
  auto it = contracts_.find(id);
  return it == contracts_.end() ? nullptr : &it->second;
}

Result<Bytes> HtlcLedger::RevealedPreimage(uint64_t id) const {
  auto it = revealed_.find(id);
  if (it == revealed_.end()) {
    return Status::NotFound("no preimage revealed for this contract");
  }
  return it->second;
}

AtomicSwap::AtomicSwap(HtlcLedger* chain_a, HtlcLedger* chain_b,
                       Params params)
    : a_(chain_a), b_(chain_b), p_(params) {}

Status AtomicSwap::AliceLock(const Bytes& secret) {
  secret_ = secret;
  hash_lock_ = crypto::Sha256::Digest(secret);
  // Alice's lock must outlive Bob's by Δ so Bob can always redeem after
  // she reveals the secret.
  PBC_ASSIGN_OR_RETURN(
      contract_a_, a_->Lock(p_.alice, p_.bob, p_.amount_a, hash_lock_,
                            a_->now() + 2 * p_.delta));
  return Status::OK();
}

Status AtomicSwap::BobLock() {
  const Htlc* alices = a_->contract(contract_a_);
  if (alices == nullptr) return Status::NotFound("Alice has not locked");
  // Bob verifies the terms on chain A before committing his asset.
  if (alices->recipient != p_.bob || alices->amount != p_.amount_a) {
    return Status::InvalidArgument("chain-A contract terms mismatch");
  }
  if (alices->timeout < a_->now() + 2 * p_.delta) {
    return Status::InvalidArgument("chain-A timeout too tight for safety");
  }
  PBC_ASSIGN_OR_RETURN(
      contract_b_, b_->Lock(p_.bob, p_.alice, p_.amount_b,
                            alices->hash_lock, b_->now() + p_.delta));
  return Status::OK();
}

Status AtomicSwap::AliceRedeem() {
  return b_->Redeem(contract_b_, p_.alice, secret_);
}

Status AtomicSwap::BobRedeem() {
  // Bob does NOT know Alice's secret; he learns it from chain B, where her
  // redeem published it.
  PBC_ASSIGN_OR_RETURN(Bytes preimage, b_->RevealedPreimage(contract_b_));
  return a_->Redeem(contract_a_, p_.bob, preimage);
}

Status AtomicSwap::RefundAll() {
  Status sa = contract_a_ == 0 ? Status::OK() : a_->Refund(contract_a_, p_.alice);
  Status sb = contract_b_ == 0 ? Status::OK() : b_->Refund(contract_b_, p_.bob);
  if (!sa.ok() && sa.code() != StatusCode::kAlreadyExists) return sa;
  if (!sb.ok() && sb.code() != StatusCode::kAlreadyExists) return sb;
  return Status::OK();
}

}  // namespace pbc::confidential
