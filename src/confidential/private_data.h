// Private data collections [6] within a Fabric channel (§2.3.1).
//
// A collection names the subset of channel members allowed to hold some
// private data. The data itself lives in a private database replicated
// only on member peers; what goes on the channel ledger — visible to every
// channel member — is a salted hash of each private value. Non-members can
// therefore validate state transitions (and detect equivocation) without
// learning the data; members can prove a value matches the on-ledger hash.
#ifndef PBC_CONFIDENTIAL_PRIVATE_DATA_H_
#define PBC_CONFIDENTIAL_PRIVATE_DATA_H_

#include <map>
#include <set>
#include <string>

#include "common/result.h"
#include "crypto/sha256.h"
#include "ledger/chain.h"
#include "store/kv_store.h"
#include "txn/transaction.h"

namespace pbc::confidential {

using CollectionId = std::string;

/// \brief A channel with private data collections layered on top.
class PdcChannel {
 public:
  explicit PdcChannel(std::set<txn::EnterpriseId> members)
      : members_(std::move(members)) {}

  /// Defines a collection; members must be a subset of channel members.
  Status DefineCollection(const CollectionId& id,
                          std::set<txn::EnterpriseId> members);

  /// Writes private data on behalf of `writer`: members' private stores
  /// get the plaintext, the public channel ledger gets H(key‖value‖salt).
  /// `salt` prevents dictionary attacks on low-entropy values.
  Status PutPrivate(const CollectionId& collection, txn::EnterpriseId writer,
                    const store::Key& key, const store::Value& value,
                    uint64_t salt);

  /// Reads private data; PermissionDenied for non-members. This models a
  /// non-member peer simply not having the private DB at all.
  Result<store::VersionedValue> GetPrivate(const CollectionId& collection,
                                           txn::EnterpriseId reader,
                                           const store::Key& key) const;

  /// The on-ledger hash for (collection, key): readable by every channel
  /// member — this is what non-members use for validation.
  Result<crypto::Hash256> GetOnLedgerHash(txn::EnterpriseId reader,
                                          const CollectionId& collection,
                                          const store::Key& key) const;

  /// Verifies that a claimed (value, salt) opening matches the on-ledger
  /// hash — how a member proves data to an auditor without the ledger
  /// carrying plaintext.
  Result<bool> VerifyOpening(txn::EnterpriseId reader,
                             const CollectionId& collection,
                             const store::Key& key, const store::Value& value,
                             uint64_t salt) const;

  /// Regular public channel state write (visible to all members).
  Status PutPublic(txn::EnterpriseId writer, const store::Key& key,
                   const store::Value& value);
  Result<store::VersionedValue> GetPublic(txn::EnterpriseId reader,
                                          const store::Key& key) const;

  static crypto::Hash256 HashPrivate(const store::Key& key,
                                     const store::Value& value,
                                     uint64_t salt);

  bool IsChannelMember(txn::EnterpriseId e) const {
    return members_.count(e) > 0;
  }
  bool IsCollectionMember(const CollectionId& c, txn::EnterpriseId e) const;

  /// Number of peers storing plaintext for a collection (replication /
  /// confidentiality trade-off metric).
  Result<size_t> CollectionReplication(const CollectionId& c) const;

 private:
  struct Collection {
    std::set<txn::EnterpriseId> members;
    // One private store per member enterprise (each member's peers hold a
    // replica; modeled as one store per member).
    std::map<txn::EnterpriseId, store::KvStore> stores;
  };

  std::set<txn::EnterpriseId> members_;
  std::map<CollectionId, Collection> collections_;
  store::KvStore public_store_;  ///< shared channel state incl. hashes
};

}  // namespace pbc::confidential

#endif  // PBC_CONFIDENTIAL_PRIVATE_DATA_H_
