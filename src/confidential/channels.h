// Multi-channel Hyperledger Fabric [16] (§2.3.1, §2.3.4).
//
// A channel is an isolated ledger + state shared by its member enterprises;
// different channels share the ordering service but see nothing of each
// other's data. An enterprise may belong to several channels. Channels also
// act as shards: intra-channel transactions are cheap; transactions across
// two channels need an atomic-commit protocol (here: 2PC with the trusted
// ordering service as coordinator, the "trusted channel" variant of the
// paper's two options).
#ifndef PBC_CONFIDENTIAL_CHANNELS_H_
#define PBC_CONFIDENTIAL_CHANNELS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "ledger/chain.h"
#include "store/kv_store.h"
#include "txn/transaction.h"

namespace pbc::confidential {

using ChannelId = uint32_t;

/// \brief One channel: member set, ledger, and state.
class Channel {
 public:
  Channel(ChannelId id, std::set<txn::EnterpriseId> members)
      : id_(id), members_(std::move(members)) {}

  ChannelId id() const { return id_; }
  bool IsMember(txn::EnterpriseId e) const { return members_.count(e) > 0; }
  const std::set<txn::EnterpriseId>& members() const { return members_; }

  const ledger::Chain& chain() const { return chain_; }
  const store::KvStore& store() const { return store_; }

  /// Executes and commits a batch of transactions as one block.
  void CommitBlock(const std::vector<txn::Transaction>& txns);

  /// Number of replicas holding this channel's data (= member count):
  /// the replication-overhead metric for E5.
  size_t ReplicationFactor() const { return members_.size(); }

  store::LockTable* lock_table() { return &locks_; }
  store::KvStore* mutable_store() { return &store_; }

 private:
  ChannelId id_;
  std::set<txn::EnterpriseId> members_;
  ledger::Chain chain_;
  store::KvStore store_;
  store::LockTable locks_;
};

/// \brief The multi-channel system with a shared ordering service.
class ChannelSystem {
 public:
  /// Creates a channel; fails if the id exists.
  Status CreateChannel(ChannelId id, std::set<txn::EnterpriseId> members);

  /// Submits a transaction to a channel on behalf of an enterprise. The
  /// enterprise must be a member; the ordering service sequences it into
  /// the channel's next block (immediate, single-txn blocks here — batch
  /// shaping belongs to the architecture layer).
  Status Submit(ChannelId channel, txn::EnterpriseId submitter,
                txn::Transaction txn);

  /// Reads a key as an enterprise; PermissionDenied unless it is a member
  /// of the channel (confidentiality check).
  Result<store::VersionedValue> Read(ChannelId channel,
                                     txn::EnterpriseId reader,
                                     const store::Key& key) const;

  /// Atomic cross-channel transaction: `txn_a` commits on channel `a` and
  /// `txn_b` on channel `b`, or neither. Two-phase commit coordinated by
  /// the (trusted) ordering service: lock both write sets, then commit
  /// both. Fails with Conflict if locks cannot be acquired.
  Status SubmitCrossChannel(ChannelId a, txn::Transaction txn_a, ChannelId b,
                            txn::Transaction txn_b,
                            txn::EnterpriseId submitter);

  const Channel& channel(ChannelId id) const { return *channels_.at(id); }
  bool HasChannel(ChannelId id) const { return channels_.count(id) > 0; }
  size_t num_channels() const { return channels_.size(); }

  /// Channels an enterprise belongs to.
  std::vector<ChannelId> ChannelsOf(txn::EnterpriseId e) const;

  /// Total ledger copies an enterprise stores (sum over its channels of
  /// that channel's chain height) — the data-integration cost the survey
  /// attributes to channel proliferation.
  uint64_t LedgerBlocksStoredBy(txn::EnterpriseId e) const;

  uint64_t cross_channel_commits() const { return cross_channel_commits_; }
  uint64_t cross_channel_aborts() const { return cross_channel_aborts_; }

 private:
  std::map<ChannelId, std::unique_ptr<Channel>> channels_;
  uint64_t next_txn_marker_ = 1;
  uint64_t cross_channel_commits_ = 0;
  uint64_t cross_channel_aborts_ = 0;
};

}  // namespace pbc::confidential

#endif  // PBC_CONFIDENTIAL_CHANNELS_H_
