#include "confidential/caper.h"

namespace pbc::confidential {

void CaperEnterprise::ApplyInternal(const ledger::DagVertex& vertex) {
  view_.push_back(vertex);
  auto r = txn::Execute(vertex.txn, txn::LatestReader(&private_store_));
  if (!r.writes.empty()) {
    private_store_.ApplyBatch(r.writes, private_store_.last_committed() + 1);
  }
}

void CaperEnterprise::ApplyCross(const ledger::DagVertex& vertex) {
  view_.push_back(vertex);
  auto r = txn::Execute(vertex.txn, txn::LatestReader(&public_store_));
  if (!r.writes.empty()) {
    public_store_.ApplyBatch(r.writes, public_store_.last_committed() + 1);
  }
}

CaperSystem::CaperSystem(uint32_t num_enterprises)
    : dag_(num_enterprises), internal_orderers_(num_enterprises) {
  for (uint32_t e = 0; e < num_enterprises; ++e) {
    enterprises_.push_back(std::make_unique<CaperEnterprise>(e));
  }
}

void CaperSystem::SetInternalOrderer(txn::EnterpriseId enterprise,
                                     OrdererFn orderer) {
  internal_orderers_[enterprise] = std::move(orderer);
}

void CaperSystem::SetGlobalOrderer(OrdererFn orderer) {
  global_orderer_ = std::move(orderer);
}

std::string CaperSystem::PrivateKeyFor(txn::EnterpriseId e,
                                       const std::string& suffix) {
  return "ent" + std::to_string(e) + "/" + suffix;
}

std::string CaperSystem::SharedKey(const std::string& suffix) {
  return "shared/" + suffix;
}

bool CaperSystem::IsPrivateKeyOf(const store::Key& key,
                                 txn::EnterpriseId e) {
  return key.rfind("ent" + std::to_string(e) + "/", 0) == 0;
}

bool CaperSystem::IsSharedKey(const store::Key& key) {
  return key.rfind("shared/", 0) == 0;
}

Status CaperSystem::SubmitInternal(txn::EnterpriseId enterprise,
                                   txn::Transaction txn) {
  if (enterprise >= enterprises_.size()) {
    return Status::InvalidArgument("unknown enterprise");
  }
  for (const auto& key : txn.DeclaredReads()) {
    if (!IsPrivateKeyOf(key, enterprise)) {
      return Status::PermissionDenied(
          "internal transaction touches foreign or shared key: " + key);
    }
  }
  for (const auto& key : txn.DeclaredWrites()) {
    if (!IsPrivateKeyOf(key, enterprise)) {
      return Status::PermissionDenied(
          "internal transaction touches foreign or shared key: " + key);
    }
  }
  txn.enterprise = enterprise;
  txn.cross_enterprise = false;
  auto commit = [this, enterprise](txn::Transaction t) {
    CommitInternal(enterprise, std::move(t));
  };
  if (internal_orderers_[enterprise]) {
    internal_orderers_[enterprise](std::move(txn), commit);
  } else {
    commit(std::move(txn));
  }
  return Status::OK();
}

Status CaperSystem::SubmitCross(txn::Transaction txn) {
  for (const auto& key : txn.DeclaredReads()) {
    if (!IsSharedKey(key)) {
      return Status::PermissionDenied(
          "cross-enterprise transaction must touch shared keys only: " + key);
    }
  }
  for (const auto& key : txn.DeclaredWrites()) {
    if (!IsSharedKey(key)) {
      return Status::PermissionDenied(
          "cross-enterprise transaction must touch shared keys only: " + key);
    }
  }
  txn.cross_enterprise = true;
  auto commit = [this](txn::Transaction t) { CommitCross(std::move(t)); };
  if (global_orderer_) {
    global_orderer_(std::move(txn), commit);
  } else {
    commit(std::move(txn));
  }
  return Status::OK();
}

void CaperSystem::CommitInternal(txn::EnterpriseId enterprise,
                                 txn::Transaction txn) {
  auto hash = dag_.AppendInternal(enterprise, txn);
  if (!hash.ok()) return;
  const ledger::DagVertex& vertex = dag_.vertices().back();
  enterprises_[enterprise]->ApplyInternal(vertex);
  ++internal_committed_;
}

void CaperSystem::CommitCross(txn::Transaction txn) {
  auto hash = dag_.AppendCross(txn);
  if (!hash.ok()) return;
  const ledger::DagVertex& vertex = dag_.vertices().back();
  for (auto& e : enterprises_) e->ApplyCross(vertex);
  ++cross_committed_;
}

}  // namespace pbc::confidential
