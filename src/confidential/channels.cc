#include "confidential/channels.h"

namespace pbc::confidential {

void Channel::CommitBlock(const std::vector<txn::Transaction>& txns) {
  for (const auto& t : txns) {
    auto r = txn::Execute(t, txn::LatestReader(&store_));
    if (!r.writes.empty()) {
      store_.ApplyBatch(r.writes, store_.last_committed() + 1);
    }
  }
  ledger::Block block =
      ledger::Block::Make(chain_.height(), chain_.TipHash(), txns);
  Status s = chain_.Append(std::move(block));
  (void)s;
}

Status ChannelSystem::CreateChannel(ChannelId id,
                                    std::set<txn::EnterpriseId> members) {
  if (channels_.count(id) > 0) {
    return Status::AlreadyExists("channel exists");
  }
  if (members.empty()) {
    return Status::InvalidArgument("channel needs at least one member");
  }
  channels_[id] = std::make_unique<Channel>(id, std::move(members));
  return Status::OK();
}

Status ChannelSystem::Submit(ChannelId channel, txn::EnterpriseId submitter,
                             txn::Transaction txn) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return Status::NotFound("no such channel");
  if (!it->second->IsMember(submitter)) {
    return Status::PermissionDenied("submitter is not a channel member");
  }
  it->second->CommitBlock({std::move(txn)});
  return Status::OK();
}

Result<store::VersionedValue> ChannelSystem::Read(
    ChannelId channel, txn::EnterpriseId reader,
    const store::Key& key) const {
  auto it = channels_.find(channel);
  if (it == channels_.end()) return Status::NotFound("no such channel");
  if (!it->second->IsMember(reader)) {
    return Status::PermissionDenied(
        "enterprise is not a member of this channel");
  }
  return it->second->store().Get(key);
}

Status ChannelSystem::SubmitCrossChannel(ChannelId a, txn::Transaction txn_a,
                                         ChannelId b, txn::Transaction txn_b,
                                         txn::EnterpriseId submitter) {
  auto ia = channels_.find(a);
  auto ib = channels_.find(b);
  if (ia == channels_.end() || ib == channels_.end()) {
    return Status::NotFound("no such channel");
  }
  if (!ia->second->IsMember(submitter) || !ib->second->IsMember(submitter)) {
    ++cross_channel_aborts_;
    return Status::PermissionDenied(
        "submitter must be a member of both channels");
  }

  // Phase 1 (prepare): the coordinator locks both write sets.
  uint64_t marker = next_txn_marker_++;
  auto lock_all = [marker](Channel* ch, const txn::Transaction& t) {
    for (const auto& key : t.DeclaredWrites()) {
      if (!ch->lock_table()->LockExclusive(key, marker).ok()) return false;
    }
    for (const auto& key : t.DeclaredReads()) {
      if (!ch->lock_table()->LockShared(key, marker).ok()) return false;
    }
    return true;
  };
  bool prepared =
      lock_all(ia->second.get(), txn_a) && lock_all(ib->second.get(), txn_b);
  if (!prepared) {
    ia->second->lock_table()->UnlockAll(marker);
    ib->second->lock_table()->UnlockAll(marker);
    ++cross_channel_aborts_;
    return Status::Conflict("cross-channel 2PC prepare failed");
  }

  // Phase 2 (commit): both channels commit their halves atomically.
  ia->second->CommitBlock({std::move(txn_a)});
  ib->second->CommitBlock({std::move(txn_b)});
  ia->second->lock_table()->UnlockAll(marker);
  ib->second->lock_table()->UnlockAll(marker);
  ++cross_channel_commits_;
  return Status::OK();
}

std::vector<ChannelId> ChannelSystem::ChannelsOf(txn::EnterpriseId e) const {
  std::vector<ChannelId> out;
  for (const auto& [id, ch] : channels_) {
    if (ch->IsMember(e)) out.push_back(id);
  }
  return out;
}

uint64_t ChannelSystem::LedgerBlocksStoredBy(txn::EnterpriseId e) const {
  uint64_t total = 0;
  for (const auto& [id, ch] : channels_) {
    if (ch->IsMember(e)) total += ch->chain().height();
  }
  return total;
}

}  // namespace pbc::confidential
