#include "confidential/private_data.h"

namespace pbc::confidential {

crypto::Hash256 PdcChannel::HashPrivate(const store::Key& key,
                                        const store::Value& value,
                                        uint64_t salt) {
  crypto::Sha256 h;
  h.Update(std::string("pbc-pdc"));
  h.Update(key);
  h.Update(value);
  h.UpdateU64(salt);
  return h.Finalize();
}

Status PdcChannel::DefineCollection(const CollectionId& id,
                                    std::set<txn::EnterpriseId> members) {
  if (collections_.count(id) > 0) {
    return Status::AlreadyExists("collection exists: " + id);
  }
  for (txn::EnterpriseId e : members) {
    if (members_.count(e) == 0) {
      return Status::InvalidArgument(
          "collection member is not a channel member");
    }
  }
  if (members.empty()) {
    return Status::InvalidArgument("collection needs at least one member");
  }
  Collection col;
  col.members = members;
  for (txn::EnterpriseId e : members) col.stores[e];  // create stores
  collections_[id] = std::move(col);
  return Status::OK();
}

bool PdcChannel::IsCollectionMember(const CollectionId& c,
                                    txn::EnterpriseId e) const {
  auto it = collections_.find(c);
  return it != collections_.end() && it->second.members.count(e) > 0;
}

Status PdcChannel::PutPrivate(const CollectionId& collection,
                              txn::EnterpriseId writer, const store::Key& key,
                              const store::Value& value, uint64_t salt) {
  auto it = collections_.find(collection);
  if (it == collections_.end()) return Status::NotFound("no such collection");
  if (it->second.members.count(writer) == 0) {
    return Status::PermissionDenied("writer is not a collection member");
  }
  // Plaintext to every member's private store.
  for (auto& [member, kv] : it->second.stores) {
    store::WriteBatch batch;
    batch.Put(key, value);
    kv.ApplyBatch(batch, kv.last_committed() + 1);
  }
  // Salted hash onto the public channel state for everyone.
  crypto::Hash256 digest = HashPrivate(key, value, salt);
  store::WriteBatch pub;
  pub.Put("pdc/" + collection + "/" + key,
          std::string(digest.bytes.begin(), digest.bytes.end()));
  public_store_.ApplyBatch(pub, public_store_.last_committed() + 1);
  return Status::OK();
}

Result<store::VersionedValue> PdcChannel::GetPrivate(
    const CollectionId& collection, txn::EnterpriseId reader,
    const store::Key& key) const {
  auto it = collections_.find(collection);
  if (it == collections_.end()) return Status::NotFound("no such collection");
  if (it->second.members.count(reader) == 0) {
    return Status::PermissionDenied("reader is not a collection member");
  }
  return it->second.stores.at(reader).Get(key);
}

Result<crypto::Hash256> PdcChannel::GetOnLedgerHash(
    txn::EnterpriseId reader, const CollectionId& collection,
    const store::Key& key) const {
  if (members_.count(reader) == 0) {
    return Status::PermissionDenied("reader is not a channel member");
  }
  auto v = public_store_.Get("pdc/" + collection + "/" + key);
  if (!v.ok()) return v.status();
  const store::Value& raw = v.ValueOrDie().value;
  if (raw.size() != 32) return Status::Corruption("malformed on-ledger hash");
  crypto::Hash256 h;
  std::copy(raw.begin(), raw.end(), h.bytes.begin());
  return h;
}

Result<bool> PdcChannel::VerifyOpening(txn::EnterpriseId reader,
                                       const CollectionId& collection,
                                       const store::Key& key,
                                       const store::Value& value,
                                       uint64_t salt) const {
  PBC_ASSIGN_OR_RETURN(crypto::Hash256 on_ledger,
                       GetOnLedgerHash(reader, collection, key));
  return HashPrivate(key, value, salt) == on_ledger;
}

Status PdcChannel::PutPublic(txn::EnterpriseId writer, const store::Key& key,
                             const store::Value& value) {
  if (members_.count(writer) == 0) {
    return Status::PermissionDenied("writer is not a channel member");
  }
  store::WriteBatch batch;
  batch.Put(key, value);
  public_store_.ApplyBatch(batch, public_store_.last_committed() + 1);
  return Status::OK();
}

Result<store::VersionedValue> PdcChannel::GetPublic(
    txn::EnterpriseId reader, const store::Key& key) const {
  if (members_.count(reader) == 0) {
    return Status::PermissionDenied("reader is not a channel member");
  }
  return public_store_.Get(key);
}

Result<size_t> PdcChannel::CollectionReplication(const CollectionId& c) const {
  auto it = collections_.find(c);
  if (it == collections_.end()) return Status::NotFound("no such collection");
  return it->second.members.size();
}

}  // namespace pbc::confidential
