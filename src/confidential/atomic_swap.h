// Atomic cross-chain swaps via hash-time-locked contracts (HTLCs)
// (Herlihy [34], Interledger [58]) — the survey's §2.3.1 alternative to
// single-blockchain collaboration: "each enterprise can maintain its own
// independent disjoint blockchain and use techniques such as atomic
// cross-chain transactions or [the] Interledger protocol".
//
// The classic two-party swap: Alice holds assets on chain A, Bob on chain
// B. Alice picks secret s, locks her asset on A under H(s) with timeout
// 2Δ; Bob, seeing it, locks his asset on B under the same H(s) with
// timeout Δ. Alice redeems on B by revealing s (before Δ); Bob reuses the
// revealed s to redeem on A (before 2Δ). If anyone stalls, timeouts refund
// the locked assets — nobody can lose their asset AND the counter-asset.
//
// Each chain is an independent `HtlcLedger` with its own clock; the
// protocol is driven by the parties, exactly as in permissionless
// deployments. The survey's criticism — "such techniques are often costly
// [and] complex" — is quantified in bench E6's companion: two chains, four
// on-chain transactions, and a 2Δ worst-case latency per collaboration.
#ifndef PBC_CONFIDENTIAL_ATOMIC_SWAP_H_
#define PBC_CONFIDENTIAL_ATOMIC_SWAP_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "crypto/sha256.h"
#include "store/kv_store.h"

namespace pbc::confidential {

using PartyId = uint32_t;
using AssetAmount = int64_t;

/// \brief One hash-time-locked contract on a ledger.
struct Htlc {
  uint64_t id = 0;
  PartyId sender = 0;     ///< who locked the funds (refund recipient)
  PartyId recipient = 0;  ///< who may redeem with the preimage
  AssetAmount amount = 0;
  crypto::Hash256 hash_lock;  ///< H(secret)
  uint64_t timeout = 0;       ///< ledger time after which refund is allowed
  bool redeemed = false;
  bool refunded = false;
};

/// \brief An independent single-asset ledger with HTLC support and its own
/// logical clock.
class HtlcLedger {
 public:
  explicit HtlcLedger(std::string asset_name)
      : asset_(std::move(asset_name)) {}

  const std::string& asset() const { return asset_; }
  uint64_t now() const { return now_; }
  /// Advances the ledger clock (blocks being appended).
  void AdvanceTime(uint64_t ticks) { now_ += ticks; }

  void Mint(PartyId party, AssetAmount amount);
  AssetAmount BalanceOf(PartyId party) const;

  /// Locks `amount` of `sender`'s funds under `hash_lock` until `timeout`.
  /// Returns the contract id.
  Result<uint64_t> Lock(PartyId sender, PartyId recipient,
                        AssetAmount amount, const crypto::Hash256& hash_lock,
                        uint64_t timeout);

  /// Redeems contract `id` by presenting the preimage. Only the recipient
  /// may redeem; fails after the timeout. On success the revealed
  /// preimage becomes public on this ledger (observable via
  /// `RevealedPreimage`) — the property the swap protocol relies on.
  Status Redeem(uint64_t id, PartyId redeemer, const Bytes& preimage);

  /// Refunds contract `id` to its sender once the timeout has passed.
  Status Refund(uint64_t id, PartyId requester);

  const Htlc* contract(uint64_t id) const;
  /// The preimage revealed by a redeem of `id`, if any.
  Result<Bytes> RevealedPreimage(uint64_t id) const;

 private:
  std::string asset_;
  uint64_t now_ = 0;
  uint64_t next_id_ = 1;
  std::map<PartyId, AssetAmount> balances_;
  std::map<uint64_t, Htlc> contracts_;
  std::map<uint64_t, Bytes> revealed_;
};

/// \brief Drives the two-party swap protocol over two ledgers.
///
/// The coordinator is a convenience for tests/examples; each step is an
/// independent on-chain action either party could take alone, and any
/// party may stop cooperating at any point — the timeouts keep the
/// outcome atomic (both redeem or both refund).
class AtomicSwap {
 public:
  struct Params {
    PartyId alice, bob;
    AssetAmount amount_a, amount_b;  ///< what each party puts up
    uint64_t delta;                  ///< the timeout unit Δ
  };

  AtomicSwap(HtlcLedger* chain_a, HtlcLedger* chain_b, Params params);

  /// Step 1 (Alice): choose a secret, lock on chain A under H(s), 2Δ.
  Status AliceLock(const Bytes& secret);
  /// Step 2 (Bob): verify Alice's lock, mirror-lock on chain B under the
  /// same hash with timeout Δ.
  Status BobLock();
  /// Step 3 (Alice): redeem Bob's lock on chain B, revealing s.
  Status AliceRedeem();
  /// Step 4 (Bob): learn s from chain B, redeem Alice's lock on chain A.
  Status BobRedeem();

  /// Abort path: refund whatever is refundable after timeouts.
  Status RefundAll();

  uint64_t contract_a() const { return contract_a_; }
  uint64_t contract_b() const { return contract_b_; }

 private:
  HtlcLedger* a_;
  HtlcLedger* b_;
  Params p_;
  Bytes secret_;
  crypto::Hash256 hash_lock_;
  uint64_t contract_a_ = 0;
  uint64_t contract_b_ = 0;
};

}  // namespace pbc::confidential

#endif  // PBC_CONFIDENTIAL_ATOMIC_SWAP_H_
