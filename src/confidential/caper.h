// Caper [8]: confidentiality via per-enterprise views of a DAG ledger
// (§2.3.1 of the survey).
//
// Each enterprise maintains private data (namespaced "ent<i>/") touched
// only by its internal transactions, which it orders and executes locally,
// plus public data ("shared/") touched by cross-enterprise transactions,
// which require global agreement. No node stores the whole DAG: an
// enterprise's nodes hold its own internal chain plus all cross vertices
// (ledger::DagLedger::ViewOf).
//
// Ordering is pluggable: `CaperSystem` calls an `InternalOrderer` per
// enterprise and a `GlobalOrderer` for cross transactions. The default
// orderers are immediate sequencers (for unit tests and execution-focused
// benches); the sim-integrated benchmark (E6) plugs PBFT clusters into both
// roles so the latency/throughput gap between local and global ordering is
// actually measured, not assumed.
#ifndef PBC_CONFIDENTIAL_CAPER_H_
#define PBC_CONFIDENTIAL_CAPER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "ledger/dag_ledger.h"
#include "store/kv_store.h"
#include "txn/transaction.h"

namespace pbc::confidential {

/// \brief Per-enterprise state: the private store, the public replica, and
/// this enterprise's view of the DAG ledger.
class CaperEnterprise {
 public:
  explicit CaperEnterprise(txn::EnterpriseId id) : id_(id) {}

  txn::EnterpriseId id() const { return id_; }
  const store::KvStore& private_store() const { return private_store_; }
  const store::KvStore& public_store() const { return public_store_; }
  const std::vector<ledger::DagVertex>& view() const { return view_; }

  /// Applies a committed internal transaction (executes on private state).
  void ApplyInternal(const ledger::DagVertex& vertex);
  /// Applies a committed cross transaction (executes on public state).
  void ApplyCross(const ledger::DagVertex& vertex);

 private:
  txn::EnterpriseId id_;
  store::KvStore private_store_;
  store::KvStore public_store_;
  std::vector<ledger::DagVertex> view_;
};

/// \brief The multi-enterprise Caper deployment.
class CaperSystem {
 public:
  /// Orderer callbacks: invoked with the transaction; must eventually call
  /// the provided commit function exactly once. The default (nullptr)
  /// commits immediately (an in-process sequencer).
  using CommitFn = std::function<void(txn::Transaction)>;
  using OrdererFn = std::function<void(txn::Transaction, CommitFn)>;

  explicit CaperSystem(uint32_t num_enterprises);

  /// Overrides the orderer used for enterprise-internal transactions.
  void SetInternalOrderer(txn::EnterpriseId enterprise, OrdererFn orderer);
  /// Overrides the orderer used for cross-enterprise transactions.
  void SetGlobalOrderer(OrdererFn orderer);

  /// Submits an internal transaction of `enterprise`. Its ops must touch
  /// only that enterprise's namespace ("ent<i>/…"); anything else is
  /// rejected with PermissionDenied — that is the confidentiality wall.
  Status SubmitInternal(txn::EnterpriseId enterprise, txn::Transaction txn);

  /// Submits a cross-enterprise transaction. Ops must touch only the
  /// shared namespace ("shared/…").
  Status SubmitCross(txn::Transaction txn);

  const CaperEnterprise& enterprise(txn::EnterpriseId e) const {
    return *enterprises_[e];
  }
  uint32_t num_enterprises() const {
    return static_cast<uint32_t>(enterprises_.size());
  }

  /// The notional global DAG (kept for audits/tests; a real deployment
  /// never materializes it — see DESIGN.md).
  const ledger::DagLedger& global_dag() const { return dag_; }

  /// Key namespace helpers.
  static std::string PrivateKeyFor(txn::EnterpriseId e,
                                   const std::string& suffix);
  static std::string SharedKey(const std::string& suffix);
  static bool IsPrivateKeyOf(const store::Key& key, txn::EnterpriseId e);
  static bool IsSharedKey(const store::Key& key);

  uint64_t internal_committed() const { return internal_committed_; }
  uint64_t cross_committed() const { return cross_committed_; }

 private:
  void CommitInternal(txn::EnterpriseId enterprise, txn::Transaction txn);
  void CommitCross(txn::Transaction txn);

  ledger::DagLedger dag_;
  std::vector<std::unique_ptr<CaperEnterprise>> enterprises_;
  std::vector<OrdererFn> internal_orderers_;
  OrdererFn global_orderer_;
  uint64_t internal_committed_ = 0;
  uint64_t cross_committed_ = 0;
};

}  // namespace pbc::confidential

#endif  // PBC_CONFIDENTIAL_CAPER_H_
