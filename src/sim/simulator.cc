#include "sim/simulator.h"

#include "obs/obs.h"

namespace pbc::sim {

void Simulator::Schedule(Time delay, std::function<void()> fn) {
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  PBC_OBS_GAUGE_SET(metrics_, "sim.queue_depth", queue_.size());
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is safe here
  // because we pop immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  PBC_OBS_COUNT(metrics_, "sim.events", 1);
  ev.fn();
  return true;
}

void Simulator::Run(Time until) {
  while (!queue_.empty() && queue_.top().at <= until) Step();
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

bool Simulator::RunUntil(const std::function<bool()>& pred, Time until) {
  while (!pred()) {
    if (queue_.empty() || queue_.top().at > until) return pred();
    Step();
  }
  return true;
}

}  // namespace pbc::sim
