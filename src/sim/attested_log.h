// Software shim for AHL-style trusted hardware.
//
// Substitution note (see DESIGN.md §2): AHL [25] uses a TEE-hosted attested
// message log (A2M [21] / MinBFT [59]) whose only protocol-relevant property
// is *non-equivocation*: a node cannot produce two differently-attested
// messages for the same sequence slot. This shim enforces exactly that
// property in software — Attest() refuses a second digest for a used slot,
// and attestations are HMAC tags verifiable by anyone holding the registry.
// With equivocation structurally impossible, BFT quorums shrink from 3f+1
// to 2f+1, which is the effect experiment E10 reproduces.
#ifndef PBC_SIM_ATTESTED_LOG_H_
#define PBC_SIM_ATTESTED_LOG_H_

#include <cstdint>
#include <map>

#include "common/result.h"
#include "crypto/auth.h"
#include "crypto/sha256.h"

namespace pbc::sim {

/// \brief An attestation binding (log id, sequence, digest).
struct Attestation {
  uint32_t log_id = 0;
  uint64_t sequence = 0;
  crypto::Hash256 digest;
  crypto::Signature tag;
};

/// \brief The per-node attested append-only log.
///
/// One instance lives "inside the TEE" of each node: even a Byzantine host
/// must route messages through it to obtain valid attestations, and the log
/// will never attest two digests for one sequence number.
class AttestedLog {
 public:
  AttestedLog(uint32_t log_id, crypto::PrivateKey key)
      : log_id_(log_id), key_(std::move(key)) {}

  /// Attests `digest` at `sequence`. Fails with AlreadyExists if the slot
  /// holds a different digest (equivocation attempt); re-attesting the same
  /// digest is idempotent.
  Result<Attestation> Attest(uint64_t sequence, const crypto::Hash256& digest);

  /// Verifies an attestation against the registry.
  static bool Verify(const crypto::KeyRegistry& registry,
                     const Attestation& attestation);

  uint64_t size() const { return slots_.size(); }

 private:
  static crypto::Hash256 BindingDigest(uint32_t log_id, uint64_t sequence,
                                       const crypto::Hash256& digest);

  uint32_t log_id_;
  crypto::PrivateKey key_;
  // Ordered: the log is protocol state inside the (simulated) TEE; an
  // address-independent slot table keeps any future dump or replay of
  // the log byte-stable across runs.
  std::map<uint64_t, crypto::Hash256> slots_;
};

}  // namespace pbc::sim

#endif  // PBC_SIM_ATTESTED_LOG_H_
