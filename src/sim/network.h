// Simulated network: per-link latency models, drops, partitions, crashes.
//
// Message complexity is the currency of the survey's consensus trade-offs
// (PBFT quadratic vs HotStuff linear; cross-shard phase counts), so the
// network counts every send and exposes the counters to benchmarks. With
// an attached obs::MetricsRegistry / obs::TraceLog (see obs/obs.h) it
// additionally records per-message-type counters, per-link traffic, and a
// structured trace of every send/deliver/drop/crash/partition event.
//
// Fault-injection semantics (tested in sim_test.cpp):
//  * Crash(id) starts a new crash epoch for the node: pending timers armed
//    before the crash never fire, even if the node recovers before their
//    deadline. Messages to/from a crashed node are dropped at delivery
//    time.
//  * Partition(groups) severs in-flight traffic: a message that crosses
//    group boundaries is dropped even if it was sent before the partition
//    or would be delivered after Heal() — healing restores the link, it
//    does not resurrect datagrams that were on the wire when it was cut.
#ifndef PBC_SIM_NETWORK_H_
#define PBC_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace pbc::obs {
class MetricsRegistry;
class TraceLog;
}  // namespace pbc::obs

namespace pbc::sim {

using NodeId = uint32_t;

/// \brief Base class for protocol messages. Protocols subclass this and
/// dispatch on `type()`.
struct Message {
  virtual ~Message() = default;
  /// Stable type tag used for dispatch and logging.
  virtual const char* type() const = 0;
  /// Approximate wire size in bytes (for bandwidth accounting).
  virtual size_t ByteSize() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// \brief Latency of one link: `base + U(0, jitter)` microseconds.
struct LinkLatency {
  Time base_us = 500;
  Time jitter_us = 200;
};

/// \brief Per-node clock-rate deviation applied to every timer the node
/// arms (a "clock shim": the simulator's global clock stays authoritative;
/// only the node's *perception* of durations is skewed).
///
/// A node with `rate_ppm = +100000` has a clock running 10% fast, so a
/// requested 1 s timeout fires after ~0.909 s of simulated time; a
/// negative rate runs slow and stretches timeouts. `offset_us` is added on
/// top of the scaled delay (models a constant scheduling lag). Message
/// latencies are NOT affected — skew is a property of local timers, which
/// is exactly where consensus timeout assumptions live.
struct ClockSkew {
  int64_t rate_ppm = 0;  ///< parts-per-million deviation; clamped > -900000
  Time offset_us = 0;    ///< constant additive timer lag
};

class Network;

/// \brief Base class for simulated nodes (replicas, orderers, clients).
class Node {
 public:
  Node(NodeId id, Network* net);
  virtual ~Node() = default;

  NodeId id() const { return id_; }
  Network* network() const { return net_; }

  /// Called once when the simulation starts.
  virtual void OnStart() {}
  /// Called on message delivery. Never invoked on crashed nodes.
  virtual void OnMessage(NodeId from, const MessagePtr& msg) = 0;

  /// Schedules `fn` after `delay`. The timer is cancelled if this node is
  /// crashed at firing time OR has crashed at any point since the timer
  /// was armed (a crash-recover cycle wipes pending timers — a recovered
  /// node re-arms its own timers from OnStart/OnMessage).
  void SetTimer(Time delay, std::function<void()> fn);

 protected:
  /// Convenience wrappers over Network.
  void Send(NodeId to, MessagePtr msg);
  void Broadcast(const std::vector<NodeId>& to, MessagePtr msg);

 private:
  NodeId id_;
  Network* net_;
};

/// \brief Cumulative traffic counters.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
};

/// \brief The simulated network fabric connecting nodes.
class Network {
 public:
  explicit Network(Simulator* simulator) : sim_(simulator) {}

  Simulator* simulator() const { return sim_; }
  Time now() const { return sim_->now(); }

  /// Registers a node; the network does not own it.
  void RegisterNode(Node* node);

  /// Invokes OnStart on every registered, non-crashed node.
  void Start();

  /// Default latency for links without an override.
  void SetDefaultLatency(LinkLatency latency) { default_latency_ = latency; }

  /// Per-link latency override, applied to BOTH directions (links are
  /// symmetric by default — e.g. one WAN round trip between distant
  /// clusters costs the same either way).
  void SetLinkLatency(NodeId a, NodeId b, LinkLatency latency);

  /// One-direction override for deliberately asymmetric links (e.g. a
  /// saturated uplink). Overrides set here win over SetLinkLatency for
  /// that direction only.
  void SetDirectionalLinkLatency(NodeId from, NodeId to, LinkLatency latency);

  /// Fraction of messages silently dropped (both directions).
  void SetDropRate(double rate) { drop_rate_ = rate; }

  /// Skews every timer the node arms from now on (already-armed timers
  /// keep their original deadline). `{0, 0}` removes the skew.
  void SetClockSkew(NodeId id, ClockSkew skew);
  ClockSkew clock_skew(NodeId id) const {
    auto it = clock_skew_.find(id);
    return it == clock_skew_.end() ? ClockSkew{} : it->second;
  }
  /// The simulated-time delay after applying `id`'s clock skew to a
  /// requested timer delay. Exposed for tests; Node::SetTimer calls it.
  Time SkewedTimerDelay(NodeId id, Time delay) const;

  /// Effective latency model for one directed link (default, symmetric or
  /// directional override — whichever wins). Self-links are `{1, 0}`.
  /// Read-only introspection for adversaries/tests; sending uses the same
  /// resolution internally.
  LinkLatency EffectiveLatency(NodeId from, NodeId to) const {
    return from == to ? LinkLatency{1, 0} : LatencyFor(from, to);
  }

  /// Sends a message; delivery is scheduled per the link's latency model.
  /// Self-sends are delivered with minimal latency.
  void Send(NodeId from, NodeId to, MessagePtr msg);

  /// --- Fault injection -------------------------------------------------

  /// Crash-stop: the node receives no further messages or timers, and all
  /// timers armed before the crash are cancelled permanently (they stay
  /// dead across a later Recover()).
  void Crash(NodeId id);
  /// Recovers a crashed node (it keeps its pre-crash state, but not its
  /// pre-crash timers).
  void Recover(NodeId id);
  bool IsCrashed(NodeId id) const { return crashed_.count(id) > 0; }

  /// Observer fired on every crash-state *transition* (crashed=true from
  /// Crash(), false from Recover()), after the network's own bookkeeping.
  /// This is the single choke point through which process faults reach
  /// co-located state — the durable-storage harness uses it to power-fail
  /// a node's sim::Fs files and to run crash recovery on Recover(), so
  /// adversary-injected crashes (which bypass the nemesis schedule's
  /// Apply) hit the disk exactly like scheduled ones.
  using FaultListener = std::function<void(NodeId, bool crashed)>;
  void SetFaultListener(FaultListener listener) {
    fault_listener_ = std::move(listener);
  }

  /// Number of times the node has crashed; timers armed in an older epoch
  /// never fire.
  uint64_t CrashEpoch(NodeId id) const {
    auto it = crash_epoch_.find(id);
    return it == crash_epoch_.end() ? 0 : it->second;
  }

  /// Partitions the network into groups; messages across groups — whether
  /// sent later or already in flight — are dropped until Heal(). Nodes
  /// absent from all groups are isolated.
  void Partition(const std::vector<std::vector<NodeId>>& groups);
  void Heal();

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  /// Attaches optional observability sinks (either may be nullptr). The
  /// network never reads them for protocol decisions, so attaching cannot
  /// change a run's behavior.
  void AttachObs(obs::MetricsRegistry* metrics, obs::TraceLog* trace) {
    metrics_ = metrics;
    trace_ = trace;
  }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::TraceLog* trace() const { return trace_; }

  size_t num_nodes() const { return nodes_.size(); }
  Node* node(NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : it->second;
  }

 private:
  bool CanDeliver(NodeId from, NodeId to) const;
  LinkLatency LatencyFor(NodeId from, NodeId to) const;
  /// True when `from`/`to` are in different groups of `partition` (nodes
  /// absent from every group are isolated).
  static bool CrossGroup(const std::unordered_map<NodeId, int>& partition,
                         NodeId from, NodeId to);
  void CountDrop(NodeId from, NodeId to, const Message& msg,
                 const char* reason);

  Simulator* sim_;
  // Ordered: Start() walks this map to fire OnStart, so iteration order
  // reaches message-send order and must not depend on addresses.
  std::map<NodeId, Node*> nodes_;
  std::set<NodeId> crashed_;
  std::unordered_map<NodeId, uint64_t> crash_epoch_;
  LinkLatency default_latency_;
  std::unordered_map<uint64_t, LinkLatency> link_latency_;  // (from<<32)|to
  double drop_rate_ = 0.0;
  // Ordered map: never iterated today, but keep it address-independent so
  // a future walk (e.g. a skew dump) cannot introduce nondeterminism.
  std::map<NodeId, ClockSkew> clock_skew_;
  bool partitioned_ = false;
  std::unordered_map<NodeId, int> partition_;  // node -> group
  // Most recent partition layout, kept across Heal() so deliveries can
  // tell whether a cut happened while they were in flight.
  std::unordered_map<NodeId, int> last_partition_;
  FaultListener fault_listener_;
  uint64_t partition_cuts_ = 0;  // incremented by every Partition() call
  NetworkStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceLog* trace_ = nullptr;

  friend class Node;  // timers consult crash epochs
};

}  // namespace pbc::sim

#endif  // PBC_SIM_NETWORK_H_
