// Simulated network: per-link latency models, drops, partitions, crashes.
//
// Message complexity is the currency of the survey's consensus trade-offs
// (PBFT quadratic vs HotStuff linear; cross-shard phase counts), so the
// network counts every send and exposes the counters to benchmarks.
#ifndef PBC_SIM_NETWORK_H_
#define PBC_SIM_NETWORK_H_

#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace pbc::sim {

using NodeId = uint32_t;

/// \brief Base class for protocol messages. Protocols subclass this and
/// dispatch on `type()`.
struct Message {
  virtual ~Message() = default;
  /// Stable type tag used for dispatch and logging.
  virtual const char* type() const = 0;
  /// Approximate wire size in bytes (for bandwidth accounting).
  virtual size_t ByteSize() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// \brief Latency of one link: `base + U(0, jitter)` microseconds.
struct LinkLatency {
  Time base_us = 500;
  Time jitter_us = 200;
};

class Network;

/// \brief Base class for simulated nodes (replicas, orderers, clients).
class Node {
 public:
  Node(NodeId id, Network* net);
  virtual ~Node() = default;

  NodeId id() const { return id_; }
  Network* network() const { return net_; }

  /// Called once when the simulation starts.
  virtual void OnStart() {}
  /// Called on message delivery. Never invoked on crashed nodes.
  virtual void OnMessage(NodeId from, const MessagePtr& msg) = 0;

  /// Schedules `fn` after `delay`; silently dropped if this node has
  /// crashed by firing time.
  void SetTimer(Time delay, std::function<void()> fn);

 protected:
  /// Convenience wrappers over Network.
  void Send(NodeId to, MessagePtr msg);
  void Broadcast(const std::vector<NodeId>& to, MessagePtr msg);

 private:
  NodeId id_;
  Network* net_;
};

/// \brief Cumulative traffic counters.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
};

/// \brief The simulated network fabric connecting nodes.
class Network {
 public:
  explicit Network(Simulator* simulator) : sim_(simulator) {}

  Simulator* simulator() const { return sim_; }
  Time now() const { return sim_->now(); }

  /// Registers a node; the network does not own it.
  void RegisterNode(Node* node);

  /// Invokes OnStart on every registered, non-crashed node.
  void Start();

  /// Default latency for links without an override.
  void SetDefaultLatency(LinkLatency latency) { default_latency_ = latency; }

  /// Per-link latency override (e.g. WAN links between distant clusters).
  void SetLinkLatency(NodeId from, NodeId to, LinkLatency latency);

  /// Fraction of messages silently dropped (both directions).
  void SetDropRate(double rate) { drop_rate_ = rate; }

  /// Sends a message; delivery is scheduled per the link's latency model.
  /// Self-sends are delivered with minimal latency.
  void Send(NodeId from, NodeId to, MessagePtr msg);

  /// --- Fault injection -------------------------------------------------

  /// Crash-stop: the node receives no further messages or timers.
  void Crash(NodeId id) { crashed_.insert(id); }
  /// Recovers a crashed node (it keeps its pre-crash state).
  void Recover(NodeId id) { crashed_.erase(id); }
  bool IsCrashed(NodeId id) const { return crashed_.count(id) > 0; }

  /// Partitions the network into groups; messages across groups are
  /// dropped until Heal(). Nodes absent from all groups are isolated.
  void Partition(const std::vector<std::vector<NodeId>>& groups);
  void Heal() { partition_.clear(); partitioned_ = false; }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  size_t num_nodes() const { return nodes_.size(); }
  Node* node(NodeId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : it->second;
  }

 private:
  bool CanDeliver(NodeId from, NodeId to) const;
  LinkLatency LatencyFor(NodeId from, NodeId to) const;

  Simulator* sim_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::set<NodeId> crashed_;
  LinkLatency default_latency_;
  std::unordered_map<uint64_t, LinkLatency> link_latency_;  // (from<<32)|to
  double drop_rate_ = 0.0;
  bool partitioned_ = false;
  std::unordered_map<NodeId, int> partition_;  // node -> group
  NetworkStats stats_;
};

}  // namespace pbc::sim

#endif  // PBC_SIM_NETWORK_H_
