// Deterministic discrete-event scheduler.
//
// Every protocol in this repository (consensus, architectures, sharding)
// runs as message-driven state machines on top of this scheduler: a run is
// a pure function of (configuration, seed), so any safety violation found
// by a property test replays exactly from its seed.
#ifndef PBC_SIM_SIMULATOR_H_
#define PBC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.h"

namespace pbc::obs {
class MetricsRegistry;
}  // namespace pbc::obs

namespace pbc::sim {

/// Simulated time in microseconds.
using Time = uint64_t;

/// \brief Priority-queue driven event loop.
class Simulator {
 public:
  explicit Simulator(uint64_t seed) : rng_(seed) {}

  Time now() const { return now_; }
  Rng* rng() { return &rng_; }

  /// Attaches an optional metrics sink (may be nullptr to detach). When
  /// set, the simulator maintains "sim.events" and the "sim.queue_depth"
  /// high-watermark gauge. Observation only — never affects scheduling.
  void AttachMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Schedules `fn` to run `delay` microseconds from now. Ties are broken
  /// by insertion order (FIFO), which keeps runs deterministic.
  void Schedule(Time delay, std::function<void()> fn);

  /// Runs one event. Returns false when the queue is empty.
  bool Step();

  /// Runs events until the queue drains or simulated time passes `until`.
  void Run(Time until);

  /// Runs until the queue drains completely.
  void RunAll();

  /// Runs until `pred()` becomes true or time passes `until`.
  /// Returns whether the predicate was satisfied.
  bool RunUntil(const std::function<bool()>& pred, Time until);

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time at;
    uint64_t seq;  // FIFO tiebreak
    std::function<void()> fn;
  };
  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, EventCompare> queue_;
};

}  // namespace pbc::sim

#endif  // PBC_SIM_SIMULATOR_H_
