#include "sim/fs.h"

#include <algorithm>

namespace pbc::sim {

namespace {

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

void Fs::Append(const std::string& path, const std::string& bytes) {
  files_[path].current += bytes;
}

void Fs::WriteFile(const std::string& path, const std::string& bytes) {
  files_[path].current = bytes;
}

bool Fs::Read(const std::string& path, std::string* out) const {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  *out = it->second.current;
  return true;
}

bool Fs::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

uint64_t Fs::Size(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.current.size();
}

void Fs::Truncate(const std::string& path, uint64_t new_size) {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  if (new_size < it->second.current.size()) {
    it->second.current.resize(new_size);
  }
}

bool Fs::LosingFlushes(const std::string& path) const {
  for (const auto& [prefix, lose] : lose_flushes_) {
    if (lose && HasPrefix(path, prefix)) return true;
  }
  return false;
}

bool Fs::Fsync(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  if (LosingFlushes(path)) {
    // The disk acknowledges the flush but drops it; callers cannot tell.
    for (const auto& [prefix, lose] : lose_flushes_) {
      if (lose && HasPrefix(path, prefix)) {
        ++dropped_[prefix];
        break;
      }
    }
    return true;
  }
  it->second.durable = it->second.current;
  return true;
}

void Fs::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) return;
  File moved = it->second;
  files_.erase(it);
  files_[to] = std::move(moved);
}

void Fs::Remove(const std::string& path) { files_.erase(path); }

std::vector<std::string> Fs::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (HasPrefix(path, prefix)) out.push_back(path);
  }
  return out;
}

void Fs::SetPendingTear(const std::string& prefix, uint64_t tear_ppm) {
  if (tear_ppm == 0) {
    pending_tear_.erase(prefix);
  } else {
    pending_tear_[prefix] = tear_ppm;
  }
}

void Fs::SetLoseFlushes(const std::string& prefix, bool lose) {
  if (lose) {
    lose_flushes_[prefix] = true;
  } else {
    lose_flushes_.erase(prefix);
  }
}

void Fs::Crash(const std::string& prefix) {
  ++crashes_;
  uint64_t tear_ppm = 0;
  auto tear = pending_tear_.find(prefix);
  if (tear != pending_tear_.end()) {
    tear_ppm = tear->second;
    pending_tear_.erase(tear);  // a tear is consumed by the crash it tears
  }
  // files_ is an ordered map, so the tear draws happen in sorted path
  // order — the crash outcome is a pure function of the shim's seed.
  for (auto& [path, file] : files_) {
    if (!HasPrefix(path, prefix)) continue;
    if (tear_ppm > 0 && !file.durable.empty()) {
      // Torn sector write: the drive's cache acknowledged the flush but
      // lost power mid-destage, so the tail of the *durable* content —
      // at most tear_ppm millionths of the last 4 KiB — never reached
      // the platter.
      uint64_t window =
          std::min<uint64_t>(file.durable.size(), 4096);
      uint64_t chop = rng_.NextU64(window * tear_ppm / 1'000'000 + 1);
      if (chop > 0) {
        file.durable.resize(file.durable.size() - chop);
        ++tears_[prefix];
      }
    }
    file.current = file.durable;
  }
}

FsImage Fs::DurableImage(const std::string& prefix) const {
  FsImage image;
  for (const auto& [path, file] : files_) {
    if (HasPrefix(path, prefix)) image[path] = file.durable;
  }
  return image;
}

uint64_t Fs::fsyncs_dropped(const std::string& prefix) const {
  auto it = dropped_.find(prefix);
  return it == dropped_.end() ? 0 : it->second;
}

uint64_t Fs::tears(const std::string& prefix) const {
  auto it = tears_.find(prefix);
  return it == tears_.end() ? 0 : it->second;
}

}  // namespace pbc::sim
