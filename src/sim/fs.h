// Deterministic in-memory filesystem: the only I/O surface the durable
// storage layer (src/store) is allowed to touch (enforced by detlint's
// `raw-filesystem` rule). Every file carries two byte strings — the
// *current* content the writer sees, and the *durable* content that
// survives a crash — so fsync semantics, torn writes, and lost flushes
// are modeled explicitly instead of trusting the host OS.
//
// Determinism argument: the shim holds no wall-clock state and performs
// no host I/O. Its only nondeterministic-looking behavior — how many
// durable tail bytes a torn-write crash destroys — is drawn from its own
// seeded Rng, and crashes iterate files in sorted path order, so a run
// is a pure function of (seed, operation sequence).
//
// Fault surface (driven by the nemesis schedule, see check/nemesis.h):
//  * Crash(prefix): revert every file under the prefix to its durable
//    content. If a tear is armed, the power cut also tears each file's
//    tail: a seeded number of bytes (bounded by tear_ppm millionths of
//    the file's last 4 KiB) vanishes from the end of the *durable*
//    content — the drive's write cache acknowledged the flush but lost
//    power mid-destage, the classic torn sector write. Recovery then
//    faces a partial trailing frame (log) or a CRC-invalid file
//    (snapshot/manifest) and must truncate or fall back.
//  * SetLoseFlushes(prefix, true): fsyncs still report success but stop
//    advancing durable content (a lying disk / dropped FLUSH command).
//    The per-prefix `fsyncs_dropped` counter lets checkers distinguish
//    "the disk lied" from "the store forgot to sync".
//  * Rename is journaled like ext4 metadata: the name change itself
//    survives a crash, but content that was never fsynced under the old
//    name does not — the classic rename-before-sync zero-length-file
//    hazard, which the snapshot protocol must defend against with an
//    fsync barrier before rename-into-place.
#ifndef PBC_SIM_FS_H_
#define PBC_SIM_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pbc::sim {

/// \brief Read-only snapshot of durable content: path -> bytes. What a
/// machine would find on its platter after losing power right now.
using FsImage = std::map<std::string, std::string>;

class Fs {
 public:
  explicit Fs(uint64_t seed) : rng_(seed) {}

  // --- writer-facing I/O (operates on current content) ---------------------

  /// Appends bytes to the file (creating it if absent).
  void Append(const std::string& path, const std::string& bytes);

  /// Replaces the file's current content (creating it if absent).
  void WriteFile(const std::string& path, const std::string& bytes);

  /// Reads current content. Returns false if the file does not exist.
  bool Read(const std::string& path, std::string* out) const;

  bool Exists(const std::string& path) const;
  uint64_t Size(const std::string& path) const;

  /// Shrinks current content to `new_size` bytes (no-op if already
  /// smaller). Durability of the truncation requires a subsequent Fsync.
  void Truncate(const std::string& path, uint64_t new_size);

  /// Flush barrier. Promotes current content to durable — unless flushes
  /// are being lost for the path's prefix, in which case the call still
  /// *reports* success (the disk lies) but durable content is unchanged
  /// and the drop is counted. Returns false only if the file is missing.
  bool Fsync(const std::string& path);

  /// Atomically renames `from` to `to` (replacing `to` if present). The
  /// name change is durable immediately (journaled metadata); content
  /// durability is whatever `from` had fsynced.
  void Rename(const std::string& from, const std::string& to);

  /// Removes the file (both views) if present.
  void Remove(const std::string& path);

  /// Paths of existing files starting with `prefix`, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  // --- fault surface (nemesis-facing) ---------------------------------------

  /// Arms a torn write for the next Crash() touching `prefix`: each
  /// file's durable tail loses up to `tear_ppm` millionths of its last
  /// 4 KiB (exact count drawn from the shim's seeded Rng, per file in
  /// sorted path order). Consumed by that crash; ppm 0 disarms.
  void SetPendingTear(const std::string& prefix, uint64_t tear_ppm);

  /// Starts/stops dropping fsyncs for files under `prefix`.
  void SetLoseFlushes(const std::string& prefix, bool lose);

  /// Power-loss for every file under `prefix` (sorted path order):
  /// current content reverts to durable content, with the armed tear —
  /// if any — applied to each durable tail first.
  void Crash(const std::string& prefix);

  // --- checker-facing introspection (read-only, RNG-free) -------------------

  /// Durable content of every file under `prefix`. Drawing the image
  /// consumes no randomness, so periodic shadow recoveries never perturb
  /// the run's RNG stream.
  FsImage DurableImage(const std::string& prefix) const;

  /// Fsyncs acknowledged-but-dropped for `prefix` since construction.
  uint64_t fsyncs_dropped(const std::string& prefix) const;

  /// Files that actually lost durable bytes to torn-write crashes under
  /// `prefix`. Checkers use this (with fsyncs_dropped) to gate beliefs:
  /// a store may legitimately "know" more than the platter holds only
  /// after the disk lied to it.
  uint64_t tears(const std::string& prefix) const;

  uint64_t crashes() const { return crashes_; }

 private:
  struct File {
    std::string current;
    std::string durable;
  };

  bool LosingFlushes(const std::string& path) const;

  std::map<std::string, File> files_;
  std::map<std::string, bool> lose_flushes_;      // prefix -> lying disk?
  std::map<std::string, uint64_t> pending_tear_;  // prefix -> tear ppm
  std::map<std::string, uint64_t> dropped_;       // prefix -> dropped fsyncs
  std::map<std::string, uint64_t> tears_;         // prefix -> torn files
  Rng rng_;
  uint64_t crashes_ = 0;
};

}  // namespace pbc::sim

#endif  // PBC_SIM_FS_H_
