#include "sim/attested_log.h"

namespace pbc::sim {

crypto::Hash256 AttestedLog::BindingDigest(uint32_t log_id, uint64_t sequence,
                                           const crypto::Hash256& digest) {
  crypto::Sha256 h;
  h.Update(std::string("pbc-attested-log"));
  h.UpdateU64(log_id);
  h.UpdateU64(sequence);
  h.Update(digest);
  return h.Finalize();
}

Result<Attestation> AttestedLog::Attest(uint64_t sequence,
                                        const crypto::Hash256& digest) {
  auto it = slots_.find(sequence);
  if (it != slots_.end() && it->second != digest) {
    return Status::AlreadyExists(
        "attested log slot already bound to a different digest");
  }
  slots_[sequence] = digest;
  Attestation a;
  a.log_id = log_id_;
  a.sequence = sequence;
  a.digest = digest;
  a.tag = key_.Sign(BindingDigest(log_id_, sequence, digest));
  return a;
}

bool AttestedLog::Verify(const crypto::KeyRegistry& registry,
                         const Attestation& attestation) {
  return registry.Verify(
      BindingDigest(attestation.log_id, attestation.sequence,
                    attestation.digest),
      attestation.tag);
}

}  // namespace pbc::sim
