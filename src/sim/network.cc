#include "sim/network.h"

namespace pbc::sim {

Node::Node(NodeId id, Network* net) : id_(id), net_(net) {
  net_->RegisterNode(this);
}

void Node::SetTimer(Time delay, std::function<void()> fn) {
  Network* net = net_;
  NodeId id = id_;
  net_->simulator()->Schedule(delay, [net, id, fn = std::move(fn)] {
    if (!net->IsCrashed(id)) fn();
  });
}

void Node::Send(NodeId to, MessagePtr msg) {
  net_->Send(id_, to, std::move(msg));
}

void Node::Broadcast(const std::vector<NodeId>& to, MessagePtr msg) {
  for (NodeId t : to) net_->Send(id_, t, msg);
}

void Network::RegisterNode(Node* node) { nodes_[node->id()] = node; }

void Network::Start() {
  for (auto& [id, node] : nodes_) {
    if (!IsCrashed(id)) node->OnStart();
  }
}

void Network::SetLinkLatency(NodeId from, NodeId to, LinkLatency latency) {
  link_latency_[(static_cast<uint64_t>(from) << 32) | to] = latency;
}

LinkLatency Network::LatencyFor(NodeId from, NodeId to) const {
  auto it = link_latency_.find((static_cast<uint64_t>(from) << 32) | to);
  if (it != link_latency_.end()) return it->second;
  return default_latency_;
}

bool Network::CanDeliver(NodeId from, NodeId to) const {
  if (crashed_.count(to) > 0 || crashed_.count(from) > 0) return false;
  if (partitioned_) {
    auto fi = partition_.find(from);
    auto ti = partition_.find(to);
    // Nodes not listed in any group are isolated.
    if (fi == partition_.end() || ti == partition_.end()) return false;
    if (fi->second != ti->second) return false;
  }
  return true;
}

void Network::Send(NodeId from, NodeId to, MessagePtr msg) {
  ++stats_.messages_sent;
  stats_.bytes_sent += msg->ByteSize();

  if (from != to && drop_rate_ > 0.0 && sim_->rng()->Bernoulli(drop_rate_)) {
    ++stats_.messages_dropped;
    return;
  }

  LinkLatency lat = from == to ? LinkLatency{1, 0} : LatencyFor(from, to);
  Time jitter = lat.jitter_us == 0
                    ? 0
                    : sim_->rng()->NextU64(lat.jitter_us + 1);
  Time delay = lat.base_us + jitter;

  sim_->Schedule(delay, [this, from, to, msg = std::move(msg)] {
    if (!CanDeliver(from, to)) {
      ++stats_.messages_dropped;
      return;
    }
    auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    it->second->OnMessage(from, msg);
  });
}

void Network::Partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_.clear();
  int group_index = 0;
  for (const auto& group : groups) {
    for (NodeId id : group) partition_[id] = group_index;
    ++group_index;
  }
  partitioned_ = true;
}

}  // namespace pbc::sim
