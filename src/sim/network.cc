#include "sim/network.h"

#include <string>

#include "obs/obs.h"

namespace pbc::sim {

Node::Node(NodeId id, Network* net) : id_(id), net_(net) {
  net_->RegisterNode(this);
}

void Node::SetTimer(Time delay, std::function<void()> fn) {
  Network* net = net_;
  NodeId id = id_;
  // Capture the crash epoch at arming time: a timer armed before a crash
  // must not fire after a crash-recover cycle (the node's pre-crash
  // schedule died with it).
  uint64_t epoch = net_->CrashEpoch(id_);
  delay = net_->SkewedTimerDelay(id_, delay);
  net_->simulator()->Schedule(delay, [net, id, epoch, fn = std::move(fn)] {
    if (net->IsCrashed(id) || net->CrashEpoch(id) != epoch) {
      PBC_OBS_TRACE(net->trace(), net->now(), obs::TraceKind::kTimerCancelled,
                    id, id, "stale-epoch", epoch);
      return;
    }
    fn();
  });
}

void Node::Send(NodeId to, MessagePtr msg) {
  net_->Send(id_, to, std::move(msg));
}

void Node::Broadcast(const std::vector<NodeId>& to, MessagePtr msg) {
  for (NodeId t : to) net_->Send(id_, t, msg);
}

void Network::RegisterNode(Node* node) { nodes_[node->id()] = node; }

void Network::Start() {
  for (auto& [id, node] : nodes_) {
    if (!IsCrashed(id)) node->OnStart();
  }
}

void Network::SetLinkLatency(NodeId a, NodeId b, LinkLatency latency) {
  SetDirectionalLinkLatency(a, b, latency);
  SetDirectionalLinkLatency(b, a, latency);
}

void Network::SetDirectionalLinkLatency(NodeId from, NodeId to,
                                        LinkLatency latency) {
  link_latency_[(static_cast<uint64_t>(from) << 32) | to] = latency;
}

void Network::SetClockSkew(NodeId id, ClockSkew skew) {
  // A clock >= 90% fast would collapse timeouts toward zero and can spin
  // the simulator; clamp to keep skewed runs terminating.
  constexpr int64_t kMinRatePpm = -900'000;
  constexpr int64_t kMaxRatePpm = 9'000'000;
  if (skew.rate_ppm < kMinRatePpm) skew.rate_ppm = kMinRatePpm;
  if (skew.rate_ppm > kMaxRatePpm) skew.rate_ppm = kMaxRatePpm;
  if (skew.rate_ppm == 0 && skew.offset_us == 0) {
    clock_skew_.erase(id);
  } else {
    clock_skew_[id] = skew;
  }
}

Time Network::SkewedTimerDelay(NodeId id, Time delay) const {
  auto it = clock_skew_.find(id);
  if (it == clock_skew_.end()) return delay;
  const ClockSkew& skew = it->second;
  Time scaled = delay;
  if (skew.rate_ppm != 0) {
    // A fast clock (positive ppm) reaches the requested duration early:
    // real delay = requested * 1e6 / (1e6 + ppm).
    scaled = static_cast<Time>(
        delay * 1'000'000ULL /
        static_cast<uint64_t>(1'000'000LL + skew.rate_ppm));
    if (delay > 0 && scaled == 0) scaled = 1;
  }
  return scaled + skew.offset_us;
}

LinkLatency Network::LatencyFor(NodeId from, NodeId to) const {
  auto it = link_latency_.find((static_cast<uint64_t>(from) << 32) | to);
  if (it != link_latency_.end()) return it->second;
  return default_latency_;
}

bool Network::CrossGroup(const std::unordered_map<NodeId, int>& partition,
                         NodeId from, NodeId to) {
  if (from == to) return false;
  auto fi = partition.find(from);
  auto ti = partition.find(to);
  // Nodes not listed in any group are isolated.
  if (fi == partition.end() || ti == partition.end()) return true;
  return fi->second != ti->second;
}

bool Network::CanDeliver(NodeId from, NodeId to) const {
  if (crashed_.count(to) > 0 || crashed_.count(from) > 0) return false;
  if (partitioned_ && CrossGroup(partition_, from, to)) return false;
  return true;
}

void Network::CountDrop(NodeId from, NodeId to, const Message& msg,
                        [[maybe_unused]] const char* reason) {
  ++stats_.messages_dropped;
  PBC_OBS_COUNT(metrics_, "net.dropped", 1);
  PBC_OBS_COUNT(metrics_, std::string("net.dropped.") + reason, 1);
  PBC_OBS_TRACE(trace_, now(), obs::TraceKind::kDrop, from, to, msg.type(),
                msg.ByteSize());
}

void Network::Crash(NodeId id) {
  if (crashed_.insert(id).second) {
    ++crash_epoch_[id];
    PBC_OBS_COUNT(metrics_, "net.crashes", 1);
    PBC_OBS_TRACE(trace_, now(), obs::TraceKind::kCrash, id, id, "",
                  crash_epoch_[id]);
    if (fault_listener_) fault_listener_(id, /*crashed=*/true);
  }
}

void Network::Recover(NodeId id) {
  if (crashed_.erase(id) > 0) {
    PBC_OBS_COUNT(metrics_, "net.recoveries", 1);
    PBC_OBS_TRACE(trace_, now(), obs::TraceKind::kRecover, id, id, "",
                  CrashEpoch(id));
    if (fault_listener_) fault_listener_(id, /*crashed=*/false);
  }
}

void Network::Send(NodeId from, NodeId to, MessagePtr msg) {
  ++stats_.messages_sent;
  stats_.bytes_sent += msg->ByteSize();
  PBC_OBS_COUNT(metrics_, "net.sent", 1);
  PBC_OBS_COUNT(metrics_, "net.bytes_sent", msg->ByteSize());
  PBC_OBS_COUNT(metrics_, std::string("net.sent.") + msg->type(), 1);
  PBC_OBS_COUNT(metrics_,
                "net.link." + std::to_string(from) + "->" +
                    std::to_string(to) + ".sent",
                1);
  PBC_OBS_TRACE(trace_, now(), obs::TraceKind::kSend, from, to, msg->type(),
                msg->ByteSize());

  // A link severed by an active partition carries nothing: drop at send
  // time so a later Heal() cannot resurrect the message.
  if (partitioned_ && CrossGroup(partition_, from, to)) {
    CountDrop(from, to, *msg, "partition");
    return;
  }

  if (from != to && drop_rate_ > 0.0 && sim_->rng()->Bernoulli(drop_rate_)) {
    CountDrop(from, to, *msg, "loss");
    return;
  }

  LinkLatency lat = from == to ? LinkLatency{1, 0} : LatencyFor(from, to);
  Time jitter = lat.jitter_us == 0
                    ? 0
                    : sim_->rng()->NextU64(lat.jitter_us + 1);
  Time delay = lat.base_us + jitter;

  uint64_t cuts_at_send = partition_cuts_;
  sim_->Schedule(delay, [this, from, to, cuts_at_send,
                         msg = std::move(msg)] {
    // A partition was cut while this message was in flight: if it severed
    // this link, the message died on the wire — even if the partition has
    // since healed.
    if (partition_cuts_ != cuts_at_send &&
        CrossGroup(last_partition_, from, to)) {
      CountDrop(from, to, *msg, "partition");
      return;
    }
    if (!CanDeliver(from, to)) {
      CountDrop(from, to, *msg, crashed_.count(to) || crashed_.count(from)
                                    ? "crash"
                                    : "partition");
      return;
    }
    auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      CountDrop(from, to, *msg, "unknown-node");
      return;
    }
    ++stats_.messages_delivered;
    PBC_OBS_COUNT(metrics_, "net.delivered", 1);
    PBC_OBS_TRACE(trace_, now(), obs::TraceKind::kDeliver, from, to,
                  msg->type(), msg->ByteSize());
    it->second->OnMessage(from, msg);
  });
}

void Network::Partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_.clear();
  int group_index = 0;
  for (const auto& group : groups) {
    for (NodeId id : group) partition_[id] = group_index;
    ++group_index;
  }
  partitioned_ = true;
  last_partition_ = partition_;
  ++partition_cuts_;
  PBC_OBS_COUNT(metrics_, "net.partitions", 1);
  PBC_OBS_TRACE(trace_, now(), obs::TraceKind::kPartition, 0, 0, "",
                groups.size());
}

void Network::Heal() {
  partition_.clear();
  partitioned_ = false;
  PBC_OBS_COUNT(metrics_, "net.heals", 1);
  PBC_OBS_TRACE(trace_, now(), obs::TraceKind::kHeal, 0, 0, "", 0);
}

}  // namespace pbc::sim
