// The append-only hash-chained ledger replicated on every node.
#ifndef PBC_LEDGER_CHAIN_H_
#define PBC_LEDGER_CHAIN_H_

#include <vector>

#include "common/result.h"
#include "ledger/block.h"

namespace pbc::ledger {

/// \brief A hash-chained sequence of blocks.
///
/// `Append` enforces the chain invariants (height and prev-hash linkage,
/// transaction-root correctness); `Audit` re-verifies the whole chain so
/// any post-hoc tampering with a stored block is detected.
class Chain {
 public:
  /// Appends `block`, validating height, linkage, and the txn Merkle root.
  Status Append(Block block);

  /// Full integrity audit: recompute every link and Merkle root.
  Status Audit() const;

  size_t height() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const Block& at(size_t i) const { return blocks_[i]; }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Hash of the last block (Zero for an empty chain — the genesis parent).
  crypto::Hash256 TipHash() const;

  /// Proof that transaction `txn_index` of block `height` is included.
  Result<crypto::MerkleProof> ProveInclusion(size_t block_height,
                                             size_t txn_index) const;

  /// Verifies an inclusion proof against a block header.
  static bool VerifyInclusion(const BlockHeader& header,
                              const crypto::Hash256& txn_digest,
                              const crypto::MerkleProof& proof);

  /// True iff both chains contain identical block hashes (replica
  /// agreement check used by consensus property tests). A prefix match is
  /// not enough: lengths must agree too when `exact` is true.
  bool SameAs(const Chain& other) const;

  /// True iff the shorter chain is a prefix of the longer one (the safety
  /// property consensus must preserve between replicas at different
  /// heights).
  bool PrefixConsistentWith(const Chain& other) const;

  /// Test hook: direct mutable access, bypassing invariants (used by
  /// tamper-detection tests only).
  Block* MutableBlockForTest(size_t i) { return &blocks_[i]; }

 private:
  std::vector<Block> blocks_;
};

}  // namespace pbc::ledger

#endif  // PBC_LEDGER_CHAIN_H_
