// Blocks: batches of transactions with a hash-chained header.
#ifndef PBC_LEDGER_BLOCK_H_
#define PBC_LEDGER_BLOCK_H_

#include <cstdint>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "txn/transaction.h"

namespace pbc::ledger {

/// \brief Header committing to a block's position and contents.
struct BlockHeader {
  uint64_t height = 0;
  crypto::Hash256 prev_hash;  ///< hash of the previous block's header
  crypto::Hash256 txn_root;   ///< Merkle root over transaction digests
  uint64_t timestamp_us = 0;  ///< simulated time of proposal

  /// The block's identity: SHA-256 over the header fields.
  crypto::Hash256 Hash() const;
};

/// \brief A block of transactions.
struct Block {
  BlockHeader header;
  std::vector<txn::Transaction> txns;

  /// Builds a block at `height` chaining to `prev_hash`, computing the
  /// transaction Merkle root.
  static Block Make(uint64_t height, const crypto::Hash256& prev_hash,
                    std::vector<txn::Transaction> txns,
                    uint64_t timestamp_us = 0);

  /// Recomputes the Merkle root and checks it against the header.
  bool VerifyTxnRoot() const;

  /// Digests of all transactions, in order.
  std::vector<crypto::Hash256> TxnDigests() const;
};

}  // namespace pbc::ledger

#endif  // PBC_LEDGER_BLOCK_H_
