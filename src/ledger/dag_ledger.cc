#include "ledger/dag_ledger.h"

#include <set>

namespace pbc::ledger {

crypto::Hash256 DagVertex::ComputeHash(
    const txn::Transaction& txn,
    const std::vector<crypto::Hash256>& parents) {
  crypto::Sha256 h;
  h.Update(std::string("pbc-dag-vertex"));
  h.Update(txn.Digest());
  h.UpdateU64(parents.size());
  for (const auto& p : parents) h.Update(p);
  return h.Finalize();
}

DagLedger::DagLedger(uint32_t num_enterprises)
    : tips_(num_enterprises, crypto::Hash256::Zero()) {}

Result<crypto::Hash256> DagLedger::AppendInternal(
    txn::EnterpriseId enterprise, txn::Transaction txn) {
  if (enterprise >= tips_.size()) {
    return Status::InvalidArgument("unknown enterprise");
  }
  DagVertex v;
  v.enterprise = enterprise;
  v.cross = false;
  if (!tips_[enterprise].IsZero()) v.parents.push_back(tips_[enterprise]);
  v.hash = DagVertex::ComputeHash(txn, v.parents);
  v.txn = std::move(txn);
  tips_[enterprise] = v.hash;
  index_[v.hash] = vertices_.size();
  vertices_.push_back(std::move(v));
  return vertices_.back().hash;
}

Result<crypto::Hash256> DagLedger::AppendCross(txn::Transaction txn) {
  DagVertex v;
  v.cross = true;
  std::set<crypto::Hash256> seen;
  for (const auto& tip : tips_) {
    if (!tip.IsZero() && seen.insert(tip).second) v.parents.push_back(tip);
  }
  v.hash = DagVertex::ComputeHash(txn, v.parents);
  v.txn = std::move(txn);
  for (auto& tip : tips_) tip = v.hash;
  index_[v.hash] = vertices_.size();
  vertices_.push_back(std::move(v));
  ++num_cross_;
  return vertices_.back().hash;
}

crypto::Hash256 DagLedger::TipOf(txn::EnterpriseId enterprise) const {
  return enterprise < tips_.size() ? tips_[enterprise]
                                   : crypto::Hash256::Zero();
}

std::vector<DagVertex> DagLedger::ViewOf(txn::EnterpriseId enterprise) const {
  std::vector<DagVertex> view;
  for (const auto& v : vertices_) {
    if (v.cross || v.enterprise == enterprise) view.push_back(v);
  }
  return view;
}

Status DagLedger::Audit() const {
  std::set<crypto::Hash256> known;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const DagVertex& v = vertices_[i];
    if (DagVertex::ComputeHash(v.txn, v.parents) != v.hash) {
      return Status::Corruption("vertex hash mismatch at " +
                                std::to_string(i));
    }
    for (const auto& p : v.parents) {
      if (known.count(p) == 0) {
        return Status::Corruption("vertex parent unknown at " +
                                  std::to_string(i));
      }
    }
    known.insert(v.hash);
  }
  return Status::OK();
}

Status DagLedger::AuditView(const std::vector<DagVertex>& view,
                            txn::EnterpriseId enterprise) {
  std::set<crypto::Hash256> known;
  for (size_t i = 0; i < view.size(); ++i) {
    const DagVertex& v = view[i];
    if (!v.cross && v.enterprise != enterprise) {
      return Status::PermissionDenied(
          "view contains another enterprise's internal transaction");
    }
    if (DagVertex::ComputeHash(v.txn, v.parents) != v.hash) {
      return Status::Corruption("vertex hash mismatch at " +
                                std::to_string(i));
    }
    for (const auto& p : v.parents) {
      // Internal vertices must link within the view; cross vertices may
      // reference other enterprises' (invisible) tips as opaque hashes.
      if (!v.cross && known.count(p) == 0) {
        return Status::Corruption("internal vertex parent unknown at " +
                                  std::to_string(i));
      }
    }
    known.insert(v.hash);
  }
  return Status::OK();
}

}  // namespace pbc::ledger
