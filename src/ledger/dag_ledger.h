// Caper's DAG ledger [8].
//
// The global ledger is a directed acyclic graph over transactions: each
// enterprise's *internal* transactions form a private chain, and
// *cross-enterprise* transactions are global vertices that join the tips of
// every enterprise's chain. Crucially, no node materializes the whole DAG —
// each enterprise holds only its own view (its internal transactions plus
// all cross-enterprise ones). This class can represent both the notional
// global DAG (for audits/tests) and any enterprise's view (via `ViewOf`).
#ifndef PBC_LEDGER_DAG_LEDGER_H_
#define PBC_LEDGER_DAG_LEDGER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "crypto/sha256.h"
#include "txn/transaction.h"

namespace pbc::ledger {

/// \brief One vertex of the DAG ledger.
struct DagVertex {
  txn::Transaction txn;
  txn::EnterpriseId enterprise = 0;  ///< owner (unused for cross vertices)
  bool cross = false;
  std::vector<crypto::Hash256> parents;  ///< vertex hashes this extends
  crypto::Hash256 hash;                  ///< H(txn digest || parents)

  static crypto::Hash256 ComputeHash(
      const txn::Transaction& txn,
      const std::vector<crypto::Hash256>& parents);
};

/// \brief The Caper-style DAG ledger / an enterprise view of it.
class DagLedger {
 public:
  /// Creates a ledger covering enterprises [0, num_enterprises).
  explicit DagLedger(uint32_t num_enterprises);

  /// Appends an internal transaction to `enterprise`'s chain; its parent is
  /// that enterprise's current tip.
  Result<crypto::Hash256> AppendInternal(txn::EnterpriseId enterprise,
                                         txn::Transaction txn);

  /// Appends a cross-enterprise transaction joining every enterprise tip;
  /// afterwards all tips point at this vertex.
  Result<crypto::Hash256> AppendCross(txn::Transaction txn);

  /// The vertex a given enterprise's next internal transaction will extend.
  crypto::Hash256 TipOf(txn::EnterpriseId enterprise) const;

  /// Extracts `enterprise`'s view: its internal vertices plus every cross
  /// vertex, in append order. This is exactly what that enterprise's nodes
  /// store in Caper.
  std::vector<DagVertex> ViewOf(txn::EnterpriseId enterprise) const;

  /// Recomputes every vertex hash and checks parent linkage.
  Status Audit() const;

  /// True iff `view` is internally consistent and consistent with being
  /// `enterprise`'s view of some global DAG: hashes verify and parents of
  /// each vertex are earlier vertices of the view (cross parents from other
  /// enterprises are allowed to be unknown — they are opaque hashes).
  static Status AuditView(const std::vector<DagVertex>& view,
                          txn::EnterpriseId enterprise);

  size_t size() const { return vertices_.size(); }
  const std::vector<DagVertex>& vertices() const { return vertices_; }
  uint32_t num_enterprises() const { return static_cast<uint32_t>(tips_.size()); }

  /// Counts of vertex kinds (bench reporting).
  size_t num_cross() const { return num_cross_; }
  size_t num_internal() const { return vertices_.size() - num_cross_; }

 private:
  std::vector<DagVertex> vertices_;
  std::map<crypto::Hash256, size_t> index_;
  std::vector<crypto::Hash256> tips_;  ///< per-enterprise tip
  size_t num_cross_ = 0;
};

}  // namespace pbc::ledger

#endif  // PBC_LEDGER_DAG_LEDGER_H_
