#include "ledger/chain.h"

namespace pbc::ledger {

Status Chain::Append(Block block) {
  if (block.header.height != blocks_.size()) {
    return Status::InvalidArgument("block height mismatch");
  }
  if (block.header.prev_hash != TipHash()) {
    return Status::Corruption("prev-hash does not match chain tip");
  }
  if (!block.VerifyTxnRoot()) {
    return Status::Corruption("transaction merkle root mismatch");
  }
  blocks_.push_back(std::move(block));
  return Status::OK();
}

Status Chain::Audit() const {
  crypto::Hash256 prev = crypto::Hash256::Zero();
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.header.height != i) {
      return Status::Corruption("height mismatch at block " +
                                std::to_string(i));
    }
    if (b.header.prev_hash != prev) {
      return Status::Corruption("chain linkage broken at block " +
                                std::to_string(i));
    }
    if (!b.VerifyTxnRoot()) {
      return Status::Corruption("merkle root mismatch at block " +
                                std::to_string(i));
    }
    prev = b.header.Hash();
  }
  return Status::OK();
}

crypto::Hash256 Chain::TipHash() const {
  return blocks_.empty() ? crypto::Hash256::Zero()
                         : blocks_.back().header.Hash();
}

Result<crypto::MerkleProof> Chain::ProveInclusion(size_t block_height,
                                                  size_t txn_index) const {
  if (block_height >= blocks_.size()) {
    return Status::InvalidArgument("no such block");
  }
  crypto::MerkleTree tree(blocks_[block_height].TxnDigests());
  return tree.Prove(txn_index);
}

bool Chain::VerifyInclusion(const BlockHeader& header,
                            const crypto::Hash256& txn_digest,
                            const crypto::MerkleProof& proof) {
  return crypto::MerkleTree::Verify(header.txn_root, txn_digest, proof);
}

bool Chain::SameAs(const Chain& other) const {
  if (blocks_.size() != other.blocks_.size()) return false;
  return PrefixConsistentWith(other);
}

bool Chain::PrefixConsistentWith(const Chain& other) const {
  size_t n = std::min(blocks_.size(), other.blocks_.size());
  for (size_t i = 0; i < n; ++i) {
    if (blocks_[i].header.Hash() != other.blocks_[i].header.Hash()) {
      return false;
    }
  }
  return true;
}

}  // namespace pbc::ledger
