#include "ledger/block.h"

namespace pbc::ledger {

crypto::Hash256 BlockHeader::Hash() const {
  crypto::Sha256 h;
  h.Update(std::string("pbc-block-header"));
  h.UpdateU64(height);
  h.Update(prev_hash);
  h.Update(txn_root);
  h.UpdateU64(timestamp_us);
  return h.Finalize();
}

std::vector<crypto::Hash256> Block::TxnDigests() const {
  std::vector<crypto::Hash256> digests;
  digests.reserve(txns.size());
  for (const auto& t : txns) digests.push_back(t.Digest());
  return digests;
}

Block Block::Make(uint64_t height, const crypto::Hash256& prev_hash,
                  std::vector<txn::Transaction> txns, uint64_t timestamp_us) {
  Block b;
  b.header.height = height;
  b.header.prev_hash = prev_hash;
  b.header.timestamp_us = timestamp_us;
  b.txns = std::move(txns);
  crypto::MerkleTree tree(b.TxnDigests());
  b.header.txn_root = tree.root();
  return b;
}

bool Block::VerifyTxnRoot() const {
  crypto::MerkleTree tree(TxnDigests());
  return tree.root() == header.txn_root;
}

}  // namespace pbc::ledger
