#include "workload/workload.h"

#include "confidential/caper.h"

namespace pbc::workload {

ZipfianKv::ZipfianKv(Options options, uint64_t seed)
    : opt_(options),
      rng_(seed),
      zipf_(options.cold_keys, options.zipf_theta) {}

txn::Transaction ZipfianKv::Next() {
  txn::Transaction t;
  t.id = next_id_++;
  for (int i = 0; i < opt_.ops_per_txn; ++i) {
    std::string key;
    if (opt_.hot_probability > 0 && rng_.Bernoulli(opt_.hot_probability)) {
      key = "hot" + std::to_string(rng_.NextU64(opt_.hot_keys));
    } else {
      key = "key" + std::to_string(zipf_.Next(&rng_));
    }
    t.ops.push_back(txn::Op::Increment(key, 1));
  }
  if (opt_.compute_rounds > 0) {
    t.ops.push_back(txn::Op::Compute(opt_.compute_rounds));
  }
  return t;
}

std::vector<txn::Transaction> ZipfianKv::Block(size_t n) {
  std::vector<txn::Transaction> block;
  block.reserve(n);
  for (size_t i = 0; i < n; ++i) block.push_back(Next());
  return block;
}

SmallBank::SmallBank(uint64_t accounts, int64_t initial_balance,
                     uint64_t seed)
    : accounts_(accounts), initial_balance_(initial_balance), rng_(seed) {}

std::vector<txn::Transaction> SmallBank::InitialDeposits() {
  std::vector<txn::Transaction> txns;
  for (uint64_t i = 0; i < accounts_; ++i) {
    txn::Transaction t;
    t.id = next_id_++;
    t.ops.push_back(txn::Op::Increment(Account(i), initial_balance_));
    txns.push_back(std::move(t));
  }
  return txns;
}

txn::Transaction SmallBank::NextTransfer() {
  uint64_t from = rng_.NextU64(accounts_);
  uint64_t to = rng_.NextU64(accounts_);
  if (to == from) to = (to + 1) % accounts_;
  txn::Transaction t;
  t.id = next_id_++;
  t.ops.push_back(
      txn::Op::Transfer(Account(from), Account(to), 1 + rng_.NextU64(10)));
  return t;
}

SupplyChain::SupplyChain(uint32_t enterprises, double cross_fraction,
                         uint64_t seed)
    : enterprises_(enterprises),
      cross_fraction_(cross_fraction),
      rng_(seed) {}

SupplyChain::Step SupplyChain::Next() {
  Step step;
  step.txn.id = next_id_++;
  if (rng_.Bernoulli(cross_fraction_)) {
    // Cross-enterprise hand-off recorded on the shared ledger.
    step.cross = true;
    step.txn.ops.push_back(txn::Op::Increment(
        confidential::CaperSystem::SharedKey(
            "shipment" + std::to_string(shipment_++ % 64)),
        1));
  } else {
    step.cross = false;
    step.enterprise = static_cast<txn::EnterpriseId>(
        rng_.NextU64(enterprises_));
    step.txn.ops.push_back(txn::Op::Increment(
        confidential::CaperSystem::PrivateKeyFor(
            step.enterprise, "process" + std::to_string(rng_.NextU64(32))),
        1));
  }
  return step;
}

ShardedTransfers::ShardedTransfers(uint32_t shards,
                                   uint64_t accounts_per_shard,
                                   int64_t initial_balance,
                                   double cross_fraction, uint64_t seed)
    : shards_(shards),
      accounts_per_shard_(accounts_per_shard),
      initial_balance_(initial_balance),
      cross_fraction_(cross_fraction),
      rng_(seed) {}

std::vector<txn::Transaction> ShardedTransfers::InitialDeposits() {
  std::vector<txn::Transaction> txns;
  for (uint32_t s = 0; s < shards_; ++s) {
    for (uint64_t a = 0; a < accounts_per_shard_; ++a) {
      txn::Transaction t;
      t.id = next_id_++;
      t.ops.push_back(txn::Op::Increment(Account(s, a), initial_balance_));
      txns.push_back(std::move(t));
    }
  }
  return txns;
}

txn::Transaction ShardedTransfers::NextTransfer() {
  uint32_t src_shard = static_cast<uint32_t>(rng_.NextU64(shards_));
  uint32_t dst_shard = src_shard;
  if (shards_ > 1 && rng_.Bernoulli(cross_fraction_)) {
    dst_shard = static_cast<uint32_t>(rng_.NextU64(shards_));
    if (dst_shard == src_shard) dst_shard = (dst_shard + 1) % shards_;
  }
  uint64_t src = rng_.NextU64(accounts_per_shard_);
  uint64_t dst = rng_.NextU64(accounts_per_shard_);
  if (src_shard == dst_shard && src == dst) {
    dst = (dst + 1) % accounts_per_shard_;
  }
  txn::Transaction t;
  t.id = next_id_++;
  int64_t amount = 1 + rng_.NextU64(5);
  // Cross-shard transfers decompose into guarded debit + credit so each
  // shard can prepare its half (see shard/common.h).
  t.ops.push_back(txn::Op::Increment(Account(src_shard, src), -amount));
  t.ops.push_back(txn::Op::Increment(Account(dst_shard, dst), amount));
  return t;
}

}  // namespace pbc::workload
