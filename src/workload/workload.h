// Synthetic workload generators (the substitution for the paper systems'
// proprietary benchmarks — see DESIGN.md §2). Every generator is a pure
// function of its Rng, so experiment runs replay from a seed.
#ifndef PBC_WORKLOAD_WORKLOAD_H_
#define PBC_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "txn/transaction.h"

namespace pbc::workload {

/// \brief Read-modify-write KV workload with tunable contention.
///
/// Each transaction increments `ops_per_txn` keys; with probability
/// `hot_probability` a key is drawn from a small hot set (size `hot_keys`),
/// otherwise from `cold_keys` uniformly. `compute_rounds` adds execution
/// cost per transaction (models contract logic) so parallel-execution
/// speedups are measurable.
class ZipfianKv {
 public:
  struct Options {
    uint64_t cold_keys = 10000;
    uint64_t hot_keys = 4;
    double hot_probability = 0.0;
    int ops_per_txn = 2;
    int64_t compute_rounds = 0;
    double zipf_theta = 0.0;  ///< skew of the cold-key draw
  };

  explicit ZipfianKv(Options options, uint64_t seed = 1);

  txn::Transaction Next();
  std::vector<txn::Transaction> Block(size_t n);

 private:
  Options opt_;
  Rng rng_;
  Zipfian zipf_;
  txn::TxnId next_id_ = 1;
};

/// \brief SmallBank-style transfer workload over `accounts` accounts, each
/// seeded with `initial_balance`. Produces guarded transfers; conservation
/// of total balance is the workload invariant.
class SmallBank {
 public:
  SmallBank(uint64_t accounts, int64_t initial_balance, uint64_t seed = 1);

  /// The deposits establishing initial balances.
  std::vector<txn::Transaction> InitialDeposits();
  txn::Transaction NextTransfer();

  int64_t expected_total() const {
    return static_cast<int64_t>(accounts_) * initial_balance_;
  }
  static std::string Account(uint64_t i) {
    return "acct" + std::to_string(i);
  }

 private:
  uint64_t accounts_;
  int64_t initial_balance_;
  Rng rng_;
  txn::TxnId next_id_ = 1;
};

/// \brief Supply-chain mix (§2.1.1): each enterprise updates its private
/// process state (internal) and occasionally records a cross-enterprise
/// hand-off (cross). `cross_fraction` controls the mix.
class SupplyChain {
 public:
  SupplyChain(uint32_t enterprises, double cross_fraction,
              uint64_t seed = 1);

  struct Step {
    bool cross = false;
    txn::EnterpriseId enterprise = 0;  ///< submitter (internal only)
    txn::Transaction txn;
  };
  Step Next();

 private:
  uint32_t enterprises_;
  double cross_fraction_;
  Rng rng_;
  txn::TxnId next_id_ = 1;
  uint64_t shipment_ = 0;
};

/// \brief Sharded transfer workload (§2.1.2): accounts are pinned to
/// shards ("s<id>/acct<i>"); `cross_fraction` of transfers span shards.
class ShardedTransfers {
 public:
  ShardedTransfers(uint32_t shards, uint64_t accounts_per_shard,
                   int64_t initial_balance, double cross_fraction,
                   uint64_t seed = 1);

  std::vector<txn::Transaction> InitialDeposits();
  txn::Transaction NextTransfer();

  int64_t expected_total() const {
    return static_cast<int64_t>(shards_) * accounts_per_shard_ *
           initial_balance_;
  }

 private:
  std::string Account(uint32_t shard, uint64_t index) const {
    return "s" + std::to_string(shard) + "/acct" + std::to_string(index);
  }

  uint32_t shards_;
  uint64_t accounts_per_shard_;
  int64_t initial_balance_;
  double cross_fraction_;
  Rng rng_;
  txn::TxnId next_id_ = 1;
};

}  // namespace pbc::workload

#endif  // PBC_WORKLOAD_WORKLOAD_H_
