// The XOV (execute-order-validate) family: Hyperledger Fabric and the
// optimizations built on it (§2.3.3).
//
//   XOV (Fabric)  — endorse against the pre-block snapshot, order, then
//                   MVCC-validate serially; stale reads abort.
//   FastFabric    — identical semantics, but the validation pipeline
//                   (signature + rwset checks) runs in parallel.
//   XOX Fabric    — adds a post-order execution step that deterministically
//                   re-executes invalidated transactions against fresh
//                   state instead of aborting them.
//
// Endorsement is simulated execution: it produces a read set (with observed
// versions) and a write set but does NOT mutate state — exactly Fabric's
// endorsement phase. All endorsements for a block run against the same
// snapshot (the state at block entry), which is what makes intra-block
// read-write conflicts possible and is the behaviour Fabric++/FabricSharp
// exist to fix (see reorder.h).
#ifndef PBC_ARCH_XOV_H_
#define PBC_ARCH_XOV_H_

#include "arch/architecture.h"
#include "block/validator.h"

namespace pbc::arch {

/// \brief One endorsed transaction: the proposal plus its rwset. Shared
/// with the block layer so reorder plans feed block::GateAndCommit
/// directly.
using Endorsed = block::Endorsed;

/// \brief Shared XOV machinery.
///
/// The phase boundary is explicit: EndorseAll freezes the pre-block
/// snapshot (phase X reads it, never the live store), and the only writes
/// happen inside the single serial block::GateAndCommit scan (phase V).
/// Serial and parallel variants therefore agree by construction — they
/// run the same gate over order-independent endorsements.
class XovBase : public Architecture {
 public:
  /// `validation_cost_rounds`: hash rounds charged per transaction during
  /// validation (models signature/endorsement-policy checking — the cost
  /// FastFabric parallelizes).
  XovBase(ThreadPool* pool, int validation_cost_rounds = 0)
      : Architecture(pool), validation_cost_(validation_cost_rounds) {}

 protected:
  /// Phase X: endorse every transaction in parallel against the current
  /// committed state (the pre-block snapshot).
  std::vector<Endorsed> EndorseAll(
      const std::vector<txn::Transaction>& block);

  /// Burns the per-transaction validation cost (deterministic hashing).
  void ChargeValidation(const txn::Transaction& txn) const;

  /// Phase V: runs the serial MVCC gate over `endorsed` visiting indices
  /// in `order`, updates committed/aborted stats, and returns the
  /// effective transactions in commit order.
  std::vector<txn::Transaction> GateBlock(std::vector<Endorsed>* endorsed,
                                          const std::vector<size_t>& order);

  int validation_cost_;
};

/// \brief Plain Fabric: serial validation, conflicting transactions abort.
class XovArchitecture : public XovBase {
 public:
  using XovBase::XovBase;
  using Architecture::ProcessBlock;
  const char* name() const override { return "XOV"; }
  void ProcessBlock(const std::vector<txn::Transaction>& block) override;
};

/// \brief FastFabric: the expensive per-transaction validation checks run
/// in parallel; only the (cheap) sequential commit step is serial. Driven
/// by block::ParallelValidator on the work-stealing pool.
class FastFabricArchitecture : public XovBase {
 public:
  using XovBase::XovBase;
  using Architecture::ProcessBlock;
  const char* name() const override { return "FastFabric"; }
  void ProcessBlock(const std::vector<txn::Transaction>& block) override;
};

/// \brief XOX Fabric: invalidated transactions are re-executed
/// deterministically after validation instead of aborting.
class XoxArchitecture : public XovBase {
 public:
  using XovBase::XovBase;
  using Architecture::ProcessBlock;
  const char* name() const override { return "XOX"; }
  void ProcessBlock(const std::vector<txn::Transaction>& block) override;
};

}  // namespace pbc::arch

#endif  // PBC_ARCH_XOV_H_
