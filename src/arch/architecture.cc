#include "arch/architecture.h"

#include "obs/metrics.h"
#include "store/durable_ledger.h"

namespace pbc::arch {

void Architecture::ExportMetrics(obs::MetricsRegistry* m) const {
  if (m == nullptr) return;
  m->GetCounter("arch.blocks")->Add(stats_.blocks);
  m->GetCounter("arch.committed")->Add(stats_.committed);
  m->GetCounter("arch.aborted")->Add(stats_.aborted);
  m->GetCounter("arch.early_aborted")->Add(stats_.early_aborted);
  m->GetCounter("arch.reordered")->Add(stats_.reordered);
  m->GetCounter("arch.reexecuted")->Add(stats_.reexecuted);
  m->GetCounter("arch.dag_edges")->Add(stats_.dag_edges);
  m->GetCounter("arch.dag_levels")->Add(stats_.dag_levels);
}

void Architecture::AppendLedgerBlock(
    std::vector<txn::Transaction> effective) {
  ++stats_.blocks;
  if (effective.empty()) return;
  ledger::Block block = ledger::Block::Make(
      chain_.height(), chain_.TipHash(), std::move(effective));
  Status s = chain_.Append(std::move(block));
  (void)s;
  if (durable_ != nullptr) durable_->Persist(chain_);
}

void OxArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  txn::ExecuteSerial(block, &store_);
  stats_.committed += block.size();
  AppendLedgerBlock(block);
}

void OxiiArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  // Order phase artifact: the dependency graph the orderers would attach.
  auto graph = txn::DependencyGraph::Build(block);
  stats_.dag_edges += graph.num_edges();
  auto exec_stats = txn::ExecuteDag(block, graph, pool_, &store_);
  stats_.dag_levels += exec_stats.levels;
  stats_.committed += block.size();
  AppendLedgerBlock(block);
}

}  // namespace pbc::arch
