#include "arch/reorder.h"

#include <algorithm>
#include <map>
#include <set>

namespace pbc::arch {

std::vector<std::vector<size_t>> BuildConflictGraph(
    const std::vector<Endorsed>& endorsed) {
  size_t n = endorsed.size();
  // key -> writers
  std::map<store::Key, std::vector<size_t>> writers;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& w : endorsed[i].result.writes.writes()) {
      writers[w.key].push_back(i);
    }
  }
  std::vector<std::set<size_t>> adj_sets(n);
  for (size_t i = 0; i < n; ++i) {
    for (const auto& r : endorsed[i].result.reads) {
      auto it = writers.find(r.key);
      if (it == writers.end()) continue;
      for (size_t w : it->second) {
        if (w != i) adj_sets[i].insert(w);  // reader i before writer w
      }
    }
  }
  std::vector<std::vector<size_t>> adjacency(n);
  for (size_t i = 0; i < n; ++i) {
    adjacency[i].assign(adj_sets[i].begin(), adj_sets[i].end());
  }
  return adjacency;
}

namespace {

struct TarjanState {
  const std::vector<std::vector<size_t>>* adj;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<size_t> stack;
  int next_index = 0;
  std::vector<std::vector<size_t>> sccs;

  void Visit(size_t v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (size_t w : (*adj)[v]) {
      if (index[w] < 0) {
        Visit(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<size_t> scc;
      for (;;) {
        size_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

// Greedy feedback vertex set inside one SCC: repeatedly remove the vertex
// with the largest (in-degree × out-degree) until the remaining subgraph
// is acyclic, recursing on residual SCCs.
void BreakCycles(const std::vector<std::vector<size_t>>& adjacency,
                 std::vector<size_t> members, std::set<size_t>* removed) {
  if (members.size() <= 1) return;
  std::set<size_t> alive(members.begin(), members.end());

  // Degrees restricted to the alive subgraph.
  auto pick_victim = [&]() {
    std::map<size_t, size_t> in_deg, out_deg;
    for (size_t u : alive) {
      for (size_t v : adjacency[u]) {
        if (alive.count(v) > 0) {
          out_deg[u]++;
          in_deg[v]++;
        }
      }
    }
    size_t best = *alive.begin();
    size_t best_score = 0;
    for (size_t u : alive) {
      size_t score = (in_deg[u] + 1) * (out_deg[u] + 1);
      if (score > best_score) {
        best_score = score;
        best = u;
      }
    }
    return best;
  };

  // Remove victims until the alive subgraph has no non-trivial SCC.
  for (;;) {
    // Build subgraph with compact ids.
    std::vector<size_t> ids(alive.begin(), alive.end());
    std::map<size_t, size_t> to_compact;
    for (size_t i = 0; i < ids.size(); ++i) to_compact[ids[i]] = i;
    std::vector<std::vector<size_t>> sub(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t v : adjacency[ids[i]]) {
        auto it = to_compact.find(v);
        if (it != to_compact.end()) sub[i].push_back(it->second);
      }
    }
    auto sccs = StronglyConnectedComponents(sub);
    bool cyclic = false;
    for (const auto& scc : sccs) {
      if (scc.size() > 1) {
        cyclic = true;
        break;
      }
      // Self-loops cannot occur: a txn never conflicts with itself.
    }
    if (!cyclic) return;
    size_t victim = pick_victim();
    removed->insert(victim);
    alive.erase(victim);
    if (alive.size() <= 1) return;
  }
}

}  // namespace

std::vector<std::vector<size_t>> StronglyConnectedComponents(
    const std::vector<std::vector<size_t>>& adjacency) {
  TarjanState st;
  st.adj = &adjacency;
  size_t n = adjacency.size();
  st.index.assign(n, -1);
  st.lowlink.assign(n, 0);
  st.on_stack.assign(n, false);
  for (size_t v = 0; v < n; ++v) {
    if (st.index[v] < 0) st.Visit(v);
  }
  return st.sccs;
}

ReorderResult ReorderBlock(const std::vector<Endorsed>& endorsed,
                           bool minimal_aborts) {
  size_t n = endorsed.size();
  auto adjacency = BuildConflictGraph(endorsed);
  auto sccs = StronglyConnectedComponents(adjacency);

  std::set<size_t> removed;
  for (const auto& scc : sccs) {
    if (scc.size() <= 1) continue;
    if (minimal_aborts) {
      BreakCycles(adjacency, scc, &removed);  // FabricSharp
    } else {
      removed.insert(scc.begin(), scc.end());  // Fabric++
    }
  }

  // Kahn topological sort of the surviving vertices, preferring original
  // block order among ready vertices (stable, deterministic).
  std::vector<size_t> in_deg(n, 0);
  for (size_t u = 0; u < n; ++u) {
    if (removed.count(u) > 0) continue;
    for (size_t v : adjacency[u]) {
      if (removed.count(v) == 0) ++in_deg[v];
    }
  }
  ReorderResult result;
  result.aborted.assign(removed.begin(), removed.end());
  std::set<size_t> ready;
  for (size_t u = 0; u < n; ++u) {
    if (removed.count(u) == 0 && in_deg[u] == 0) ready.insert(u);
  }
  while (!ready.empty()) {
    size_t u = *ready.begin();
    ready.erase(ready.begin());
    result.order.push_back(u);
    for (size_t v : adjacency[u]) {
      if (removed.count(v) > 0) continue;
      if (--in_deg[v] == 0) ready.insert(v);
    }
  }
  return result;
}

}  // namespace pbc::arch
