// Transaction-processing architectures (§2.3.3 of the survey).
//
// An Architecture consumes ordered blocks of transactions and maintains the
// blockchain state (KvStore) plus the hash-chained ledger of *effective*
// (committed) transactions. The three families:
//   OX   — order-execute: sequential deterministic execution (Tendermint,
//          Quorum, Multichain, Iroha, Corda).
//   OXII — order-(parallel execute): orderers attach a conflict/dependency
//          graph; executors run non-conflicting transactions concurrently
//          (ParBlockchain).
//   XOV  — execute-order-validate: endorse (simulate) first, order, then
//          MVCC-validate; conflicting transactions abort (Fabric) — see
//          xov.h for Fabric and its descendants.
//
// Ordering itself is pluggable: benchmarks E1–E3 drive architectures with
// an in-process sequencer to isolate execution behaviour, exactly the
// methodological split the survey draws between the order and execute
// phases; consensus cost is measured separately (E4).
#ifndef PBC_ARCH_ARCHITECTURE_H_
#define PBC_ARCH_ARCHITECTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "ledger/chain.h"
#include "store/kv_store.h"
#include "txn/dependency_graph.h"
#include "txn/executor.h"
#include "txn/transaction.h"

namespace pbc::obs {
class MetricsRegistry;
}  // namespace pbc::obs

namespace pbc::store {
class DurableLedger;
}  // namespace pbc::store

namespace pbc::arch {

/// \brief Counters accumulated across processed blocks.
struct ArchStats {
  uint64_t blocks = 0;
  uint64_t committed = 0;      ///< transactions whose effects applied
  uint64_t aborted = 0;        ///< discarded due to read-write conflicts
  uint64_t early_aborted = 0;  ///< filtered before validation (FabricSharp)
  uint64_t reordered = 0;      ///< txns moved by intra-block reordering
  uint64_t reexecuted = 0;     ///< re-run post-validation (XOX)
  uint64_t dag_edges = 0;      ///< conflict edges seen by OXII orderers
  uint64_t dag_levels = 0;     ///< cumulative parallel levels (OXII)
};

/// \brief Common interface: feed ordered blocks, observe state + ledger.
class Architecture {
 public:
  explicit Architecture(ThreadPool* pool) : pool_(pool) {}
  virtual ~Architecture() = default;

  virtual const char* name() const = 0;

  /// Processes one ordered block. Appends the effective transactions to
  /// the ledger and updates the state store.
  virtual void ProcessBlock(const std::vector<txn::Transaction>& block) = 0;

  /// Consumes an ordered block body as produced by the consensus layer's
  /// block pipeline (derived classes re-export this via a using-declaration
  /// so the overload survives their ProcessBlock override).
  void ProcessBlock(const ledger::Block& block) { ProcessBlock(block.txns); }

  const store::KvStore& store() const { return store_; }
  const ledger::Chain& chain() const { return chain_; }
  const ArchStats& stats() const { return stats_; }

  /// Dumps the cumulative ArchStats into `m` as "arch.*" counters (no-op
  /// when `m` is nullptr). Used by the benches' JSON emitters.
  void ExportMetrics(obs::MetricsRegistry* m) const;

  /// Attaches a durable ledger (not owned; may be nullptr to detach):
  /// every ledger block appended from then on is persisted through it —
  /// the architecture-level commit path of the durability layer.
  void AttachDurableLedger(store::DurableLedger* durable) {
    durable_ = durable;
  }

 protected:
  /// Appends the given transactions as the next ledger block (no-op when
  /// empty, mirroring the consensus layer's skip of empty batches).
  void AppendLedgerBlock(std::vector<txn::Transaction> effective);

  ThreadPool* pool_;
  store::KvStore store_;
  ledger::Chain chain_;
  ArchStats stats_;
  store::DurableLedger* durable_ = nullptr;
};

/// \brief OX: execute every transaction sequentially in block order.
class OxArchitecture : public Architecture {
 public:
  using Architecture::Architecture;
  using Architecture::ProcessBlock;
  const char* name() const override { return "OX"; }
  void ProcessBlock(const std::vector<txn::Transaction>& block) override;
};

/// \brief OXII (ParBlockchain): dependency graph + parallel execution.
class OxiiArchitecture : public Architecture {
 public:
  using Architecture::Architecture;
  using Architecture::ProcessBlock;
  const char* name() const override { return "OXII"; }
  void ProcessBlock(const std::vector<txn::Transaction>& block) override;
};

}  // namespace pbc::arch

#endif  // PBC_ARCH_ARCHITECTURE_H_
