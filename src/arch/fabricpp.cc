#include "arch/fabricpp.h"

namespace pbc::arch {

void FabricPPArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);
  ReorderResult plan = ReorderBlock(endorsed, /*minimal_aborts=*/false);
  stats_.aborted += plan.aborted.size();

  std::vector<txn::Transaction> effective;
  for (size_t pos = 0; pos < plan.order.size(); ++pos) {
    size_t i = plan.order[pos];
    if (i != pos) ++stats_.reordered;
    Endorsed& e = endorsed[i];
    ChargeValidation(*e.txn);
    if (ValidateAndCommit(&e)) {
      ++stats_.committed;
      effective.push_back(*e.txn);
    } else {
      ++stats_.aborted;  // cross-block staleness still aborts
    }
  }
  AppendLedgerBlock(std::move(effective));
}

void FabricSharpArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);

  // Early filter: transactions whose reads are already stale against the
  // current state can never pass validation in any intra-block order —
  // drop them before spending reordering or validation effort on them.
  std::vector<Endorsed> viable;
  viable.reserve(endorsed.size());
  for (auto& e : endorsed) {
    if (store_.ValidateReadSet(e.result.reads)) {
      viable.push_back(std::move(e));
    } else {
      ++stats_.early_aborted;
    }
  }

  ReorderResult plan = ReorderBlock(viable, /*minimal_aborts=*/true);
  stats_.aborted += plan.aborted.size();

  std::vector<txn::Transaction> effective;
  for (size_t pos = 0; pos < plan.order.size(); ++pos) {
    size_t i = plan.order[pos];
    if (i != pos) ++stats_.reordered;
    Endorsed& e = viable[i];
    ChargeValidation(*e.txn);
    if (ValidateAndCommit(&e)) {
      ++stats_.committed;
      effective.push_back(*e.txn);
    } else {
      ++stats_.aborted;
    }
  }
  AppendLedgerBlock(std::move(effective));
}

}  // namespace pbc::arch
