#include "arch/fabricpp.h"

namespace pbc::arch {

void FabricPPArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);
  ReorderResult plan = ReorderBlock(endorsed, /*minimal_aborts=*/false);
  stats_.aborted += plan.aborted.size();
  for (size_t i : plan.aborted) endorsed[i].valid = false;

  for (size_t pos = 0; pos < plan.order.size(); ++pos) {
    if (plan.order[pos] != pos) ++stats_.reordered;
    ChargeValidation(*endorsed[plan.order[pos]].txn);
  }
  // The reordered plan feeds the same serial gate the other validators
  // use; cross-block staleness still aborts inside it.
  AppendLedgerBlock(GateBlock(&endorsed, plan.order));
}

void FabricSharpArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);

  // Early filter: transactions whose reads are already stale against the
  // current state can never pass validation in any intra-block order —
  // drop them before spending reordering or validation effort on them.
  std::vector<Endorsed> viable;
  viable.reserve(endorsed.size());
  for (auto& e : endorsed) {
    if (store_.ValidateReadSet(e.result.reads)) {
      viable.push_back(std::move(e));
    } else {
      ++stats_.early_aborted;
    }
  }

  ReorderResult plan = ReorderBlock(viable, /*minimal_aborts=*/true);
  stats_.aborted += plan.aborted.size();
  for (size_t i : plan.aborted) viable[i].valid = false;

  for (size_t pos = 0; pos < plan.order.size(); ++pos) {
    if (plan.order[pos] != pos) ++stats_.reordered;
    ChargeValidation(*viable[plan.order[pos]].txn);
  }
  AppendLedgerBlock(GateBlock(&viable, plan.order));
}

}  // namespace pbc::arch
