#include "arch/xov.h"

#include <numeric>

namespace pbc::arch {

std::vector<Endorsed> XovBase::EndorseAll(
    const std::vector<txn::Transaction>& block) {
  std::vector<Endorsed> endorsed(block.size());
  store::Version snapshot = store_.last_committed();
  const store::KvStore* cstore = &store_;
  pool_->ParallelFor(block.size(), [&](size_t i) {
    endorsed[i].txn = &block[i];
    endorsed[i].result =
        txn::Execute(block[i], txn::SnapshotReader(cstore, snapshot));
  });
  return endorsed;
}

void XovBase::ChargeValidation(const txn::Transaction& txn) const {
  block::ChargeValidationCost(txn, validation_cost_);
}

std::vector<txn::Transaction> XovBase::GateBlock(
    std::vector<Endorsed>* endorsed, const std::vector<size_t>& order) {
  size_t committed = block::GateAndCommit(endorsed, order, &store_);
  stats_.committed += committed;
  stats_.aborted += order.size() - committed;
  std::vector<txn::Transaction> effective;
  effective.reserve(committed);
  for (size_t i : order) {
    if ((*endorsed)[i].valid) effective.push_back(*(*endorsed)[i].txn);
  }
  return effective;
}

void XovArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);
  // Serial validation pipeline: the per-txn checks run one by one before
  // the single commit scan.
  for (const auto& e : endorsed) ChargeValidation(*e.txn);
  std::vector<size_t> order(block.size());
  std::iota(order.begin(), order.end(), size_t{0});
  AppendLedgerBlock(GateBlock(&endorsed, order));
}

void FastFabricArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  // FastFabric = the parallel block validator: endorsement and the
  // per-transaction checks fan out over the pool (level-parallel across
  // the conflict graph); only the MVCC gate stays serial.
  block::ParallelValidator validator(pool_, &store_, validation_cost_);
  std::vector<bool> valid = validator.ProcessBlock(block);
  stats_.committed += validator.stats().committed;
  stats_.aborted += validator.stats().aborted;
  stats_.dag_edges += validator.stats().conflict_edges;
  stats_.dag_levels += validator.stats().levels;
  std::vector<txn::Transaction> effective;
  effective.reserve(block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    if (valid[i]) effective.push_back(block[i]);
  }
  AppendLedgerBlock(std::move(effective));
}

void XoxArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);
  for (const auto& e : endorsed) ChargeValidation(*e.txn);
  std::vector<size_t> order(block.size());
  std::iota(order.begin(), order.end(), size_t{0});
  size_t committed = block::GateAndCommit(&endorsed, order, &store_);
  stats_.committed += committed;
  std::vector<txn::Transaction> effective;
  effective.reserve(block.size());
  for (const auto& e : endorsed) {
    if (e.valid) effective.push_back(*e.txn);
  }
  // Post-order execution step: deterministically re-execute the
  // invalidated transactions against fresh state, in block order. Every
  // replica performs the same re-execution, so determinism is preserved.
  for (const auto& e : endorsed) {
    if (e.valid) continue;
    txn::ExecResult r = txn::Execute(*e.txn, txn::LatestReader(&store_));
    if (!r.writes.empty()) {
      store_.ApplyBatch(r.writes, store_.last_committed() + 1);
    }
    ++stats_.reexecuted;
    ++stats_.committed;
    effective.push_back(*e.txn);
  }
  AppendLedgerBlock(std::move(effective));
}

}  // namespace pbc::arch
