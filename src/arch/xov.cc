#include "arch/xov.h"

#include "crypto/sha256.h"

namespace pbc::arch {

std::vector<Endorsed> XovBase::EndorseAll(
    const std::vector<txn::Transaction>& block) {
  std::vector<Endorsed> endorsed(block.size());
  store::Version snapshot = store_.last_committed();
  const store::KvStore* cstore = &store_;
  pool_->ParallelFor(block.size(), [&](size_t i) {
    endorsed[i].txn = &block[i];
    endorsed[i].result =
        txn::Execute(block[i], txn::SnapshotReader(cstore, snapshot));
  });
  return endorsed;
}

void XovBase::ChargeValidation(const txn::Transaction& txn) const {
  if (validation_cost_ <= 0) return;
  crypto::Hash256 acc = txn.Digest();
  for (int i = 0; i < validation_cost_; ++i) {
    crypto::Sha256 h;
    h.Update(acc);
    acc = h.Finalize();
  }
  // Keep the loop observable.
  if (acc.bytes[0] == 0xff && acc.bytes[1] == 0xff && acc.bytes[2] == 0xff &&
      acc.bytes[3] == 0xff && acc.bytes[4] == 0xff) {
    std::abort();  // probability ~2^-40; defeats dead-code elimination
  }
}

bool XovBase::ValidateAndCommit(Endorsed* e) {
  if (!store_.ValidateReadSet(e->result.reads)) {
    e->valid = false;
    return false;
  }
  if (!e->result.writes.empty()) {
    store_.ApplyBatch(e->result.writes, store_.last_committed() + 1);
  }
  return true;
}

void XovArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);
  std::vector<txn::Transaction> effective;
  for (auto& e : endorsed) {
    ChargeValidation(*e.txn);  // serial validation pipeline
    if (ValidateAndCommit(&e)) {
      ++stats_.committed;
      effective.push_back(*e.txn);
    } else {
      ++stats_.aborted;
    }
  }
  AppendLedgerBlock(std::move(effective));
}

void FastFabricArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);
  // Parallel validation pipeline: the per-transaction checks (signature,
  // endorsement policy — modeled by ChargeValidation) are independent and
  // run across the pool. The MVCC check + commit remains a fast serial
  // scan, as in FastFabric's design.
  pool_->ParallelFor(endorsed.size(),
                     [&](size_t i) { ChargeValidation(*endorsed[i].txn); });
  std::vector<txn::Transaction> effective;
  for (auto& e : endorsed) {
    if (ValidateAndCommit(&e)) {
      ++stats_.committed;
      effective.push_back(*e.txn);
    } else {
      ++stats_.aborted;
    }
  }
  AppendLedgerBlock(std::move(effective));
}

void XoxArchitecture::ProcessBlock(
    const std::vector<txn::Transaction>& block) {
  auto endorsed = EndorseAll(block);
  std::vector<txn::Transaction> effective;
  std::vector<const txn::Transaction*> invalidated;
  for (auto& e : endorsed) {
    ChargeValidation(*e.txn);
    if (ValidateAndCommit(&e)) {
      ++stats_.committed;
      effective.push_back(*e.txn);
    } else {
      invalidated.push_back(e.txn);
    }
  }
  // Post-order execution step: deterministically re-execute the
  // invalidated transactions against fresh state, in block order. Every
  // replica performs the same re-execution, so determinism is preserved.
  for (const txn::Transaction* t : invalidated) {
    txn::ExecResult r = txn::Execute(*t, txn::LatestReader(&store_));
    if (!r.writes.empty()) {
      store_.ApplyBatch(r.writes, store_.last_committed() + 1);
    }
    ++stats_.reexecuted;
    ++stats_.committed;
    effective.push_back(*t);
  }
  AppendLedgerBlock(std::move(effective));
}

}  // namespace pbc::arch
