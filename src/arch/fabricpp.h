// Fabric++ and FabricSharp architectures: XOV plus intra-block reordering
// (see reorder.h for the algorithms and the modeling notes).
#ifndef PBC_ARCH_FABRICPP_H_
#define PBC_ARCH_FABRICPP_H_

#include "arch/reorder.h"
#include "arch/xov.h"

namespace pbc::arch {

/// \brief Fabric++: reorder within the block to a serializable order;
/// abort every transaction caught on a dependency cycle.
class FabricPPArchitecture : public XovBase {
 public:
  using XovBase::XovBase;
  using Architecture::ProcessBlock;
  const char* name() const override { return "Fabric++"; }
  void ProcessBlock(const std::vector<txn::Transaction>& block) override;
};

/// \brief FabricSharp: early-filter transactions that can never commit
/// (stale reads at ordering time), then reorder aborting only a minimal
/// feedback vertex set.
class FabricSharpArchitecture : public XovBase {
 public:
  using XovBase::XovBase;
  using Architecture::ProcessBlock;
  const char* name() const override { return "FabricSharp"; }
  void ProcessBlock(const std::vector<txn::Transaction>& block) override;
};

}  // namespace pbc::arch

#endif  // PBC_ARCH_FABRICPP_H_
