// Intra-block transaction reordering (Fabric++ [54] / FabricSharp [52]).
//
// Because XOV endorses every transaction of a block against the same
// pre-block snapshot, a transaction's read stays valid as long as it
// commits *before* any transaction that writes the keys it read. Building
// the directed conflict graph with an edge reader→writer per shared key,
// any topological order commits every transaction — unless the graph has
// cycles, in which case some transactions must abort to break them.
//
//   Fabric++    (modeled): aborts every transaction on a cycle (any vertex
//                in a non-trivial SCC), then commits the rest in
//                topological order. Conservative, simple, strictly fewer
//                aborts than plain Fabric on conflicting workloads.
//   FabricSharp (modeled): aborts only a (greedy) feedback vertex set —
//                the minimum cuts it can find — so strictly fewer aborts
//                than Fabric++'s whole-SCC policy; additionally it filters
//                transactions whose reads are already stale against the
//                current state *before* spending validation work on them.
#ifndef PBC_ARCH_REORDER_H_
#define PBC_ARCH_REORDER_H_

#include <cstddef>
#include <vector>

#include "arch/xov.h"

namespace pbc::arch {

/// \brief Outcome of intra-block reordering.
struct ReorderResult {
  /// Commit order (indices into the endorsed block), cycle members removed.
  std::vector<size_t> order;
  /// Indices aborted to break cycles.
  std::vector<size_t> aborted;
};

/// \brief Builds the reader→writer conflict graph over endorsed rwsets.
/// adjacency[u] holds v iff some key read by u is written by v (u must
/// commit before v).
std::vector<std::vector<size_t>> BuildConflictGraph(
    const std::vector<Endorsed>& endorsed);

/// \brief Reorders a block.
///
/// `minimal_aborts == false` → Fabric++ policy (abort whole SCCs);
/// `minimal_aborts == true`  → FabricSharp policy (greedy feedback vertex
/// set).
ReorderResult ReorderBlock(const std::vector<Endorsed>& endorsed,
                           bool minimal_aborts);

/// \brief Strongly connected components (Tarjan), returned as lists of
/// vertex indices; exposed for testing.
std::vector<std::vector<size_t>> StronglyConnectedComponents(
    const std::vector<std::vector<size_t>>& adjacency);

}  // namespace pbc::arch

#endif  // PBC_ARCH_REORDER_H_
