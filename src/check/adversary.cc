#include "check/adversary.h"

#include <algorithm>
#include <set>
#include <utility>

namespace pbc::check {

namespace {

struct ModeRow {
  AdversaryMode mode;
  const char* name;
};
constexpr ModeRow kModeTable[] = {
    {AdversaryMode::kRandom, "random"},
    {AdversaryMode::kLeader, "leader"},
    {AdversaryMode::kQuorum, "quorum"},
    {AdversaryMode::kChurn, "churn"},
};
static_assert(std::size(kModeTable) == std::size(kAllAdversaryModes),
              "mode name table out of sync with kAllAdversaryModes");

}  // namespace

const char* AdversaryModeName(AdversaryMode mode) {
  for (const ModeRow& row : kModeTable) {
    if (row.mode == mode) return row.name;
  }
  return "?";
}

bool ParseAdversaryMode(const std::string& name, AdversaryMode* out) {
  for (const ModeRow& row : kModeTable) {
    if (name == row.name) {
      *out = row.mode;
      return true;
    }
  }
  return false;
}

ReactiveNemesis::ReactiveNemesis(Options options, sim::Simulator* sim,
                                 sim::Network* net, GroupObserver observer,
                                 ByzantineFlip flip)
    : options_(std::move(options)),
      sim_(sim),
      net_(net),
      observer_(std::move(observer)),
      flip_(std::move(flip)),
      // Private stream, distinct from the generator's and the simulator's,
      // so adaptive and random modes never share randomness.
      rng_(options_.seed ^ 0x5245414354A5A5ULL),
      state_(options_.topology.groups.size()) {}

void ReactiveNemesis::Arm() {
  sim_->Schedule(options_.tick_us, [this] { Tick(); });
}

NemesisSchedule ReactiveNemesis::Trace() const {
  std::vector<NemesisEvent> events = events_;
  std::stable_sort(events.begin(), events.end(),
                   [](const NemesisEvent& a, const NemesisEvent& b) {
                     return a.at < b.at;
                   });
  return NemesisSchedule::FromEvents(std::move(events));
}

bool ReactiveNemesis::IsNeverCrash(sim::NodeId id) const {
  const auto& nc = options_.topology.never_crash;
  return std::find(nc.begin(), nc.end(), id) != nc.end();
}

void ReactiveNemesis::Tick() {
  const sim::Time now = sim_->now();
  // Same contract as generated schedules: no fault *starts* after 55% of
  // the horizon (already-scheduled recovers/heals drain by 70%), so a
  // correct system always gets a fault-free tail to prove liveness in.
  if (now >= FaultStartMax()) return;
  for (size_t g = 0; g < options_.topology.groups.size(); ++g) {
    if (now < state_[g].busy_until) continue;
    GroupObservation obs = observer_ ? observer_(g) : GroupObservation{};
    switch (options_.mode) {
      case AdversaryMode::kRandom:
        break;  // not reactive; handled by NemesisSchedule::Generate
      case AdversaryMode::kLeader:
        LeaderTick(g, obs);
        break;
      case AdversaryMode::kQuorum:
        QuorumTick(g, obs);
        break;
      case AdversaryMode::kChurn:
        ChurnTick(g, obs);
        break;
    }
  }
  sim_->Schedule(options_.tick_us, [this] { Tick(); });
}

void ReactiveNemesis::LeaderTick(size_t g, const GroupObservation& obs) {
  const auto& group = options_.topology.groups[g];
  GroupState& st = state_[g];
  if (!obs.has_leader || obs.leader_index >= group.nodes.size()) return;
  const sim::Time now = sim_->now();

  // Phase 1 — crash the current leader once, forcing an election/view
  // change while it is down.
  if (!st.did_initial_crash) {
    st.did_initial_crash = true;  // one attempt, eligible or not
    sim::Time dur =
        options_.horizon / 20 + rng_.NextU64(options_.horizon / 40 + 1);
    sim::Time until = std::min(now + dur, FaultEnd());
    if (InjectCrash(g, group.nodes[obs.leader_index], until)) {
      st.busy_until = until + options_.horizon / 50;
      return;
    }
  }

  // Phase 2 (BFT only) — the leader observed after that forced election
  // is the proposer the cluster just rotated to; flip it to equivocation
  // so the proposer itself forks its proposals. Charged permanently
  // against the group's fault budget.
  if (options_.topology.supports_byzantine && !st.byzantine_used) {
    if (InjectByzantineFlip(g, obs.leader_index)) {
      st.busy_until = now + options_.horizon / 20;
      return;
    }
  }

  // Phase 3 — steady-state pressure: slow the fastest inbound link into
  // whoever currently leads (delays are free; they only reorder).
  sim::Time dur =
      options_.horizon / 20 + rng_.NextU64(options_.horizon / 30 + 1);
  sim::Time until = std::min(now + dur, FaultEnd());
  if (until > now && group.nodes.size() >= 2) {
    InjectLeaderDelay(g, obs.leader_index, until);
    st.busy_until = until;
  }
}

void ReactiveNemesis::QuorumTick(size_t g, const GroupObservation& obs) {
  const auto& group = options_.topology.groups[g];
  GroupState& st = state_[g];
  const sim::Time now = sim_->now();
  if (now < partition_busy_until_) return;
  // Sharded topologies forbid arbitrary splits (see NemesisTopology).
  if (!options_.topology.partition_whole_network) return;
  size_t leader_index =
      obs.has_leader && obs.leader_index < group.nodes.size()
          ? obs.leader_index
          : 0;  // no leader known yet: split around the rotation origin
  sim::Time dur =
      options_.horizon / 15 + rng_.NextU64(options_.horizon / 20 + 1);
  sim::Time until = std::min(now + dur, FaultEnd());
  if (until <= now) return;
  InjectQuorumPartition(g, leader_index, until);
  partition_busy_until_ = until + options_.horizon / 30;
  st.busy_until = partition_busy_until_;
}

void ReactiveNemesis::ChurnTick(size_t g, const GroupObservation& obs) {
  const auto& group = options_.topology.groups[g];
  GroupState& st = state_[g];
  if (!obs.has_leader || obs.leader_index >= group.nodes.size()) return;
  const sim::Time now = sim_->now();
  sim::Time dur =
      options_.horizon / 40 + rng_.NextU64(options_.horizon / 60 + 1);
  sim::Time until = std::min(now + dur, FaultEnd());
  if (until <= now) return;
  sim::NodeId victim = group.nodes[obs.leader_index];
  if (IsNeverCrash(victim)) {
    // Protected leader (a gateway): churn the expected successor instead.
    if (!obs.has_next_leader || obs.next_leader_index >= group.nodes.size()) {
      return;
    }
    victim = group.nodes[obs.next_leader_index];
  }
  if (InjectCrash(g, victim, until)) {
    // Short gap, then re-target whoever leads by the next tick: sustained
    // leader churn that follows leadership as it moves.
    st.busy_until = until + options_.horizon / 200;
  }
}

bool ReactiveNemesis::InjectCrash(size_t g, sim::NodeId victim,
                                  sim::Time until) {
  const auto& group = options_.topology.groups[g];
  GroupState& st = state_[g];
  if (st.active_faults >= group.max_faulty) return false;
  if (IsNeverCrash(victim) || net_->IsCrashed(victim)) return false;
  const sim::Time now = sim_->now();
  if (until <= now) return false;
  uint64_t window = next_window_++;
  NemesisEvent crash;
  crash.at = now;
  crash.kind = NemesisKind::kCrash;
  crash.window = window;
  crash.node = victim;
  NemesisEvent recover = crash;
  recover.at = until;
  recover.kind = NemesisKind::kRecover;
  events_.push_back(crash);
  events_.push_back(recover);
  ++st.active_faults;
  net_->Crash(victim);
  sim_->Schedule(until - now, [this, g, victim] {
    net_->Recover(victim);
    --state_[g].active_faults;
  });
  return true;
}

void ReactiveNemesis::InjectQuorumPartition(size_t g, size_t leader_index,
                                            sim::Time until) {
  const auto& topo = options_.topology;
  const auto& group = topo.groups[g];
  const size_t n = group.nodes.size();
  if (n < 2) return;
  const uint32_t f = group.max_faulty;
  // BFT (quorum 2f+1 of 3f+1): a leader side of exactly f+1 leaves BOTH
  // sides short of quorum — total stall at the edge. CFT (majority f+1 of
  // 2f+1): strand the leader in a minority of f so the other side elects
  // a rival — the classic stale-leader split.
  size_t leader_side = topo.supports_byzantine ? static_cast<size_t>(f) + 1
                                               : static_cast<size_t>(f);
  leader_side = std::max<size_t>(1, std::min(leader_side, n - 1));
  std::vector<sim::NodeId> side_a;
  side_a.push_back(group.nodes[leader_index]);
  for (size_t i = 1; i < n && side_a.size() < leader_side; ++i) {
    side_a.push_back(group.nodes[(leader_index + i) % n]);
  }
  std::set<sim::NodeId> in_a(side_a.begin(), side_a.end());
  std::vector<sim::NodeId> side_b;
  for (sim::NodeId id : topo.all_nodes) {
    if (in_a.count(id) == 0) side_b.push_back(id);
  }
  if (side_b.empty()) return;
  const sim::Time now = sim_->now();
  uint64_t window = next_window_++;
  NemesisEvent cut;
  cut.at = now;
  cut.kind = NemesisKind::kPartition;
  cut.window = window;
  cut.groups = {std::move(side_a), std::move(side_b)};
  NemesisEvent heal;
  heal.at = until;
  heal.kind = NemesisKind::kHeal;
  heal.window = window;
  net_->Partition(cut.groups);
  events_.push_back(std::move(cut));
  events_.push_back(std::move(heal));
  sim_->Schedule(until - now, [this] { net_->Heal(); });
}

void ReactiveNemesis::InjectLeaderDelay(size_t g, size_t leader_index,
                                        sim::Time until) {
  const auto& group = options_.topology.groups[g];
  sim::NodeId leader = group.nodes[leader_index];
  bool found = false;
  sim::NodeId fastest = 0;
  sim::Time best = 0;
  for (sim::NodeId peer : group.nodes) {  // node order: deterministic ties
    if (peer == leader) continue;
    sim::Time base = net_->EffectiveLatency(peer, leader).base_us;
    if (!found || base < best) {
      found = true;
      best = base;
      fastest = peer;
    }
  }
  if (!found) return;
  const sim::Time now = sim_->now();
  uint64_t window = next_window_++;
  NemesisEvent slow;
  slow.at = now;
  slow.kind = NemesisKind::kDelay;
  slow.window = window;
  slow.from = fastest;
  slow.to = leader;
  slow.latency = {15'000 + rng_.NextU64(15'000), 2'000};
  NemesisEvent clear = slow;
  clear.at = until;
  clear.kind = NemesisKind::kClearDelay;
  net_->SetDirectionalLinkLatency(slow.from, slow.to, slow.latency);
  events_.push_back(std::move(slow));
  events_.push_back(std::move(clear));
  sim_->Schedule(until - now, [this, from = fastest, to = leader] {
    net_->SetDirectionalLinkLatency(from, to, options_.default_latency);
  });
}

bool ReactiveNemesis::InjectByzantineFlip(size_t g, size_t replica_index) {
  const auto& group = options_.topology.groups[g];
  GroupState& st = state_[g];
  if (replica_index >= group.nodes.size()) return false;
  if (st.byzantine_used || st.active_faults >= group.max_faulty) return false;
  if (!flip_) return false;
  sim::NodeId node = group.nodes[replica_index];
  if (IsNeverCrash(node) || net_->IsCrashed(node)) return false;
  NemesisEvent ev;
  ev.at = sim_->now();
  ev.kind = NemesisKind::kByzantine;
  ev.window = next_window_++;
  ev.node = node;
  ev.replica_index = replica_index;
  ev.mode = consensus::ByzantineMode::kEquivocate;
  events_.push_back(ev);
  flip_(g, replica_index, ev.mode);
  st.byzantine_used = true;
  ++st.active_faults;  // a Byzantine member occupies its slot for good
  return true;
}

}  // namespace pbc::check
