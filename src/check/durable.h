// Crash-recovery invariant checkers for the durable storage layer.
//
// All three checkers work by *shadow recovery*: they take the durable
// image a power loss would leave on the platter (sim::Fs::DurableImage,
// which is RNG-free and read-only, so checking never perturbs the run)
// and run a recovery function over it, then compare the result against
// references. The recovery function is injectable so unit tests can
// substitute deliberately broken recoveries and prove each invariant
// trips on exactly the failure it owns:
//  * durable-recovery-equivalence — what recovery rebuilds is a prefix of
//    the replica's in-memory chain, and its world state byte-equals a
//    replay of that prefix (ISSUE: "recover-from-disk byte-equals
//    in-memory state").
//  * durable-snapshot-convergence — recovery through the newest valid
//    snapshot plus the log tail converges to the same state as pure
//    full-log replay ("snapshot+replay converges to full replay").
//  * durable-synced-commit — no block past an fsynced commit barrier is
//    lost: recovery keeps at least every valid frame on the platter, and
//    the store's durability belief never exceeds the platter unless the
//    disk provably lied (dropped flush / torn sector).
#ifndef PBC_CHECK_DURABLE_H_
#define PBC_CHECK_DURABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "ledger/chain.h"
#include "sim/fs.h"
#include "store/durable_ledger.h"

namespace pbc::check {

/// \brief One replica's durable-storage attachment points.
struct DurableTarget {
  std::string dir;  ///< node directory in the shared Fs, e.g. "n0"
  /// The replica's live store, for belief introspection (durable_height).
  /// May be null in tests that only exercise image-based checks.
  const store::DurableLedger* ledger = nullptr;
  /// The replica's in-memory chain (the reference recovery must match).
  std::function<const ledger::Chain*()> chain;
};

/// \brief Recovery procedure the checkers shadow-run over durable images.
using RecoverFn = std::function<store::DurableLedger::Recovered(
    const sim::FsImage& image, const std::string& dir)>;

/// The production recovery path as a RecoverFn. `mutate_recovery` mirrors
/// the run's canary flag — the shadow recovery must model the same
/// (possibly buggy) truncation the live path uses, so the canary is
/// caught as a *durability loss*, not as a shadow/live disagreement.
/// `use_snapshot` false forces pure log replay (the snapshot-convergence
/// reference).
RecoverFn ProductionRecovery(bool mutate_recovery, bool use_snapshot = true);

/// Canonical world state after the first `height` blocks of `chain`:
/// replays them with the same execution idiom the durable ledger and the
/// KV model checker use, then serializes (codec.h).
std::string ReplayChainState(const ledger::Chain& chain, uint64_t height);

/// \brief Recovery from disk reproduces a prefix of the replica's
/// in-memory reality — same blocks, byte-equal world state.
class RecoveryEquivalenceChecker : public InvariantChecker {
 public:
  RecoveryEquivalenceChecker(const sim::Fs* fs,
                             std::vector<DurableTarget> targets,
                             RecoverFn recover)
      : fs_(fs), targets_(std::move(targets)), recover_(std::move(recover)) {}

  const char* name() const override { return "durable-recovery-equivalence"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

 private:
  const sim::Fs* fs_;
  std::vector<DurableTarget> targets_;
  RecoverFn recover_;
};

/// \brief Snapshot-based recovery and pure log replay agree on height,
/// state bytes, and writer bookkeeping.
class SnapshotConvergenceChecker : public InvariantChecker {
 public:
  SnapshotConvergenceChecker(const sim::Fs* fs,
                             std::vector<DurableTarget> targets,
                             RecoverFn recover_snapshot, RecoverFn recover_full)
      : fs_(fs),
        targets_(std::move(targets)),
        recover_snapshot_(std::move(recover_snapshot)),
        recover_full_(std::move(recover_full)) {}

  const char* name() const override { return "durable-snapshot-convergence"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

  /// Snapshot-path recoveries that actually used a snapshot (coverage:
  /// convergence is vacuous while no snapshot exists).
  uint64_t snapshot_recoveries() const { return snapshot_recoveries_; }

 private:
  const sim::Fs* fs_;
  std::vector<DurableTarget> targets_;
  RecoverFn recover_snapshot_;
  RecoverFn recover_full_;
  uint64_t snapshot_recoveries_ = 0;
};

/// \brief No committed block is lost past an fsynced commit point.
///
/// Two teeth: (a) shadow recovery over the current durable image must
/// keep every valid frame the platter holds — a recovery that truncates
/// into valid frames (the --mutate-recovery canary) loses an fsynced
/// block; (b) the store's durability belief (durable_height) must not
/// exceed the platter's valid frames unless the Fs records that the disk
/// lied to this node (dropped flush or torn sector) — an honest disk
/// makes overclaimed durability a store bug. Live recoveries observed by
/// the harness (RecoverAndResync reports) are checked with the same rule
/// at the moment they happen via ObserveRecovery.
class SyncedCommitDurabilityChecker : public InvariantChecker {
 public:
  SyncedCommitDurabilityChecker(const sim::Fs* fs,
                                std::vector<DurableTarget> targets,
                                RecoverFn recover)
      : fs_(fs), targets_(std::move(targets)), recover_(std::move(recover)) {}

  /// Harness hook: called with the report of a live post-crash
  /// RecoverAndResync on replica `replica_index`.
  void ObserveRecovery(size_t replica_index,
                       const store::DurableLedger::RecoveryReport& report,
                       sim::Time now);

  const char* name() const override { return "durable-synced-commit"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

 private:
  const sim::Fs* fs_;
  std::vector<DurableTarget> targets_;
  RecoverFn recover_;
  std::vector<Violation> pending_;  // found during ObserveRecovery
};

}  // namespace pbc::check

#endif  // PBC_CHECK_DURABLE_H_
