// Nemesis: randomized fault schedules generated from a seed.
//
// A `NemesisSchedule` is an explicit, replayable list of fault-injection
// events (crash/recover, partition/heal, asymmetric link delays, Byzantine
// mode assignment) layered on the sim::Network fault API. Generation is a
// pure function of (profile, topology, horizon, seed) and never touches
// the simulator's RNG, so the same schedule can be re-applied — whole or
// shrunk to a subset of its windows — against a fresh deterministic run.
//
// Events come in *windows* (crash→recover, partition→heal, delay→clear;
// a Byzantine assignment is a single-event window). Windows are the unit
// of shrinking: removing a window removes both endpoints, so a shrunk
// schedule is always well-formed.
#ifndef PBC_CHECK_NEMESIS_H_
#define PBC_CHECK_NEMESIS_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "consensus/types.h"
#include "obs/json.h"
#include "sim/network.h"

namespace pbc::check {

/// \brief Which fault classes a schedule may draw from.
struct NemesisProfile {
  bool crash = false;      ///< crash-stop + later recovery
  bool partition = false;  ///< network split + later heal
  bool delay = false;      ///< asymmetric link slowdown windows
  bool byzantine = false;  ///< one Byzantine replica (BFT protocols only)
  bool torn_write = false;  ///< crash with a torn disk write (durable only)
  bool lost_flush = false;  ///< lying-disk window: fsyncs ack'd, dropped

  /// Parses "crash,partition,delay,byzantine,torn-write,lost-flush" (any
  /// subset, any order); "none" or "" yields an empty profile. Unknown
  /// tokens fail. torn-write / lost-flush require a durable run — the
  /// harness rejects them without `RunConfig::durable`.
  static bool Parse(const std::string& csv, NemesisProfile* out);
  std::string ToString() const;
};

enum class NemesisKind {
  kCrash,
  kRecover,
  kPartition,
  kHeal,
  kDelay,       ///< directional latency override on one link
  kClearDelay,  ///< restore the default latency on that link
  kByzantine,   ///< set a replica's Byzantine mode (t=0 applies pre-Start)
  kClockSkew,   ///< per-node timer-rate multiplier/offset (sim clock shim)
  kTornWrite,   ///< crash whose power cut tears the node's unsynced bytes
  kLostFlush,   ///< start a lying-disk window: fsyncs ack'd but dropped
  kRestoreFlush,  ///< end the lying-disk window (fsyncs honest again)
};

/// Every kind, in declaration order — the exhaustiveness test round-trips
/// this list through the name table, Describe() and ToJson(), so adding a
/// kind without updating serialization fails loudly. Keep in sync with
/// the enum AND the name table in nemesis.cc (a static_assert there ties
/// the table to this list).
inline constexpr NemesisKind kAllNemesisKinds[] = {
    NemesisKind::kCrash,     NemesisKind::kRecover,  NemesisKind::kPartition,
    NemesisKind::kHeal,      NemesisKind::kDelay,    NemesisKind::kClearDelay,
    NemesisKind::kByzantine, NemesisKind::kClockSkew,
    NemesisKind::kTornWrite, NemesisKind::kLostFlush,
    NemesisKind::kRestoreFlush};

/// Stable wire name of a kind ("crash", "clock-skew", ...).
const char* NemesisKindName(NemesisKind kind);
/// Inverse of NemesisKindName. Returns false on unknown names.
bool NemesisKindFromName(const std::string& name, NemesisKind* out);

/// \brief One fault-injection event.
struct NemesisEvent {
  sim::Time at = 0;
  NemesisKind kind = NemesisKind::kCrash;
  uint64_t window = 0;  ///< shrink unit: events sharing a window id

  sim::NodeId node = 0;                            // crash / recover
  std::vector<std::vector<sim::NodeId>> groups;    // partition
  sim::NodeId from = 0, to = 0;                    // delay link
  sim::LinkLatency latency;                        // delay value
  size_t replica_index = 0;                        // byzantine target
  consensus::ByzantineMode mode = consensus::ByzantineMode::kHonest;
  int64_t skew_ppm = 0;                            // clock-skew rate
  sim::Time skew_offset_us = 0;                    // clock-skew lag
  uint64_t tear_ppm = 0;                           // torn-write leak bound

  std::string Describe() const;
  obs::Json ToJson() const;
};

/// \brief Fault-budget topology of the system under test.
struct NemesisTopology {
  /// One group per consensus cluster: at most `max_faulty` of its nodes
  /// may be crashed/Byzantine at a time (the cluster's f).
  struct Group {
    std::vector<sim::NodeId> nodes;
    uint32_t max_faulty = 1;
  };
  std::vector<Group> groups;

  /// Every node in the system (partitions must cover all of them — nodes
  /// left out of all partition groups would be isolated).
  std::vector<sim::NodeId> all_nodes;

  /// Nodes that must never crash (single-point gateways in the shard
  /// model; they stand for whole clusters, not individual machines).
  std::vector<sim::NodeId> never_crash;

  /// When true, partitions may split `all_nodes` arbitrarily. When false
  /// (sharded systems), partitions only split one cluster's replicas:
  /// cross-gateway protocol messages have no retransmission layer, so an
  /// arbitrary split would lose them forever and turn a liveness gap into
  /// a false safety alarm (see DESIGN.md §8).
  bool partition_whole_network = true;

  /// Whether replicas accept set_byzantine_mode (BFT protocols).
  bool supports_byzantine = false;
};

/// \brief A replayable fault schedule.
class NemesisSchedule {
 public:
  /// Generates a schedule from the seed. All injected faults begin before
  /// `0.55 * horizon` and end by `0.7 * horizon`, leaving a fault-free
  /// tail so liveness is achievable in correct systems.
  static NemesisSchedule Generate(const NemesisProfile& profile,
                                  const NemesisTopology& topology,
                                  sim::Time horizon, uint64_t seed);

  const std::vector<NemesisEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Window ids present, ascending.
  std::vector<uint64_t> WindowIds() const;

  /// The schedule restricted to the given windows (shrinking).
  NemesisSchedule Filtered(const std::vector<uint64_t>& windows) const;

  /// Applies the schedule: network faults are scheduled on `sim` directly;
  /// kByzantine and kClockSkew events with `at == 0` are applied
  /// immediately (start-of-run assignments, before Network::Start), while
  /// `at > 0` ones are scheduled like any other fault — adaptive
  /// adversaries flip modes mid-run and their recorded traces must replay.
  /// `default_latency` is what kClearDelay restores.
  ///
  /// `on_durable` (optional) receives the durable-storage fault events:
  /// kTornWrite (arm the filesystem tear — invoked in the same scheduled
  /// lambda immediately before the Crash(), so the power cut sees the
  /// pending tear) and kLostFlush / kRestoreFlush (toggle the lying-disk
  /// window). Null is fine for non-durable runs; the kinds then degrade
  /// to a plain crash / no-op respectively.
  void Apply(sim::Simulator* sim, sim::Network* net,
             sim::LinkLatency default_latency,
             const std::function<void(const NemesisEvent&)>& set_byzantine,
             const std::function<void(const NemesisEvent&)>& on_durable =
                 nullptr) const;

  obs::Json ToJson() const;
  std::string Describe() const;

  /// Direct construction for tests and shrinking internals.
  static NemesisSchedule FromEvents(std::vector<NemesisEvent> events);

  /// The union of two schedules, re-sorted by time (stable: `a`'s events
  /// precede `b`'s at equal timestamps). Window ids must already be
  /// disjoint — callers keep them so (the clock-skew overlay uses window
  /// 0; generators and the adaptive adversary allocate from 1).
  static NemesisSchedule Merged(const NemesisSchedule& a,
                                const NemesisSchedule& b);

 private:
  std::vector<NemesisEvent> events_;  // ordered by `at`
};

/// \brief ddmin-style shrinking over window ids.
///
/// Returns a (locally) minimal subset of `windows` for which
/// `reproduces` still returns true, calling it at most `budget` times.
/// `reproduces` must be deterministic; with the seeded simulator it is.
std::vector<uint64_t> ShrinkWindows(
    std::vector<uint64_t> windows,
    const std::function<bool(const std::vector<uint64_t>&)>& reproduces,
    size_t budget = 64);

/// \brief Batch probe for one ddmin round: decides which of `candidates`
/// is the first (lowest-index) that still reproduces the failure.
///
/// Returns that index, or SIZE_MAX if none of the first
/// min(candidates.size(), max_probes) candidates reproduces. Sets
/// *probes_charged to the number of probes a serial left-to-right scan
/// would consume: first_index + 1 on success, else the number evaluated.
/// Implementations may probe later candidates speculatively/concurrently
/// (the parallel sweep engine does), but must return the *lowest*
/// reproducing index and charge serially — that keeps the shrunk windows
/// and replay counts in sweep reports byte-identical however many worker
/// threads executed the probes.
using ShrinkBatchProbe = std::function<size_t(
    const std::vector<std::vector<uint64_t>>& candidates, size_t max_probes,
    size_t* probes_charged)>;

/// \brief Adapts a plain reproduces() predicate into a serial batch probe.
ShrinkBatchProbe SerialShrinkProbe(
    std::function<bool(const std::vector<uint64_t>&)> reproduces);

/// \brief The ddmin core shared by serial and parallel shrinking: the
/// round structure (candidate generation, granularity schedule, budget)
/// lives here; `probe` decides how a round's candidates are evaluated.
std::vector<uint64_t> ShrinkWindowsBatched(std::vector<uint64_t> windows,
                                           const ShrinkBatchProbe& probe,
                                           size_t budget = 64);

}  // namespace pbc::check

#endif  // PBC_CHECK_NEMESIS_H_
