// Harness: builds a (protocol, cluster size, nemesis, seed) world, runs it
// deterministically, and evaluates the invariant checkers against it.
//
// A run is a pure function of `RunConfig` (+ an optional explicit
// schedule): same inputs, same `RunResult` — which is what makes the
// `(config, seed)` repro lines in sweep reports replayable and schedule
// shrinking sound.
#ifndef PBC_CHECK_HARNESS_H_
#define PBC_CHECK_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/nemesis.h"
#include "obs/json.h"

namespace pbc::check {

/// \brief Everything that determines a run.
struct RunConfig {
  /// pbft | raft | hotstuff | tendermint | paxos | sharper | ahl
  std::string protocol = "pbft";
  /// Replicas per consensus cluster (per shard for sharded protocols).
  size_t cluster_size = 4;
  /// Number of shards (sharded protocols only).
  uint32_t num_shards = 2;
  /// Nemesis profile CSV, e.g. "crash,partition" (see NemesisProfile).
  std::string nemesis = "crash";
  uint64_t seed = 0;
  /// Client transactions submitted, paced over the first half of the run.
  size_t txns = 40;
  /// Simulated-time budget; 0 = auto (60 s for consensus clusters, 300 s
  /// for the sharded systems, matching the repo's test ceilings).
  sim::Time horizon_us = 0;
  /// TEST-ONLY mutation: widens accepted quorums by this many votes (see
  /// ClusterConfig::quorum_slack_for_test). The sweeps must catch > 0.
  uint32_t quorum_slack = 0;
  /// > 0 enables the consensus block pipeline (ClusterConfig::block) with
  /// this size cut; 0 keeps the seed's inline-batch path.
  size_t block_max_txns = 0;
  /// Adversary strategy: "random" replays the pre-generated schedule from
  /// `nemesis`; "leader" / "quorum" / "churn" run the state-aware
  /// ReactiveNemesis (see check/adversary.h), which *replaces* the
  /// generated schedule (the `nemesis` profile is ignored). Consensus
  /// protocols only; sharded runs reject non-random modes.
  std::string adversary = "random";
  /// Per-node clock-skew rate in ppm, alternated ±ppm across nodes (even
  /// indices run fast, odd run slow); 0 = no skew. Composes with any
  /// nemesis or adversary mode.
  int64_t clock_skew_ppm = 0;
  /// Attach a per-replica durable ledger (block log + snapshots) over a
  /// deterministic sim::Fs, plus the crash-recovery invariant checkers
  /// (see check/durable.h). Consensus protocols only; required for the
  /// torn-write / lost-flush nemesis kinds. Composes with block mode,
  /// adversaries and clock skew.
  bool durable = false;
  /// TEST-ONLY mutation: off-by-one torn-tail truncation in recovery (see
  /// BlockLog::RecoverAndTruncate). The durable sweeps must catch it.
  bool mutate_recovery = false;

  /// A command line that replays exactly this run.
  std::string ReproLine() const;
  obs::Json ToJson() const;
};

/// \brief Outcome of one deterministic run.
struct RunResult {
  /// Workload completed (every expected commit/decision observed) before
  /// the horizon. A liveness indicator, reported but — unlike safety
  /// violations — tolerated under fault schedules.
  bool live = false;
  /// Transactions the most advanced replica committed (consensus) or
  /// client decisions received (sharded).
  uint64_t committed = 0;
  /// Transactions the LEAST advanced replica committed (consensus runs;
  /// 0 for sharded). `committed_min < committed` after the drain exposes
  /// laggards — e.g. PBFT's missing state transfer under leader churn.
  /// Not serialized into sweep reports (it is derived state, and keeping
  /// it out preserves historical report byte-compatibility).
  uint64_t committed_min = 0;
  std::vector<Violation> violations;
  /// Invariant name → number of checker invocations.
  std::map<std::string, uint64_t> coverage;
  uint64_t sim_events = 0;
  sim::Time sim_end_us = 0;
  /// The schedule the run executed (generated from the seed unless an
  /// explicit one was supplied) — the input to shrinking.
  NemesisSchedule schedule;

  bool ok() const { return violations.empty(); }
};

/// \brief Runs one seed with the schedule generated from the config.
RunResult RunOne(const RunConfig& config);

/// \brief Runs one seed with an explicit (e.g. shrunk) schedule.
RunResult RunWithSchedule(const RunConfig& config,
                          const NemesisSchedule& schedule);

/// \brief Protocols RunOne understands; "all" in sweep options expands to
/// this list.
std::vector<std::string> KnownProtocols();

}  // namespace pbc::check

#endif  // PBC_CHECK_HARNESS_H_
