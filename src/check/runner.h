// Seed-sweep driver: runs N seeds across {protocol, cluster size, nemesis
// profile}, reports violations with exact (config, seed) repro lines, and
// shrinks failing schedules to minimal window subsets by deterministic
// replay.
#ifndef PBC_CHECK_RUNNER_H_
#define PBC_CHECK_RUNNER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "check/harness.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace pbc::check {

/// \brief The sweep grid: every (protocol, cluster size, nemesis) cell runs
/// `seeds` consecutive seeds starting at `seed_base`.
struct SweepOptions {
  /// Protocol names; "all" expands to KnownProtocols().
  std::vector<std::string> protocols = {"all"};
  /// Nemesis profile CSVs (each one cell, e.g. {"crash", "crash,partition"}).
  std::vector<std::string> nemeses = {"crash"};
  std::vector<size_t> cluster_sizes = {4};
  size_t seeds = 20;
  uint64_t seed_base = 0;
  size_t txns = 40;
  uint32_t num_shards = 2;
  /// TEST-ONLY quorum mutation, forwarded to every run (see RunConfig).
  uint32_t quorum_slack = 0;
  /// > 0 runs every cell through the consensus block pipeline with this
  /// size cut (see RunConfig::block_max_txns).
  size_t block_max_txns = 0;
  /// Adversary mode for every cell ("random" | "leader" | "quorum" |
  /// "churn"); sharded protocols reduce non-random modes back to
  /// "random" (see RunConfig::adversary), deduping like the byzantine
  /// reduction.
  std::string adversary = "random";
  /// Per-node clock-skew ppm for every cell (see RunConfig).
  int64_t clock_skew_ppm = 0;
  /// Run every cell with the durable storage layer attached (see
  /// RunConfig::durable); sharded protocols reduce back to non-durable
  /// (with disk-fault nemesis tokens stripped), deduping like the
  /// byzantine reduction.
  bool durable = false;
  /// TEST-ONLY recovery mutation, forwarded to durable cells (see
  /// RunConfig::mutate_recovery).
  bool mutate_recovery = false;
  /// Shrink each failure's schedule before reporting.
  bool shrink = true;
  /// Max replays ShrinkFailure may spend per failure.
  size_t shrink_budget = 32;
  /// Worker threads for the sweep: every (protocol, cluster size,
  /// nemesis, seed) cell runs as an independent job with its own
  /// simulator, and results merge in deterministic cell order — the
  /// report is byte-identical for every value of `jobs`; only wall time
  /// changes. 1 = serial (the default for library callers; check_runner
  /// defaults to hardware concurrency), 0 = hardware concurrency.
  size_t jobs = 1;
  /// Optional: receives the parallel engine's counters after the sweep
  /// (scheduler.jobs_run / steals / cancelled / max_queue_depth, plus
  /// per-worker breakdowns). Left untouched when the sweep ran serially.
  /// Not part of the report — scheduler behavior is nondeterministic.
  obs::MetricsRegistry* scheduler_metrics = nullptr;

  /// Grid cells with the "byzantine" token dropped for protocols that
  /// cannot host a Byzantine replica (CFT, sharded) are skipped when the
  /// reduced profile duplicates another cell.
  std::vector<RunConfig> Expand() const;
};

/// \brief One failing run, with its shrunk repro.
struct SweepFailure {
  RunConfig config;
  std::vector<Violation> violations;
  bool live = false;
  /// Window ids of the shrunk (locally minimal) schedule; equals the full
  /// window set when shrinking is disabled or the failure needs them all.
  std::vector<uint64_t> shrunk_windows;
  /// The shrunk schedule itself (replay with `check_runner --replay` or
  /// RunWithSchedule).
  NemesisSchedule shrunk_schedule;
  size_t shrink_replays = 0;

  obs::Json ToJson() const;
};

/// \brief Aggregate result of a sweep.
struct SweepReport {
  size_t runs = 0;
  size_t live_runs = 0;
  std::vector<SweepFailure> failures;
  /// Invariant name → total checker invocations across all runs.
  std::map<std::string, uint64_t> coverage;
  /// Liveness stragglers (config repro lines that missed the horizon but
  /// violated nothing) — reported, not failures.
  std::vector<std::string> not_live;

  bool ok() const { return failures.empty(); }
  /// Deterministic for a fixed option set: contains no wall-clock fields
  /// (the runner binary stamps "wall_ms" separately).
  obs::Json ToJson() const;
};

/// \brief Replays `schedule` subsets to find a locally minimal set of
/// windows that still violates an invariant under `config`. Returns the
/// shrunk schedule; `replays_out` (optional) receives the replay count.
///
/// With a pool, each ddmin round's candidate windows are probed
/// concurrently with first-failure cancellation: once a candidate
/// reproduces, probes for later candidates are cancelled (earlier ones
/// must still finish — the round takes the *lowest* reproducing index, so
/// the shrunk schedule and the charged replay count are identical to a
/// serial run).
NemesisSchedule ShrinkFailure(const RunConfig& config,
                              const NemesisSchedule& schedule, size_t budget,
                              size_t* replays_out = nullptr,
                              ThreadPool* pool = nullptr);

/// \brief Runs the whole sweep. `progress` (optional) is invoked after
/// every run — the runner binary uses it for per-run log lines. Under
/// `options.jobs > 1` it is called from worker threads (serialized by a
/// mutex) in completion order rather than grid order.
using ProgressFn =
    std::function<void(const RunConfig&, const RunResult&)>;
SweepReport RunSweep(const SweepOptions& options,
                     const ProgressFn& progress = nullptr);

/// \brief Runs an explicit list of fully-specified configs (each one
/// run, seed included) instead of an expanded grid. RunSweep delegates
/// here; the golden determinism tests drive it with the committed seed
/// corpus. Results always merge in `cells` order.
SweepReport RunSweepCells(const std::vector<RunConfig>& cells,
                          const SweepOptions& options,
                          const ProgressFn& progress = nullptr);

}  // namespace pbc::check

#endif  // PBC_CHECK_RUNNER_H_
