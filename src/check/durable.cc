#include "check/durable.h"

#include "store/block_log.h"
#include "store/codec.h"
#include "txn/transaction.h"

namespace pbc::check {

namespace {

std::string LogPath(const std::string& dir) { return dir + "/blocks.log"; }

// The fault-surface prefix the harness uses for a node's directory (the
// key SetLoseFlushes / Crash / the introspection counters are filed
// under).
std::string FaultPrefix(const std::string& dir) { return dir + "/"; }

// Valid chained frames in the durable log image — by a *correct* scan,
// independent of whatever (possibly mutated) recovery path is configured.
uint64_t ValidFramesInImage(const sim::FsImage& image,
                            const std::string& dir) {
  auto it = image.find(LogPath(dir));
  if (it == image.end()) return 0;
  return store::ScanLog(it->second).blocks.size();
}

}  // namespace

RecoverFn ProductionRecovery(bool mutate_recovery, bool use_snapshot) {
  return [mutate_recovery, use_snapshot](const sim::FsImage& image,
                                         const std::string& dir) {
    return store::DurableLedger::RecoverFromImage(image, dir, mutate_recovery,
                                                  use_snapshot);
  };
}

std::string ReplayChainState(const ledger::Chain& chain, uint64_t height) {
  store::KvStore kv;
  uint64_t next_version = 1;
  for (uint64_t h = 0; h < height && h < chain.height(); ++h) {
    for (const txn::Transaction& t : chain.at(h).txns) {
      txn::ExecResult result = txn::Execute(t, txn::LatestReader(&kv));
      if (!result.writes.empty()) {
        kv.ApplyBatch(result.writes, next_version++);
      }
    }
  }
  return store::SerializeLatestState(kv);
}

// --- RecoveryEquivalenceChecker --------------------------------------------

void RecoveryEquivalenceChecker::Check(sim::Time now,
                                       std::vector<Violation>* out) {
  for (size_t i = 0; i < targets_.size(); ++i) {
    const DurableTarget& t = targets_[i];
    const ledger::Chain* chain = t.chain ? t.chain() : nullptr;
    if (chain == nullptr) continue;
    store::DurableLedger::Recovered rec =
        recover_(fs_->DurableImage(FaultPrefix(t.dir)), t.dir);
    if (rec.height > chain->height()) {
      out->push_back({name(),
                      "replica " + std::to_string(i) + " disk recovers " +
                          std::to_string(rec.height) +
                          " blocks but the replica only committed " +
                          std::to_string(chain->height()) +
                          " — recovery resurrected blocks",
                      now});
      continue;
    }
    bool prefix_ok = true;
    for (uint64_t h = 0; h < rec.height; ++h) {
      if (!(rec.blocks[h].header.Hash() == chain->at(h).header.Hash())) {
        out->push_back({name(),
                        "replica " + std::to_string(i) +
                            " recovered a different block at height " +
                            std::to_string(h) +
                            " than its in-memory chain holds",
                        now});
        prefix_ok = false;
        break;
      }
    }
    if (prefix_ok && rec.state != ReplayChainState(*chain, rec.height)) {
      out->push_back({name(),
                      "replica " + std::to_string(i) +
                          " recovered world state at height " +
                          std::to_string(rec.height) +
                          " does not byte-equal the in-memory replay of "
                          "the same prefix",
                      now});
    }
  }
}

// --- SnapshotConvergenceChecker --------------------------------------------

void SnapshotConvergenceChecker::Check(sim::Time now,
                                       std::vector<Violation>* out) {
  for (size_t i = 0; i < targets_.size(); ++i) {
    const DurableTarget& t = targets_[i];
    sim::FsImage image = fs_->DurableImage(FaultPrefix(t.dir));
    store::DurableLedger::Recovered via_snapshot =
        recover_snapshot_(image, t.dir);
    store::DurableLedger::Recovered via_replay = recover_full_(image, t.dir);
    if (via_snapshot.used_snapshot) ++snapshot_recoveries_;
    if (via_snapshot.height != via_replay.height) {
      out->push_back({name(),
                      "replica " + std::to_string(i) +
                          " snapshot recovery reaches height " +
                          std::to_string(via_snapshot.height) +
                          " but full log replay reaches " +
                          std::to_string(via_replay.height),
                      now});
    } else if (via_snapshot.state != via_replay.state) {
      out->push_back(
          {name(),
           "replica " + std::to_string(i) + " snapshot recovery (snapshot at " +
               std::to_string(via_snapshot.snapshot_height) + " + log tail to " +
               std::to_string(via_snapshot.height) +
               ") diverges from full log replay state",
           now});
    } else if (via_snapshot.next_version != via_replay.next_version) {
      out->push_back({name(),
                      "replica " + std::to_string(i) +
                          " snapshot recovery resumes at version " +
                          std::to_string(via_snapshot.next_version) +
                          " but full replay resumes at " +
                          std::to_string(via_replay.next_version),
                      now});
    }
  }
}

// --- SyncedCommitDurabilityChecker -----------------------------------------

void SyncedCommitDurabilityChecker::ObserveRecovery(
    size_t replica_index, const store::DurableLedger::RecoveryReport& report,
    sim::Time now) {
  if (report.recovered_height < report.valid_frames) {
    pending_.push_back(
        {name(),
         "replica " + std::to_string(replica_index) + " recovery kept " +
             std::to_string(report.recovered_height) + " of " +
             std::to_string(report.valid_frames) +
             " valid frames — an fsynced commit was lost by truncation",
         now});
  }
}

void SyncedCommitDurabilityChecker::Check(sim::Time now,
                                          std::vector<Violation>* out) {
  out->insert(out->end(), pending_.begin(), pending_.end());
  pending_.clear();
  for (size_t i = 0; i < targets_.size(); ++i) {
    const DurableTarget& t = targets_[i];
    std::string prefix = FaultPrefix(t.dir);
    sim::FsImage image = fs_->DurableImage(prefix);
    uint64_t valid = ValidFramesInImage(image, t.dir);
    store::DurableLedger::Recovered rec = recover_(image, t.dir);
    if (rec.height < valid) {
      out->push_back({name(),
                      "replica " + std::to_string(i) +
                          " recovery over the current durable image keeps " +
                          std::to_string(rec.height) + " of " +
                          std::to_string(valid) +
                          " valid frames — it would lose an fsynced commit",
                      now});
    }
    // Belief check: only meaningful while the disk has been honest with
    // this node — a dropped flush or torn sector legitimately strands the
    // store's belief above the platter.
    if (t.ledger != nullptr && fs_->fsyncs_dropped(prefix) == 0 &&
        fs_->tears(prefix) == 0 && t.ledger->durable_height() > valid) {
      out->push_back({name(),
                      "replica " + std::to_string(i) + " believes " +
                          std::to_string(t.ledger->durable_height()) +
                          " blocks are durable but the platter holds only " +
                          std::to_string(valid) +
                          " valid frames with no disk fault recorded",
                      now});
    }
  }
}

}  // namespace pbc::check
