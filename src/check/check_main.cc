// check_runner: seed-sweep driver for the simulation-testing subsystem.
//
// Examples:
//   check_runner --seeds 200 --protocol all --nemesis crash,partition
//   check_runner --protocol raft --nemesis crash --seeds 1 --seed-base 17
//   check_runner --protocol pbft --nemesis byzantine --mutate-quorum 1
//
// --nemesis takes ONE profile (a CSV of fault classes); pass several
// profiles as separate cells with ';': --nemesis "crash;crash,partition".
// Exit status: 0 = no invariant violated, 1 = violations, 2 = bad usage.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/adversary.h"
#include "check/runner.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: check_runner [options]\n"
      "  --protocol P[,P...]   pbft|raft|hotstuff|tendermint|paxos|sharper"
      "|ahl|all (default all)\n"
      "  --nemesis PROF[;PROF] fault profile(s); each PROF is a CSV of\n"
      "                        crash,partition,delay,byzantine,torn-write,\n"
      "                        lost-flush|none (default crash; torn-write\n"
      "                        and lost-flush need --durable)\n"
      "  --seeds N             seeds per grid cell (default 20)\n"
      "  --seed-base N         first seed (default 0)\n"
      "  --cluster-size N[,N]  replicas per cluster (default 4)\n"
      "  --num-shards N        shards for sharper/ahl (default 2)\n"
      "  --txns N              client transactions per run (default 40)\n"
      "  --mutate-quorum N     TEST-ONLY quorum slack; sweeps must catch\n"
      "  --block-max-txns N    run through the consensus block pipeline\n"
      "                        with size cut N (0 = inline batches)\n"
      "  --adversary MODE      random|leader|quorum|churn (default random).\n"
      "                        Non-random modes run the state-aware\n"
      "                        adaptive adversary (consensus protocols;\n"
      "                        sharded cells reduce to random)\n"
      "  --clock-skew PPM      per-node clock-rate skew, alternated +/-PPM\n"
      "                        across nodes (0 = off)\n"
      "  --durable             attach per-replica durable ledgers (block\n"
      "                        log + snapshots over the sim filesystem)\n"
      "                        and the crash-recovery invariants; enables\n"
      "                        the torn-write / lost-flush nemesis tokens\n"
      "                        (consensus cells; sharded reduce to\n"
      "                        non-durable)\n"
      "  --mutate-recovery     TEST-ONLY off-by-one torn-tail truncation\n"
      "                        in recovery; durable sweeps must catch\n"
      "  --no-shrink           report failures without shrinking\n"
      "  --shrink-budget N     max replays per failure (default 32)\n"
      "  --jobs N              worker threads (default: hardware\n"
      "                        concurrency; 1 = serial). The report is\n"
      "                        byte-identical for every N; only wall_ms\n"
      "                        changes\n"
      "  --report PATH         write the JSON report to PATH\n"
      "  --quiet               no per-run progress lines\n");
}

std::vector<std::string> SplitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  pbc::check::SweepOptions options;
  options.jobs = 0;  // CLI default: hardware concurrency (library: serial)
  std::string report_path;
  bool quiet = false;

  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "check_runner: %s needs a value\n", argv[i]);
      Usage();
      std::exit(2);
    }
    return argv[i + 1];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--protocol")) {
      options.protocols = SplitList(need_value(i++), ',');
    } else if (!std::strcmp(arg, "--nemesis")) {
      options.nemeses = SplitList(need_value(i++), ';');
    } else if (!std::strcmp(arg, "--seeds")) {
      options.seeds = std::strtoull(need_value(i++), nullptr, 10);
    } else if (!std::strcmp(arg, "--seed-base")) {
      options.seed_base = std::strtoull(need_value(i++), nullptr, 10);
    } else if (!std::strcmp(arg, "--cluster-size")) {
      options.cluster_sizes.clear();
      for (const std::string& s : SplitList(need_value(i++), ',')) {
        options.cluster_sizes.push_back(std::strtoull(s.c_str(), nullptr, 10));
      }
    } else if (!std::strcmp(arg, "--num-shards")) {
      options.num_shards =
          static_cast<uint32_t>(std::strtoul(need_value(i++), nullptr, 10));
    } else if (!std::strcmp(arg, "--txns")) {
      options.txns = std::strtoull(need_value(i++), nullptr, 10);
    } else if (!std::strcmp(arg, "--mutate-quorum")) {
      options.quorum_slack =
          static_cast<uint32_t>(std::strtoul(need_value(i++), nullptr, 10));
    } else if (!std::strcmp(arg, "--block-max-txns")) {
      options.block_max_txns = std::strtoull(need_value(i++), nullptr, 10);
    } else if (!std::strcmp(arg, "--adversary")) {
      options.adversary = need_value(i++);
      pbc::check::AdversaryMode parsed;
      if (!pbc::check::ParseAdversaryMode(options.adversary, &parsed)) {
        std::fprintf(stderr, "check_runner: unknown adversary mode %s\n",
                     options.adversary.c_str());
        Usage();
        return 2;
      }
    } else if (!std::strcmp(arg, "--clock-skew")) {
      options.clock_skew_ppm = std::strtoll(need_value(i++), nullptr, 10);
    } else if (!std::strcmp(arg, "--durable")) {
      options.durable = true;
    } else if (!std::strcmp(arg, "--mutate-recovery")) {
      options.mutate_recovery = true;
    } else if (!std::strcmp(arg, "--no-shrink")) {
      options.shrink = false;
    } else if (!std::strcmp(arg, "--shrink-budget")) {
      options.shrink_budget = std::strtoull(need_value(i++), nullptr, 10);
    } else if (!std::strcmp(arg, "--jobs")) {
      options.jobs = std::strtoull(need_value(i++), nullptr, 10);
    } else if (!std::strcmp(arg, "--report")) {
      report_path = need_value(i++);
    } else if (!std::strcmp(arg, "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "check_runner: unknown flag %s\n", arg);
      Usage();
      return 2;
    }
  }
  if (options.seeds == 0 || options.protocols.empty() ||
      options.nemeses.empty() || options.cluster_sizes.empty()) {
    Usage();
    return 2;
  }

  // detlint:allow(wall-clock) wall_ms is operator telemetry, kept out of
  // the deterministic "report" subtree and stripped by the CI byte-
  // identity diff; it is deliberately the only wall-clock read here.
  auto t0 = std::chrono::steady_clock::now();
  pbc::obs::MetricsRegistry scheduler_metrics;
  options.scheduler_metrics = &scheduler_metrics;
  pbc::check::ProgressFn progress;
  if (!quiet) {
    progress = [](const pbc::check::RunConfig& cfg,
                  const pbc::check::RunResult& result) {
      std::fprintf(stderr, "[%s] %-10s n=%zu nemesis=%-24s seed=%llu%s\n",
                   result.ok() ? (result.live ? "ok" : "OK*") : "VIOLATION",
                   cfg.protocol.c_str(), cfg.cluster_size,
                   cfg.nemesis.c_str(),
                   static_cast<unsigned long long>(cfg.seed),
                   result.live ? "" : " (not live)");
    };
  }
  pbc::check::SweepReport report =
      pbc::check::RunSweep(options, progress);
  auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     // detlint:allow(wall-clock) closes the wall_ms
                     // telemetry interval opened at t0 above
                     std::chrono::steady_clock::now() - t0)
                     .count();

  std::printf("check_runner: %zu runs, %zu live, %zu violating (%lld ms)\n",
              report.runs, report.live_runs, report.failures.size(),
              static_cast<long long>(wall_ms));
  if (!quiet && scheduler_metrics.CounterValue("scheduler.jobs_run") > 0) {
    // Scheduler counters are wall-clock-dependent, so they go to stderr,
    // never into the (byte-deterministic) JSON report.
    std::fprintf(
        stderr,
        "scheduler: %llu jobs across %lld workers, %llu steals, "
        "%llu cancelled, max queue depth %lld\n",
        static_cast<unsigned long long>(
            scheduler_metrics.CounterValue("scheduler.jobs_run")),
        static_cast<long long>(
            scheduler_metrics.FindGauge("scheduler.workers")->value()),
        static_cast<unsigned long long>(
            scheduler_metrics.CounterValue("scheduler.steals")),
        static_cast<unsigned long long>(
            scheduler_metrics.CounterValue("scheduler.cancelled")),
        static_cast<long long>(
            scheduler_metrics.FindGauge("scheduler.max_queue_depth")
                ->value()));
  }
  for (const std::string& line : report.not_live) {
    std::printf("  not live (no violation): %s\n", line.c_str());
  }
  for (const pbc::check::SweepFailure& f : report.failures) {
    std::printf("VIOLATION  repro: %s\n", f.config.ReproLine().c_str());
    for (const pbc::check::Violation& v : f.violations) {
      std::printf("  [%s] %s (t=%llu us)\n", v.invariant.c_str(),
                  v.detail.c_str(), static_cast<unsigned long long>(v.at));
    }
    std::printf("  shrunk to %zu window(s) in %zu replay(s): %s\n",
                f.shrunk_windows.size(), f.shrink_replays,
                f.shrunk_schedule.empty()
                    ? "(empty schedule — fails fault-free)"
                    : f.shrunk_schedule.Describe().c_str());
  }

  if (!report_path.empty()) {
    // wall_ms is the only nondeterministic field; everything under
    // "report" is a pure function of the sweep options.
    pbc::obs::Json doc =
        pbc::obs::Json::Object()
            .Set("tool", "check_runner")
            .Set("wall_ms", static_cast<uint64_t>(wall_ms))
            .Set("report", report.ToJson());
    if (!doc.WriteFile(report_path)) {
      std::fprintf(stderr, "check_runner: cannot write %s\n",
                   report_path.c_str());
      return 2;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  return report.ok() ? 0 : 1;
}
