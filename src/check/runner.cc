#include "check/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

namespace pbc::check {

namespace {

bool SupportsByzantine(const std::string& protocol) {
  return protocol == "pbft" || protocol == "hotstuff" ||
         protocol == "tendermint";
}

}  // namespace

std::vector<RunConfig> SweepOptions::Expand() const {
  std::vector<std::string> protos;
  for (const std::string& p : protocols) {
    if (p == "all") {
      std::vector<std::string> known = KnownProtocols();
      protos.insert(protos.end(), known.begin(), known.end());
    } else {
      protos.push_back(p);
    }
  }
  std::vector<RunConfig> cells;
  // "proto|adversary|nemesis|size" dedup after reduction.
  std::set<std::string> seen;
  for (const std::string& proto : protos) {
    // Sharded topologies cannot host the adaptive modes (they partition
    // at the quorum edge — exactly the arbitrary splits those topologies
    // forbid); reduce to the random generator like the byzantine-token
    // reduction below.
    const bool sharded = proto == "sharper" || proto == "ahl";
    std::string adv = sharded ? "random" : adversary;
    // The durable layer wraps per-replica consensus chains; sharded cells
    // reduce to non-durable (and shed the disk-fault tokens below).
    const bool dur = sharded ? false : durable;
    for (const std::string& nemesis : nemeses) {
      NemesisProfile profile;
      if (!NemesisProfile::Parse(nemesis, &profile)) continue;
      if (profile.byzantine && !SupportsByzantine(proto)) {
        profile.byzantine = false;
      }
      if (!dur) {
        // Disk faults need a disk: without the durable layer the tokens
        // would be rejected by the harness, so strip them like the
        // byzantine reduction.
        profile.torn_write = false;
        profile.lost_flush = false;
      }
      std::string reduced = profile.ToString();
      // Adaptive modes ignore the generated profile entirely: normalize
      // it in the cell so {leader × crash} and {leader × delay} do not
      // masquerade as distinct coverage.
      if (adv != "random") reduced = "none";
      for (size_t size : cluster_sizes) {
        std::string key = proto + "|" + adv + "|" + reduced + "|" +
                          std::to_string(size) + (dur ? "|durable" : "");
        if (!seen.insert(key).second) continue;
        RunConfig cfg;
        cfg.protocol = proto;
        cfg.cluster_size = size;
        cfg.num_shards = num_shards;
        cfg.nemesis = reduced;
        cfg.txns = txns;
        cfg.quorum_slack = quorum_slack;
        cfg.block_max_txns = block_max_txns;
        cfg.adversary = adv;
        cfg.clock_skew_ppm = clock_skew_ppm;
        cfg.durable = dur;
        cfg.mutate_recovery = dur && mutate_recovery;
        cells.push_back(std::move(cfg));
      }
    }
  }
  return cells;
}

obs::Json SweepFailure::ToJson() const {
  obs::Json v = obs::Json::Array();
  for (const Violation& violation : violations) v.Push(violation.ToJson());
  obs::Json windows = obs::Json::Array();
  for (uint64_t w : shrunk_windows) windows.Push(w);
  return obs::Json::Object()
      .Set("config", config.ToJson())
      .Set("repro", config.ReproLine())
      .Set("live", live)
      .Set("violations", std::move(v))
      .Set("shrunk_windows", std::move(windows))
      .Set("shrink_replays", static_cast<uint64_t>(shrink_replays))
      .Set("shrunk_schedule", shrunk_schedule.ToJson());
}

obs::Json SweepReport::ToJson() const {
  obs::Json cov = obs::Json::Object();
  for (const auto& [name, count] : coverage) cov.Set(name, count);
  obs::Json fails = obs::Json::Array();
  for (const SweepFailure& f : failures) fails.Push(f.ToJson());
  obs::Json stragglers = obs::Json::Array();
  for (const std::string& line : not_live) stragglers.Push(line);
  return obs::Json::Object()
      .Set("runs", static_cast<uint64_t>(runs))
      .Set("live_runs", static_cast<uint64_t>(live_runs))
      .Set("violating_runs", static_cast<uint64_t>(failures.size()))
      .Set("coverage", std::move(cov))
      .Set("failures", std::move(fails))
      .Set("not_live", std::move(stragglers));
}

namespace {

/// Probes one ddmin round's candidates concurrently. Every probe replays
/// the run — a full simulation — so probes fan out as pool jobs, each
/// guarded by its own CancellationToken. When a candidate reproduces,
/// probes for *later* candidates are cancelled (cooperatively: ones that
/// already started run to completion; RunWithSchedule is not
/// interruptible). Earlier candidates always complete, so the returned
/// index is the lowest reproducing one — exactly what the serial
/// left-to-right scan returns — and the charged replay count matches the
/// serial scan too. That equivalence is what keeps sweep reports
/// byte-identical across --jobs values.
ShrinkBatchProbe ParallelShrinkProbe(const RunConfig& config,
                                     const NemesisSchedule& schedule,
                                     ThreadPool* pool) {
  return [&config, &schedule, pool](
             const std::vector<std::vector<uint64_t>>& candidates,
             size_t max_probes, size_t* probes_charged) -> size_t {
    size_t limit = std::min(candidates.size(), max_probes);
    if (limit == 0) {
      *probes_charged = 0;
      return SIZE_MAX;
    }
    std::vector<CancellationToken> tokens(limit);
    std::atomic<size_t> first{SIZE_MAX};
    TaskGroup group;
    for (size_t j = 0; j < limit; ++j) {
      pool->Submit(&group, tokens[j], [&, j] {
        RunResult r =
            RunWithSchedule(config, schedule.Filtered(candidates[j]));
        if (!r.ok()) {
          size_t cur = first.load();
          while (j < cur && !first.compare_exchange_weak(cur, j)) {
          }
          for (size_t k = j + 1; k < limit; ++k) tokens[k].Cancel();
        }
      });
    }
    pool->Wait(&group);
    size_t idx = first.load();
    *probes_charged = idx == SIZE_MAX ? limit : idx + 1;
    return idx;
  };
}

/// Outcome of one sweep cell, kept per-index so parallel runs merge into
/// the report in deterministic cell order regardless of completion order.
struct CellOutcome {
  bool ok = true;
  bool live = false;
  std::map<std::string, uint64_t> coverage;
  SweepFailure failure;  // filled only when !ok
  std::string repro;     // filled only when ok && !live
};

CellOutcome RunCell(const RunConfig& cell, const SweepOptions& options,
                    ThreadPool* pool, const ProgressFn& progress,
                    std::mutex* progress_mu) {
  RunResult result = RunOne(cell);
  if (progress) {
    if (progress_mu != nullptr) {
      std::lock_guard<std::mutex> lock(*progress_mu);
      progress(cell, result);
    } else {
      progress(cell, result);
    }
  }
  CellOutcome out;
  out.ok = result.ok();
  out.live = result.live;
  out.coverage = result.coverage;
  if (!out.ok) {
    SweepFailure& failure = out.failure;
    failure.config = cell;
    failure.violations = result.violations;
    failure.live = result.live;
    if (options.shrink) {
      failure.shrunk_schedule =
          ShrinkFailure(cell, result.schedule, options.shrink_budget,
                        &failure.shrink_replays, pool);
    } else {
      failure.shrunk_schedule = result.schedule;
    }
    failure.shrunk_windows = failure.shrunk_schedule.WindowIds();
  } else if (!out.live) {
    out.repro = cell.ReproLine();
  }
  return out;
}

void ExportSchedulerMetrics(const ThreadPool& pool,
                            obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  ThreadPool::Stats stats = pool.stats();
  registry->GetCounter("scheduler.jobs_run")->Add(stats.jobs_run);
  registry->GetCounter("scheduler.steals")->Add(stats.steals);
  registry->GetCounter("scheduler.cancelled")->Add(stats.cancelled);
  registry->GetGauge("scheduler.max_queue_depth")
      ->Set(static_cast<int64_t>(stats.max_queue_depth));
  registry->GetGauge("scheduler.workers")
      ->Set(static_cast<int64_t>(pool.num_threads()));
  for (size_t w = 0; w < stats.jobs_per_worker.size(); ++w) {
    std::string prefix = "scheduler.worker" + std::to_string(w);
    registry->GetCounter(prefix + ".jobs_run")
        ->Add(stats.jobs_per_worker[w]);
    registry->GetCounter(prefix + ".steals")->Add(stats.steals_per_worker[w]);
  }
}

}  // namespace

NemesisSchedule ShrinkFailure(const RunConfig& config,
                              const NemesisSchedule& schedule, size_t budget,
                              size_t* replays_out, ThreadPool* pool) {
  size_t replays = 0;
  std::vector<uint64_t> minimal;
  if (pool != nullptr && pool->num_threads() > 1) {
    ShrinkBatchProbe probe = ParallelShrinkProbe(config, schedule, pool);
    minimal = ShrinkWindowsBatched(
        schedule.WindowIds(),
        [&replays, &probe](const std::vector<std::vector<uint64_t>>& cands,
                           size_t max_probes, size_t* charged) {
          size_t idx = probe(cands, max_probes, charged);
          replays += *charged;
          return idx;
        },
        budget);
  } else {
    auto reproduces = [&config, &schedule,
                       &replays](const std::vector<uint64_t>& windows) {
      ++replays;
      RunResult r = RunWithSchedule(config, schedule.Filtered(windows));
      return !r.ok();
    };
    minimal = ShrinkWindows(schedule.WindowIds(), reproduces, budget);
  }
  if (replays_out) *replays_out = replays;
  return schedule.Filtered(minimal);
}

SweepReport RunSweepCells(const std::vector<RunConfig>& cells,
                          const SweepOptions& options,
                          const ProgressFn& progress) {
  size_t jobs =
      options.jobs == 0 ? ThreadPool::DefaultParallelism() : options.jobs;
  jobs = std::max<size_t>(1, std::min(jobs, cells.size()));

  std::vector<CellOutcome> outcomes(cells.size());
  if (jobs <= 1) {
    for (size_t i = 0; i < cells.size(); ++i) {
      outcomes[i] = RunCell(cells[i], options, nullptr, progress, nullptr);
    }
  } else {
    ThreadPool pool(ThreadPool::Options{jobs, 0});
    std::mutex progress_mu;
    TaskGroup group;
    for (size_t i = 0; i < cells.size(); ++i) {
      pool.Submit(&group, [&, i] {
        outcomes[i] = RunCell(cells[i], options, &pool, progress, &progress_mu);
      });
    }
    pool.Wait(&group);
    ExportSchedulerMetrics(pool, options.scheduler_metrics);
  }

  // Deterministic merge: cell order, never completion order. Everything
  // in the report is a pure function of (cells, options).
  SweepReport report;
  for (size_t i = 0; i < cells.size(); ++i) {
    CellOutcome& out = outcomes[i];
    ++report.runs;
    if (out.live) ++report.live_runs;
    for (const auto& [name, count] : out.coverage) {
      report.coverage[name] += count;
    }
    if (!out.ok) {
      report.failures.push_back(std::move(out.failure));
    } else if (!out.live) {
      report.not_live.push_back(std::move(out.repro));
    }
  }
  return report;
}

SweepReport RunSweep(const SweepOptions& options, const ProgressFn& progress) {
  std::vector<RunConfig> cells;
  for (RunConfig cell : options.Expand()) {
    for (size_t i = 0; i < options.seeds; ++i) {
      cell.seed = options.seed_base + i;
      cells.push_back(cell);
    }
  }
  return RunSweepCells(cells, options, progress);
}

}  // namespace pbc::check
