#include "check/runner.h"

#include <algorithm>
#include <set>

namespace pbc::check {

namespace {

bool SupportsByzantine(const std::string& protocol) {
  return protocol == "pbft" || protocol == "hotstuff" ||
         protocol == "tendermint";
}

}  // namespace

std::vector<RunConfig> SweepOptions::Expand() const {
  std::vector<std::string> protos;
  for (const std::string& p : protocols) {
    if (p == "all") {
      std::vector<std::string> known = KnownProtocols();
      protos.insert(protos.end(), known.begin(), known.end());
    } else {
      protos.push_back(p);
    }
  }
  std::vector<RunConfig> cells;
  std::set<std::string> seen;  // "proto|nemesis|size" dedup after reduction
  for (const std::string& proto : protos) {
    for (const std::string& nemesis : nemeses) {
      NemesisProfile profile;
      if (!NemesisProfile::Parse(nemesis, &profile)) continue;
      if (profile.byzantine && !SupportsByzantine(proto)) {
        profile.byzantine = false;
      }
      std::string reduced = profile.ToString();
      for (size_t size : cluster_sizes) {
        std::string key =
            proto + "|" + reduced + "|" + std::to_string(size);
        if (!seen.insert(key).second) continue;
        RunConfig cfg;
        cfg.protocol = proto;
        cfg.cluster_size = size;
        cfg.num_shards = num_shards;
        cfg.nemesis = reduced;
        cfg.txns = txns;
        cfg.quorum_slack = quorum_slack;
        cells.push_back(std::move(cfg));
      }
    }
  }
  return cells;
}

obs::Json SweepFailure::ToJson() const {
  obs::Json v = obs::Json::Array();
  for (const Violation& violation : violations) v.Push(violation.ToJson());
  obs::Json windows = obs::Json::Array();
  for (uint64_t w : shrunk_windows) windows.Push(w);
  return obs::Json::Object()
      .Set("config", config.ToJson())
      .Set("repro", config.ReproLine())
      .Set("live", live)
      .Set("violations", std::move(v))
      .Set("shrunk_windows", std::move(windows))
      .Set("shrink_replays", static_cast<uint64_t>(shrink_replays))
      .Set("shrunk_schedule", shrunk_schedule.ToJson());
}

obs::Json SweepReport::ToJson() const {
  obs::Json cov = obs::Json::Object();
  for (const auto& [name, count] : coverage) cov.Set(name, count);
  obs::Json fails = obs::Json::Array();
  for (const SweepFailure& f : failures) fails.Push(f.ToJson());
  obs::Json stragglers = obs::Json::Array();
  for (const std::string& line : not_live) stragglers.Push(line);
  return obs::Json::Object()
      .Set("runs", static_cast<uint64_t>(runs))
      .Set("live_runs", static_cast<uint64_t>(live_runs))
      .Set("violating_runs", static_cast<uint64_t>(failures.size()))
      .Set("coverage", std::move(cov))
      .Set("failures", std::move(fails))
      .Set("not_live", std::move(stragglers));
}

NemesisSchedule ShrinkFailure(const RunConfig& config,
                              const NemesisSchedule& schedule, size_t budget,
                              size_t* replays_out) {
  size_t replays = 0;
  auto reproduces = [&config, &schedule,
                     &replays](const std::vector<uint64_t>& windows) {
    ++replays;
    RunResult r = RunWithSchedule(config, schedule.Filtered(windows));
    return !r.ok();
  };
  std::vector<uint64_t> minimal =
      ShrinkWindows(schedule.WindowIds(), reproduces, budget);
  if (replays_out) *replays_out = replays;
  return schedule.Filtered(minimal);
}

SweepReport RunSweep(const SweepOptions& options, const ProgressFn& progress) {
  SweepReport report;
  for (RunConfig cell : options.Expand()) {
    for (size_t i = 0; i < options.seeds; ++i) {
      cell.seed = options.seed_base + i;
      RunResult result = RunOne(cell);
      ++report.runs;
      if (result.live) ++report.live_runs;
      for (const auto& [name, count] : result.coverage) {
        report.coverage[name] += count;
      }
      if (!result.ok()) {
        SweepFailure failure;
        failure.config = cell;
        failure.violations = result.violations;
        failure.live = result.live;
        if (options.shrink) {
          failure.shrunk_schedule =
              ShrinkFailure(cell, result.schedule, options.shrink_budget,
                            &failure.shrink_replays);
        } else {
          failure.shrunk_schedule = result.schedule;
        }
        failure.shrunk_windows = failure.shrunk_schedule.WindowIds();
        report.failures.push_back(std::move(failure));
      } else if (!result.live) {
        report.not_live.push_back(cell.ReproLine());
      }
      if (progress) progress(cell, result);
    }
  }
  return report;
}

}  // namespace pbc::check
