#include "check/nemesis.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <sstream>

namespace pbc::check {

namespace {

// One row per kind; NemesisKindName/FromName both read this table so the
// two directions cannot diverge. The static_assert ties the table to
// kAllNemesisKinds (and thereby to the enum): adding a kind without
// extending both lists fails the build or the exhaustiveness test.
struct KindRow {
  NemesisKind kind;
  const char* name;
};
constexpr KindRow kKindTable[] = {
    {NemesisKind::kCrash, "crash"},
    {NemesisKind::kRecover, "recover"},
    {NemesisKind::kPartition, "partition"},
    {NemesisKind::kHeal, "heal"},
    {NemesisKind::kDelay, "delay"},
    {NemesisKind::kClearDelay, "clear-delay"},
    {NemesisKind::kByzantine, "byzantine"},
    {NemesisKind::kClockSkew, "clock-skew"},
    {NemesisKind::kTornWrite, "torn-write"},
    {NemesisKind::kLostFlush, "lost-flush"},
    {NemesisKind::kRestoreFlush, "restore-flush"},
};
static_assert(std::size(kKindTable) == std::size(kAllNemesisKinds),
              "kind name table out of sync with kAllNemesisKinds");

const char* ModeName(consensus::ByzantineMode mode) {
  switch (mode) {
    case consensus::ByzantineMode::kHonest:
      return "honest";
    case consensus::ByzantineMode::kSilent:
      return "silent";
    case consensus::ByzantineMode::kEquivocate:
      return "equivocate";
    case consensus::ByzantineMode::kVoteBoth:
      return "vote-both";
  }
  return "?";
}

}  // namespace

const char* NemesisKindName(NemesisKind kind) {
  for (const KindRow& row : kKindTable) {
    if (row.kind == kind) return row.name;
  }
  return "?";
}

bool NemesisKindFromName(const std::string& name, NemesisKind* out) {
  for (const KindRow& row : kKindTable) {
    if (name == row.name) {
      *out = row.kind;
      return true;
    }
  }
  return false;
}

bool NemesisProfile::Parse(const std::string& csv, NemesisProfile* out) {
  *out = NemesisProfile{};
  if (csv.empty() || csv == "none") return true;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == "crash") {
      out->crash = true;
    } else if (token == "partition") {
      out->partition = true;
    } else if (token == "delay") {
      out->delay = true;
    } else if (token == "byzantine") {
      out->byzantine = true;
    } else if (token == "torn-write") {
      out->torn_write = true;
    } else if (token == "lost-flush") {
      out->lost_flush = true;
    } else {
      return false;
    }
  }
  return true;
}

std::string NemesisProfile::ToString() const {
  std::string s;
  auto add = [&s](const char* t) {
    if (!s.empty()) s += ",";
    s += t;
  };
  if (crash) add("crash");
  if (partition) add("partition");
  if (delay) add("delay");
  if (byzantine) add("byzantine");
  if (torn_write) add("torn-write");
  if (lost_flush) add("lost-flush");
  return s.empty() ? "none" : s;
}

std::string NemesisEvent::Describe() const {
  std::ostringstream os;
  os << "t=" << at << "us " << NemesisKindName(kind);
  switch (kind) {
    case NemesisKind::kCrash:
    case NemesisKind::kRecover:
      os << " node=" << node;
      break;
    case NemesisKind::kPartition: {
      for (const auto& g : groups) {
        os << " {";
        for (size_t i = 0; i < g.size(); ++i) os << (i ? "," : "") << g[i];
        os << "}";
      }
      break;
    }
    case NemesisKind::kHeal:
      break;
    case NemesisKind::kDelay:
      os << " link=" << from << "->" << to << " base=" << latency.base_us
         << "us jitter=" << latency.jitter_us << "us";
      break;
    case NemesisKind::kClearDelay:
      os << " link=" << from << "->" << to;
      break;
    case NemesisKind::kByzantine:
      os << " replica=" << replica_index << " mode=" << ModeName(mode);
      break;
    case NemesisKind::kClockSkew:
      os << " node=" << node << " rate=" << skew_ppm
         << "ppm offset=" << skew_offset_us << "us";
      break;
    case NemesisKind::kTornWrite:
      os << " node=" << node << " tear=" << tear_ppm << "ppm";
      break;
    case NemesisKind::kLostFlush:
    case NemesisKind::kRestoreFlush:
      os << " node=" << node;
      break;
  }
  return os.str();
}

obs::Json NemesisEvent::ToJson() const {
  obs::Json j = obs::Json::Object()
                    .Set("at_us", at)
                    .Set("kind", NemesisKindName(kind))
                    .Set("window", window);
  switch (kind) {
    case NemesisKind::kCrash:
    case NemesisKind::kRecover:
      j.Set("node", node);
      break;
    case NemesisKind::kPartition: {
      obs::Json gs = obs::Json::Array();
      for (const auto& g : groups) {
        obs::Json ids = obs::Json::Array();
        for (sim::NodeId id : g) ids.Push(id);
        gs.Push(std::move(ids));
      }
      j.Set("groups", std::move(gs));
      break;
    }
    case NemesisKind::kHeal:
      break;
    case NemesisKind::kDelay:
      j.Set("from", from)
          .Set("to", to)
          .Set("base_us", latency.base_us)
          .Set("jitter_us", latency.jitter_us);
      break;
    case NemesisKind::kClearDelay:
      j.Set("from", from).Set("to", to);
      break;
    case NemesisKind::kByzantine:
      j.Set("replica_index", static_cast<uint64_t>(replica_index))
          .Set("mode", ModeName(mode));
      break;
    case NemesisKind::kClockSkew:
      j.Set("node", node)
          .Set("rate_ppm", skew_ppm)
          .Set("offset_us", skew_offset_us);
      break;
    case NemesisKind::kTornWrite:
      j.Set("node", node).Set("tear_ppm", tear_ppm);
      break;
    case NemesisKind::kLostFlush:
    case NemesisKind::kRestoreFlush:
      j.Set("node", node);
      break;
  }
  return j;
}

// --- Generation ------------------------------------------------------------

NemesisSchedule NemesisSchedule::Generate(const NemesisProfile& profile,
                                          const NemesisTopology& topology,
                                          sim::Time horizon, uint64_t seed) {
  Rng rng(seed ^ 0x4E454D4553A5A5ULL);
  std::vector<NemesisEvent> events;
  uint64_t next_window = 1;

  const sim::Time start_max = horizon * 55 / 100;
  const sim::Time fault_end = horizon * 70 / 100;
  auto window_times = [&](sim::Time cursor) {
    sim::Time t1 = cursor + rng.NextU64(start_max > cursor
                                            ? start_max - cursor
                                            : 1);
    sim::Time dur = horizon / 20 + rng.NextU64(horizon / 4);
    sim::Time t2 = std::min<sim::Time>(t1 + dur, fault_end);
    return std::pair<sim::Time, sim::Time>(t1, t2);
  };
  auto is_never_crash = [&](sim::NodeId id) {
    return std::find(topology.never_crash.begin(), topology.never_crash.end(),
                     id) != topology.never_crash.end();
  };

  // Byzantine assignment: at most one replica, charged against its
  // cluster's fault budget for the whole run.
  int byz_group = -1;
  sim::NodeId byz_node = ~sim::NodeId{0};
  if (profile.byzantine && topology.supports_byzantine &&
      !topology.groups.empty()) {
    size_t g = rng.NextU64(topology.groups.size());
    const auto& group = topology.groups[g];
    if (group.max_faulty >= 1 && !group.nodes.empty()) {
      size_t idx = rng.NextU64(group.nodes.size());
      NemesisEvent ev;
      ev.at = 0;
      ev.kind = NemesisKind::kByzantine;
      ev.window = next_window++;
      ev.replica_index = idx;
      ev.node = group.nodes[idx];
      double which = rng.NextDouble();
      ev.mode = which < 0.5   ? consensus::ByzantineMode::kEquivocate
                : which < 0.75 ? consensus::ByzantineMode::kVoteBoth
                               : consensus::ByzantineMode::kSilent;
      byz_group = static_cast<int>(g);
      byz_node = ev.node;
      events.push_back(ev);
    }
  }

  // Crash windows: per cluster, sequential (never more than one of a
  // cluster's nodes down at once — conservative within every f ≥ 1).
  // torn-write shares this budget loop: a torn write IS a crash whose
  // power cut leaks a partial disk flush, so it counts against the same
  // f. RNG back-compat: when profile.torn_write is false the torn branch
  // consumes zero draws, so pre-durable corpus seeds keep their exact
  // streams.
  if (profile.crash || profile.torn_write) {
    for (size_t g = 0; g < topology.groups.size(); ++g) {
      const auto& group = topology.groups[g];
      uint32_t budget = group.max_faulty;
      if (static_cast<int>(g) == byz_group && budget > 0) --budget;
      if (budget == 0) continue;
      std::vector<sim::NodeId> eligible;
      for (sim::NodeId id : group.nodes) {
        if (!is_never_crash(id) && id != byz_node) eligible.push_back(id);
      }
      if (eligible.empty()) continue;
      size_t count = rng.NextU64(3);  // 0..2 windows
      sim::Time cursor = 0;
      for (size_t w = 0; w < count && cursor < start_max; ++w) {
        auto [t1, t2] = window_times(cursor);
        if (t1 >= t2) break;
        sim::NodeId victim = eligible[rng.NextU64(eligible.size())];
        bool torn =
            profile.torn_write && (!profile.crash || rng.NextU64(2) == 0);
        uint64_t window = next_window++;
        NemesisEvent down;
        down.at = t1;
        down.kind = torn ? NemesisKind::kTornWrite : NemesisKind::kCrash;
        down.window = window;
        down.node = victim;
        if (torn) down.tear_ppm = 300'000 + rng.NextU64(700'001);
        events.push_back(down);
        NemesisEvent up;
        up.at = t2;
        up.kind = NemesisKind::kRecover;
        up.window = window;
        up.node = victim;
        events.push_back(up);
        cursor = t2 + horizon / 100;
      }
    }
  }

  // Partition windows: global state, so windows are sequential.
  if (profile.partition && topology.all_nodes.size() >= 2) {
    size_t count = rng.NextU64(3);  // 0..2 windows
    sim::Time cursor = 0;
    for (size_t w = 0; w < count && cursor < start_max; ++w) {
      auto [t1, t2] = window_times(cursor);
      if (t1 >= t2) break;
      std::vector<sim::NodeId> side_a, side_b;
      if (topology.partition_whole_network) {
        for (int attempt = 0; attempt < 8 && (side_a.empty() || side_b.empty());
             ++attempt) {
          side_a.clear();
          side_b.clear();
          for (sim::NodeId id : topology.all_nodes) {
            (rng.NextU64(2) == 0 ? side_a : side_b).push_back(id);
          }
        }
        if (side_a.empty() || side_b.empty()) {
          side_a.assign(1, topology.all_nodes[0]);
          side_b.assign(topology.all_nodes.begin() + 1,
                        topology.all_nodes.end());
        }
      } else {
        // Split one cluster's replicas; everyone else stays with side B.
        std::vector<size_t> splittable;
        for (size_t g = 0; g < topology.groups.size(); ++g) {
          if (topology.groups[g].nodes.size() >= 2) splittable.push_back(g);
        }
        if (splittable.empty()) break;
        const auto& cluster =
            topology.groups[splittable[rng.NextU64(splittable.size())]];
        std::vector<sim::NodeId> members = cluster.nodes;
        for (size_t i = members.size(); i > 1; --i) {
          std::swap(members[i - 1], members[rng.NextU64(i)]);
        }
        size_t k = 1 + rng.NextU64(members.size() - 1);
        side_a.assign(members.begin(), members.begin() + k);
        std::set<sim::NodeId> in_a(side_a.begin(), side_a.end());
        for (sim::NodeId id : topology.all_nodes) {
          if (in_a.count(id) == 0) side_b.push_back(id);
        }
      }
      uint64_t window = next_window++;
      NemesisEvent cut;
      cut.at = t1;
      cut.kind = NemesisKind::kPartition;
      cut.window = window;
      cut.groups = {side_a, side_b};
      events.push_back(cut);
      NemesisEvent heal;
      heal.at = t2;
      heal.kind = NemesisKind::kHeal;
      heal.window = window;
      events.push_back(heal);
      cursor = t2 + horizon / 100;
    }
  }

  // Delay windows: overlapping is fine; delays only reorder.
  if (profile.delay && topology.all_nodes.size() >= 2) {
    size_t count = rng.NextU64(4);  // 0..3 windows
    for (size_t w = 0; w < count; ++w) {
      auto [t1, t2] = window_times(0);
      if (t1 >= t2) continue;
      size_t a = rng.NextU64(topology.all_nodes.size());
      size_t b = rng.NextU64(topology.all_nodes.size() - 1);
      if (b >= a) ++b;
      uint64_t window = next_window++;
      NemesisEvent slow;
      slow.at = t1;
      slow.kind = NemesisKind::kDelay;
      slow.window = window;
      slow.from = topology.all_nodes[a];
      slow.to = topology.all_nodes[b];
      slow.latency = {5000 + rng.NextU64(30000), rng.NextU64(5000)};
      events.push_back(slow);
      NemesisEvent clear = slow;
      clear.at = t2;
      clear.kind = NemesisKind::kClearDelay;
      events.push_back(clear);
    }
  }

  // Lost-flush windows: a lying disk acknowledges fsyncs but drops them
  // for one node. Harmless to protocol traffic — only durable runs react
  // (the harness rejects the profile token otherwise). Zero draws when
  // the profile bit is off.
  if (profile.lost_flush && !topology.all_nodes.empty()) {
    size_t count = 1 + rng.NextU64(2);  // 1..2 windows
    sim::Time cursor = 0;
    for (size_t w = 0; w < count && cursor < start_max; ++w) {
      auto [t1, t2] = window_times(cursor);
      if (t1 >= t2) break;
      sim::NodeId victim =
          topology.all_nodes[rng.NextU64(topology.all_nodes.size())];
      uint64_t window = next_window++;
      NemesisEvent lose;
      lose.at = t1;
      lose.kind = NemesisKind::kLostFlush;
      lose.window = window;
      lose.node = victim;
      events.push_back(lose);
      NemesisEvent restore = lose;
      restore.at = t2;
      restore.kind = NemesisKind::kRestoreFlush;
      events.push_back(restore);
      cursor = t2 + horizon / 100;
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const NemesisEvent& a, const NemesisEvent& b) {
                     return a.at < b.at;
                   });
  return FromEvents(std::move(events));
}

NemesisSchedule NemesisSchedule::FromEvents(std::vector<NemesisEvent> events) {
  NemesisSchedule s;
  s.events_ = std::move(events);
  return s;
}

std::vector<uint64_t> NemesisSchedule::WindowIds() const {
  std::set<uint64_t> ids;
  for (const NemesisEvent& ev : events_) ids.insert(ev.window);
  return std::vector<uint64_t>(ids.begin(), ids.end());
}

NemesisSchedule NemesisSchedule::Filtered(
    const std::vector<uint64_t>& windows) const {
  std::set<uint64_t> keep(windows.begin(), windows.end());
  std::vector<NemesisEvent> events;
  for (const NemesisEvent& ev : events_) {
    if (keep.count(ev.window) > 0) events.push_back(ev);
  }
  return FromEvents(std::move(events));
}

void NemesisSchedule::Apply(
    sim::Simulator* sim, sim::Network* net, sim::LinkLatency default_latency,
    const std::function<void(const NemesisEvent&)>& set_byzantine,
    const std::function<void(const NemesisEvent&)>& on_durable) const {
  for (const NemesisEvent& ev : events_) {
    switch (ev.kind) {
      case NemesisKind::kCrash:
        sim->Schedule(ev.at, [net, node = ev.node] { net->Crash(node); });
        break;
      case NemesisKind::kRecover:
        sim->Schedule(ev.at, [net, node = ev.node] { net->Recover(node); });
        break;
      case NemesisKind::kPartition:
        sim->Schedule(ev.at,
                      [net, groups = ev.groups] { net->Partition(groups); });
        break;
      case NemesisKind::kHeal:
        sim->Schedule(ev.at, [net] { net->Heal(); });
        break;
      case NemesisKind::kDelay:
        sim->Schedule(ev.at, [net, from = ev.from, to = ev.to,
                              latency = ev.latency] {
          net->SetDirectionalLinkLatency(from, to, latency);
        });
        break;
      case NemesisKind::kClearDelay:
        sim->Schedule(ev.at, [net, from = ev.from, to = ev.to,
                              default_latency] {
          net->SetDirectionalLinkLatency(from, to, default_latency);
        });
        break;
      case NemesisKind::kByzantine:
        if (set_byzantine) {
          if (ev.at == 0) {
            set_byzantine(ev);  // start-of-run assignment, pre-Start
          } else {
            sim->Schedule(ev.at, [set_byzantine, ev] { set_byzantine(ev); });
          }
        }
        break;
      case NemesisKind::kClockSkew: {
        sim::ClockSkew skew{ev.skew_ppm, ev.skew_offset_us};
        if (ev.at == 0) {
          net->SetClockSkew(ev.node, skew);
        } else {
          sim->Schedule(ev.at, [net, node = ev.node, skew] {
            net->SetClockSkew(node, skew);
          });
        }
        break;
      }
      case NemesisKind::kTornWrite:
        // Arm the filesystem tear, then cut power, in one sim event: the
        // crash must see the pending tear, and nothing may run between.
        sim->Schedule(ev.at, [net, on_durable, ev] {
          if (on_durable) on_durable(ev);
          net->Crash(ev.node);
        });
        break;
      case NemesisKind::kLostFlush:
      case NemesisKind::kRestoreFlush:
        if (on_durable) {
          sim->Schedule(ev.at, [on_durable, ev] { on_durable(ev); });
        }
        break;
    }
  }
}

NemesisSchedule NemesisSchedule::Merged(const NemesisSchedule& a,
                                        const NemesisSchedule& b) {
  std::vector<NemesisEvent> events = a.events_;
  events.insert(events.end(), b.events_.begin(), b.events_.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const NemesisEvent& x, const NemesisEvent& y) {
                     return x.at < y.at;
                   });
  return FromEvents(std::move(events));
}

obs::Json NemesisSchedule::ToJson() const {
  obs::Json arr = obs::Json::Array();
  for (const NemesisEvent& ev : events_) arr.Push(ev.ToJson());
  return arr;
}

std::string NemesisSchedule::Describe() const {
  std::string s;
  for (const NemesisEvent& ev : events_) {
    if (!s.empty()) s += "; ";
    s += ev.Describe();
  }
  return s.empty() ? "(empty)" : s;
}

// --- Shrinking -------------------------------------------------------------

ShrinkBatchProbe SerialShrinkProbe(
    std::function<bool(const std::vector<uint64_t>&)> reproduces) {
  return [reproduces = std::move(reproduces)](
             const std::vector<std::vector<uint64_t>>& candidates,
             size_t max_probes, size_t* probes_charged) -> size_t {
    size_t limit = std::min(candidates.size(), max_probes);
    for (size_t i = 0; i < limit; ++i) {
      if (reproduces(candidates[i])) {
        *probes_charged = i + 1;
        return i;
      }
    }
    *probes_charged = limit;
    return SIZE_MAX;
  };
}

std::vector<uint64_t> ShrinkWindows(
    std::vector<uint64_t> windows,
    const std::function<bool(const std::vector<uint64_t>&)>& reproduces,
    size_t budget) {
  return ShrinkWindowsBatched(std::move(windows), SerialShrinkProbe(reproduces),
                              budget);
}

std::vector<uint64_t> ShrinkWindowsBatched(std::vector<uint64_t> windows,
                                           const ShrinkBatchProbe& probe,
                                           size_t budget) {
  if (windows.empty()) return windows;
  size_t calls = 0;
  auto probe_round =
      [&](const std::vector<std::vector<uint64_t>>& candidates) -> size_t {
    size_t charged = 0;
    size_t idx = probe(candidates, budget - calls, &charged);
    calls += charged;
    return idx;
  };
  if (probe_round({{}}) == 0) return {};

  std::vector<uint64_t> current = windows;
  size_t granularity = 2;
  while (current.size() >= 2 && calls < budget) {
    // One ddmin round: every "drop one chunk" complement at the current
    // granularity. The probe picks the first reproducing candidate —
    // exactly what the serial scan-and-break did, but batched so the
    // parallel engine can evaluate a whole round concurrently.
    size_t chunk = (current.size() + granularity - 1) / granularity;
    std::vector<std::vector<uint64_t>> candidates;
    for (size_t start = 0; start < current.size(); start += chunk) {
      std::vector<uint64_t> candidate;
      candidate.reserve(current.size());
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(current[i]);
      }
      if (candidate.size() == current.size() || candidate.empty()) continue;
      candidates.push_back(std::move(candidate));
    }
    size_t first = probe_round(candidates);
    if (first != SIZE_MAX) {
      current = std::move(candidates[first]);
      granularity = std::max<size_t>(2, granularity - 1);
    } else {
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  return current;
}

}  // namespace pbc::check
