#include "check/harness.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "check/adversary.h"
#include "check/durable.h"
#include "consensus/cluster.h"
#include "consensus/hotstuff.h"
#include "consensus/paxos.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "consensus/tendermint.h"
#include "shard/sharper.h"
#include "shard/two_phase.h"
#include "txn/transaction.h"

namespace pbc::check {

namespace {

constexpr sim::Time kConsensusHorizon = 60'000'000;
constexpr sim::Time kShardHorizon = 300'000'000;
constexpr sim::Time kCheckInterval = 500'000;

bool IsSharded(const std::string& protocol) {
  return protocol == "sharper" || protocol == "ahl";
}

sim::Time HorizonFor(const RunConfig& cfg) {
  if (cfg.horizon_us != 0) return cfg.horizon_us;
  return IsSharded(cfg.protocol) ? kShardHorizon : kConsensusHorizon;
}

/// Stable 64-bit mix of every run-determining field, so distinct configs
/// never share a simulator seed stream.
uint64_t MixSeed(const RunConfig& cfg) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001B3ULL;
  };
  for (char c : cfg.protocol) mix(static_cast<uint64_t>(c));
  for (char c : cfg.nemesis) mix(static_cast<uint64_t>(c));
  mix(cfg.cluster_size);
  mix(cfg.num_shards);
  mix(cfg.txns);
  mix(cfg.quorum_slack);
  // Mixed only when set so pre-block-pipeline repro seeds keep their
  // exact RNG streams.
  if (cfg.block_max_txns > 0) mix(cfg.block_max_txns);
  // Same back-compat rule for the adaptive-adversary fields: default
  // values stay out of the stream so the existing seed corpus replays
  // byte-identically.
  if (cfg.adversary != "random") {
    for (char c : cfg.adversary) mix(static_cast<uint64_t>(c));
  }
  if (cfg.clock_skew_ppm != 0) {
    mix(static_cast<uint64_t>(cfg.clock_skew_ppm));
  }
  if (cfg.durable) mix(0x4653);  // "FS"
  if (cfg.mutate_recovery) mix(0x4D52);  // "MR"
  mix(cfg.seed);
  return h;
}

/// t=0 kClockSkew overlay under the reserved window id 0: even-indexed
/// nodes run `ppm` fast, odd-indexed run `ppm` slow — the worst relative
/// drift between any two timers is thus ~2*ppm. Window 0 so the overlay
/// survives shrinking alongside generated/adaptive windows (ids >= 1).
NemesisSchedule MakeClockSkewSchedule(const std::vector<sim::NodeId>& nodes,
                                      int64_t ppm) {
  std::vector<NemesisEvent> events;
  if (ppm != 0) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      NemesisEvent ev;
      ev.at = 0;
      ev.kind = NemesisKind::kClockSkew;
      ev.window = 0;
      ev.node = nodes[i];
      ev.skew_ppm = (i % 2 == 0) ? ppm : -ppm;
      events.push_back(ev);
    }
  }
  return NemesisSchedule::FromEvents(std::move(events));
}

struct World {
  explicit World(uint64_t seed) : sim(seed), net(&sim) {
    net.SetDefaultLatency(kDefaultLatency);
  }
  static constexpr sim::LinkLatency kDefaultLatency{500, 200};
  sim::Simulator sim;
  sim::Network net;
  crypto::KeyRegistry registry;
};

void FillResult(RunResult* result, const CheckerSuite& suite, const World& w,
                NemesisSchedule schedule) {
  result->violations = suite.violations();
  result->coverage = suite.coverage();
  result->sim_events = w.sim.executed_events();
  result->sim_end_us = w.sim.now();
  result->schedule = std::move(schedule);
}

// --- Consensus-cluster runs ------------------------------------------------

/// Balanced-transfer workload: txn i moves an amount between two of a few
/// accounts via paired increments, so the model total stays 0 at every
/// point and conservation can be checked continuously.
txn::Transaction TransferTxn(size_t i) {
  constexpr uint64_t kAccounts = 8;
  txn::Transaction t;
  t.id = static_cast<txn::TxnId>(i + 1);
  uint64_t a = i % kAccounts;
  uint64_t b = (i * 5 + 3) % kAccounts;
  if (a == b) b = (b + 1) % kAccounts;
  int64_t amount = static_cast<int64_t>(i % 50) + 1;
  t.ops.push_back(txn::Op::Increment("acct" + std::to_string(a), -amount));
  t.ops.push_back(txn::Op::Increment("acct" + std::to_string(b), amount));
  return t;
}

template <typename R>
RunResult RunCluster(const RunConfig& cfg, const NemesisProfile& profile,
                     const NemesisSchedule* explicit_schedule, bool bft) {
  const sim::Time horizon = HorizonFor(cfg);
  World w(MixSeed(cfg));

  consensus::ClusterConfig cc;
  cc.batch_size = 8;  // several sequences per run, so faults land mid-stream
  cc.quorum_slack_for_test = cfg.quorum_slack;
  if (cfg.block_max_txns > 0) {
    cc.block.enabled = true;
    cc.block.max_txns = cfg.block_max_txns;
    cc.block.max_delay_us = 5000;
  }
  consensus::Cluster<R> cluster(&w.net, &w.registry, cfg.cluster_size, cc);

  NemesisTopology topo;
  NemesisTopology::Group group;
  for (size_t i = 0; i < cfg.cluster_size; ++i) {
    group.nodes.push_back(static_cast<sim::NodeId>(i));
    topo.all_nodes.push_back(static_cast<sim::NodeId>(i));
  }
  group.max_faulty =
      bft ? (cfg.cluster_size >= 4
                 ? static_cast<uint32_t>((cfg.cluster_size - 1) / 3)
                 : 1)
          : static_cast<uint32_t>((cfg.cluster_size - 1) / 2);
  topo.groups.push_back(std::move(group));
  topo.partition_whole_network = true;
  topo.supports_byzantine = bft;

  AdversaryMode adversary = AdversaryMode::kRandom;
  ParseAdversaryMode(cfg.adversary, &adversary);  // validated in Dispatch

  // The static part of the schedule: the clock-skew overlay always, plus
  // the generated fault windows in random mode. Adaptive modes inject
  // their faults live (and record them); an explicit schedule — a shrink
  // probe or a trace replay — is always replayed statically, with the
  // adversary disarmed.
  NemesisSchedule schedule;
  if (explicit_schedule) {
    schedule = *explicit_schedule;
  } else {
    schedule = MakeClockSkewSchedule(topo.all_nodes, cfg.clock_skew_ppm);
    if (adversary == AdversaryMode::kRandom) {
      schedule = NemesisSchedule::Merged(
          schedule, NemesisSchedule::Generate(profile, topo, horizon,
                                              cfg.seed));
    }
  }

  CheckerSuite suite(&w.sim);
  auto chains = [&cluster] {
    std::vector<const ledger::Chain*> v;
    for (size_t i = 0; i < cluster.size(); ++i) {
      v.push_back(&cluster.replica(i)->chain());
    }
    return v;
  };
  suite.Add(std::make_unique<ChainAgreementChecker>(chains));
  suite.Add(std::make_unique<ChainLinkageChecker>(chains));
  suite.Add(std::make_unique<CommitValidityChecker>(
      chains, [max_id = cfg.txns](txn::TxnId id) {
        return id >= 1 && id <= max_id;
      }));
  KvModelChecker* kv = suite.Add(std::make_unique<KvModelChecker>());

  // Durable storage: one sim::Fs shared by the cluster (per-node "n<i>/"
  // directories), a DurableLedger per replica persisting on every commit,
  // and the three crash-recovery checkers. The Fs seed is derived from the
  // config mix so the torn-write draws are a pure function of the run.
  std::unique_ptr<sim::Fs> fs;
  std::vector<std::unique_ptr<store::DurableLedger>> stores;
  SyncedCommitDurabilityChecker* synced = nullptr;
  if (cfg.durable) {
    fs = std::make_unique<sim::Fs>(MixSeed(cfg) ^ 0x4653ULL);
    std::vector<DurableTarget> targets;
    for (size_t i = 0; i < cluster.size(); ++i) {
      store::DurableLedger::Options so;
      so.dir = "n" + std::to_string(i);
      so.mutate_recovery = cfg.mutate_recovery;
      stores.push_back(std::make_unique<store::DurableLedger>(fs.get(), so));
      DurableTarget target;
      target.dir = so.dir;
      target.ledger = stores.back().get();
      target.chain = [&cluster, i] { return &cluster.replica(i)->chain(); };
      targets.push_back(std::move(target));
    }
    RecoverFn production = ProductionRecovery(cfg.mutate_recovery);
    suite.Add(std::make_unique<RecoveryEquivalenceChecker>(fs.get(), targets,
                                                           production));
    suite.Add(std::make_unique<SnapshotConvergenceChecker>(
        fs.get(), targets, production,
        ProductionRecovery(cfg.mutate_recovery, /*use_snapshot=*/false)));
    synced = suite.Add(std::make_unique<SyncedCommitDurabilityChecker>(
        fs.get(), targets, production));
    // Disk faults ride the crash choke point: a crash powers down the
    // node's directory (applying any armed tear); a recovery runs the
    // production repair path and reports it to the synced-commit checker.
    w.net.SetFaultListener([&w, fs = fs.get(), &stores, &cluster, synced](
                               sim::NodeId id, bool crashed) {
      size_t i = static_cast<size_t>(id);
      if (i >= stores.size()) return;
      std::string prefix = "n" + std::to_string(i) + "/";
      if (crashed) {
        fs->Crash(prefix);
      } else {
        store::DurableLedger::RecoveryReport report =
            stores[i]->RecoverAndResync(cluster.replica(i)->chain());
        synced->ObserveRecovery(i, report, w.sim.now());
      }
    });
  }

  for (size_t i = 0; i < cluster.size(); ++i) {
    store::DurableLedger* dl = cfg.durable ? stores[i].get() : nullptr;
    cluster.replica(i)->set_commit_listener(
        [kv, i, &w, dl, &cluster](sim::NodeId, uint64_t,
                                  const consensus::Batch& batch) {
          for (const txn::Transaction& t : batch.txns) {
            kv->OnCommit(i, t, w.sim.now());
          }
          if (dl != nullptr) dl->Persist(cluster.replica(i)->chain());
        });
  }
  suite.Add(std::make_unique<BalanceConservationChecker>(
      [kv] {
        int64_t total = 0;
        kv->model().ForEachLatest(
            [&total](const store::Key&, const store::VersionedValue& v) {
              total += txn::DecodeInt(v.value);
            });
        return total;
      },
      int64_t{0}));

  std::function<void(const NemesisEvent&)> on_durable;
  if (cfg.durable) {
    on_durable = [fs = fs.get()](const NemesisEvent& ev) {
      std::string prefix = "n" + std::to_string(ev.node) + "/";
      switch (ev.kind) {
        case NemesisKind::kTornWrite:
          fs->SetPendingTear(prefix, ev.tear_ppm);
          break;
        case NemesisKind::kLostFlush:
          fs->SetLoseFlushes(prefix, true);
          break;
        case NemesisKind::kRestoreFlush:
          fs->SetLoseFlushes(prefix, false);
          break;
        default:
          break;
      }
    };
  }
  schedule.Apply(&w.sim, &w.net, World::kDefaultLatency,
                 [&cluster](const NemesisEvent& ev) {
                   if (ev.replica_index < cluster.size()) {
                     cluster.replica(ev.replica_index)
                         ->set_byzantine_mode(ev.mode);
                   }
                 },
                 on_durable);

  std::unique_ptr<ReactiveNemesis> reactive;
  if (!explicit_schedule && adversary != AdversaryMode::kRandom) {
    ReactiveNemesis::Options opts;
    opts.mode = adversary;
    opts.topology = topo;
    opts.horizon = horizon;
    opts.seed = cfg.seed;
    opts.default_latency = World::kDefaultLatency;
    // Observation: aggregate Status() across live replicas, trusting the
    // highest view that names a leader (a leader's self-claim wins ties
    // at its own view). Reads only; cannot perturb the run.
    auto observer = [&cluster, &w](size_t) {
      GroupObservation obs;
      bool found = false;
      for (size_t i = 0; i < cluster.size(); ++i) {
        if (w.net.IsCrashed(static_cast<sim::NodeId>(i))) continue;
        consensus::ReplicaStatus s = cluster.replica(i)->Status();
        obs.commit_index = std::max(obs.commit_index, s.commit_index);
        if (!s.knows_leader) continue;
        bool better = !found || s.view > obs.view ||
                      (s.view == obs.view && s.is_leader);
        if (better) {
          found = true;
          obs.has_leader = true;
          obs.leader_index = s.leader_index;
          obs.has_next_leader = s.knows_next_leader;
          obs.next_leader_index = s.next_leader_index;
          obs.view = s.view;
        }
      }
      return obs;
    };
    auto flip = [&cluster](size_t, size_t replica_index,
                           consensus::ByzantineMode mode) {
      if (replica_index < cluster.size()) {
        cluster.replica(replica_index)->set_byzantine_mode(mode);
      }
    };
    reactive = std::make_unique<ReactiveNemesis>(
        std::move(opts), &w.sim, &w.net, observer, flip);
    reactive->Arm();
  }

  w.net.Start();
  // Pace submissions over the first half of the horizon so fault windows
  // overlap live traffic instead of an already-quiesced system.
  sim::Time spacing =
      cfg.txns > 0 ? std::max<sim::Time>(1, horizon / 2 / cfg.txns) : 1;
  for (size_t i = 0; i < cfg.txns; ++i) {
    w.sim.Schedule(static_cast<sim::Time>(i) * spacing,
                   [&cluster, t = TransferTxn(i)] { cluster.Submit(t); });
  }
  suite.StartPeriodic(kCheckInterval, horizon);

  RunResult result;
  result.live = w.sim.RunUntil(
      [&cluster, expect = cfg.txns] {
        return cluster.MaxCommitted() >= expect;
      },
      horizon);
  w.sim.Run(w.sim.now() + 5'000'000);  // deterministic straggler drain
  suite.RunFinal();
  result.committed = cluster.MaxCommitted();
  result.committed_min = cluster.MinCommitted();
  // Adaptive runs report the faults the adversary actually executed —
  // the replayable input to shrinking.
  if (reactive) {
    schedule = NemesisSchedule::Merged(schedule, reactive->Trace());
  }
  FillResult(&result, suite, w, std::move(schedule));
  return result;
}

// --- Sharded-system runs ---------------------------------------------------

/// Adapter over the two shard systems so one harness body serves both.
struct ShardSut {
  std::unique_ptr<shard::SharperSystem> sharper;
  std::unique_ptr<shard::TwoPhaseShardSystem> ahl;

  void Submit(txn::Transaction t) {
    if (sharper) {
      sharper->Submit(std::move(t));
    } else {
      ahl->Submit(std::move(t));
    }
  }
  void SetListeners(shard::TxnListener done,
                    shard::ShardOutcomeListener outcome) {
    if (sharper) {
      sharper->set_listener(std::move(done));
      sharper->set_shard_outcome_listener(std::move(outcome));
    } else {
      ahl->set_listener(std::move(done));
      ahl->set_shard_outcome_listener(std::move(outcome));
    }
  }
  int64_t TotalBalance() const {
    return sharper ? sharper->TotalBalance() : ahl->TotalBalance();
  }
  shard::ShardCluster* cluster(size_t i) const {
    if (sharper) return sharper->shard(static_cast<uint32_t>(i));
    uint32_t shards = ahl->num_shards();
    return i < shards ? ahl->shard(static_cast<uint32_t>(i))
                      : ahl->coordinator(static_cast<uint32_t>(i - shards));
  }
  size_t num_clusters() const {
    return sharper ? sharper->num_shards() : ahl->num_shards() + 1;
  }
};

RunResult RunShard(const RunConfig& cfg, const NemesisProfile& profile,
                   const NemesisSchedule* explicit_schedule) {
  const sim::Time horizon = HorizonFor(cfg);
  World w(MixSeed(cfg));

  consensus::ClusterConfig cc;
  cc.quorum_slack_for_test = cfg.quorum_slack;
  if (cfg.block_max_txns > 0) {
    cc.block.enabled = true;
    cc.block.max_txns = cfg.block_max_txns;
    // Short timer cut: 2PC lock/decision markers ride the same pools, so
    // a long cut delay would serialize every cross-shard commit.
    cc.block.max_delay_us = 2000;
  }
  const uint32_t shards = cfg.num_shards;
  const size_t rps = cfg.cluster_size;

  ShardSut sut;
  if (cfg.protocol == "sharper") {
    sut.sharper = std::make_unique<shard::SharperSystem>(
        &w.net, &w.registry, shards, rps, cc);
  } else {
    shard::TwoPhaseConfig tp = shard::TwoPhaseConfig::Ahl(shards, rps);
    tp.cluster = cc;
    sut.ahl = std::make_unique<shard::TwoPhaseShardSystem>(&w.net,
                                                           &w.registry, tp);
  }

  NemesisTopology topo;
  for (size_t c = 0; c < sut.num_clusters(); ++c) {
    NemesisTopology::Group group;
    sim::NodeId base = static_cast<sim::NodeId>(c * (rps + 1));
    for (size_t i = 0; i < rps; ++i) {
      group.nodes.push_back(base + static_cast<sim::NodeId>(i));
      topo.all_nodes.push_back(base + static_cast<sim::NodeId>(i));
    }
    group.max_faulty =
        rps >= 4 ? static_cast<uint32_t>((rps - 1) / 3) : 0;
    topo.groups.push_back(std::move(group));
    sim::NodeId gateway = base + static_cast<sim::NodeId>(rps);
    topo.all_nodes.push_back(gateway);
    topo.never_crash.push_back(gateway);
  }
  topo.partition_whole_network = false;  // see NemesisTopology docs
  topo.supports_byzantine = false;

  // Clock skew composes with sharded runs (it is per-node, not
  // per-protocol); adaptive adversary modes do not (rejected in Dispatch).
  NemesisSchedule schedule =
      explicit_schedule
          ? *explicit_schedule
          : NemesisSchedule::Merged(
                MakeClockSkewSchedule(topo.all_nodes, cfg.clock_skew_ppm),
                NemesisSchedule::Generate(profile, topo, horizon, cfg.seed));

  CheckerSuite suite(&w.sim);
  // Replica agreement within each cluster (cross-cluster chains are
  // independent ledgers, so one checker per cluster).
  for (size_t c = 0; c < sut.num_clusters(); ++c) {
    suite.Add(std::make_unique<ChainAgreementChecker>([&sut, c] {
      std::vector<const ledger::Chain*> v;
      auto* cluster = sut.cluster(c)->consensus();
      for (size_t i = 0; i < cluster->size(); ++i) {
        v.push_back(&cluster->replica(i)->chain());
      }
      return v;
    }));
  }
  auto all_chains = [&sut] {
    std::vector<const ledger::Chain*> v;
    for (size_t c = 0; c < sut.num_clusters(); ++c) {
      auto* cluster = sut.cluster(c)->consensus();
      for (size_t i = 0; i < cluster->size(); ++i) {
        v.push_back(&cluster->replica(i)->chain());
      }
    }
    return v;
  };
  suite.Add(std::make_unique<ChainLinkageChecker>(all_chains));
  // Valid ids: client transactions plus the clusters' marker-id space
  // (ShardCluster::NextMarkerId sets bits >= 40).
  suite.Add(std::make_unique<CommitValidityChecker>(
      all_chains, [max_id = cfg.txns](txn::TxnId id) {
        return (id >= 1 && id <= max_id) || id >= (txn::TxnId{1} << 40);
      }));
  CrossShardAtomicityChecker* atomicity =
      suite.Add(std::make_unique<CrossShardAtomicityChecker>());

  // Workload: deposits into per-shard accounts, then a mix of intra- and
  // cross-shard transfers. Transfers conserve whether they commit or
  // abort; the expected total is whatever the committed deposits added.
  struct Progress {
    size_t submitted = 0;
    std::map<txn::TxnId, bool> results;
    int64_t deposited = 0;
  };
  auto progress = std::make_shared<Progress>();
  const size_t accounts_per_shard = 2;
  const size_t num_deposits = shards * accounts_per_shard;
  auto account = [](uint32_t shard, size_t i) {
    return "s" + std::to_string(shard) + "/acct" + std::to_string(i);
  };

  std::map<txn::TxnId, int64_t> deposit_amounts;
  sut.SetListeners(
      [progress, &deposit_amounts](txn::TxnId id, bool ok) {
        progress->results[id] = ok;
        auto it = deposit_amounts.find(id);
        if (ok && it != deposit_amounts.end()) {
          progress->deposited += it->second;
        }
      },
      [atomicity, &w](shard::ShardId s, txn::TxnId id, bool commit) {
        atomicity->OnShardOutcome(s, id, commit, w.sim.now());
      });

  suite.Add(std::make_unique<BalanceConservationChecker>(
      [&sut] { return sut.TotalBalance(); },
      [progress] { return progress->deposited; },
      [progress, atomicity] {
        return progress->results.size() >= progress->submitted &&
               atomicity->AllDecided();
      }));

  schedule.Apply(&w.sim, &w.net, World::kDefaultLatency, nullptr);
  w.net.Start();

  txn::TxnId next_id = 1;
  for (uint32_t s = 0; s < shards; ++s) {
    for (size_t i = 0; i < accounts_per_shard; ++i) {
      txn::Transaction t;
      t.id = next_id++;
      t.ops.push_back(txn::Op::Increment(account(s, i), 100));
      deposit_amounts[t.id] = 100;
      ++progress->submitted;
      w.sim.Schedule(0, [&sut, t] { sut.Submit(t); });
    }
  }
  // Transfers paced from 5 s to half the horizon; every third one crosses
  // shards. Amounts are small so most clear the guard checks.
  Rng pick(MixSeed(cfg) ^ 0x574C4F4144ULL);
  size_t num_transfers = cfg.txns > num_deposits ? cfg.txns - num_deposits : 4;
  sim::Time t0 = 5'000'000;
  sim::Time spacing = std::max<sim::Time>(
      1, (horizon / 2 - t0) / std::max<size_t>(1, num_transfers));
  for (size_t i = 0; i < num_transfers; ++i) {
    uint32_t from_shard = static_cast<uint32_t>(pick.NextU64(shards));
    uint32_t to_shard = i % 3 == 0
                            ? static_cast<uint32_t>(pick.NextU64(shards))
                            : from_shard;
    txn::Transaction t;
    t.id = next_id++;
    int64_t amount = 1 + static_cast<int64_t>(pick.NextU64(20));
    t.ops.push_back(txn::Op::Increment(
        account(from_shard, pick.NextU64(accounts_per_shard)), -amount));
    t.ops.push_back(txn::Op::Increment(
        account(to_shard, pick.NextU64(accounts_per_shard)), amount));
    auto involved = shard::ShardsOf(t, shards);
    if (involved.size() > 1) {
      atomicity->ExpectOutcomes(t.id, involved.size());
    }
    ++progress->submitted;
    w.sim.Schedule(t0 + static_cast<sim::Time>(i) * spacing,
                   [&sut, t] { sut.Submit(t); });
  }
  suite.StartPeriodic(kCheckInterval, horizon);

  RunResult result;
  result.live = w.sim.RunUntil(
      [progress, atomicity] {
        return progress->results.size() >= progress->submitted &&
               atomicity->AllDecided();
      },
      horizon);
  w.sim.Run(w.sim.now() + 30'000'000);  // deterministic straggler drain
  suite.RunFinal();
  result.committed = progress->results.size();
  FillResult(&result, suite, w, std::move(schedule));
  return result;
}

RunResult Dispatch(const RunConfig& cfg,
                   const NemesisSchedule* explicit_schedule) {
  NemesisProfile profile;
  if (!NemesisProfile::Parse(cfg.nemesis, &profile)) {
    RunResult bad;
    bad.violations.push_back(
        {"config", "unknown nemesis profile: " + cfg.nemesis, 0});
    return bad;
  }
  AdversaryMode adversary = AdversaryMode::kRandom;
  if (!ParseAdversaryMode(cfg.adversary, &adversary)) {
    RunResult bad;
    bad.violations.push_back(
        {"config", "unknown adversary mode: " + cfg.adversary, 0});
    return bad;
  }
  if ((profile.torn_write || profile.lost_flush) && !cfg.durable) {
    RunResult bad;
    bad.violations.push_back(
        {"config",
         "nemesis profile '" + cfg.nemesis +
             "' injects disk faults and requires --durable",
         0});
    return bad;
  }
  if (cfg.mutate_recovery && !cfg.durable) {
    RunResult bad;
    bad.violations.push_back(
        {"config", "--mutate-recovery requires --durable", 0});
    return bad;
  }
  if (cfg.durable && IsSharded(cfg.protocol)) {
    // The durable layer persists per-replica consensus chains; the sharded
    // systems route commits through gateways with their own ledgers, which
    // this PR does not cover. Sweep expansion reduces these cells to
    // non-durable instead of erroring.
    RunResult bad;
    bad.violations.push_back(
        {"config", "durable mode is not supported for sharded protocols", 0});
    return bad;
  }
  if (adversary != AdversaryMode::kRandom && IsSharded(cfg.protocol)) {
    // Adaptive modes partition/crash at the quorum edge of one cluster;
    // the sharded topologies forbid exactly those arbitrary whole-network
    // splits (see NemesisTopology::partition_whole_network). Sweep
    // expansion reduces these cells to "random" instead of erroring.
    RunResult bad;
    bad.violations.push_back(
        {"config",
         "adversary mode '" + cfg.adversary +
             "' is not supported for sharded protocols",
         0});
    return bad;
  }
  if (cfg.protocol == "pbft") {
    return RunCluster<consensus::PbftReplica>(cfg, profile, explicit_schedule,
                                              /*bft=*/true);
  }
  if (cfg.protocol == "hotstuff") {
    return RunCluster<consensus::HotStuffReplica>(cfg, profile,
                                                  explicit_schedule,
                                                  /*bft=*/true);
  }
  if (cfg.protocol == "tendermint") {
    return RunCluster<consensus::TendermintReplica>(cfg, profile,
                                                    explicit_schedule,
                                                    /*bft=*/true);
  }
  if (cfg.protocol == "raft") {
    return RunCluster<consensus::RaftReplica>(cfg, profile, explicit_schedule,
                                              /*bft=*/false);
  }
  if (cfg.protocol == "paxos") {
    return RunCluster<consensus::PaxosReplica>(cfg, profile,
                                               explicit_schedule,
                                               /*bft=*/false);
  }
  if (IsSharded(cfg.protocol)) {
    return RunShard(cfg, profile, explicit_schedule);
  }
  RunResult bad;
  bad.violations.push_back(
      {"config", "unknown protocol: " + cfg.protocol, 0});
  return bad;
}

}  // namespace

std::string RunConfig::ReproLine() const {
  std::ostringstream os;
  os << "check_runner --protocol " << protocol << " --cluster-size "
     << cluster_size;
  if (IsSharded(protocol)) os << " --num-shards " << num_shards;
  os << " --nemesis " << nemesis << " --txns " << txns << " --seeds 1"
     << " --seed-base " << seed;
  if (quorum_slack > 0) os << " --mutate-quorum " << quorum_slack;
  if (block_max_txns > 0) os << " --block-max-txns " << block_max_txns;
  if (adversary != "random") os << " --adversary " << adversary;
  if (clock_skew_ppm != 0) os << " --clock-skew " << clock_skew_ppm;
  if (durable) os << " --durable";
  if (mutate_recovery) os << " --mutate-recovery";
  return os.str();
}

obs::Json RunConfig::ToJson() const {
  obs::Json j = obs::Json::Object()
                    .Set("protocol", protocol)
                    .Set("cluster_size", static_cast<uint64_t>(cluster_size))
                    .Set("nemesis", nemesis)
                    .Set("seed", seed)
                    .Set("txns", static_cast<uint64_t>(txns))
                    .Set("horizon_us", HorizonFor(*this));
  if (IsSharded(protocol)) j.Set("num_shards", num_shards);
  if (quorum_slack > 0) j.Set("quorum_slack", quorum_slack);
  if (block_max_txns > 0) {
    j.Set("block_max_txns", static_cast<uint64_t>(block_max_txns));
  }
  // Emitted only when non-default, like block_max_txns, so reports from
  // before the adaptive adversary landed stay byte-comparable.
  if (adversary != "random") j.Set("adversary", adversary);
  if (clock_skew_ppm != 0) j.Set("clock_skew_ppm", clock_skew_ppm);
  if (durable) j.Set("durable", true);
  if (mutate_recovery) j.Set("mutate_recovery", true);
  return j;
}

RunResult RunOne(const RunConfig& config) { return Dispatch(config, nullptr); }

RunResult RunWithSchedule(const RunConfig& config,
                          const NemesisSchedule& schedule) {
  return Dispatch(config, &schedule);
}

std::vector<std::string> KnownProtocols() {
  return {"pbft", "raft", "hotstuff", "tendermint", "paxos", "sharper", "ahl"};
}

}  // namespace pbc::check
