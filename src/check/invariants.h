// Reusable invariant checkers for deterministic simulation testing.
//
// Each checker observes a system-under-test through narrow accessors (or
// event callbacks wired by the harness) and appends `Violation`s when a
// safety property is broken. Checkers NEVER mutate the system: attaching
// them cannot change a run's behavior, so a violation found with checkers
// attached replays identically without them.
//
// The properties covered are the paper's core safety claims:
//  * consensus agreement / prefix consistency (§2.3.2)  — ChainAgreement
//  * ledger integrity (hash linkage, Merkle roots)      — ChainLinkage
//  * consensus validity (only client txns commit)       — CommitValidity
//  * KV linearizability vs a sequential model           — KvModel
//  * workload balance conservation                      — BalanceConservation
//  * token no-double-spend (§2.3.2, Separ)              — TokenNoDoubleSpend
//  * cross-shard atomicity (§2.3.4)                     — CrossShardAtomicity
#ifndef PBC_CHECK_INVARIANTS_H_
#define PBC_CHECK_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "ledger/chain.h"
#include "obs/json.h"
#include "sim/simulator.h"
#include "store/kv_store.h"
#include "txn/transaction.h"

namespace pbc::check {

/// \brief One detected safety violation.
struct Violation {
  std::string invariant;  ///< checker name, e.g. "chain-agreement"
  std::string detail;     ///< human-readable description with specifics
  sim::Time at = 0;       ///< simulated time of detection

  obs::Json ToJson() const;
};

/// \brief Base class for invariant checkers.
class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;

  /// Stable name used in reports and coverage counts.
  virtual const char* name() const = 0;

  /// Examines the system and appends violations. Called periodically
  /// during the run and once more at the end.
  virtual void Check(sim::Time now, std::vector<Violation>* out) = 0;

  /// Checkers that are too expensive to run periodically (full-chain
  /// audits) return false here and are only run at the end of a run.
  virtual bool periodic() const { return true; }
};

/// \brief All pairwise chains are prefix-consistent (consensus agreement).
class ChainAgreementChecker : public InvariantChecker {
 public:
  using ChainsFn = std::function<std::vector<const ledger::Chain*>()>;
  explicit ChainAgreementChecker(ChainsFn chains)
      : chains_(std::move(chains)) {}

  const char* name() const override { return "chain-agreement"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

 private:
  ChainsFn chains_;
};

/// \brief Every chain passes a full integrity audit (hash linkage + txn
/// Merkle roots). Final-only: O(total blocks) hashing per invocation.
class ChainLinkageChecker : public InvariantChecker {
 public:
  using ChainsFn = ChainAgreementChecker::ChainsFn;
  explicit ChainLinkageChecker(ChainsFn chains) : chains_(std::move(chains)) {}

  const char* name() const override { return "chain-linkage"; }
  bool periodic() const override { return false; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

 private:
  ChainsFn chains_;
};

/// \brief Only valid transactions commit, and each at most once per chain.
///
/// `is_valid_id` decides which transaction ids a chain may legitimately
/// contain (client-submitted ids; for sharded systems also the clusters'
/// marker-transaction id space). Catches fabricated transactions smuggled
/// in by an equivocating leader as well as duplicate delivery.
class CommitValidityChecker : public InvariantChecker {
 public:
  using ChainsFn = ChainAgreementChecker::ChainsFn;
  using IdPredicate = std::function<bool(txn::TxnId)>;
  CommitValidityChecker(ChainsFn chains, IdPredicate is_valid_id)
      : chains_(std::move(chains)), is_valid_id_(std::move(is_valid_id)) {}

  const char* name() const override { return "commit-validity"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

 private:
  ChainsFn chains_;
  IdPredicate is_valid_id_;
};

/// \brief KV linearizability against a sequential model.
///
/// The harness feeds every replica's committed transactions (in that
/// replica's delivery order) through `OnCommit`. The first replica to
/// reach a position defines the canonical sequential history; any replica
/// committing a different transaction at the same position violates
/// linearizability of the replicated KV store. The canonical history is
/// also executed against a model `KvStore`, whose final state other
/// checkers (balance conservation) can read.
class KvModelChecker : public InvariantChecker {
 public:
  KvModelChecker() = default;

  /// Called by the harness whenever replica `replica_index` commits `txn`.
  void OnCommit(size_t replica_index, const txn::Transaction& txn,
                sim::Time now);

  const char* name() const override { return "kv-linearizability"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

  const store::KvStore& model() const { return model_; }
  size_t canonical_length() const { return canonical_.size(); }

 private:
  void ApplyToModel(const txn::Transaction& txn);

  std::vector<txn::TxnId> canonical_;          // agreed total order
  std::map<size_t, size_t> cursor_;            // replica -> next position
  store::KvStore model_;                       // canonical history applied
  store::Version next_version_ = 1;
  std::vector<Violation> pending_;             // found during OnCommit
};

/// \brief Total balance equals the expected constant.
///
/// For sharded systems, totals are transiently off while a cross-shard
/// commit has been applied on one cluster but not yet ordered on another,
/// so the checker only fires when `settled` reports the system quiescent
/// (always true by default).
class BalanceConservationChecker : public InvariantChecker {
 public:
  /// `expected` is a function because the reference value can itself
  /// depend on the run (e.g. only deposits that committed count).
  BalanceConservationChecker(std::function<int64_t()> total,
                             std::function<int64_t()> expected,
                             std::function<bool()> settled = nullptr)
      : total_(std::move(total)),
        expected_(std::move(expected)),
        settled_(std::move(settled)) {}

  BalanceConservationChecker(std::function<int64_t()> total, int64_t expected,
                             std::function<bool()> settled = nullptr)
      : BalanceConservationChecker(
            std::move(total), [expected] { return expected; },
            std::move(settled)) {}

  const char* name() const override { return "balance-conservation"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

 private:
  std::function<int64_t()> total_;
  std::function<int64_t()> expected_;
  std::function<bool()> settled_;
};

/// \brief No token serial is accepted twice (Separ's enforceability
/// invariant). The harness reports each spend attempt via `OnSpend`.
class TokenNoDoubleSpendChecker : public InvariantChecker {
 public:
  void OnSpend(const crypto::Hash256& serial, bool accepted, sim::Time now);

  const char* name() const override { return "token-no-double-spend"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

  size_t accepted_spends() const { return accepted_.size(); }

 private:
  std::set<crypto::Hash256> accepted_;
  std::vector<Violation> pending_;
};

/// \brief Cross-shard atomicity: all clusters involved in a transaction
/// reach the same commit/abort outcome (wired to the shard systems'
/// `set_shard_outcome_listener` hook).
class CrossShardAtomicityChecker : public InvariantChecker {
 public:
  /// Registers how many clusters a transaction involves (used by
  /// `AllDecided`); harnesses call this at submission time.
  void ExpectOutcomes(txn::TxnId id, size_t involved_clusters);

  /// Reports cluster `shard`'s ordered local outcome for `id`.
  void OnShardOutcome(uint32_t shard, txn::TxnId id, bool commit,
                      sim::Time now);

  /// True when every registered transaction has an outcome from every
  /// involved cluster — the gate for end-state checks like balance
  /// conservation.
  bool AllDecided() const;

  const char* name() const override { return "cross-shard-atomicity"; }
  void Check(sim::Time now, std::vector<Violation>* out) override;

 private:
  std::map<txn::TxnId, size_t> expected_;
  std::map<txn::TxnId, std::map<uint32_t, bool>> outcomes_;
  std::vector<Violation> pending_;
};

/// \brief Owns a set of checkers, drives periodic checks off the
/// simulator, and accumulates violations + per-invariant coverage counts.
class CheckerSuite {
 public:
  explicit CheckerSuite(sim::Simulator* sim) : sim_(sim) {}

  /// Adds a checker; returns the raw pointer for harness wiring.
  template <typename T>
  T* Add(std::unique_ptr<T> checker) {
    T* raw = checker.get();
    checkers_.push_back(std::move(checker));
    return raw;
  }

  /// Schedules `RunPeriodic` every `interval_us` until `until`.
  void StartPeriodic(sim::Time interval_us, sim::Time until);

  /// Runs every periodic checker once, now.
  void RunPeriodic();

  /// Runs every checker (periodic or not) once — the end-of-run sweep.
  void RunFinal();

  const std::vector<Violation>& violations() const { return violations_; }
  /// Checker name → number of times it ran.
  const std::map<std::string, uint64_t>& coverage() const { return coverage_; }

  /// At most this many violations are recorded per invariant (a broken
  /// invariant would otherwise flood the report every period).
  static constexpr size_t kMaxViolationsPerInvariant = 5;

 private:
  void RunOne(InvariantChecker* checker);

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  std::vector<Violation> violations_;
  std::map<std::string, uint64_t> coverage_;
  std::map<std::string, size_t> recorded_;
};

}  // namespace pbc::check

#endif  // PBC_CHECK_INVARIANTS_H_
