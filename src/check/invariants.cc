#include "check/invariants.h"

#include <algorithm>

namespace pbc::check {

obs::Json Violation::ToJson() const {
  return obs::Json::Object()
      .Set("invariant", invariant)
      .Set("detail", detail)
      .Set("at_us", at);
}

// --- ChainAgreementChecker -------------------------------------------------

void ChainAgreementChecker::Check(sim::Time now, std::vector<Violation>* out) {
  std::vector<const ledger::Chain*> chains = chains_();
  for (size_t i = 0; i < chains.size(); ++i) {
    for (size_t j = i + 1; j < chains.size(); ++j) {
      if (!chains[i]->PrefixConsistentWith(*chains[j])) {
        out->push_back(
            {name(),
             "chains of replicas " + std::to_string(i) + " (height " +
                 std::to_string(chains[i]->height()) + ") and " +
                 std::to_string(j) + " (height " +
                 std::to_string(chains[j]->height()) +
                 ") are not prefix-consistent",
             now});
      }
    }
  }
}

// --- ChainLinkageChecker ---------------------------------------------------

void ChainLinkageChecker::Check(sim::Time now, std::vector<Violation>* out) {
  std::vector<const ledger::Chain*> chains = chains_();
  for (size_t i = 0; i < chains.size(); ++i) {
    Status status = chains[i]->Audit();
    if (!status.ok()) {
      out->push_back({name(),
                      "chain audit failed on replica " + std::to_string(i) +
                          ": " + status.message(),
                      now});
    }
  }
}

// --- CommitValidityChecker -------------------------------------------------

void CommitValidityChecker::Check(sim::Time now, std::vector<Violation>* out) {
  std::vector<const ledger::Chain*> chains = chains_();
  for (size_t i = 0; i < chains.size(); ++i) {
    std::set<txn::TxnId> seen;
    for (const ledger::Block& block : chains[i]->blocks()) {
      for (const txn::Transaction& t : block.txns) {
        if (!is_valid_id_(t.id)) {
          out->push_back({name(),
                          "replica " + std::to_string(i) +
                              " committed a transaction that was never "
                              "submitted (id " +
                              std::to_string(t.id) + ")",
                          now});
        }
        if (!seen.insert(t.id).second) {
          out->push_back({name(),
                          "replica " + std::to_string(i) +
                              " committed transaction " +
                              std::to_string(t.id) + " more than once",
                          now});
        }
      }
    }
  }
}

// --- KvModelChecker --------------------------------------------------------

void KvModelChecker::ApplyToModel(const txn::Transaction& txn) {
  txn::ExecResult result = txn::Execute(txn, txn::LatestReader(&model_));
  if (!result.writes.empty()) {
    model_.ApplyBatch(result.writes, next_version_++);
  }
}

void KvModelChecker::OnCommit(size_t replica_index,
                              const txn::Transaction& txn, sim::Time now) {
  size_t pos = cursor_[replica_index]++;
  if (pos < canonical_.size()) {
    if (canonical_[pos] != txn.id) {
      pending_.push_back(
          {name(),
           "replica " + std::to_string(replica_index) + " committed txn " +
               std::to_string(txn.id) + " at position " + std::to_string(pos) +
               " where the sequential history holds txn " +
               std::to_string(canonical_[pos]),
           now});
    }
    return;
  }
  // First replica to reach this position extends the canonical history.
  canonical_.push_back(txn.id);
  ApplyToModel(txn);
}

void KvModelChecker::Check(sim::Time /*now*/, std::vector<Violation>* out) {
  out->insert(out->end(), pending_.begin(), pending_.end());
  pending_.clear();
}

// --- BalanceConservationChecker --------------------------------------------

void BalanceConservationChecker::Check(sim::Time now,
                                       std::vector<Violation>* out) {
  if (settled_ && !settled_()) return;
  int64_t total = total_();
  int64_t expected = expected_();
  if (total != expected) {
    out->push_back({name(),
                    "total balance " + std::to_string(total) +
                        " != expected " + std::to_string(expected),
                    now});
  }
}

// --- TokenNoDoubleSpendChecker ---------------------------------------------

void TokenNoDoubleSpendChecker::OnSpend(const crypto::Hash256& serial,
                                        bool accepted, sim::Time now) {
  if (!accepted) return;
  if (!accepted_.insert(serial).second) {
    pending_.push_back(
        {name(), "token serial accepted twice (double spend)", now});
  }
}

void TokenNoDoubleSpendChecker::Check(sim::Time /*now*/,
                                      std::vector<Violation>* out) {
  out->insert(out->end(), pending_.begin(), pending_.end());
  pending_.clear();
}

// --- CrossShardAtomicityChecker --------------------------------------------

void CrossShardAtomicityChecker::ExpectOutcomes(txn::TxnId id,
                                                size_t involved_clusters) {
  expected_[id] = involved_clusters;
}

void CrossShardAtomicityChecker::OnShardOutcome(uint32_t shard, txn::TxnId id,
                                                bool commit, sim::Time now) {
  auto& per_shard = outcomes_[id];
  per_shard[shard] = commit;
  for (const auto& [other, outcome] : per_shard) {
    if (outcome != commit) {
      pending_.push_back(
          {name(),
           "cross-shard txn " + std::to_string(id) + ": cluster " +
               std::to_string(shard) + (commit ? " committed" : " aborted") +
               " while cluster " + std::to_string(other) +
               (outcome ? " committed" : " aborted"),
           now});
      break;
    }
  }
}

bool CrossShardAtomicityChecker::AllDecided() const {
  for (const auto& [id, involved] : expected_) {
    auto it = outcomes_.find(id);
    if (it == outcomes_.end() || it->second.size() < involved) return false;
  }
  return true;
}

void CrossShardAtomicityChecker::Check(sim::Time /*now*/,
                                       std::vector<Violation>* out) {
  out->insert(out->end(), pending_.begin(), pending_.end());
  pending_.clear();
}

// --- CheckerSuite ----------------------------------------------------------

void CheckerSuite::RunOne(InvariantChecker* checker) {
  ++coverage_[checker->name()];
  std::vector<Violation> found;
  checker->Check(sim_->now(), &found);
  size_t& recorded = recorded_[checker->name()];
  for (Violation& v : found) {
    if (recorded >= kMaxViolationsPerInvariant) break;
    ++recorded;
    violations_.push_back(std::move(v));
  }
}

void CheckerSuite::RunPeriodic() {
  for (auto& checker : checkers_) {
    if (checker->periodic()) RunOne(checker.get());
  }
}

void CheckerSuite::RunFinal() {
  for (auto& checker : checkers_) RunOne(checker.get());
}

void CheckerSuite::StartPeriodic(sim::Time interval_us, sim::Time until) {
  if (sim_->now() > until) return;
  sim_->Schedule(interval_us, [this, interval_us, until] {
    RunPeriodic();
    StartPeriodic(interval_us, until);
  });
}

}  // namespace pbc::check
