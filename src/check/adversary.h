// Adaptive, state-aware adversary: a nemesis that *reacts*.
//
// The schedule generator in nemesis.h fires faults at pre-scheduled times
// over a fixed topology — good coverage of random badness, but it never
// stresses the quorum edge the way a real attacker (or a correlated
// datacenter failure) does. `ReactiveNemesis` instead observes simulator
// state between events — the current leader of each cluster, its view
// number, commit progress — and chooses its next fault to maximize
// damage: crash the leader the moment it is elected, partition the
// network exactly at the f+1/f quorum edge, slow the fastest link into
// the leader, or Byzantine-flip the proposer the cluster is about to
// elect.
//
// Determinism of observation (the property everything else rides on):
// the adversary runs inside the simulator as ordinary scheduled events at
// fixed tick times, reads only deterministic replica state through a
// read-only observer, and draws all randomness from its own seeded Rng —
// so an adaptive run is still a pure function of (config, seed). Every
// fault it injects is recorded as a `NemesisEvent` (with a window id)
// into a trace; `RunResult::schedule` carries that trace, and shrinking
// replays *subsets of the trace statically* via RunWithSchedule — the
// adversary does not re-run during replays, which keeps ddmin sound and
// sweep reports byte-identical across `--jobs N`. See DESIGN.md §12.
#ifndef PBC_CHECK_ADVERSARY_H_
#define PBC_CHECK_ADVERSARY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/nemesis.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbc::check {

/// \brief Adversary strategies (`check_runner --adversary`).
enum class AdversaryMode {
  kRandom,  ///< pre-generated seeded schedule (NemesisSchedule::Generate)
  kLeader,  ///< crash, delay and Byzantine-flip whoever leads
  kQuorum,  ///< partition exactly at the quorum edge (f+1 / rest)
  kChurn,   ///< sustained short crash windows that follow leadership
};

/// All modes, for exhaustiveness tests and flag validation.
inline constexpr AdversaryMode kAllAdversaryModes[] = {
    AdversaryMode::kRandom, AdversaryMode::kLeader, AdversaryMode::kQuorum,
    AdversaryMode::kChurn};

/// Stable wire name ("random", "leader", "quorum", "churn").
const char* AdversaryModeName(AdversaryMode mode);
/// Inverse of AdversaryModeName. Returns false on unknown names.
bool ParseAdversaryMode(const std::string& name, AdversaryMode* out);

/// \brief What the adversary may see of one consensus group between
/// events. Pure observation aggregated across live replicas; never fed
/// back into protocol logic.
struct GroupObservation {
  bool has_leader = false;
  size_t leader_index = 0;       ///< index into the group's node list
  bool has_next_leader = false;
  size_t next_leader_index = 0;  ///< proposer after one view change
  uint64_t view = 0;             ///< highest view/term/round observed
  uint64_t commit_index = 0;     ///< max in-order commit across replicas
};

/// Reads the observation for topology group `g`.
using GroupObserver = std::function<GroupObservation(size_t group)>;
/// Applies a Byzantine mode to the replica at `replica_index` of group
/// `group` (the harness maps indices onto its cluster).
using ByzantineFlip = std::function<void(
    size_t group, size_t replica_index, consensus::ByzantineMode mode)>;

/// \brief The adaptive adversary. One instance drives one run: Arm() it
/// before Network::Start(), then read Trace() after the run for the
/// replayable fault schedule it actually executed.
class ReactiveNemesis {
 public:
  struct Options {
    AdversaryMode mode = AdversaryMode::kLeader;
    NemesisTopology topology;
    sim::Time horizon = 0;             ///< run horizon; faults end by 70%
    uint64_t seed = 0;                 ///< adversary's private Rng stream
    sim::Time tick_us = 500'000;       ///< observation cadence
    sim::LinkLatency default_latency;  ///< restored when a delay clears
  };

  ReactiveNemesis(Options options, sim::Simulator* sim, sim::Network* net,
                  GroupObserver observer, ByzantineFlip flip);

  /// Schedules the first observation tick. Faults never start after
  /// 0.55 * horizon and all end by 0.7 * horizon — the same fault-free
  /// tail contract as generated schedules, so liveness stays achievable.
  void Arm();

  /// The faults injected so far, as a well-formed replayable schedule
  /// (every crash paired with its recover, etc.), sorted by time.
  NemesisSchedule Trace() const;

  /// Instantaneous fault count charged against group `g`'s budget
  /// (crashed-now plus permanently-Byzantine). Exposed for tests.
  uint32_t active_faults(size_t g) const { return state_[g].active_faults; }

 private:
  struct GroupState {
    uint32_t active_faults = 0;  ///< crashed-now + Byzantine members
    bool byzantine_used = false;
    bool did_initial_crash = false;  ///< leader mode: crash before flip
    sim::Time busy_until = 0;        ///< cooldown before the next action
  };

  void Tick();
  void LeaderTick(size_t g, const GroupObservation& obs);
  void QuorumTick(size_t g, const GroupObservation& obs);
  void ChurnTick(size_t g, const GroupObservation& obs);

  /// Crash `victim` now, recover at `until`; records the window and keeps
  /// the group's budget accounting. No-op (returns false) if the victim
  /// is protected, already crashed, or the budget is exhausted.
  bool InjectCrash(size_t g, sim::NodeId victim, sim::Time until);
  /// Splits all_nodes into {leader side} / {rest} at the quorum edge.
  void InjectQuorumPartition(size_t g, size_t leader_index, sim::Time until);
  /// Slows the fastest inbound link into the leader until `until`.
  void InjectLeaderDelay(size_t g, size_t leader_index, sim::Time until);
  /// Permanently flips one replica to equivocation; charges the budget.
  bool InjectByzantineFlip(size_t g, size_t replica_index);

  sim::Time FaultStartMax() const { return options_.horizon * 55 / 100; }
  sim::Time FaultEnd() const { return options_.horizon * 70 / 100; }
  bool IsNeverCrash(sim::NodeId id) const;

  Options options_;
  sim::Simulator* sim_;
  sim::Network* net_;
  GroupObserver observer_;
  ByzantineFlip flip_;
  Rng rng_;
  std::vector<GroupState> state_;
  /// Partitions are global network state: one window at a time.
  sim::Time partition_busy_until_ = 0;
  uint64_t next_window_ = 1;  // 0 is reserved for the clock-skew overlay
  std::vector<NemesisEvent> events_;
};

}  // namespace pbc::check

#endif  // PBC_CHECK_ADVERSARY_H_
