// Deterministic binary codecs for the durable storage layer: block
// payloads, CRC-framed log records, and the canonical serialization of a
// KvStore's latest state. All integers are little-endian fixed-width, so
// encoded bytes are identical across platforms and runs — the byte
// strings themselves are what the recovery invariants compare.
#ifndef PBC_STORE_CODEC_H_
#define PBC_STORE_CODEC_H_

#include <cstdint>
#include <string>

#include "ledger/block.h"
#include "store/kv_store.h"

namespace pbc::store {

/// CRC-32 (IEEE 802.3 polynomial, table-driven) over `bytes`. Used as the
/// per-frame integrity check in the block log and snapshot files.
uint32_t Crc32(const std::string& bytes);

// Little-endian primitive append / cursor-based extract.
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, const std::string& s);  // u32 len + bytes

/// Cursor over an encoded buffer; all Get* return false on underrun and
/// leave the cursor unspecified (decoding must then be abandoned).
struct Decoder {
  const std::string* data;
  size_t pos = 0;

  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetString(std::string* s);
  size_t remaining() const { return data->size() - pos; }
};

/// Full block payload: header fields + every transaction's program.
std::string EncodeBlock(const ledger::Block& block);

/// Inverse of EncodeBlock. Returns false on malformed input or when the
/// decoded header's Merkle root does not match the transactions.
bool DecodeBlock(const std::string& payload, ledger::Block* out);

/// Canonical serialization of the latest state: (key, value, version)
/// triples in key order plus the last committed version. Two stores with
/// equal serializations are indistinguishable to any reader of latest
/// state — this string is the "byte-equals" in the recovery invariants.
std::string SerializeLatestState(const KvStore& kv);

}  // namespace pbc::store

#endif  // PBC_STORE_CODEC_H_
