#include "store/durable_ledger.h"

#include "store/codec.h"
#include "store/snapshot.h"
#include "txn/transaction.h"

namespace pbc::store {

namespace {

std::string LogPath(const std::string& dir) { return dir + "/blocks.log"; }

// The canonical transaction-application idiom (identical to the KV model
// checker's ApplyToModel), so durable state and model state are
// byte-comparable: versions advance only when a txn produced writes.
void ApplyTxn(const txn::Transaction& txn, KvStore* kv,
              uint64_t* next_version) {
  txn::ExecResult result = txn::Execute(txn, txn::LatestReader(kv));
  if (!result.writes.empty()) {
    kv->ApplyBatch(result.writes, (*next_version)++);
  }
}

}  // namespace

DurableLedger::DurableLedger(sim::Fs* fs, Options opts)
    : fs_(fs), opts_(std::move(opts)), log_(fs, LogPath(opts_.dir)) {}

void DurableLedger::ApplyBlockToState(const ledger::Block& block) {
  for (const txn::Transaction& t : block.txns) {
    ApplyTxn(t, &kv_, &next_version_);
  }
  ++kv_height_;
}

void DurableLedger::Persist(const ledger::Chain& chain) {
  if (chain.height() <= durable_height_) return;
  for (uint64_t h = durable_height_; h < chain.height(); ++h) {
    log_.Append(chain.at(h));
    if (h >= kv_height_) ApplyBlockToState(chain.at(h));
  }
  log_.Sync();  // the commit barrier: blocks count as durable only now
  durable_height_ = chain.height();
  MaybeSnapshot();
}

void DurableLedger::MaybeSnapshot() {
  if (opts_.snapshot_interval == 0) return;
  if (durable_height_ < last_snapshot_height_ + opts_.snapshot_interval) {
    return;
  }
  // kv_ is exactly the state after block durable_height_-1 here: Persist
  // applies blocks and advances durable_height_ in lockstep.
  WriteSnapshot(fs_, opts_.dir,
                CaptureSnapshot(kv_, durable_height_, next_version_));
  last_snapshot_height_ = durable_height_;
}

DurableLedger::Recovered DurableLedger::RecoverFromImage(
    const sim::FsImage& image, const std::string& dir,
    bool mutate_off_by_one, bool use_snapshot) {
  Recovered rec;
  std::string data;
  auto log_it = image.find(LogPath(dir));
  if (log_it != image.end()) data = log_it->second;

  LogScan scan = ScanLog(data);
  if (mutate_off_by_one && scan.torn && scan.valid_bytes > 0) {
    // Mirror of BlockLog::RecoverAndTruncate's canary bug, as a pure
    // function: cut one byte into the last valid frame and rescan.
    scan = ScanLog(data.substr(0, scan.valid_bytes - 1));
  }
  rec.blocks = std::move(scan.blocks);
  rec.height = rec.blocks.size();

  KvStore kv;
  uint64_t replay_from = 0;
  if (use_snapshot) {
    std::vector<uint64_t> heights;
    auto man_it = image.find(ManifestPath(dir));
    if (man_it != image.end()) DecodeManifest(man_it->second, &heights);
    for (uint64_t h : heights) {  // newest first; fall back down the list
      if (h > rec.height) continue;  // snapshot ahead of the log prefix
      auto snap_it = image.find(SnapshotPath(dir, h));
      if (snap_it == image.end()) continue;
      SnapshotData snap;
      if (!DecodeSnapshot(snap_it->second, &snap)) continue;  // CRC-invalid
      RebuildFromSnapshot(snap, &kv);
      rec.next_version = snap.next_version;
      rec.used_snapshot = true;
      rec.snapshot_height = h;
      replay_from = h;
      break;
    }
  }
  for (uint64_t h = replay_from; h < rec.height; ++h) {
    for (const txn::Transaction& t : rec.blocks[h].txns) {
      ApplyTxn(t, &kv, &rec.next_version);
    }
  }
  rec.state = SerializeLatestState(kv);
  return rec;
}

DurableLedger::RecoveryReport DurableLedger::RecoverAndResync(
    const ledger::Chain& chain) {
  RecoveryReport report;
  std::string data;
  fs_->Read(log_.path(), &data);
  report.valid_frames = ScanLog(data).blocks.size();

  LogScan kept = log_.RecoverAndTruncate(opts_.mutate_recovery);
  report.recovered_height = kept.blocks.size();
  durable_height_ = kept.blocks.size();

  // The replica's in-memory chain stands in for state transfer: re-append
  // what the crash (or the mutated truncation) lost and restore the
  // barrier. kv_ tracks the chain, not the log, so it needs no rewind.
  report.resynced_blocks =
      chain.height() > durable_height_ ? chain.height() - durable_height_ : 0;
  Persist(chain);
  return report;
}

}  // namespace pbc::store
