#include "store/codec.h"

#include <array>

namespace pbc::store {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const std::string& bytes) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : bytes) {
    c = kTable[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool Decoder::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>((*data)[pos + i]))
          << (8 * i);
  }
  pos += 4;
  return true;
}

bool Decoder::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>((*data)[pos + i]))
          << (8 * i);
  }
  pos += 8;
  return true;
}

bool Decoder::GetString(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (remaining() < len) return false;
  s->assign(*data, pos, len);
  pos += len;
  return true;
}

namespace {

void PutHash(std::string* out, const crypto::Hash256& h) {
  out->append(reinterpret_cast<const char*>(h.bytes.data()), h.bytes.size());
}

bool GetHash(Decoder* dec, crypto::Hash256* h) {
  if (dec->remaining() < h->bytes.size()) return false;
  for (size_t i = 0; i < h->bytes.size(); ++i) {
    h->bytes[i] = static_cast<uint8_t>((*dec->data)[dec->pos + i]);
  }
  dec->pos += h->bytes.size();
  return true;
}

}  // namespace

std::string EncodeBlock(const ledger::Block& block) {
  std::string out;
  PutU64(&out, block.header.height);
  PutHash(&out, block.header.prev_hash);
  PutHash(&out, block.header.txn_root);
  PutU64(&out, block.header.timestamp_us);
  PutU32(&out, static_cast<uint32_t>(block.txns.size()));
  for (const txn::Transaction& t : block.txns) {
    PutU64(&out, t.id);
    PutU32(&out, t.client);
    PutU32(&out, t.enterprise);
    PutU32(&out, t.cross_enterprise ? 1 : 0);
    PutU32(&out, static_cast<uint32_t>(t.ops.size()));
    for (const txn::Op& op : t.ops) {
      PutU32(&out, static_cast<uint32_t>(op.code));
      PutString(&out, op.key);
      PutString(&out, op.key2);
      PutString(&out, op.value);
      PutU64(&out, static_cast<uint64_t>(op.delta));
    }
  }
  return out;
}

bool DecodeBlock(const std::string& payload, ledger::Block* out) {
  Decoder dec{&payload};
  ledger::Block block;
  uint32_t txn_count = 0;
  if (!dec.GetU64(&block.header.height) ||
      !GetHash(&dec, &block.header.prev_hash) ||
      !GetHash(&dec, &block.header.txn_root) ||
      !dec.GetU64(&block.header.timestamp_us) || !dec.GetU32(&txn_count)) {
    return false;
  }
  block.txns.reserve(txn_count);
  for (uint32_t i = 0; i < txn_count; ++i) {
    txn::Transaction t;
    uint32_t cross = 0;
    uint32_t op_count = 0;
    if (!dec.GetU64(&t.id) || !dec.GetU32(&t.client) ||
        !dec.GetU32(&t.enterprise) || !dec.GetU32(&cross) ||
        !dec.GetU32(&op_count)) {
      return false;
    }
    t.cross_enterprise = cross != 0;
    t.ops.reserve(op_count);
    for (uint32_t j = 0; j < op_count; ++j) {
      txn::Op op;
      uint32_t code = 0;
      uint64_t delta = 0;
      if (!dec.GetU32(&code) || !dec.GetString(&op.key) ||
          !dec.GetString(&op.key2) || !dec.GetString(&op.value) ||
          !dec.GetU64(&delta)) {
        return false;
      }
      if (code > static_cast<uint32_t>(txn::OpCode::kCompute)) return false;
      op.code = static_cast<txn::OpCode>(code);
      op.delta = static_cast<int64_t>(delta);
      t.ops.push_back(std::move(op));
    }
    block.txns.push_back(std::move(t));
  }
  if (dec.remaining() != 0) return false;
  if (!block.VerifyTxnRoot()) return false;
  *out = std::move(block);
  return true;
}

std::string SerializeLatestState(const KvStore& kv) {
  std::string out;
  uint64_t count = 0;
  kv.ForEachLatest(
      [&](const Key&, const VersionedValue&) { ++count; });
  PutU64(&out, count);
  kv.ForEachLatest([&](const Key& key, const VersionedValue& vv) {
    PutString(&out, key);
    PutString(&out, vv.value);
    PutU64(&out, vv.version);
  });
  PutU64(&out, kv.last_committed());
  return out;
}

}  // namespace pbc::store
