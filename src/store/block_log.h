// Append-only block log over the deterministic filesystem shim.
//
// On-disk format: a sequence of frames, each
//     [u32 payload_len][u32 crc32(payload)][payload = EncodeBlock(...)]
// with all integers little-endian. A frame is valid iff it is complete,
// its CRC matches, its payload decodes (including the Merkle-root check)
// and its block chains onto the previous frame's block (height + prev
// hash). Scanning stops at the first invalid frame: everything before it
// is the recovered prefix, everything from it on is a torn tail to be
// truncated. Commit durability = Append + Sync at the commit point.
#ifndef PBC_STORE_BLOCK_LOG_H_
#define PBC_STORE_BLOCK_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ledger/block.h"
#include "sim/fs.h"

namespace pbc::store {

/// Wraps `payload` in a length+CRC frame.
std::string EncodeFrame(const std::string& payload);

/// Result of scanning raw log bytes for the valid frame prefix.
struct LogScan {
  std::vector<ledger::Block> blocks;  ///< blocks of the valid prefix
  uint64_t valid_bytes = 0;           ///< length of the valid prefix
  bool torn = false;                  ///< bytes remained past the prefix
};

/// Scans `data` frame by frame, accumulating the valid chained prefix.
LogScan ScanLog(const std::string& data);

class BlockLog {
 public:
  BlockLog(sim::Fs* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  /// Appends one framed block (durability requires a later Sync()).
  void Append(const ledger::Block& block);

  /// Fsync barrier on the log file.
  void Sync();

  /// Post-crash repair: scan, truncate the torn tail at the last valid
  /// frame boundary, fsync, and return the surviving prefix.
  ///
  /// `mutate_off_by_one` is the recovery mutation canary (`check_runner
  /// --mutate-recovery`): when a torn tail is truncated, cut one byte too
  /// far — into the last valid frame — silently losing an fsynced block.
  /// The durable-synced-commit invariant must catch this.
  LogScan RecoverAndTruncate(bool mutate_off_by_one);

  const std::string& path() const { return path_; }

 private:
  sim::Fs* fs_;
  std::string path_;
};

}  // namespace pbc::store

#endif  // PBC_STORE_BLOCK_LOG_H_
