#include "store/snapshot.h"

#include <algorithm>
#include <map>

#include "store/block_log.h"
#include "store/codec.h"

namespace pbc::store {

SnapshotData CaptureSnapshot(const KvStore& kv, uint64_t height,
                             uint64_t next_version) {
  SnapshotData snap;
  snap.height = height;
  snap.next_version = next_version;
  snap.last_committed = kv.last_committed();
  kv.ForEachLatest([&](const Key& key, const VersionedValue& vv) {
    snap.entries.push_back({key, vv.value, vv.version});
  });
  return snap;
}

std::string EncodeSnapshot(const SnapshotData& snap) {
  std::string payload;
  PutU64(&payload, snap.height);
  PutU64(&payload, snap.next_version);
  PutU64(&payload, snap.last_committed);
  PutU64(&payload, snap.entries.size());
  for (const SnapshotData::Entry& e : snap.entries) {
    PutString(&payload, e.key);
    PutString(&payload, e.value);
    PutU64(&payload, e.version);
  }
  return EncodeFrame(payload);
}

bool DecodeSnapshot(const std::string& file_content, SnapshotData* out) {
  Decoder frame{&file_content};
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!frame.GetU32(&len) || !frame.GetU32(&crc)) return false;
  if (frame.remaining() != len) return false;
  std::string payload(file_content, frame.pos, len);
  if (Crc32(payload) != crc) return false;

  Decoder dec{&payload};
  SnapshotData snap;
  uint64_t count = 0;
  if (!dec.GetU64(&snap.height) || !dec.GetU64(&snap.next_version) ||
      !dec.GetU64(&snap.last_committed) || !dec.GetU64(&count)) {
    return false;
  }
  snap.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SnapshotData::Entry e;
    if (!dec.GetString(&e.key) || !dec.GetString(&e.value) ||
        !dec.GetU64(&e.version)) {
      return false;
    }
    snap.entries.push_back(std::move(e));
  }
  if (dec.remaining() != 0) return false;
  *out = std::move(snap);
  return true;
}

void RebuildFromSnapshot(const SnapshotData& snap, KvStore* kv) {
  // ApplyBatch requires strictly increasing versions, so group the latest
  // entries by the version that wrote them and replay groups in order.
  std::map<uint64_t, WriteBatch> by_version;
  for (const SnapshotData::Entry& e : snap.entries) {
    by_version[e.version].Put(e.key, e.value);
  }
  for (auto& [version, batch] : by_version) {
    kv->ApplyBatch(batch, version);
  }
}

std::string EncodeManifest(const std::vector<uint64_t>& heights) {
  std::string payload;
  PutU64(&payload, heights.size());
  for (uint64_t h : heights) PutU64(&payload, h);
  return EncodeFrame(payload);
}

bool DecodeManifest(const std::string& file_content,
                    std::vector<uint64_t>* heights) {
  Decoder frame{&file_content};
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!frame.GetU32(&len) || !frame.GetU32(&crc)) return false;
  if (frame.remaining() != len) return false;
  std::string payload(file_content, frame.pos, len);
  if (Crc32(payload) != crc) return false;

  Decoder dec{&payload};
  uint64_t count = 0;
  if (!dec.GetU64(&count)) return false;
  heights->clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t h = 0;
    if (!dec.GetU64(&h)) return false;
    heights->push_back(h);
  }
  return dec.remaining() == 0;
}

std::string SnapshotPath(const std::string& dir, uint64_t height) {
  return dir + "/snap-" + std::to_string(height);
}

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

void WriteSnapshot(sim::Fs* fs, const std::string& dir,
                   const SnapshotData& snap) {
  const std::string final_path = SnapshotPath(dir, snap.height);
  const std::string tmp_path = final_path + ".tmp";
  fs->WriteFile(tmp_path, EncodeSnapshot(snap));
  fs->Fsync(tmp_path);  // the barrier that defeats the rename hazard
  fs->Rename(tmp_path, final_path);

  std::vector<uint64_t> heights;
  std::string manifest_content;
  if (fs->Read(ManifestPath(dir), &manifest_content)) {
    DecodeManifest(manifest_content, &heights);  // corrupt -> start fresh
  }
  heights.erase(std::remove(heights.begin(), heights.end(), snap.height),
                heights.end());
  heights.insert(heights.begin(), snap.height);
  while (heights.size() > 2) {
    fs->Remove(SnapshotPath(dir, heights.back()));
    heights.pop_back();
  }
  const std::string manifest_tmp = ManifestPath(dir) + ".tmp";
  fs->WriteFile(manifest_tmp, EncodeManifest(heights));
  fs->Fsync(manifest_tmp);
  fs->Rename(manifest_tmp, ManifestPath(dir));
}

}  // namespace pbc::store
