#include "store/kv_store.h"

#include <algorithm>
#include <functional>

namespace pbc::store {

Result<VersionedValue> KvStore::Get(const Key& key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) {
    return Status::NotFound("key not found: " + key);
  }
  const Entry& e = it->second.back();
  if (e.is_delete) return Status::NotFound("key deleted: " + key);
  return VersionedValue{e.value, e.version};
}

Result<VersionedValue> KvStore::GetAt(const Key& key, Version version) const {
  auto it = chains_.find(key);
  if (it == chains_.end()) return Status::NotFound("key not found: " + key);
  const auto& chain = it->second;
  // Largest entry with entry.version <= version.
  auto pos = std::upper_bound(
      chain.begin(), chain.end(), version,
      [](Version v, const Entry& e) { return v < e.version; });
  if (pos == chain.begin()) {
    return Status::NotFound("key not visible at snapshot: " + key);
  }
  --pos;
  if (pos->is_delete) return Status::NotFound("key deleted at snapshot: " + key);
  return VersionedValue{pos->value, pos->version};
}

Version KvStore::VersionOf(const Key& key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return kNeverWritten;
  return it->second.back().version;
}

Status KvStore::ApplyBatch(const WriteBatch& batch, Version commit_version) {
  if (commit_version <= last_committed_) {
    return Status::InvalidArgument("commit version must increase");
  }
  for (const auto& w : batch.writes()) {
    auto& chain = chains_[w.key];
    if (!chain.empty() && chain.back().version == commit_version) {
      // Last-writer-wins inside one batch.
      chain.back() = Entry{commit_version, w.value, w.is_delete};
    } else {
      chain.push_back(Entry{commit_version, w.value, w.is_delete});
    }
  }
  last_committed_ = commit_version;
  return Status::OK();
}

bool KvStore::ValidateReadSet(const std::vector<ReadAccess>& reads) const {
  for (const auto& r : reads) {
    if (VersionOf(r.key) != r.version) return false;
  }
  return true;
}

bool KvStore::SameLatestState(const KvStore& other) const {
  // Compare live (non-deleted) latest values only.
  auto live = [](const KvStore& s) {
    std::map<Key, Value> out;
    for (const auto& [k, chain] : s.chains_) {
      if (!chain.empty() && !chain.back().is_delete) {
        out[k] = chain.back().value;
      }
    }
    return out;
  };
  return live(*this) == live(other);
}

void KvStore::ForEachLatest(
    const std::function<void(const Key&, const VersionedValue&)>& fn) const {
  for (const auto& [k, chain] : chains_) {
    if (!chain.empty() && !chain.back().is_delete) {
      fn(k, VersionedValue{chain.back().value, chain.back().version});
    }
  }
}

Status LockTable::LockShared(const Key& key, TxnId txn) {
  LockState& s = locks_[key];
  if (s.exclusive) {
    if (s.holders.size() == 1 && s.holders[0] == txn) return Status::OK();
    return Status::Conflict("exclusive lock held on " + key);
  }
  if (std::find(s.holders.begin(), s.holders.end(), txn) == s.holders.end()) {
    s.holders.push_back(txn);
  }
  return Status::OK();
}

Status LockTable::LockExclusive(const Key& key, TxnId txn) {
  LockState& s = locks_[key];
  if (s.holders.empty()) {
    s.exclusive = true;
    s.holders.push_back(txn);
    return Status::OK();
  }
  if (s.holders.size() == 1 && s.holders[0] == txn) {
    s.exclusive = true;  // fresh grant or shared→exclusive upgrade
    return Status::OK();
  }
  return Status::Conflict("lock held on " + key);
}

void LockTable::UnlockAll(TxnId txn) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    auto& holders = it->second.holders;
    holders.erase(std::remove(holders.begin(), holders.end(), txn),
                  holders.end());
    if (holders.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockTable::IsLocked(const Key& key) const {
  auto it = locks_.find(key);
  return it != locks_.end() && !it->second.holders.empty();
}

}  // namespace pbc::store
