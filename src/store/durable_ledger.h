// Per-replica durable ledger: an append-only block log plus periodic
// world-state snapshots, all through the deterministic sim::Fs shim.
//
// Commit path (Persist): every chain block beyond the durable height is
// framed and appended, executed into the internal world-state KvStore
// (the exact idiom the KV model checker uses, so states are comparable
// byte-for-byte), then a single fsync forms the commit barrier; every
// `snapshot_interval` blocks the state is checkpointed via the
// temp+fsync+rename protocol (snapshot.h).
//
// Recovery path (RecoverFromImage / RecoverAndResync): scan the log for
// its valid chained prefix, truncate the torn tail, and rebuild state
// from the newest *valid* snapshot at or below the recovered height plus
// the log tail — falling back to older snapshots and finally to full log
// replay. RecoverAndResync then re-appends the blocks the crash lost
// from the replica's in-memory chain (the stand-in for consensus state
// transfer until PBFT checkpoint transfer lands).
#ifndef PBC_STORE_DURABLE_LEDGER_H_
#define PBC_STORE_DURABLE_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ledger/chain.h"
#include "sim/fs.h"
#include "store/block_log.h"
#include "store/kv_store.h"

namespace pbc::store {

class DurableLedger {
 public:
  struct Options {
    std::string dir;                 ///< node directory, e.g. "n0"
    uint64_t snapshot_interval = 2;  ///< snapshot every N blocks
    bool mutate_recovery = false;    ///< --mutate-recovery canary bug
  };

  /// State reconstructed from a durable image, plus how it got there.
  struct Recovered {
    uint64_t height = 0;          ///< blocks recovered from the log
    std::vector<ledger::Block> blocks;
    bool used_snapshot = false;
    uint64_t snapshot_height = 0;
    uint64_t next_version = 1;    ///< writer bookkeeping to resume with
    std::string state;            ///< SerializeLatestState of the rebuild
  };

  /// What a post-crash RecoverAndResync actually did.
  struct RecoveryReport {
    uint64_t valid_frames = 0;      ///< valid prefix by a *correct* scan
    uint64_t recovered_height = 0;  ///< blocks the production path kept
    uint64_t resynced_blocks = 0;   ///< re-appended from the chain
  };

  DurableLedger(sim::Fs* fs, Options opts);

  /// Persists every block beyond the durable height: append frames,
  /// apply transactions to the world state, fsync (the commit barrier),
  /// snapshot on interval boundaries.
  void Persist(const ledger::Chain& chain);

  /// Blocks currently durable in the log (past the last fsync barrier).
  uint64_t durable_height() const { return durable_height_; }

  const std::string& log_path() const { return log_.path(); }

  /// Pure recovery over a durable image (no filesystem mutation, no RNG):
  /// what a fresh process would reconstruct from `image` for `dir`. With
  /// `use_snapshot` false the snapshot/manifest files are ignored and
  /// state comes from full log replay — the reference the
  /// snapshot-convergence invariant compares against.
  static Recovered RecoverFromImage(const sim::FsImage& image,
                                    const std::string& dir,
                                    bool mutate_off_by_one,
                                    bool use_snapshot = true);

  /// Post-crash repair on the live filesystem: truncate the torn tail
  /// (through the possibly-mutated path), then re-append the blocks the
  /// crash lost from the replica's in-memory chain and restore the
  /// fsync barrier.
  RecoveryReport RecoverAndResync(const ledger::Chain& chain);

 private:
  void ApplyBlockToState(const ledger::Block& block);
  void MaybeSnapshot();

  sim::Fs* fs_;
  Options opts_;
  BlockLog log_;
  KvStore kv_;                       ///< world state through kv_height_
  uint64_t kv_height_ = 0;           ///< blocks applied to kv_
  uint64_t next_version_ = 1;
  uint64_t durable_height_ = 0;      ///< blocks framed + fsynced in the log
  uint64_t last_snapshot_height_ = 0;
};

}  // namespace pbc::store

#endif  // PBC_STORE_DURABLE_LEDGER_H_
