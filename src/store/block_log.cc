#include "store/block_log.h"

#include "store/codec.h"

namespace pbc::store {

std::string EncodeFrame(const std::string& payload) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, Crc32(payload));
  out.append(payload);
  return out;
}

LogScan ScanLog(const std::string& data) {
  LogScan scan;
  Decoder dec{&data};
  while (dec.remaining() >= 8) {
    uint32_t len = 0;
    uint32_t crc = 0;
    dec.GetU32(&len);
    dec.GetU32(&crc);
    if (dec.remaining() < len) break;  // incomplete trailing frame
    std::string payload(*dec.data, dec.pos, len);
    if (Crc32(payload) != crc) break;  // torn or corrupt frame
    ledger::Block block;
    if (!DecodeBlock(payload, &block)) break;
    // Chain linkage: a frame that decodes but does not extend the prefix
    // is treated as torn — recovery never resurrects out-of-order blocks.
    if (block.header.height != scan.blocks.size()) break;
    if (!scan.blocks.empty() &&
        block.header.prev_hash != scan.blocks.back().header.Hash()) {
      break;
    }
    dec.pos += len;
    scan.blocks.push_back(std::move(block));
    scan.valid_bytes = dec.pos;
  }
  scan.torn = scan.valid_bytes < data.size();
  return scan;
}

void BlockLog::Append(const ledger::Block& block) {
  fs_->Append(path_, EncodeFrame(EncodeBlock(block)));
}

void BlockLog::Sync() { fs_->Fsync(path_); }

LogScan BlockLog::RecoverAndTruncate(bool mutate_off_by_one) {
  std::string data;
  fs_->Read(path_, &data);
  LogScan scan = ScanLog(data);
  uint64_t cut = scan.valid_bytes;
  if (mutate_off_by_one && scan.torn && cut > 0) {
    cut -= 1;  // canary bug: eats the last byte of the last valid frame
  }
  if (cut < data.size()) {
    fs_->Truncate(path_, cut);
    fs_->Fsync(path_);
  }
  std::string kept;
  fs_->Read(path_, &kept);
  return ScanLog(kept);
}

}  // namespace pbc::store
