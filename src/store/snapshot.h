// World-state snapshots: periodic checkpoints of the MVCC KvStore's
// latest state so recovery replays a log *tail* instead of the whole log.
//
// Protocol (the classic temp + fsync + rename-into-place dance):
//   1. write `snap-<height>.tmp` (one CRC frame holding the encoded state)
//   2. fsync the tmp file                 — content is durable
//   3. rename tmp -> `snap-<height>`      — name change is journaled
//   4. rewrite + fsync + rename `MANIFEST` listing heights newest-first
// Step 2 before step 3 matters: the sim::Fs models the ext4 hazard where
// a rename survives a crash but never-fsynced content does not, which
// leaves a CRC-invalid snapshot file. Recovery therefore validates each
// manifest entry and falls back — older snapshot, else full log replay —
// rather than trusting names. The manifest keeps the newest two entries
// so there is always a fallback while the newest is being written.
#ifndef PBC_STORE_SNAPSHOT_H_
#define PBC_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fs.h"
#include "store/kv_store.h"

namespace pbc::store {

/// Decoded snapshot contents: latest state at a block height.
struct SnapshotData {
  uint64_t height = 0;          ///< number of blocks reflected
  uint64_t next_version = 1;    ///< writer's next commit version
  uint64_t last_committed = 0;  ///< kv.last_committed() at capture
  /// (key, value, version) triples in key order.
  struct Entry {
    std::string key;
    std::string value;
    uint64_t version = 0;
  };
  std::vector<Entry> entries;
};

/// Captures `kv`'s latest state (plus writer bookkeeping) at `height`.
SnapshotData CaptureSnapshot(const KvStore& kv, uint64_t height,
                             uint64_t next_version);

/// CRC-framed snapshot file content / its inverse (false on corruption).
std::string EncodeSnapshot(const SnapshotData& snap);
bool DecodeSnapshot(const std::string& file_content, SnapshotData* out);

/// Rebuilds a KvStore whose latest state equals the captured one:
/// entries grouped by version, applied in ascending version order.
void RebuildFromSnapshot(const SnapshotData& snap, KvStore* kv);

/// CRC-framed manifest content: snapshot heights, newest first.
std::string EncodeManifest(const std::vector<uint64_t>& heights);
bool DecodeManifest(const std::string& file_content,
                    std::vector<uint64_t>* heights);

/// File naming under a node directory (`dir` has no trailing slash).
std::string SnapshotPath(const std::string& dir, uint64_t height);
std::string ManifestPath(const std::string& dir);

/// Runs the full write protocol against `fs`, pruning manifest entries
/// beyond the newest two (older snapshot files are removed).
void WriteSnapshot(sim::Fs* fs, const std::string& dir,
                   const SnapshotData& snap);

}  // namespace pbc::store

#endif  // PBC_STORE_SNAPSHOT_H_
