// Multi-versioned key-value store: the "blockchain state" (world state /
// datastore in Fabric terminology) every architecture executes against.
//
// Versioning serves three masters:
//  * XOV validation — endorsement read-sets carry the version each key was
//    read at; the validator re-checks them at commit time (Fabric's MVCC
//    check).
//  * Snapshots — OXII executors and endorsers simulate against a stable
//    snapshot while later blocks commit.
//  * 2PL — AHL's reference committee locks keys across shards; the lock
//    table lives beside the store.
#ifndef PBC_STORE_KV_STORE_H_
#define PBC_STORE_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace pbc::store {

using Key = std::string;
using Value = std::string;
/// Commit version: block height * 2^20 + intra-block index works, but any
/// monotonically increasing counter is valid.
using Version = uint64_t;

/// Version given to keys that have never been written.
inline constexpr Version kNeverWritten = 0;

/// \brief A value together with the version that wrote it.
struct VersionedValue {
  Value value;
  Version version = kNeverWritten;
};

/// \brief One read access with the version observed (for MVCC validation).
struct ReadAccess {
  Key key;
  Version version = kNeverWritten;

  bool operator==(const ReadAccess& o) const {
    return key == o.key && version == o.version;
  }
};

/// \brief One write access.
struct WriteAccess {
  Key key;
  Value value;
  bool is_delete = false;

  bool operator==(const WriteAccess& o) const {
    return key == o.key && value == o.value && is_delete == o.is_delete;
  }
};

/// \brief An atomically applied group of writes.
class WriteBatch {
 public:
  void Put(Key key, Value value) {
    writes_.push_back({std::move(key), std::move(value), false});
  }
  void Delete(Key key) { writes_.push_back({std::move(key), "", true}); }
  void Append(const WriteAccess& w) { writes_.push_back(w); }

  const std::vector<WriteAccess>& writes() const { return writes_; }
  bool empty() const { return writes_.empty(); }
  size_t size() const { return writes_.size(); }
  void Clear() { writes_.clear(); }

 private:
  std::vector<WriteAccess> writes_;
};

/// \brief The multi-versioned store.
///
/// Not thread-safe: in parallel execution phases, workers read through
/// `Snapshot` objects (immutable views) and all mutations happen on the
/// single commit thread, matching how Fabric/ParBlockchain pipelines
/// actually serialize state updates.
class KvStore {
 public:
  /// Latest committed version of `key`; NotFound if never written or
  /// deleted.
  Result<VersionedValue> Get(const Key& key) const;

  /// The value visible at snapshot `version` (largest write ≤ version).
  Result<VersionedValue> GetAt(const Key& key, Version version) const;

  /// Version of the latest write to `key` (kNeverWritten if none). Deletes
  /// count as writes: a deleted key has a fresh version but no value.
  Version VersionOf(const Key& key) const;

  /// Applies all writes in `batch` at `commit_version`, which must exceed
  /// the store's last committed version.
  Status ApplyBatch(const WriteBatch& batch, Version commit_version);

  /// True iff every read in `reads` still observes the current version
  /// (Fabric's validation-phase MVCC check).
  bool ValidateReadSet(const std::vector<ReadAccess>& reads) const;

  Version last_committed() const { return last_committed_; }
  size_t num_keys() const { return chains_.size(); }

  /// Deep equality of latest state (used by replica-consistency checks).
  bool SameLatestState(const KvStore& other) const;

  /// Digest-friendly iteration over latest live values, in key order.
  void ForEachLatest(
      const std::function<void(const Key&, const VersionedValue&)>& fn) const;

 private:
  struct Entry {
    Version version;
    Value value;
    bool is_delete;
  };
  // Per-key version chain, ascending by version.
  std::map<Key, std::vector<Entry>> chains_;
  Version last_committed_ = 0;
};

/// \brief Pessimistic lock table (2PL) used by AHL's reference committee.
class LockTable {
 public:
  using TxnId = uint64_t;

  /// Acquires a shared lock; fails with Conflict if exclusively held by
  /// another transaction.
  Status LockShared(const Key& key, TxnId txn);

  /// Acquires an exclusive lock; fails with Conflict if held (in any mode)
  /// by another transaction. Upgrades a solely-held shared lock.
  Status LockExclusive(const Key& key, TxnId txn);

  /// Releases every lock held by `txn`.
  void UnlockAll(TxnId txn);

  bool IsLocked(const Key& key) const;
  size_t num_locked_keys() const { return locks_.size(); }

 private:
  struct LockState {
    bool exclusive = false;
    std::vector<TxnId> holders;
  };
  std::map<Key, LockState> locks_;
};

}  // namespace pbc::store

#endif  // PBC_STORE_KV_STORE_H_
