// Deterministic block batching at the leader/proposer (ROADMAP item 1).
//
// Hyperledger Fabric's ordering service and every system BLOCKBENCH
// measures cut *blocks* out of the pending transaction stream under two
// rules — a size cut (block is full) and a timer cut (oldest pending
// transaction has waited too long) — because block size is the dominant
// throughput knob of the whole pipeline. The builder reproduces exactly
// those rules over simulated time: cut decisions are a pure function of
// (pending transactions, arrival times, now), so a seeded run cuts
// byte-identical blocks on every replay.
#ifndef PBC_BLOCK_BUILDER_H_
#define PBC_BLOCK_BUILDER_H_

#include <deque>
#include <vector>

#include "ledger/block.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

namespace pbc::block {

/// \brief The two Fabric-style batch-cut rules.
struct CutRules {
  /// Size cut: a block is cut as soon as this many txns are pending.
  size_t max_txns = 100;
  /// Timer cut: a partial block is cut once the oldest pending txn has
  /// waited this long (µs of simulated time). 0 disables the timer cut.
  sim::Time max_delay_us = 5000;

  /// Pure cut predicate shared by the builder and the consensus replicas
  /// (which keep their own pools for dedup but follow the same policy).
  bool CutDue(size_t pending, sim::Time oldest_arrival_us,
              sim::Time now_us) const {
    if (pending == 0) return false;
    if (pending >= max_txns) return true;
    return max_delay_us > 0 && now_us >= oldest_arrival_us &&
           now_us - oldest_arrival_us >= max_delay_us;
  }
};

/// \brief Batches a transaction stream into blocks under CutRules.
///
/// Standalone use (arch pipelines, benches, tests): Add() transactions as
/// they arrive, TakeCut() whenever the caller's timer fires, Flush() at
/// end of stream. The builder never invents order: blocks preserve
/// arrival order, so identical input streams yield identical blocks.
class BlockBuilder {
 public:
  explicit BlockBuilder(CutRules rules) : rules_(rules) {}

  /// Appends a pending transaction with its arrival time (µs, simulated).
  void Add(txn::Transaction txn, sim::Time now_us);

  /// True when the cut rules say a block should be cut at `now_us`.
  bool CutDue(sim::Time now_us) const;

  /// Cuts up to max_txns transactions if a cut is due; returns an empty
  /// vector otherwise. Never returns a partial block early: either the
  /// size rule or the timer rule fired.
  std::vector<txn::Transaction> TakeCut(sim::Time now_us);

  /// Flush-on-idle: cuts whatever is pending regardless of the rules
  /// (stream end, leader handover). Empty when nothing is pending.
  std::vector<txn::Transaction> Flush();

  size_t pending() const { return pending_.size(); }
  /// Arrival time of the oldest pending txn (0 when empty).
  sim::Time oldest_arrival_us() const {
    return pending_.empty() ? 0 : pending_.front().arrival_us;
  }
  const CutRules& rules() const { return rules_; }

  /// Seals a cut into a hash-chained block body. `height`/`prev_hash`
  /// position the block; `timestamp_us` is the (simulated) cut time. The
  /// header hash is the identity consensus orders in place of the body.
  static ledger::Block Seal(uint64_t height, const crypto::Hash256& prev_hash,
                            std::vector<txn::Transaction> txns,
                            sim::Time timestamp_us);

 private:
  struct Pending {
    txn::Transaction txn;
    sim::Time arrival_us;
  };
  CutRules rules_;
  std::deque<Pending> pending_;
};

}  // namespace pbc::block

#endif  // PBC_BLOCK_BUILDER_H_
