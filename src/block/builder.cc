#include "block/builder.h"

namespace pbc::block {

void BlockBuilder::Add(txn::Transaction txn, sim::Time now_us) {
  pending_.push_back({std::move(txn), now_us});
}

bool BlockBuilder::CutDue(sim::Time now_us) const {
  return rules_.CutDue(pending_.size(), oldest_arrival_us(), now_us);
}

std::vector<txn::Transaction> BlockBuilder::TakeCut(sim::Time now_us) {
  if (!CutDue(now_us)) return {};
  std::vector<txn::Transaction> out;
  size_t take = pending_.size() < rules_.max_txns ? pending_.size()
                                                  : rules_.max_txns;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(std::move(pending_.front().txn));
    pending_.pop_front();
  }
  return out;
}

std::vector<txn::Transaction> BlockBuilder::Flush() {
  std::vector<txn::Transaction> out;
  out.reserve(pending_.size());
  while (!pending_.empty()) {
    out.push_back(std::move(pending_.front().txn));
    pending_.pop_front();
  }
  return out;
}

ledger::Block BlockBuilder::Seal(uint64_t height,
                                 const crypto::Hash256& prev_hash,
                                 std::vector<txn::Transaction> txns,
                                 sim::Time timestamp_us) {
  return ledger::Block::Make(height, prev_hash, std::move(txns),
                             timestamp_us);
}

}  // namespace pbc::block
