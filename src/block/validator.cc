#include "block/validator.h"

#include <cstdlib>

#include "crypto/sha256.h"

namespace pbc::block {

void ChargeValidationCost(const txn::Transaction& txn, int rounds) {
  if (rounds <= 0) return;
  crypto::Hash256 acc = txn.Digest();
  for (int i = 0; i < rounds; ++i) {
    crypto::Sha256 h;
    h.Update(acc);
    acc = h.Finalize();
  }
  // Keep the loop observable.
  if (acc.bytes[0] == 0xff && acc.bytes[1] == 0xff && acc.bytes[2] == 0xff &&
      acc.bytes[3] == 0xff && acc.bytes[4] == 0xff) {
    std::abort();  // probability ~2^-40; defeats dead-code elimination
  }
}

size_t GateAndCommit(std::vector<Endorsed>* endorsed,
                     const std::vector<size_t>& order,
                     store::KvStore* store) {
  size_t committed = 0;
  for (size_t i : order) {
    Endorsed& e = (*endorsed)[i];
    if (!store->ValidateReadSet(e.result.reads)) {
      e.valid = false;
      continue;
    }
    e.valid = true;
    if (!e.result.writes.empty()) {
      store->ApplyBatch(e.result.writes, store->last_committed() + 1);
    }
    ++committed;
  }
  return committed;
}

namespace {

std::vector<size_t> BlockOrder(size_t n) {
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

std::vector<bool> Flags(const std::vector<Endorsed>& endorsed) {
  std::vector<bool> flags(endorsed.size());
  for (size_t i = 0; i < endorsed.size(); ++i) flags[i] = endorsed[i].valid;
  return flags;
}

}  // namespace

std::vector<bool> SerialValidator::ProcessBlock(
    const std::vector<txn::Transaction>& txns) {
  store::Version snapshot = store_->last_committed();
  std::vector<Endorsed> endorsed(txns.size());
  for (size_t i = 0; i < txns.size(); ++i) {
    endorsed[i].txn = &txns[i];
    endorsed[i].result =
        txn::Execute(txns[i], txn::SnapshotReader(store_, snapshot));
    ChargeValidationCost(txns[i], cost_);
  }
  size_t committed = GateAndCommit(&endorsed, BlockOrder(txns.size()), store_);
  ++stats_.blocks;
  stats_.txns += txns.size();
  stats_.committed += committed;
  stats_.aborted += txns.size() - committed;
  return Flags(endorsed);
}

std::vector<bool> ParallelValidator::ProcessBlock(
    const std::vector<txn::Transaction>& txns) {
  ConflictGraph graph = ConflictGraph::Build(txns);
  store::Version snapshot = store_->last_committed();
  const store::KvStore* cstore = store_;
  std::vector<Endorsed> endorsed(txns.size());

  // Level-parallel endorse: txns within a level are mutually conflict-free
  // and run concurrently; the TaskGroup barrier between levels mirrors how
  // a real validator would pipeline conflicting txns. Results cannot
  // depend on scheduling: every execution reads the same immutable
  // snapshot, and each worker writes only its own endorsed[i] slot.
  auto levels = graph.Levels();
  for (const auto& level : levels) {
    TaskGroup group;
    for (size_t i : level) {
      pool_->Submit(&group, [&, i] {
        endorsed[i].txn = &txns[i];
        endorsed[i].result =
            txn::Execute(txns[i], txn::SnapshotReader(cstore, snapshot));
        ChargeValidationCost(txns[i], cost_);
      });
    }
    pool_->Wait(&group);
  }

  size_t committed = GateAndCommit(&endorsed, BlockOrder(txns.size()), store_);
  ++stats_.blocks;
  stats_.txns += txns.size();
  stats_.committed += committed;
  stats_.aborted += txns.size() - committed;
  stats_.conflict_edges += graph.num_edges();
  stats_.levels += levels.size();
  size_t width = graph.MaxLevelWidth();
  if (width > stats_.max_level_width) stats_.max_level_width = width;
  return Flags(endorsed);
}

}  // namespace pbc::block
