// Read/write-set conflict graph over one block (Fabric validation phase).
//
// Unlike txn/dependency_graph (ParBlockchain's scheduling DAG, which keeps
// edges anonymous), the validator wants edges *classified* — WR (write
// then read), RW (read then write), WW (write then write) — because only
// some kinds invalidate a transaction under the MVCC gate, and the per-kind
// counts are the bench-visible "how parallel is this block" signal.
#ifndef PBC_BLOCK_CONFLICT_H_
#define PBC_BLOCK_CONFLICT_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "txn/transaction.h"

namespace pbc::block {

/// \brief Classified conflict DAG over a block's transactions (indices into
/// the block's txn vector; edges always point earlier → later).
///
/// Edges are derived from *declared* access sets, per key, between adjacent
/// conflicting accesses: every reader depends on the preceding writer (WR),
/// every writer depends on the readers since the previous writer (RW) and
/// on the previous writer itself (WW). This is the standard transitive
/// reduction — enough ordering for safe scheduling without O(n²) edges.
class ConflictGraph {
 public:
  static ConflictGraph Build(const std::vector<txn::Transaction>& txns);

  size_t num_txns() const { return adj_.size(); }
  size_t num_edges() const { return edges_.size(); }
  size_t wr_edges() const { return wr_.size(); }
  size_t rw_edges() const { return rw_.size(); }
  size_t ww_edges() const { return ww_.size(); }

  /// True iff any conflict (of any kind) orders `from` before `to`.
  bool HasEdge(size_t from, size_t to) const {
    return edges_.count({from, to}) > 0;
  }
  bool HasWrEdge(size_t from, size_t to) const {
    return wr_.count({from, to}) > 0;
  }
  bool HasRwEdge(size_t from, size_t to) const {
    return rw_.count({from, to}) > 0;
  }
  bool HasWwEdge(size_t from, size_t to) const {
    return ww_.count({from, to}) > 0;
  }

  /// Transactions that must wait for `i`.
  const std::vector<size_t>& Successors(size_t i) const { return adj_[i]; }
  size_t InDegree(size_t i) const { return in_degree_[i]; }

  /// Antichain decomposition: level k holds every txn whose longest
  /// conflict chain has length k. Txns within a level are mutually
  /// conflict-free — the unit of parallel execution.
  std::vector<std::vector<size_t>> Levels() const;

  /// Widest level — the block's peak validation parallelism.
  size_t MaxLevelWidth() const;

 private:
  using Edge = std::pair<size_t, size_t>;
  void AddEdge(size_t from, size_t to, std::set<Edge>* kind);

  std::vector<std::vector<size_t>> adj_;
  std::vector<size_t> in_degree_;
  std::set<Edge> edges_;  // union of all kinds (deduped adjacency)
  std::set<Edge> wr_, rw_, ww_;
};

}  // namespace pbc::block

#endif  // PBC_BLOCK_CONFLICT_H_
