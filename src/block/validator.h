// Block validators: the Fabric validation phase, serial and parallel.
//
// Both validators implement the same two-stage pipeline:
//
//   1. *Endorse/execute* every txn against the immutable pre-block
//      snapshot (store version at block entry). The snapshot never moves
//      during the block, so execution results are independent of execution
//      order — this is what makes the parallel validator trivially
//      deterministic.
//   2. *MVCC gate* — a serial scan in a fixed validation order: a txn is
//      valid iff its read-set (key, version) pairs still match the live
//      store, i.e. no earlier *valid* txn in this block wrote one of its
//      read keys. Valid writes apply immediately at last_committed()+1,
//      so later txns in the scan see them — exactly Fabric's
//      validate-and-commit loop.
//
// ParallelValidator runs stage 1 level-by-level over the block's conflict
// graph on thread-pool TaskGroups; SerialValidator runs it in block order
// on the caller's thread. Their outputs (validity flags + final store
// state) are byte-identical by construction, which tests/block_test.cpp
// pins across seeds and job counts.
#ifndef PBC_BLOCK_VALIDATOR_H_
#define PBC_BLOCK_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "block/conflict.h"
#include "common/thread_pool.h"
#include "store/kv_store.h"
#include "txn/transaction.h"

namespace pbc::block {

/// \brief One endorsed transaction awaiting the MVCC gate.
struct Endorsed {
  const txn::Transaction* txn = nullptr;
  txn::ExecResult result;
  bool valid = true;
};

/// \brief Per-validator counters, accumulated across blocks. The conflict
/// fields describe the parallel validator's scheduling shape; benches emit
/// them next to the thread pool's steal counts.
struct ValidatorStats {
  uint64_t blocks = 0;
  uint64_t txns = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t conflict_edges = 0;    ///< sum of per-block conflict edges
  uint64_t levels = 0;            ///< sum of per-block level counts
  uint64_t max_level_width = 0;   ///< widest level seen in any block
};

/// \brief Burns `rounds` of hashing per txn — models signature +
/// endorsement-policy checking, the work FastFabric parallelizes.
void ChargeValidationCost(const txn::Transaction& txn, int rounds);

/// \brief The serial MVCC gate, shared by both validators and the arch
/// layer (xov / fabricpp — the latter feeds a reordered `order`).
///
/// Visits `endorsed` in `order` (indices; any permutation). Each txn is
/// valid iff store->ValidateReadSet passes at its turn; valid writes apply
/// at last_committed()+1 before the next txn is considered. Returns the
/// number of valid txns. Must run on a single thread.
size_t GateAndCommit(std::vector<Endorsed>* endorsed,
                     const std::vector<size_t>& order,
                     store::KvStore* store);

/// \brief Reference serial validator (the correctness oracle).
class SerialValidator {
 public:
  explicit SerialValidator(store::KvStore* store,
                           int validation_cost_rounds = 0)
      : store_(store), cost_(validation_cost_rounds) {}

  /// Endorses every txn against the pre-block snapshot in block order,
  /// then gates in block order. Returns per-txn validity flags.
  std::vector<bool> ProcessBlock(const std::vector<txn::Transaction>& txns);

  const ValidatorStats& stats() const { return stats_; }

 private:
  store::KvStore* store_;
  int cost_;
  ValidatorStats stats_;
};

/// \brief Parallel validator on the work-stealing pool.
class ParallelValidator {
 public:
  ParallelValidator(ThreadPool* pool, store::KvStore* store,
                    int validation_cost_rounds = 0)
      : pool_(pool), store_(store), cost_(validation_cost_rounds) {}

  /// Builds the block's conflict graph, executes each antichain level
  /// concurrently (TaskGroup per level) against the pre-block snapshot,
  /// then runs the serial gate in block order. Byte-identical to
  /// SerialValidator for any pool size.
  std::vector<bool> ProcessBlock(const std::vector<txn::Transaction>& txns);

  const ValidatorStats& stats() const { return stats_; }

 private:
  ThreadPool* pool_;
  store::KvStore* store_;
  int cost_;
  ValidatorStats stats_;
};

}  // namespace pbc::block

#endif  // PBC_BLOCK_VALIDATOR_H_
