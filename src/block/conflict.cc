#include "block/conflict.h"

#include <map>

namespace pbc::block {

void ConflictGraph::AddEdge(size_t from, size_t to, std::set<Edge>* kind) {
  if (from == to) return;
  kind->insert({from, to});
  if (edges_.insert({from, to}).second) {
    adj_[from].push_back(to);
    ++in_degree_[to];
  }
}

ConflictGraph ConflictGraph::Build(
    const std::vector<txn::Transaction>& txns) {
  ConflictGraph g;
  g.adj_.resize(txns.size());
  g.in_degree_.assign(txns.size(), 0);

  // Per-key access history, walked in block order. Ordered map so the
  // adjacency lists come out deterministic regardless of key content.
  struct KeyState {
    bool has_writer = false;
    size_t last_writer = 0;
    std::vector<size_t> readers_since_write;
  };
  std::map<store::Key, KeyState> keys;

  for (size_t i = 0; i < txns.size(); ++i) {
    for (const store::Key& k : txns[i].DeclaredReads()) {
      KeyState& st = keys[k];
      if (st.has_writer && st.last_writer != i) {
        g.AddEdge(st.last_writer, i, &g.wr_);
      }
      st.readers_since_write.push_back(i);
    }
    for (const store::Key& k : txns[i].DeclaredWrites()) {
      KeyState& st = keys[k];
      for (size_t r : st.readers_since_write) {
        if (r != i) g.AddEdge(r, i, &g.rw_);
      }
      if (st.has_writer && st.last_writer != i) {
        g.AddEdge(st.last_writer, i, &g.ww_);
      }
      st.has_writer = true;
      st.last_writer = i;
      st.readers_since_write.clear();
    }
  }
  return g;
}

std::vector<std::vector<size_t>> ConflictGraph::Levels() const {
  // Edges only ever point earlier → later, so ascending index order is a
  // topological order; longest-path levels fall out in one pass.
  std::vector<size_t> level(adj_.size(), 0);
  size_t max_level = 0;
  for (size_t i = 0; i < adj_.size(); ++i) {
    for (size_t succ : adj_[i]) {
      if (level[succ] < level[i] + 1) level[succ] = level[i] + 1;
    }
    if (level[i] > max_level) max_level = level[i];
  }
  std::vector<std::vector<size_t>> out(adj_.empty() ? 0 : max_level + 1);
  for (size_t i = 0; i < adj_.size(); ++i) out[level[i]].push_back(i);
  return out;
}

size_t ConflictGraph::MaxLevelWidth() const {
  size_t width = 0;
  for (const auto& level : Levels()) {
    if (level.size() > width) width = level.size();
  }
  return width;
}

}  // namespace pbc::block
