#include "block/store.h"

namespace pbc::block {

bool BlockStore::Put(ledger::Block body) {
  if (!body.VerifyTxnRoot()) return false;
  crypto::Hash256 hash = body.header.Hash();
  bodies_.emplace(hash, std::move(body));
  return true;
}

const ledger::Block* BlockStore::Get(const crypto::Hash256& hash) const {
  auto it = bodies_.find(hash);
  return it == bodies_.end() ? nullptr : &it->second;
}

}  // namespace pbc::block
