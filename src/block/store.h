// Content-addressed block body store.
//
// Consensus orders compact block *hashes*; the bodies travel beside the
// protocol (broadcast at proposal time, fetched on demand) and land here,
// keyed by header hash. Put() verifies the body against its own header,
// so a fabricated or corrupted body can never alias an honest hash.
#ifndef PBC_BLOCK_STORE_H_
#define PBC_BLOCK_STORE_H_

#include <cstdint>
#include <map>

#include "crypto/sha256.h"
#include "ledger/block.h"

namespace pbc::block {

class BlockStore {
 public:
  /// Inserts `body` keyed by its header hash after verifying the header
  /// commits to the body (Merkle root check). Returns false — and stores
  /// nothing — for a body that fails verification; returns true for both
  /// fresh inserts and idempotent re-inserts.
  bool Put(ledger::Block body);

  /// The stored body for `hash`, or nullptr. Pointers remain valid until
  /// the entry is erased.
  const ledger::Block* Get(const crypto::Hash256& hash) const;

  bool Contains(const crypto::Hash256& hash) const {
    return bodies_.count(hash) > 0;
  }
  size_t size() const { return bodies_.size(); }

  /// Drops one body (delivered blocks whose body is no longer needed).
  void Erase(const crypto::Hash256& hash) { bodies_.erase(hash); }

 private:
  // Ordered map: deterministic iteration should anyone ever walk it.
  std::map<crypto::Hash256, ledger::Block> bodies_;
};

}  // namespace pbc::block

#endif  // PBC_BLOCK_STORE_H_
