// Separ-style token-based verifiability [12] (§2.3.2).
//
// A trusted central authority models each global regulation (e.g. FLSA's
// "≤ 40 work hours per week") as a budget of anonymous tokens per
// participant and period. Workers attach one token per unit of regulated
// activity; platforms verify the authority's signature and the shared
// spend log (replicated via consensus across platforms) rejects reuse.
// The token itself carries no worker identity — anonymity comes from the
// authority not binding serials to identities on the ledger — so platforms
// can jointly enforce the cap without learning who worked where.
#ifndef PBC_VERIFY_TOKENS_H_
#define PBC_VERIFY_TOKENS_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/auth.h"
#include "crypto/sha256.h"

namespace pbc::verify {

/// \brief An anonymous, single-use capability token.
struct Token {
  uint64_t constraint_id = 0;  ///< which regulation this counts against
  uint64_t period = 0;         ///< e.g. ISO week number
  crypto::Hash256 serial;      ///< unlinkable random serial
  crypto::Signature authority_sig;
};

/// \brief The trusted authority that mints tokens.
class TokenAuthority {
 public:
  TokenAuthority(crypto::IdentityId id, crypto::KeyRegistry* registry)
      : key_(registry->Register(id)) {}

  /// Mints `count` tokens for one participant under (constraint, period).
  /// The participant keeps them secret; serials are random, so tokens from
  /// different participants are indistinguishable on the ledger.
  std::vector<Token> Mint(uint64_t constraint_id, uint64_t period,
                          size_t count, Rng* rng) const;

  /// Digest the authority signs for a token.
  static crypto::Hash256 TokenDigest(const Token& token);

  crypto::IdentityId id() const { return key_.id(); }

 private:
  crypto::PrivateKey key_;
};

/// \brief The consensus-replicated spend log shared by all platforms.
///
/// `Spend` verifies the authority signature and rejects serials seen
/// before — the no-double-spend invariant that makes the token budget an
/// enforceable global constraint.
class SpendLog {
 public:
  SpendLog(const crypto::KeyRegistry* registry, crypto::IdentityId authority)
      : registry_(registry), authority_(authority) {}

  /// Consumes a token. Corruption for bad signatures, Conflict for reuse.
  Status Spend(const Token& token);

  bool IsSpent(const crypto::Hash256& serial) const {
    return spent_.count(serial) > 0;
  }
  size_t num_spent() const { return spent_.size(); }

 private:
  const crypto::KeyRegistry* registry_;
  crypto::IdentityId authority_;
  std::set<crypto::Hash256> spent_;
};

/// \brief A worker's token wallet for one (constraint, period).
class TokenWallet {
 public:
  void Deposit(std::vector<Token> tokens);

  /// Takes one unspent token, if any.
  Result<Token> Take();

  size_t remaining() const { return tokens_.size(); }

 private:
  std::vector<Token> tokens_;
};

}  // namespace pbc::verify

#endif  // PBC_VERIFY_TOKENS_H_
