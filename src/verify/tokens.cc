#include "verify/tokens.h"

namespace pbc::verify {

crypto::Hash256 TokenAuthority::TokenDigest(const Token& token) {
  crypto::Sha256 h;
  h.Update(std::string("pbc-token"));
  h.UpdateU64(token.constraint_id);
  h.UpdateU64(token.period);
  h.Update(token.serial);
  return h.Finalize();
}

std::vector<Token> TokenAuthority::Mint(uint64_t constraint_id,
                                        uint64_t period, size_t count,
                                        Rng* rng) const {
  std::vector<Token> tokens;
  tokens.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Token t;
    t.constraint_id = constraint_id;
    t.period = period;
    crypto::Sha256 h;
    h.Update(std::string("pbc-token-serial"));
    h.UpdateU64(rng->NextU64());
    h.UpdateU64(rng->NextU64());
    t.serial = h.Finalize();
    t.authority_sig = key_.Sign(TokenDigest(t));
    tokens.push_back(std::move(t));
  }
  return tokens;
}

Status SpendLog::Spend(const Token& token) {
  if (token.authority_sig.signer != authority_ ||
      !registry_->Verify(TokenAuthority::TokenDigest(token),
                         token.authority_sig)) {
    return Status::Corruption("invalid authority signature on token");
  }
  if (spent_.count(token.serial) > 0) {
    return Status::Conflict("token already spent");
  }
  spent_.insert(token.serial);
  return Status::OK();
}

void TokenWallet::Deposit(std::vector<Token> tokens) {
  for (auto& t : tokens) tokens_.push_back(std::move(t));
}

Result<Token> TokenWallet::Take() {
  if (tokens_.empty()) {
    return Status::NotFound("wallet empty: constraint budget exhausted");
  }
  Token t = std::move(tokens_.back());
  tokens_.pop_back();
  return t;
}

}  // namespace pbc::verify
