// Zero-knowledge building blocks for verifiability (§2.3.2).
//
// The survey's cryptographic verifiability path (Quorum private
// transactions, Zcash-style transfers) rests on three primitives, all
// implemented here over the prime-order group in crypto/group.h and made
// non-interactive with Fiat–Shamir over SHA-256:
//
//   * knowledge-of-opening proofs for Pedersen commitments
//     (Schnorr-style Σ-protocol),
//   * 0/1-bit proofs via the standard Σ-OR composition, composed into
//     bit-decomposition range proofs for [0, 2^k),
//   * a confidential transfer statement: inputs equal outputs (mass
//     conservation, checked homomorphically), outputs are in range (no
//     negative amounts), the spender knows the openings, and a nullifier
//     prevents double-spends.
//
// Parameter-size caveat (see DESIGN.md §2): the group is 61-bit, so this
// is protocol-faithful but NOT cryptographically secure at production
// strength; the survey's overhead claims concern structure and relative
// cost, which are preserved.
#ifndef PBC_VERIFY_ZKP_H_
#define PBC_VERIFY_ZKP_H_

#include <set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "crypto/group.h"
#include "crypto/sha256.h"

namespace pbc::verify {

using crypto::GroupElement;
using crypto::PedersenCommitment;
using crypto::Scalar;

/// \brief NIZK proof of knowledge of (m, r) with C = g^m h^r.
struct OpeningProof {
  GroupElement t;  ///< commitment to randomness: g^a h^s
  Scalar z_m;      ///< a + c·m
  Scalar z_r;      ///< s + c·r
};

/// \brief Proves knowledge of the opening (m, r) of `commitment`.
OpeningProof ProveOpening(const PedersenCommitment& commitment, Scalar m,
                          Scalar r, Rng* rng);

/// \brief Verifies an opening proof.
bool VerifyOpening(const PedersenCommitment& commitment,
                   const OpeningProof& proof);

/// \brief Schnorr proof that a commitment opens to zero (C = h^r).
struct ZeroProof {
  GroupElement t;
  Scalar z;
};

/// \brief Proves C = h^r, i.e. the committed value is 0.
ZeroProof ProveZero(const PedersenCommitment& commitment, Scalar r, Rng* rng);
bool VerifyZero(const PedersenCommitment& commitment, const ZeroProof& proof);

/// \brief Σ-OR proof that a commitment opens to 0 or to 1.
struct BitProof {
  GroupElement t0, t1;  ///< per-branch commitments
  Scalar c0, c1;        ///< split challenges (c0 + c1 = H(...))
  Scalar z0, z1;        ///< per-branch responses
};

/// \brief Proves C = g^b h^r with b ∈ {0,1}.
BitProof ProveBit(const PedersenCommitment& commitment, uint64_t bit,
                  Scalar r, Rng* rng);
bool VerifyBit(const PedersenCommitment& commitment, const BitProof& proof);

/// \brief Range proof for value ∈ [0, 2^bits) by bit decomposition.
struct RangeProof {
  uint32_t bits = 0;
  std::vector<PedersenCommitment> bit_commitments;
  std::vector<BitProof> bit_proofs;
};

/// \brief Proves that `commitment` (= g^value h^blinding) commits to a
/// value in [0, 2^bits). Fails with InvalidArgument if it does not.
Result<RangeProof> ProveRange(const PedersenCommitment& commitment,
                              uint64_t value, Scalar blinding, uint32_t bits,
                              Rng* rng);
bool VerifyRange(const PedersenCommitment& commitment,
                 const RangeProof& proof);

/// \brief A confidential transfer: spend an input note, produce a payment
/// note and a change note, all as commitments (Quorum/Zcash-style).
struct ConfidentialTransfer {
  PedersenCommitment input;
  PedersenCommitment output_pay;
  PedersenCommitment output_change;
  crypto::Hash256 nullifier;        ///< H(input secret); spends the input
  OpeningProof input_opening;       ///< spender knows the input
  RangeProof pay_range;             ///< no negative payment
  RangeProof change_range;          ///< no negative change
  /// Blinding correction so that input = pay · change · h^excess can be
  /// checked homomorphically: excess = r_in − r_pay − r_change.
  Scalar blinding_excess;
};

/// \brief Secret data of a note (amount + blinding + spend secret).
struct Note {
  uint64_t amount = 0;
  Scalar blinding;
  uint64_t spend_secret = 0;

  PedersenCommitment Commit() const {
    return crypto::PedersenCommit(Scalar(amount), blinding);
  }
  crypto::Hash256 Nullifier() const;
};

/// \brief Builds a transfer spending `input` into `pay_amount` +
/// change. Fails if pay_amount exceeds the input amount.
Result<ConfidentialTransfer> MakeTransfer(const Note& input,
                                          uint64_t pay_amount,
                                          uint32_t range_bits, Rng* rng,
                                          Note* out_pay, Note* out_change);

/// \brief Verifies every statement of the transfer (mass conservation,
/// ranges, opening). Double-spend checking against a nullifier set is the
/// ledger's job (see ConfidentialLedger).
bool VerifyTransfer(const ConfidentialTransfer& transfer);

/// \brief A minimal ledger of commitments + nullifier set: accepts a
/// transfer only if it verifies and its nullifier is unseen.
class ConfidentialLedger {
 public:
  /// Registers a minted note commitment (trusted issuance for tests).
  void Mint(const PedersenCommitment& note);

  /// Applies a transfer; Conflict on double-spend, Corruption on any
  /// failed proof, NotFound if the input commitment is unknown.
  Status Apply(const ConfidentialTransfer& transfer);

  size_t num_notes() const { return notes_.size(); }
  size_t num_spent() const { return nullifiers_.size(); }
  bool Contains(const PedersenCommitment& note) const;

 private:
  std::vector<PedersenCommitment> notes_;
  std::set<crypto::Hash256> nullifiers_;
};

}  // namespace pbc::verify

#endif  // PBC_VERIFY_ZKP_H_
