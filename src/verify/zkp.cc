#include "verify/zkp.h"

namespace pbc::verify {

namespace {

Scalar Challenge(std::initializer_list<uint64_t> elements) {
  crypto::Sha256 h;
  h.Update(std::string("pbc-fiat-shamir"));
  for (uint64_t e : elements) h.UpdateU64(e);
  return Scalar::FromHash(h.Finalize());
}

}  // namespace

OpeningProof ProveOpening(const PedersenCommitment& commitment, Scalar m,
                          Scalar r, Rng* rng) {
  Scalar a = Scalar::Random(rng);
  Scalar s = Scalar::Random(rng);
  OpeningProof proof;
  proof.t = GroupElement::G().Pow(a) * GroupElement::H().Pow(s);
  Scalar c = Challenge({commitment.c.value(), proof.t.value()});
  proof.z_m = a + c * m;
  proof.z_r = s + c * r;
  return proof;
}

bool VerifyOpening(const PedersenCommitment& commitment,
                   const OpeningProof& proof) {
  Scalar c = Challenge({commitment.c.value(), proof.t.value()});
  GroupElement lhs =
      GroupElement::G().Pow(proof.z_m) * GroupElement::H().Pow(proof.z_r);
  GroupElement rhs = proof.t * commitment.c.Pow(c);
  return lhs == rhs;
}

ZeroProof ProveZero(const PedersenCommitment& commitment, Scalar r,
                    Rng* rng) {
  ZeroProof proof;
  Scalar w = Scalar::Random(rng);
  proof.t = GroupElement::H().Pow(w);
  Scalar c = Challenge({commitment.c.value(), proof.t.value(), 0});
  proof.z = w + c * r;
  return proof;
}

bool VerifyZero(const PedersenCommitment& commitment,
                const ZeroProof& proof) {
  Scalar c = Challenge({commitment.c.value(), proof.t.value(), 0});
  return GroupElement::H().Pow(proof.z) == proof.t * commitment.c.Pow(c);
}

BitProof ProveBit(const PedersenCommitment& commitment, uint64_t bit,
                  Scalar r, Rng* rng) {
  // Statement: C = h^r  (bit 0)   OR   C·g⁻¹ = h^r  (bit 1).
  GroupElement c0_target = commitment.c;                             // bit 0
  GroupElement c1_target = commitment.c * GroupElement::G().Inverse();  // 1

  BitProof proof;
  Scalar w = Scalar::Random(rng);
  if (bit == 0) {
    // Simulate branch 1.
    proof.c1 = Scalar::Random(rng);
    proof.z1 = Scalar::Random(rng);
    proof.t1 = GroupElement::H().Pow(proof.z1) *
               c1_target.Pow(proof.c1).Inverse();
    proof.t0 = GroupElement::H().Pow(w);
    Scalar c = Challenge(
        {commitment.c.value(), proof.t0.value(), proof.t1.value()});
    proof.c0 = c - proof.c1;
    proof.z0 = w + proof.c0 * r;
  } else {
    // Simulate branch 0.
    proof.c0 = Scalar::Random(rng);
    proof.z0 = Scalar::Random(rng);
    proof.t0 = GroupElement::H().Pow(proof.z0) *
               c0_target.Pow(proof.c0).Inverse();
    proof.t1 = GroupElement::H().Pow(w);
    Scalar c = Challenge(
        {commitment.c.value(), proof.t0.value(), proof.t1.value()});
    proof.c1 = c - proof.c0;
    proof.z1 = w + proof.c1 * r;
  }
  return proof;
}

bool VerifyBit(const PedersenCommitment& commitment, const BitProof& proof) {
  GroupElement c0_target = commitment.c;
  GroupElement c1_target = commitment.c * GroupElement::G().Inverse();
  Scalar c = Challenge(
      {commitment.c.value(), proof.t0.value(), proof.t1.value()});
  if (proof.c0 + proof.c1 != c) return false;
  if (GroupElement::H().Pow(proof.z0) !=
      proof.t0 * c0_target.Pow(proof.c0)) {
    return false;
  }
  if (GroupElement::H().Pow(proof.z1) !=
      proof.t1 * c1_target.Pow(proof.c1)) {
    return false;
  }
  return true;
}

Result<RangeProof> ProveRange(const PedersenCommitment& commitment,
                              uint64_t value, Scalar blinding, uint32_t bits,
                              Rng* rng) {
  if (bits == 0 || bits > 32) {
    return Status::InvalidArgument("range bits must be in [1, 32]");
  }
  if (bits < 64 && value >= (uint64_t{1} << bits)) {
    return Status::InvalidArgument("value out of range");
  }
  if (!crypto::PedersenOpen(commitment, Scalar(value), blinding)) {
    return Status::InvalidArgument("opening does not match commitment");
  }

  RangeProof proof;
  proof.bits = bits;
  // Blindings: random for i ≥ 1; r_0 chosen so Σ 2^i·r_i = blinding.
  std::vector<Scalar> r(bits);
  Scalar weighted_sum(0);
  for (uint32_t i = 1; i < bits; ++i) {
    r[i] = Scalar::Random(rng);
    weighted_sum = weighted_sum + Scalar(uint64_t{1} << i) * r[i];
  }
  r[0] = blinding - weighted_sum;

  for (uint32_t i = 0; i < bits; ++i) {
    uint64_t bit = (value >> i) & 1;
    PedersenCommitment ci = crypto::PedersenCommit(Scalar(bit), r[i]);
    proof.bit_commitments.push_back(ci);
    proof.bit_proofs.push_back(ProveBit(ci, bit, r[i], rng));
  }
  return proof;
}

bool VerifyRange(const PedersenCommitment& commitment,
                 const RangeProof& proof) {
  if (proof.bits == 0 || proof.bits > 32) return false;
  if (proof.bit_commitments.size() != proof.bits ||
      proof.bit_proofs.size() != proof.bits) {
    return false;
  }
  // Each bit is 0/1.
  for (uint32_t i = 0; i < proof.bits; ++i) {
    if (!VerifyBit(proof.bit_commitments[i], proof.bit_proofs[i])) {
      return false;
    }
  }
  // The weighted product reconstitutes the committed value.
  GroupElement acc = GroupElement::Identity();
  for (uint32_t i = 0; i < proof.bits; ++i) {
    acc = acc * proof.bit_commitments[i].c.Pow(Scalar(uint64_t{1} << i));
  }
  return acc == commitment.c;
}

crypto::Hash256 Note::Nullifier() const {
  crypto::Sha256 h;
  h.Update(std::string("pbc-nullifier"));
  h.UpdateU64(spend_secret);
  return h.Finalize();
}

Result<ConfidentialTransfer> MakeTransfer(const Note& input,
                                          uint64_t pay_amount,
                                          uint32_t range_bits, Rng* rng,
                                          Note* out_pay, Note* out_change) {
  if (pay_amount > input.amount) {
    return Status::InvalidArgument("insufficient funds");
  }
  out_pay->amount = pay_amount;
  out_pay->blinding = Scalar::Random(rng);
  out_pay->spend_secret = rng->NextU64();
  out_change->amount = input.amount - pay_amount;
  out_change->blinding = Scalar::Random(rng);
  out_change->spend_secret = rng->NextU64();

  ConfidentialTransfer t;
  t.input = input.Commit();
  t.output_pay = out_pay->Commit();
  t.output_change = out_change->Commit();
  t.nullifier = input.Nullifier();
  t.input_opening =
      ProveOpening(t.input, Scalar(input.amount), input.blinding, rng);
  PBC_ASSIGN_OR_RETURN(
      t.pay_range, ProveRange(t.output_pay, out_pay->amount,
                              out_pay->blinding, range_bits, rng));
  PBC_ASSIGN_OR_RETURN(
      t.change_range, ProveRange(t.output_change, out_change->amount,
                                 out_change->blinding, range_bits, rng));
  t.blinding_excess =
      input.blinding - out_pay->blinding - out_change->blinding;
  return t;
}

bool VerifyTransfer(const ConfidentialTransfer& transfer) {
  // Authorization: spender knows the input opening.
  if (!VerifyOpening(transfer.input, transfer.input_opening)) return false;
  // No negative outputs.
  if (!VerifyRange(transfer.output_pay, transfer.pay_range)) return false;
  if (!VerifyRange(transfer.output_change, transfer.change_range)) {
    return false;
  }
  // Mass conservation: input = pay · change · h^excess.
  GroupElement rhs = transfer.output_pay.c * transfer.output_change.c *
                     GroupElement::H().Pow(transfer.blinding_excess);
  return transfer.input.c == rhs;
}

void ConfidentialLedger::Mint(const PedersenCommitment& note) {
  notes_.push_back(note);
}

bool ConfidentialLedger::Contains(const PedersenCommitment& note) const {
  for (const auto& n : notes_) {
    if (n == note) return true;
  }
  return false;
}

Status ConfidentialLedger::Apply(const ConfidentialTransfer& transfer) {
  if (!Contains(transfer.input)) {
    return Status::NotFound("input note unknown to the ledger");
  }
  if (nullifiers_.count(transfer.nullifier) > 0) {
    return Status::Conflict("double spend: nullifier already seen");
  }
  if (!VerifyTransfer(transfer)) {
    return Status::Corruption("transfer proof verification failed");
  }
  nullifiers_.insert(transfer.nullifier);
  notes_.push_back(transfer.output_pay);
  notes_.push_back(transfer.output_change);
  return Status::OK();
}

}  // namespace pbc::verify
