#include "verify/crowdwork.h"

namespace pbc::verify {

ZkHourTracker::ZkHourTracker(uint32_t worker, uint64_t cap, Rng* rng)
    : worker_(worker), cap_(cap), blinding_(Scalar::Random(rng)) {}

Result<HourClaim> ZkHourTracker::Claim(uint64_t hours, Rng* rng) {
  if (total_ + hours > cap_) {
    return Status::InvalidArgument("cap exceeded: cannot build valid proof");
  }
  uint64_t new_total = total_ + hours;
  HourClaim claim;
  claim.worker = worker_;
  claim.hours = hours;
  // The hour increment is public, so the blinding is unchanged:
  // C' = C · g^hours commits to (total + hours, blinding).
  claim.new_total = crypto::PedersenCommit(Scalar(new_total), blinding_);

  // Headroom commitment: g^cap / C' = g^(cap − new_total) · h^(−blinding).
  PedersenCommitment headroom{GroupElement::G().Pow(Scalar(cap_)) *
                              claim.new_total.c.Inverse()};
  PBC_ASSIGN_OR_RETURN(
      claim.headroom_proof,
      ProveRange(headroom, cap_ - new_total, blinding_.Neg(), kHeadroomBits,
                 rng));
  total_ = new_total;
  return claim;
}

HourRegistration ZkHourTracker::Register(Rng* rng) const {
  HourRegistration reg;
  reg.worker = worker_;
  reg.zero_total = crypto::PedersenCommit(Scalar(0), blinding_);
  reg.proof = ProveZero(reg.zero_total, blinding_, rng);
  return reg;
}

Status ZkHourVerifier::Register(const HourRegistration& registration) {
  if (current_.count(registration.worker) > 0) {
    return Status::AlreadyExists("worker already registered this period");
  }
  if (!VerifyZero(registration.zero_total, registration.proof)) {
    return Status::Corruption("zero-total proof failed");
  }
  current_[registration.worker] = registration.zero_total;
  return Status::OK();
}

Status ZkHourVerifier::Accept(const HourClaim& claim) {
  // (1) Hour accounting: the new commitment must equal previous · g^hours.
  auto it = current_.find(claim.worker);
  if (it == current_.end()) {
    return Status::PermissionDenied("worker not registered this period");
  }
  GroupElement expected =
      it->second.c * GroupElement::G().Pow(Scalar(claim.hours));
  if (expected != claim.new_total.c) {
    return Status::Corruption("hour accounting mismatch");
  }
  // (2) Headroom: g^cap / new_total commits to a non-negative value.
  PedersenCommitment headroom{GroupElement::G().Pow(Scalar(cap_)) *
                              claim.new_total.c.Inverse()};
  if (!VerifyRange(headroom, claim.headroom_proof)) {
    return Status::Corruption("headroom range proof failed");
  }
  current_[claim.worker] = claim.new_total;
  return Status::OK();
}

}  // namespace pbc::verify
