// Multi-platform crowdworking constraint enforcement (§2.1.3, §2.3.2):
// the FLSA-style "≤ cap work hours per week" check, implemented both ways
// the survey describes so E7 can compare them head-to-head:
//
//   * token mode (Separ): the authority mints `cap` tokens per worker per
//     period; spending one per hour enforces the cap (see tokens.h);
//   * ZKP mode (Quorum/Zcash-style): the worker maintains a Pedersen
//     commitment to its cross-platform hour total; each claim publishes
//     the updated commitment plus a range proof that (cap − new_total) is
//     non-negative. Platforms verify without learning the total.
#ifndef PBC_VERIFY_CROWDWORK_H_
#define PBC_VERIFY_CROWDWORK_H_

#include <map>

#include "common/result.h"
#include "verify/zkp.h"

namespace pbc::verify {

/// \brief One hour-claim as published to the platforms' shared ledger.
struct HourClaim {
  uint32_t worker = 0;  ///< stable pseudonym (linkable; see header note)
  uint64_t hours = 0;   ///< hours claimed now (public per task)
  PedersenCommitment new_total;  ///< commitment to the running total
  RangeProof headroom_proof;     ///< (cap − new_total) ∈ [0, 2^bits)
};

/// \brief Period-start registration: the worker proves its initial
/// commitment opens to zero hours, anchoring the homomorphic chain.
struct HourRegistration {
  uint32_t worker = 0;
  PedersenCommitment zero_total;
  ZeroProof proof;
};

/// \brief Worker-side secret state for the ZKP mode.
class ZkHourTracker {
 public:
  ZkHourTracker(uint32_t worker, uint64_t cap, Rng* rng);

  /// Produces the period-start registration (commitment to zero).
  HourRegistration Register(Rng* rng) const;

  /// Builds a claim for `hours` more work. Fails with InvalidArgument if
  /// the cap would be exceeded (an honest worker cannot produce a valid
  /// proof past the cap; a dishonest one fails verification).
  Result<HourClaim> Claim(uint64_t hours, Rng* rng);

  uint64_t total() const { return total_; }
  PedersenCommitment commitment() const {
    return crypto::PedersenCommit(Scalar(total_), blinding_);
  }

 private:
  uint32_t worker_;
  uint64_t cap_;
  uint64_t total_ = 0;
  Scalar blinding_;
};

/// \brief Platform-side verifier, replicated on every platform.
class ZkHourVerifier {
 public:
  explicit ZkHourVerifier(uint64_t cap) : cap_(cap) {}

  /// Registers a worker for the period; the zero-proof prevents starting
  /// the chain at a non-zero total. AlreadyExists on re-registration.
  Status Register(const HourRegistration& registration);

  /// Verifies a claim against the worker's previous on-ledger commitment:
  /// (1) new_total = previous · g^hours (homomorphic hour accounting),
  /// (2) g^cap / new_total commits to a value in range (headroom ≥ 0).
  /// Workers must be registered first.
  Status Accept(const HourClaim& claim);

  uint64_t cap() const { return cap_; }

 private:
  uint64_t cap_;
  std::map<uint32_t, PedersenCommitment> current_;  ///< per-worker tip
};

/// \brief Range-proof width used for headroom proofs (cap < 2^kHeadroomBits).
inline constexpr uint32_t kHeadroomBits = 7;  // caps up to 127 hours

}  // namespace pbc::verify

#endif  // PBC_VERIFY_CROWDWORK_H_
