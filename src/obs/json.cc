#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace pbc::obs {

namespace {
const Json kNull;
}  // namespace

Json& Json::Set(const std::string& key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  type_ = Type::kArray;
  arr_.push_back(std::move(value));
  return *this;
}

bool Json::Has(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::At(const std::string& key) const {
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  return kNull;
}

void Json::WriteEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

void WriteNumber(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no Inf/NaN
    return;
  }
  // Integers (the common case: counters, timestamps) print exactly.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    os << static_cast<int64_t>(d);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  os << buf;
}

void Indent(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os << ' ';
}

}  // namespace

void Json::Write(std::ostream& os, int indent) const {
  switch (type_) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      WriteNumber(os, num_);
      break;
    case Type::kString:
      WriteEscaped(os, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (size_t i = 0; i < arr_.size(); ++i) {
        Indent(os, indent + 2);
        arr_[i].Write(os, indent + 2);
        if (i + 1 < arr_.size()) os << ',';
        os << '\n';
      }
      Indent(os, indent);
      os << ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (size_t i = 0; i < obj_.size(); ++i) {
        Indent(os, indent + 2);
        WriteEscaped(os, obj_[i].first);
        os << ": ";
        obj_[i].second.Write(os, indent + 2);
        if (i + 1 < obj_.size()) os << ',';
        os << '\n';
      }
      Indent(os, indent);
      os << '}';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::ostringstream os;
  Write(os);
  return os.str();
}

bool Json::WriteFile(const std::string& path) const {
  // detlint:allow(raw-filesystem) report/metrics emission to the host —
  // operator output, never durable simulation state; sim::Fs holds the
  // latter
  std::ofstream f(path);
  if (!f) return false;
  Write(f);
  f << '\n';
  return static_cast<bool>(f);
}

}  // namespace pbc::obs
