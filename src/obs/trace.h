// Structured trace of simulator events, ring-buffered per run.
//
// Every interesting transition in a simulation — message send / deliver /
// drop, node crash / recover, partition / heal, batch commit, view change,
// timer cancellation — is recorded with its simulated timestamp. Tests
// dump the tail on failure to show *how* a run reached a bad state; the
// buffer is bounded so long runs stay O(capacity) in memory.
#ifndef PBC_OBS_TRACE_H_
#define PBC_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pbc::obs {

enum class TraceKind : uint8_t {
  kSend,
  kDeliver,
  kDrop,
  kCrash,
  kRecover,
  kPartition,
  kHeal,
  kCommit,
  kViewChange,
  kTimerCancelled,
};

const char* TraceKindName(TraceKind kind);

/// \brief One simulator event. `a`/`b` are node ids (sender/receiver for
/// message events; b unused otherwise); `label` is a static string such as
/// the message type tag; `arg` is kind-specific (byte size, sequence
/// number, view number, …).
struct TraceEvent {
  uint64_t at_us = 0;
  TraceKind kind = TraceKind::kSend;
  uint32_t a = 0;
  uint32_t b = 0;
  const char* label = "";
  uint64_t arg = 0;
};

/// \brief Bounded ring buffer of trace events.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096) : capacity_(capacity) {
    events_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  }

  void Record(uint64_t at_us, TraceKind kind, uint32_t a, uint32_t b,
              const char* label, uint64_t arg) {
    if (capacity_ == 0) return;
    TraceEvent ev{at_us, kind, a, b, label, arg};
    if (events_.size() < capacity_) {
      events_.push_back(ev);
    } else {
      events_[next_ % capacity_] = ev;
    }
    ++next_;
  }

  /// Total events recorded, including those already overwritten.
  uint64_t recorded() const { return next_; }
  /// Events still held (<= capacity).
  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }

  /// Retained events in chronological order (oldest first).
  std::vector<TraceEvent> Snapshot() const;

  /// Human-readable dump of the retained tail, one event per line:
  ///   [timestamp_us] kind a->b label arg
  void Dump(std::ostream& os) const;
  std::string DumpString() const;

  void Clear() {
    events_.clear();
    next_ = 0;
  }

 private:
  size_t capacity_;
  uint64_t next_ = 0;  // index of the next slot to write, monotonically
  std::vector<TraceEvent> events_;
};

}  // namespace pbc::obs

#endif  // PBC_OBS_TRACE_H_
