#include "obs/trace.h"

#include <ostream>
#include <sstream>

namespace pbc::obs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return "send";
    case TraceKind::kDeliver:
      return "deliver";
    case TraceKind::kDrop:
      return "drop";
    case TraceKind::kCrash:
      return "crash";
    case TraceKind::kRecover:
      return "recover";
    case TraceKind::kPartition:
      return "partition";
    case TraceKind::kHeal:
      return "heal";
    case TraceKind::kCommit:
      return "commit";
    case TraceKind::kViewChange:
      return "view-change";
    case TraceKind::kTimerCancelled:
      return "timer-cancelled";
  }
  return "?";
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (next_ <= events_.size()) {
    out = events_;
  } else {
    // Ring has wrapped: oldest entry sits at next_ % capacity_.
    size_t start = next_ % capacity_;
    for (size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(start + i) % capacity_]);
    }
  }
  return out;
}

void TraceLog::Dump(std::ostream& os) const {
  for (const TraceEvent& ev : Snapshot()) {
    os << "[" << ev.at_us << "] " << TraceKindName(ev.kind) << " " << ev.a
       << "->" << ev.b << " " << ev.label << " " << ev.arg << "\n";
  }
}

std::string TraceLog::DumpString() const {
  std::ostringstream os;
  Dump(os);
  return os.str();
}

}  // namespace pbc::obs
