#include "obs/metrics.h"

#include <bit>
#include <sstream>

namespace pbc::obs {

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  // Highest set bit selects the octave; the next kSubBucketBits bits
  // select the linear sub-bucket within it.
  uint32_t msb = 63 - static_cast<uint32_t>(std::countl_zero(value));
  uint32_t octave = msb - kSubBucketBits;  // msb >= kSubBucketBits here
  uint32_t sub =
      static_cast<uint32_t>(value >> octave) & (kSubBuckets - 1);
  return (octave + 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(uint32_t index) {
  if (index < kSubBuckets) return index;
  uint32_t octave = index / kSubBuckets - 1;
  uint32_t sub = index % kSubBuckets;
  // Largest value mapping to this bucket.
  return ((static_cast<uint64_t>(kSubBuckets + sub + 1)) << octave) - 1;
}

void Histogram::Record(uint64_t value) {
  uint32_t idx = BucketIndex(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Never report beyond the observed maximum (the top bucket's upper
      // bound can overshoot it by up to 12.5%).
      uint64_t bound = BucketUpperBound(i);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::NonEmptyBuckets()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) out.emplace_back(BucketUpperBound(i), buckets_[i]);
  }
  return out;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::DebugString() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << " " << g.value() << " max " << g.max() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "hist " << name << " n " << h.count() << " sum " << h.sum()
       << " p50 " << h.P50() << " p95 " << h.P95() << " p99 " << h.P99()
       << "\n";
  }
  return os.str();
}

}  // namespace pbc::obs
