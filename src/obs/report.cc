#include "obs/report.h"

namespace pbc::obs {

Json ToJson(const Histogram& h) {
  Json j = Json::Object();
  j.Set("count", h.count());
  j.Set("sum", h.sum());
  j.Set("min", h.min());
  j.Set("max", h.max());
  j.Set("mean", h.Mean());
  j.Set("p50", h.P50());
  j.Set("p95", h.P95());
  j.Set("p99", h.P99());
  return j;
}

Json ToJson(const MetricsRegistry& registry) {
  Json counters = Json::Object();
  for (const auto& [name, c] : registry.counters()) {
    counters.Set(name, c.value());
  }
  Json gauges = Json::Object();
  for (const auto& [name, g] : registry.gauges()) {
    Json entry = Json::Object();
    entry.Set("value", g.value());
    entry.Set("max", g.max());
    gauges.Set(name, std::move(entry));
  }
  Json hists = Json::Object();
  for (const auto& [name, h] : registry.histograms()) {
    hists.Set(name, ToJson(h));
  }
  Json j = Json::Object();
  j.Set("counters", std::move(counters));
  if (gauges.size() > 0) j.Set("gauges", std::move(gauges));
  if (hists.size() > 0) j.Set("histograms", std::move(hists));
  return j;
}

void BenchReport::AddSeries(const std::string& series_name, Json params,
                            Json metrics) {
  Json row = Json::Object();
  row.Set("name", series_name);
  row.Set("params", std::move(params));
  row.Set("metrics", std::move(metrics));
  auto it = series_index_.find(series_name);
  if (it != series_index_.end()) {
    series_[it->second] = std::move(row);
    return;
  }
  series_index_[series_name] = series_.size();
  series_.Push(std::move(row));
}

Json BenchReport::StandardMetrics(double throughput_txn_per_s,
                                  const Histogram& commit_latency_us,
                                  uint64_t messages_sent, Json extra,
                                  const MetricsRegistry* registry) {
  Json m = Json::Object();
  m.Set("throughput_txn_per_s", throughput_txn_per_s);
  m.Set("commit_latency_p50_us", commit_latency_us.P50());
  m.Set("commit_latency_p95_us", commit_latency_us.P95());
  m.Set("commit_latency_p99_us", commit_latency_us.P99());
  m.Set("commit_latency_mean_us", commit_latency_us.Mean());
  m.Set("commit_latency_samples", commit_latency_us.count());
  m.Set("messages_sent", messages_sent);
  for (const auto& [k, v] : extra.object()) m.Set(k, v);
  if (registry != nullptr) m.Set("registry", ToJson(*registry));
  return m;
}

Json BenchReport::Build() const {
  Json j = Json::Object();
  j.Set("bench", name_);
  j.Set("seed", seed_);
  j.Set("config", config_);
  j.Set("series", series_);
  if (scheduler_.size() > 0) j.Set("scheduler", scheduler_);
  return j;
}

std::string BenchReport::Write(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + name_ + ".json";
  if (!Build().WriteFile(path)) return "";
  return path;
}

BenchReport& GlobalBenchReport() {
  static BenchReport report;
  return report;
}

}  // namespace pbc::obs
