// Machine-readable benchmark output: every experiment binary builds one
// `BenchReport` and writes `BENCH_<name>.json` on exit, giving all 12
// experiments a uniform schema (cf. BLOCKBENCH's shared metric layer):
//
//   {
//     "bench": "e4_consensus",
//     "seed": 42,
//     "config": { ...bench-wide constants... },
//     "series": [
//       { "name": "PBFT", "params": {"n": 4},
//         "metrics": { "throughput_txn_per_s": ...,
//                      "commit_latency_p50_us": ..., "..._p95_us": ...,
//                      "..._p99_us": ..., "messages_sent": ..., ... } },
//       ...
//     ]
//   }
#ifndef PBC_OBS_REPORT_H_
#define PBC_OBS_REPORT_H_

#include <map>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace pbc::obs {

/// \brief Json views of metrics objects.
Json ToJson(const Histogram& h);
Json ToJson(const MetricsRegistry& registry);

/// \brief Accumulates series rows for one benchmark binary.
class BenchReport {
 public:
  void Configure(std::string bench_name, uint64_t seed, Json config) {
    name_ = std::move(bench_name);
    seed_ = seed;
    config_ = std::move(config);
  }

  const std::string& name() const { return name_; }

  /// Adds one series row. `metrics` must at least carry throughput,
  /// commit-latency percentiles and message counts — use StandardMetrics
  /// to build it. Re-adding a name overwrites the previous row (google
  /// benchmark may invoke a benchmark function more than once while
  /// sizing iterations; the last run has the best data).
  void AddSeries(const std::string& series_name, Json params, Json metrics);

  /// Builds the canonical metrics object. `extra` members are merged in;
  /// `registry`, when given, is embedded under "registry" (counters +
  /// histogram percentiles from the attached simulation).
  static Json StandardMetrics(double throughput_txn_per_s,
                              const Histogram& commit_latency_us,
                              uint64_t messages_sent,
                              Json extra = Json::Object(),
                              const MetricsRegistry* registry = nullptr);

  /// Attaches the fan-out scheduler's counters (workers, jobs, steals).
  /// Emitted as a top-level "scheduler" object — deliberately outside
  /// "series": series rows of simulated-time benches are deterministic,
  /// scheduler behavior is not.
  void SetScheduler(Json scheduler) { scheduler_ = std::move(scheduler); }

  Json Build() const;

  /// Writes BENCH_<name>.json into `dir` (default: current directory).
  /// Returns the path written, or empty on failure.
  std::string Write(const std::string& dir = ".") const;

 private:
  std::string name_ = "unnamed";
  uint64_t seed_ = 0;
  Json config_ = Json::Object();
  Json series_ = Json::Array();
  Json scheduler_ = Json::Object();
  std::map<std::string, size_t> series_index_;
};

/// \brief Process-wide report used by the PBC_BENCH_MAIN macro.
BenchReport& GlobalBenchReport();

}  // namespace pbc::obs

#endif  // PBC_OBS_REPORT_H_
