// Metrics substrate for the whole repository: named counters, gauges and
// fixed-bucket latency histograms collected into a `MetricsRegistry`.
//
// Design constraints (see DESIGN.md §7 "Observability"):
//  * deterministic — registries are plain data keyed by std::map, so two
//    same-seed runs produce byte-identical dumps;
//  * optional — every producer takes a nullable registry pointer and the
//    `PBC_OBS_*` macros in obs/obs.h compile to no-ops when the CMake
//    option PBC_ENABLE_OBS is OFF, so instrumentation is zero-overhead
//    when disabled;
//  * cheap — counters are a map lookup at attach points that already do
//    allocation-scale work (message sends, block commits).
#ifndef PBC_OBS_METRICS_H_
#define PBC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pbc::obs {

/// \brief Monotonic counter.
class Counter {
 public:
  void Add(uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// \brief Last-value-wins gauge that also tracks its high watermark.
class Gauge {
 public:
  void Set(int64_t v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  int64_t value() const { return value_; }
  int64_t max() const { return max_; }

 private:
  int64_t value_ = 0;
  int64_t max_ = 0;
};

/// \brief Fixed-bucket latency histogram (log-linear buckets).
///
/// Buckets subdivide each power of two into `kSubBuckets` linear steps
/// (HdrHistogram-style), giving a bounded relative error of
/// 1/kSubBuckets (12.5%) across the full uint64 range with a small,
/// fixed memory footprint. Percentiles report the upper bound of the
/// bucket containing the requested rank.
class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket
  /// holding the sample of rank ceil(q * count). Returns 0 when empty.
  uint64_t Quantile(double q) const;

  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P95() const { return Quantile(0.95); }
  uint64_t P99() const { return Quantile(0.99); }

  /// Non-empty buckets as (upper_bound, count) pairs, ascending.
  std::vector<std::pair<uint64_t, uint64_t>> NonEmptyBuckets() const;

 private:
  static uint32_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(uint32_t index);

  // 64 octaves * 8 sub-buckets is an upper bound; in practice latencies
  // stay far below, and the vector grows lazily to the highest bucket.
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// \brief Named metrics for one run. Lookup creates on first use.
///
/// Keys are ordered (std::map), so iteration — and therefore any dump or
/// JSON serialization — is deterministic.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  Gauge* GetGauge(const std::string& name) { return &gauges_[name]; }
  Histogram* GetHistogram(const std::string& name) {
    return &histograms_[name];
  }

  /// Read-only lookup; returns nullptr when the metric was never touched.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  uint64_t CounterValue(const std::string& name) const {
    const Counter* c = FindCounter(name);
    return c == nullptr ? 0 : c->value();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// One line per metric ("name value"), sorted by name — used by the
  /// determinism tests to compare two same-seed runs.
  std::string DebugString() const;

  void Clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace pbc::obs

#endif  // PBC_OBS_METRICS_H_
