// Minimal JSON document builder + writer (no external dependencies).
//
// Only what the observability layer needs: objects, arrays, strings,
// numbers, booleans. Object keys keep insertion order so emitted files
// are stable across runs and easy to diff.
#ifndef PBC_OBS_JSON_H_
#define PBC_OBS_JSON_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pbc::obs {

/// \brief A JSON value. Copyable, cheap for the sizes we emit.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                  // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}               // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}                  // NOLINT
  Json(uint32_t u) : type_(Type::kNumber), num_(u) {}             // NOLINT
  Json(int64_t i)                                                 // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(uint64_t u)                                                // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}          // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }

  /// Object member set (insertion-ordered; resetting a key overwrites in
  /// place). Returns *this for chaining.
  Json& Set(const std::string& key, Json value);

  /// Array append.
  Json& Push(Json value);

  bool Has(const std::string& key) const;
  /// Object member get; null-typed reference if absent.
  const Json& At(const std::string& key) const;

  /// Mutable array element access (index must be < size()).
  Json& operator[](size_t i) { return arr_[i]; }

  size_t size() const {
    return type_ == Type::kArray ? arr_.size()
                                 : (type_ == Type::kObject ? obj_.size() : 0);
  }
  double number() const { return num_; }
  const std::string& str() const { return str_; }
  const std::vector<Json>& array() const { return arr_; }
  const std::vector<std::pair<std::string, Json>>& object() const {
    return obj_;
  }

  /// Serializes with 2-space indentation.
  void Write(std::ostream& os, int indent = 0) const;
  std::string Dump() const;

  /// Writes `Dump()` to `path` (+ trailing newline). Returns success.
  bool WriteFile(const std::string& path) const;

  static void WriteEscaped(std::ostream& os, const std::string& s);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace pbc::obs

#endif  // PBC_OBS_JSON_H_
