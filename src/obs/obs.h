// Instrumentation macros. All metric/trace attach points in the hot paths
// (network sends, commit delivery, view changes) go through these so that
// configuring CMake with -DPBC_ENABLE_OBS=OFF compiles every site down to
// nothing: the arguments sit inside unevaluated sizeof() expressions, so
// no code is generated and no "unused variable" warnings appear.
//
// When enabled (the default), each site is a nullptr check + map lookup,
// active only for runs that attached a registry/trace via
// Network::AttachObs / Simulator::AttachMetrics. Instrumentation never
// feeds back into protocol behavior, so enabling it cannot change any
// simulation outcome (the determinism tests assert exactly that).
#ifndef PBC_OBS_OBS_H_
#define PBC_OBS_OBS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef PBC_OBS_ENABLED
#define PBC_OBS_ENABLED 0
#endif

#if PBC_OBS_ENABLED

#define PBC_OBS_COUNT(reg, name, delta)                  \
  do {                                                   \
    ::pbc::obs::MetricsRegistry* pbc_obs_r_ = (reg);     \
    if (pbc_obs_r_ != nullptr)                           \
      pbc_obs_r_->GetCounter(name)->Add(delta);          \
  } while (0)

#define PBC_OBS_GAUGE_SET(reg, name, value)              \
  do {                                                   \
    ::pbc::obs::MetricsRegistry* pbc_obs_r_ = (reg);     \
    if (pbc_obs_r_ != nullptr)                           \
      pbc_obs_r_->GetGauge(name)->Set(                   \
          static_cast<int64_t>(value));                  \
  } while (0)

#define PBC_OBS_HIST_RECORD(reg, name, value)            \
  do {                                                   \
    ::pbc::obs::MetricsRegistry* pbc_obs_r_ = (reg);     \
    if (pbc_obs_r_ != nullptr)                           \
      pbc_obs_r_->GetHistogram(name)->Record(value);     \
  } while (0)

#define PBC_OBS_TRACE(trace, at, kind, a, b, label, arg) \
  do {                                                   \
    ::pbc::obs::TraceLog* pbc_obs_t_ = (trace);          \
    if (pbc_obs_t_ != nullptr)                           \
      pbc_obs_t_->Record(at, kind, a, b, label, arg);    \
  } while (0)

#else  // !PBC_OBS_ENABLED

#define PBC_OBS_COUNT(reg, name, delta)         \
  do {                                          \
    (void)sizeof(reg);                          \
    (void)sizeof(delta);                        \
  } while (0)
#define PBC_OBS_GAUGE_SET(reg, name, value)     \
  do {                                          \
    (void)sizeof(reg);                          \
    (void)sizeof(value);                        \
  } while (0)
#define PBC_OBS_HIST_RECORD(reg, name, value)   \
  do {                                          \
    (void)sizeof(reg);                          \
    (void)sizeof(value);                        \
  } while (0)
#define PBC_OBS_TRACE(trace, at, kind, a, b, label, arg) \
  do {                                                   \
    (void)sizeof(trace);                                 \
    (void)sizeof(at);                                    \
    (void)sizeof(kind);                                  \
    (void)sizeof(a);                                     \
    (void)sizeof(b);                                     \
    (void)sizeof(arg);                                   \
  } while (0)

#endif  // PBC_OBS_ENABLED

#endif  // PBC_OBS_OBS_H_
