// detlint: determinism & safety static analysis for the pbc tree.
//
// The repo's correctness substrate (byte-identical seed-sweep reports,
// ddmin-shrunk repros, --jobs N report equivalence — DESIGN.md §8/§9)
// rests on a convention: nothing in src/ may consult wall clocks, OS
// entropy, environment variables, address-dependent ordering, or
// unordered-container iteration order on any path that feeds committed
// state, hashes, or JSON reports. detlint is the machine check for that
// convention (the rulebook lives in DESIGN.md §10).
//
// It is deliberately a token-level scanner over the repo's own sources —
// no libclang, no compile database — so it builds from the same CMake
// tree in milliseconds and runs as a tier-1 test on every PR. Token-level
// means it can be fooled by pathological macros; it is a tripwire for
// honest mistakes, not a sandbox for adversarial code.
//
// Suppression is only possible through an auditable inline annotation:
//
//   // detlint:allow(<rule>) <justification>
//
// placed on the offending line or on its own line directly above it. The
// justification is mandatory (an empty one is itself an error), unknown
// rule names are errors, and annotations that suppress nothing are
// errors — so `grep -rn detlint:allow` enumerates every sanctioned
// exception together with its reviewed reason.
#ifndef PBC_TOOLS_DETLINT_DETLINT_H_
#define PBC_TOOLS_DETLINT_DETLINT_H_

#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace pbc::detlint {

/// \brief One diagnostic: `file:line: [rule] message`.
struct Finding {
  std::string file;  ///< path as given to the scanner (repo-relative)
  size_t line = 0;   ///< 1-based
  std::string rule;
  std::string message;

  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule &&
           message == o.message;
  }
};

/// \brief Static description of one rule, for --list-rules and for
/// validating annotation rule names.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All enforceable rules. `bad-annotation` and `unused-allow` are
/// meta-rules emitted by the annotation machinery itself and cannot be
/// suppressed.
const std::vector<RuleInfo>& Rules();

/// True iff `id` names a suppressible rule (i.e. valid in an annotation).
bool IsSuppressibleRule(const std::string& id);

/// \brief Scanner configuration.
struct Options {
  /// (rule, path-prefix) pairs: findings for `rule` in files whose
  /// repo-relative path starts with `path-prefix` are dropped. A rule of
  /// "*" matches every rule. Loaded from tools/detlint/detlint.allow.
  std::vector<std::pair<std::string, std::string>> allowlist;
};

/// Loads an allowlist file (lines of `rule path-prefix`, `#` comments).
/// Returns false and sets `error` on I/O or parse failure.
bool LoadAllowlist(const std::filesystem::path& path, Options* options,
                   std::string* error);

/// Identifiers declared in `content` with an unordered-container type
/// (including through local `using`/`typedef` aliases). Used to seed a
/// .cc scan with its paired header's member declarations.
std::set<std::string> UnorderedDecls(const std::string& content);

/// Lints one translation unit given as a string. `path` is the
/// repo-relative path used for rule scoping (e.g. float-state only
/// applies under src/ledger, src/txn, src/consensus) and allowlist
/// matching. `seeded_decls` are identifiers known to be unordered
/// containers from elsewhere (the paired header).
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const Options& options,
                                const std::set<std::string>& seeded_decls = {});

/// \brief Result of scanning a tree.
struct TreeReport {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  size_t files_scanned = 0;
  std::vector<std::string> errors;  ///< unreadable files, bad roots
};

/// Recursively lints every C++ source under `root`/`subdir` for each
/// subdir (default scan set: src, bench). For a foo.cc file, a sibling
/// foo.h/foo.hpp seeds the unordered-declaration table so member
/// containers declared in the header are tracked in the implementation.
TreeReport LintTree(const std::filesystem::path& root,
                    const std::vector<std::string>& subdirs,
                    const Options& options);

/// Renders findings as a deterministic JSON report document.
std::string ReportToJson(const TreeReport& report,
                         const std::string& root_label);

}  // namespace pbc::detlint

#endif  // PBC_TOOLS_DETLINT_DETLINT_H_
