#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

namespace pbc::detlint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"wall-clock",
     "wall/monotonic clock reads (std::chrono clocks, time(), "
     "clock_gettime, ...) — simulated time is the only clock"},
    {"os-entropy",
     "OS randomness (std::random_device, rand/srand, getrandom, ...) — "
     "all randomness flows from the run seed via common/rng"},
    {"env-read",
     "environment access (getenv/setenv/putenv) — configuration must be "
     "explicit so a repro line fully determines a run"},
    {"unordered-iter",
     "iteration over std::unordered_map/set — iteration order is "
     "address-dependent; use std::map or sort keys before iterating"},
    {"ptr-key",
     "std::map/std::set keyed by a pointer — comparison order is the "
     "allocator's address order, different every run"},
    {"thread-raw",
     "raw std::thread / sleep primitives outside common/thread_pool — "
     "threading goes through the work-stealing scheduler"},
    {"float-state",
     "float/double in ledger/txn/consensus state — non-associative "
     "rounding diverges across evaluation orders; use integers"},
    {"raw-filesystem",
     "direct filesystem access in src/ (fopen/open/rename/fsync, "
     "std::fstream, std::filesystem) — durable state goes through the "
     "sim::Fs shim so crashes, torn writes and fsync semantics stay "
     "simulated and seeded"},
    {"bad-annotation",
     "malformed detlint:allow annotation (unknown rule or missing "
     "justification)"},
    {"unused-allow",
     "detlint:allow annotation that suppresses nothing — stale escape "
     "hatches must be removed"},
};

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Comment / string stripping
// ---------------------------------------------------------------------------

// Per-line split of a translation unit into code text (comments and
// literal contents blanked out, so the tokenizer never sees them) and
// comment text (where detlint:allow annotations live).
struct StrippedSource {
  std::vector<std::string> code;      // [line-1] -> code characters
  std::vector<std::string> comments;  // [line-1] -> comment characters
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

StrippedSource Strip(const std::string& content) {
  StrippedSource out;
  std::string code_line;
  std::string comment_line;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_terminator;  // for R"delim( ... )delim"
  char prev_code = '\0';       // last significant code char (digit-separator
                               // and prefix detection)

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      // Unterminated ordinary literals do not span lines.
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += ' ';  // keep token separation across /*...*/
          ++i;
        } else if (c == '"') {
          if (prev_code == 'R') {
            // Raw string literal: R"delim( ... )delim"
            state = State::kRawString;
            raw_terminator = ")";
            size_t j = i + 1;
            while (j < content.size() && content[j] != '(') {
              raw_terminator += content[j];
              ++j;
            }
            raw_terminator += '"';
            i = j;  // position at '(' (or end)
          } else {
            state = State::kString;
          }
          code_line += '"';
          prev_code = '"';
        } else if (c == '\'' && !IsIdentChar(prev_code)) {
          // A quote directly after an identifier/digit char is a C++14
          // digit separator (1'000'000), not a char literal.
          state = State::kChar;
          code_line += '\'';
          prev_code = '\'';
        } else {
          code_line += c;
          if (!std::isspace(static_cast<unsigned char>(c))) prev_code = c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
          prev_code = '\0';  // so "..."'x' is not read as digit separator
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
          prev_code = '\0';
        }
        break;
      case State::kRawString:
        if (c == ')' &&
            content.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
          code_line += '"';
          prev_code = '\0';
        }
        break;
    }
  }
  flush_line();
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  size_t line;  // 1-based
};

std::vector<Token> Tokenize(const std::vector<std::string>& code_lines) {
  std::vector<Token> tokens;
  for (size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentChar(c)) {
        size_t j = i;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        tokens.push_back({line.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      // Multi-char punctuation the rules care about.
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", li + 1});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", li + 1});
        i += 2;
        continue;
      }
      tokens.push_back({std::string(1, c), li + 1});
      ++i;
    }
  }
  return tokens;
}

std::string TokenAt(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() ? toks[i].text : std::string();
}

// ---------------------------------------------------------------------------
// Banned-identifier tables
// ---------------------------------------------------------------------------

// Identifiers banned wherever they appear (qualified or not).
const std::map<std::string, const char*> kBareBanned = {
    {"system_clock", "wall-clock"},
    {"steady_clock", "wall-clock"},
    {"high_resolution_clock", "wall-clock"},
    {"random_device", "os-entropy"},
    {"this_thread", "thread-raw"},
    {"sleep_for", "thread-raw"},
    {"sleep_until", "thread-raw"},
};

// Identifiers banned only when invoked as a function (next token is `(`),
// so e.g. a local variable named `time` or `#include <time.h>` is fine.
const std::map<std::string, const char*> kCallBanned = {
    {"time", "wall-clock"},          {"clock", "wall-clock"},
    {"clock_gettime", "wall-clock"}, {"gettimeofday", "wall-clock"},
    {"timespec_get", "wall-clock"},  {"localtime", "wall-clock"},
    {"gmtime", "wall-clock"},        {"mktime", "wall-clock"},
    {"rand", "os-entropy"},          {"srand", "os-entropy"},
    {"rand_r", "os-entropy"},        {"random", "os-entropy"},
    {"srandom", "os-entropy"},       {"getrandom", "os-entropy"},
    {"arc4random", "os-entropy"},    {"getenv", "env-read"},
    {"secure_getenv", "env-read"},   {"setenv", "env-read"},
    {"putenv", "env-read"},          {"sleep", "thread-raw"},
    {"usleep", "thread-raw"},        {"nanosleep", "thread-raw"},
};

// Direct filesystem calls banned in src/ (raw-filesystem rule): durable
// state must flow through sim::Fs so fault injection sees every byte.
// `remove` and `truncate` are deliberately absent — std::remove is also
// the erase-remove algorithm (used by src/store) and `truncate` names
// shim methods; the open/write/rename/sync surface below is what real
// persistence code cannot avoid.
const std::set<std::string> kFsCallBanned = {
    "fopen",  "freopen",  "fdopen",   "open",      "openat",
    "creat",  "fsync",    "fdatasync", "rename",   "renameat",
    "unlink", "unlinkat", "ftruncate", "mkstemp",
};

// Stream/file types banned as bare mentions in src/ — declaring one is
// already a bypass of the shim. `filesystem` catches std::filesystem use.
const std::set<std::string> kFsBareTypes = {
    "ifstream", "ofstream", "fstream", "filebuf", "filesystem",
};

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kOrderedAssocTypes = {"map", "set", "multimap",
                                                  "multiset"};

bool PathStartsWith(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

bool FloatStateScope(const std::string& path) {
  return PathStartsWith(path, "src/ledger/") ||
         PathStartsWith(path, "src/txn/") ||
         PathStartsWith(path, "src/consensus/");
}

// raw-filesystem applies to all of src/ (bench emits reports to the host
// filesystem by design, and tools/ is not scanned at all).
bool RawFsScope(const std::string& path) {
  return PathStartsWith(path, "src/");
}

// Skips a balanced template argument list starting at the `<` at `i`.
// Returns the index one past the matching `>` (or toks.size()).
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "<") {
      ++depth;
    } else if (toks[i].text == ">") {
      if (--depth == 0) return i + 1;
    } else if (toks[i].text == ";") {
      return i;  // malformed / not actually a template — bail out
    }
  }
  return i;
}

bool IsIdentifierToken(const std::string& t) {
  return !t.empty() && (std::isalpha(static_cast<unsigned char>(t[0])) != 0 ||
                        t[0] == '_');
}

// ---------------------------------------------------------------------------
// Unordered-container declaration tracking
// ---------------------------------------------------------------------------

// Collects names declared with an unordered container type, following
// local `using X = std::unordered_map<...>` / `typedef ... X;` aliases.
std::set<std::string> CollectUnorderedDecls(const std::vector<Token>& toks) {
  std::set<std::string> declared;
  std::set<std::string> aliases;

  // Pass 1: aliases.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text == "using" && IsIdentifierToken(TokenAt(toks, i + 1)) &&
        TokenAt(toks, i + 2) == "=") {
      std::string name = toks[i + 1].text;
      for (size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
        if (kUnorderedTypes.count(toks[j].text) > 0 ||
            aliases.count(toks[j].text) > 0) {
          aliases.insert(name);
          break;
        }
      }
    } else if (toks[i].text == "typedef") {
      size_t end = i + 1;
      bool unordered = false;
      while (end < toks.size() && toks[end].text != ";") {
        if (kUnorderedTypes.count(toks[end].text) > 0 ||
            aliases.count(toks[end].text) > 0) {
          unordered = true;
        }
        ++end;
      }
      if (unordered && end > i + 1 && IsIdentifierToken(toks[end - 1].text)) {
        aliases.insert(toks[end - 1].text);
      }
    }
  }

  // Pass 2: declarations `unordered_map<...> [*&|const] name`.
  for (size_t i = 0; i < toks.size(); ++i) {
    bool is_unordered = kUnorderedTypes.count(toks[i].text) > 0;
    bool is_alias = aliases.count(toks[i].text) > 0;
    if (!is_unordered && !is_alias) continue;
    size_t j = i + 1;
    if (is_unordered) {
      if (TokenAt(toks, j) != "<") continue;  // bare mention, not a decl
      j = SkipTemplateArgs(toks, j);
    }
    while (j < toks.size() &&
           (toks[j].text == "*" || toks[j].text == "&" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && IsIdentifierToken(toks[j].text)) {
      // `unordered_map<...> name` where name is followed by `(` is a
      // function returning the container — track it anyway: iterating a
      // freshly returned unordered map is just as order-unstable.
      declared.insert(toks[j].text);
    }
  }
  declared.insert(aliases.begin(), aliases.end());
  return declared;
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct Annotation {
  size_t line = 0;         // line the comment sits on
  size_t target_line = 0;  // line whose findings it suppresses
  std::string rule;
  bool valid = false;          // known suppressible rule + justification
  std::string error;           // why it is invalid (when !valid)
  mutable bool used = false;   // did it suppress anything?
};

std::string TrimCopy(const std::string& s) {
  size_t b = s.find_first_not_of(" \t:;-—");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool LineHasCode(const std::string& code_line) {
  for (char c : code_line) {
    if (!std::isspace(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

std::vector<Annotation> ParseAnnotations(const StrippedSource& src) {
  static const std::string kMarker = "detlint:allow";
  std::vector<Annotation> out;
  for (size_t li = 0; li < src.comments.size(); ++li) {
    const std::string& comment = src.comments[li];
    size_t pos = 0;
    while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
      Annotation ann;
      ann.line = li + 1;
      size_t p = pos + kMarker.size();
      if (p >= comment.size() || comment[p] != '(') {
        ann.error = "expected '(' after detlint:allow";
        pos = p;
        out.push_back(ann);
        continue;
      }
      size_t close = comment.find(')', p);
      if (close == std::string::npos) {
        ann.error = "unterminated detlint:allow(";
        out.push_back(ann);
        break;
      }
      ann.rule = TrimCopy(comment.substr(p + 1, close - p - 1));
      std::string justification = TrimCopy(comment.substr(close + 1));
      if (!IsSuppressibleRule(ann.rule)) {
        ann.error = IsKnownRule(ann.rule)
                        ? "rule '" + ann.rule + "' cannot be suppressed"
                        : "unknown rule '" + ann.rule + "'";
      } else if (justification.empty()) {
        ann.error = "detlint:allow(" + ann.rule +
                    ") carries no justification — every exception must "
                    "say why it is safe";
      } else {
        ann.valid = true;
      }
      // Target: the annotated line itself if it has code, else the next
      // line that does (a standalone comment annotates what follows).
      ann.target_line = ann.line;
      if (!LineHasCode(src.code[li])) {
        for (size_t j = li + 1; j < src.code.size(); ++j) {
          if (LineHasCode(src.code[j])) {
            ann.target_line = j + 1;
            break;
          }
        }
      }
      out.push_back(ann);
      pos = close;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

void ScanTokens(const std::string& path, const std::vector<Token>& toks,
                const std::set<std::string>& unordered_decls,
                std::vector<Finding>* findings) {
  const bool float_scope = FloatStateScope(path);
  const bool rawfs_scope = RawFsScope(path);

  auto add = [&](size_t line, const char* rule, std::string msg) {
    findings->push_back({path, line, rule, std::move(msg)});
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    const std::string prev = i > 0 ? toks[i - 1].text : std::string();
    const std::string next = TokenAt(toks, i + 1);

    // Bare banned identifiers.
    auto bare = kBareBanned.find(t);
    if (bare != kBareBanned.end() && prev != "." && prev != "->") {
      add(toks[i].line, bare->second,
          "use of '" + t + "' is banned in deterministic code");
      continue;
    }

    // Call-like banned identifiers: `name(` not preceded by a member or
    // scope access (except std::), so `obj.time()` / `Foo::random()` are
    // user methods but `std::time(...)` / bare `time(...)` are caught.
    auto call = kCallBanned.find(t);
    if (call != kCallBanned.end() && next == "(") {
      bool member_access = prev == "." || prev == "->";
      bool foreign_scope =
          prev == "::" && !(i >= 2 && toks[i - 2].text == "std");
      if (!member_access && !foreign_scope) {
        add(toks[i].line, call->second, "call to '" + t + "()' is banned");
        continue;
      }
    }

    // Raw filesystem access in src/: durable state goes through sim::Fs.
    if (rawfs_scope) {
      if (kFsBareTypes.count(t) > 0 && prev != "." && prev != "->") {
        // `#include <fstream>` mentions the header name, not the type.
        bool include_line =
            prev == "<" && i >= 2 && toks[i - 2].text == "include";
        if (!include_line) {
          add(toks[i].line, "raw-filesystem",
              "'" + t +
                  "' bypasses the deterministic filesystem shim — route "
                  "file I/O through sim::Fs");
          continue;
        }
      }
      if (kFsCallBanned.count(t) > 0 && next == "(") {
        bool member_access = prev == "." || prev == "->";
        // std:: and std::filesystem:: are the real thing and stay banned;
        // other scopes (sim::Fs methods, user classes) are fine.
        bool foreign_scope =
            prev == "::" && !(i >= 2 && (toks[i - 2].text == "std" ||
                                         toks[i - 2].text == "filesystem"));
        if (!member_access && !foreign_scope) {
          add(toks[i].line, "raw-filesystem",
              "call to '" + t +
                  "()' bypasses the deterministic filesystem shim — route "
                  "file I/O through sim::Fs");
          continue;
        }
      }
    }

    // std::thread construction / static member use.
    if (t == "thread" && prev == "::" && i >= 2 && toks[i - 2].text == "std") {
      add(toks[i].line, "thread-raw",
          "raw std::thread outside common/thread_pool — use the "
          "work-stealing ThreadPool");
      continue;
    }

    // Pointer-keyed ordered associative containers.
    if (kOrderedAssocTypes.count(t) > 0 && prev == "::" && i >= 2 &&
        toks[i - 2].text == "std" && next == "<") {
      // First template argument ends at the first `,` or `>` at depth 1.
      int depth = 0;
      bool ptr_key = false;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& u = toks[j].text;
        if (u == "<") {
          ++depth;
        } else if (u == ">") {
          if (--depth == 0) break;
        } else if (u == ";") {
          break;
        } else if (depth == 1 && u == ",") {
          break;
        } else if (depth == 1 && u == "*") {
          ptr_key = true;
        }
      }
      if (ptr_key) {
        add(toks[i].line, "ptr-key",
            "std::" + t +
                " keyed by a pointer orders by allocation address, which "
                "differs across runs — key by a stable id instead");
      }
    }

    // Range-for over an unordered container.
    if (t == "for" && next == "(") {
      int depth = 0;
      size_t colon = 0;
      size_t close = toks.size();
      for (size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& u = toks[j].text;
        if (u == "(") {
          ++depth;
        } else if (u == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (u == ";" && depth == 1) {
          break;  // classic for-loop, not range-for
        } else if (u == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (unordered_decls.count(toks[j].text) > 0 ||
              kUnorderedTypes.count(toks[j].text) > 0) {
            add(toks[j].line, "unordered-iter",
                "range-for over unordered container '" + toks[j].text +
                    "' — iteration order is address-dependent; use "
                    "std::map or sort keys first");
            break;
          }
        }
      }
    }

    // Explicit iterator traversal: container.begin() / ->begin().
    if ((t == "begin" || t == "cbegin" || t == "rbegin" || t == "crbegin") &&
        next == "(" && (prev == "." || prev == "->") && i >= 2 &&
        unordered_decls.count(toks[i - 2].text) > 0) {
      add(toks[i].line, "unordered-iter",
          "iterator traversal of unordered container '" + toks[i - 2].text +
              "' — iteration order is address-dependent; use std::map or "
              "sort keys first");
    }

    // float/double in deterministic-state directories.
    if (float_scope && (t == "float" || t == "double")) {
      add(toks[i].line, "float-state",
          "'" + t +
              "' in ledger/txn/consensus state — floating point rounding "
              "is evaluation-order dependent; use fixed-point integers");
    }
  }
}

bool Allowlisted(const Options& options, const Finding& f) {
  for (const auto& [rule, prefix] : options.allowlist) {
    if ((rule == "*" || rule == f.rule) && PathStartsWith(f.file, prefix)) {
      return true;
    }
  }
  return false;
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }

bool IsSuppressibleRule(const std::string& id) {
  return IsKnownRule(id) && id != "bad-annotation" && id != "unused-allow";
}

std::set<std::string> UnorderedDecls(const std::string& content) {
  StrippedSource src = Strip(content);
  return CollectUnorderedDecls(Tokenize(src.code));
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const Options& options,
                                const std::set<std::string>& seeded_decls) {
  StrippedSource src = Strip(content);
  std::vector<Token> toks = Tokenize(src.code);

  std::set<std::string> decls = CollectUnorderedDecls(toks);
  decls.insert(seeded_decls.begin(), seeded_decls.end());

  std::vector<Finding> raw;
  ScanTokens(path, toks, decls, &raw);

  std::vector<Annotation> annotations = ParseAnnotations(src);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (const Annotation& ann : annotations) {
      if (ann.valid && ann.rule == f.rule && ann.target_line == f.line) {
        ann.used = true;
        suppressed = true;
      }
    }
    if (suppressed) continue;
    if (Allowlisted(options, f)) continue;
    out.push_back(std::move(f));
  }
  for (const Annotation& ann : annotations) {
    if (!ann.valid) {
      out.push_back({path, ann.line, "bad-annotation", ann.error});
    } else if (!ann.used) {
      out.push_back(
          {path, ann.line, "unused-allow",
           "detlint:allow(" + ann.rule +
               ") suppresses nothing on line " +
               std::to_string(ann.target_line) + " — remove it"});
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

TreeReport LintTree(const std::filesystem::path& root,
                    const std::vector<std::string>& subdirs,
                    const Options& options) {
  namespace fs = std::filesystem;
  TreeReport report;

  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
      report.errors.push_back("not a directory: " + dir.string());
      continue;
    }
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
          ext == ".cxx") {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  auto read_file = [](const fs::path& p, std::string* out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
  };

  for (const fs::path& file : files) {
    std::string content;
    if (!read_file(file, &content)) {
      report.errors.push_back("cannot read: " + file.string());
      continue;
    }
    // Seed a .cc/.cpp scan with its paired header's member declarations,
    // so `for (x : member_)` in foo.cc sees foo.h's unordered members.
    std::set<std::string> seeded;
    std::string ext = file.extension().string();
    if (ext == ".cc" || ext == ".cpp" || ext == ".cxx") {
      for (const char* hext : {".h", ".hpp"}) {
        fs::path header = file;
        header.replace_extension(hext);
        std::string hcontent;
        if (read_file(header, &hcontent)) {
          std::set<std::string> hdecls = UnorderedDecls(hcontent);
          seeded.insert(hdecls.begin(), hdecls.end());
        }
      }
    }
    std::string rel = fs::relative(file, root).generic_string();
    std::vector<Finding> fs_findings =
        LintSource(rel, content, options, seeded);
    report.findings.insert(report.findings.end(), fs_findings.begin(),
                           fs_findings.end());
    ++report.files_scanned;
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

bool LoadAllowlist(const std::filesystem::path& path, Options* options,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open allowlist: " + path.string();
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string rule, prefix, extra;
    if (!(ss >> rule)) continue;  // blank / comment-only line
    if (!(ss >> prefix) || (ss >> extra)) {
      if (error != nullptr) {
        *error = path.string() + ":" + std::to_string(lineno) +
                 ": expected exactly `rule path-prefix`";
      }
      return false;
    }
    if (rule != "*" && !IsSuppressibleRule(rule)) {
      if (error != nullptr) {
        *error = path.string() + ":" + std::to_string(lineno) +
                 ": unknown or non-suppressible rule '" + rule + "'";
      }
      return false;
    }
    options->allowlist.emplace_back(rule, prefix);
  }
  return true;
}

std::string ReportToJson(const TreeReport& report,
                         const std::string& root_label) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"detlint\",\n  \"root\": \"";
  JsonEscape(os, root_label);
  os << "\",\n  \"files_scanned\": " << report.files_scanned
     << ",\n  \"findings\": [";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"file\": \"";
    JsonEscape(os, f.file);
    os << "\", \"line\": " << f.line << ", \"rule\": \"";
    JsonEscape(os, f.rule);
    os << "\", \"message\": \"";
    JsonEscape(os, f.message);
    os << "\"}";
  }
  os << (report.findings.empty() ? "]" : "\n  ]") << ",\n  \"errors\": [";
  for (size_t i = 0; i < report.errors.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"";
    JsonEscape(os, report.errors[i]);
    os << "\"";
  }
  os << (report.errors.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace pbc::detlint
