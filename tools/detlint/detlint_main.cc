// detlint CLI. See detlint.h for the rule engine and DESIGN.md §10 for
// the rulebook.
//
//   detlint [--root DIR] [--allowlist FILE] [--json PATH]
//           [--list-rules] [subdir...]
//
// Scans DIR/src and DIR/bench by default (override by naming subdirs).
// Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "detlint.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: detlint [options] [subdir...]\n"
      "  --root DIR        repository root to scan (default: .)\n"
      "  --allowlist FILE  allowlist file (default:\n"
      "                    ROOT/tools/detlint/detlint.allow if present)\n"
      "  --json PATH       also write a JSON report to PATH\n"
      "  --list-rules      print the rulebook and exit\n"
      "  subdir...         subdirectories of ROOT to scan\n"
      "                    (default: src bench)\n");
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = ".";
  std::string allowlist_path;
  std::string json_path;
  std::vector<std::string> subdirs;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "detlint: %s needs a value\n", arg);
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(arg, "--root")) {
      root = need_value();
    } else if (!std::strcmp(arg, "--allowlist")) {
      allowlist_path = need_value();
    } else if (!std::strcmp(arg, "--json")) {
      json_path = need_value();
    } else if (!std::strcmp(arg, "--list-rules")) {
      for (const pbc::detlint::RuleInfo& r : pbc::detlint::Rules()) {
        std::printf("%-16s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
      Usage();
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown flag %s\n", arg);
      Usage();
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) subdirs = {"src", "bench"};

  pbc::detlint::Options options;
  std::string error;
  if (allowlist_path.empty()) {
    fs::path fallback = fs::path(root) / "tools" / "detlint" / "detlint.allow";
    if (fs::exists(fallback)) allowlist_path = fallback.string();
  }
  if (!allowlist_path.empty() &&
      !pbc::detlint::LoadAllowlist(allowlist_path, &options, &error)) {
    std::fprintf(stderr, "detlint: %s\n", error.c_str());
    return 2;
  }

  pbc::detlint::TreeReport report =
      pbc::detlint::LintTree(root, subdirs, options);

  for (const std::string& err : report.errors) {
    std::fprintf(stderr, "detlint: error: %s\n", err.c_str());
  }
  for (const pbc::detlint::Finding& f : report.findings) {
    std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::printf("detlint: %zu file(s) scanned, %zu finding(s)\n",
              report.files_scanned, report.findings.size());

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << pbc::detlint::ReportToJson(report, root);
  }

  if (!report.errors.empty()) return 2;
  return report.findings.empty() ? 0 : 1;
}
