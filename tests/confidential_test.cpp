#include <gtest/gtest.h>

#include "confidential/caper.h"
#include "confidential/channels.h"
#include "confidential/private_data.h"

namespace pbc::confidential {
namespace {

using txn::Op;
using txn::Transaction;

Transaction T(txn::TxnId id, std::vector<Op> ops) {
  Transaction t;
  t.id = id;
  t.ops = std::move(ops);
  return t;
}

// --- Caper -------------------------------------------------------------------

TEST(CaperTest, InternalTxnStaysLocal) {
  CaperSystem caper(3);
  auto key = CaperSystem::PrivateKeyFor(0, "inventory");
  ASSERT_TRUE(caper.SubmitInternal(0, T(1, {Op::Write(key, "42")})).ok());

  EXPECT_EQ(caper.enterprise(0).private_store().Get(key).ValueOrDie().value,
            "42");
  // Other enterprises' stores never see it.
  EXPECT_FALSE(caper.enterprise(1).private_store().Get(key).ok());
  EXPECT_FALSE(caper.enterprise(1).public_store().Get(key).ok());
  // And their views contain no vertex for it.
  EXPECT_TRUE(caper.enterprise(1).view().empty());
  EXPECT_EQ(caper.enterprise(0).view().size(), 1u);
}

TEST(CaperTest, CrossTxnVisibleEverywhere) {
  CaperSystem caper(3);
  auto key = CaperSystem::SharedKey("contract");
  ASSERT_TRUE(caper.SubmitCross(T(1, {Op::Write(key, "signed")})).ok());
  for (uint32_t e = 0; e < 3; ++e) {
    EXPECT_EQ(caper.enterprise(e).public_store().Get(key).ValueOrDie().value,
              "signed");
    EXPECT_EQ(caper.enterprise(e).view().size(), 1u);
  }
}

TEST(CaperTest, InternalTxnMustStayInNamespace) {
  CaperSystem caper(2);
  // Touching another enterprise's namespace is refused.
  auto foreign = CaperSystem::PrivateKeyFor(1, "secret");
  EXPECT_TRUE(caper.SubmitInternal(0, T(1, {Op::Read(foreign)}))
                  .IsPermissionDenied());
  // Touching shared data in an internal txn is refused too.
  auto shared = CaperSystem::SharedKey("x");
  EXPECT_TRUE(caper.SubmitInternal(0, T(2, {Op::Write(shared, "v")}))
                  .IsPermissionDenied());
}

TEST(CaperTest, CrossTxnMustUseSharedNamespace) {
  CaperSystem caper(2);
  auto priv = CaperSystem::PrivateKeyFor(0, "secret");
  EXPECT_TRUE(caper.SubmitCross(T(1, {Op::Read(priv)})).IsPermissionDenied());
}

TEST(CaperTest, DagInterleavesInternalAndCross) {
  CaperSystem caper(2);
  auto k0 = CaperSystem::PrivateKeyFor(0, "a");
  auto k1 = CaperSystem::PrivateKeyFor(1, "b");
  caper.SubmitInternal(0, T(1, {Op::Write(k0, "1")}));
  caper.SubmitInternal(1, T(2, {Op::Write(k1, "2")}));
  caper.SubmitCross(T(3, {Op::Write(CaperSystem::SharedKey("s"), "3")}));
  caper.SubmitInternal(0, T(4, {Op::Write(k0, "4")}));

  EXPECT_TRUE(caper.global_dag().Audit().ok());
  // Enterprise 0's view: internal(1), cross(3), internal(4).
  const auto& view = caper.enterprise(0).view();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_FALSE(view[0].cross);
  EXPECT_TRUE(view[1].cross);
  EXPECT_FALSE(view[2].cross);
  // The post-cross internal txn chains to the cross vertex.
  ASSERT_EQ(view[2].parents.size(), 1u);
  EXPECT_EQ(view[2].parents[0], view[1].hash);
  EXPECT_TRUE(ledger::DagLedger::AuditView(view, 0).ok());
}

TEST(CaperTest, CountersTrackKinds) {
  CaperSystem caper(2);
  caper.SubmitInternal(
      0, T(1, {Op::Write(CaperSystem::PrivateKeyFor(0, "x"), "1")}));
  caper.SubmitCross(T(2, {Op::Write(CaperSystem::SharedKey("y"), "2")}));
  EXPECT_EQ(caper.internal_committed(), 1u);
  EXPECT_EQ(caper.cross_committed(), 1u);
}

TEST(CaperTest, PluggableOrdererDefersCommit) {
  CaperSystem caper(2);
  std::vector<std::pair<Transaction, CaperSystem::CommitFn>> queue;
  caper.SetGlobalOrderer([&](Transaction t, CaperSystem::CommitFn commit) {
    queue.emplace_back(std::move(t), std::move(commit));
  });
  caper.SubmitCross(T(1, {Op::Write(CaperSystem::SharedKey("k"), "v")}));
  EXPECT_EQ(caper.cross_committed(), 0u);  // still queued in "consensus"
  queue[0].second(queue[0].first);
  EXPECT_EQ(caper.cross_committed(), 1u);
}

// --- Channels ------------------------------------------------------------------

TEST(ChannelTest, MembershipGatesReadsAndWrites) {
  ChannelSystem sys;
  ASSERT_TRUE(sys.CreateChannel(1, {0, 1}).ok());
  ASSERT_TRUE(sys.Submit(1, 0, T(1, {Op::Write("k", "v")})).ok());

  EXPECT_EQ(sys.Read(1, 1, "k").ValueOrDie().value, "v");
  EXPECT_TRUE(sys.Read(1, 2, "k").status().IsPermissionDenied());
  EXPECT_TRUE(sys.Submit(1, 2, T(2, {Op::Write("k", "w")}))
                  .IsPermissionDenied());
}

TEST(ChannelTest, ChannelsAreIsolated) {
  ChannelSystem sys;
  sys.CreateChannel(1, {0, 1});
  sys.CreateChannel(2, {1, 2});
  sys.Submit(1, 0, T(1, {Op::Write("k", "ch1")}));
  sys.Submit(2, 2, T(2, {Op::Write("k", "ch2")}));
  EXPECT_EQ(sys.Read(1, 1, "k").ValueOrDie().value, "ch1");
  EXPECT_EQ(sys.Read(2, 1, "k").ValueOrDie().value, "ch2");
  // Enterprise 0 cannot see channel 2 at all.
  EXPECT_TRUE(sys.Read(2, 0, "k").status().IsPermissionDenied());
}

TEST(ChannelTest, EnterpriseInMultipleChannels) {
  ChannelSystem sys;
  sys.CreateChannel(1, {0, 1});
  sys.CreateChannel(2, {1, 2});
  sys.CreateChannel(3, {0, 2});
  EXPECT_EQ(sys.ChannelsOf(1), (std::vector<ChannelId>{1, 2}));
  sys.Submit(1, 1, T(1, {Op::Write("a", "1")}));
  sys.Submit(2, 1, T(2, {Op::Write("b", "2")}));
  // Enterprise 1 stores both channels' ledgers — the replication cost of
  // the channel approach.
  EXPECT_EQ(sys.LedgerBlocksStoredBy(1), 2u);
  EXPECT_EQ(sys.LedgerBlocksStoredBy(0), 1u);
}

TEST(ChannelTest, DuplicateChannelRejected) {
  ChannelSystem sys;
  ASSERT_TRUE(sys.CreateChannel(1, {0}).ok());
  EXPECT_EQ(sys.CreateChannel(1, {0}).code(), StatusCode::kAlreadyExists);
}

TEST(ChannelTest, CrossChannelAtomicCommit) {
  ChannelSystem sys;
  sys.CreateChannel(1, {0, 1});
  sys.CreateChannel(2, {1, 2});
  // Enterprise 1 (member of both) moves an asset between channels.
  sys.Submit(1, 0, T(1, {Op::Write("asset", txn::EncodeInt(100))}));
  Status s = sys.SubmitCrossChannel(
      1, T(2, {Op::Increment("asset", -40)}), 2,
      T(3, {Op::Increment("mirror", 40)}), /*submitter=*/1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(txn::DecodeInt(sys.Read(1, 1, "asset").ValueOrDie().value), 60);
  EXPECT_EQ(txn::DecodeInt(sys.Read(2, 1, "mirror").ValueOrDie().value), 40);
  EXPECT_EQ(sys.cross_channel_commits(), 1u);
}

TEST(ChannelTest, CrossChannelRequiresDualMembership) {
  ChannelSystem sys;
  sys.CreateChannel(1, {0, 1});
  sys.CreateChannel(2, {1, 2});
  // Enterprise 0 is not in channel 2.
  Status s = sys.SubmitCrossChannel(1, T(1, {Op::Write("a", "x")}), 2,
                                    T(2, {Op::Write("b", "y")}), 0);
  EXPECT_TRUE(s.IsPermissionDenied());
  EXPECT_EQ(sys.cross_channel_aborts(), 1u);
}

TEST(ChannelTest, LedgerAuditsClean) {
  ChannelSystem sys;
  sys.CreateChannel(1, {0});
  for (int i = 0; i < 10; ++i) {
    sys.Submit(1, 0, T(i, {Op::Write("k" + std::to_string(i), "v")}));
  }
  EXPECT_EQ(sys.channel(1).chain().height(), 10u);
  EXPECT_TRUE(sys.channel(1).chain().Audit().ok());
}

// --- Private data collections ---------------------------------------------------

TEST(PdcTest, MembersSeePlaintextOthersSeeHash) {
  PdcChannel channel({0, 1, 2});
  ASSERT_TRUE(channel.DefineCollection("deal", {0, 1}).ok());
  ASSERT_TRUE(channel.PutPrivate("deal", 0, "price", "99", 7).ok());

  EXPECT_EQ(channel.GetPrivate("deal", 1, "price").ValueOrDie().value, "99");
  // Enterprise 2 is a channel member but not a collection member: it gets
  // the hash, not the value.
  EXPECT_TRUE(
      channel.GetPrivate("deal", 2, "price").status().IsPermissionDenied());
  auto hash = channel.GetOnLedgerHash(2, "deal", "price");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash.ValueOrDie(), PdcChannel::HashPrivate("price", "99", 7));
}

TEST(PdcTest, OpeningVerificationDetectsLies) {
  PdcChannel channel({0, 1, 2});
  channel.DefineCollection("deal", {0, 1});
  channel.PutPrivate("deal", 0, "price", "99", 7);
  // The truthful opening verifies; a lie does not.
  EXPECT_TRUE(channel.VerifyOpening(2, "deal", "price", "99", 7).ValueOrDie());
  EXPECT_FALSE(
      channel.VerifyOpening(2, "deal", "price", "98", 7).ValueOrDie());
  EXPECT_FALSE(
      channel.VerifyOpening(2, "deal", "price", "99", 8).ValueOrDie());
}

TEST(PdcTest, CollectionMembersMustBeChannelMembers) {
  PdcChannel channel({0, 1});
  EXPECT_FALSE(channel.DefineCollection("bad", {0, 5}).ok());
}

TEST(PdcTest, NonMemberCannotWrite) {
  PdcChannel channel({0, 1, 2});
  channel.DefineCollection("deal", {0, 1});
  EXPECT_TRUE(
      channel.PutPrivate("deal", 2, "k", "v", 1).IsPermissionDenied());
}

TEST(PdcTest, MultipleCollectionsIndependent) {
  PdcChannel channel({0, 1, 2});
  channel.DefineCollection("c01", {0, 1});
  channel.DefineCollection("c12", {1, 2});
  channel.PutPrivate("c01", 0, "k", "v01", 1);
  channel.PutPrivate("c12", 2, "k", "v12", 2);
  EXPECT_EQ(channel.GetPrivate("c01", 1, "k").ValueOrDie().value, "v01");
  EXPECT_EQ(channel.GetPrivate("c12", 1, "k").ValueOrDie().value, "v12");
  EXPECT_FALSE(channel.GetPrivate("c12", 0, "k").ok());
  EXPECT_EQ(channel.CollectionReplication("c01").ValueOrDie(), 2u);
}

TEST(PdcTest, PublicStateSharedByChannel) {
  PdcChannel channel({0, 1});
  ASSERT_TRUE(channel.PutPublic(0, "pub", "x").ok());
  EXPECT_EQ(channel.GetPublic(1, "pub").ValueOrDie().value, "x");
  EXPECT_TRUE(channel.GetPublic(9, "pub").status().IsPermissionDenied());
}

TEST(PdcTest, SaltPreventsEqualValueLinkage) {
  // Two writes of the same value under different salts produce different
  // on-ledger hashes (no dictionary/linkage attacks).
  auto h1 = PdcChannel::HashPrivate("k", "same-value", 1);
  auto h2 = PdcChannel::HashPrivate("k", "same-value", 2);
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace pbc::confidential
