// Cross-layer integration tests: consensus feeding architectures,
// Caper running over real PBFT orderers, and end-to-end workload flows.
#include <gtest/gtest.h>

#include "arch/fabricpp.h"
#include "arch/xov.h"
#include "confidential/caper.h"
#include "consensus/cluster.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "shard/sharper.h"
#include "workload/workload.h"

namespace pbc {
namespace {

constexpr sim::Time kMaxSimTime = 120'000'000;

// ---------------------------------------------------------------------------
// Consensus → architecture: each replica executes the agreed blocks with an
// execution architecture; all replica states must coincide.
// ---------------------------------------------------------------------------

TEST(IntegrationTest, PbftOrderingFeedsOxiiExecutionConsistently) {
  sim::Simulator simulator(1);
  sim::Network net(&simulator);
  net.SetDefaultLatency({500, 200});
  crypto::KeyRegistry registry;
  consensus::Cluster<consensus::PbftReplica> cluster(&net, &registry, 4);

  // One OXII execution engine per replica, fed by that replica's commits.
  ThreadPool pool(4);
  std::vector<std::unique_ptr<arch::OxiiArchitecture>> engines;
  for (size_t i = 0; i < 4; ++i) {
    engines.push_back(std::make_unique<arch::OxiiArchitecture>(&pool));
  }
  for (size_t i = 0; i < 4; ++i) {
    cluster.replica(i)->set_commit_listener(
        [&engines, i](sim::NodeId, uint64_t, const consensus::Batch& b) {
          if (!b.txns.empty()) engines[i]->ProcessBlock(b.txns);
        });
  }
  net.Start();

  workload::ZipfianKv::Options opt;
  opt.hot_probability = 0.5;  // contended: the DAG matters
  opt.hot_keys = 3;
  workload::ZipfianKv gen(opt, 42);
  for (int i = 0; i < 60; ++i) cluster.Submit(gen.Next());

  ASSERT_TRUE(simulator.RunUntil(
      [&] { return cluster.MinCommitted() >= 60; }, kMaxSimTime));
  simulator.Run(simulator.now() + 2'000'000);

  for (size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(engines[0]->store().SameLatestState(engines[i]->store()))
        << "replica " << i;
    EXPECT_TRUE(engines[0]->chain().SameAs(engines[i]->chain()));
  }
  EXPECT_EQ(engines[0]->stats().committed, 60u);
}

TEST(IntegrationTest, RaftOrderingFeedsXovWithIdenticalAborts) {
  sim::Simulator simulator(2);
  sim::Network net(&simulator);
  net.SetDefaultLatency({500, 200});
  crypto::KeyRegistry registry;
  consensus::Cluster<consensus::RaftReplica> cluster(&net, &registry, 3);

  ThreadPool pool(4);
  std::vector<std::unique_ptr<arch::XovArchitecture>> engines;
  for (size_t i = 0; i < 3; ++i) {
    engines.push_back(std::make_unique<arch::XovArchitecture>(&pool));
    cluster.replica(i)->set_commit_listener(
        [&engines, i](sim::NodeId, uint64_t, const consensus::Batch& b) {
          if (!b.txns.empty()) engines[i]->ProcessBlock(b.txns);
        });
  }
  net.Start();

  workload::ZipfianKv::Options opt;
  opt.hot_probability = 0.7;
  opt.hot_keys = 2;
  workload::ZipfianKv gen(opt, 7);
  for (int i = 0; i < 40; ++i) cluster.Submit(gen.Next());

  ASSERT_TRUE(simulator.RunUntil(
      [&] { return cluster.MinCommitted() >= 40; }, kMaxSimTime));
  simulator.Run(simulator.now() + 2'000'000);

  // Fabric's validation is deterministic: every replica aborts the same
  // transactions and reaches the same state.
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(engines[0]->stats().aborted, engines[i]->stats().aborted);
    EXPECT_TRUE(engines[0]->store().SameLatestState(engines[i]->store()));
  }
  EXPECT_GT(engines[0]->stats().aborted, 0u);  // contention was real
}

// ---------------------------------------------------------------------------
// Caper over real PBFT orderers: internal transactions use a per-enterprise
// cluster, cross-enterprise transactions a global cluster.
// ---------------------------------------------------------------------------

struct CaperOverPbft {
  static constexpr uint32_t kEnterprises = 3;

  CaperOverPbft()
      : simulator(11), net(&simulator), caper(kEnterprises) {
    net.SetDefaultLatency({500, 200});
    // Per-enterprise internal clusters + one global cluster.
    for (uint32_t e = 0; e < kEnterprises; ++e) {
      internal.push_back(
          std::make_unique<consensus::Cluster<consensus::PbftReplica>>(
              &net, &registry, 4, consensus::ClusterConfig{},
              /*base_id=*/100 * (e + 1)));
    }
    global = std::make_unique<consensus::Cluster<consensus::PbftReplica>>(
        &net, &registry, 4, consensus::ClusterConfig{}, /*base_id=*/1000);

    // Wire orderers: Submit → consensus; commit → Caper's commit path.
    for (uint32_t e = 0; e < kEnterprises; ++e) {
      caper.SetInternalOrderer(
          e, [this, e](txn::Transaction t,
                       confidential::CaperSystem::CommitFn commit) {
            pending_internal[e][t.id] = commit;
            internal[e]->Submit(std::move(t));
          });
      internal[e]->replica(0)->set_commit_listener(
          [this, e](sim::NodeId, uint64_t, const consensus::Batch& batch) {
            for (const auto& t : batch.txns) {
              auto it = pending_internal[e].find(t.id);
              if (it != pending_internal[e].end()) {
                it->second(t);
                pending_internal[e].erase(it);
              }
            }
          });
    }
    caper.SetGlobalOrderer([this](txn::Transaction t,
                                  confidential::CaperSystem::CommitFn commit) {
      pending_global[t.id] = commit;
      global->Submit(std::move(t));
    });
    global->replica(0)->set_commit_listener(
        [this](sim::NodeId, uint64_t, const consensus::Batch& batch) {
          for (const auto& t : batch.txns) {
            auto it = pending_global.find(t.id);
            if (it != pending_global.end()) {
              it->second(t);
              pending_global.erase(it);
            }
          }
        });
    net.Start();
  }

  sim::Simulator simulator;
  sim::Network net;
  crypto::KeyRegistry registry;
  confidential::CaperSystem caper;
  std::vector<std::unique_ptr<consensus::Cluster<consensus::PbftReplica>>>
      internal;
  std::unique_ptr<consensus::Cluster<consensus::PbftReplica>> global;
  std::map<uint32_t, std::map<txn::TxnId, confidential::CaperSystem::CommitFn>>
      pending_internal;
  std::map<txn::TxnId, confidential::CaperSystem::CommitFn> pending_global;
};

TEST(IntegrationTest, CaperOverPbftOrderersCommitsBothKinds) {
  CaperOverPbft world;
  workload::SupplyChain chain(CaperOverPbft::kEnterprises, 0.3, 5);
  int internal_sent = 0, cross_sent = 0;
  for (int i = 0; i < 40; ++i) {
    auto step = chain.Next();
    if (step.cross) {
      ASSERT_TRUE(world.caper.SubmitCross(step.txn).ok());
      ++cross_sent;
    } else {
      ASSERT_TRUE(
          world.caper.SubmitInternal(step.enterprise, step.txn).ok());
      ++internal_sent;
    }
  }
  ASSERT_TRUE(world.simulator.RunUntil(
      [&] {
        return world.caper.internal_committed() ==
                   static_cast<uint64_t>(internal_sent) &&
               world.caper.cross_committed() ==
                   static_cast<uint64_t>(cross_sent);
      },
      kMaxSimTime));
  EXPECT_TRUE(world.caper.global_dag().Audit().ok());
  // Views audit per enterprise; cross txns visible in all views.
  for (uint32_t e = 0; e < CaperOverPbft::kEnterprises; ++e) {
    auto view = world.caper.enterprise(e).view();
    EXPECT_TRUE(
        ledger::DagLedger::AuditView(view, e).ok());
    int cross_seen = 0;
    for (const auto& v : view) cross_seen += v.cross ? 1 : 0;
    EXPECT_EQ(cross_seen, cross_sent);
  }
}

TEST(IntegrationTest, CaperInternalTrafficAvoidsGlobalCluster) {
  CaperOverPbft world;
  // Only internal transactions: the global cluster must stay idle.
  workload::SupplyChain chain(CaperOverPbft::kEnterprises, 0.0, 6);
  for (int i = 0; i < 20; ++i) {
    auto step = chain.Next();
    ASSERT_TRUE(world.caper.SubmitInternal(step.enterprise, step.txn).ok());
  }
  ASSERT_TRUE(world.simulator.RunUntil(
      [&] { return world.caper.internal_committed() == 20; }, kMaxSimTime));
  EXPECT_EQ(world.global->replica(0)->committed_txns(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end sharded workload with invariant checking.
// ---------------------------------------------------------------------------

TEST(IntegrationTest, SharperConservesMoneyUnderMixedWorkload) {
  sim::Simulator simulator(21);
  sim::Network net(&simulator);
  net.SetDefaultLatency({500, 200});
  crypto::KeyRegistry registry;
  shard::SharperSystem sys(&net, &registry, 3);
  size_t done = 0;
  sys.set_listener([&](txn::TxnId, bool) { ++done; });
  net.Start();

  workload::ShardedTransfers gen(3, 5, 100, 0.3, 13);
  auto deposits = gen.InitialDeposits();
  for (auto& d : deposits) sys.Submit(std::move(d));
  ASSERT_TRUE(simulator.RunUntil([&] { return done >= 15; }, kMaxSimTime));

  for (int i = 0; i < 20; ++i) sys.Submit(gen.NextTransfer());
  ASSERT_TRUE(simulator.RunUntil([&] { return done >= 35; }, kMaxSimTime));
  simulator.Run(simulator.now() + 20'000'000);
  EXPECT_EQ(sys.TotalBalance(), gen.expected_total());
}

}  // namespace
}  // namespace pbc
