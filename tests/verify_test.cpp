#include <gtest/gtest.h>

#include "verify/crowdwork.h"
#include "verify/tokens.h"
#include "verify/zkp.h"

namespace pbc::verify {
namespace {

// --- Opening proofs ---------------------------------------------------------

TEST(OpeningProofTest, HonestProofVerifies) {
  Rng rng(1);
  Scalar m(1234), r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(m, r);
  auto proof = ProveOpening(c, m, r, &rng);
  EXPECT_TRUE(VerifyOpening(c, proof));
}

TEST(OpeningProofTest, WrongCommitmentFails) {
  Rng rng(2);
  Scalar m(5), r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(m, r);
  auto proof = ProveOpening(c, m, r, &rng);
  auto other = crypto::PedersenCommit(Scalar(6), r);
  EXPECT_FALSE(VerifyOpening(other, proof));
}

TEST(OpeningProofTest, MutatedProofFails) {
  Rng rng(3);
  Scalar m(5), r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(m, r);
  auto proof = ProveOpening(c, m, r, &rng);
  auto bad = proof;
  bad.z_m = bad.z_m + Scalar(1);
  EXPECT_FALSE(VerifyOpening(c, bad));
  bad = proof;
  bad.z_r = bad.z_r + Scalar(1);
  EXPECT_FALSE(VerifyOpening(c, bad));
  bad = proof;
  bad.t = bad.t * GroupElement::G();
  EXPECT_FALSE(VerifyOpening(c, bad));
}

TEST(ZeroProofTest, ZeroCommitmentVerifies) {
  Rng rng(4);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(0), r);
  EXPECT_TRUE(VerifyZero(c, ProveZero(c, r, &rng)));
}

TEST(ZeroProofTest, NonZeroCommitmentCannotProveZero) {
  Rng rng(5);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(1), r);
  // A cheating prover running the zero-protocol on a non-zero commitment.
  EXPECT_FALSE(VerifyZero(c, ProveZero(c, r, &rng)));
}

// --- Bit and range proofs -----------------------------------------------------

TEST(BitProofTest, BothBitValuesProve) {
  Rng rng(6);
  for (uint64_t bit : {0u, 1u}) {
    Scalar r = Scalar::Random(&rng);
    auto c = crypto::PedersenCommit(Scalar(bit), r);
    auto proof = ProveBit(c, bit, r, &rng);
    EXPECT_TRUE(VerifyBit(c, proof)) << "bit=" << bit;
  }
}

TEST(BitProofTest, NonBitValueCannotProve) {
  Rng rng(7);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(2), r);
  // Cheat both ways; neither verifies.
  EXPECT_FALSE(VerifyBit(c, ProveBit(c, 0, r, &rng)));
  EXPECT_FALSE(VerifyBit(c, ProveBit(c, 1, r, &rng)));
}

TEST(BitProofTest, MutationFails) {
  Rng rng(8);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(1), r);
  auto proof = ProveBit(c, 1, r, &rng);
  auto bad = proof;
  bad.c0 = bad.c0 + Scalar(1);
  EXPECT_FALSE(VerifyBit(c, bad));
  bad = proof;
  bad.z1 = bad.z1 + Scalar(1);
  EXPECT_FALSE(VerifyBit(c, bad));
}

class RangeProofTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeProofTest, InRangeValuesProve) {
  Rng rng(GetParam() + 100);
  uint64_t value = GetParam();
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(value), r);
  auto proof = ProveRange(c, value, r, 8, &rng);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(VerifyRange(c, proof.ValueOrDie()));
}

INSTANTIATE_TEST_SUITE_P(Values, RangeProofTest,
                         ::testing::Values(0, 1, 2, 7, 128, 200, 255));

TEST(RangeProofTest2, OutOfRangeRejectedAtProving) {
  Rng rng(9);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(256), r);
  EXPECT_FALSE(ProveRange(c, 256, r, 8, &rng).ok());
}

TEST(RangeProofTest2, ProofForDifferentCommitmentFails) {
  Rng rng(10);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(5), r);
  auto proof = ProveRange(c, 5, r, 8, &rng).ValueOrDie();
  auto other = crypto::PedersenCommit(Scalar(5), Scalar::Random(&rng));
  EXPECT_FALSE(VerifyRange(other, proof));
}

TEST(RangeProofTest2, TamperedBitCommitmentFails) {
  Rng rng(11);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(5), r);
  auto proof = ProveRange(c, 5, r, 8, &rng).ValueOrDie();
  proof.bit_commitments[3].c = proof.bit_commitments[3].c * GroupElement::G();
  EXPECT_FALSE(VerifyRange(c, proof));
}

TEST(RangeProofTest2, WidthLimits) {
  Rng rng(12);
  Scalar r = Scalar::Random(&rng);
  auto c = crypto::PedersenCommit(Scalar(1), r);
  EXPECT_FALSE(ProveRange(c, 1, r, 0, &rng).ok());
  EXPECT_FALSE(ProveRange(c, 1, r, 33, &rng).ok());
  EXPECT_TRUE(ProveRange(c, 1, r, 32, &rng).ok());
}

// --- Confidential transfers ------------------------------------------------

TEST(TransferTest, HonestTransferVerifiesAndApplies) {
  Rng rng(20);
  Note input{100, Scalar::Random(&rng), rng.NextU64()};
  ConfidentialLedger ledger;
  ledger.Mint(input.Commit());

  Note pay, change;
  auto t = MakeTransfer(input, 30, 8, &rng, &pay, &change);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(VerifyTransfer(t.ValueOrDie()));
  ASSERT_TRUE(ledger.Apply(t.ValueOrDie()).ok());
  EXPECT_EQ(pay.amount, 30u);
  EXPECT_EQ(change.amount, 70u);
  EXPECT_TRUE(ledger.Contains(pay.Commit()));
  EXPECT_TRUE(ledger.Contains(change.Commit()));
}

TEST(TransferTest, DoubleSpendRejected) {
  Rng rng(21);
  Note input{100, Scalar::Random(&rng), rng.NextU64()};
  ConfidentialLedger ledger;
  ledger.Mint(input.Commit());

  Note p1, c1, p2, c2;
  auto t1 = MakeTransfer(input, 30, 8, &rng, &p1, &c1).ValueOrDie();
  auto t2 = MakeTransfer(input, 50, 8, &rng, &p2, &c2).ValueOrDie();
  ASSERT_TRUE(ledger.Apply(t1).ok());
  EXPECT_TRUE(ledger.Apply(t2).IsConflict());  // same nullifier
}

TEST(TransferTest, OverspendImpossible) {
  Rng rng(22);
  Note input{10, Scalar::Random(&rng), rng.NextU64()};
  Note pay, change;
  EXPECT_FALSE(MakeTransfer(input, 11, 8, &rng, &pay, &change).ok());
}

TEST(TransferTest, MassConservationViolationDetected) {
  Rng rng(23);
  Note input{100, Scalar::Random(&rng), rng.NextU64()};
  Note pay, change;
  auto t = MakeTransfer(input, 30, 8, &rng, &pay, &change).ValueOrDie();
  // Attacker inflates the payment output (keeping a valid-looking proof is
  // impossible; even replacing the commitment breaks the homomorphic sum).
  t.output_pay = crypto::PedersenCommit(Scalar(90), pay.blinding);
  EXPECT_FALSE(VerifyTransfer(t));
}

TEST(TransferTest, UnknownInputRejected) {
  Rng rng(24);
  Note input{100, Scalar::Random(&rng), rng.NextU64()};
  ConfidentialLedger ledger;  // never minted
  Note pay, change;
  auto t = MakeTransfer(input, 5, 8, &rng, &pay, &change).ValueOrDie();
  EXPECT_TRUE(t.nullifier == input.Nullifier());
  EXPECT_EQ(ledger.Apply(t).code(), StatusCode::kNotFound);
}

TEST(TransferTest, ChainOfTransfers) {
  Rng rng(25);
  Note note{64, Scalar::Random(&rng), rng.NextU64()};
  ConfidentialLedger ledger;
  ledger.Mint(note.Commit());
  // Spend the change repeatedly: 64 → 32 → 16 → 8.
  for (int i = 0; i < 3; ++i) {
    Note pay, change;
    auto t = MakeTransfer(note, note.amount / 2, 8, &rng, &pay, &change);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(ledger.Apply(t.ValueOrDie()).ok());
    note = change;
  }
  EXPECT_EQ(note.amount, 8u);
  EXPECT_EQ(ledger.num_spent(), 3u);
}

// --- Tokens (Separ) -----------------------------------------------------------

struct TokenWorld {
  TokenWorld() : authority(1, &registry), log(&registry, 1) {}
  crypto::KeyRegistry registry;
  TokenAuthority authority;
  SpendLog log;
  Rng rng{42};
};

TEST(TokenTest, MintedTokensSpendOnce) {
  TokenWorld w;
  auto tokens = w.authority.Mint(/*constraint=*/1, /*period=*/10, 5, &w.rng);
  ASSERT_EQ(tokens.size(), 5u);
  for (const auto& t : tokens) EXPECT_TRUE(w.log.Spend(t).ok());
  for (const auto& t : tokens) EXPECT_TRUE(w.log.Spend(t).IsConflict());
  EXPECT_EQ(w.log.num_spent(), 5u);
}

TEST(TokenTest, ForgedTokenRejected) {
  TokenWorld w;
  crypto::KeyRegistry other_registry;
  other_registry.Register(99);  // desynchronize key derivation
  TokenAuthority imposter(1, &other_registry);  // same id, different key
  auto forged = imposter.Mint(1, 10, 1, &w.rng);
  EXPECT_TRUE(w.log.Spend(forged[0]).IsCorruption());
}

TEST(TokenTest, TamperedTokenRejected) {
  TokenWorld w;
  auto tokens = w.authority.Mint(1, 10, 1, &w.rng);
  tokens[0].period = 11;  // move the token to another week
  EXPECT_TRUE(w.log.Spend(tokens[0]).IsCorruption());
}

TEST(TokenTest, WalletEnforcesBudget) {
  TokenWorld w;
  TokenWallet wallet;
  wallet.Deposit(w.authority.Mint(1, 10, 40, &w.rng));
  for (int hour = 0; hour < 40; ++hour) {
    auto token = wallet.Take();
    ASSERT_TRUE(token.ok());
    ASSERT_TRUE(w.log.Spend(token.ValueOrDie()).ok());
  }
  // Hour 41: the budget (FLSA cap) is exhausted.
  EXPECT_TRUE(wallet.Take().status().IsNotFound());
}

TEST(TokenTest, SerialsAreUnlinkable) {
  TokenWorld w;
  auto alice = w.authority.Mint(1, 10, 3, &w.rng);
  auto bob = w.authority.Mint(1, 10, 3, &w.rng);
  // Nothing in the token identifies the holder; all serials distinct.
  std::set<crypto::Hash256> serials;
  for (const auto& t : alice) serials.insert(t.serial);
  for (const auto& t : bob) serials.insert(t.serial);
  EXPECT_EQ(serials.size(), 6u);
}

// --- Crowdworking hour caps -----------------------------------------------

TEST(CrowdworkTest, ZkClaimsUpToCapVerify) {
  Rng rng(30);
  ZkHourTracker worker(7, /*cap=*/40, &rng);
  ZkHourVerifier platform_a(40), platform_b(40);
  auto reg = worker.Register(&rng);
  ASSERT_TRUE(platform_a.Register(reg).ok());
  ASSERT_TRUE(platform_b.Register(reg).ok());

  // 5 claims of 8 hours across two platforms: exactly 40.
  for (int i = 0; i < 5; ++i) {
    auto claim = worker.Claim(8, &rng);
    ASSERT_TRUE(claim.ok()) << i;
    // Both platforms replicate the shared ledger and verify every claim.
    ASSERT_TRUE(platform_a.Accept(claim.ValueOrDie()).ok()) << i;
    ASSERT_TRUE(platform_b.Accept(claim.ValueOrDie()).ok()) << i;
  }
  EXPECT_EQ(worker.total(), 40u);
  // Hour 41 cannot be claimed.
  EXPECT_FALSE(worker.Claim(1, &rng).ok());
}

TEST(CrowdworkTest, UnregisteredWorkerRejected) {
  Rng rng(31);
  ZkHourTracker worker(7, 40, &rng);
  ZkHourVerifier platform(40);
  auto claim = worker.Claim(8, &rng).ValueOrDie();
  EXPECT_TRUE(platform.Accept(claim).IsPermissionDenied());
}

TEST(CrowdworkTest, UnderreportingHoursDetected) {
  Rng rng(32);
  ZkHourTracker worker(7, 40, &rng);
  ZkHourVerifier platform(40);
  ASSERT_TRUE(platform.Register(worker.Register(&rng)).ok());
  auto claim = worker.Claim(8, &rng).ValueOrDie();
  claim.hours = 4;  // lie: "only 4 hours" while the commitment says 8
  EXPECT_TRUE(platform.Accept(claim).IsCorruption());
}

TEST(CrowdworkTest, ReplayedCommitmentDetected) {
  Rng rng(33);
  ZkHourTracker worker(7, 40, &rng);
  ZkHourVerifier platform(40);
  ASSERT_TRUE(platform.Register(worker.Register(&rng)).ok());
  auto c1 = worker.Claim(8, &rng).ValueOrDie();
  ASSERT_TRUE(platform.Accept(c1).ok());
  // Replaying the same claim: the tip moved, accounting check fails.
  EXPECT_TRUE(platform.Accept(c1).IsCorruption());
}

TEST(CrowdworkTest, NonZeroRegistrationRejected) {
  Rng rng(34);
  ZkHourTracker worker(7, 40, &rng);
  ZkHourVerifier platform(40);
  auto reg = worker.Register(&rng);
  // Attacker swaps in a commitment to -10 "hours" (i.e. headroom 50).
  reg.zero_total = crypto::PedersenCommit(Scalar(0) - Scalar(10), Scalar(3));
  EXPECT_TRUE(platform.Register(reg).IsCorruption());
}

TEST(CrowdworkTest, TwoWorkersIndependent) {
  Rng rng(35);
  ZkHourTracker alice(1, 40, &rng), bob(2, 40, &rng);
  ZkHourVerifier platform(40);
  ASSERT_TRUE(platform.Register(alice.Register(&rng)).ok());
  ASSERT_TRUE(platform.Register(bob.Register(&rng)).ok());
  ASSERT_TRUE(platform.Accept(alice.Claim(40, &rng).ValueOrDie()).ok());
  // Alice is at cap; Bob is unaffected.
  ASSERT_TRUE(platform.Accept(bob.Claim(10, &rng).ValueOrDie()).ok());
  EXPECT_FALSE(alice.Claim(1, &rng).ok());
}

}  // namespace
}  // namespace pbc::verify
