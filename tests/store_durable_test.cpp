// Unit tests for the durable storage layer (src/store) and its
// crash-recovery invariant checkers (src/check/durable.h): the sim::Fs
// fault surface, log-frame scanning and torn-tail truncation, the
// snapshot write/validate/fallback protocol, DurableLedger round trips,
// and — per checker — a deliberately broken recovery fake that must trip
// exactly the invariant that owns its failure mode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/durable.h"
#include "check/invariants.h"
#include "ledger/block.h"
#include "ledger/chain.h"
#include "sim/fs.h"
#include "store/block_log.h"
#include "store/codec.h"
#include "store/durable_ledger.h"
#include "store/kv_store.h"
#include "store/snapshot.h"
#include "txn/transaction.h"

namespace pbc::check {
namespace {

txn::Transaction WriteTxn(txn::TxnId id, const std::string& key,
                          const std::string& value) {
  txn::Transaction t;
  t.id = id;
  t.ops.push_back(txn::Op::Write(key, value));
  return t;
}

void AppendBlock(ledger::Chain* chain, std::vector<txn::Transaction> txns) {
  ASSERT_TRUE(chain
                  ->Append(ledger::Block::Make(chain->height(),
                                               chain->TipHash(),
                                               std::move(txns)))
                  .ok());
}

// One block whose state depends on intra-block commit order: it writes
// the same key twice, so replaying its transactions out of order yields
// different bytes.
void AppendOrderSensitiveBlock(ledger::Chain* chain) {
  uint64_t h = chain->height();
  std::string key = "k" + std::to_string(h % 3);
  AppendBlock(chain, {WriteTxn(2 * h + 1, key, "a" + std::to_string(h)),
                      WriteTxn(2 * h + 2, key, "b" + std::to_string(h))});
}

void BuildOrderSensitiveChain(ledger::Chain* chain, uint64_t blocks) {
  for (uint64_t h = 0; h < blocks; ++h) AppendOrderSensitiveBlock(chain);
}

std::vector<Violation> RunChecker(InvariantChecker* checker) {
  std::vector<Violation> out;
  checker->Check(/*now=*/123, &out);
  return out;
}

// --- sim::Fs fault surface ---------------------------------------------------

TEST(SimFsTest, CrashRevertsToLastFsync) {
  sim::Fs fs(1);
  fs.Append("n0/f", "abc");
  fs.Crash("n0/");
  std::string got;
  ASSERT_TRUE(fs.Read("n0/f", &got));
  EXPECT_EQ(got, "");  // never fsynced: the crash ate it

  fs.Append("n0/f", "abc");
  ASSERT_TRUE(fs.Fsync("n0/f"));
  fs.Append("n0/f", "def");  // past the barrier, unsynced
  fs.Crash("n0/");
  ASSERT_TRUE(fs.Read("n0/f", &got));
  EXPECT_EQ(got, "abc");
  EXPECT_EQ(fs.crashes(), 2u);
}

TEST(SimFsTest, CrashIsPrefixScoped) {
  sim::Fs fs(1);
  fs.Append("n0/f", "zero");
  fs.Append("n1/f", "one");
  fs.Fsync("n1/f");
  fs.Crash("n0/");
  std::string got;
  ASSERT_TRUE(fs.Read("n0/f", &got));
  EXPECT_EQ(got, "");
  ASSERT_TRUE(fs.Read("n1/f", &got));
  EXPECT_EQ(got, "one");
  sim::FsImage image = fs.DurableImage("n0/");
  EXPECT_EQ(image.size(), 1u);
  EXPECT_EQ(image.count("n0/f"), 1u);
}

TEST(SimFsTest, LostFlushesReportSuccessButAreCounted) {
  sim::Fs fs(1);
  fs.WriteFile("n0/f", "hello");
  fs.SetLoseFlushes("n0/", true);
  EXPECT_TRUE(fs.Fsync("n0/f"));  // the disk lies
  EXPECT_EQ(fs.fsyncs_dropped("n0/"), 1u);
  fs.Crash("n0/");
  std::string got;
  ASSERT_TRUE(fs.Read("n0/f", &got));
  EXPECT_EQ(got, "");  // durable content never advanced

  fs.SetLoseFlushes("n0/", false);
  fs.WriteFile("n0/f", "hello");
  ASSERT_TRUE(fs.Fsync("n0/f"));
  fs.Crash("n0/");
  ASSERT_TRUE(fs.Read("n0/f", &got));
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(fs.fsyncs_dropped("n0/"), 1u);  // honest syncs don't count
}

TEST(SimFsTest, TornCrashChopsTheDurableTail) {
  sim::Fs fs(7);
  const std::string content(100, 'x');
  int attempts = 0;
  // The chop size is drawn from the shim's seeded Rng and may be zero on
  // a given crash; re-arm until a tear lands (deterministic per seed).
  while (fs.tears("n0/") == 0 && attempts < 200) {
    fs.WriteFile("n0/f", content);
    fs.Fsync("n0/f");
    fs.SetPendingTear("n0/", 1'000'000);
    fs.Crash("n0/");
    ++attempts;
  }
  ASSERT_GE(fs.tears("n0/"), 1u) << "no tear in " << attempts << " crashes";
  std::string got;
  ASSERT_TRUE(fs.Read("n0/f", &got));
  EXPECT_LT(got.size(), content.size());
  EXPECT_EQ(got, content.substr(0, got.size()));  // a strict prefix
  // The tear was consumed by that crash: a plain crash leaves data alone.
  fs.WriteFile("n0/f", content);
  fs.Fsync("n0/f");
  uint64_t tears_before = fs.tears("n0/");
  fs.Crash("n0/");
  EXPECT_EQ(fs.tears("n0/"), tears_before);
  ASSERT_TRUE(fs.Read("n0/f", &got));
  EXPECT_EQ(got, content);
}

TEST(SimFsTest, RenameBeforeSyncLosesContentButKeepsName) {
  sim::Fs fs(1);
  fs.WriteFile("n0/snap.tmp", "payload");
  fs.Rename("n0/snap.tmp", "n0/snap");  // journaled name, unsynced content
  fs.Crash("n0/");
  std::string got;
  ASSERT_TRUE(fs.Read("n0/snap", &got));  // the classic zero-length file
  EXPECT_EQ(got, "");
  EXPECT_FALSE(fs.Exists("n0/snap.tmp"));

  fs.WriteFile("n0/snap.tmp", "payload");
  ASSERT_TRUE(fs.Fsync("n0/snap.tmp"));  // the barrier the protocol needs
  fs.Rename("n0/snap.tmp", "n0/snap");
  fs.Crash("n0/");
  ASSERT_TRUE(fs.Read("n0/snap", &got));
  EXPECT_EQ(got, "payload");
}

// --- Block log framing + recovery -------------------------------------------

TEST(BlockLogTest, ScanAcceptsCleanChainedFrames) {
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 3);
  std::string data;
  for (const ledger::Block& b : chain.blocks()) {
    data += store::EncodeFrame(store::EncodeBlock(b));
  }
  store::LogScan scan = store::ScanLog(data);
  EXPECT_EQ(scan.blocks.size(), 3u);
  EXPECT_EQ(scan.valid_bytes, data.size());
  EXPECT_FALSE(scan.torn);
}

TEST(BlockLogTest, ScanStopsAtCorruptAndIncompleteFrames) {
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 2);
  std::string f0 = store::EncodeFrame(store::EncodeBlock(chain.at(0)));
  std::string f1 = store::EncodeFrame(store::EncodeBlock(chain.at(1)));

  std::string corrupt = f0 + f1;
  corrupt[f0.size() + 10] ^= 0x40;  // flip a byte inside frame 1
  store::LogScan scan = store::ScanLog(corrupt);
  EXPECT_EQ(scan.blocks.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, f0.size());
  EXPECT_TRUE(scan.torn);

  std::string incomplete = f0 + f1.substr(0, f1.size() / 2);
  scan = store::ScanLog(incomplete);
  EXPECT_EQ(scan.blocks.size(), 1u);
  EXPECT_TRUE(scan.torn);
}

TEST(BlockLogTest, ScanRejectsFramesThatDoNotChain) {
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 2);
  // A valid frame of block 1 with no block 0 before it: correct CRC, but
  // it does not extend the (empty) prefix.
  std::string data = store::EncodeFrame(store::EncodeBlock(chain.at(1)));
  store::LogScan scan = store::ScanLog(data);
  EXPECT_EQ(scan.blocks.size(), 0u);
  EXPECT_TRUE(scan.torn);
}

TEST(BlockLogTest, RecoverAndTruncateCutsAtFrameBoundary) {
  sim::Fs fs(1);
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 2);
  store::BlockLog log(&fs, "n0/blocks.log");
  log.Append(chain.at(0));
  log.Append(chain.at(1));
  log.Sync();
  uint64_t clean_size = fs.Size("n0/blocks.log");
  fs.Append("n0/blocks.log", "torn-tail-garbage");
  fs.Fsync("n0/blocks.log");

  store::LogScan kept = log.RecoverAndTruncate(/*mutate_off_by_one=*/false);
  EXPECT_EQ(kept.blocks.size(), 2u);
  EXPECT_FALSE(kept.torn);
  EXPECT_EQ(fs.Size("n0/blocks.log"), clean_size);
}

// The --mutate-recovery canary at the unit level: a torn tail makes the
// mutated truncation cut one byte into the last *valid* frame, silently
// dropping an fsynced block.
TEST(BlockLogTest, MutatedTruncationEatsAnFsyncedBlock) {
  sim::Fs fs(1);
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 2);
  store::BlockLog log(&fs, "n0/blocks.log");
  log.Append(chain.at(0));
  log.Append(chain.at(1));
  log.Sync();
  fs.Append("n0/blocks.log", "torn-tail-garbage");
  fs.Fsync("n0/blocks.log");

  store::LogScan kept = log.RecoverAndTruncate(/*mutate_off_by_one=*/true);
  EXPECT_EQ(kept.blocks.size(), 1u);  // block 1 was durable — and is gone
}

TEST(BlockLogTest, MutationIsDormantWithoutATornTail) {
  sim::Fs fs(1);
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 2);
  store::BlockLog log(&fs, "n0/blocks.log");
  log.Append(chain.at(0));
  log.Append(chain.at(1));
  log.Sync();
  // Frame-aligned log (the common case after a plain crash): the
  // off-by-one only triggers on truncation, so nothing is lost.
  store::LogScan kept = log.RecoverAndTruncate(/*mutate_off_by_one=*/true);
  EXPECT_EQ(kept.blocks.size(), 2u);
}

// --- Snapshots ---------------------------------------------------------------

TEST(SnapshotTest, CaptureEncodeDecodeRebuildRoundTrip) {
  store::KvStore kv;
  uint64_t next_version = 1;
  for (int i = 0; i < 4; ++i) {
    std::string key = std::to_string(i % 2);
    std::string value = std::to_string(i);
    store::WriteBatch b;
    b.Put("k" + key, "v" + value);
    ASSERT_TRUE(kv.ApplyBatch(b, next_version++).ok());
  }
  store::SnapshotData snap = store::CaptureSnapshot(kv, /*height=*/3, next_version);
  std::string encoded = store::EncodeSnapshot(snap);

  store::SnapshotData decoded;
  ASSERT_TRUE(store::DecodeSnapshot(encoded, &decoded));
  EXPECT_EQ(decoded.height, 3u);
  EXPECT_EQ(decoded.next_version, next_version);
  store::KvStore rebuilt;
  store::RebuildFromSnapshot(decoded, &rebuilt);
  EXPECT_EQ(store::SerializeLatestState(rebuilt),
            store::SerializeLatestState(kv));

  encoded[encoded.size() / 2] ^= 0x01;  // any corruption fails the CRC
  EXPECT_FALSE(store::DecodeSnapshot(encoded, &decoded));
}

TEST(SnapshotTest, WriteSnapshotPrunesToNewestTwo) {
  sim::Fs fs(1);
  store::KvStore kv;
  store::WriteBatch b;
  b.Put("k", "v");
  ASSERT_TRUE(kv.ApplyBatch(b, 1).ok());
  for (uint64_t h : {2u, 4u, 6u}) {
    store::WriteSnapshot(&fs, "n0", store::CaptureSnapshot(kv, h, 2));
  }
  std::string manifest;
  ASSERT_TRUE(fs.Read(store::ManifestPath("n0"), &manifest));
  std::vector<uint64_t> heights;
  ASSERT_TRUE(store::DecodeManifest(manifest, &heights));
  EXPECT_EQ(heights, (std::vector<uint64_t>{6, 4}));
  EXPECT_TRUE(fs.Exists(store::SnapshotPath("n0", 6)));
  EXPECT_TRUE(fs.Exists(store::SnapshotPath("n0", 4)));
  EXPECT_FALSE(fs.Exists(store::SnapshotPath("n0", 2)));  // pruned
}

// --- DurableLedger round trips ----------------------------------------------

TEST(DurableLedgerTest, PersistThenRecoverRebuildsChainAndState) {
  sim::Fs fs(11);
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 4);
  store::DurableLedger::Options opts;
  opts.dir = "n0";
  store::DurableLedger ledger(&fs, opts);
  ledger.Persist(chain);
  EXPECT_EQ(ledger.durable_height(), 4u);

  // Persist append+fsyncs at the commit barrier, so a plain crash loses
  // nothing.
  fs.Crash("n0/");
  store::DurableLedger::Recovered rec = store::DurableLedger::RecoverFromImage(
      fs.DurableImage("n0/"), "n0", /*mutate_off_by_one=*/false);
  ASSERT_EQ(rec.height, 4u);
  for (uint64_t h = 0; h < 4; ++h) {
    EXPECT_TRUE(rec.blocks[h].header.Hash() == chain.at(h).header.Hash());
  }
  EXPECT_TRUE(rec.used_snapshot);  // interval 2: snapshots at 2 and 4
  EXPECT_EQ(rec.state, ReplayChainState(chain, 4));
}

TEST(DurableLedgerTest, SnapshotAndFullReplayRecoveriesConverge) {
  sim::Fs fs(11);
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 5);
  store::DurableLedger::Options opts;
  opts.dir = "n0";
  store::DurableLedger ledger(&fs, opts);
  ledger.Persist(chain);

  sim::FsImage image = fs.DurableImage("n0/");
  store::DurableLedger::Recovered via_snapshot =
      store::DurableLedger::RecoverFromImage(image, "n0", false,
                                             /*use_snapshot=*/true);
  store::DurableLedger::Recovered via_replay =
      store::DurableLedger::RecoverFromImage(image, "n0", false,
                                             /*use_snapshot=*/false);
  EXPECT_TRUE(via_snapshot.used_snapshot);
  EXPECT_FALSE(via_replay.used_snapshot);
  EXPECT_EQ(via_snapshot.height, via_replay.height);
  EXPECT_EQ(via_snapshot.state, via_replay.state);
  EXPECT_EQ(via_snapshot.next_version, via_replay.next_version);
}

TEST(DurableLedgerTest, CorruptNewestSnapshotFallsBackDownTheManifest) {
  sim::Fs fs(11);
  ledger::Chain chain;
  store::DurableLedger::Options opts;
  opts.dir = "n0";
  store::DurableLedger ledger(&fs, opts);
  // Persist block by block, as the harness does on each commit, so the
  // interval-2 checkpointer leaves snapshots at heights 2 *and* 4.
  for (int i = 0; i < 4; ++i) {
    AppendOrderSensitiveBlock(&chain);
    ledger.Persist(chain);
  }

  sim::FsImage image = fs.DurableImage("n0/");
  std::string& newest = image[store::SnapshotPath("n0", 4)];
  ASSERT_FALSE(newest.empty());
  newest[newest.size() / 2] ^= 0x01;  // CRC-invalid, as after a bad crash

  store::DurableLedger::Recovered rec =
      store::DurableLedger::RecoverFromImage(image, "n0", false);
  EXPECT_TRUE(rec.used_snapshot);
  EXPECT_EQ(rec.snapshot_height, 2u);  // fell back to the older snapshot
  EXPECT_EQ(rec.height, 4u);
  EXPECT_EQ(rec.state, ReplayChainState(chain, 4));

  image.erase(store::ManifestPath("n0"));  // no manifest: full log replay
  rec = store::DurableLedger::RecoverFromImage(image, "n0", false);
  EXPECT_FALSE(rec.used_snapshot);
  EXPECT_EQ(rec.height, 4u);
  EXPECT_EQ(rec.state, ReplayChainState(chain, 4));
}

TEST(DurableLedgerTest, RecoverAndResyncReportsAndRepairsMutatedLoss) {
  sim::Fs fs(11);
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 2);
  store::DurableLedger::Options opts;
  opts.dir = "n0";
  opts.mutate_recovery = true;
  store::DurableLedger ledger(&fs, opts);
  ledger.Persist(chain);
  fs.Append(ledger.log_path(), "torn-tail-garbage");
  fs.Fsync(ledger.log_path());

  store::DurableLedger::RecoveryReport report = ledger.RecoverAndResync(chain);
  EXPECT_EQ(report.valid_frames, 2u);      // a correct scan keeps both
  EXPECT_EQ(report.recovered_height, 1u);  // the canary dropped one
  EXPECT_EQ(report.resynced_blocks, 1u);   // re-appended from the chain
  EXPECT_EQ(ledger.durable_height(), 2u);  // the store believes it healed
  // But the re-appended frame sits after the byte the mutation mutilated,
  // so the platter really holds one recoverable block: exactly the belief
  // overclaim the synced-commit checker's belief tooth flags.
  store::DurableLedger::Recovered rec = store::DurableLedger::RecoverFromImage(
      fs.DurableImage("n0/"), "n0", false);
  EXPECT_EQ(rec.height, 1u);
}

TEST(DurableLedgerTest, HonestRecoverAndResyncRestoresTheFullLog) {
  sim::Fs fs(11);
  ledger::Chain chain;
  BuildOrderSensitiveChain(&chain, 2);
  store::DurableLedger::Options opts;
  opts.dir = "n0";
  store::DurableLedger ledger(&fs, opts);
  ledger.Persist(chain);
  fs.Append(ledger.log_path(), "torn-tail-garbage");
  fs.Fsync(ledger.log_path());

  store::DurableLedger::RecoveryReport report = ledger.RecoverAndResync(chain);
  EXPECT_EQ(report.valid_frames, 2u);
  EXPECT_EQ(report.recovered_height, 2u);  // frame-boundary truncation
  EXPECT_EQ(report.resynced_blocks, 0u);
  store::DurableLedger::Recovered rec = store::DurableLedger::RecoverFromImage(
      fs.DurableImage("n0/"), "n0", false);
  EXPECT_EQ(rec.height, 2u);
  EXPECT_EQ(rec.state, ReplayChainState(chain, 2));
}

// --- Checker broken-fakes: each trips exactly its invariant ------------------

// Fixture state shared by the checker tests: a replica whose ledger is
// honestly persisted, so the *production* recovery is clean and any
// violation is attributable to the injected broken fake.
struct CheckerRig {
  sim::Fs fs{404};
  ledger::Chain chain;
  store::DurableLedger ledger;

  // Persist block by block (as the harness's commit listener does) so the
  // interval-2 checkpointer snapshots mid-chain and a log tail exists
  // past the newest snapshot.
  explicit CheckerRig(uint64_t blocks) : ledger(&fs, MakeOptions()) {
    for (uint64_t h = 0; h < blocks; ++h) {
      AppendOrderSensitiveBlock(&chain);
      ledger.Persist(chain);
    }
  }

  static store::DurableLedger::Options MakeOptions() {
    store::DurableLedger::Options opts;
    opts.dir = "n0";
    return opts;
  }

  std::vector<DurableTarget> Targets() {
    return {{"n0", &ledger, [this] { return &chain; }}};
  }
};

TEST(DurableCheckerTest, CleanLedgerPassesAllThreeCheckers) {
  CheckerRig rig(4);
  RecoveryEquivalenceChecker equivalence(&rig.fs, rig.Targets(),
                                         ProductionRecovery(false));
  SnapshotConvergenceChecker convergence(
      &rig.fs, rig.Targets(), ProductionRecovery(false),
      ProductionRecovery(false, /*use_snapshot=*/false));
  SyncedCommitDurabilityChecker synced(&rig.fs, rig.Targets(),
                                       ProductionRecovery(false));
  EXPECT_TRUE(RunChecker(&equivalence).empty());
  EXPECT_TRUE(RunChecker(&convergence).empty());
  EXPECT_TRUE(RunChecker(&synced).empty());
  EXPECT_EQ(convergence.snapshot_recoveries(), 1u);  // not vacuously clean
}

// A recovery that trusts a torn tail and "recovers" a block the replica
// never committed must trip recovery-equivalence (and only it).
TEST(DurableCheckerTest, TornTailResurrectionTripsRecoveryEquivalence) {
  CheckerRig rig(3);
  RecoverFn resurrect = [](const sim::FsImage& image, const std::string& dir) {
    store::DurableLedger::Recovered rec =
        store::DurableLedger::RecoverFromImage(image, dir, false);
    ledger::Block ghost = ledger::Block::Make(
        rec.height, rec.blocks.back().header.Hash(),
        {WriteTxn(99, "ghost", "g")});
    rec.blocks.push_back(ghost);
    rec.height = rec.blocks.size();
    return rec;
  };
  RecoveryEquivalenceChecker broken(&rig.fs, rig.Targets(), resurrect);
  std::vector<Violation> found = RunChecker(&broken);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, std::string("durable-recovery-equivalence"));
  EXPECT_NE(found[0].detail.find("resurrected"), std::string::npos);
  // The sibling invariant does not own this failure: a resurrecting
  // recovery keeps every valid frame, so synced-commit stays quiet.
  SyncedCommitDurabilityChecker synced(&rig.fs, rig.Targets(), resurrect);
  EXPECT_TRUE(RunChecker(&synced).empty());
}

// A snapshot-path recovery that loads the checkpoint but skips the log
// tail replay must trip snapshot-convergence.
TEST(DurableCheckerTest, StaleSnapshotRecoveryTripsSnapshotConvergence) {
  CheckerRig rig(3);  // snapshot at 2, log prefix at 3: a tail exists
  RecoverFn stale = [](const sim::FsImage& image, const std::string& dir) {
    store::DurableLedger::Recovered rec =
        store::DurableLedger::RecoverFromImage(image, dir, false);
    // Freeze at the snapshot: drop the tail blocks and report the
    // checkpoint's state as if it were current.
    store::SnapshotData snap;
    DecodeSnapshot(image.at(store::SnapshotPath(dir, rec.snapshot_height)),
                   &snap);
    store::KvStore kv;
    RebuildFromSnapshot(snap, &kv);
    rec.height = rec.snapshot_height;
    rec.blocks.resize(rec.height);
    rec.state = store::SerializeLatestState(kv);
    rec.next_version = snap.next_version;
    return rec;
  };
  SnapshotConvergenceChecker broken(
      &rig.fs, rig.Targets(), stale,
      ProductionRecovery(false, /*use_snapshot=*/false));
  std::vector<Violation> found = RunChecker(&broken);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, std::string("durable-snapshot-convergence"));
  EXPECT_NE(found[0].detail.find("snapshot recovery reaches height"),
            std::string::npos);
}

// A recovery that replays each block's transactions in reverse commit
// order rebuilds the right chain but the wrong bytes — the state compare
// of recovery-equivalence must catch it.
TEST(DurableCheckerTest, ReorderedIntraBlockReplayTripsRecoveryEquivalence) {
  CheckerRig rig(3);
  RecoverFn reordered = [](const sim::FsImage& image, const std::string& dir) {
    store::DurableLedger::Recovered rec =
        store::DurableLedger::RecoverFromImage(image, dir, false);
    store::KvStore kv;
    uint64_t next_version = 1;
    for (const ledger::Block& block : rec.blocks) {
      for (auto it = block.txns.rbegin(); it != block.txns.rend(); ++it) {
        txn::ExecResult result = txn::Execute(*it, txn::LatestReader(&kv));
        if (!result.writes.empty()) {
          kv.ApplyBatch(result.writes, next_version++);
        }
      }
    }
    rec.state = store::SerializeLatestState(kv);
    return rec;
  };
  RecoveryEquivalenceChecker broken(&rig.fs, rig.Targets(), reordered);
  std::vector<Violation> found = RunChecker(&broken);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, std::string("durable-recovery-equivalence"));
  EXPECT_NE(found[0].detail.find("byte-equal"), std::string::npos);
}

// A recovery that truncates past the last valid frame loses an fsynced
// commit — synced-commit's shadow-recovery tooth must catch it.
TEST(DurableCheckerTest, OverTruncatingRecoveryTripsSyncedCommit) {
  CheckerRig rig(3);
  RecoverFn over_truncate = [](const sim::FsImage& image,
                               const std::string& dir) {
    store::DurableLedger::Recovered rec =
        store::DurableLedger::RecoverFromImage(image, dir, false);
    rec.blocks.pop_back();
    rec.height = rec.blocks.size();
    return rec;
  };
  SyncedCommitDurabilityChecker broken(&rig.fs, rig.Targets(), over_truncate);
  std::vector<Violation> found = RunChecker(&broken);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].invariant, std::string("durable-synced-commit"));
  EXPECT_NE(found[0].detail.find("would lose an fsynced commit"),
            std::string::npos);
}

// The live-recovery tooth: an observed RecoverAndResync that kept fewer
// blocks than the platter's valid frames is reported on the next Check.
TEST(DurableCheckerTest, ObserveRecoveryReportsTruncationLoss) {
  sim::Fs fs(1);
  SyncedCommitDurabilityChecker checker(&fs, {}, ProductionRecovery(false));
  store::DurableLedger::RecoveryReport report;
  report.valid_frames = 3;
  report.recovered_height = 2;
  checker.ObserveRecovery(/*replica_index=*/0, report, /*now=*/55);
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].at, 55u);
  EXPECT_NE(found[0].detail.find("lost by truncation"), std::string::npos);
  EXPECT_TRUE(RunChecker(&checker).empty());  // drained once reported

  report.recovered_height = 3;  // kept everything: nothing to report
  checker.ObserveRecovery(0, report, 66);
  EXPECT_TRUE(RunChecker(&checker).empty());
}

// The shadow-recovery tooth catches the --mutate-recovery canary: on a
// durably torn tail, the mutated truncation gives back one block fewer
// than a correct scan keeps.
TEST(DurableCheckerTest, MutatedRecoveryCanaryTripsSyncedCommit) {
  CheckerRig rig(2);
  rig.fs.Append(rig.ledger.log_path(), "torn-tail-garbage");
  rig.fs.Fsync(rig.ledger.log_path());

  SyncedCommitDurabilityChecker honest(&rig.fs, rig.Targets(),
                                       ProductionRecovery(false));
  EXPECT_TRUE(RunChecker(&honest).empty());

  SyncedCommitDurabilityChecker mutated(&rig.fs, rig.Targets(),
                                        ProductionRecovery(true));
  std::vector<Violation> found = RunChecker(&mutated);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].detail.find("would lose an fsynced commit"),
            std::string::npos);
}

// The belief tooth: a store claiming more durable blocks than the platter
// holds is a bug when the disk has been honest...
TEST(DurableCheckerTest, OverclaimedDurabilityTripsSyncedCommitBelief) {
  CheckerRig rig(2);
  // Shrink the durable log behind the store's back (an "honest" loss: no
  // fault counter records it). One frame survives.
  std::string first_frame =
      store::EncodeFrame(store::EncodeBlock(rig.chain.at(0)));
  rig.fs.Truncate(rig.ledger.log_path(), first_frame.size());
  rig.fs.Fsync(rig.ledger.log_path());

  SyncedCommitDurabilityChecker checker(&rig.fs, rig.Targets(),
                                        ProductionRecovery(false));
  std::vector<Violation> found = RunChecker(&checker);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].detail.find("believes"), std::string::npos);
}

// ...but is excused when the Fs records that the disk lied (a dropped
// flush strands the belief above the platter through no fault of the
// store).
TEST(DurableCheckerTest, LostFlushGatesTheBeliefCheck) {
  CheckerRig rig(1);
  rig.fs.SetLoseFlushes("n0/", true);
  AppendBlock(&rig.chain, {WriteTxn(50, "k0", "late")});
  rig.ledger.Persist(rig.chain);  // believes 2; platter still holds 1
  ASSERT_EQ(rig.ledger.durable_height(), 2u);
  ASSERT_GE(rig.fs.fsyncs_dropped("n0/"), 1u);

  SyncedCommitDurabilityChecker synced(&rig.fs, rig.Targets(),
                                       ProductionRecovery(false));
  EXPECT_TRUE(RunChecker(&synced).empty());
  // And what *is* on the platter still recovers equivalently.
  RecoveryEquivalenceChecker equivalence(&rig.fs, rig.Targets(),
                                         ProductionRecovery(false));
  EXPECT_TRUE(RunChecker(&equivalence).empty());
}

}  // namespace
}  // namespace pbc::check
