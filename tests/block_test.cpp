// Unit + property tests for the block pipeline (src/block): Fabric-style
// cut rules, sealed-block hash stability, the classified conflict graph,
// the shared MVCC gate, and the serial/parallel validator equivalence the
// design leans on (DESIGN.md §11).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "block/builder.h"
#include "block/conflict.h"
#include "block/store.h"
#include "block/validator.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace pbc::block {
namespace {

using txn::Op;
using txn::Transaction;

Transaction T(txn::TxnId id, std::vector<Op> ops) {
  Transaction t;
  t.id = id;
  t.ops = std::move(ops);
  return t;
}

// Canonical latest-state dump, so "same state" comparisons are literal
// byte comparisons.
std::string DumpState(const store::KvStore& s) {
  std::string out;
  s.ForEachLatest(
      [&out](const store::Key& k, const store::VersionedValue& v) {
        out += k + "=" + v.value + "@" + std::to_string(v.version) + ";";
      });
  out += "last=" + std::to_string(s.last_committed());
  return out;
}

// ---------------------------------------------------------------------------
// Cut rules.
// ---------------------------------------------------------------------------

TEST(CutRulesTest, NoCutBelowSizeAndDelay) {
  CutRules rules{/*max_txns=*/4, /*max_delay_us=*/5000};
  EXPECT_FALSE(rules.CutDue(0, 0, 1'000'000));  // nothing pending
  EXPECT_FALSE(rules.CutDue(3, 1000, 5999));    // 3 < 4, waited 4999 < 5000
}

TEST(CutRulesTest, SizeCutFiresAtCapacity) {
  CutRules rules{4, 5000};
  EXPECT_TRUE(rules.CutDue(4, 0, 0));  // full block cuts immediately
  EXPECT_TRUE(rules.CutDue(9, 0, 0));
}

TEST(CutRulesTest, TimerCutFiresOnceOldestHasWaited) {
  CutRules rules{100, 5000};
  EXPECT_FALSE(rules.CutDue(1, 1000, 5999));
  EXPECT_TRUE(rules.CutDue(1, 1000, 6000));
}

TEST(CutRulesTest, ZeroDelayDisablesTimerCut) {
  CutRules rules{4, 0};
  EXPECT_FALSE(rules.CutDue(3, 0, 3'600'000'000ULL));
  EXPECT_TRUE(rules.CutDue(4, 0, 0));  // size rule still applies
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

TEST(BlockBuilderTest, TakeCutEmptyUntilARuleFires) {
  BlockBuilder b(CutRules{4, 5000});
  for (int i = 0; i < 3; ++i) b.Add(T(i, {Op::Increment("k", 1)}), 0);
  EXPECT_TRUE(b.TakeCut(100).empty());
  EXPECT_EQ(b.pending(), 3u);
  b.Add(T(3, {Op::Increment("k", 1)}), 100);
  auto cut = b.TakeCut(100);  // size cut
  ASSERT_EQ(cut.size(), 4u);
  EXPECT_EQ(b.pending(), 0u);
}

TEST(BlockBuilderTest, SizeCutCapsAtMaxTxnsAndPreservesArrivalOrder) {
  BlockBuilder b(CutRules{4, 5000});
  for (int i = 0; i < 10; ++i) b.Add(T(100 + i, {Op::Increment("k", 1)}), 0);
  auto cut = b.TakeCut(0);
  ASSERT_EQ(cut.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(cut[i].id, txn::TxnId(100 + i));
  EXPECT_EQ(b.pending(), 6u);
}

TEST(BlockBuilderTest, TimerCutTakesPartialBlock) {
  BlockBuilder b(CutRules{100, 5000});
  b.Add(T(1, {Op::Increment("k", 1)}), 0);
  b.Add(T(2, {Op::Increment("k", 1)}), 2000);
  EXPECT_TRUE(b.TakeCut(4999).empty());
  auto cut = b.TakeCut(5000);  // oldest waited exactly max_delay
  EXPECT_EQ(cut.size(), 2u);
}

TEST(BlockBuilderTest, FlushOnIdleDrainsRegardlessOfRules) {
  BlockBuilder b(CutRules{100, 0});
  b.Add(T(1, {Op::Increment("k", 1)}), 0);
  b.Add(T(2, {Op::Increment("k", 1)}), 0);
  EXPECT_TRUE(b.TakeCut(1'000'000).empty());  // no rule fires
  EXPECT_EQ(b.Flush().size(), 2u);
  EXPECT_TRUE(b.Flush().empty());
}

// ---------------------------------------------------------------------------
// Sealed-block identity (what consensus orders in place of the body).
// ---------------------------------------------------------------------------

TEST(BlockSealTest, HashIsStableForIdenticalContent) {
  std::vector<Transaction> txns = {T(1, {Op::Write("a", "x")}),
                                   T(2, {Op::Write("b", "y")})};
  ledger::Block b1 = BlockBuilder::Seal(3, crypto::Hash256{}, txns, 42);
  ledger::Block b2 = BlockBuilder::Seal(3, crypto::Hash256{}, txns, 42);
  EXPECT_EQ(b1.header.Hash(), b2.header.Hash());
  EXPECT_TRUE(b1.VerifyTxnRoot());
}

TEST(BlockSealTest, HashCommitsToOrderHeightAndTxns) {
  std::vector<Transaction> txns = {T(1, {Op::Write("a", "x")}),
                                   T(2, {Op::Write("b", "y")})};
  std::vector<Transaction> swapped = {txns[1], txns[0]};
  ledger::Block base = BlockBuilder::Seal(3, crypto::Hash256{}, txns, 42);
  EXPECT_NE(base.header.Hash(),
            BlockBuilder::Seal(3, crypto::Hash256{}, swapped, 42)
                .header.Hash());
  EXPECT_NE(base.header.Hash(),
            BlockBuilder::Seal(4, crypto::Hash256{}, txns, 42).header.Hash());
}

TEST(BlockStoreTest, PutGetIsIdempotentByHeaderHash) {
  BlockStore store;
  ledger::Block b = BlockBuilder::Seal(
      0, crypto::Hash256{}, {T(1, {Op::Write("a", "x")})}, 0);
  crypto::Hash256 h = b.header.Hash();
  EXPECT_TRUE(store.Put(b));
  EXPECT_TRUE(store.Put(b));  // re-insert is fine
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.Contains(h));
  EXPECT_EQ(store.Get(h)->txns.size(), 1u);
}

TEST(BlockStoreTest, RejectsBodyThatFailsItsOwnHeader) {
  ledger::Block b = BlockBuilder::Seal(
      0, crypto::Hash256{}, {T(1, {Op::Write("a", "x")})}, 0);
  b.txns[0] = T(99, {Op::Write("a", "forged")});  // header root now wrong
  BlockStore store;
  EXPECT_FALSE(store.Put(b));
  EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------------------
// Conflict graph.
// ---------------------------------------------------------------------------

TEST(ConflictGraphTest, WrEdgeFromWriterToLaterReader) {
  auto g = ConflictGraph::Build(
      {T(0, {Op::Write("a", "x")}), T(1, {Op::Read("a")})});
  EXPECT_EQ(g.wr_edges(), 1u);
  EXPECT_EQ(g.rw_edges(), 0u);
  EXPECT_EQ(g.ww_edges(), 0u);
  EXPECT_TRUE(g.HasWrEdge(0, 1));
}

TEST(ConflictGraphTest, RwEdgeFromReaderToLaterWriter) {
  auto g = ConflictGraph::Build(
      {T(0, {Op::Read("a")}), T(1, {Op::Write("a", "x")})});
  EXPECT_EQ(g.rw_edges(), 1u);
  EXPECT_EQ(g.wr_edges(), 0u);
  EXPECT_TRUE(g.HasRwEdge(0, 1));
}

TEST(ConflictGraphTest, WwEdgeBetweenSuccessiveWriters) {
  auto g = ConflictGraph::Build(
      {T(0, {Op::Write("a", "x")}), T(1, {Op::Write("a", "y")})});
  EXPECT_EQ(g.ww_edges(), 1u);
  EXPECT_TRUE(g.HasWwEdge(0, 1));
}

TEST(ConflictGraphTest, IndependentTxnsShareOneWideLevel) {
  std::vector<Transaction> txns;
  for (int i = 0; i < 6; ++i) {
    txns.push_back(T(i, {Op::Write("k" + std::to_string(i), "v")}));
  }
  auto g = ConflictGraph::Build(txns);
  EXPECT_EQ(g.num_edges(), 0u);
  ASSERT_EQ(g.Levels().size(), 1u);
  EXPECT_EQ(g.MaxLevelWidth(), 6u);
}

TEST(ConflictGraphTest, ConflictChainSerializesIntoLevels) {
  auto g = ConflictGraph::Build({T(0, {Op::Write("a", "x")}),
                                 T(1, {Op::Read("a"), Op::Write("b", "y")}),
                                 T(2, {Op::Read("b")})});
  EXPECT_EQ(g.Levels().size(), 3u);
  EXPECT_EQ(g.MaxLevelWidth(), 1u);
}

// ---------------------------------------------------------------------------
// The MVCC gate: the explicit snapshot/commit boundary.
// ---------------------------------------------------------------------------

std::vector<Endorsed> EndorseAgainstSnapshot(
    const std::vector<Transaction>& txns, const store::KvStore& store) {
  std::vector<Endorsed> endorsed(txns.size());
  store::Version snapshot = store.last_committed();
  for (size_t i = 0; i < txns.size(); ++i) {
    endorsed[i].txn = &txns[i];
    endorsed[i].result =
        txn::Execute(txns[i], txn::SnapshotReader(&store, snapshot));
  }
  return endorsed;
}

// Regression pin for the intra-block conflict semantics: both txns endorse
// against the pre-block snapshot, but the gate re-reads committed state at
// each txn's turn — so a read of a key an earlier valid txn wrote aborts.
TEST(GateAndCommitTest, IntraBlockWriteInvalidatesLaterReaderInBlockOrder) {
  store::KvStore store;
  std::vector<Transaction> txns = {
      T(1, {Op::Write("k", "v1")}),
      T(2, {Op::Read("k"), Op::Write("m", "v2")}),
  };
  auto endorsed = EndorseAgainstSnapshot(txns, store);
  EXPECT_EQ(GateAndCommit(&endorsed, {0, 1}, &store), 1u);
  EXPECT_TRUE(endorsed[0].valid);
  EXPECT_FALSE(endorsed[1].valid);  // read k@0, but k is now @1
  EXPECT_FALSE(store.Get("m").ok());
}

// Same endorsements, reader-first order: both commit. This is the hook
// Fabric++/FabricSharp reorder plans feed.
TEST(GateAndCommitTest, ReorderedValidationOrderSavesTheReader) {
  store::KvStore store;
  std::vector<Transaction> txns = {
      T(1, {Op::Write("k", "v1")}),
      T(2, {Op::Read("k"), Op::Write("m", "v2")}),
  };
  auto endorsed = EndorseAgainstSnapshot(txns, store);
  EXPECT_EQ(GateAndCommit(&endorsed, {1, 0}, &store), 2u);
  EXPECT_TRUE(endorsed[0].valid);
  EXPECT_TRUE(endorsed[1].valid);
  EXPECT_EQ(store.Get("k").ValueOrDie().value, "v1");
  EXPECT_EQ(store.Get("m").ValueOrDie().value, "v2");
}

// Fabric's MVCC check only validates reads: blind write-write conflicts
// both commit, last writer (in validation order) wins.
TEST(GateAndCommitTest, BlindWriteWriteConflictBothCommit) {
  store::KvStore store;
  std::vector<Transaction> txns = {
      T(1, {Op::Write("k", "first")}),
      T(2, {Op::Write("k", "second")}),
  };
  auto endorsed = EndorseAgainstSnapshot(txns, store);
  EXPECT_EQ(GateAndCommit(&endorsed, {0, 1}, &store), 2u);
  EXPECT_EQ(store.Get("k").ValueOrDie().value, "second");
}

// ---------------------------------------------------------------------------
// Serial/parallel equivalence (the tentpole property).
// ---------------------------------------------------------------------------

std::vector<Transaction> RandomBlock(Rng* rng, size_t n, txn::TxnId base) {
  std::vector<Transaction> txns;
  for (size_t i = 0; i < n; ++i) {
    std::vector<Op> ops;
    size_t num_ops = 1 + rng->NextU64(3);
    for (size_t o = 0; o < num_ops; ++o) {
      std::string key = "k" + std::to_string(rng->NextU64(8));
      switch (rng->NextU64(3)) {
        case 0:
          ops.push_back(Op::Read(key));
          break;
        case 1:
          ops.push_back(Op::Write(key, "v" + std::to_string(rng->NextU64())));
          break;
        default:
          ops.push_back(Op::Increment(key, 1 + rng->NextU64(9)));
          break;
      }
    }
    txns.push_back(T(base + i, std::move(ops)));
  }
  return txns;
}

// ParallelValidator must be byte-identical to SerialValidator — same
// validity flags, same final state, same commit counters — for every seed
// and every pool width.
TEST(ValidatorEquivalenceTest, ParallelMatchesSerialAcrossSeedsAndJobs) {
  constexpr size_t kBlocks = 3;
  constexpr size_t kTxnsPerBlock = 40;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    // Serial reference.
    store::KvStore serial_store;
    SerialValidator serial(&serial_store);
    std::vector<std::vector<bool>> serial_flags;
    {
      Rng rng(seed);
      for (size_t b = 0; b < kBlocks; ++b) {
        serial_flags.push_back(serial.ProcessBlock(
            RandomBlock(&rng, kTxnsPerBlock, b * 1000)));
      }
    }
    std::string golden = DumpState(serial_store);

    for (size_t jobs : {1u, 2u, 8u}) {
      ThreadPool pool(jobs);
      store::KvStore par_store;
      ParallelValidator parallel(&pool, &par_store);
      Rng rng(seed);
      for (size_t b = 0; b < kBlocks; ++b) {
        EXPECT_EQ(parallel.ProcessBlock(
                      RandomBlock(&rng, kTxnsPerBlock, b * 1000)),
                  serial_flags[b])
            << "seed=" << seed << " jobs=" << jobs << " block=" << b;
      }
      EXPECT_EQ(DumpState(par_store), golden)
          << "seed=" << seed << " jobs=" << jobs;
      EXPECT_EQ(parallel.stats().committed, serial.stats().committed);
      EXPECT_EQ(parallel.stats().aborted, serial.stats().aborted);
    }
    EXPECT_EQ(serial.stats().txns, kBlocks * kTxnsPerBlock);
  }
}

// The parallel validator also reports its scheduling shape.
TEST(ValidatorEquivalenceTest, ParallelValidatorReportsConflictShape) {
  ThreadPool pool(4);
  store::KvStore store;
  ParallelValidator validator(&pool, &store);
  validator.ProcessBlock({T(0, {Op::Write("a", "x")}),
                          T(1, {Op::Read("a"), Op::Write("b", "y")}),
                          T(2, {Op::Write("c", "z")})});
  EXPECT_EQ(validator.stats().blocks, 1u);
  EXPECT_GE(validator.stats().conflict_edges, 1u);
  EXPECT_EQ(validator.stats().levels, 2u);       // {t0,t2} then {t1}
  EXPECT_EQ(validator.stats().max_level_width, 2u);
}

}  // namespace
}  // namespace pbc::block
