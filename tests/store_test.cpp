#include <gtest/gtest.h>

#include "store/kv_store.h"

namespace pbc::store {
namespace {

TEST(KvStoreTest, GetMissingKeyIsNotFound) {
  KvStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
}

TEST(KvStoreTest, PutGetRoundTrip) {
  KvStore store;
  WriteBatch batch;
  batch.Put("a", "1");
  ASSERT_TRUE(store.ApplyBatch(batch, 1).ok());
  auto r = store.Get("a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().value, "1");
  EXPECT_EQ(r.ValueOrDie().version, 1u);
}

TEST(KvStoreTest, CommitVersionMustIncrease) {
  KvStore store;
  WriteBatch batch;
  batch.Put("a", "1");
  ASSERT_TRUE(store.ApplyBatch(batch, 5).ok());
  EXPECT_FALSE(store.ApplyBatch(batch, 5).ok());
  EXPECT_FALSE(store.ApplyBatch(batch, 4).ok());
  EXPECT_TRUE(store.ApplyBatch(batch, 6).ok());
}

TEST(KvStoreTest, DeleteHidesKeyButBumpsVersion) {
  KvStore store;
  WriteBatch put;
  put.Put("a", "1");
  store.ApplyBatch(put, 1);
  WriteBatch del;
  del.Delete("a");
  store.ApplyBatch(del, 2);
  EXPECT_TRUE(store.Get("a").status().IsNotFound());
  EXPECT_EQ(store.VersionOf("a"), 2u);  // deletes are versioned writes
}

TEST(KvStoreTest, SnapshotReadsSeeOldVersions) {
  KvStore store;
  for (Version v = 1; v <= 5; ++v) {
    WriteBatch b;
    b.Put("k", "v" + std::to_string(v));
    store.ApplyBatch(b, v);
  }
  for (Version v = 1; v <= 5; ++v) {
    auto r = store.GetAt("k", v);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie().value, "v" + std::to_string(v));
  }
  EXPECT_TRUE(store.GetAt("k", 0).status().IsNotFound());
}

TEST(KvStoreTest, SnapshotBeforeCreationIsNotFound) {
  KvStore store;
  WriteBatch b;
  b.Put("late", "x");
  store.ApplyBatch(b, 10);
  EXPECT_TRUE(store.GetAt("late", 9).status().IsNotFound());
  EXPECT_TRUE(store.GetAt("late", 10).ok());
}

TEST(KvStoreTest, SnapshotSeesThroughLaterDelete) {
  KvStore store;
  WriteBatch b1;
  b1.Put("k", "v");
  store.ApplyBatch(b1, 1);
  WriteBatch b2;
  b2.Delete("k");
  store.ApplyBatch(b2, 2);
  EXPECT_TRUE(store.GetAt("k", 1).ok());
  EXPECT_TRUE(store.GetAt("k", 2).status().IsNotFound());
}

TEST(KvStoreTest, ValidateReadSetDetectsStaleReads) {
  KvStore store;
  WriteBatch b1;
  b1.Put("k", "v1");
  store.ApplyBatch(b1, 1);

  std::vector<ReadAccess> reads = {{"k", 1}};
  EXPECT_TRUE(store.ValidateReadSet(reads));

  WriteBatch b2;
  b2.Put("k", "v2");
  store.ApplyBatch(b2, 2);
  EXPECT_FALSE(store.ValidateReadSet(reads));  // Fabric MVCC check fails
}

TEST(KvStoreTest, ValidateReadSetOfNeverWrittenKey) {
  KvStore store;
  std::vector<ReadAccess> reads = {{"ghost", kNeverWritten}};
  EXPECT_TRUE(store.ValidateReadSet(reads));
  WriteBatch b;
  b.Put("ghost", "now exists");
  store.ApplyBatch(b, 1);
  EXPECT_FALSE(store.ValidateReadSet(reads));
}

TEST(KvStoreTest, LastWriterWinsWithinBatch) {
  KvStore store;
  WriteBatch b;
  b.Put("k", "first");
  b.Put("k", "second");
  store.ApplyBatch(b, 1);
  EXPECT_EQ(store.Get("k").ValueOrDie().value, "second");
}

TEST(KvStoreTest, SameLatestStateIgnoresHistory) {
  KvStore a, b;
  WriteBatch w1;
  w1.Put("k", "v");
  a.ApplyBatch(w1, 1);
  // b reaches the same state via a different history.
  WriteBatch w2;
  w2.Put("k", "other");
  b.ApplyBatch(w2, 1);
  WriteBatch w3;
  w3.Put("k", "v");
  b.ApplyBatch(w3, 2);
  EXPECT_TRUE(a.SameLatestState(b));
}

TEST(KvStoreTest, SameLatestStateDetectsDivergence) {
  KvStore a, b;
  WriteBatch w;
  w.Put("k", "v1");
  a.ApplyBatch(w, 1);
  WriteBatch w2;
  w2.Put("k", "v2");
  b.ApplyBatch(w2, 1);
  EXPECT_FALSE(a.SameLatestState(b));
}

TEST(KvStoreTest, ForEachLatestVisitsLiveKeysInOrder) {
  KvStore store;
  WriteBatch b;
  b.Put("b", "2");
  b.Put("a", "1");
  b.Put("c", "3");
  store.ApplyBatch(b, 1);
  WriteBatch d;
  d.Delete("b");
  store.ApplyBatch(d, 2);
  std::vector<Key> keys;
  store.ForEachLatest([&](const Key& k, const VersionedValue&) {
    keys.push_back(k);
  });
  EXPECT_EQ(keys, (std::vector<Key>{"a", "c"}));
}

// --- LockTable --------------------------------------------------------------

TEST(LockTableTest, SharedLocksCoexist) {
  LockTable lt;
  EXPECT_TRUE(lt.LockShared("k", 1).ok());
  EXPECT_TRUE(lt.LockShared("k", 2).ok());
  EXPECT_TRUE(lt.IsLocked("k"));
}

TEST(LockTableTest, ExclusiveExcludesAll) {
  LockTable lt;
  ASSERT_TRUE(lt.LockExclusive("k", 1).ok());
  EXPECT_TRUE(lt.LockShared("k", 2).IsConflict());
  EXPECT_TRUE(lt.LockExclusive("k", 2).IsConflict());
}

TEST(LockTableTest, SharedBlocksExclusiveFromOther) {
  LockTable lt;
  ASSERT_TRUE(lt.LockShared("k", 1).ok());
  EXPECT_TRUE(lt.LockExclusive("k", 2).IsConflict());
}

TEST(LockTableTest, UpgradeWhenSoleHolder) {
  LockTable lt;
  ASSERT_TRUE(lt.LockShared("k", 1).ok());
  EXPECT_TRUE(lt.LockExclusive("k", 1).ok());
  EXPECT_TRUE(lt.LockShared("k", 2).IsConflict());
}

TEST(LockTableTest, UpgradeDeniedWithTwoSharers) {
  LockTable lt;
  ASSERT_TRUE(lt.LockShared("k", 1).ok());
  ASSERT_TRUE(lt.LockShared("k", 2).ok());
  EXPECT_TRUE(lt.LockExclusive("k", 1).IsConflict());
}

TEST(LockTableTest, UnlockAllReleasesEverything) {
  LockTable lt;
  lt.LockExclusive("a", 1);
  lt.LockShared("b", 1);
  lt.LockShared("b", 2);
  lt.UnlockAll(1);
  EXPECT_FALSE(lt.IsLocked("a"));
  EXPECT_TRUE(lt.IsLocked("b"));  // txn 2 still holds b
  EXPECT_TRUE(lt.LockExclusive("a", 3).ok());
}

TEST(LockTableTest, ReentrantAcquisitionIsIdempotent) {
  LockTable lt;
  ASSERT_TRUE(lt.LockShared("k", 1).ok());
  ASSERT_TRUE(lt.LockShared("k", 1).ok());
  lt.UnlockAll(1);
  EXPECT_FALSE(lt.IsLocked("k"));
}

}  // namespace
}  // namespace pbc::store
