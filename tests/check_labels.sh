#!/bin/sh
# Asserts the CTest tier-label invariant (see tests/CMakeLists.txt):
# every registered test carries exactly one tier — tier1 or slow — so
# `ctest -L tier1` + `ctest -L slow` together cover the whole suite and
# never double-run a test. A test with no tier label silently falls out
# of both CI lanes; one with both would run twice in the nightly.
#
# Usage: check_labels.sh <ctest-binary>   (run from the build directory)
set -eu

CTEST="${1:-ctest}"

count() {
  # `ctest -N` lists tests without running them and ends with
  # "Total Tests: N". Multiple -L flags intersect.
  "$CTEST" -N "$@" | sed -n 's/^Total Tests: *//p'
}

total=$(count)
tier1=$(count -L tier1)
slow=$(count -L slow)
both=$(count -L tier1 -L slow)

echo "labels: total=$total tier1=$tier1 slow=$slow both=$both"

if [ "$total" -eq 0 ]; then
  echo "FAIL: ctest -N found no tests (wrong working directory?)" >&2
  exit 1
fi
if [ "$both" -ne 0 ]; then
  echo "FAIL: $both test(s) carry both tier1 and slow" >&2
  "$CTEST" -N -L tier1 -L slow >&2
  exit 1
fi
if [ "$((tier1 + slow))" -ne "$total" ]; then
  echo "FAIL: $((total - tier1 - slow)) test(s) carry neither tier1 nor slow" >&2
  exit 1
fi
echo "OK: every test carries exactly one of tier1/slow"
