#include <gtest/gtest.h>

#include "consensus/cluster.h"
#include "consensus/paxos.h"

namespace pbc::consensus {
namespace {

constexpr sim::Time kMaxSimTime = 120'000'000;

struct World {
  explicit World(uint64_t seed) : sim(seed), net(&sim) {
    net.SetDefaultLatency({500, 200});
  }
  sim::Simulator sim;
  sim::Network net;
  crypto::KeyRegistry registry;
};

bool RunUntilCommitted(World* w, Cluster<PaxosReplica>* cluster,
                       uint64_t expect, const std::vector<size_t>& skip = {}) {
  return w->sim.RunUntil(
      [&] { return cluster->MinCommitted(skip) >= expect; }, kMaxSimTime);
}

TEST(PaxosTest, CommitsSubmittedTransactions) {
  World w(1);
  Cluster<PaxosReplica> cluster(&w.net, &w.registry, 3);
  w.net.Start();
  for (int i = 0; i < 20; ++i) {
    cluster.Submit(MakeKvTxn(i + 1, "k" + std::to_string(i % 5), "v"));
  }
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(PaxosTest, ChainsIdenticalAcrossReplicas) {
  World w(2);
  Cluster<PaxosReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  for (int i = 0; i < 50; ++i) {
    cluster.Submit(MakeKvTxn(i + 1, "k" + std::to_string(i % 7), "v"));
  }
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 50));
  w.sim.Run(w.sim.now() + 2'000'000);
  for (size_t i = 1; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.replica(0)->chain().PrefixConsistentWith(
        cluster.replica(i)->chain()));
  }
  EXPECT_TRUE(cluster.replica(0)->chain().Audit().ok());
}

TEST(PaxosTest, SingleLeaderEmerges) {
  World w(3);
  Cluster<PaxosReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  for (int i = 0; i < 5; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 5));
  int leaders = 0;
  for (size_t i = 0; i < 5; ++i) {
    leaders += cluster.replica(i)->IsLeader() ? 1 : 0;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(PaxosTest, SurvivesMinorityCrash) {
  World w(4);
  Cluster<PaxosReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  w.net.Crash(3);
  w.net.Crash(4);
  for (int i = 0; i < 20; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 20, {3, 4}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(PaxosTest, LeaderCrashTriggersNewBallot) {
  World w(5);
  Cluster<PaxosReplica> cluster(&w.net, &w.registry, 3);
  w.net.Start();
  for (int i = 0; i < 5; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 5));
  size_t leader = 99;
  for (size_t i = 0; i < 3; ++i) {
    if (cluster.replica(i)->IsLeader()) leader = i;
  }
  ASSERT_NE(leader, 99u);
  w.net.Crash(static_cast<sim::NodeId>(leader));
  for (int i = 0; i < 5; ++i) {
    cluster.Submit(MakeKvTxn(100 + i, "k2", "v"));
  }
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10, {leader}));
  EXPECT_TRUE(cluster.ChainsConsistent());
}

TEST(PaxosTest, MinorityPartitionCannotCommit) {
  World w(6);
  Cluster<PaxosReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  for (int i = 0; i < 5; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 5));
  w.net.Partition({{0, 1}, {2, 3, 4}});
  uint64_t before0 = cluster.replica(0)->committed_txns();
  for (int i = 0; i < 5; ++i) cluster.Submit(MakeKvTxn(100 + i, "k2", "v"));
  w.sim.Run(w.sim.now() + 5'000'000);
  EXPECT_EQ(cluster.replica(0)->committed_txns(), before0);
  // Majority side still commits, and healing converges everyone.
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 10, {0, 1}));
  w.net.Heal();
  w.sim.Run(w.sim.now() + 30'000'000);
  EXPECT_TRUE(cluster.ChainsConsistent());
}

class PaxosPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PaxosPropertyTest, SafeAndLiveUnderRandomCrash) {
  uint64_t seed = GetParam();
  World w(seed ^ 0xFACE);
  w.net.SetDefaultLatency({300, 900});
  Cluster<PaxosReplica> cluster(&w.net, &w.registry, 5);
  w.net.Start();
  for (int i = 0; i < 25; ++i) cluster.Submit(MakeKvTxn(i + 1, "k", "v"));
  size_t victim = seed % 5;
  w.sim.Schedule(1000 + seed * 173 % 30000,
                 [&w, victim] { w.net.Crash(victim); });
  ASSERT_TRUE(RunUntilCommitted(&w, &cluster, 25, {victim}))
      << "seed=" << seed;
  EXPECT_TRUE(cluster.ChainsConsistent()) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaxosPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

}  // namespace
}  // namespace pbc::consensus
