#include <gtest/gtest.h>

#include <set>

#include "confidential/caper.h"
#include "shard/common.h"
#include "workload/workload.h"

namespace pbc::workload {
namespace {

TEST(ZipfianKvTest, NoContentionMeansDisjointishKeys) {
  ZipfianKv::Options opt;
  opt.hot_probability = 0.0;
  opt.cold_keys = 100000;
  ZipfianKv gen(opt, 1);
  auto block = gen.Block(50);
  EXPECT_EQ(block.size(), 50u);
  std::set<store::Key> keys;
  size_t total = 0;
  for (const auto& t : block) {
    for (const auto& k : t.DeclaredWrites()) {
      keys.insert(k);
      ++total;
    }
  }
  // With 100k cold keys, 100 draws rarely collide.
  EXPECT_GT(keys.size(), total * 9 / 10);
}

TEST(ZipfianKvTest, FullContentionHitsHotKeys) {
  ZipfianKv::Options opt;
  opt.hot_probability = 1.0;
  opt.hot_keys = 2;
  ZipfianKv gen(opt, 1);
  auto block = gen.Block(20);
  for (const auto& t : block) {
    for (const auto& k : t.DeclaredWrites()) {
      EXPECT_TRUE(k.rfind("hot", 0) == 0) << k;
    }
  }
}

TEST(ZipfianKvTest, ComputeRoundsAttached) {
  ZipfianKv::Options opt;
  opt.compute_rounds = 50;
  ZipfianKv gen(opt, 1);
  auto t = gen.Next();
  bool has_compute = false;
  for (const auto& op : t.ops) {
    if (op.code == txn::OpCode::kCompute) {
      has_compute = true;
      EXPECT_EQ(op.delta, 50);
    }
  }
  EXPECT_TRUE(has_compute);
}

TEST(ZipfianKvTest, DeterministicFromSeed) {
  ZipfianKv::Options opt;
  opt.hot_probability = 0.3;
  ZipfianKv a(opt, 7), b(opt, 7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Next().Digest(), b.Next().Digest());
  }
}

TEST(SmallBankTest, DepositsSumToExpectedTotal) {
  SmallBank bank(10, 100, 1);
  auto deposits = bank.InitialDeposits();
  EXPECT_EQ(deposits.size(), 10u);
  int64_t total = 0;
  for (const auto& t : deposits) total += t.ops[0].delta;
  EXPECT_EQ(total, bank.expected_total());
}

TEST(SmallBankTest, TransfersNeverSelfTransfer) {
  SmallBank bank(3, 100, 2);
  for (int i = 0; i < 100; ++i) {
    auto t = bank.NextTransfer();
    ASSERT_EQ(t.ops.size(), 1u);
    EXPECT_NE(t.ops[0].key, t.ops[0].key2);
  }
}

TEST(SupplyChainTest, MixMatchesFraction) {
  SupplyChain chain(4, 0.25, 3);
  int cross = 0;
  const int kSteps = 2000;
  for (int i = 0; i < kSteps; ++i) {
    if (chain.Next().cross) ++cross;
  }
  EXPECT_NEAR(static_cast<double>(cross) / kSteps, 0.25, 0.05);
}

TEST(SupplyChainTest, InternalStepsStayInNamespace) {
  SupplyChain chain(4, 0.0, 3);
  for (int i = 0; i < 50; ++i) {
    auto step = chain.Next();
    ASSERT_FALSE(step.cross);
    for (const auto& k : step.txn.DeclaredWrites()) {
      EXPECT_TRUE(pbc::confidential::CaperSystem::IsPrivateKeyOf(
          k, step.enterprise))
          << k;
    }
  }
}

TEST(ShardedTransfersTest, CrossFractionRespected) {
  ShardedTransfers gen(4, 100, 1000, 0.3, 5);
  int cross = 0;
  const int kTxns = 2000;
  for (int i = 0; i < kTxns; ++i) {
    auto t = gen.NextTransfer();
    auto shards = pbc::shard::ShardsOf(t, 4);
    if (shards.size() > 1) ++cross;
    EXPECT_LE(shards.size(), 2u);
  }
  EXPECT_NEAR(static_cast<double>(cross) / kTxns, 0.3, 0.05);
}

TEST(ShardedTransfersTest, ZeroCrossStaysLocal) {
  ShardedTransfers gen(4, 100, 1000, 0.0, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pbc::shard::ShardsOf(gen.NextTransfer(), 4).size(), 1u);
  }
}

}  // namespace
}  // namespace pbc::workload
