// Unit tests for tools/detlint (the determinism & safety linter) plus
// the tier-1 self-scan: src/ + bench/ must lint clean with the repo's
// checked-in allowlist, so a PR that introduces a wall-clock read or an
// unordered iteration fails here before review.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "detlint.h"

namespace pbc::detlint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& src,
                          const Options& options = {}) {
  return LintSource(path, src, options);
}

std::vector<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- wall-clock -------------------------------------------------------------

TEST(DetlintWallClock, FlagsChronoClocks) {
  auto f = Lint("src/foo.cc",
                "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "wall-clock");
  EXPECT_EQ(f[0].line, 1u);
  EXPECT_TRUE(HasRule(
      Lint("src/foo.cc", "std::chrono::system_clock::now();"), "wall-clock"));
  EXPECT_TRUE(HasRule(
      Lint("src/foo.cc", "std::chrono::high_resolution_clock::now();"),
      "wall-clock"));
}

TEST(DetlintWallClock, FlagsCTimeCalls) {
  EXPECT_TRUE(HasRule(Lint("src/f.cc", "time_t t = time(nullptr);"),
                      "wall-clock"));
  EXPECT_TRUE(HasRule(Lint("src/f.cc", "time_t t = std::time(nullptr);"),
                      "wall-clock"));
  EXPECT_TRUE(HasRule(
      Lint("src/f.cc", "clock_gettime(CLOCK_MONOTONIC, &ts);"), "wall-clock"));
  EXPECT_TRUE(
      HasRule(Lint("src/f.cc", "gettimeofday(&tv, nullptr);"), "wall-clock"));
}

TEST(DetlintWallClock, MemberAndForeignScopeCallsAreClean) {
  EXPECT_TRUE(Lint("src/f.cc", "uint64_t t = sim.time();").empty());
  EXPECT_TRUE(Lint("src/f.cc", "uint64_t t = sim->time();").empty());
  EXPECT_TRUE(Lint("src/f.cc", "uint64_t t = Simulator::time();").empty());
  // `time` as a plain identifier (not a call) is fine.
  EXPECT_TRUE(Lint("src/f.cc", "uint64_t time = 0; Use(time);").empty());
}

TEST(DetlintWallClock, DurationArithmeticIsClean) {
  // Banning the *clocks* must not ban simulated-time bookkeeping.
  EXPECT_TRUE(
      Lint("src/f.cc",
           "auto d = std::chrono::duration_cast<std::chrono::"
           "microseconds>(x);")
          .empty());
}

// --- os-entropy -------------------------------------------------------------

TEST(DetlintOsEntropy, FlagsRandomDeviceAndLibcRand) {
  EXPECT_TRUE(
      HasRule(Lint("src/f.cc", "std::random_device rd;"), "os-entropy"));
  EXPECT_TRUE(HasRule(Lint("src/f.cc", "int x = rand();"), "os-entropy"));
  EXPECT_TRUE(HasRule(Lint("src/f.cc", "srand(42);"), "os-entropy"));
  EXPECT_TRUE(
      HasRule(Lint("src/f.cc", "getrandom(buf, n, 0);"), "os-entropy"));
}

TEST(DetlintOsEntropy, SeededEnginesAreClean) {
  EXPECT_TRUE(
      Lint("src/f.cc", "std::mt19937_64 engine(seed); engine();").empty());
  EXPECT_TRUE(Lint("src/f.cc", "Rng rng(seed); rng.NextU64(10);").empty());
  // A member named rand is somebody's API, not libc entropy.
  EXPECT_TRUE(Lint("src/f.cc", "int x = gen.rand();").empty());
}

// --- env-read ---------------------------------------------------------------

TEST(DetlintEnvRead, FlagsGetenvFamily) {
  EXPECT_TRUE(HasRule(
      Lint("src/f.cc", "const char* v = getenv(\"X\");"), "env-read"));
  EXPECT_TRUE(HasRule(
      Lint("src/f.cc", "const char* v = std::getenv(\"X\");"), "env-read"));
  EXPECT_TRUE(HasRule(Lint("src/f.cc", "setenv(\"X\", \"1\", 1);"),
                      "env-read"));
}

// --- unordered-iter ---------------------------------------------------------

TEST(DetlintUnorderedIter, FlagsRangeForOverUnorderedMember) {
  auto f = Lint("src/f.cc",
                "std::unordered_map<int, int> m_;\n"
                "void F() { for (auto& [k, v] : m_) Use(k, v); }\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 2u);
}

TEST(DetlintUnorderedIter, FlagsIteratorTraversal) {
  auto f = Lint("src/f.cc",
                "std::unordered_set<int> s_;\n"
                "void F() { for (auto it = s_.begin(); it != s_.end(); ++it)"
                " Use(*it); }\n");
  EXPECT_TRUE(HasRule(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, LookupsAreClean) {
  EXPECT_TRUE(Lint("src/f.cc",
                   "std::unordered_map<int, int> m_;\n"
                   "bool F(int k) { return m_.find(k) != m_.end(); }\n"
                   "bool G(int k) { return m_.count(k) > 0; }\n")
                  .empty());
}

TEST(DetlintUnorderedIter, OrderedMapIterationIsClean) {
  EXPECT_TRUE(Lint("src/f.cc",
                   "std::map<int, int> m_;\n"
                   "void F() { for (auto& [k, v] : m_) Use(k, v); }\n")
                  .empty());
}

TEST(DetlintUnorderedIter, FollowsUsingAliases) {
  auto f = Lint("src/f.cc",
                "using Index = std::unordered_map<int, int>;\n"
                "Index index_;\n"
                "void F() { for (auto& e : index_) Use(e); }\n");
  EXPECT_TRUE(HasRule(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, SeededDeclsCoverPairedHeader) {
  // Simulates a foo.cc whose member is declared in foo.h: the tree
  // walker seeds the .cc scan with the header's declarations.
  std::set<std::string> seeded = UnorderedDecls(
      "class Net { std::unordered_map<int, Node*> nodes_; };\n");
  EXPECT_EQ(seeded.count("nodes_"), 1u);
  auto f = LintSource("src/foo.cc",
                      "void Net::Start() { for (auto& [id, n] : nodes_)"
                      " n->OnStart(); }\n",
                      Options{}, seeded);
  EXPECT_TRUE(HasRule(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, SortBeforeIterateAnnotatesOnlyTheCollectLoop) {
  // The sanctioned escape for containers that must stay unordered
  // (DESIGN.md §10): the key-collection loop carries an auditable
  // annotation — the scanner cannot prove the order never escapes, so a
  // human states it — and the subsequent sorted-vector loop is clean.
  const char* kIdiom =
      "std::unordered_map<int, int> m_;\n"
      "void F() {\n"
      "  std::vector<int> keys;\n"
      "  %sfor (const auto& [k, v] : m_) keys.push_back(k);\n"
      "  std::sort(keys.begin(), keys.end());\n"
      "  for (int k : keys) Use(m_.at(k));\n"
      "}\n";
  char with_allow[512];
  std::snprintf(with_allow, sizeof(with_allow), kIdiom,
                "// detlint:allow(unordered-iter) keys sorted below\n  ");
  EXPECT_TRUE(Lint("src/f.cc", with_allow).empty());
  char without[512];
  std::snprintf(without, sizeof(without), kIdiom, "");
  auto f = Lint("src/f.cc", without);
  ASSERT_EQ(f.size(), 1u) << "only the collect loop is flagged";
  EXPECT_EQ(f[0].rule, "unordered-iter");
  EXPECT_EQ(f[0].line, 4u);
}

// --- ptr-key ----------------------------------------------------------------

TEST(DetlintPtrKey, FlagsPointerKeyedMapAndSet) {
  EXPECT_TRUE(
      HasRule(Lint("src/f.cc", "std::map<Node*, int> by_node_;"), "ptr-key"));
  EXPECT_TRUE(HasRule(Lint("src/f.cc", "std::set<const Txn*> seen_;"),
                      "ptr-key"));
}

TEST(DetlintPtrKey, PointerValuesAndValueKeysAreClean) {
  EXPECT_TRUE(Lint("src/f.cc", "std::map<int, Node*> nodes_;").empty());
  EXPECT_TRUE(
      Lint("src/f.cc", "std::map<std::string, int> by_name_;").empty());
  EXPECT_TRUE(
      Lint("src/f.cc",
           "std::map<std::pair<int, int>, Node*> links_;")
          .empty());
}

// --- thread-raw -------------------------------------------------------------

TEST(DetlintThreadRaw, FlagsRawThreadAndSleep) {
  EXPECT_TRUE(
      HasRule(Lint("src/f.cc", "std::thread t([] {});"), "thread-raw"));
  EXPECT_TRUE(HasRule(
      Lint("src/f.cc",
           "std::this_thread::sleep_for(std::chrono::milliseconds(1));"),
      "thread-raw"));
  EXPECT_TRUE(HasRule(Lint("src/f.cc", "usleep(1000);"), "thread-raw"));
}

TEST(DetlintThreadRaw, PoolPrimitivesAreClean) {
  EXPECT_TRUE(Lint("src/f.cc",
                   "ThreadPool pool(4); pool.Submit([] {}); pool.Wait();")
                  .empty());
  EXPECT_TRUE(Lint("src/f.cc", "std::mutex mu; std::lock_guard l(mu);")
                  .empty());
}

// --- float-state ------------------------------------------------------------

TEST(DetlintFloatState, FlagsFloatsOnlyInStateDirs) {
  EXPECT_TRUE(
      HasRule(Lint("src/ledger/block.h", "double balance_;"), "float-state"));
  EXPECT_TRUE(
      HasRule(Lint("src/txn/executor.cc", "float fee = 0.1f;"),
              "float-state"));
  EXPECT_TRUE(HasRule(Lint("src/consensus/raft.cc", "double quorum;"),
                      "float-state"));
  // Outside ledger/txn/consensus, floats are fine (metrics, workloads).
  EXPECT_TRUE(Lint("src/obs/metrics.h", "double Mean() const;").empty());
  EXPECT_TRUE(Lint("bench/bench_x.cpp", "double secs = 0;").empty());
}

// --- raw-filesystem ---------------------------------------------------------

TEST(DetlintRawFilesystem, FlagsLibcAndPosixCalls) {
  EXPECT_TRUE(HasRule(Lint("src/store/x.cc", "FILE* f = fopen(p, \"r\");"),
                      "raw-filesystem"));
  EXPECT_TRUE(HasRule(Lint("src/store/x.cc", "int fd = open(p, O_RDWR);"),
                      "raw-filesystem"));
  EXPECT_TRUE(
      HasRule(Lint("src/store/x.cc", "fsync(fd);"), "raw-filesystem"));
  EXPECT_TRUE(HasRule(Lint("src/store/x.cc", "std::rename(a, b);"),
                      "raw-filesystem"));
  EXPECT_TRUE(HasRule(Lint("src/store/x.cc", "unlink(p);"),
                      "raw-filesystem"));
}

TEST(DetlintRawFilesystem, FlagsStreamTypesAndStdFilesystem) {
  EXPECT_TRUE(HasRule(Lint("src/store/x.cc", "std::ofstream out(path);"),
                      "raw-filesystem"));
  EXPECT_TRUE(HasRule(Lint("src/store/x.h", "std::ifstream in_;"),
                      "raw-filesystem"));
  EXPECT_TRUE(HasRule(
      Lint("src/store/x.cc", "std::filesystem::rename(tmp, final);"),
      "raw-filesystem"));
  EXPECT_TRUE(HasRule(Lint("src/store/x.cc", "namespace fs = std::filesystem;"),
                      "raw-filesystem"));
}

TEST(DetlintRawFilesystem, ShimAndAlgorithmUsesAreClean) {
  // sim::Fs's own surface: capitalized methods and member calls.
  EXPECT_TRUE(Lint("src/store/x.cc", "fs->Rename(tmp, path);").empty());
  EXPECT_TRUE(Lint("src/store/x.cc", "fs.Fsync(path);").empty());
  EXPECT_TRUE(Lint("src/sim/fs.cc", "void Fs::Rename(const T& a) {}").empty());
  // erase-remove and shim truncation are not filesystem calls.
  EXPECT_TRUE(
      Lint("src/store/kv.cc", "v.erase(std::remove(v.begin(), v.end(), k));")
          .empty());
  EXPECT_TRUE(Lint("src/store/x.cc", "fs->Truncate(path, cut);").empty());
  // Header mentions are includes, not declarations.
  EXPECT_TRUE(Lint("src/obs/json.cc", "#include <fstream>\n").empty());
}

TEST(DetlintRawFilesystem, ScopedToSrcAndSuppressible) {
  // bench/ emits reports to the host filesystem by design; tools/ is not
  // scanned. Only src/ is in scope.
  EXPECT_TRUE(Lint("bench/bench_x.cpp", "std::ofstream out(path);").empty());
  auto f = Lint("src/obs/json.cc",
                "// detlint:allow(raw-filesystem) operator report output\n"
                "std::ofstream out(path);\n");
  EXPECT_TRUE(f.empty());
}

// --- comments, strings, includes -------------------------------------------

TEST(DetlintStripping, BannedTokensInCommentsAndStringsAreClean) {
  EXPECT_TRUE(Lint("src/f.cc",
                   "// steady_clock would be wrong here\n"
                   "/* rand() too */\n"
                   "const char* s = \"std::random_device getenv(\";\n")
                  .empty());
  EXPECT_TRUE(Lint("src/f.cc", "#include <ctime>\n#include <thread>\n")
                  .empty());
}

TEST(DetlintStripping, DigitSeparatorsAreNotCharLiterals) {
  // 1'000'000 must not open a char literal that swallows `rand()`.
  EXPECT_TRUE(HasRule(
      Lint("src/f.cc", "int n = 1'000'000;\nint x = rand();\n"),
      "os-entropy"));
}

// --- annotations ------------------------------------------------------------

TEST(DetlintAnnotation, SameLineAllowSuppresses) {
  EXPECT_TRUE(
      Lint("src/f.cc",
           "auto t = std::chrono::steady_clock::now();  "
           "// detlint:allow(wall-clock) telemetry only, not state\n")
          .empty());
}

TEST(DetlintAnnotation, PrecedingLineAllowSuppresses) {
  EXPECT_TRUE(Lint("src/f.cc",
                   "// detlint:allow(wall-clock) telemetry only\n"
                   "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(DetlintAnnotation, MissingJustificationIsAnError) {
  auto f = Lint("src/f.cc",
                "// detlint:allow(wall-clock)\n"
                "auto t = std::chrono::steady_clock::now();\n");
  // The bare annotation is itself a finding AND it fails to suppress.
  EXPECT_TRUE(HasRule(f, "bad-annotation"));
  EXPECT_TRUE(HasRule(f, "wall-clock"));
}

TEST(DetlintAnnotation, UnknownRuleIsAnError) {
  auto f = Lint("src/f.cc",
                "// detlint:allow(no-such-rule) because reasons\n"
                "int x = 0;\n");
  ASSERT_EQ(RulesOf(f), std::vector<std::string>{"bad-annotation"});
}

TEST(DetlintAnnotation, UnusedAllowIsAnError) {
  auto f = Lint("src/f.cc",
                "// detlint:allow(wall-clock) stale justification\n"
                "int x = 0;\n");
  ASSERT_EQ(RulesOf(f), std::vector<std::string>{"unused-allow"});
}

TEST(DetlintAnnotation, WrongRuleDoesNotSuppress) {
  auto f = Lint("src/f.cc",
                "// detlint:allow(os-entropy) wrong rule name\n"
                "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(HasRule(f, "wall-clock"));
  EXPECT_TRUE(HasRule(f, "unused-allow"));
}

TEST(DetlintAnnotation, MetaRulesAreNotSuppressible) {
  EXPECT_FALSE(IsSuppressibleRule("bad-annotation"));
  EXPECT_FALSE(IsSuppressibleRule("unused-allow"));
  EXPECT_TRUE(IsSuppressibleRule("wall-clock"));
  EXPECT_TRUE(IsSuppressibleRule("unordered-iter"));
}

// --- allowlist --------------------------------------------------------------

TEST(DetlintAllowlist, PathPrefixSuppressesMatchingRule) {
  Options options;
  options.allowlist.emplace_back("thread-raw", "src/common/thread_pool");
  EXPECT_TRUE(LintSource("src/common/thread_pool.cc",
                         "std::thread t([] {});", options)
                  .empty());
  // Same code elsewhere still fails.
  EXPECT_TRUE(HasRule(
      LintSource("src/consensus/pbft.cc", "std::thread t([] {});", options),
      "thread-raw"));
  // Other rules in the allowlisted path still fail.
  EXPECT_TRUE(HasRule(LintSource("src/common/thread_pool.cc",
                                 "int x = rand();", options),
                      "os-entropy"));
}

TEST(DetlintAllowlist, StarMatchesEveryRule) {
  Options options;
  options.allowlist.emplace_back("*", "src/experimental/");
  EXPECT_TRUE(LintSource("src/experimental/x.cc",
                         "std::thread t([] {}); int y = rand();", options)
                  .empty());
}

TEST(DetlintAllowlist, LoadsFileAndRejectsMalformedLines) {
  std::string dir = ::testing::TempDir();
  std::string good = dir + "/detlint_allow_good.txt";
  {
    std::ofstream out(good);
    out << "# comment\n\nthread-raw  src/common/thread_pool  # reason\n";
  }
  Options options;
  std::string error;
  ASSERT_TRUE(LoadAllowlist(good, &options, &error)) << error;
  ASSERT_EQ(options.allowlist.size(), 1u);
  EXPECT_EQ(options.allowlist[0].first, "thread-raw");
  EXPECT_EQ(options.allowlist[0].second, "src/common/thread_pool");

  std::string bad = dir + "/detlint_allow_bad.txt";
  {
    std::ofstream out(bad);
    out << "no-such-rule src/\n";
  }
  Options bad_options;
  EXPECT_FALSE(LoadAllowlist(bad, &bad_options, &error));

  std::string missing_field = dir + "/detlint_allow_missing.txt";
  {
    std::ofstream out(missing_field);
    out << "thread-raw\n";
  }
  Options mf_options;
  EXPECT_FALSE(LoadAllowlist(missing_field, &mf_options, &error));
}

// --- report -----------------------------------------------------------------

TEST(DetlintReport, JsonIsWellFormedAndDeterministic) {
  TreeReport report;
  report.files_scanned = 2;
  report.findings.push_back(
      {"src/a.cc", 3, "wall-clock", "use of 'steady_clock' is banned"});
  std::string json = ReportToJson(report, "repo");
  EXPECT_NE(json.find("\"tool\": \"detlint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"wall-clock\""), std::string::npos);
  EXPECT_EQ(json, ReportToJson(report, "repo"));
}

// --- self-scan --------------------------------------------------------------

#ifdef PBC_SOURCE_ROOT
TEST(DetlintSelfScan, RepoLintsCleanWithCheckedInAllowlist) {
  Options options;
  std::string error;
  ASSERT_TRUE(LoadAllowlist(
      std::filesystem::path(PBC_SOURCE_ROOT) / "tools" / "detlint" /
          "detlint.allow",
      &options, &error))
      << error;
  TreeReport report = LintTree(PBC_SOURCE_ROOT, {"src", "bench"}, options);
  EXPECT_GT(report.files_scanned, 100u);
  EXPECT_TRUE(report.errors.empty());
  for (const Finding& f : report.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}
#endif  // PBC_SOURCE_ROOT

}  // namespace
}  // namespace pbc::detlint
