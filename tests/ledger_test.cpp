#include <gtest/gtest.h>

#include "ledger/block.h"
#include "ledger/chain.h"
#include "ledger/dag_ledger.h"

namespace pbc::ledger {
namespace {

txn::Transaction MakeTxn(txn::TxnId id, const std::string& key,
                         const std::string& value) {
  txn::Transaction t;
  t.id = id;
  t.ops.push_back(txn::Op::Write(key, value));
  return t;
}

Block MakeBlockAt(const Chain& chain, int ntxns, txn::TxnId base_id) {
  std::vector<txn::Transaction> txns;
  for (int i = 0; i < ntxns; ++i) {
    txns.push_back(MakeTxn(base_id + i, "k" + std::to_string(i), "v"));
  }
  return Block::Make(chain.height(), chain.TipHash(), std::move(txns));
}

TEST(BlockTest, MakeComputesMerkleRoot) {
  Chain chain;
  Block b = MakeBlockAt(chain, 4, 0);
  EXPECT_TRUE(b.VerifyTxnRoot());
  EXPECT_EQ(b.header.height, 0u);
  EXPECT_TRUE(b.header.prev_hash.IsZero());
}

TEST(BlockTest, TamperedTxnBreaksRoot) {
  Chain chain;
  Block b = MakeBlockAt(chain, 4, 0);
  b.txns[2].ops[0].value = "evil";
  EXPECT_FALSE(b.VerifyTxnRoot());
}

TEST(BlockTest, HeaderHashCoversAllFields) {
  Chain chain;
  Block b = MakeBlockAt(chain, 2, 0);
  auto h0 = b.header.Hash();
  BlockHeader modified = b.header;
  modified.height++;
  EXPECT_NE(modified.Hash(), h0);
  modified = b.header;
  modified.timestamp_us = 12345;
  EXPECT_NE(modified.Hash(), h0);
}

TEST(ChainTest, AppendLinksBlocks) {
  Chain chain;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(chain.Append(MakeBlockAt(chain, 3, i * 10)).ok());
  }
  EXPECT_EQ(chain.height(), 5u);
  EXPECT_TRUE(chain.Audit().ok());
}

TEST(ChainTest, AppendRejectsWrongHeight) {
  Chain chain;
  Block b = MakeBlockAt(chain, 1, 0);
  b.header.height = 3;
  EXPECT_FALSE(chain.Append(b).ok());
}

TEST(ChainTest, AppendRejectsBrokenLinkage) {
  Chain chain;
  ASSERT_TRUE(chain.Append(MakeBlockAt(chain, 1, 0)).ok());
  Block b = MakeBlockAt(chain, 1, 10);
  b.header.prev_hash = crypto::Sha256::Digest(std::string("wrong"));
  auto s = chain.Append(b);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ChainTest, AppendRejectsBadMerkleRoot) {
  Chain chain;
  Block b = MakeBlockAt(chain, 2, 0);
  b.txns[0].ops[0].value = "tampered-after-sealing";
  EXPECT_TRUE(chain.Append(b).IsCorruption());
}

TEST(ChainTest, AuditDetectsPostHocTampering) {
  Chain chain;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(chain.Append(MakeBlockAt(chain, 2, i * 10)).ok());
  }
  ASSERT_TRUE(chain.Audit().ok());
  // Flip one transaction byte deep in history.
  chain.MutableBlockForTest(1)->txns[0].ops[0].value = "evil";
  EXPECT_TRUE(chain.Audit().IsCorruption());
}

TEST(ChainTest, AuditDetectsHeaderRewrite) {
  Chain chain;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(chain.Append(MakeBlockAt(chain, 1, i)).ok());
  }
  // Rewriting a header breaks the next block's prev link.
  chain.MutableBlockForTest(1)->header.timestamp_us = 999;
  EXPECT_TRUE(chain.Audit().IsCorruption());
}

TEST(ChainTest, InclusionProofs) {
  Chain chain;
  ASSERT_TRUE(chain.Append(MakeBlockAt(chain, 8, 0)).ok());
  const Block& b = chain.at(0);
  auto proof = chain.ProveInclusion(0, 5);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(Chain::VerifyInclusion(b.header, b.txns[5].Digest(),
                                     proof.ValueOrDie()));
  EXPECT_FALSE(Chain::VerifyInclusion(b.header, b.txns[4].Digest(),
                                      proof.ValueOrDie()));
}

TEST(ChainTest, PrefixConsistency) {
  Chain a, b;
  for (int i = 0; i < 3; ++i) {
    Block blk = MakeBlockAt(a, 2, i * 10);
    ASSERT_TRUE(a.Append(blk).ok());
    if (i < 2) { ASSERT_TRUE(b.Append(blk).ok()); }
  }
  EXPECT_TRUE(a.PrefixConsistentWith(b));
  EXPECT_TRUE(b.PrefixConsistentWith(a));
  EXPECT_FALSE(a.SameAs(b));
  ASSERT_TRUE(b.Append(MakeBlockAt(b, 2, 20)).ok());
  EXPECT_TRUE(a.SameAs(b));
}

TEST(ChainTest, DivergentChainsDetected) {
  Chain a, b;
  ASSERT_TRUE(a.Append(MakeBlockAt(a, 1, 1)).ok());
  ASSERT_TRUE(b.Append(MakeBlockAt(b, 1, 2)).ok());  // different txn
  EXPECT_FALSE(a.PrefixConsistentWith(b));
}

// --- DAG ledger (Caper) ------------------------------------------------------

txn::Transaction InternalTxn(txn::TxnId id, txn::EnterpriseId e) {
  txn::Transaction t;
  t.id = id;
  t.enterprise = e;
  t.ops.push_back(txn::Op::Write("internal/" + std::to_string(e), "x"));
  return t;
}

txn::Transaction CrossTxn(txn::TxnId id) {
  txn::Transaction t;
  t.id = id;
  t.cross_enterprise = true;
  t.ops.push_back(txn::Op::Write("shared/k", "y"));
  return t;
}

TEST(DagLedgerTest, InternalChainsAreIndependent) {
  DagLedger dag(3);
  ASSERT_TRUE(dag.AppendInternal(0, InternalTxn(1, 0)).ok());
  ASSERT_TRUE(dag.AppendInternal(1, InternalTxn(2, 1)).ok());
  ASSERT_TRUE(dag.AppendInternal(0, InternalTxn(3, 0)).ok());
  EXPECT_EQ(dag.size(), 3u);
  EXPECT_TRUE(dag.Audit().ok());
  // Enterprise 0's second txn has one parent: its first txn.
  const auto& v = dag.vertices()[2];
  ASSERT_EQ(v.parents.size(), 1u);
  EXPECT_EQ(v.parents[0], dag.vertices()[0].hash);
}

TEST(DagLedgerTest, CrossTxnJoinsAllTips) {
  DagLedger dag(3);
  dag.AppendInternal(0, InternalTxn(1, 0));
  dag.AppendInternal(1, InternalTxn(2, 1));
  auto cross = dag.AppendCross(CrossTxn(3));
  ASSERT_TRUE(cross.ok());
  const auto& v = dag.vertices()[2];
  EXPECT_TRUE(v.cross);
  EXPECT_EQ(v.parents.size(), 2u);  // enterprises 0 and 1 had tips; 2 empty
  // All tips now point at the cross vertex.
  for (txn::EnterpriseId e = 0; e < 3; ++e) {
    EXPECT_EQ(dag.TipOf(e), cross.ValueOrDie());
  }
}

TEST(DagLedgerTest, InternalAfterCrossChainsToCross) {
  DagLedger dag(2);
  dag.AppendCross(CrossTxn(1));
  dag.AppendInternal(0, InternalTxn(2, 0));
  const auto& v = dag.vertices()[1];
  ASSERT_EQ(v.parents.size(), 1u);
  EXPECT_EQ(v.parents[0], dag.vertices()[0].hash);
  EXPECT_TRUE(dag.Audit().ok());
}

TEST(DagLedgerTest, ViewContainsOnlyOwnInternalsPlusCross) {
  DagLedger dag(2);
  dag.AppendInternal(0, InternalTxn(1, 0));
  dag.AppendInternal(1, InternalTxn(2, 1));
  dag.AppendCross(CrossTxn(3));
  dag.AppendInternal(1, InternalTxn(4, 1));

  auto view0 = dag.ViewOf(0);
  ASSERT_EQ(view0.size(), 2u);  // own internal + cross
  EXPECT_FALSE(view0[0].cross);
  EXPECT_TRUE(view0[1].cross);
  EXPECT_TRUE(DagLedger::AuditView(view0, 0).ok());

  auto view1 = dag.ViewOf(1);
  EXPECT_EQ(view1.size(), 3u);
  EXPECT_TRUE(DagLedger::AuditView(view1, 1).ok());
}

TEST(DagLedgerTest, AuditViewRejectsForeignInternalTxn) {
  DagLedger dag(2);
  dag.AppendInternal(0, InternalTxn(1, 0));
  auto view = dag.ViewOf(0);
  auto status = DagLedger::AuditView(view, 1);  // wrong enterprise
  EXPECT_TRUE(status.IsPermissionDenied());
}

TEST(DagLedgerTest, AuditDetectsTamperedVertex) {
  DagLedger dag(2);
  dag.AppendInternal(0, InternalTxn(1, 0));
  dag.AppendCross(CrossTxn(2));
  auto view = dag.ViewOf(0);
  view[0].txn.ops[0].value = "tampered";
  EXPECT_TRUE(DagLedger::AuditView(view, 0).IsCorruption());
}

TEST(DagLedgerTest, UnknownEnterpriseRejected) {
  DagLedger dag(2);
  EXPECT_FALSE(dag.AppendInternal(5, InternalTxn(1, 5)).ok());
}

TEST(DagLedgerTest, CountsTrackKinds) {
  DagLedger dag(2);
  dag.AppendInternal(0, InternalTxn(1, 0));
  dag.AppendInternal(1, InternalTxn(2, 1));
  dag.AppendCross(CrossTxn(3));
  EXPECT_EQ(dag.num_internal(), 2u);
  EXPECT_EQ(dag.num_cross(), 1u);
}

}  // namespace
}  // namespace pbc::ledger
