#include <gtest/gtest.h>

#include "shard/resilientdb.h"
#include "shard/sharper.h"
#include "shard/two_phase.h"

namespace pbc::shard {
namespace {

using txn::Op;
using txn::Transaction;

constexpr sim::Time kMaxSimTime = 120'000'000;

struct World {
  explicit World(uint64_t seed) : sim(seed), net(&sim) {
    net.SetDefaultLatency({500, 200});
  }
  sim::Simulator sim;
  sim::Network net;
  crypto::KeyRegistry registry;
};

Transaction Deposit(txn::TxnId id, const std::string& key, int64_t amount) {
  Transaction t;
  t.id = id;
  t.ops.push_back(Op::Increment(key, amount));
  return t;
}

// Cross-shard transfer decomposed into a guarded debit plus a credit.
Transaction Transfer(txn::TxnId id, const std::string& from,
                     const std::string& to, int64_t amount) {
  Transaction t;
  t.id = id;
  t.ops.push_back(Op::Increment(from, -amount));
  t.ops.push_back(Op::Increment(to, amount));
  return t;
}

// --- Key routing --------------------------------------------------------------

TEST(KeyToShardTest, ExplicitPinning) {
  EXPECT_EQ(KeyToShard("s0/alice", 4), 0u);
  EXPECT_EQ(KeyToShard("s3/bob", 4), 3u);
  EXPECT_EQ(KeyToShard("s5/x", 4), 1u);  // wraps
}

TEST(KeyToShardTest, HashRoutingIsStable) {
  EXPECT_EQ(KeyToShard("some-key", 8), KeyToShard("some-key", 8));
  // Different keys spread (not all in one shard).
  std::set<ShardId> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(KeyToShard("k" + std::to_string(i), 8));
  }
  EXPECT_GT(seen.size(), 4u);
}

TEST(KeyToShardTest, ShardsOfTransaction) {
  Transaction t = Transfer(1, "s0/a", "s2/b", 10);
  EXPECT_EQ(ShardsOf(t, 4), (std::vector<ShardId>{0, 2}));
  Transaction local = Transfer(2, "s1/a", "s1/b", 10);
  EXPECT_EQ(ShardsOf(local, 4), std::vector<ShardId>{1});
}

TEST(KeyToShardTest, ProjectionSplitsOps) {
  Transaction t = Transfer(1, "s0/a", "s2/b", 10);
  auto p0 = ProjectToShard(t, 0, 4);
  ASSERT_EQ(p0.ops.size(), 1u);
  EXPECT_EQ(p0.ops[0].key, "s0/a");
  EXPECT_EQ(p0.ops[0].delta, -10);
  auto p2 = ProjectToShard(t, 2, 4);
  ASSERT_EQ(p2.ops.size(), 1u);
  EXPECT_EQ(p2.ops[0].delta, 10);
}

TEST(PreconditionTest, NegativeBalanceRejected) {
  store::KvStore s;
  store::WriteBatch b;
  b.Put("k", txn::EncodeInt(5));
  s.ApplyBatch(b, 1);
  Transaction ok = Deposit(1, "k", -5);
  Transaction bad = Deposit(2, "k", -6);
  EXPECT_TRUE(LocalPreconditionsHold(ok, s));
  EXPECT_FALSE(LocalPreconditionsHold(bad, s));
}

// --- Coordinator-based (AHL) ---------------------------------------------------

struct Outcome {
  std::map<txn::TxnId, bool> results;
  size_t count(txn::TxnId id) const { return results.count(id); }
};

template <typename System>
Outcome* Listen(System* sys) {
  auto* out = new Outcome();  // leaked in tests; fine
  sys->set_listener([out](txn::TxnId id, bool ok) {
    out->results[id] = ok;
  });
  return out;
}

TEST(AhlTest, IntraShardCommits) {
  World w(1);
  TwoPhaseShardSystem sys(&w.net, &w.registry, TwoPhaseConfig::Ahl(2));
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/alice", 100));
  sys.Submit(Deposit(2, "s1/bob", 50));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 2; },
                             kMaxSimTime));
  EXPECT_TRUE(out->results[1]);
  EXPECT_TRUE(out->results[2]);
  EXPECT_EQ(txn::DecodeInt(
                sys.shard(0)->store()->Get("s0/alice").ValueOrDie().value),
            100);
  EXPECT_EQ(sys.stats().intra_committed, 2u);
}

TEST(AhlTest, CrossShardTransferCommitsAtomically) {
  World w(2);
  TwoPhaseShardSystem sys(&w.net, &w.registry, TwoPhaseConfig::Ahl(2));
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/alice", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(1) == 1; },
                             kMaxSimTime));
  sys.Submit(Transfer(2, "s0/alice", "s1/bob", 40));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(2) == 1; },
                             kMaxSimTime));
  EXPECT_TRUE(out->results[2]);
  // Drain shard-side decide rounds.
  w.sim.Run(w.sim.now() + 10'000'000);
  EXPECT_EQ(txn::DecodeInt(
                sys.shard(0)->store()->Get("s0/alice").ValueOrDie().value),
            60);
  EXPECT_EQ(txn::DecodeInt(
                sys.shard(1)->store()->Get("s1/bob").ValueOrDie().value),
            40);
  EXPECT_EQ(sys.TotalBalance(), 100);
  EXPECT_EQ(sys.stats().cross_committed, 1u);
}

TEST(AhlTest, InsufficientFundsAbortsAcrossShards) {
  World w(3);
  TwoPhaseShardSystem sys(&w.net, &w.registry, TwoPhaseConfig::Ahl(2));
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/alice", 10));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(1) == 1; },
                             kMaxSimTime));
  sys.Submit(Transfer(2, "s0/alice", "s1/bob", 40));  // more than she has
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(2) == 1; },
                             kMaxSimTime));
  EXPECT_FALSE(out->results[2]);
  w.sim.Run(w.sim.now() + 10'000'000);
  // Neither side changed: atomicity.
  EXPECT_EQ(txn::DecodeInt(
                sys.shard(0)->store()->Get("s0/alice").ValueOrDie().value),
            10);
  EXPECT_FALSE(sys.shard(1)->store()->Get("s1/bob").ok());
  EXPECT_EQ(sys.TotalBalance(), 10);
  EXPECT_EQ(sys.stats().cross_aborted, 1u);
}

TEST(AhlTest, ManyTransfersConserveMoney) {
  World w(4);
  TwoPhaseShardSystem sys(&w.net, &w.registry, TwoPhaseConfig::Ahl(3));
  auto* out = Listen(&sys);
  w.net.Start();
  txn::TxnId id = 1;
  for (int s = 0; s < 3; ++s) {
    for (int a = 0; a < 3; ++a) {
      sys.Submit(Deposit(id++, "s" + std::to_string(s) + "/acct" +
                                   std::to_string(a),
                         100));
    }
  }
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 9; },
                             kMaxSimTime));
  Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    int src = rng.NextU64(3), dst = rng.NextU64(3);
    sys.Submit(Transfer(
        id++, "s" + std::to_string(src) + "/acct" + std::to_string(rng.NextU64(3)),
        "s" + std::to_string(dst) + "/acct" + std::to_string(rng.NextU64(3)),
        1 + rng.NextU64(30)));
  }
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 21; },
                             kMaxSimTime));
  w.sim.Run(w.sim.now() + 20'000'000);
  EXPECT_EQ(sys.TotalBalance(), 900);
}

TEST(AhlTest, AllClustersRunRealConsensus) {
  World w(5);
  TwoPhaseShardSystem sys(&w.net, &w.registry, TwoPhaseConfig::Ahl(2));
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/x", 5));
  sys.Submit(Transfer(2, "s0/x", "s1/y", 2));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 2; },
                             kMaxSimTime));
  w.sim.Run(w.sim.now() + 10'000'000);
  // Replica chains are non-empty and consistent inside each cluster.
  for (int s = 0; s < 2; ++s) {
    EXPECT_GT(sys.shard(s)->consensus()->replica(0)->chain().height(), 0u);
    EXPECT_TRUE(sys.shard(s)->consensus()->ChainsConsistent());
  }
  EXPECT_GT(sys.coordinator(0)->consensus()->replica(0)->chain().height(),
            0u);
}

// --- Saguaro -------------------------------------------------------------------

TEST(SaguaroTest, LcaSelectsNearestCoordinator) {
  World w(6);
  // 4 shards, fanout 2 → coordinators: 0 = root, 1 = fog(s0,s1),
  // 2 = fog(s2,s3).
  TwoPhaseShardSystem sys(&w.net, &w.registry,
                          TwoPhaseConfig::Saguaro(4, 2));
  EXPECT_EQ(sys.LcaCoordinator({0, 1}), 1u);
  EXPECT_EQ(sys.LcaCoordinator({2, 3}), 2u);
  EXPECT_EQ(sys.LcaCoordinator({0, 3}), 0u);  // spans fogs → root
  EXPECT_EQ(sys.LcaCoordinator({1}), 1u);
}

TEST(SaguaroTest, CrossShardViaFogCommits) {
  World w(7);
  TwoPhaseShardSystem sys(&w.net, &w.registry,
                          TwoPhaseConfig::Saguaro(4, 2));
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/a", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(1) == 1; },
                             kMaxSimTime));
  sys.Submit(Transfer(2, "s0/a", "s1/b", 30));  // same fog
  sys.Submit(Deposit(3, "s2/c", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 3; },
                             kMaxSimTime));
  EXPECT_TRUE(out->results[2]);
  w.sim.Run(w.sim.now() + 10'000'000);
  sys.Submit(Transfer(4, "s2/c", "s1/b", 10));  // spans fogs → root coord
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(4) == 1; },
                             kMaxSimTime));
  EXPECT_TRUE(out->results[4]);
  w.sim.Run(w.sim.now() + 10'000'000);
  EXPECT_EQ(sys.TotalBalance(), 200);
}

// --- SharPer -------------------------------------------------------------------

TEST(SharperTest, IntraShardCommits) {
  World w(10);
  SharperSystem sys(&w.net, &w.registry, 2);
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/a", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(1) == 1; },
                             kMaxSimTime));
  EXPECT_TRUE(out->results[1]);
  EXPECT_EQ(sys.stats().intra_committed, 1u);
}

TEST(SharperTest, FlattenedCrossShardCommits) {
  World w(11);
  SharperSystem sys(&w.net, &w.registry, 2);
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/a", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(1) == 1; },
                             kMaxSimTime));
  sys.Submit(Transfer(2, "s0/a", "s1/b", 25));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(2) == 1; },
                             kMaxSimTime));
  EXPECT_TRUE(out->results[2]);
  w.sim.Run(w.sim.now() + 10'000'000);
  EXPECT_EQ(txn::DecodeInt(
                sys.shard(1)->store()->Get("s1/b").ValueOrDie().value),
            25);
  EXPECT_EQ(sys.TotalBalance(), 100);
}

TEST(SharperTest, InsufficientFundsAborts) {
  World w(12);
  SharperSystem sys(&w.net, &w.registry, 2);
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Transfer(1, "s0/ghost", "s1/b", 5));  // no funds at all
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->count(1) == 1; },
                             kMaxSimTime));
  EXPECT_FALSE(out->results[1]);
  w.sim.Run(w.sim.now() + 10'000'000);
  EXPECT_EQ(sys.TotalBalance(), 0);
  EXPECT_EQ(sys.stats().cross_aborted, 1u);
}

TEST(SharperTest, FewerMessagesThanAhlPerCrossTxn) {
  auto run = [](auto&& make_and_drive) {
    return make_and_drive();
  };
  uint64_t sharper_msgs = run([] {
    World w(13);
    SharperSystem sys(&w.net, &w.registry, 2);
    auto* out = Listen(&sys);
    w.net.Start();
    sys.Submit(Deposit(1, "s0/a", 100));
    w.sim.RunUntil([&] { return out->count(1) == 1; }, kMaxSimTime);
    w.net.ResetStats();
    sys.Submit(Transfer(2, "s0/a", "s1/b", 10));
    w.sim.RunUntil([&] { return out->count(2) == 1; }, kMaxSimTime);
    w.sim.Run(w.sim.now() + 30'000'000);  // drain the full protocol
    return w.net.stats().messages_sent;
  });
  uint64_t ahl_msgs = run([] {
    World w(13);
    TwoPhaseShardSystem sys(&w.net, &w.registry, TwoPhaseConfig::Ahl(2));
    auto* out = Listen(&sys);
    w.net.Start();
    sys.Submit(Deposit(1, "s0/a", 100));
    w.sim.RunUntil([&] { return out->count(1) == 1; }, kMaxSimTime);
    w.net.ResetStats();
    sys.Submit(Transfer(2, "s0/a", "s1/b", 10));
    w.sim.RunUntil([&] { return out->count(2) == 1; }, kMaxSimTime);
    w.sim.Run(w.sim.now() + 30'000'000);  // drain the full protocol
    return w.net.stats().messages_sent;
  });
  // The survey's claim: decentralized (flattened) processing needs fewer
  // phases/messages than routing through a reference committee.
  EXPECT_LT(sharper_msgs, ahl_msgs);
}

TEST(SharperTest, ParallelNonOverlappingCrossTxns) {
  World w(14);
  SharperSystem sys(&w.net, &w.registry, 4);
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(Deposit(1, "s0/a", 100));
  sys.Submit(Deposit(2, "s2/c", 100));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 2; },
                             kMaxSimTime));
  // Two cross-shard txns over disjoint cluster pairs run concurrently.
  sys.Submit(Transfer(3, "s0/a", "s1/b", 10));
  sys.Submit(Transfer(4, "s2/c", "s3/d", 10));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 4; },
                             kMaxSimTime));
  EXPECT_TRUE(out->results[3]);
  EXPECT_TRUE(out->results[4]);
  w.sim.Run(w.sim.now() + 10'000'000);
  EXPECT_EQ(sys.TotalBalance(), 200);
}

// --- ResilientDB-style -----------------------------------------------------------

TEST(ResilientDbTest, AllClustersExecuteEverything) {
  World w(20);
  ResilientDbSystem sys(&w.net, &w.registry, 3);
  auto* out = Listen(&sys);
  w.net.Start();
  sys.Submit(0, Deposit(1, "x", 10));
  sys.Submit(1, Deposit(2, "y", 20));
  sys.Submit(2, Deposit(3, "x", 5));
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 3; },
                             kMaxSimTime));
  w.sim.Run(w.sim.now() + 20'000'000);
  // Every cluster's merged state is identical and complete.
  for (uint32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(txn::DecodeInt(sys.StateOf(c).Get("x").ValueOrDie().value), 15)
        << c;
    EXPECT_EQ(txn::DecodeInt(sys.StateOf(c).Get("y").ValueOrDie().value), 20)
        << c;
  }
  EXPECT_TRUE(sys.StateOf(0).SameLatestState(sys.StateOf(1)));
  EXPECT_TRUE(sys.StateOf(1).SameLatestState(sys.StateOf(2)));
}

TEST(ResilientDbTest, UnbalancedLoadStillConverges) {
  World w(21);
  ResilientDbSystem sys(&w.net, &w.registry, 3);
  auto* out = Listen(&sys);
  w.net.Start();
  // All traffic goes to cluster 0; clusters 1 and 2 must emit no-ops.
  for (int i = 0; i < 8; ++i) {
    sys.Submit(0, Deposit(i + 1, "k" + std::to_string(i), 1));
  }
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 8; },
                             kMaxSimTime));
  w.sim.Run(w.sim.now() + 20'000'000);
  EXPECT_TRUE(sys.StateOf(0).SameLatestState(sys.StateOf(2)));
  EXPECT_EQ(sys.StateOf(2).num_keys(), 8u);
}

TEST(ResilientDbTest, DeterministicMergeOrderAcrossClusters) {
  World w(22);
  ResilientDbSystem sys(&w.net, &w.registry, 2);
  auto* out = Listen(&sys);
  w.net.Start();
  // Conflicting blind writes from both clusters; merge order decides, and
  // every cluster must agree on the winner.
  txn::Transaction a;
  a.id = 1;
  a.ops.push_back(Op::Write("k", "fromA"));
  txn::Transaction b;
  b.id = 2;
  b.ops.push_back(Op::Write("k", "fromB"));
  sys.Submit(0, a);
  sys.Submit(1, b);
  ASSERT_TRUE(w.sim.RunUntil([&] { return out->results.size() == 2; },
                             kMaxSimTime));
  w.sim.Run(w.sim.now() + 20'000'000);
  EXPECT_EQ(sys.StateOf(0).Get("k").ValueOrDie().value,
            sys.StateOf(1).Get("k").ValueOrDie().value);
}

}  // namespace
}  // namespace pbc::shard
