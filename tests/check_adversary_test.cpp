// Tests for the adaptive adversary layer (src/check/adversary.*), the
// clock-skew nemesis, and the hardened serialization/corpus plumbing:
//  * exhaustiveness — every NemesisKind round-trips through the name
//    table, Describe(), ToJson() and the seeds.txt line parser; every
//    AdversaryMode round-trips through its name table;
//  * a fault-budget property over 200 seeded adaptive schedules across
//    all four adversary modes (max_faulty never exceeded at any instant,
//    never_crash nodes never targeted, fault-free tail respected);
//  * determinism — adaptive runs are pure functions of (config, seed)
//    and their recorded traces replay statically;
//  * clock-skew semantics (timer scaling, not message latency) and
//    composition with the adversary;
//  * the known PBFT no-state-transfer gap, pinned as an expected
//    liveness gap under sustained leader churn (this test flips red the
//    day state transfer lands — update it then).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/adversary.h"
#include "check/harness.h"
#include "check/nemesis.h"
#include "seed_corpus.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pbc::check {
namespace {

// --- Exhaustiveness: NemesisKind ---------------------------------------------

TEST(NemesisKindTest, NameTableRoundTripsEveryKind) {
  std::set<std::string> names;
  for (NemesisKind kind : kAllNemesisKinds) {
    std::string name = NemesisKindName(kind);
    EXPECT_NE(name, "?") << "kind missing from name table";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    NemesisKind back;
    ASSERT_TRUE(NemesisKindFromName(name, &back)) << name;
    EXPECT_EQ(back, kind) << name;
  }
  NemesisKind unused;
  EXPECT_FALSE(NemesisKindFromName("meteor", &unused));
}

// Builds an event of the given kind with every relevant field populated,
// so Describe()/ToJson() exercise their kind-specific arms.
NemesisEvent EventOfKind(NemesisKind kind) {
  NemesisEvent ev;
  ev.at = 1'000;
  ev.kind = kind;
  ev.window = 3;
  ev.node = 2;
  ev.groups = {{0, 1}, {2, 3}};
  ev.from = 1;
  ev.to = 2;
  ev.latency = {20'000, 2'000};
  ev.replica_index = 1;
  ev.mode = consensus::ByzantineMode::kEquivocate;
  ev.skew_ppm = 150'000;
  ev.skew_offset_us = 250;
  return ev;
}

TEST(NemesisKindTest, DescribeAndToJsonCoverEveryKind) {
  for (NemesisKind kind : kAllNemesisKinds) {
    NemesisEvent ev = EventOfKind(kind);
    std::string name = NemesisKindName(kind);
    EXPECT_NE(ev.Describe().find(name), std::string::npos)
        << "Describe() of " << name << ": " << ev.Describe();
    std::string json = ev.ToJson().Dump();
    EXPECT_NE(json.find("\"kind\""), std::string::npos) << name;
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  // The clock-skew arm carries its payload through both serializations.
  NemesisEvent skew = EventOfKind(NemesisKind::kClockSkew);
  EXPECT_NE(skew.Describe().find("150000ppm"), std::string::npos);
  EXPECT_NE(skew.ToJson().Dump().find("rate_ppm"), std::string::npos);
}

// --- Exhaustiveness: AdversaryMode + corpus parser ---------------------------

TEST(AdversaryModeTest, NameTableRoundTripsEveryMode) {
  std::set<std::string> names;
  for (AdversaryMode mode : kAllAdversaryModes) {
    std::string name = AdversaryModeName(mode);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    AdversaryMode back;
    ASSERT_TRUE(ParseAdversaryMode(name, &back)) << name;
    EXPECT_EQ(back, mode) << name;
  }
  AdversaryMode unused;
  EXPECT_FALSE(ParseAdversaryMode("meteor", &unused));
  EXPECT_FALSE(ParseAdversaryMode("", &unused));
}

TEST(SeedCorpusParserTest, AcceptsEveryAdversaryModeToken) {
  for (AdversaryMode mode : kAllAdversaryModes) {
    RunConfig cfg;
    std::string error;
    std::string line =
        "pbft none 7 adversary=" + std::string(AdversaryModeName(mode));
    ASSERT_TRUE(ParseSeedCorpusLine(line, &cfg, &error)) << error;
    EXPECT_EQ(cfg.adversary, AdversaryModeName(mode));
    EXPECT_EQ(cfg.seed, 7u);
  }
}

TEST(SeedCorpusParserTest, ParsesTrailingTokensInAnyOrder) {
  RunConfig cfg;
  std::string error;
  ASSERT_TRUE(ParseSeedCorpusLine("raft none 2 skew=100000 adversary=churn",
                                  &cfg, &error))
      << error;
  EXPECT_EQ(cfg.adversary, "churn");
  EXPECT_EQ(cfg.clock_skew_ppm, 100'000);
  RunConfig cfg2;
  ASSERT_TRUE(ParseSeedCorpusLine("pbft none 2 adversary=leader block=25",
                                  &cfg2, &error))
      << error;
  EXPECT_EQ(cfg2.block_max_txns, 25u);
  EXPECT_EQ(cfg2.adversary, "leader");
}

TEST(SeedCorpusParserTest, RejectsMalformedLines) {
  RunConfig cfg;
  std::string error;
  EXPECT_FALSE(ParseSeedCorpusLine("pbft none", &cfg, &error));
  EXPECT_FALSE(ParseSeedCorpusLine("pbft none 1 meteor=3", &cfg, &error));
  EXPECT_FALSE(
      ParseSeedCorpusLine("pbft none 1 adversary=meteor", &cfg, &error));
  EXPECT_NE(error.find("meteor"), std::string::npos);
}

// --- Fault-budget property over seeded adaptive schedules --------------------

// Replays a recorded trace's budget accounting: walks events time-ordered,
// applying fault-ending events before fault-starting ones at equal
// timestamps (matching the simulator's FIFO order: a recover scheduled
// long ago fires before this tick's new crash).
void AssertBudgetRespected(const NemesisSchedule& trace,
                           const NemesisTopology& topo,
                           const std::string& label) {
  const auto& group = topo.groups[0];
  std::set<sim::NodeId> protected_nodes(topo.never_crash.begin(),
                                        topo.never_crash.end());
  uint32_t active = 0;
  std::map<uint64_t, int> open_crashes;  // window -> balance
  const std::vector<NemesisEvent>& events = trace.events();
  for (size_t i = 0; i < events.size();) {
    size_t j = i;
    while (j < events.size() && events[j].at == events[i].at) ++j;
    for (size_t k = i; k < j; ++k) {  // endings first
      if (events[k].kind == NemesisKind::kRecover) {
        ASSERT_GT(active, 0u) << label;
        --active;
        --open_crashes[events[k].window];
      }
    }
    for (size_t k = i; k < j; ++k) {  // then starts
      const NemesisEvent& ev = events[k];
      if (ev.kind == NemesisKind::kCrash) {
        EXPECT_EQ(protected_nodes.count(ev.node), 0u)
            << label << ": crashed protected node " << ev.node;
        ++active;
        ++open_crashes[ev.window];
      } else if (ev.kind == NemesisKind::kByzantine) {
        EXPECT_EQ(protected_nodes.count(ev.node), 0u)
            << label << ": flipped protected node " << ev.node;
        ++active;  // Byzantine members hold their budget slot for good
      }
      EXPECT_GE(ev.window, 1u) << label << " (0 is the skew overlay)";
    }
    EXPECT_LE(active, group.max_faulty)
        << label << " at t=" << events[i].at;
    i = j;
  }
  for (const auto& [window, balance] : open_crashes) {
    EXPECT_EQ(balance, 0) << label << ": unpaired crash in window "
                          << window;
  }
}

NemesisTopology AdversaryTopology(bool bft, bool with_protected) {
  NemesisTopology topo;
  NemesisTopology::Group group;
  for (sim::NodeId id = 0; id < 4; ++id) {
    group.nodes.push_back(id);
    topo.all_nodes.push_back(id);
  }
  group.max_faulty = 1;
  topo.groups.push_back(std::move(group));
  topo.partition_whole_network = true;
  topo.supports_byzantine = bft;
  if (with_protected) topo.never_crash = {1};
  return topo;
}

// Runs one synthetic adaptive schedule: no protocol, just a simulator, a
// bare network, and an observer that rotates the leader every 2 s — a
// moving target for the adversary to chase.
NemesisSchedule SyntheticTrace(AdversaryMode mode, uint64_t seed,
                               const NemesisTopology& topo,
                               std::vector<size_t>* flips = nullptr) {
  constexpr sim::Time kHorizon = 60'000'000;
  sim::Simulator sim(seed);
  sim::Network net(&sim);
  ReactiveNemesis::Options opts;
  opts.mode = mode;
  opts.topology = topo;
  opts.horizon = kHorizon;
  opts.seed = seed;
  ReactiveNemesis adversary(
      opts, &sim, &net,
      [&sim](size_t) {
        GroupObservation obs;
        obs.view = sim.now() / 2'000'000;
        obs.has_leader = true;
        obs.leader_index = obs.view % 4;
        obs.has_next_leader = true;
        obs.next_leader_index = (obs.view + 1) % 4;
        return obs;
      },
      [flips](size_t, size_t replica_index, consensus::ByzantineMode) {
        if (flips) flips->push_back(replica_index);
      });
  adversary.Arm();
  sim.Run(kHorizon);
  // Crash faults drain by the horizon; a permanent Byzantine flip keeps
  // its budget slot, so the residue is at most the group's f.
  EXPECT_LE(adversary.active_faults(0), topo.groups[0].max_faulty);
  return adversary.Trace();
}

TEST(AdversaryBudgetTest, TwoHundredSchedulesRespectBudgetAndProtection) {
  constexpr sim::Time kHorizon = 60'000'000;
  size_t schedules = 0;
  size_t nonempty = 0;
  for (AdversaryMode mode : kAllAdversaryModes) {
    for (uint64_t seed = 0; seed < 50; ++seed) {
      NemesisTopology topo =
          AdversaryTopology(/*bft=*/seed % 2 == 0,
                            /*with_protected=*/seed % 5 == 0);
      NemesisSchedule trace = SyntheticTrace(mode, seed, topo);
      ++schedules;
      std::string label = std::string(AdversaryModeName(mode)) + "/seed=" +
                          std::to_string(seed);
      if (mode == AdversaryMode::kRandom) {
        // kRandom is not reactive: the adaptive layer must stay silent.
        EXPECT_TRUE(trace.empty()) << label;
        continue;
      }
      if (!trace.empty()) ++nonempty;
      AssertBudgetRespected(trace, topo, label);
      for (const NemesisEvent& ev : trace.events()) {
        switch (ev.kind) {
          case NemesisKind::kCrash:
          case NemesisKind::kPartition:
          case NemesisKind::kDelay:
          case NemesisKind::kByzantine:
            EXPECT_LE(ev.at, kHorizon * 55 / 100) << label;
            break;
          case NemesisKind::kRecover:
          case NemesisKind::kHeal:
          case NemesisKind::kClearDelay:
            EXPECT_LE(ev.at, kHorizon * 70 / 100) << label;
            break;
          case NemesisKind::kClockSkew:
            ADD_FAILURE() << label << ": adversary emitted clock skew";
            break;
          case NemesisKind::kTornWrite:
          case NemesisKind::kLostFlush:
          case NemesisKind::kRestoreFlush:
            ADD_FAILURE() << label << ": adversary emitted a disk fault";
            break;
        }
      }
    }
  }
  EXPECT_EQ(schedules, 200u);
  // The three reactive modes must actually attack (150 schedules).
  EXPECT_GE(nonempty, 140u);
}

TEST(AdversaryBudgetTest, ChurnRetargetsProtectedLeaderToSuccessor) {
  NemesisTopology topo = AdversaryTopology(/*bft=*/false,
                                           /*with_protected=*/true);
  std::set<sim::NodeId> crashed;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    NemesisSchedule trace = SyntheticTrace(AdversaryMode::kChurn, seed, topo);
    for (const NemesisEvent& ev : trace.events()) {
      if (ev.kind == NemesisKind::kCrash) crashed.insert(ev.node);
    }
  }
  EXPECT_EQ(crashed.count(1), 0u) << "protected node crashed";
  EXPECT_GE(crashed.size(), 2u) << "churn should still chase leadership";
}

TEST(AdversaryBudgetTest, LeaderModeFlipsOnlyBftGroups) {
  std::vector<size_t> flips;
  SyntheticTrace(AdversaryMode::kLeader, 3,
                 AdversaryTopology(/*bft=*/true, false), &flips);
  EXPECT_EQ(flips.size(), 1u) << "exactly one permanent Byzantine flip";
  flips.clear();
  SyntheticTrace(AdversaryMode::kLeader, 3,
                 AdversaryTopology(/*bft=*/false, false), &flips);
  EXPECT_TRUE(flips.empty()) << "CFT groups must never be flipped";
}

TEST(AdversaryBudgetTest, QuorumModeSplitsAtTheQuorumEdge) {
  // BFT n=4, f=1: leader side must be f+1 = 2 (both sides short of 2f+1).
  NemesisSchedule bft_trace = SyntheticTrace(
      AdversaryMode::kQuorum, 1, AdversaryTopology(/*bft=*/true, false));
  // CFT n=4, f=1: the leader is stranded in a minority of f = 1.
  NemesisSchedule cft_trace = SyntheticTrace(
      AdversaryMode::kQuorum, 1, AdversaryTopology(/*bft=*/false, false));
  size_t bft_cuts = 0, cft_cuts = 0;
  for (const NemesisEvent& ev : bft_trace.events()) {
    if (ev.kind != NemesisKind::kPartition) continue;
    ASSERT_EQ(ev.groups.size(), 2u);
    EXPECT_EQ(ev.groups[0].size(), 2u);
    ++bft_cuts;
  }
  for (const NemesisEvent& ev : cft_trace.events()) {
    if (ev.kind != NemesisKind::kPartition) continue;
    ASSERT_EQ(ev.groups.size(), 2u);
    EXPECT_EQ(ev.groups[0].size(), 1u);
    ++cft_cuts;
  }
  EXPECT_GE(bft_cuts, 1u);
  EXPECT_GE(cft_cuts, 1u);
}

// --- Determinism of observation ----------------------------------------------

TEST(AdversaryDeterminismTest, SyntheticTraceIsAPureFunctionOfSeed) {
  NemesisTopology topo = AdversaryTopology(/*bft=*/true, false);
  for (AdversaryMode mode :
       {AdversaryMode::kLeader, AdversaryMode::kQuorum, AdversaryMode::kChurn}) {
    NemesisSchedule a = SyntheticTrace(mode, 11, topo);
    NemesisSchedule b = SyntheticTrace(mode, 11, topo);
    EXPECT_EQ(a.Describe(), b.Describe()) << AdversaryModeName(mode);
  }
  NemesisSchedule a = SyntheticTrace(AdversaryMode::kChurn, 11, topo);
  NemesisSchedule c = SyntheticTrace(AdversaryMode::kChurn, 12, topo);
  EXPECT_NE(a.Describe(), c.Describe()) << "seed must matter";
}

TEST(AdversaryDeterminismTest, AdaptiveRunIsAPureFunctionOfConfigAndSeed) {
  RunConfig cfg;
  cfg.protocol = "pbft";
  cfg.nemesis = "none";
  cfg.adversary = "leader";
  cfg.seed = 2;
  cfg.txns = 20;
  RunResult a = RunOne(cfg);
  RunResult b = RunOne(cfg);
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.committed_min, b.committed_min);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.schedule.Describe(), b.schedule.Describe());
  EXPECT_FALSE(a.schedule.empty()) << "adversary injected nothing";
}

// The recorded trace must replay *statically* (adversary disarmed) and
// still reproduce the violation it found live — the property ddmin
// shrinking and parallel byte-identity stand on.
TEST(AdversaryDeterminismTest, RecordedTraceReplaysStatically) {
  RunConfig cfg;
  cfg.protocol = "pbft";
  cfg.nemesis = "none";
  cfg.adversary = "leader";
  cfg.seed = 2;
  cfg.txns = 20;
  cfg.quorum_slack = 1;  // seeded quorum bug the leader adversary catches
  RunResult live = RunOne(cfg);
  ASSERT_FALSE(live.ok()) << "expected the leader adversary to catch the "
                             "quorum mutation at this seed";
  RunResult replay = RunWithSchedule(cfg, live.schedule);
  EXPECT_FALSE(replay.ok()) << "static replay of the trace lost the bug";
}

TEST(AdversaryDeterminismTest, ShardedProtocolsRejectAdaptiveModes) {
  RunConfig cfg;
  cfg.protocol = "sharper";
  cfg.nemesis = "crash";
  cfg.adversary = "leader";
  cfg.txns = 10;
  RunResult r = RunOne(cfg);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].invariant, std::string("config"));
  cfg.protocol = "pbft";
  cfg.adversary = "meteor";
  RunResult bad = RunOne(cfg);
  ASSERT_EQ(bad.violations.size(), 1u);
  EXPECT_EQ(bad.violations[0].invariant, std::string("config"));
}

// --- Clock skew ---------------------------------------------------------------

TEST(ClockSkewTest, ScalesTimersNotMessages) {
  sim::Simulator sim(1);
  sim::Network net(&sim);
  // +100000 ppm = 10% fast clock: a requested 1 s fires after ~0.909 s.
  net.SetClockSkew(1, {100'000, 0});
  EXPECT_EQ(net.SkewedTimerDelay(1, 1'000'000), 909'090u);
  // -500000 ppm = half speed: 1 s stretches to 2 s.
  net.SetClockSkew(2, {-500'000, 0});
  EXPECT_EQ(net.SkewedTimerDelay(2, 1'000'000), 2'000'000u);
  // Offset adds after scaling; unskewed nodes are identity.
  net.SetClockSkew(3, {0, 250});
  EXPECT_EQ(net.SkewedTimerDelay(3, 1'000), 1'250u);
  EXPECT_EQ(net.SkewedTimerDelay(0, 777u), 777u);
  // Extreme rates clamp instead of freezing time or going negative.
  net.SetClockSkew(4, {-2'000'000, 0});
  EXPECT_EQ(net.clock_skew(4).rate_ppm, -900'000);
  net.SetClockSkew(5, {100'000'000, 0});
  EXPECT_EQ(net.clock_skew(5).rate_ppm, 9'000'000);
  // A fast clock never rounds a positive delay to zero.
  EXPECT_GE(net.SkewedTimerDelay(5, 1), 1u);
  // {0,0} removes the entry entirely.
  net.SetClockSkew(1, {0, 0});
  EXPECT_EQ(net.clock_skew(1).rate_ppm, 0);
  // Message latency is untouched by skew.
  EXPECT_EQ(net.EffectiveLatency(1, 2).base_us,
            net.EffectiveLatency(0, 3).base_us);
}

TEST(ClockSkewTest, SkewedRunsAreDeterministicAndDistinct) {
  RunConfig cfg;
  cfg.protocol = "raft";
  cfg.nemesis = "crash";
  cfg.seed = 0;
  cfg.txns = 15;
  RunResult plain = RunOne(cfg);
  cfg.clock_skew_ppm = 200'000;
  RunResult skewed = RunOne(cfg);
  RunResult again = RunOne(cfg);
  EXPECT_EQ(skewed.sim_events, again.sim_events);
  EXPECT_EQ(skewed.schedule.Describe(), again.schedule.Describe());
  EXPECT_NE(plain.sim_events, skewed.sim_events)
      << "skew must not be a silent no-op";
  EXPECT_TRUE(skewed.ok());
  // The overlay is window 0, one event per node, present in the schedule.
  size_t skew_events = 0;
  for (const NemesisEvent& ev : skewed.schedule.events()) {
    if (ev.kind == NemesisKind::kClockSkew) {
      EXPECT_EQ(ev.window, 0u);
      EXPECT_EQ(ev.at, 0u);
      // Even node indices run fast, odd run slow.
      EXPECT_EQ(ev.skew_ppm, ev.node % 2 == 0 ? 200'000 : -200'000);
      ++skew_events;
    }
  }
  EXPECT_EQ(skew_events, cfg.cluster_size);
}

TEST(ClockSkewTest, ComposesWithAdaptiveAdversary) {
  RunConfig cfg;
  cfg.protocol = "raft";
  cfg.nemesis = "none";
  cfg.adversary = "churn";
  cfg.clock_skew_ppm = 100'000;
  cfg.seed = 2;
  cfg.txns = 20;
  RunResult r = RunOne(cfg);
  EXPECT_TRUE(r.ok()) << "corpus line 'raft none 2 adversary=churn "
                         "skew=100000' regressed";
  bool has_skew = false, has_crash = false;
  for (const NemesisEvent& ev : r.schedule.events()) {
    has_skew |= ev.kind == NemesisKind::kClockSkew;
    has_crash |= ev.kind == NemesisKind::kCrash;
  }
  EXPECT_TRUE(has_skew);
  EXPECT_TRUE(has_crash);
  EXPECT_EQ(RunOne(cfg).schedule.Describe(), r.schedule.Describe());
}

// --- The PBFT state-transfer gap, pinned --------------------------------------

// PBFT in this tree has no state transfer / checkpoint sync: a replica
// that misses commits while crashed never catches up, so sustained
// leader churn leaves `committed_min` stranded even when the cluster as
// a whole stays live. This is a *known, documented* liveness gap (see
// DESIGN.md §12 and ROADMAP item 5) — the EXPECT_LT below is the pin.
// When state transfer lands, this test fails: flip it to EXPECT_EQ and
// retire the gap note.
TEST(StateTransferGapTest, PbftChurnStrandsLaggardsRaftCatchesUp) {
  size_t pbft_gaps = 0;
  bool pbft_live_with_gap = false;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RunConfig cfg;
    cfg.protocol = "pbft";
    cfg.nemesis = "none";
    cfg.adversary = "churn";
    cfg.seed = seed;
    cfg.txns = 20;
    RunResult r = RunOne(cfg);
    EXPECT_TRUE(r.ok()) << "churn must degrade liveness, never safety";
    if (r.committed_min < r.committed) ++pbft_gaps;
    if (r.live && r.committed_min + 5 <= r.committed) {
      pbft_live_with_gap = true;  // cluster fully live, one replica stuck
    }
  }
  EXPECT_GE(pbft_gaps, 3u) << "PBFT laggard gap vanished — did state "
                              "transfer land? Update this pin.";
  EXPECT_TRUE(pbft_live_with_gap);

  // Raft's AppendEntries replays the log to recovered followers: same
  // adversary, no gap. This is the control that makes the PBFT pin
  // meaningful (the gap is protocol-specific, not a harness artifact).
  for (uint64_t seed = 0; seed < 4; ++seed) {
    RunConfig cfg;
    cfg.protocol = "raft";
    cfg.nemesis = "none";
    cfg.adversary = "churn";
    cfg.seed = seed;
    cfg.txns = 20;
    RunResult r = RunOne(cfg);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.committed_min, r.committed) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace pbc::check
