#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace pbc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Conflict("key clash");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsConflict());
  EXPECT_EQ(s.message(), "key clash");
  EXPECT_EQ(s.ToString(), "Conflict: key clash");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    PBC_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto good = []() -> Result<int> { return 7; };
  auto bad = []() -> Result<int> { return Status::Internal("boom"); };
  auto use = [&](bool fail) -> Result<int> {
    PBC_ASSIGN_OR_RETURN(int v, fail ? bad() : good());
    return v * 2;
  };
  EXPECT_EQ(use(false).ValueOrDie(), 14);
  EXPECT_EQ(use(true).status().code(), StatusCode::kInternal);
}

TEST(BytesTest, HexEncode) {
  Bytes b = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(HexEncode(b), "00ff10ab");
}

TEST(BytesTest, RoundTripString) {
  std::string s = "hello\0world";
  EXPECT_EQ(ToString(ToBytes(s)), s);
}

TEST(BytesTest, AppendU64LittleEndian) {
  Bytes b;
  AppendU64(&b, 0x0102030405060708ULL);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 0x08);
  EXPECT_EQ(b[7], 0x01);
}

TEST(BytesTest, LengthPrefixed) {
  Bytes b;
  AppendLengthPrefixed(&b, std::string("abc"));
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 3);
  EXPECT_EQ(b[4], 'a');
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(1000), b.NextU64(1000));
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(ZipfianTest, UniformWhenThetaZero) {
  Rng rng(11);
  Zipfian z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[z.Next(&rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(ZipfianTest, SkewConcentratesOnLowRanks) {
  Rng rng(11);
  Zipfian z(1000, 0.99);
  int low = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = z.Next(&rng);
    ASSERT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // With theta=0.99, the top-10 of 1000 keys get a large share (>30%).
  EXPECT_GT(low, kDraws * 3 / 10);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { count++; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(50, [&](size_t) { count++; });
  }
  EXPECT_EQ(count.load(), 250);
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    // One worker, held busy while 200 tasks pile up; the destructor must
    // drain them all, not drop the queue.
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.Submit([opened] { opened.wait(); });
    for (int i = 0; i < 200; ++i) pool.Submit([&] { count++; });
    gate.set_value();
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, CancelledJobsAreSkippedAndCounted) {
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  TaskGroup group;
  pool.Submit(&group, [opened] { opened.wait(); });  // hold the one worker
  CancellationToken token;
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit(&group, token, [&] { ran++; });
  }
  token.Cancel();
  gate.set_value();
  pool.Wait(&group);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(pool.stats().cancelled, 50u);
  EXPECT_EQ(group.pending(), 0u);  // cancelled jobs still complete the group
}

TEST(ThreadPoolTest, CancellationIsSticky) {
  ThreadPool pool(2);
  CancellationToken token;
  CancellationToken copy = token;  // copies share the flag
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
  TaskGroup group;
  std::atomic<int> ran{0};
  pool.Submit(&group, copy, [&] { ran++; });
  pool.Wait(&group);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, FutureCarriesResult) {
  ThreadPool pool(2);
  std::future<int> f = pool.SubmitWithFuture([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, FutureCarriesException) {
  ThreadPool pool(2);
  std::future<int> f = pool.SubmitWithFuture(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  pool.Wait();  // the pool survives a throwing job
  EXPECT_EQ(pool.SubmitWithFuture([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(64,
                                [](size_t i) {
                                  if (i == 13) throw std::runtime_error("13");
                                }),
               std::runtime_error);
  // The rethrow happens only after every chunk finished (the throwing
  // chunk abandons its remaining iterations); the pool stays usable.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Outer iterations run as pool jobs; each calls ParallelFor on the SAME
  // pool. The helping Wait(group) is what keeps this from deadlocking.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { count++; });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup outer;
  for (int i = 0; i < 4; ++i) {
    pool.Submit(&outer, [&] {
      TaskGroup inner;
      for (int j = 0; j < 8; ++j) pool.Submit(&inner, [&] { count++; });
      pool.Wait(&inner);  // helping wait from inside a worker
    });
  }
  pool.Wait(&outer);
  EXPECT_EQ(count.load(), 4 * 8);
}

TEST(ThreadPoolTest, IndependentTaskGroupsWaitSeparately) {
  ThreadPool pool(2);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  TaskGroup slow, fast;
  pool.Submit(&slow, [opened] { opened.wait(); });
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Submit(&fast, [&] { count++; });
  pool.Wait(&fast);  // must not wait for the gated `slow` job
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(slow.pending(), 1u);
  gate.set_value();
  pool.Wait(&slow);
}

TEST(ThreadPoolTest, BoundedQueueLimitsDepth) {
  ThreadPool::Options options;
  options.num_threads = 2;
  options.max_queued = 4;
  ThreadPool pool(options);
  for (int i = 0; i < 200; ++i) {
    pool.Submit([] {});  // external submitter blocks at the bound
  }
  pool.Wait();
  ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.jobs_run, 200u);
  EXPECT_LE(stats.max_queue_depth, 4u);
}

TEST(ThreadPoolTest, StatsCountJobsPerWorker) {
  ThreadPool pool(3);
  pool.ParallelFor(100, [](size_t) {});
  ThreadPool::Stats stats = pool.stats();
  ASSERT_EQ(stats.jobs_per_worker.size(), 3u);
  ASSERT_EQ(stats.steals_per_worker.size(), 3u);
  uint64_t sum = 0;
  for (uint64_t j : stats.jobs_per_worker) sum += j;
  EXPECT_EQ(sum, stats.jobs_run);
  EXPECT_GT(stats.jobs_run, 0u);
}

TEST(ThreadPoolTest, LegacyZeroThreadsCoercesToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace pbc
