#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace pbc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Conflict("key clash");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsConflict());
  EXPECT_EQ(s.message(), "key clash");
  EXPECT_EQ(s.ToString(), "Conflict: key clash");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    PBC_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto good = []() -> Result<int> { return 7; };
  auto bad = []() -> Result<int> { return Status::Internal("boom"); };
  auto use = [&](bool fail) -> Result<int> {
    PBC_ASSIGN_OR_RETURN(int v, fail ? bad() : good());
    return v * 2;
  };
  EXPECT_EQ(use(false).ValueOrDie(), 14);
  EXPECT_EQ(use(true).status().code(), StatusCode::kInternal);
}

TEST(BytesTest, HexEncode) {
  Bytes b = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(HexEncode(b), "00ff10ab");
}

TEST(BytesTest, RoundTripString) {
  std::string s = "hello\0world";
  EXPECT_EQ(ToString(ToBytes(s)), s);
}

TEST(BytesTest, AppendU64LittleEndian) {
  Bytes b;
  AppendU64(&b, 0x0102030405060708ULL);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 0x08);
  EXPECT_EQ(b[7], 0x01);
}

TEST(BytesTest, LengthPrefixed) {
  Bytes b;
  AppendLengthPrefixed(&b, std::string("abc"));
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 3);
  EXPECT_EQ(b[4], 'a');
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(1000), b.NextU64(1000));
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(ZipfianTest, UniformWhenThetaZero) {
  Rng rng(11);
  Zipfian z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[z.Next(&rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(ZipfianTest, SkewConcentratesOnLowRanks) {
  Rng rng(11);
  Zipfian z(1000, 0.99);
  int low = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = z.Next(&rng);
    ASSERT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // With theta=0.99, the top-10 of 1000 keys get a large share (>30%).
  EXPECT_GT(low, kDraws * 3 / 10);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { count++; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(50, [&](size_t) { count++; });
  }
  EXPECT_EQ(count.load(), 250);
}

}  // namespace
}  // namespace pbc
