#include <gtest/gtest.h>

#include "confidential/atomic_swap.h"

namespace pbc::confidential {
namespace {

constexpr PartyId kAlice = 1, kBob = 2;

struct SwapWorld {
  SwapWorld() : chain_a("gold"), chain_b("silver") {
    chain_a.Mint(kAlice, 100);
    chain_b.Mint(kBob, 500);
  }
  HtlcLedger chain_a, chain_b;

  AtomicSwap MakeSwap() {
    return AtomicSwap(&chain_a, &chain_b,
                      {kAlice, kBob, /*amount_a=*/30, /*amount_b=*/150,
                       /*delta=*/100});
  }
};

TEST(HtlcLedgerTest, LockDebitsAndEscrows) {
  SwapWorld w;
  auto hash = crypto::Sha256::Digest(std::string("s"));
  auto id = w.chain_a.Lock(kAlice, kBob, 30, hash, 100);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(w.chain_a.BalanceOf(kAlice), 70);
  EXPECT_EQ(w.chain_a.BalanceOf(kBob), 0);
}

TEST(HtlcLedgerTest, LockValidation) {
  SwapWorld w;
  auto hash = crypto::Sha256::Digest(std::string("s"));
  EXPECT_FALSE(w.chain_a.Lock(kAlice, kBob, 200, hash, 100).ok());  // funds
  EXPECT_FALSE(w.chain_a.Lock(kAlice, kBob, -5, hash, 100).ok());
  w.chain_a.AdvanceTime(100);
  EXPECT_FALSE(w.chain_a.Lock(kAlice, kBob, 10, hash, 100).ok());  // past
}

TEST(HtlcLedgerTest, RedeemRequiresCorrectPreimage) {
  SwapWorld w;
  Bytes secret = ToBytes("the-secret");
  auto id = w.chain_a.Lock(kAlice, kBob, 30,
                           crypto::Sha256::Digest(secret), 100)
                .ValueOrDie();
  EXPECT_TRUE(
      w.chain_a.Redeem(id, kBob, ToBytes("wrong")).IsCorruption());
  EXPECT_TRUE(w.chain_a.Redeem(id, kAlice, secret).IsPermissionDenied());
  ASSERT_TRUE(w.chain_a.Redeem(id, kBob, secret).ok());
  EXPECT_EQ(w.chain_a.BalanceOf(kBob), 30);
  // Settled contracts cannot be redeemed/refunded again.
  EXPECT_FALSE(w.chain_a.Redeem(id, kBob, secret).ok());
  w.chain_a.AdvanceTime(200);
  EXPECT_FALSE(w.chain_a.Refund(id, kAlice).ok());
}

TEST(HtlcLedgerTest, RedeemClosedAfterTimeoutRefundOpens) {
  SwapWorld w;
  Bytes secret = ToBytes("s");
  auto id = w.chain_a.Lock(kAlice, kBob, 30,
                           crypto::Sha256::Digest(secret), 100)
                .ValueOrDie();
  EXPECT_TRUE(w.chain_a.Refund(id, kAlice).code() ==
              StatusCode::kUnavailable);  // too early
  w.chain_a.AdvanceTime(100);
  EXPECT_EQ(w.chain_a.Redeem(id, kBob, secret).code(),
            StatusCode::kTimedOut);
  EXPECT_TRUE(w.chain_a.Refund(id, kBob).IsPermissionDenied());
  ASSERT_TRUE(w.chain_a.Refund(id, kAlice).ok());
  EXPECT_EQ(w.chain_a.BalanceOf(kAlice), 100);  // made whole
}

TEST(HtlcLedgerTest, RedeemPublishesPreimage) {
  SwapWorld w;
  Bytes secret = ToBytes("published");
  auto id = w.chain_a.Lock(kAlice, kBob, 10,
                           crypto::Sha256::Digest(secret), 100)
                .ValueOrDie();
  EXPECT_FALSE(w.chain_a.RevealedPreimage(id).ok());
  ASSERT_TRUE(w.chain_a.Redeem(id, kBob, secret).ok());
  EXPECT_EQ(w.chain_a.RevealedPreimage(id).ValueOrDie(), secret);
}

TEST(AtomicSwapTest, HappyPathSwapsBothAssets) {
  SwapWorld w;
  AtomicSwap swap = w.MakeSwap();
  ASSERT_TRUE(swap.AliceLock(ToBytes("alices-secret")).ok());
  ASSERT_TRUE(swap.BobLock().ok());
  ASSERT_TRUE(swap.AliceRedeem().ok());
  ASSERT_TRUE(swap.BobRedeem().ok());
  // Alice traded 30 gold for 150 silver; Bob the reverse.
  EXPECT_EQ(w.chain_a.BalanceOf(kAlice), 70);
  EXPECT_EQ(w.chain_a.BalanceOf(kBob), 30);
  EXPECT_EQ(w.chain_b.BalanceOf(kAlice), 150);
  EXPECT_EQ(w.chain_b.BalanceOf(kBob), 350);
}

TEST(AtomicSwapTest, BobLearnsSecretOnlyFromChainB) {
  SwapWorld w;
  AtomicSwap swap = w.MakeSwap();
  ASSERT_TRUE(swap.AliceLock(ToBytes("s3cret")).ok());
  ASSERT_TRUE(swap.BobLock().ok());
  // Bob cannot redeem before Alice reveals the preimage on chain B.
  EXPECT_TRUE(swap.BobRedeem().IsNotFound());
  ASSERT_TRUE(swap.AliceRedeem().ok());
  EXPECT_TRUE(swap.BobRedeem().ok());
}

TEST(AtomicSwapTest, BobNeverLocksAgainstBadTerms) {
  SwapWorld w;
  // Alice locks a smaller amount than agreed; Bob refuses to mirror.
  AtomicSwap swap(&w.chain_a, &w.chain_b,
                  {kAlice, kBob, 30, 150, 100});
  // Simulate Alice cheating by locking only 10 via a handcrafted contract.
  Bytes secret = ToBytes("x");
  auto id = w.chain_a.Lock(kAlice, kBob, 10,
                           crypto::Sha256::Digest(secret), 1000);
  ASSERT_TRUE(id.ok());
  // Bob's verification in BobLock inspects contract_a_ — which was never
  // set through AliceLock, so he sees "not locked".
  EXPECT_FALSE(swap.BobLock().ok());
}

TEST(AtomicSwapTest, AliceStallsEveryoneRefunded) {
  SwapWorld w;
  AtomicSwap swap = w.MakeSwap();
  ASSERT_TRUE(swap.AliceLock(ToBytes("never-revealed")).ok());
  ASSERT_TRUE(swap.BobLock().ok());
  // Alice disappears. Time passes beyond both timeouts.
  w.chain_a.AdvanceTime(250);
  w.chain_b.AdvanceTime(250);
  ASSERT_TRUE(swap.RefundAll().ok());
  EXPECT_EQ(w.chain_a.BalanceOf(kAlice), 100);
  EXPECT_EQ(w.chain_b.BalanceOf(kBob), 500);
}

TEST(AtomicSwapTest, BobStallsAliceRefundedAfter2Delta) {
  SwapWorld w;
  AtomicSwap swap = w.MakeSwap();
  ASSERT_TRUE(swap.AliceLock(ToBytes("s")).ok());
  // Bob never locks. Alice can refund after 2Δ.
  w.chain_a.AdvanceTime(199);
  EXPECT_FALSE(w.chain_a.Refund(swap.contract_a(), kAlice).ok());
  w.chain_a.AdvanceTime(1);
  EXPECT_TRUE(w.chain_a.Refund(swap.contract_a(), kAlice).ok());
  EXPECT_EQ(w.chain_a.BalanceOf(kAlice), 100);
}

TEST(AtomicSwapTest, TimeoutAsymmetryProtectsBob) {
  // The dangerous interleaving: Alice redeems on B at the last moment
  // before Δ; Bob must still have Δ of runway to redeem on A.
  SwapWorld w;
  AtomicSwap swap = w.MakeSwap();
  ASSERT_TRUE(swap.AliceLock(ToBytes("s")).ok());
  ASSERT_TRUE(swap.BobLock().ok());
  w.chain_a.AdvanceTime(99);
  w.chain_b.AdvanceTime(99);  // just before Bob's Δ=100 timeout
  ASSERT_TRUE(swap.AliceRedeem().ok());
  w.chain_a.AdvanceTime(100);  // now at 199 < 200 = Alice's 2Δ timeout
  EXPECT_TRUE(swap.BobRedeem().ok());
}

}  // namespace
}  // namespace pbc::confidential
