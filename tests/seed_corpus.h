// Shared parser for tests/seeds.txt corpus lines, used by check_test,
// check_parallel_test and check_adversary_test so the three suites cannot
// drift on the line grammar.
//
// Grammar (whitespace-separated):
//   <protocol> <nemesis-profile> <seed> [block=<N>] [adversary=<mode>]
//                                       [skew=<ppm>] [durable=1]
// Trailing tokens may appear in any order. `block=<N>` replays through
// the consensus block pipeline with size cut N; `adversary=<mode>` runs
// the state-aware adaptive adversary (the profile should be "none" — it
// is ignored in adaptive modes); `skew=<ppm>` applies the alternating
// ±ppm per-node clock-skew overlay; `durable=1` attaches the durable
// storage layer + crash-recovery invariants (required for profiles with
// torn-write / lost-flush).
#ifndef PBC_TESTS_SEED_CORPUS_H_
#define PBC_TESTS_SEED_CORPUS_H_

#include <sstream>
#include <string>

#include "check/adversary.h"
#include "check/harness.h"

namespace pbc::check {

/// Parses one non-comment corpus line into `cfg`. Returns false (with a
/// reason in `error`) on malformed lines or unknown tokens/modes.
inline bool ParseSeedCorpusLine(const std::string& line, RunConfig* cfg,
                                std::string* error) {
  std::istringstream fields(line);
  if (!(fields >> cfg->protocol >> cfg->nemesis >> cfg->seed)) {
    *error = "expected '<protocol> <nemesis> <seed>'";
    return false;
  }
  std::string token;
  while (fields >> token) {
    if (token.rfind("block=", 0) == 0) {
      cfg->block_max_txns = std::stoull(token.substr(6));
    } else if (token.rfind("adversary=", 0) == 0) {
      cfg->adversary = token.substr(10);
      AdversaryMode mode;
      if (!ParseAdversaryMode(cfg->adversary, &mode)) {
        *error = "unknown adversary mode '" + cfg->adversary + "'";
        return false;
      }
    } else if (token.rfind("skew=", 0) == 0) {
      cfg->clock_skew_ppm = std::stoll(token.substr(5));
    } else if (token.rfind("durable=", 0) == 0) {
      std::string value = token.substr(8);
      if (value != "0" && value != "1") {
        *error = "durable= takes 0 or 1, got '" + value + "'";
        return false;
      }
      cfg->durable = value == "1";
    } else {
      *error = "unknown corpus token '" + token + "'";
      return false;
    }
  }
  return true;
}

}  // namespace pbc::check

#endif  // PBC_TESTS_SEED_CORPUS_H_
